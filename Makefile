# Convenience targets (cf. the paper artifact's makefiles).

.PHONY: all build test bench bench-quick examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bestcut_example.exe
	dune exec examples/bfs_example.exe
	dune exec examples/text_pipeline.exe
	dune exec examples/primes_example.exe
	dune exec examples/inverted_index_example.exe

clean:
	dune clean
