# Convenience targets (cf. the paper artifact's makefiles).

.PHONY: all build test stress trace-smoke profile-smoke serve-smoke metrics-smoke adapt-smoke bench bench-quick bench-compare examples clean

# Fixed-seed chaos specification used by `make stress` (see
# docs/RUNTIME.md for the BDS_CHAOS format).  delay+starve perturb
# scheduling without changing results, so the whole suite — cram tests
# included — must still pass exactly; cram blocks that assert chaos-off
# output pin BDS_CHAOS='' themselves (the empty string is the explicit
# opt-out, not the default config).
CHAOS_SPEC ?= seed=1,p=0.02,kinds=delay+starve

# Domain counts swept by `make stress`.  CI's smoke job narrows this to a
# single count (STRESS_DOMAINS=2) to keep the job fast.
STRESS_DOMAINS ?= 1 2 4

all: build

build:
	dune build @all

test:
	dune runtest --force

# Chaos stress: the dedicated @stress alias, then the full suite under
# fault injection across 1, 2 and 4 domains, after the trace, profiler,
# job-service and adaptive-granularity round-trips.
stress: trace-smoke profile-smoke serve-smoke metrics-smoke adapt-smoke
	dune build @stress --force
	for d in $(STRESS_DOMAINS); do \
	  echo "== stress: BDS_NUM_DOMAINS=$$d BDS_CHAOS=$(CHAOS_SPEC) =="; \
	  BDS_NUM_DOMAINS=$$d BDS_CHAOS="$(CHAOS_SPEC)" dune runtest --force || exit 1; \
	done

# Trace round-trip: run the probe with tracing enabled, then validate
# the emitted Chrome-trace JSON with the probe's own checker (the same
# grammar Perfetto accepts; see docs/OBSERVABILITY.md).
TRACE_SMOKE_FILE ?= /tmp/bds-trace-smoke.json
trace-smoke:
	dune build bin/bds_probe.exe
	BDS_TRACE=$(TRACE_SMOKE_FILE) BDS_NUM_DOMAINS=4 dune exec bin/bds_probe.exe -- stats
	dune exec bin/bds_probe.exe -- trace-check --strict $(TRACE_SMOKE_FILE)

# Profiler round-trip: run the report pipeline under the work/span
# profiler on a multi-domain pool, in both human and JSON form (the
# JSON pass re-parses nothing here, but exercises the render path CI
# artifacts use; see docs/OBSERVABILITY.md "Profiling").
profile-smoke:
	dune build bin/bds_probe.exe
	BDS_NUM_DOMAINS=4 dune exec bin/bds_probe.exe -- report
	BDS_NUM_DOMAINS=4 dune exec bin/bds_probe.exe -- report --json > /dev/null

# Job-service round-trip: bds_serve over a Unix socket, one scripted
# workload forcing every typed response (incl. a deadline-exceeded and a
# shed job), graceful SIGTERM with trace flush, then the same under
# jobs+raise chaos at 4 domains (see docs/SERVICE.md).
serve-smoke:
	scripts/serve_smoke

# Observability round-trip: bds_serve with the flight recorder and a
# periodic metrics file, a multi-tenant workload, a METRICS scrape
# validated as OpenMetrics, a SIGQUIT flight dump consistent with the
# final STATS, and BDS_ADAPT_TABLE persistence incl. the fail-fast
# malformed-table path (see docs/OBSERVABILITY.md "Service
# observability").
metrics-smoke:
	scripts/metrics_smoke

# Adaptive-granularity round-trip: a short fixed-grain sweep plus one
# run under the online self-tuning controller; the gate fails the
# target if the adaptive run lands below half the best fixed point (a
# loose livelock/catastrophe floor — the precision claim lives in
# BENCH_9.json behind bench_compare, not here, because a --quick
# 1-repeat run on a shared host is noisy).
adapt-smoke:
	dune build bench/main.exe
	dune exec bench/main.exe -- --quick --procs 2 --only sweep \
	  --sweep-grain 512,8192,131072 --adaptive --adapt-gate 0.5

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- --quick

# Perf-regression gate: stream-overhead + float-kernels + sweep-grain
# bench vs BENCH_9.json (ratio metrics only; see scripts/bench_compare
# for knobs).
bench-compare:
	scripts/bench_compare

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bestcut_example.exe
	dune exec examples/bfs_example.exe
	dune exec examples/text_pipeline.exe
	dune exec examples/primes_example.exe
	dune exec examples/inverted_index_example.exe

clean:
	dune clean
