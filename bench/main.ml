(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§3 Figure 5, §6 Figures 13-16), plus ablations of the
   design choices called out in DESIGN.md and Bechamel microbenchmarks.

   Run `dune exec bench/main.exe` for everything at the default scale, or
   select sections: `dune exec bench/main.exe -- --only fig13,fig16`.
   Results are wall-clock on whatever machine this runs on; the claims
   being reproduced are the *ratios* between library versions (see
   EXPERIMENTS.md). *)

module Measure = Bds_harness.Measure
module Registry = Bds_harness.Registry
module Tables = Bds_harness.Tables
module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain
module Autotune = Bds_runtime.Autotune
module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile
module S = Bds.Seq
module K = Bds_kernels

type config = {
  scale : float;
  procs : int;
  proc_list : int list;
  repeat : int;
  sections : string list;
  micro_filter : string option;
      (** substring filter on microbenchmark names (--micro-filter) *)
  csv : string option;
  plots : string option;  (** directory for SVG versions of the figures *)
  sweep_grain : int list;
      (** leaf-grain values to sweep the bestcut pipeline over (--sweep-grain) *)
  sweep_block : int list;
      (** fixed block sizes to sweep the bestcut pipeline over (--sweep-block) *)
  adaptive : bool;
      (** after the fixed-grain sweep, run the same pipeline under the
          online self-tuning controller and report
          adaptive_vs_best_fixed (--adaptive) *)
  adapt_gate : float option;
      (** exit non-zero if adaptive_vs_best_fixed falls below this
          floor (--adapt-gate) *)
  profile : bool;
      (** run everything under the work/span profiler and append per-op
          rows to the CSV (--profile) *)
  service : bool;
      (** run the job-service open-loop load generator instead of the
          paper sections (--service) *)
}

(* Raw results accumulated for --csv: section, bench, version, procs,
   metric, value. *)
let csv_rows : (string * string * string * int * string * float) list ref = ref []

let record ~section ~bench ~version ~procs ~metric value =
  csv_rows := (section, bench, version, procs, metric, value) :: !csv_rows

(* A failed --adapt-gate check is deferred to the end of the run so the
   CSV (and every other section's output) still lands before the
   non-zero exit. *)
let gate_failure : string option ref = ref None

let write_csv path =
  let oc = open_out path in
  output_string oc "section,bench,version,procs,metric,value\n";
  List.iter
    (fun (s, b, v, p, m, x) ->
      Printf.fprintf oc "%s,%s,%s,%d,%s,%.9g\n" s b v p m x)
    (List.rev !csv_rows);
  close_out oc;
  Printf.eprintf "wrote %s (%d rows)\n%!" path (List.length !csv_rows)

let scaled cfg n =
  max 1 (int_of_float (float_of_int n *. cfg.scale))

let enabled cfg name = cfg.sections = [] || List.mem name cfg.sections

(* ------------------------------------------------------------------ *)
(* Figure 5: best-cut reads/writes, normal vs fused                    *)

let fig5 cfg =
  let n = scaled cfg 2_000_000 in
  let bsize = Bds.Block.size n in
  let b = (n + bsize - 1) / bsize in
  let rows = Bds.Cost_model.bestcut_rw ~n ~b in
  let cell = function None -> "-" | Some v -> string_of_int v in
  Tables.print
    ~title:(Printf.sprintf "Figure 5: best-cut memory operations (n=%d, b=%d blocks)" n b)
    ~headers:[ "phase"; "normal R"; "normal W"; "fused R"; "fused W" ]
    ~rows:
      (List.map
         (fun r ->
           Bds.Cost_model.
             [
               r.phase;
               string_of_int r.normal_reads;
               string_of_int r.normal_writes;
               cell r.fused_reads;
               cell r.fused_writes;
             ])
         rows);
  let nr, nw, fr, fw = Bds.Cost_model.rw_totals rows in
  Printf.printf "\nTotal (R+W): normal = %d (= 8n + O(b)),  fused = %d (= 2n + O(b)),  ratio = %.2fx\n"
    (nr + nw) (fr + fw)
    (float_of_int (nr + nw) /. float_of_int (fr + fw))

(* ------------------------------------------------------------------ *)
(* Figures 13 and 14: the benchmark tables                             *)

type row_result = {
  bench : Registry.bench;
  size : int;
  times_p1 : (string * float) list;
  times_pn : (string * float) list;
  sched_pn : (string * Measure.timed) list;
      (** P=max scheduler-telemetry deltas, one per version (best run) *)
  allocs : (string * float) list;
}

let run_bench cfg (b : Registry.bench) =
  let size = scaled cfg b.default_size in
  Printf.eprintf "  %-12s (%s)...\n%!" b.name (b.describe size);
  let section =
    match b.category with `Bid -> "fig13" | `Rad -> "fig14" | `Ext -> "ext"
  in
  let versions = b.prepare size in
  let times p =
    Measure.with_domains p (fun () ->
        List.map
          (fun v ->
            let m = Measure.time_counters ~repeat:cfg.repeat v.Registry.run in
            record ~section ~bench:b.name ~version:v.Registry.vname ~procs:p
              ~metric:"time_s" m.Measure.best_s;
            (v.Registry.vname, m))
          versions)
  in
  let times_p1 = List.map (fun (v, m) -> (v, m.Measure.best_s)) (times 1) in
  let sched_pn = times cfg.procs in
  let times_pn = List.map (fun (v, m) -> (v, m.Measure.best_s)) sched_pn in
  List.iter
    (fun (vname, (m : Measure.timed)) ->
      let c = m.Measure.counters in
      record ~section ~bench:b.name ~version:vname ~procs:cfg.procs
        ~metric:"steals" (float_of_int c.Telemetry.s_steals);
      record ~section ~bench:b.name ~version:vname ~procs:cfg.procs
        ~metric:"steals_per_s"
        (if m.Measure.best_s > 0.0 then
           float_of_int c.Telemetry.s_steals /. m.Measure.best_s
         else 0.0);
      record ~section ~bench:b.name ~version:vname ~procs:cfg.procs
        ~metric:"tasks_per_s"
        (if m.Measure.best_s > 0.0 then
           float_of_int c.Telemetry.s_tasks_spawned /. m.Measure.best_s
         else 0.0);
      (* Both rates above divide one coherent snapshot pair (the timed
         record's delta, taken around the best run) by that same run's
         time; flag the rare clamped delta so downstream tooling can
         discard the point instead of trusting a skewed rate. *)
      record ~section ~bench:b.name ~version:vname ~procs:cfg.procs
        ~metric:"counters_clamped" (if m.Measure.clamped then 1.0 else 0.0))
    sched_pn;
  let allocs =
    List.map
      (fun v ->
        let a = Measure.alloc_single_domain v.Registry.run in
        record ~section ~bench:b.name ~version:v.Registry.vname ~procs:1
          ~metric:"major_alloc_bytes" a;
        (v.Registry.vname, a))
      versions
  in
  { bench = b; size; times_p1; times_pn; sched_pn; allocs }

let get vname l = List.assoc vname l

(* Scheduler pressure at P=max, from the same (best) runs the time table
   reports: how many tasks the version spawned, how often thieves
   succeeded, and task throughput.  High steal counts with low task
   counts indicate imbalance; the delayed versions should spawn strictly
   fewer tasks than the eager array versions (fewer intermediate
   loops). *)
let print_sched ~title results =
  let pct num den =
    if den = 0 then "-" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int num /. float_of_int den)
  in
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun (v, (m : Measure.timed)) ->
            let c = m.Measure.counters in
            [
              r.bench.Registry.name;
              Registry.describe_version v;
              string_of_int c.Telemetry.s_tasks_spawned;
              string_of_int c.Telemetry.s_chunks_executed;
              string_of_int c.Telemetry.s_steals;
              pct c.Telemetry.s_steals c.Telemetry.s_steal_attempts;
              (if m.Measure.best_s > 0.0 then
                 Printf.sprintf "%.2e"
                   (float_of_int c.Telemetry.s_tasks_spawned /. m.Measure.best_s)
               else "-");
            ])
          r.sched_pn)
      results
  in
  Tables.print ~title
    ~headers:[ "bench"; "version"; "tasks"; "chunks"; "steals"; "steal hit"; "tasks/s" ]
    ~rows

let fig13_rows cfg = List.map (run_bench cfg) Registry.bid_benches

let print_fig13 results =
  let time_row r =
    let a1 = get "array" r.times_p1 and r1 = get "rad" r.times_p1 and d1 = get "delay" r.times_p1 in
    let an = get "array" r.times_pn and rn = get "rad" r.times_pn and dn = get "delay" r.times_pn in
    [
      r.bench.Registry.name;
      Measure.pp_time a1; Measure.pp_time r1; Measure.pp_time d1; Tables.ratio r1 d1;
      Measure.pp_time an; Measure.pp_time rn; Measure.pp_time dn; Tables.ratio rn dn;
    ]
  in
  Tables.print ~title:"Figure 13 (time): BID benchmarks — A | R | Ours, P=1 then P=max"
    ~headers:[ "bench"; "A(1)"; "R(1)"; "Ours(1)"; "R/Ours"; "A(P)"; "R(P)"; "Ours(P)"; "R/Ours" ]
    ~rows:(List.map time_row results);
  let space_row r =
    let a = get "array" r.allocs and rr = get "rad" r.allocs and d = get "delay" r.allocs in
    [
      r.bench.Registry.name;
      Measure.pp_bytes a; Measure.pp_bytes rr; Measure.pp_bytes d;
      Tables.ratio a d; Tables.ratio rr d;
    ]
  in
  Tables.print ~title:"Figure 13 (space): allocations — A | R | Ours"
    ~headers:[ "bench"; "A"; "R"; "Ours"; "A/Ours"; "R/Ours" ]
    ~rows:(List.map space_row results)

let fig14_rows cfg = List.map (run_bench cfg) Registry.rad_benches

let print_fig14 results =
  let time_row r =
    let a1 = get "array" r.times_p1 and d1 = get "delay" r.times_p1 in
    let an = get "array" r.times_pn and dn = get "delay" r.times_pn in
    [
      r.bench.Registry.name;
      Measure.pp_time a1; Measure.pp_time d1; Tables.ratio a1 d1;
      Measure.pp_time an; Measure.pp_time dn; Tables.ratio an dn;
    ]
  in
  Tables.print ~title:"Figure 14 (time): RAD benchmarks — A | Ours, P=1 then P=max"
    ~headers:[ "bench"; "A(1)"; "Ours(1)"; "A/Ours"; "A(P)"; "Ours(P)"; "A/Ours" ]
    ~rows:(List.map time_row results);
  let space_row r =
    let a = get "array" r.allocs and d = get "delay" r.allocs in
    [ r.bench.Registry.name; Measure.pp_bytes a; Measure.pp_bytes d; Tables.ratio a d ]
  in
  Tables.print ~title:"Figure 14 (space): allocations — A | Ours"
    ~headers:[ "bench"; "A"; "Ours"; "A/Ours" ]
    ~rows:(List.map space_row results)

(* ------------------------------------------------------------------ *)
(* Figure 15: speedup curves                                           *)

let fig15 cfg =
  let benches =
    List.filter (fun b -> List.mem b.Registry.name [ "bfs"; "primes" ]) Registry.all
  in
  List.iter
    (fun (b : Registry.bench) ->
      let size = scaled cfg b.default_size in
      Printf.eprintf "  fig15 %s...\n%!" b.name;
      let versions = b.prepare size in
      (* Baseline: 1-processor delay time. *)
      let t1_delay =
        Measure.with_domains 1 (fun () ->
            Measure.time ~repeat:cfg.repeat (get "delay" (List.map (fun v -> (v.Registry.vname, v.Registry.run)) versions)))
      in
      let data =
        List.map
          (fun p ->
            let ts =
              Measure.with_domains p (fun () ->
                  List.map
                    (fun v ->
                      let t = Measure.time ~repeat:cfg.repeat v.Registry.run in
                      record ~section:"fig15" ~bench:b.name
                        ~version:v.Registry.vname ~procs:p ~metric:"time_s" t;
                      (v.Registry.vname, t))
                    versions)
            in
            (p, List.map (fun (v, t) -> (v, t1_delay /. t)) ts))
          cfg.proc_list
      in
      let rows =
        List.map
          (fun (p, sp) ->
            string_of_int p
            :: List.map (fun v -> Printf.sprintf "%.2f" (List.assoc v sp))
                 [ "delay"; "array"; "rad" ])
          data
      in
      Tables.print
        ~title:
          (Printf.sprintf
             "Figure 15: %s speedups vs 1-proc delay (%s). NOTE: flat on a 1-core host."
             b.name (b.describe size))
        ~headers:[ "P"; "delay"; "array"; "rad" ]
        ~rows;
      Option.iter
        (fun dir ->
          let series =
            List.map
              (fun v ->
                {
                  Bds_harness.Svg_plot.label = v;
                  points =
                    List.map
                      (fun (p, sp) -> (float_of_int p, List.assoc v sp))
                      data;
                })
              [ "delay"; "array"; "rad" ]
          in
          let path = Filename.concat dir (Printf.sprintf "fig15_%s.svg" b.name) in
          Bds_harness.Svg_plot.write ~path
            ~title:(Printf.sprintf "Figure 15: %s" b.name)
            ~xlabel:"processors" ~ylabel:"speedup vs 1-proc delay" series;
          Printf.eprintf "  wrote %s\n%!" path)
        cfg.plots)
    benches

(* ------------------------------------------------------------------ *)
(* Figure 16: stream-of-blocks vs block-delayed                        *)

let fig16 cfg =
  let n = scaled cfg 2_000_000 in
  Printf.eprintf "  fig16 (n=%d)...\n%!" n;
  let a = K.Bestcut.generate n in
  Measure.with_domains cfg.procs (fun () ->
      let t_array = Measure.time ~repeat:cfg.repeat (fun () -> ignore (K.Bestcut.Array_version.best_cut a)) in
      let t_delay = Measure.time ~repeat:cfg.repeat (fun () -> ignore (K.Bestcut.Delay_version.best_cut a)) in
      let block_sizes =
        List.filter (fun bs -> bs <= n) [ 1_000; 10_000; 100_000; 1_000_000 ]
      in
      let data =
        List.map
          (fun bs ->
            let t =
              Measure.time ~repeat:cfg.repeat (fun () ->
                  ignore (K.Bestcut.best_cut_sob ~block_size:bs a))
            in
            record ~section:"fig16" ~bench:"bestcut-sob"
              ~version:(Printf.sprintf "B=%d" bs) ~procs:cfg.procs
              ~metric:"time_s" t;
            (bs, t))
          block_sizes
      in
      let rows =
        List.map
          (fun (bs, t) ->
            [
              Printf.sprintf "%.0e" (float_of_int bs);
              Measure.pp_time t;
              Tables.ratio t t_array;
              Tables.ratio t t_delay;
            ])
          data
      in
      Tables.print
        ~title:
          (Printf.sprintf
             "Figure 16: stream-of-blocks bestcut across block sizes, P=%d (array %s, delay %s)"
             cfg.procs (Measure.pp_time t_array) (Measure.pp_time t_delay))
        ~headers:[ "block size"; "T"; "T/A"; "T/Ours" ]
        ~rows;
      Option.iter
        (fun dir ->
          let lg bs = Float.log10 (float_of_int bs) in
          let flat t = List.map (fun (bs, _) -> (lg bs, t)) data in
          let series =
            [
              {
                Bds_harness.Svg_plot.label = "stream-of-blocks";
                points = List.map (fun (bs, t) -> (lg bs, t)) data;
              };
              { Bds_harness.Svg_plot.label = "array"; points = flat t_array };
              { Bds_harness.Svg_plot.label = "delay (ours)"; points = flat t_delay };
            ]
          in
          let path = Filename.concat dir "fig16_bestcut.svg" in
          Bds_harness.Svg_plot.write ~path
            ~title:"Figure 16: stream-of-blocks bestcut"
            ~xlabel:"log10(block size)" ~ylabel:"time (s)" series;
          Printf.eprintf "  wrote %s\n%!" path)
        cfg.plots)

(* ------------------------------------------------------------------ *)
(* Extension applications (PBBS-style, mentioned in §1)                *)

let ext cfg =
  let results = List.map (run_bench cfg) Registry.ext_benches in
  let time_row r =
    let vs = List.map fst r.times_p1 in
    let cells l = List.concat_map (fun v -> [ Measure.pp_time (get v l) ]) vs in
    (r.bench.Registry.name :: cells r.times_p1) @ cells r.times_pn
  in
  (* Versions differ per bench; print a table per bench. *)
  List.iter
    (fun r ->
      let vs = List.map fst r.times_p1 in
      Tables.print
        ~title:(Printf.sprintf "Extension: %s (%s)" r.bench.Registry.name
                  (r.bench.Registry.describe r.size))
        ~headers:("bench" :: List.map (fun v -> v ^ "(1)") vs
                  @ List.map (fun v -> v ^ "(P)") vs)
        ~rows:[ time_row r ];
      Tables.print ~title:"  space (major-heap alloc)"
        ~headers:("bench" :: vs)
        ~rows:
          [
            r.bench.Registry.name
            :: List.map (fun v -> Measure.pp_bytes (get v r.allocs)) vs;
          ])
    results

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md's called-out choices                         *)

let ablation cfg =
  let n = scaled cfg 2_000_000 in
  (* 1. Block-size policy: the bestcut-shaped pipeline across fixed block
     sizes. *)
  Printf.eprintf "  ablation: block size...\n%!" ;
  let a = K.Bestcut.generate n in
  Measure.with_domains cfg.procs (fun () ->
      let rows =
        List.map
          (fun bs ->
            Bds.Block.set_policy (Bds.Block.Fixed bs);
            let t =
              Measure.time ~repeat:cfg.repeat (fun () ->
                  ignore (K.Bestcut.Delay_version.best_cut a))
            in
            Bds.Block.reset_policy ();
            [ string_of_int bs; Measure.pp_time t ])
          [ 512; 2048; 8192; 32768; 131072; 524288 ]
      in
      Tables.print
        ~title:(Printf.sprintf "Ablation: BID block size B on bestcut/delay (n=%d, P=%d)" n cfg.procs)
        ~headers:[ "B"; "time" ] ~rows);
  (* 2. Leaf grain, swept through the unified granularity layer: the
     override steers every auto-grained parallel_for, exactly what
     BDS_GRAIN does from the environment. *)
  Printf.eprintf "  ablation: grain...\n%!" ;
  let out = Array.make n 0 in
  Measure.with_domains cfg.procs (fun () ->
      let rows =
        List.map
          (fun g ->
            Grain.set_leaf_grain (Some g);
            let t =
              Fun.protect
                ~finally:(fun () -> Grain.set_leaf_grain None)
                (fun () ->
                  Measure.time ~repeat:cfg.repeat (fun () ->
                      Runtime.parallel_for 0 n (fun i ->
                          Array.unsafe_set out i (i * 3))))
            in
            [ string_of_int g; Measure.pp_time t ])
          [ 16; 256; 4096; 65536; 1048576 ]
      in
      Tables.print
        ~title:(Printf.sprintf "Ablation: leaf grain via Grain.set_leaf_grain (n=%d, P=%d)" n cfg.procs)
        ~headers:[ "grain"; "time" ] ~rows);
  (* 3. The §3 force-vs-recompute tradeoff: fully delayed bestcut
     evaluates the initial map twice (2n + O(b) memory ops); forcing it
     costs an n-word array but computes the map once (4n + O(b)). *)
  Printf.eprintf "  ablation: force vs delay...\n%!" ;
  let delayed () =
    let s = S.of_array a in
    let is_end = S.map (fun x -> if x > K.Bestcut.end_threshold then 1 else 0) s in
    let counts, _ = S.scan ( + ) 0 is_end in
    let fn = float_of_int n in
    let costs =
      S.mapi
        (fun i c ->
          let pos = float_of_int i /. fn in
          (pos *. float_of_int c) +. ((1.0 -. pos) *. float_of_int (n - c)))
        counts
    in
    S.reduce Float.min infinity costs
  in
  let forced () =
    let s = S.of_array a in
    let is_end = S.force (S.map (fun x -> if x > K.Bestcut.end_threshold then 1 else 0) s) in
    let counts, _ = S.scan ( + ) 0 is_end in
    let fn = float_of_int n in
    let costs =
      S.mapi
        (fun i c ->
          let pos = float_of_int i /. fn in
          (pos *. float_of_int c) +. ((1.0 -. pos) *. float_of_int (n - c)))
        counts
    in
    S.reduce Float.min infinity costs
  in
  Measure.with_domains cfg.procs (fun () ->
      let td = Measure.time ~repeat:cfg.repeat (fun () -> ignore (delayed ())) in
      let tf = Measure.time ~repeat:cfg.repeat (fun () -> ignore (forced ())) in
      let ad = Measure.alloc_single_domain (fun () -> ignore (delayed ())) in
      let af = Measure.alloc_single_domain (fun () -> ignore (forced ())) in
      Tables.print
        ~title:"Ablation: force the initial map of bestcut vs recompute it (§3)"
        ~headers:[ "variant"; "time"; "alloc" ]
        ~rows:
          [
            [ "delay (map evaluated twice)"; Measure.pp_time td; Measure.pp_bytes ad ];
            [ "force (extra n-word array)"; Measure.pp_time tf; Measure.pp_bytes af ];
          ]);
  (* 3b. Static grain vs lazy binary splitting on an imbalanced loop
     (iteration i costs ~i work: a triangular load). *)
  Printf.eprintf "  ablation: lazy binary splitting...\n%!" ;
  let nl = scaled cfg 30_000 in
  let body i =
    let acc = ref 0 in
    for k = 1 to i do
      acc := !acc + (k land 15)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  Measure.with_domains cfg.procs (fun () ->
      let rows =
        List.map
          (fun (name, f) -> [ name; Measure.pp_time (Measure.time ~repeat:cfg.repeat f) ])
          [
            ("static grain (auto)", fun () -> Runtime.parallel_for 0 nl body);
            ("static grain 4096", fun () -> Runtime.parallel_for ~grain:4096 0 nl body);
            ( "lazy binary splitting",
              (* Chunk comes from the unified knob (BDS-equivalent of
                 setting it via Grain), not a local magic number. *)
              fun () ->
                let old = Grain.lazy_chunk () in
                Grain.set_lazy_chunk 64;
                Fun.protect
                  ~finally:(fun () -> Grain.set_lazy_chunk old)
                  (fun () -> Runtime.parallel_for_lazy 0 nl body) );
          ]
      in
      Tables.print
        ~title:
          (Printf.sprintf
             "Ablation: static grain vs lazy binary splitting, triangular load (n=%d, P=%d)"
             nl cfg.procs)
        ~headers:[ "strategy"; "time" ] ~rows);
  (* 4. Stream encoding (§4.4): the per-block stream representation is an
     implementation detail — trickle closures (ours/MPL-style) vs pure
     state-passing. Sequential, like the inner loop of a block. *)
  Printf.eprintf "  ablation: stream encoding...\n%!" ;
  let m = scaled cfg 2_000_000 in
  let chain_trickle () =
    let open Bds_stream.Stream in
    reduce ( + ) 0
      (scan_incl ( + ) 0 (map (fun x -> (x * 2) + 1) (tabulate m (fun i -> i land 1023))))
  in
  let chain_pure () =
    let open Bds_stream.Stream_pure in
    reduce ( + ) 0
      (scan_incl ( + ) 0 (map (fun x -> (x * 2) + 1) (tabulate m (fun i -> i land 1023))))
  in
  let tt = Measure.time ~repeat:cfg.repeat chain_trickle in
  let tp = Measure.time ~repeat:cfg.repeat chain_pure in
  let at = Measure.total_alloc_single_domain chain_trickle in
  let ap = Measure.total_alloc_single_domain chain_pure in
  assert (chain_trickle () = chain_pure ());
  Tables.print
    ~title:(Printf.sprintf "Ablation: stream encoding on a fused map-scan-reduce chain (n=%d, sequential)" m)
    ~headers:[ "encoding"; "time"; "alloc" ]
    ~rows:
      [
        [ "trickle closures (ours)"; Measure.pp_time tt; Measure.pp_bytes at ];
        [ "pure state-passing"; Measure.pp_time tp; Measure.pp_bytes ap ];
      ]

(* ------------------------------------------------------------------ *)
(* Granularity sweeps (--sweep-grain / --sweep-block): run the bestcut
   delayed pipeline at each knob setting and report time plus scheduler
   pressure, so a Figure 16-style curve can be drawn for either knob of
   the unified granularity layer.  Rows also land in --csv under the
   sections "sweep-grain" and "sweep-block". *)

let sweeps cfg =
  let n = scaled cfg 2_000_000 in
  let a = K.Bestcut.generate n in
  let run_point ~section ~version setup teardown =
    setup ();
    Fun.protect ~finally:teardown (fun () ->
        let m =
          Measure.time_counters ~repeat:cfg.repeat (fun () ->
              ignore (K.Bestcut.Delay_version.best_cut a))
        in
        let c = m.Measure.counters in
        let per_s count =
          if m.Measure.best_s > 0.0 then float_of_int count /. m.Measure.best_s
          else 0.0
        in
        let steals_per_s = per_s c.Telemetry.s_steals in
        let tasks_per_s = per_s c.Telemetry.s_tasks_spawned in
        record ~section ~bench:"bestcut-delay" ~version ~procs:cfg.procs
          ~metric:"time_s" m.Measure.best_s;
        record ~section ~bench:"bestcut-delay" ~version ~procs:cfg.procs
          ~metric:"steals_per_s" steals_per_s;
        record ~section ~bench:"bestcut-delay" ~version ~procs:cfg.procs
          ~metric:"tasks_per_s" tasks_per_s;
        record ~section ~bench:"bestcut-delay" ~version ~procs:cfg.procs
          ~metric:"counters_clamped" (if m.Measure.clamped then 1.0 else 0.0);
        ( [
            version;
            Measure.pp_time m.Measure.best_s;
            Printf.sprintf "%.3e" steals_per_s;
            Printf.sprintf "%.3e" tasks_per_s;
          ],
          m.Measure.best_s ))
  in
  let headers = [ "setting"; "time"; "steals/s"; "tasks/s" ] in
  Measure.with_domains cfg.procs (fun () ->
      if cfg.sweep_grain <> [] then begin
        Printf.eprintf "  sweep: leaf grain...\n%!";
        let points =
          List.map
            (fun g ->
              run_point ~section:"sweep-grain"
                ~version:(Printf.sprintf "grain=%d" g)
                (fun () -> Grain.set_leaf_grain (Some g))
                (fun () -> Grain.set_leaf_grain None))
            cfg.sweep_grain
        in
        let rows = List.map fst points in
        let rows =
          if not cfg.adaptive then rows
          else begin
            (* The headline measurement of the self-tuning controller:
               the same pipeline, no fixed grain, controller live.  A
               warm-up phase lets it converge (decisions are memoized
               per op/size/worker key), then the timed runs measure the
               converged grains plus the residual probe overhead.  The
               ratio best-fixed/adaptive lands in the CSV; ~1.0 means
               the controller found the sweep optimum on its own. *)
            Printf.eprintf "  sweep: adaptive controller...\n%!";
            let row, t_adapt =
              run_point ~section:"sweep-grain" ~version:"adaptive"
                (fun () ->
                  Grain.set_adaptive true;
                  Autotune.reset ();
                  for _ = 1 to 40 do
                    ignore
                      (Sys.opaque_identity (K.Bestcut.Delay_version.best_cut a))
                  done)
                (fun () -> Grain.set_adaptive false)
            in
            let t_best =
              List.fold_left (fun m (_, t) -> min m t) infinity points
            in
            let ratio = if t_adapt > 0.0 then t_best /. t_adapt else 0.0 in
            record ~section:"sweep-grain" ~bench:"bestcut-delay"
              ~version:"adaptive" ~procs:cfg.procs
              ~metric:"adaptive_vs_best_fixed" ratio;
            Printf.eprintf "  adaptive_vs_best_fixed = %.3f\n%!" ratio;
            (match cfg.adapt_gate with
            | Some floor when ratio < floor ->
              gate_failure :=
                Some
                  (Printf.sprintf
                     "FAIL: adaptive_vs_best_fixed %.3f below gate %.3f"
                     ratio floor)
            | _ -> ());
            rows @ [ row ]
          end
        in
        Tables.print
          ~title:
            (Printf.sprintf "Sweep: leaf grain (BDS_GRAIN) on bestcut/delay (n=%d, P=%d)"
               n cfg.procs)
          ~headers ~rows
      end;
      if cfg.sweep_block <> [] then begin
        Printf.eprintf "  sweep: block size...\n%!";
        let rows =
          List.map
            (fun bs ->
              fst
                (run_point ~section:"sweep-block"
                   ~version:(Printf.sprintf "B=%d" bs)
                   (fun () -> Bds.Block.set_policy (Bds.Block.Fixed bs))
                   (fun () -> Bds.Block.reset_policy ())))
            cfg.sweep_block
        in
        Tables.print
          ~title:
            (Printf.sprintf
               "Sweep: block size (BDS_BLOCK_SIZE) on bestcut/delay (n=%d, P=%d)"
               n cfg.procs)
          ~headers ~rows
      end)

(* ------------------------------------------------------------------ *)
(* Stream execution: fused push fold vs trickle pull (--only
   stream-overhead).  One 3-stage combinator chain
   (tabulate |> map |> scan_incl), consumed two ways over the same
   stream value: "pull" drives the resumable trickle function exactly
   the way every linear consumer did before the push path existed (one
   indirect call + cursor bump per stage per element), "push" drives
   [Stream.reduce], i.e. the fused fold.  Sequential by construction —
   this is the *within-block* loop the Seq layer runs on every block —
   so the ratio is the per-element dispatch overhead the fold
   eliminates. *)

let stream_overhead cfg =
  let m = scaled cfg 2_000_000 in
  Printf.eprintf "  stream-overhead (n=%d)...\n%!" m;
  let mk () =
    Bds_stream.Stream.(
      scan_incl ( + ) 0
        (map (fun x -> (x * 2) + 1) (tabulate m (fun i -> i land 1023))))
  in
  (* Exactly the pre-push consumer loop: the step function arrives as a
     closure (as it does in [reduce f z s]), not inlined into the loop. *)
  let pull_reduce f z s =
    let next = Bds_stream.Stream.start s in
    let acc = ref z in
    for _ = 1 to Bds_stream.Stream.length s do
      acc := f !acc (next ())
    done;
    !acc
  in
  let pull () = pull_reduce ( + ) 0 (mk ()) in
  let push () = Bds_stream.Stream.reduce ( + ) 0 (mk ()) in
  assert (pull () = push ());
  Measure.with_domains cfg.procs (fun () ->
      let t_pull = Measure.time ~repeat:cfg.repeat (fun () -> ignore (pull ())) in
      let t_push = Measure.time ~repeat:cfg.repeat (fun () -> ignore (push ())) in
      let per_elem t = t /. float_of_int m *. 1e9 in
      List.iter
        (fun (version, t) ->
          record ~section:"stream-overhead" ~bench:"chain3" ~version
            ~procs:cfg.procs ~metric:"time_s" t;
          record ~section:"stream-overhead" ~bench:"chain3" ~version
            ~procs:cfg.procs ~metric:"ns_per_elem" (per_elem t))
        [ ("pull", t_pull); ("push", t_push) ];
      Tables.print
        ~title:
          (Printf.sprintf
             "Stream execution: trickle pull vs fused push on map|scan_incl|reduce (n=%d, sequential)"
             m)
        ~headers:[ "driver"; "time"; "ns/elem"; "speedup" ]
        ~rows:
          [
            [ "pull (trickle)"; Measure.pp_time t_pull;
              Printf.sprintf "%.2f" (per_elem t_pull); "1.00x" ];
            [ "push (fused fold)"; Measure.pp_time t_push;
              Printf.sprintf "%.2f" (per_elem t_push);
              Tables.ratio t_pull t_push ];
          ]);
  (* Seq-level filter/flatten chains: the skip-push filter and
     nested-push flatten expose their outputs as delayed region views,
     so a chain consumed once never materialises an intermediate.
     "materialized" forces each intermediate to its memo array before
     the next stage (the pre-fusion shape: pack, then reread);
     "fused" consumes the delayed views directly.  The gated quantity
     is again the within-run ratio.  The trickle_fallbacks delta is
     recorded across the fused run and must be zero — a nonzero count
     means a region view silently fell back to a trickle-derived
     fold. *)
  let chain_bench name ~materialized ~fused =
    assert (materialized () = fused ());
    Measure.with_domains cfg.procs (fun () ->
        let t_mat =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (materialized ()))
        in
        let before = Telemetry.snapshot () in
        let t_fused =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (fused ()))
        in
        let fallbacks =
          (Telemetry.diff ~before ~after:(Telemetry.snapshot ()))
            .Telemetry.s_trickle_fallbacks
        in
        List.iter
          (fun (version, t) ->
            record ~section:"stream-overhead" ~bench:name ~version
              ~procs:cfg.procs ~metric:"time_s" t)
          [ ("materialized", t_mat); ("fused", t_fused) ];
        record ~section:"stream-overhead" ~bench:name ~version:"fused"
          ~procs:cfg.procs ~metric:"speedup_fused_vs_materialized"
          (t_mat /. t_fused);
        record ~section:"stream-overhead" ~bench:name ~version:"fused"
          ~procs:cfg.procs ~metric:"trickle_fallbacks" (float_of_int fallbacks);
        Tables.print
          ~title:
            (Printf.sprintf
               "Seq chain: materialized intermediates vs fused regions on %s (P=%d)"
               name cfg.procs)
          ~headers:[ "version"; "time"; "speedup"; "trickle_fallbacks" ]
          ~rows:
            [
              [ "materialized"; Measure.pp_time t_mat; "1.00x"; "-" ];
              [ "fused"; Measure.pp_time t_fused; Tables.ratio t_mat t_fused;
                string_of_int fallbacks ];
            ])
  in
  let module S = Bds.Seq in
  let p x = x land 3 <> 0 in
  let input () = S.tabulate m (fun i -> (i * 7) land 1023) in
  chain_bench "filter-chain"
    ~materialized:(fun () ->
      S.reduce ( + ) 0 (S.force (S.filter p (S.force (S.filter p (input ()))))))
    ~fused:(fun () -> S.reduce ( + ) 0 (S.filter p (S.filter p (input ()))));
  let mf = m / 4 in
  let expand x = S.tabulate 4 (fun j -> x + j) in
  chain_bench "flatten-chain"
    ~materialized:(fun () ->
      S.reduce ( + ) 0
        (S.force (S.filter p (S.force (S.flat_map expand (S.iota mf))))))
    ~fused:(fun () ->
      S.reduce ( + ) 0 (S.filter p (S.flat_map expand (S.iota mf))))

(* ------------------------------------------------------------------ *)
(* Float kernels: boxed vs unboxed lane (--only float-kernels).

   Each bench runs the same float-heavy computation two ways on the
   same input: "boxed" through the generic polymorphic pipeline (the
   pre-ISSUE-7 code path — polymorphic reads, boxed closure crossings,
   an allocation per element) and "unboxed" through the float lane
   (Float_seq / Stream.sum_floats / Psort.sort_floats).  As with
   stream-overhead, the gated quantity is the within-run speedup ratio,
   which is stable on this noisy shared host even when absolute times
   are not (BENCH_7.json, gated by bench_compare).

   The unboxed runs are wrapped in a telemetry snapshot pair: the
   float_boxed_fallback delta is recorded per bench and must be zero on
   these fused chains (ISSUE 7 acceptance criterion) — a nonzero count
   means a pipeline silently fell off the lane. *)

let float_kernels cfg =
  let n = scaled cfg 2_000_000 in
  Printf.eprintf "  float-kernels (n=%d)...\n%!" n;
  let module FS = Bds.Float_seq in
  let af = K.Mcss.generate_floats ~seed:7 n in
  let bf = K.Mcss.generate_floats ~seed:8 n in
  let pts = K.Linefit.generate n in
  let close ?(tol = 1e-6) x y =
    let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
    Float.abs (x -. y) <= tol *. scale
  in
  Measure.with_domains cfg.procs (fun () ->
      let results = ref [] in
      let bench name ~boxed ~unboxed ~agree =
        if not (agree (boxed ()) (unboxed ())) then
          failwith (Printf.sprintf "float-kernels/%s: boxed and unboxed disagree" name);
        let t_boxed =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (boxed ()))
        in
        let before = Telemetry.snapshot () in
        let t_unboxed =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (unboxed ()))
        in
        let after = Telemetry.snapshot () in
        let fallbacks =
          (Telemetry.diff ~before ~after).Telemetry.s_float_boxed_fallback
        in
        List.iter
          (fun (version, t) ->
            record ~section:"float-kernels" ~bench:name ~version
              ~procs:cfg.procs ~metric:"time_s" t)
          [ ("boxed", t_boxed); ("unboxed", t_unboxed) ];
        record ~section:"float-kernels" ~bench:name ~version:"unboxed"
          ~procs:cfg.procs ~metric:"speedup_unboxed_vs_boxed"
          (t_boxed /. t_unboxed);
        record ~section:"float-kernels" ~bench:name ~version:"unboxed"
          ~procs:cfg.procs ~metric:"boxed_fallbacks" (float_of_int fallbacks);
        results := (name, t_boxed, t_unboxed, fallbacks) :: !results
      in
      bench "sum"
        ~boxed:(fun () -> S.reduce ( +. ) 0.0 (S.of_array af))
        ~unboxed:(fun () -> S.float_sum (S.of_array af))
        ~agree:(close ~tol:1e-9);
      bench "dot"
        ~boxed:(fun () ->
          S.reduce ( +. ) 0.0 (S.zip_with ( *. ) (S.of_array af) (S.of_array bf)))
        ~unboxed:(fun () -> FS.dot (FS.of_array af) (FS.of_array bf))
        ~agree:(close ~tol:1e-9);
      bench "integrate"
        ~boxed:(fun () -> K.Integrate.Delay_version.integrate n)
        ~unboxed:(fun () -> K.Integrate.integrate_unboxed n)
        ~agree:(close ~tol:1e-9);
      bench "linefit"
        ~boxed:(fun () -> K.Linefit.Delay_version.fit pts)
        ~unboxed:(fun () -> K.Linefit.fit_unboxed pts)
        ~agree:(fun (s1, i1) (s2, i2) ->
          close ~tol:1e-6 s1 s2 && close ~tol:1e-6 i1 i2);
      bench "mcss-float"
        ~boxed:(fun () -> K.Mcss.mcss_floats_boxed af)
        ~unboxed:(fun () -> K.Mcss.mcss_floats af)
        ~agree:(close ~tol:1e-9);
      bench "sort-floats"
        ~boxed:(fun () -> Bds_sort.Psort.sort Float.compare af)
        ~unboxed:(fun () -> Bds_sort.Psort.sort_floats af)
        ~agree:(fun a b ->
          Array.length a = Array.length b
          && Array.for_all2 (fun x y -> Float.equal x y) a b);
      Tables.print
        ~title:
          (Printf.sprintf
             "Float kernels: boxed pipeline vs unboxed lane (n=%d, P=%d)" n
             cfg.procs)
        ~headers:[ "bench"; "boxed"; "unboxed"; "speedup"; "fallbacks" ]
        ~rows:
          (List.rev_map
             (fun (name, tb, tu, fb) ->
               [
                 name;
                 Measure.pp_time tb;
                 Measure.pp_time tu;
                 Tables.ratio tb tu;
                 string_of_int fb;
               ])
             !results))

(* ------------------------------------------------------------------ *)
(* Int kernels: generic polymorphic reduce vs the monomorphic int lane
   (--only int-kernels).  Same shape as float-kernels, but unlike
   floats nothing is boxed here — OCaml ints are immediate — so the
   within-run speedup ratio isolates exactly what Seq.int_sum removes:
   the polymorphic combine-closure dispatch per element of the generic
   reduce (each block becomes one native int loop). *)

let int_kernels cfg =
  let n = scaled cfg 2_000_000 in
  Printf.eprintf "  int-kernels (n=%d)...\n%!" n;
  let a = Array.init n (fun i -> (i * 7) land 1023) in
  Measure.with_domains cfg.procs (fun () ->
      let results = ref [] in
      let bench name ~generic ~mono =
        if generic () <> mono () then
          failwith
            (Printf.sprintf "int-kernels/%s: generic and monomorphic disagree"
               name);
        let t_generic =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (generic ()))
        in
        let t_mono =
          Measure.time ~repeat:cfg.repeat (fun () -> ignore (mono ()))
        in
        List.iter
          (fun (version, t) ->
            record ~section:"int-kernels" ~bench:name ~version
              ~procs:cfg.procs ~metric:"time_s" t)
          [ ("generic", t_generic); ("monomorphic", t_mono) ];
        record ~section:"int-kernels" ~bench:name ~version:"monomorphic"
          ~procs:cfg.procs ~metric:"speedup_monomorphic_vs_generic"
          (t_generic /. t_mono);
        results := (name, t_generic, t_mono) :: !results
      in
      bench "sum-array"
        ~generic:(fun () -> S.reduce ( + ) 0 (S.of_array a))
        ~mono:(fun () -> S.int_sum (S.of_array a));
      bench "sum-map"
        ~generic:(fun () ->
          S.reduce ( + ) 0 (S.map (fun x -> (x * 7) land 1023) (S.iota n)))
        ~mono:(fun () ->
          S.int_sum (S.map (fun x -> (x * 7) land 1023) (S.iota n)));
      bench "sum-scan"
        ~generic:(fun () -> S.reduce ( + ) 0 (S.scan_incl ( + ) 0 (S.iota n)))
        ~mono:(fun () -> S.int_sum (S.scan_incl ( + ) 0 (S.iota n)));
      Tables.print
        ~title:
          (Printf.sprintf
             "Int kernels: generic reduce vs monomorphic int lane (n=%d, P=%d)"
             n cfg.procs)
        ~headers:[ "bench"; "generic"; "monomorphic"; "speedup" ]
        ~rows:
          (List.rev_map
             (fun (name, tg, tm) ->
               [ name; Measure.pp_time tg; Measure.pp_time tm;
                 Tables.ratio tg tm ])
             !results))

(* ------------------------------------------------------------------ *)
(* --service: open-loop load generator against the job service          *)

(* Drive the in-process Service with an open-loop arrival process: jobs
   are submitted on a fixed cadence regardless of completions, so when
   offered load exceeds what [runners] can drain, the outstanding-job
   bound fills and admission control sheds with typed Overloaded — the
   backpressure behaviour under test, not an error.  The mix is
   deterministic by index: mostly short busy jobs (predictable service
   time), some Seq pipelines, a slice of fail-once jobs (retry path) and
   a slice of tight-deadline jobs (deadline path), spread over four
   tenants.  Reports p50/p99 job latency (admission to terminal outcome,
   via Histogram), rejection rate and retries, and checks the zero-lost-
   jobs invariant: admitted = completed + failed + cancelled +
   deadline_exceeded.  Exits non-zero if any job is lost. *)
let service_bench cfg =
  let module Service = Bds_service.Service in
  let module Job = Bds_service.Job in
  let module Histogram = Bds_runtime.Histogram in
  (* The service path runs with the adaptive controller live: a
     long-running multi-tenant server is exactly the workload that
     cannot be hand-tuned per request shape, so the load generator
     doubles as the controller's always-on soak test. *)
  Grain.set_adaptive true;
  let total = scaled cfg 400 in
  let rate = 2000.0 (* jobs/s offered *) in
  let config =
    {
      Service.default_config with
      Service.capacity = 32;
      runners = cfg.procs;
    }
  in
  Printf.printf
    "Job-service load generator: %d jobs open-loop at %.0f/s (capacity=%d, \
     runners=%d)\n\
     chaos: %s\n%!"
    total rate config.Service.capacity config.Service.runners
    (Bds_runtime.Chaos.describe ());
  let before = Telemetry.snapshot () in
  let svc = Service.create ~config () in
  let lat = Histogram.create () in
  let request i =
    let tenant = Printf.sprintf "t%d" (i mod 4) in
    if i mod 10 = 7 then
      (* Tight deadline against a longer busy loop: deadline path. *)
      Job.request ~tenant ~params:[ ("ms", "20") ] ~deadline_ms:2 "busy"
    else if i mod 10 = 3 then
      (* Fails once, then a small pipeline: retry path. *)
      Job.request ~tenant ~params:[ ("k", "1"); ("n", "1000") ] "fail"
    else if i mod 5 = 1 then
      Job.request ~tenant ~params:[ ("n", "20000") ] "sum"
    else
      (* 3ms busy at 2000/s across [runners] pool workers oversubscribes
         the service, so the paced phase itself reaches saturation. *)
      Job.request ~tenant ~params:[ ("ms", "3") ] "busy"
  in
  let t0 = Unix.gettimeofday () in
  let rejected = ref 0 in
  for i = 0 to total - 1 do
    (* Open loop: wait for the arrival time, not for the service. *)
    let due = t0 +. (float_of_int i /. rate) in
    let rec pace () =
      let d = due -. Unix.gettimeofday () in
      if d > 0.0 then begin
        Thread.delay d;
        pace ()
      end
    in
    pace ();
    let submitted = Unix.gettimeofday () in
    match
      Service.submit svc
        ~on_complete:(fun _ ->
          Histogram.record lat
            ~ns:
              (int_of_float
                 ((Unix.gettimeofday () -. submitted) *. 1e9)))
        (request i)
    with
    | Ok _ -> ()
    | Error (`Rejected _) -> incr rejected
    | Error (`Bad_request msg) -> failwith ("service bench: bad request: " ^ msg)
  done;
  Service.shutdown svc;
  let elapsed = Unix.gettimeofday () -. t0 in
  let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
  let admitted = d.Telemetry.s_jobs_admitted in
  let resolved =
    d.Telemetry.s_jobs_completed + d.Telemetry.s_jobs_failed
    + d.Telemetry.s_jobs_cancelled + d.Telemetry.s_jobs_deadline_exceeded
  in
  let lost = admitted - resolved in
  let s = Histogram.snapshot lat in
  let ms ns = float_of_int ns /. 1e6 in
  let rejection_rate = float_of_int !rejected /. float_of_int total in
  Tables.print ~title:"Job-service load generator"
    ~headers:[ "metric"; "value" ]
    ~rows:
      [
        [ "offered jobs"; string_of_int total ];
        [ "admitted"; string_of_int admitted ];
        [ "rejected (Overloaded)"; string_of_int !rejected ];
        [ "rejection rate"; Printf.sprintf "%.1f%%" (100.0 *. rejection_rate) ];
        [ "completed"; string_of_int d.Telemetry.s_jobs_completed ];
        [ "failed"; string_of_int d.Telemetry.s_jobs_failed ];
        [ "cancelled"; string_of_int d.Telemetry.s_jobs_cancelled ];
        [ "deadline exceeded"; string_of_int d.Telemetry.s_jobs_deadline_exceeded ];
        [ "retries"; string_of_int d.Telemetry.s_jobs_retried ];
        [ "retries shed (breaker)"; string_of_int d.Telemetry.s_jobs_retries_shed ];
        [ "latency p50"; Printf.sprintf "%.2f ms" (ms (Histogram.p50 s)) ];
        [ "latency p99"; Printf.sprintf "%.2f ms" (ms (Histogram.p99 s)) ];
        [ "latency max"; Printf.sprintf "%.2f ms" (ms (Histogram.max_ns s)) ];
        [ "wall time"; Printf.sprintf "%.2f s" elapsed ];
        [ "lost jobs"; string_of_int lost ];
      ];
  List.iter
    (fun (metric, v) ->
      record ~section:"service" ~bench:"loadgen" ~version:"service"
        ~procs:cfg.procs ~metric v)
    [
      ("p50_ns", float_of_int (Histogram.p50 s));
      ("p99_ns", float_of_int (Histogram.p99 s));
      ("rejection_rate", rejection_rate);
      ("retries", float_of_int d.Telemetry.s_jobs_retried);
      ("lost_jobs", float_of_int lost);
    ];
  if lost <> 0 then begin
    Printf.eprintf "FAIL: %d admitted job(s) never reached a terminal outcome\n" lost;
    exit 1
  end;
  if Histogram.total_count s <> admitted then begin
    (* Every admitted job's on_complete fired exactly once. *)
    Printf.eprintf "FAIL: %d admitted but %d completion callbacks\n" admitted
      (Histogram.total_count s);
    exit 1
  end;
  print_endline "\nzero lost jobs: every admitted job reached exactly one terminal outcome";
  (* Latency breakdown: where resolved jobs spent their wall time.
     Components are measured where they happen (fair-queue wait at
     dequeue, run around each attempt, backoff around each delay); the
     residue is scheduling overhead (condvar wakeups, monitor cadence).
     The accounting must cohere: components can never exceed wall by
     more than measurement noise, and without chaos the three
     components plus a sane overhead must explain most of the wall —
     a breakdown that doesn't sum is worse than none. *)
  let bk = Service.latency_breakdown svc in
  let sec ns = float_of_int ns /. 1e9 in
  let wall_s = sec bk.Service.bk_wall_ns in
  let accounted_ns =
    bk.Service.bk_queue_ns + bk.Service.bk_run_ns + bk.Service.bk_backoff_ns
  in
  let frac = if wall_s > 0.0 then sec accounted_ns /. wall_s else 1.0 in
  let pct ns =
    if bk.Service.bk_wall_ns > 0 then
      100.0 *. float_of_int ns /. float_of_int bk.Service.bk_wall_ns
    else 0.0
  in
  Tables.print ~title:"Latency breakdown (cumulative over resolved jobs)"
    ~headers:[ "component"; "seconds"; "% of wall" ]
    ~rows:
      [
        [ "wall (submit->outcome)"; Printf.sprintf "%.3f" wall_s; "100.0" ];
        [
          "queue wait";
          Printf.sprintf "%.3f" (sec bk.Service.bk_queue_ns);
          Printf.sprintf "%.1f" (pct bk.Service.bk_queue_ns);
        ];
        [
          "run (attempts)";
          Printf.sprintf "%.3f" (sec bk.Service.bk_run_ns);
          Printf.sprintf "%.1f" (pct bk.Service.bk_run_ns);
        ];
        [
          "backoff/chaos wait";
          Printf.sprintf "%.3f" (sec bk.Service.bk_backoff_ns);
          Printf.sprintf "%.1f" (pct bk.Service.bk_backoff_ns);
        ];
        [
          "overhead (residue)";
          Printf.sprintf "%.3f" (sec (bk.Service.bk_wall_ns - accounted_ns));
          Printf.sprintf "%.1f" (pct (bk.Service.bk_wall_ns - accounted_ns));
        ];
      ];
  record ~section:"service" ~bench:"loadgen" ~version:"service"
    ~procs:cfg.procs ~metric:"breakdown_accounted_frac" frac;
  let chaos_off = Bds_runtime.Chaos.describe () = "chaos: off" in
  (* 5% tolerance for clock reads straddling the component edges. *)
  if frac > 1.05 then begin
    Printf.eprintf
      "FAIL: breakdown components sum to %.1f%% of wall (> 105%%)\n"
      (100.0 *. frac);
    exit 1
  end;
  if chaos_off && bk.Service.bk_jobs > 0 && frac < 0.5 then begin
    Printf.eprintf
      "FAIL: breakdown accounts for only %.1f%% of wall without chaos \
       (want >= 50%%)\n"
      (100.0 *. frac);
    exit 1
  end;
  Printf.printf "breakdown coheres: %.1f%% of wall accounted\n" (100.0 *. frac);
  (* Scrape and validate the OpenMetrics exposition the service built
     up during the run — the same body bds_serve streams for METRICS. *)
  Service.collect_metrics svc;
  let exposition = Bds_runtime.Metrics.render () in
  (match Bds_runtime.Metrics.validate_string exposition with
  | Ok samples -> Printf.printf "metrics exposition valid: %d samples\n" samples
  | Error e ->
    Printf.eprintf "FAIL: metrics exposition invalid: %s\n" e;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test per paper table                  *)

let micro cfg =
  let open Bechamel in
  let open Toolkit in
  let n = scaled cfg 200_000 in
  let bc_input = K.Bestcut.generate n in
  let mcss_input = K.Mcss.generate n in
  (* --micro-filter: keep only benchmarks whose name contains the
     substring (quick single-kernel timings while tuning). *)
  let wanted name =
    match cfg.micro_filter with
    | None -> true
    | Some sub ->
      let nl = String.length name and sl = String.length sub in
      let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
      sl = 0 || at 0
  in
  let mk name f =
    if wanted name then [ Test.make ~name (Staged.stage f) ] else []
  in
  let tests =
    Test.make_grouped ~name:"bds" ~fmt:"%s %s"
      (List.concat
      [
        (* Figure 13's headline kernel in all three versions. *)
        mk "fig13/bestcut/array" (fun () -> K.Bestcut.Array_version.best_cut bc_input);
        mk "fig13/bestcut/rad" (fun () -> K.Bestcut.Rad_version.best_cut bc_input);
        mk "fig13/bestcut/delay" (fun () -> K.Bestcut.Delay_version.best_cut bc_input);
        (* Figure 14's map+reduce shape. *)
        mk "fig14/mcss/array" (fun () -> K.Mcss.Array_version.mcss mcss_input);
        mk "fig14/mcss/delay" (fun () -> K.Mcss.Delay_version.mcss mcss_input);
        (* Figure 16's within-block-parallel pipeline. *)
        mk "fig16/bestcut/sob" (fun () -> K.Bestcut.best_cut_sob ~block_size:10_000 bc_input);
        (* Individual operations of Figure 1, fused vs array. *)
        mk "ops/map+reduce/delay" (fun () ->
            Bds.Seq.(reduce ( + ) 0 (map (fun x -> x * 3) (iota n))));
        mk "ops/map+reduce/array" (fun () ->
            Bds_parray.Parray.(reduce ( + ) 0 (map (fun x -> x * 3) (iota n))));
        mk "ops/scan/delay" (fun () ->
            Bds.Seq.(reduce ( + ) 0 (fst (scan ( + ) 0 (iota n)))));
        mk "ops/scan/array" (fun () ->
            Bds_parray.Parray.(reduce ( + ) 0 (fst (scan ( + ) 0 (iota n)))));
        mk "ops/filter/delay" (fun () ->
            Bds.Seq.(reduce ( + ) 0 (filter (fun x -> x land 7 < 3) (iota n))));
        mk "ops/filter/array" (fun () ->
            Bds_parray.Parray.(reduce ( + ) 0 (filter (fun x -> x land 7 < 3) (iota n))));
      ])
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg_b instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\nBechamel microbenchmarks (ns/run, n=%d)\n%s\n" n
    (String.make 46 '=');
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* --profile: per-op work/span rows for the whole run                  *)

(* Everything the harness ran this process accumulated into the op
   registry (profiling was enabled before the first section); emit one
   CSV row per op metric under section "profile" and print the human
   report.  [procs] is the nominal P=max — sections run at several
   worker counts, so utilization here is indicative, not exact. *)
let profile_report cfg =
  let rows = Profile.rows () in
  List.iter
    (fun (r : Profile.row) ->
      let p metric v =
        record ~section:"profile" ~bench:r.Profile.r_name ~version:"all"
          ~procs:cfg.procs ~metric v
      in
      p "calls" (float_of_int r.Profile.r_calls);
      p "chunks" (float_of_int r.Profile.r_chunks);
      p "wall_ns" (float_of_int r.Profile.r_wall_ns);
      p "work_ns" (float_of_int r.Profile.r_work_ns);
      p "span_ns" (float_of_int r.Profile.r_span_ns);
      p "p50_ns" (float_of_int r.Profile.r_p50_ns);
      p "p99_ns" (float_of_int r.Profile.r_p99_ns);
      p "max_chunk_ns" (float_of_int r.Profile.r_max_chunk_ns);
      p "parallelism" r.Profile.r_parallelism;
      p "tiny_fraction" r.Profile.r_tiny_fraction)
    rows;
  print_newline ();
  print_string (Profile.render ~workers:cfg.procs rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run_sections cfg =
  Printf.printf
    "Parallel block-delayed sequences: benchmark harness\n\
     host workers: %d requested for P=max; scale %.2fx; repeat %d\n"
    cfg.procs cfg.scale cfg.repeat;
  if enabled cfg "fig5" then fig5 cfg;
  if enabled cfg "fig13" then begin
    Printf.eprintf "fig13 (BID benchmarks)...\n%!";
    let results = fig13_rows cfg in
    print_fig13 results;
    print_sched
      ~title:(Printf.sprintf "Figure 13 scheduler pressure (P=%d, best run)" cfg.procs)
      results
  end;
  if enabled cfg "fig14" then begin
    Printf.eprintf "fig14 (RAD benchmarks)...\n%!";
    let results = fig14_rows cfg in
    print_fig14 results;
    print_sched
      ~title:(Printf.sprintf "Figure 14 scheduler pressure (P=%d, best run)" cfg.procs)
      results
  end;
  if enabled cfg "fig15" then fig15 cfg;
  if enabled cfg "fig16" then fig16 cfg;
  if enabled cfg "ext" then begin
    Printf.eprintf "ext (extension applications)...\n%!";
    ext cfg
  end;
  if enabled cfg "ablation" then ablation cfg;
  if enabled cfg "stream-overhead" then stream_overhead cfg;
  if enabled cfg "float-kernels" then float_kernels cfg;
  if enabled cfg "int-kernels" then int_kernels cfg;
  if cfg.sweep_grain <> [] || cfg.sweep_block <> [] then sweeps cfg;
  if enabled cfg "micro" then micro cfg;
  if cfg.profile then profile_report cfg;
  Option.iter write_csv cfg.csv;
  Printf.printf "\ndone. (sink: %d %.3f)\n" !Registry.sink_int !Registry.sink_float

let run cfg =
  if cfg.profile then Profile.set_enabled true;
  if cfg.service then begin
    (* The load generator stands alone: it measures the service layer,
       not the paper's figures, and owns its own pass/fail criterion. *)
    service_bench cfg;
    Option.iter write_csv cfg.csv
  end
  else run_sections cfg;
  match !gate_failure with
  | Some msg ->
    prerr_endline msg;
    exit 1
  | None -> ()

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

open Cmdliner

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Input-size multiplier.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shorthand for --scale 0.1 --repeat 1.")

let procs_arg =
  Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Worker count used as P=max.")

let proc_list_arg =
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "proc-list" ] ~doc:"Processor counts for the figure-15 sweep.")

let repeat_arg =
  Arg.(value & opt int 3 & info [ "repeat" ] ~doc:"Timed repetitions per measurement (minimum is reported).")

let only_arg =
  Arg.(value & opt (list string) []
       & info [ "only" ] ~doc:"Sections to run: fig5, fig13, fig14, fig15, fig16, ext, ablation, stream-overhead, float-kernels, int-kernels, micro. Default: all.")

let micro_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "micro-filter" ]
           ~doc:"Only run microbenchmarks whose name contains this substring.")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~doc:"Also write raw measurements to this CSV file.")

let plots_arg =
  Arg.(value & opt (some string) None
       & info [ "plots" ] ~doc:"Also write SVG versions of the plotted figures to this directory.")

let sweep_grain_arg =
  Arg.(value & opt (list int) []
       & info [ "sweep-grain" ]
           ~doc:"Leaf-grain values (comma-separated) to sweep the bestcut \
                 delayed pipeline over via the unified granularity layer \
                 (equivalent to BDS_GRAIN).  Emits time, steals/s and \
                 tasks/s per point; rows land in --csv under sweep-grain.")

let sweep_block_arg =
  Arg.(value & opt (list int) []
       & info [ "sweep-block" ]
           ~doc:"Fixed block sizes (comma-separated) to sweep the bestcut \
                 delayed pipeline over (equivalent to BDS_BLOCK_SIZE).  \
                 Emits time, steals/s and tasks/s per point; rows land in \
                 --csv under sweep-block.")

let adaptive_arg =
  Arg.(value & flag
       & info [ "adaptive" ]
           ~doc:"After the --sweep-grain fixed points, run the bestcut \
                 pipeline once more under the online self-tuning \
                 controller (BDS_ADAPT) and record the ratio \
                 best-fixed/adaptive as adaptive_vs_best_fixed in the \
                 sweep-grain section.")

let adapt_gate_arg =
  Arg.(value & opt (some float) None
       & info [ "adapt-gate" ]
           ~doc:"Exit non-zero if adaptive_vs_best_fixed falls below \
                 this floor (requires --adaptive).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Run everything under the work/span profiler: print the \
                 per-op report at the end and append per-op rows (section \
                 \"profile\") to --csv output.")

let service_arg =
  Arg.(value & flag
       & info [ "service" ]
           ~doc:"Run the job-service open-loop load generator instead of \
                 the paper sections: submit a deterministic mixed workload \
                 at a fixed arrival rate and report p50/p99 job latency, \
                 rejection rate and retries.  Exits non-zero if any \
                 admitted job is lost.  --scale sizes the job count, \
                 --procs the runner count.")

let main scale quick procs proc_list repeat sections micro_filter csv plots
    sweep_grain sweep_block adaptive adapt_gate profile service =
  let cfg =
    {
      scale = (if quick then scale /. 10.0 else scale);
      procs;
      proc_list;
      repeat = (if quick then 1 else repeat);
      sections;
      micro_filter;
      csv;
      plots;
      sweep_grain;
      sweep_block;
      adaptive;
      adapt_gate;
      profile;
      service;
    }
  in
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
    plots;
  run cfg;
  Bds_runtime.Runtime.shutdown ()

let cmd =
  Cmd.v
    (Cmd.info "bds-bench" ~doc:"Regenerate the paper's tables and figures")
    Term.(
      const main $ scale_arg $ quick_arg $ procs_arg $ proc_list_arg $ repeat_arg
      $ only_arg $ micro_filter_arg $ csv_arg $ plots_arg $ sweep_grain_arg
      $ sweep_block_arg $ adaptive_arg $ adapt_gate_arg $ profile_arg
      $ service_arg)

let () = exit (Cmd.eval cmd)
