(* Single-benchmark runner, mirroring the paper artifact's CLI:

     bds_bench BENCHMARK [-v VERSION] [-n SIZE] [--procs N]
               [--repeat R] [--warmup W]

   e.g.  dune exec bin/bds_bench.exe -- linefit -v delay -n 1000000 --procs 4 *)

module Measure = Bds_harness.Measure
module Registry = Bds_harness.Registry

open Cmdliner

let bench_arg =
  let names = String.concat ", " (List.map (fun b -> b.Registry.name) Registry.all) in
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK" ~doc:(Printf.sprintf "One of: %s." names))

let version_arg =
  Arg.(value & opt (some string) None
       & info [ "v"; "version" ] ~doc:"Library version: array, rad or delay. Default: all available.")

let size_arg =
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size (benchmark-specific unit).")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs" ] ~doc:"Number of worker domains.")

let repeat_arg =
  Arg.(value & opt int 5 & info [ "repeat" ] ~doc:"Timed repetitions (minimum reported).")

let warmup_arg =
  Arg.(value & opt int 1 & info [ "warmup" ] ~doc:"Warmup runs before timing.")

let space_arg =
  Arg.(value & flag & info [ "space" ] ~doc:"Also measure major-heap allocation (on 1 domain).")

let main bench version size procs repeat warmup space =
  match Registry.find bench with
  | None ->
    Printf.eprintf "unknown benchmark %S; try --help\n" bench;
    exit 1
  | Some b ->
    let n = Option.value ~default:b.Registry.default_size size in
    Printf.printf "%s: %s, P=%d, repeat=%d\n%!" b.Registry.name
      (b.Registry.describe n) procs repeat;
    let versions = b.Registry.prepare n in
    let versions =
      match version with
      | None -> versions
      | Some v -> (
          match List.filter (fun x -> x.Registry.vname = v) versions with
          | [] ->
            Printf.eprintf "version %S not available for %s\n" v bench;
            exit 1
          | l -> l)
    in
    Measure.with_domains procs (fun () ->
        List.iter
          (fun v ->
            let t = Measure.time ~warmup ~repeat v.Registry.run in
            Printf.printf "  %-6s time %s%!" v.Registry.vname (Measure.pp_time t);
            if space then begin
              let a = Measure.alloc_single_domain v.Registry.run in
              Printf.printf "  major-heap alloc %s" (Measure.pp_bytes a)
            end;
            print_newline ())
          versions);
    Bds_runtime.Runtime.shutdown ()

let cmd =
  Cmd.v
    (Cmd.info "bds_bench" ~doc:"Run one paper benchmark in one or all library versions")
    Term.(
      const main $ bench_arg $ version_arg $ size_arg $ procs_arg $ repeat_arg
      $ warmup_arg $ space_arg)

let () = exit (Cmd.eval cmd)
