(* Runtime configuration probe: prints the worker count and the active
   chaos-injection configuration, then runs a small parallel reduction as
   a liveness check.  The cram tests use it to assert that BDS_CHAOS is
   parsed and reported; it is also handy for diagnosing CI environments.

   Sub-commands:
     bds_probe             — liveness probe (historical default)
     bds_probe stats       — probe + scheduler-telemetry counters
     bds_probe trace-check F — validate a BDS_TRACE JSON file *)

module Runtime = Bds_runtime.Runtime
module Chaos = Bds_runtime.Chaos
module Telemetry = Bds_runtime.Telemetry
module Trace = Bds_runtime.Trace

let probe ~stats =
  Printf.printf "workers=%d\n" (Runtime.num_workers ());
  print_endline (Chaos.describe ());
  let before = Telemetry.snapshot () in
  let n = 100_000 in
  let sum =
    Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i -> i)
  in
  Printf.printf "sum(0..%d)=%d\n" (n - 1) sum;
  if stats then begin
    let after = Telemetry.snapshot () in
    print_endline "telemetry:";
    List.iter
      (fun (k, v) -> Printf.printf "  %s=%d\n" k v)
      (Telemetry.to_assoc (Telemetry.diff ~before ~after))
  end;
  Runtime.shutdown ()

let trace_check file =
  match Trace.validate_file file with
  | Ok n ->
    Printf.printf "trace ok: %d events\n" n;
    0
  | Error e ->
    Printf.eprintf "trace invalid: %s\n" e;
    1

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> probe ~stats:false
  | _ :: [ "stats" ] -> probe ~stats:true
  | _ :: [ "trace-check"; file ] -> exit (trace_check file)
  | _ ->
    prerr_endline "usage: bds_probe [stats | trace-check FILE]";
    exit 2
