(* Runtime configuration probe: prints the worker count and the active
   chaos-injection configuration, then runs a small parallel reduction as
   a liveness check.  The cram tests use it to assert that BDS_CHAOS is
   parsed and reported; it is also handy for diagnosing CI environments.

   Sub-commands:
     bds_probe             — liveness probe (historical default)
     bds_probe stats       — probe + scheduler-telemetry counters
     bds_probe blocks      — report the unified block grid for n=8000
     bds_probe streams     — stream execution-path counters per pipeline
     bds_probe trace-check F — validate a BDS_TRACE JSON file
     bds_probe trace-count F NAME — count NAME events in a trace file *)

module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain
module Chaos = Bds_runtime.Chaos
module Telemetry = Bds_runtime.Telemetry
module Trace = Bds_runtime.Trace

let probe ~stats =
  Printf.printf "workers=%d\n" (Runtime.num_workers ());
  print_endline (Chaos.describe ());
  let before = Telemetry.snapshot () in
  let n = 100_000 in
  let sum =
    Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i -> i)
  in
  Printf.printf "sum(0..%d)=%d\n" (n - 1) sum;
  if stats then begin
    let after = Telemetry.snapshot () in
    print_endline "telemetry:";
    List.iter
      (fun (k, v) -> Printf.printf "  %s=%d\n" k v)
      (Telemetry.to_assoc (Telemetry.diff ~before ~after))
  end;
  Runtime.shutdown ()

(* Report the block grid the unified granularity layer picks for a fixed
   n, then drive one per-block phase over it (a [Seq.iter]) so a
   BDS_TRACE capture holds exactly one "block" span per grid block.  The
   cram tests pin the grid with BDS_BLOCK_SIZE and check both the
   reported shape and the span count; a malformed override (e.g.
   BDS_GRAIN=banana) makes the grid request itself raise. *)
let blocks () =
  let n = 8_000 in
  let g = Runtime.block_grid n in
  let total = Atomic.make 0 in
  Bds.Seq.iter
    (fun v -> ignore (Atomic.fetch_and_add total v))
    (Bds.Seq.of_array (Array.init n (fun i -> i)));
  Printf.printf "n=%d block_size=%d blocks=%d\n" g.Grain.n g.Grain.block_size
    g.Grain.num_blocks;
  Printf.printf "sum=%d\n" (Atomic.get total);
  Runtime.shutdown ()

(* Drive two fixed Seq pipelines and report, for each, the stream
   execution-path counters its blocks bumped (docs/STREAMS.md).  With
   BDS_BLOCK_SIZE pinned the counts are exact: every Stream consumer
   bumps fused_folds when its fold bottoms out in a native push loop and
   trickle_fallbacks when the fold was derived from a trickle function
   (get_region blocks, i.e. post-filter/flatten sequences).  The cram
   test asserts that a plain map-reduce pipeline reports zero trickle
   fallbacks. *)
let streams () =
  let n = 8_000 in
  let report label before sum =
    let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
    Printf.printf "%s: sum=%d fused_folds=%d trickle_fallbacks=%d\n" label sum
      d.Telemetry.s_fused_folds d.Telemetry.s_trickle_fallbacks
  in
  let input = Bds.Seq.iota n in
  (* BID map-reduce: scan_incl's phase 1 folds each input block, then
     reduce folds each (map . scan_incl) block — all push-fused. *)
  let b0 = Telemetry.snapshot () in
  let scanned = Bds.Seq.scan_incl ( + ) 0 input in
  let sum = Bds.Seq.reduce ( + ) 0 (Bds.Seq.map (fun x -> 2 * x) scanned) in
  report "map-reduce" b0 sum;
  (* Filtered reduce: packing each input block is push-fused, but the
     filtered sequence's blocks are get_region streams (they straddle
     packed subsequences), so reducing them falls back to the trickle. *)
  let b1 = Telemetry.snapshot () in
  let kept = Bds.Seq.filter (fun x -> x land 1 = 0) input in
  let sum2 = Bds.Seq.reduce ( + ) 0 kept in
  report "filter-reduce" b1 sum2;
  Runtime.shutdown ()

let trace_check file =
  match Trace.validate_file file with
  | Ok n ->
    Printf.printf "trace ok: %d events\n" n;
    0
  | Error e ->
    Printf.eprintf "trace invalid: %s\n" e;
    1

let trace_count file name =
  match Trace.count_events_file file ~name with
  | Ok n ->
    Printf.printf "%s: %d\n" name n;
    0
  | Error e ->
    Printf.eprintf "trace invalid: %s\n" e;
    1

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> probe ~stats:false
  | _ :: [ "stats" ] -> probe ~stats:true
  | _ :: [ "blocks" ] -> blocks ()
  | _ :: [ "streams" ] -> streams ()
  | _ :: [ "trace-check"; file ] -> exit (trace_check file)
  | _ :: [ "trace-count"; file; name ] -> exit (trace_count file name)
  | _ ->
    prerr_endline
      "usage: bds_probe [stats | blocks | streams | trace-check FILE | trace-count FILE NAME]";
    exit 2
