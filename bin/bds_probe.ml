(* Runtime configuration probe: prints the worker count and the active
   chaos-injection configuration, then runs a small parallel reduction as
   a liveness check.  The cram tests use it to assert that BDS_CHAOS is
   parsed and reported; it is also handy for diagnosing CI environments. *)

module Runtime = Bds_runtime.Runtime
module Chaos = Bds_runtime.Chaos

let () =
  Printf.printf "workers=%d\n" (Runtime.num_workers ());
  print_endline (Chaos.describe ());
  let n = 100_000 in
  let sum =
    Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i -> i)
  in
  Printf.printf "sum(0..%d)=%d\n" (n - 1) sum;
  Runtime.shutdown ()
