(* Runtime configuration probe: prints the worker count and the active
   chaos-injection configuration, then runs a small parallel reduction as
   a liveness check.  The cram tests use it to assert that BDS_CHAOS is
   parsed and reported; it is also handy for diagnosing CI environments.

   Sub-commands:
     bds_probe             — liveness probe (historical default)
     bds_probe stats [--json] — probe + scheduler-telemetry counters
     bds_probe blocks      — report the unified block grid for n=8000
     bds_probe streams     — stream execution-path counters per pipeline
     bds_probe floats      — float-lane execution-path counters per
                             pipeline (fast path vs boxed fallback)
     bds_probe report [--json] [--large] — run a map|scan|reduce pipeline
                             under the profiler and print the per-op
                             work/span report
     bds_probe trace-check [--strict] F — validate a BDS_TRACE JSON file,
                             including job flow-event connectivity
                             (--strict: non-zero exit on dropped events)
     bds_probe trace-count F NAME — count NAME events in a trace file
     bds_probe jobs        — run a fixed job-service scenario and dump
                             the per-outcome jobs_* telemetry counters
     bds_probe grain       — force-enable adaptive granularity, run a
                             fixed leaf-loop + blocked-reduce workload
                             and dump the controller's decision table
     bds_probe metrics     — run a fixed job-service scenario and print
                             its validated OpenMetrics exposition
     bds_probe metrics-check F — validate an OpenMetrics exposition file
     bds_probe flight-check F [MIN] — validate a flight-recorder dump
                             (>= MIN snapshots, default 2) *)

module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain
module Chaos = Bds_runtime.Chaos
module Telemetry = Bds_runtime.Telemetry
module Trace = Bds_runtime.Trace
module Profile = Bds_runtime.Profile

let probe ~stats ~json =
  if not json then begin
    Printf.printf "workers=%d\n" (Runtime.num_workers ());
    print_endline (Chaos.describe ())
  end;
  let before = Telemetry.snapshot () in
  let n = 100_000 in
  let sum =
    Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i -> i)
  in
  if not json then Printf.printf "sum(0..%d)=%d\n" (n - 1) sum;
  if stats then begin
    let after = Telemetry.snapshot () in
    let counters = Telemetry.to_assoc (Telemetry.diff ~before ~after) in
    if json then begin
      (* Same shape family as `report --json`: one top-level object,
         versioned like the STATS wire payload, workers next, so CI
         artifacts and bench_compare share one machine-readable
         format. *)
      Printf.printf
        "{\"schema_version\":2,\"uptime_ns\":%d,\"workers\":%d,\"counters\":{%s}}\n"
        (Telemetry.uptime_ns ())
        (Runtime.num_workers ())
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) counters))
    end
    else begin
      print_endline "telemetry:";
      List.iter (fun (k, v) -> Printf.printf "  %s=%d\n" k v) counters
    end
  end;
  Runtime.shutdown ()

(* Report the block grid the unified granularity layer picks for a fixed
   n, then drive one per-block phase over it (a [Seq.iter]) so a
   BDS_TRACE capture holds exactly one "block" span per grid block.  The
   cram tests pin the grid with BDS_BLOCK_SIZE and check both the
   reported shape and the span count; a malformed override (e.g.
   BDS_GRAIN=banana) makes the grid request itself raise. *)
let blocks () =
  let n = 8_000 in
  let g = Runtime.block_grid n in
  let total = Atomic.make 0 in
  Bds.Seq.iter
    (fun v -> ignore (Atomic.fetch_and_add total v))
    (Bds.Seq.of_array (Array.init n (fun i -> i)));
  Printf.printf "n=%d block_size=%d blocks=%d\n" g.Grain.n g.Grain.block_size
    g.Grain.num_blocks;
  Printf.printf "sum=%d\n" (Atomic.get total);
  Runtime.shutdown ()

(* Drive fixed Seq pipelines and report, for each, the stream
   execution-path counters its blocks bumped (docs/STREAMS.md).  With
   BDS_BLOCK_SIZE pinned the counts are exact: every Stream consumer
   bumps fused_folds when its fold bottoms out in a native push loop and
   trickle_fallbacks when the fold was derived from a trickle function.
   Since the skip-push filter and nested-push flatten landed, whole
   filter/flatten chains are push-fused end to end: the cram test
   asserts ZERO trickle fallbacks on every pipeline below.  The
   shared-consumer scenario consumes one BID twice and reports the
   shared_forces counter (exactly one memo force for the second
   consumer, docs/STREAMS.md "Shared consumers"). *)
let streams () =
  let n = 8_000 in
  let report label before sum =
    let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
    Printf.printf "%s: sum=%d fused_folds=%d trickle_fallbacks=%d\n" label sum
      d.Telemetry.s_fused_folds d.Telemetry.s_trickle_fallbacks
  in
  let input = Bds.Seq.iota n in
  (* BID map-reduce: scan_incl's phase 1 folds each input block, then
     reduce folds each (map . scan_incl) block — all push-fused. *)
  let b0 = Telemetry.snapshot () in
  let scanned = Bds.Seq.scan_incl ( + ) 0 input in
  let sum = Bds.Seq.reduce ( + ) 0 (Bds.Seq.map (fun x -> 2 * x) scanned) in
  report "map-reduce" b0 sum;
  (* Filtered reduce: the survivor-mask pass folds each input block,
     then reduce drives each output block as a selected_region over the
     re-planned input — skip-push, no trickle. *)
  let b1 = Telemetry.snapshot () in
  let kept = Bds.Seq.filter (fun x -> x land 1 = 0) input in
  let sum2 = Bds.Seq.reduce ( + ) 0 kept in
  report "filter-reduce" b1 sum2;
  (* Flatten chain: flat_map materialises the inner sequences once,
     then reduce drives each output block as an of_segments region —
     nested push, no trickle.  A filter after the flatten re-enters the
     skip-push path on region blocks. *)
  let b2 = Telemetry.snapshot () in
  let flat = Bds.Seq.flat_map (fun x -> Bds.Seq.tabulate 2 (fun j -> x + j)) input in
  let sum3 = Bds.Seq.reduce ( + ) 0 (Bds.Seq.filter (fun x -> x land 1 = 0) flat) in
  report "flatten-filter-reduce" b2 sum3;
  (* Shared consumer: two reduces over one scan output.  The first
     drives the plan; the second finds the BID already consumed, forces
     the memo (one shared_forces bump) and reduces the memo slices. *)
  let b3 = Telemetry.snapshot () in
  let shared = Bds.Seq.scan_incl ( + ) 0 input in
  let r1 = Bds.Seq.reduce ( + ) 0 shared in
  let r2 = Bds.Seq.reduce max min_int shared in
  let d = Telemetry.diff ~before:b3 ~after:(Telemetry.snapshot ()) in
  Printf.printf
    "shared-consumer: sum=%d max=%d shared_forces=%d trickle_fallbacks=%d\n" r1
    r2 d.Telemetry.s_shared_forces d.Telemetry.s_trickle_fallbacks;
  Runtime.shutdown ()

(* Drive fixed float pipelines and report the float-lane execution-path
   counters each bumped (docs/STREAMS.md "Unboxed float lane").  With
   BDS_BLOCK_SIZE pinned the counts are exact, one bump per per-block
   loop: a RAD map|float_sum chain stays entirely on the unboxed fast
   path; summing a scan_incl output falls back block-by-block (the scan
   stream is stateful, so its blocks carry no pure index function); a
   Float_seq dot runs one fast-path loop per block.  The cram test pins
   zero fallbacks on the fused chains. *)
let floats () =
  let n = 8_000 in
  let report label before v =
    let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
    Printf.printf "%s: value=%.1f float_fast_path=%d float_boxed_fallback=%d\n"
      label v d.Telemetry.s_float_fast_path d.Telemetry.s_float_boxed_fallback
  in
  let input = Bds.Seq.tabulate n float_of_int in
  let b0 = Telemetry.snapshot () in
  let sum = Bds.Seq.float_sum (Bds.Seq.map (fun x -> x *. 0.5) input) in
  report "map-sum" b0 sum;
  let b1 = Telemetry.snapshot () in
  let scanned = Bds.Seq.scan_incl ( +. ) 0.0 input in
  let sum2 = Bds.Seq.float_sum scanned in
  report "scan-sum" b1 sum2;
  let b2 = Telemetry.snapshot () in
  (* force materialises once (one fast-path loop per block), then dot
     runs one more per block: 2x the block count, zero fallbacks. *)
  let xs =
    Bds.Float_seq.force (Bds.Float_seq.tabulate n (fun i -> float_of_int (i land 7)))
  in
  let d = Bds.Float_seq.dot xs xs in
  report "floatarray-dot" b2 d;
  Runtime.shutdown ()

(* Run the acceptance pipeline (iota |> map |> scan |> reduce, plus a
   filter |> to_array tail, a float_sum over the float lane, and a
   max_by/min_by pair) under the profiler and print the per-op report.
   Profiling is force-enabled — the whole point of the command is the
   report — so `bds_probe report` works without BDS_PROFILE=1. *)
let report ~json ~large =
  Profile.set_enabled true;
  let n = if large then 2_000_000 else 200_000 in
  let input = Bds.Seq.iota n in
  let mapped = Bds.Seq.map (fun x -> (x * 7) land 1023) input in
  let scanned = Bds.Seq.scan_incl ( + ) 0 mapped in
  let total = Bds.Seq.reduce ( + ) 0 scanned in
  let packed = Bds.Seq.to_array (Bds.Seq.filter (fun x -> x land 1 = 0) scanned) in
  let fsum = Bds.Seq.float_sum (Bds.Seq.map float_of_int input) in
  let mx = Bds.Seq.max_by compare mapped in
  let mn = Bds.Seq.min_by compare mapped in
  ignore (Sys.opaque_identity total);
  ignore (Sys.opaque_identity packed);
  ignore (Sys.opaque_identity fsum);
  ignore (Sys.opaque_identity (mx + mn));
  let workers = Runtime.num_workers () in
  Runtime.shutdown ();
  let rows = Profile.rows () in
  if json then print_endline (Profile.render_json ~workers rows)
  else print_string (Profile.render ~workers rows)

let trace_check ~strict file =
  match Trace.validate_file file with
  | Error e ->
    Printf.eprintf "trace invalid: %s\n" e;
    1
  | Ok n -> (
    Printf.printf "trace ok: %d events\n" n;
    match Trace.dropped_of_file file with
    | Error e ->
      Printf.eprintf "trace invalid: %s\n" e;
      1
    | Ok d ->
      let rc_dropped =
        if d = 0 then 0
        else begin
          Printf.printf
            "warning: %d event%s dropped (ring wrap-around); trace is \
             incomplete\n"
            d
            (if d = 1 then "" else "s");
          if strict then 1 else 0
        end
      in
      (* Flow connectivity: every flow id must have both its start
         ('s', emitted at admission) and its end ('f', at the terminal
         outcome).  A wrapped ring legitimately loses starts, so a
         disconnected flow is only an error when nothing was dropped.
         Traces without flow events (pure kernel traces) stay silent
         here, keeping their pinned outputs unchanged. *)
      let rc_flows =
        match Trace.flows_of_file file with
        | Error e ->
          Printf.eprintf "trace invalid: %s\n" e;
          1
        | Ok (0, _) -> 0
        | Ok (flows, []) ->
          Printf.printf "flows ok: %d connected\n" flows;
          0
        | Ok (flows, disconnected) ->
          let preview =
            List.filteri (fun i _ -> i < 5) disconnected
            |> List.map string_of_int |> String.concat ","
          in
          if d = 0 then begin
            Printf.eprintf
              "trace invalid: %d of %d flows disconnected (ids %s%s)\n"
              (List.length disconnected)
              flows preview
              (if List.length disconnected > 5 then ",..." else "");
            1
          end
          else begin
            Printf.printf
              "warning: %d of %d flows disconnected (expected with \
               dropped events)\n"
              (List.length disconnected)
              flows;
            0
          end
      in
      if rc_dropped > 0 || rc_flows > 0 then 1 else 0)

(* Drive one deterministic scenario through the job service and print
   the jobs_* counters: a single runner and capacity 2, so a busy job
   with a short deadline (-> deadline_exceeded) plus a queued sum
   (-> completed) fill the service, a third submission is shed with a
   typed Overloaded, and a fail-twice job exercises the retry path
   (-> completed after 2 retries).  Every count is forced by
   construction, so the cram test pins the output exactly. *)
let jobs () =
  let module Service = Bds_service.Service in
  let module Job = Bds_service.Job in
  let config =
    { Service.default_config with Service.capacity = 2; runners = 1 }
  in
  let svc = Service.create ~config () in
  let busy =
    Service.submit svc
      (Job.request ~params:[ ("ms", "2000") ] ~deadline_ms:50 "busy")
  in
  let sum = Service.submit svc (Job.request ~params:[ ("n", "10000") ] "sum") in
  let overflow = Service.submit svc (Job.request "echo") in
  let show name = function
    | Ok ticket ->
      Printf.printf "  %s -> %s\n" name
        (Job.outcome_label (Service.wait ticket))
    | Error (`Rejected r) ->
      Printf.printf "  %s -> rejected %s\n" name (Job.reject_label r)
    | Error (`Bad_request msg) -> Printf.printf "  %s -> bad request: %s\n" name msg
  in
  print_endline "jobs probe:";
  show "busy" busy;
  show "sum" sum;
  show "overflow" overflow;
  let fail =
    Service.submit svc
      (Job.request ~params:[ ("k", "2"); ("n", "1000") ] "fail")
  in
  (match fail with
  | Ok ticket ->
    let outcome = Service.wait ticket in
    Printf.printf "  fail -> %s (retries=%d)\n" (Job.outcome_label outcome)
      (Service.For_testing.retries_used ticket)
  | Error _ -> print_endline "  fail -> unexpected rejection");
  Service.shutdown svc;
  print_endline "telemetry:";
  Telemetry.to_assoc (Telemetry.snapshot ())
  |> List.filter (fun (k, _) ->
         String.length k > 5 && String.sub k 0 5 = "jobs_")
  |> List.iter (fun (k, v) -> Printf.printf "  %s=%d\n" k v);
  Runtime.shutdown ()

(* Force-enable the adaptive-granularity controller, drive one labeled
   element loop plus one blocked reduce enough times for the table to
   fill in, and dump the decision table (docs/RUNTIME.md "Adaptive
   granularity").  The key set is deterministic — (op, log2-size bucket,
   worker count) — while grains and counts depend on timing, so the cram
   test normalises every numeric value to N.  With BDS_GRAIN set the
   element loop runs at the override and never reaches the controller:
   its row disappears from the table, which is how the cram test pins
   "explicit overrides win". *)
let grain_cmd () =
  let module Autotune = Bds_runtime.Autotune in
  Grain.set_adaptive true;
  let n = 60_000 in
  let loop_sum () =
    Profile.with_op "probe-loop" (fun () ->
        Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i ->
            i land 7))
  in
  let input = Bds.Seq.iota n in
  let blocked_sum () =
    Bds.Seq.reduce ( + ) 0 (Bds.Seq.map (fun x -> (x * 3) land 1023) input)
  in
  for _ = 1 to 25 do
    ignore (Sys.opaque_identity (loop_sum ()));
    ignore (Sys.opaque_identity (blocked_sum ()))
  done;
  Printf.printf "adaptive=%s leaf_override=%s\n"
    (if Grain.adaptive () then "on" else "off")
    (match Grain.leaf_grain_override () with
    | None -> "none"
    | Some g -> string_of_int g);
  List.iter
    (fun i ->
      Printf.printf "op=%s bucket=%d workers=%d grain=%d obs=%d adj=%d probes=%d\n"
        i.Autotune.i_op i.Autotune.i_bucket i.Autotune.i_workers
        i.Autotune.i_grain i.Autotune.i_obs i.Autotune.i_adjustments
        i.Autotune.i_probes)
    (Autotune.dump ());
  Runtime.shutdown ()

(* Run a fixed multi-tenant scenario through the job service, then
   print the full OpenMetrics exposition — validated first, so the
   command doubles as an end-to-end check of the renderer.  The counter
   samples are deterministic (two tenants, fixed kinds/outcomes); the
   histogram values are not, so the cram test greps structure and
   counters rather than pinning the whole body. *)
let metrics_cmd () =
  let module Service = Bds_service.Service in
  let module Job = Bds_service.Job in
  let module Metrics = Bds_runtime.Metrics in
  let config =
    { Service.default_config with Service.capacity = 8; runners = 2 }
  in
  let svc = Service.create ~config () in
  let wait = function
    | Ok ticket -> ignore (Service.wait ticket)
    | Error _ -> ()
  in
  wait
    (Service.submit svc
       (Job.request ~tenant:"alpha" ~params:[ ("n", "10000") ] "sum"));
  wait (Service.submit svc (Job.request ~tenant:"beta" "echo"));
  wait
    (Service.submit svc
       (Job.request ~tenant:"alpha" ~params:[ ("ms", "500") ] ~deadline_ms:20
          "busy"));
  Service.shutdown svc;
  Service.collect_metrics svc;
  let body = Metrics.render () in
  (match Metrics.validate_string body with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "metrics invalid: %s\n" e;
    exit 1);
  print_string body;
  Runtime.shutdown ()

let metrics_check file =
  match Bds_runtime.Metrics.validate_file file with
  | Ok n ->
    Printf.printf "metrics ok: %d samples\n" n;
    0
  | Error e ->
    Printf.eprintf "metrics invalid: %s\n" e;
    1

let flight_check file min_snaps =
  match Bds_runtime.Flight.validate_file file with
  | Ok n when n >= min_snaps ->
    Printf.printf "flight ok: %d snapshots\n" n;
    0
  | Ok n ->
    Printf.eprintf "flight invalid: only %d snapshot%s (want >= %d)\n" n
      (if n = 1 then "" else "s")
      min_snaps;
    1
  | Error e ->
    Printf.eprintf "flight invalid: %s\n" e;
    1

let trace_count file name =
  match Trace.count_events_file file ~name with
  | Ok n ->
    Printf.printf "%s: %d\n" name n;
    0
  | Error e ->
    Printf.eprintf "trace invalid: %s\n" e;
    1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, pos =
    List.partition (fun a -> String.length a >= 2 && a.[0] = '-' && a.[1] = '-') args
  in
  let flag f = List.mem f flags in
  match pos with
  | [] when flags = [] -> probe ~stats:false ~json:false
  | [ "stats" ] -> probe ~stats:true ~json:(flag "--json")
  | [ "blocks" ] when flags = [] -> blocks ()
  | [ "streams" ] when flags = [] -> streams ()
  | [ "floats" ] when flags = [] -> floats ()
  | [ "report" ] -> report ~json:(flag "--json") ~large:(flag "--large")
  | [ "trace-check"; file ] -> exit (trace_check ~strict:(flag "--strict") file)
  | [ "trace-count"; file; name ] when flags = [] -> exit (trace_count file name)
  | [ "jobs" ] when flags = [] -> jobs ()
  | [ "grain" ] when flags = [] -> grain_cmd ()
  | [ "metrics" ] when flags = [] -> metrics_cmd ()
  | [ "metrics-check"; file ] when flags = [] -> exit (metrics_check file)
  | [ "flight-check"; file ] when flags = [] -> exit (flight_check file 2)
  | [ "flight-check"; file; m ] when flags = [] -> (
    match int_of_string_opt m with
    | Some min_snaps -> exit (flight_check file min_snaps)
    | None ->
      prerr_endline "flight-check: MIN must be an integer";
      exit 2)
  | _ ->
    prerr_endline
      "usage: bds_probe [stats [--json] | blocks | streams | floats | report \
       [--json] [--large] | trace-check [--strict] FILE | trace-count FILE \
       NAME | jobs | grain | metrics | metrics-check FILE | flight-check \
       FILE [MIN]]";
    exit 2
