(* bds_serve: the pipeline-job service over a Unix-domain socket.

   Modes:
     bds_serve --socket PATH [--capacity N] [--runners N] [--max-retries N]
       serve until SIGINT/SIGTERM (graceful: outstanding jobs resolve,
       trace flushed, profiler report emitted if enabled)
     bds_serve --socket PATH --client 'REQUEST' ['REQUEST' ...]
       send each request line on one connection, print each response
       line (exit 0 even on REJECTED/BAD — typed responses are the
       point; exit 1 only on transport errors)

   The wire protocol is documented in lib/service/protocol.mli and
   docs/SERVICE.md. *)

module Server = Bds_service.Server
module Service = Bds_service.Service

let usage () =
  prerr_endline
    "usage: bds_serve --socket PATH [--capacity N] [--runners N] \
     [--max-retries N] [--client REQUEST...]";
  exit 2

let parse_args () =
  let socket = ref None in
  let capacity = ref None in
  let runners = ref None in
  let max_retries = ref None in
  let client = ref None in
  let rec go = function
    | [] -> ()
    | "--socket" :: v :: rest ->
      socket := Some v;
      go rest
    | "--capacity" :: v :: rest ->
      capacity := int_of_string_opt v;
      if !capacity = None then usage ();
      go rest
    | "--runners" :: v :: rest ->
      runners := int_of_string_opt v;
      if !runners = None then usage ();
      go rest
    | "--max-retries" :: v :: rest ->
      max_retries := int_of_string_opt v;
      if !max_retries = None then usage ();
      go rest
    | "--client" :: rest ->
      (* Everything after --client is a request line. *)
      if rest = [] then usage ();
      client := Some rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match !socket with
  | None -> usage ()
  | Some path -> (path, !capacity, !runners, !max_retries, !client)

let run_client path requests =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "bds_serve: cannot connect to %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ok = ref true in
  List.iter
    (fun req ->
      output_string oc req;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | line -> print_endline line
      | exception End_of_file ->
        prerr_endline "bds_serve: connection closed by server";
        ok := false)
    requests;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  exit (if !ok then 0 else 1)

let run_server path capacity runners max_retries =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let d = Service.default_config in
  let config =
    {
      d with
      Service.capacity = Option.value capacity ~default:d.Service.capacity;
      runners = Option.value runners ~default:d.Service.runners;
      max_retries = Option.value max_retries ~default:d.Service.max_retries;
    }
  in
  let server = Server.create ~config ~path () in
  (* Graceful shutdown on SIGINT/SIGTERM: the handler only flips a flag
     and closes the listener (Server.stop is signal-safe); the accept
     loop's exit path resolves outstanding jobs and flushes trace and
     profiler output, so a killed server never truncates them. *)
  let stop _ = Server.stop server in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
  (* A client that disconnects mid-response must not kill the server. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Server.serve server;
  Bds_runtime.Runtime.shutdown ()

let () =
  let path, capacity, runners, max_retries, client = parse_args () in
  match client with
  | Some requests -> run_client path requests
  | None -> run_server path capacity runners max_retries
