(* bds_serve: the pipeline-job service over a Unix-domain socket.

   Modes:
     bds_serve --socket PATH [--capacity N] [--runners N] [--max-retries N]
       serve until SIGINT/SIGTERM (graceful: outstanding jobs resolve,
       trace flushed, profiler report emitted if enabled)
     bds_serve --socket PATH --client 'REQUEST' ['REQUEST' ...]
       send each request line on one connection, print each response
       line (exit 0 even on REJECTED/BAD — typed responses are the
       point; exit 1 only on transport errors)

   The wire protocol is documented in lib/service/protocol.mli and
   docs/SERVICE.md. *)

module Server = Bds_service.Server
module Service = Bds_service.Service

let usage () =
  prerr_endline
    "usage: bds_serve --socket PATH [--capacity N] [--runners N] \
     [--max-retries N] [--metrics-file PATH] [--flight-file PATH] \
     [--flight-interval SECONDS] [--client REQUEST...]";
  exit 2

type opts = {
  o_capacity : int option;
  o_runners : int option;
  o_max_retries : int option;
  o_metrics_file : string option;
  o_flight_file : string option;
  o_flight_interval : float option;
}

let parse_args () =
  let socket = ref None in
  let capacity = ref None in
  let runners = ref None in
  let max_retries = ref None in
  let metrics_file = ref None in
  let flight_file = ref None in
  let flight_interval = ref None in
  let client = ref None in
  let rec go = function
    | [] -> ()
    | "--socket" :: v :: rest ->
      socket := Some v;
      go rest
    | "--capacity" :: v :: rest ->
      capacity := int_of_string_opt v;
      if !capacity = None then usage ();
      go rest
    | "--runners" :: v :: rest ->
      runners := int_of_string_opt v;
      if !runners = None then usage ();
      go rest
    | "--max-retries" :: v :: rest ->
      max_retries := int_of_string_opt v;
      if !max_retries = None then usage ();
      go rest
    | "--metrics-file" :: v :: rest ->
      metrics_file := Some v;
      go rest
    | "--flight-file" :: v :: rest ->
      flight_file := Some v;
      go rest
    | "--flight-interval" :: v :: rest ->
      flight_interval := float_of_string_opt v;
      if !flight_interval = None then usage ();
      go rest
    | "--client" :: rest ->
      (* Everything after --client is a request line. *)
      if rest = [] then usage ();
      client := Some rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match !socket with
  | None -> usage ()
  | Some path ->
    ( path,
      {
        o_capacity = !capacity;
        o_runners = !runners;
        o_max_retries = !max_retries;
        o_metrics_file = !metrics_file;
        o_flight_file = !flight_file;
        o_flight_interval = !flight_interval;
      },
      !client )

let run_client path requests =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "bds_serve: cannot connect to %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ok = ref true in
  List.iter
    (fun req ->
      output_string oc req;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | line ->
        print_endline line;
        (* METRICS is the one multi-line response: the exposition
           follows, terminated by its "# EOF" line. *)
        if line = "METRICS" then begin
          let rec body () =
            match input_line ic with
            | "# EOF" -> print_endline "# EOF"
            | l ->
              print_endline l;
              body ()
            | exception End_of_file ->
              prerr_endline "bds_serve: metrics exposition truncated";
              ok := false
          in
          body ()
        end
      | exception End_of_file ->
        prerr_endline "bds_serve: connection closed by server";
        ok := false)
    requests;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  exit (if !ok then 0 else 1)

let run_server path opts =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let d = Service.default_config in
  let config =
    {
      d with
      Service.capacity = Option.value opts.o_capacity ~default:d.Service.capacity;
      runners = Option.value opts.o_runners ~default:d.Service.runners;
      max_retries =
        Option.value opts.o_max_retries ~default:d.Service.max_retries;
    }
  in
  (* The flight recorder is always on; without --flight-file its dump
     lands next to the socket so a SIGQUIT is never a no-op. *)
  let flight_path =
    Option.value opts.o_flight_file ~default:(path ^ ".flight.json")
  in
  let server =
    Server.create ~config ~flight_path
      ?flight_interval_s:opts.o_flight_interval
      ?metrics_path:opts.o_metrics_file ~path ()
  in
  (* Graceful shutdown on SIGINT/SIGTERM: the handler only flips a flag
     and closes the listener (Server.stop is signal-safe); the accept
     loop's exit path resolves outstanding jobs and flushes trace and
     profiler output, so a killed server never truncates them. *)
  let stop _ = Server.stop server in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
  (* SIGQUIT dumps the flight recorder without stopping the server: the
     handler only flips an atomic; the sampler thread does the I/O. *)
  let quit _ = Server.request_flight_dump server in
  ignore (Sys.signal Sys.sigquit (Sys.Signal_handle quit));
  (* A client that disconnects mid-response must not kill the server. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Server.serve server;
  Bds_runtime.Runtime.shutdown ()

let () =
  let path, opts, client = parse_args () in
  match client with
  | Some requests -> run_client path requests
  | None -> run_server path opts
