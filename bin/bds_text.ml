(* A small real-world driver: run the text kernels (wc, grep, tokens,
   inverted index) on an actual file with the block-delayed library.

     bds_text wc FILE
     bds_text grep PATTERN FILE
     bds_text tokens FILE
     bds_text index FILE
   options: --procs N *)

module K = Bds_kernels

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

open Cmdliner

let procs_arg =
  Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Number of worker domains.")

let file_arg ~idx =
  Arg.(required & pos idx (some file) None & info [] ~docv:"FILE")

let setup procs = Bds_runtime.Runtime.set_num_domains procs

let wc_cmd =
  let run procs file =
    setup procs;
    let l, w, b = K.Wc.Delay_version.wc (read_file file) in
    Printf.printf "%8d %8d %8d %s\n" l w b file
  in
  Cmd.v (Cmd.info "wc" ~doc:"Count lines, words and bytes")
    Term.(const run $ procs_arg $ file_arg ~idx:0)

let grep_cmd =
  let run procs pattern file =
    setup procs;
    let count, bytes = K.Grep.Delay_version.grep (read_file file) pattern in
    Printf.printf "%d matching lines (%d bytes) in %s\n" count bytes file
  in
  let pattern_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATTERN")
  in
  Cmd.v (Cmd.info "grep" ~doc:"Count lines containing PATTERN")
    Term.(const run $ procs_arg $ pattern_arg $ file_arg ~idx:1)

let tokens_cmd =
  let run procs file =
    setup procs;
    let count, total = K.Tokens.Delay_version.tokens (read_file file) in
    Printf.printf "%d tokens, %d token bytes (avg length %.2f) in %s\n" count total
      (if count = 0 then 0.0 else float_of_int total /. float_of_int count)
      file
  in
  Cmd.v (Cmd.info "tokens" ~doc:"Tokenise into maximal non-whitespace runs")
    Term.(const run $ procs_arg $ file_arg ~idx:0)

let index_cmd =
  let run procs file =
    setup procs;
    let words, postings = K.Inverted_index.Delay_version.index (read_file file) in
    Printf.printf "%d distinct words, %d postings in %s\n" words postings file
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build an inverted index (lines are documents)")
    Term.(const run $ procs_arg $ file_arg ~idx:0)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "bds_text" ~doc:"Text processing with block-delayed sequences")
          [ wc_cmd; grep_cmd; tokens_cmd; index_cmd ]))
