(* Perf-regression gate: compare a fresh benchmark CSV (bench/main.exe
   --csv) against the committed baseline snapshot (BENCH_9.json).

   The host is a shared container whose absolute wall-clock drifts by
   tens of percent between runs, so the gate judges *within-run ratios*
   by default: the push-vs-pull speedup of the stream-overhead chain,
   the fused-vs-materialized speedup of the Seq filter/flatten chains,
   the unboxed-vs-boxed speedup of every float-kernels bench, and the
   adaptive-vs-best-fixed ratio of the grain sweep — each divides two
   times measured seconds apart on the same machine, which is stable
   (see the snapshots' host_note).  A section is gated when it is
   present in the baseline's "results" (so older BENCH_4-shaped
   baselines still work); a baseline with no known section is a usage
   error, never a silent pass.  Absolute times are compared only under
   --absolute, for quiet hosts.

   Exit status: 0 when every checked metric is within --max-regress
   percent of the baseline, 1 on any regression, 2 on usage/parse
   errors.  The report prints one line per metric either way, so the CI
   artifact shows the margins even when the gate passes. *)

module J = Bds_runtime.Tiny_json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* CSV rows: section,bench,version,procs,metric,value *)

type row = {
  section : string;
  bench : string;
  version : string;
  metric : string;
  value : float;
}

let parse_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty CSV"
  | header :: rest ->
    if String.trim header <> "section,bench,version,procs,metric,value" then
      Error (Printf.sprintf "unexpected CSV header: %s" header)
    else
      let parse_line i l =
        match String.split_on_char ',' l with
        | [ section; bench; version; _procs; metric; value ] -> (
          match float_of_string_opt value with
          | Some value -> Ok { section; bench; version; metric; value }
          | None -> Error (Printf.sprintf "line %d: bad value %S" (i + 2) value))
        | _ -> Error (Printf.sprintf "line %d: expected 6 fields" (i + 2))
      in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest -> (
          match parse_line i l with
          | Ok r -> go (i + 1) (r :: acc) rest
          | Error _ as e -> e)
      in
      go 0 [] rest

(* Last matching row wins, mirroring how the harness appends rows. *)
let find rows ~section ~bench ~version ~metric =
  List.fold_left
    (fun acc r ->
      if
        r.section = section && r.bench = bench && r.version = version
        && r.metric = metric
      then Some r.value
      else acc)
    None rows

(* ------------------------------------------------------------------ *)
(* Checks *)

type direction = Higher_better | Lower_better

type check = {
  name : string;
  dir : direction;
  baseline : float;
  current : float;
}

let verdict ~tolerance c =
  let margin = tolerance /. 100.0 in
  match c.dir with
  | Higher_better -> c.current >= c.baseline *. (1.0 -. margin)
  | Lower_better -> c.current <= c.baseline *. (1.0 +. margin)

let change_pct c =
  if c.baseline = 0.0 then 0.0
  else (c.current -. c.baseline) /. c.baseline *. 100.0

let baseline_float json path_ =
  match Option.bind (J.path path_ json) J.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "baseline: missing %s" (String.concat "." path_))

let build_checks ~absolute json rows =
  let ( let* ) = Result.bind in
  let csv_time ~section ~bench version =
    match find rows ~section ~bench ~version ~metric:"time_s" with
    | Some v when v > 0.0 ->
      Ok v
    | Some _ ->
      Error
        (Printf.sprintf "csv: non-positive time for %s/%s/%s" section bench
           version)
    | None ->
      Error (Printf.sprintf "csv: no %s time for %s/%s" section bench version)
  in
  (* stream-overhead: gate the push-vs-pull speedup (present since
     BENCH_4). *)
  let stream_checks () =
    let chain = [ "results"; "stream-overhead/chain3" ] in
    match J.path chain json with
    | None -> Ok []
    | Some _ ->
      let* base_speedup =
        baseline_float json (chain @ [ "speedup_push_vs_pull" ])
      in
      let time = csv_time ~section:"stream-overhead" ~bench:"chain3" in
      let* t_pull = time "pull" in
      let* t_push = time "push" in
      let ratio_checks =
        [
          {
            name = "stream-overhead push-vs-pull speedup";
            dir = Higher_better;
            baseline = base_speedup;
            current = t_pull /. t_push;
          };
        ]
      in
      if not absolute then Ok ratio_checks
      else
        let* base_pull =
          baseline_float json (chain @ [ "pull_trickle"; "time_s" ])
        in
        let* base_push =
          baseline_float json (chain @ [ "push_fused"; "time_s" ])
        in
        Ok
          (ratio_checks
          @ [
              {
                name = "stream-overhead pull time_s (absolute)";
                dir = Lower_better;
                baseline = base_pull;
                current = t_pull;
              };
              {
                name = "stream-overhead push time_s (absolute)";
                dir = Lower_better;
                baseline = base_push;
                current = t_push;
              };
            ])
  in
  (* Seq filter/flatten chains: gate the fused-vs-materialized speedup
     of each chain bench the baseline records (present since BENCH_8). *)
  let chain_checks bench =
    let chain = [ "results"; "stream-overhead/" ^ bench ] in
    match J.path chain json with
    | None -> Ok []
    | Some _ ->
      let* base_speedup =
        baseline_float json (chain @ [ "speedup_fused_vs_materialized" ])
      in
      let time = csv_time ~section:"stream-overhead" ~bench in
      let* t_mat = time "materialized" in
      let* t_fused = time "fused" in
      let ratio_checks =
        [
          {
            name =
              Printf.sprintf "stream-overhead %s fused-vs-materialized speedup"
                bench;
            dir = Higher_better;
            baseline = base_speedup;
            current = t_mat /. t_fused;
          };
        ]
      in
      if not absolute then Ok ratio_checks
      else
        let* base_mat =
          baseline_float json (chain @ [ "materialized"; "time_s" ])
        in
        let* base_fused = baseline_float json (chain @ [ "fused"; "time_s" ]) in
        Ok
          (ratio_checks
          @ [
              {
                name =
                  Printf.sprintf "stream-overhead %s materialized time_s (absolute)"
                    bench;
                dir = Lower_better;
                baseline = base_mat;
                current = t_mat;
              };
              {
                name =
                  Printf.sprintf "stream-overhead %s fused time_s (absolute)"
                    bench;
                dir = Lower_better;
                baseline = base_fused;
                current = t_fused;
              };
            ])
  in
  (* float-kernels: gate the unboxed-vs-boxed speedup of every bench the
     baseline records (present since BENCH_7). *)
  let float_checks () =
    match J.path [ "results"; "float-kernels" ] json with
    | None -> Ok []
    | Some (J.Obj benches) ->
      let* checks =
        List.fold_left
          (fun acc (bench, v) ->
            let* acc = acc in
            let* base =
              match
                Option.bind (J.member "speedup_unboxed_vs_boxed" v) J.to_float
              with
              | Some f -> Ok f
              | None ->
                Error
                  (Printf.sprintf
                     "baseline: missing results.float-kernels.%s.speedup_unboxed_vs_boxed"
                     bench)
            in
            let time = csv_time ~section:"float-kernels" ~bench in
            let* t_boxed = time "boxed" in
            let* t_unboxed = time "unboxed" in
            Ok
              ({
                 name =
                   Printf.sprintf "float-kernels %s unboxed-vs-boxed speedup"
                     bench;
                 dir = Higher_better;
                 baseline = base;
                 current = t_boxed /. t_unboxed;
               }
              :: acc))
          (Ok []) benches
      in
      Ok (List.rev checks)
    | Some _ -> Error "baseline: results.float-kernels is not an object"
  in
  (* sweep-grain: gate the adaptive controller against the best fixed
     grain of the same sweep (present since BENCH_9).  The ratio is
     computed by the harness itself (best-fixed time / adaptive time,
     both from one process), so it is read straight from the CSV. *)
  let adaptive_checks () =
    let path_ = [ "results"; "sweep-grain/bestcut-delay" ] in
    match J.path path_ json with
    | None -> Ok []
    | Some _ ->
      let* base =
        baseline_float json (path_ @ [ "adaptive_vs_best_fixed" ])
      in
      let* cur =
        match
          find rows ~section:"sweep-grain" ~bench:"bestcut-delay"
            ~version:"adaptive" ~metric:"adaptive_vs_best_fixed"
        with
        | Some v -> Ok v
        | None ->
          Error
            "csv: no sweep-grain adaptive_vs_best_fixed row (run bench with \
             --sweep-grain ... --adaptive)"
      in
      Ok
        [
          {
            name = "sweep-grain adaptive-vs-best-fixed ratio";
            dir = Higher_better;
            baseline = base;
            current = cur;
          };
        ]
  in
  let* sc = stream_checks () in
  let* filter_c = chain_checks "filter-chain" in
  let* flatten_c = chain_checks "flatten-chain" in
  let* fc = float_checks () in
  let* ac = adaptive_checks () in
  match sc @ filter_c @ flatten_c @ fc @ ac with
  | [] ->
    Error
      "baseline: results contains no known gated section \
       (stream-overhead/chain3, stream-overhead/filter-chain, \
       stream-overhead/flatten-chain, float-kernels or \
       sweep-grain/bestcut-delay)"
  | checks -> Ok checks

(* ------------------------------------------------------------------ *)
(* Driver *)

let () =
  let baseline = ref "BENCH_9.json" in
  let csv = ref "" in
  let tolerance = ref 15.0 in
  let absolute = ref false in
  let usage = "bench_compare --csv FILE [--baseline FILE] [--max-regress PCT] [--absolute]" in
  Arg.parse
    [
      ("--baseline", Arg.Set_string baseline, "FILE Baseline snapshot JSON (default BENCH_9.json)");
      ("--csv", Arg.Set_string csv, "FILE Fresh bench CSV (bench/main.exe --csv)");
      ("--max-regress", Arg.Set_float tolerance, "PCT Allowed regression percent (default 15)");
      ("--absolute", Arg.Set absolute, " Also gate absolute times (noisy hosts: leave off)");
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  if !csv = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let fail msg =
    Printf.eprintf "bench_compare: %s\n" msg;
    exit 2
  in
  let json =
    match J.parse_result (read_file !baseline) with
    | Ok j -> j
    | Error e -> fail (Printf.sprintf "%s: %s" !baseline e)
    | exception Sys_error e -> fail e
  in
  let rows =
    match parse_csv (read_file !csv) with
    | Ok r -> r
    | Error e -> fail (Printf.sprintf "%s: %s" !csv e)
    | exception Sys_error e -> fail e
  in
  let checks =
    match build_checks ~absolute:!absolute json rows with
    | Ok c -> c
    | Error e -> fail e
  in
  let snap =
    match Option.bind (J.member "snapshot" json) J.to_float with
    | Some f -> string_of_int (int_of_float f)
    | None -> "?"
  in
  Printf.printf "bench_compare: baseline snapshot %s (%s), tolerance %g%%\n" snap
    !baseline !tolerance;
  let ok =
    List.fold_left
      (fun ok c ->
        let pass = verdict ~tolerance:!tolerance c in
        Printf.printf "  %-42s baseline %8.4f  current %8.4f  %+6.1f%%  %s\n"
          c.name c.baseline c.current (change_pct c)
          (if pass then "ok" else "REGRESSION");
        ok && pass)
      true checks
  in
  if ok then begin
    print_endline "result: PASS";
    exit 0
  end
  else begin
    print_endline "result: FAIL";
    exit 1
  end
