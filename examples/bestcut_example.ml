(* The paper's motivating example (§3): best-cut for ray-tracing kd-tree
   construction — a map, scan, map, reduce pipeline in which block-delayed
   sequences make only two passes over the data (Figure 5).

   Run with:  dune exec examples/bestcut_example.exe *)

module K = Bds_kernels.Bestcut
module Measure = Bds_harness.Measure

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let n = 2_000_000 in
  let boxes = K.generate n in
  Printf.printf "best-cut over %d bounding-box events\n\n" n;

  let time name f =
    let t = Measure.time ~repeat:3 (fun () -> ignore (f boxes)) in
    Printf.printf "  %-22s %s\n%!" name (Measure.pp_time t);
    t
  in
  let ta = time "array (no fusion)" K.Array_version.best_cut in
  let tr = time "rad (index fusion)" K.Rad_version.best_cut in
  let td = time "delay (RAD+BID fusion)" K.Delay_version.best_cut in
  Printf.printf "\n  speedup vs array: rad %.2fx, delay %.2fx\n" (ta /. tr) (ta /. td);

  (* All three compute the same cut cost. *)
  let c = K.Delay_version.best_cut boxes in
  assert (Float.abs (c -. K.reference boxes) < 1e-6);
  Printf.printf "  minimum cut cost: %.2f (validated)\n" c;
  Bds_runtime.Runtime.shutdown ()
