(* Graph analytics: parallel BFS over an R-MAT power-law graph, exactly
   the paper's Figure 6 — flatten + filterOp with a compare-and-swap,
   with the flattened edge sequence never materialised.

   Run with:  dune exec examples/bfs_example.exe *)

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let scale = 16 and num_edges = 500_000 in
  Printf.printf "generating R-MAT graph: 2^%d vertices, %d edges...\n%!" scale num_edges;
  let g = Bds_graph.Rmat.generate ~seed:1 ~scale ~num_edges () in

  let t0 = Unix.gettimeofday () in
  let parents = Bds_graph.Bfs.Delay_version.bfs g 0 in
  let dt = Unix.gettimeofday () -. t0 in

  let reached = Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0 parents in
  Printf.printf "BFS from vertex 0: reached %d of %d vertices in %.3fs\n" reached
    (Bds_graph.Csr.num_vertices g) dt;

  (* Depth histogram via the reference distances. *)
  let dist = Bds_graph.Csr.bfs_distances g 0 in
  let max_d = Array.fold_left max 0 dist in
  let hist = Array.make (max_d + 1) 0 in
  Array.iter (fun d -> if d >= 0 then hist.(d) <- hist.(d) + 1) dist;
  Printf.printf "frontier sizes by depth:";
  Array.iteri (fun d c -> if d <= 10 then Printf.printf " %d:%d" d c) hist;
  print_newline ();

  assert (Bds_graph.Bfs.valid_parents g 0 parents);
  print_endline "parent tree validated against sequential reference.";
  Bds_runtime.Runtime.shutdown ()
