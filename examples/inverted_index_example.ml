(* Building an inverted index (§1's PBBS application) with the public
   API: tokenise, attach document ids, sort with the parallel sort
   substrate, and reduce to postings — comparing the three library
   versions.

   Run with:  dune exec examples/inverted_index_example.exe *)

module K = Bds_kernels.Inverted_index
module Measure = Bds_harness.Measure

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let n = 1_000_000 in
  let text = K.generate n in
  Printf.printf "indexing %d chars of documents\n\n" n;
  let time name f =
    let t = Measure.time ~repeat:3 (fun () -> ignore (Sys.opaque_identity (f text))) in
    Printf.printf "  %-8s %s\n%!" name (Measure.pp_time t)
  in
  time "array" K.Array_version.index;
  time "rad" K.Rad_version.index;
  time "delay" K.Delay_version.index;
  let words, postings = K.Delay_version.index text in
  Printf.printf "\n  %d distinct words, %d postings (%.1f docs/word avg)\n" words
    postings
    (float_of_int postings /. float_of_int words);
  assert ((words, postings) = K.reference text);
  print_endline "  validated against the hash-table reference.";
  Bds_runtime.Runtime.shutdown ()
