(* k-means clustering with the blockwise API: each iteration fuses the
   assignment map into a per-block sequential accumulation
   (Seq.iter_block_streams), so no per-point assignment array and no
   per-point allocation — the per-block partial sums are the only
   intermediates, exactly the O(blocks) footprint the cost semantics
   promises for block-level algorithms.

   Run with:  dune exec examples/kmeans_example.exe *)

module S = Bds.Seq

type acc = { count : int array; sx : float array; sy : float array }

let new_acc k = { count = Array.make k 0; sx = Array.make k 0.0; sy = Array.make k 0.0 }

let nearest (cx, cy) (centroids : (float * float) array) =
  let best = ref 0 and bestd = ref infinity in
  Array.iteri
    (fun j (x, y) ->
      let d = ((x -. cx) *. (x -. cx)) +. ((y -. cy) *. (y -. cy)) in
      if d < !bestd then begin
        bestd := d;
        best := j
      end)
    centroids;
  !best

(* One iteration: returns the updated centroids. *)
let step (points : (float * float) array) (centroids : (float * float) array) =
  let k = Array.length centroids in
  let s = S.of_array points in
  let bsize = S.block_size_of s in
  let nblocks = (Array.length points + bsize - 1) / bsize in
  let partials = Array.init nblocks (fun _ -> new_acc k) in
  (* Parallel across blocks; sequential accumulation within each. *)
  S.iter_block_streams
    (fun b stream ->
      let a = partials.(b) in
      Bds_stream.Stream.iter
        (fun (x, y) ->
          let j = nearest (x, y) centroids in
          a.count.(j) <- a.count.(j) + 1;
          a.sx.(j) <- a.sx.(j) +. x;
          a.sy.(j) <- a.sy.(j) +. y)
        stream)
    s;
  Array.init k (fun j ->
      let c = Array.fold_left (fun acc a -> acc + a.count.(j)) 0 partials in
      if c = 0 then centroids.(j)
      else begin
        let sx = Array.fold_left (fun acc a -> acc +. a.sx.(j)) 0.0 partials in
        let sy = Array.fold_left (fun acc a -> acc +. a.sy.(j)) 0.0 partials in
        (sx /. float_of_int c, sy /. float_of_int c)
      end)

(* Sequential reference step, for validation. *)
let step_seq points centroids =
  let k = Array.length centroids in
  let a = new_acc k in
  Array.iter
    (fun (x, y) ->
      let j = nearest (x, y) centroids in
      a.count.(j) <- a.count.(j) + 1;
      a.sx.(j) <- a.sx.(j) +. x;
      a.sy.(j) <- a.sy.(j) +. y)
    points;
  Array.init k (fun j ->
      if a.count.(j) = 0 then centroids.(j)
      else (a.sx.(j) /. float_of_int a.count.(j), a.sy.(j) /. float_of_int a.count.(j)))

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let n = 500_000 and k = 8 in
  (* Points drawn around k well-separated centres. *)
  let truth =
    Array.init k (fun j ->
        let a = 2.0 *. Float.pi *. float_of_int j /. float_of_int k in
        (10.0 *. cos a, 10.0 *. sin a))
  in
  let points =
    Array.init n (fun i ->
        let j = i mod k in
        let jx = Bds_data.Splitmix.float_at ~seed:1 i -. 0.5 in
        let jy = Bds_data.Splitmix.float_at ~seed:2 i -. 0.5 in
        (fst truth.(j) +. jx, snd truth.(j) +. jy))
  in
  let centroids = ref (Array.init k (fun j -> points.(j * 97))) in
  let t0 = Unix.gettimeofday () in
  for it = 1 to 10 do
    let next = step points !centroids in
    (* Validate each parallel step against the sequential reference. *)
    let check = step_seq points !centroids in
    Array.iteri
      (fun j (x, y) ->
        let cx, cy = check.(j) in
        assert (Float.abs (x -. cx) < 1e-6 && Float.abs (y -. cy) < 1e-6))
      next;
    centroids := next;
    if it = 1 || it = 10 then begin
      Printf.printf "iteration %2d centroids:" it;
      Array.iteri
        (fun j (x, y) -> if j < 3 then Printf.printf " (%.2f, %.2f)" x y)
        !centroids;
      print_endline " ..."
    end
  done;
  Printf.printf "10 iterations over %d points, k=%d: %.2fs (every step validated)\n" n k
    (Unix.gettimeofday () -. t0);
  (* Recovered centroids should sit near the true centres. *)
  let matched =
    Array.for_all
      (fun (tx, ty) ->
        Array.exists
          (fun (x, y) -> Float.abs (x -. tx) < 0.5 && Float.abs (y -. ty) < 0.5)
          !centroids)
      truth
  in
  Printf.printf "all %d true centres recovered: %b\n" k matched;
  Bds_runtime.Runtime.shutdown ()
