(* Recursive blocked prime sieve built from flatten + filter (§6's
   "primes" workload), comparing the three library versions.

   Run with:  dune exec examples/primes_example.exe *)

module K = Bds_kernels.Primes
module Measure = Bds_harness.Measure

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let n = 2_000_000 in
  Printf.printf "primes below %d\n\n" n;
  let time name f =
    let t = Measure.time ~repeat:3 (fun () -> ignore (Sys.opaque_identity (f n))) in
    Printf.printf "  %-8s %s\n%!" name (Measure.pp_time t)
  in
  time "array" K.Array_version.primes;
  time "rad" K.Rad_version.primes;
  time "delay" K.Delay_version.primes;

  let ps = K.Delay_version.primes n in
  Printf.printf "\n  %d primes; largest below %d is %d\n" (Array.length ps) n
    ps.(Array.length ps - 1);
  Printf.printf "  first ten:";
  Array.iteri (fun i p -> if i < 10 then Printf.printf " %d" p) ps;
  print_newline ();
  assert (ps = K.reference n);
  print_endline "  validated against sequential Eratosthenes.";
  Bds_runtime.Runtime.shutdown ()
