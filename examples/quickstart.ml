(* Quickstart: the block-delayed sequence API in five minutes.

   Run with:  dune exec examples/quickstart.exe *)

module S = Bds.Seq

let () =
  (* The library parallelises across a pool of domains; the pool is
     created lazily, or explicitly: *)
  Bds_runtime.Runtime.set_num_domains 4;

  (* [tabulate] builds a *delayed* sequence: no elements exist yet. *)
  let xs = S.tabulate 10_000_000 (fun i -> i) in

  (* map / zip are O(1): they compose index functions (RAD fusion). *)
  let squares = S.map (fun x -> x * x) xs in

  (* reduce drives the fused pipeline in parallel: the ten million squares
     are never stored anywhere. *)
  let sum = S.reduce ( + ) 0 squares in
  Printf.printf "sum of squares below 10^7      = %d\n" sum;

  (* scan produces a *block-iterable* delayed sequence (BID): phases 1-2
     run now (block sums), phase 3 is delayed and fuses with the next
     consumer. Again: no 10-million-element intermediate array. *)
  let prefix_sums, total = S.scan ( + ) 0 squares in
  let odd_prefixes = S.filter (fun p -> p land 1 = 1) prefix_sums in
  Printf.printf "total %d; odd prefix sums      = %d\n" total (S.length odd_prefixes);

  (* filter and flatten also produce BIDs: *)
  let nested = S.tabulate 1000 (fun i -> S.tabulate (i mod 10) (fun j -> i + j)) in
  let flat = S.flatten nested in
  Printf.printf "flattened length               = %d\n" (S.length flat);

  (* When a delayed sequence feeds several consumers, [force] it so the
     work happens once (the cost model in Bds.Cost_model makes this
     tradeoff precise): *)
  let expensive = S.map (fun x -> float_of_int x ** 1.5) (S.take xs 1_000_000) in
  let forced = S.force expensive in
  let mean = S.float_sum forced /. 1e6 in
  let mx = S.max_by compare forced in
  Printf.printf "mean %.1f, max %.1f\n" mean mx;

  Bds_runtime.Runtime.shutdown ()
