(* A tiny depth-map renderer on top of the raycast kernel (§1's
   ray-triangle intersection application): one primary ray per pixel over
   a random triangle soup, nearest-hit distances mapped to grayscale, and
   the image written as a PGM file.

   Run with:  dune exec examples/raytrace_render.exe -- [out.pgm] *)

module R = Bds_kernels.Raycast

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let out_path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "raytrace.pgm" in
  let width = 240 and height = 180 in
  let triangles, _ = R.generate ~seed:7 ~triangles:400 ~rays:1 () in

  (* Camera at z = -1.5 looking at the unit cube. *)
  let rays =
    Array.init (width * height) (fun k ->
        let px = k mod width and py = k / width in
        let x = 0.5 +. (1.6 *. ((float_of_int px /. float_of_int width) -. 0.5)) in
        let y = 0.5 +. (1.2 *. (0.5 -. (float_of_int py /. float_of_int height))) in
        R.
          {
            origin = { x = 0.5; y = 0.5; z = -1.5 };
            dir = { x = x -. 0.5; y = y -. 0.5; z = 1.5 };
          })
  in
  let t0 = Unix.gettimeofday () in
  let depths = R.Delay_version.cast triangles rays in
  let dt = Unix.gettimeofday () -. t0 in
  let hits = Array.fold_left (fun a d -> if d < infinity then a + 1 else a) 0 depths in
  Printf.printf "cast %d rays over %d triangles in %.2fs (%d hits, %.1f%%)\n"
    (width * height) (Array.length triangles) dt hits
    (100.0 *. float_of_int hits /. float_of_int (width * height));

  (* Normalise finite depths to 255..32; misses are black. *)
  let dmin, dmax =
    Array.fold_left
      (fun (lo, hi) d ->
        if d < infinity then (Float.min lo d, Float.max hi d) else (lo, hi))
      (infinity, neg_infinity) depths
  in
  let shade d =
    if d = infinity then 0
    else if dmax <= dmin then 255
    else 255 - int_of_float (223.0 *. ((d -. dmin) /. (dmax -. dmin)))
  in
  let oc = open_out_bin out_path in
  Printf.fprintf oc "P5\n%d %d\n255\n" width height;
  Array.iter (fun d -> output_char oc (Char.chr (shade d))) depths;
  close_out oc;
  Printf.printf "wrote %s (%dx%d PGM depth map)\n" out_path width height;
  Bds_runtime.Runtime.shutdown ()
