(* Text processing with fused filters: tokens, wc and grep over a
   generated corpus — the paper's string-processing workloads, built on
   filter/zip BID fusion.

   Run with:  dune exec examples/text_pipeline.exe *)

module S = Bds.Seq
module K = Bds_kernels

let () =
  Bds_runtime.Runtime.set_num_domains 4;
  let n = 2_000_000 in
  let text = Bds_data.Gen.text_with_pattern ~pattern:"needle" ~frac_matching:0.02 n in
  Printf.printf "corpus: %d chars\n\n" n;

  let lines, words, bytes = K.Wc.Delay_version.wc text in
  Printf.printf "wc:     %d lines, %d words, %d bytes\n" lines words bytes;

  let count, total_len = K.Tokens.Delay_version.tokens text in
  Printf.printf "tokens: %d tokens, average length %.2f\n" count
    (float_of_int total_len /. float_of_int count);

  let matches, matched_bytes = K.Grep.Delay_version.grep text "needle" in
  Printf.printf "grep:   %d lines contain \"needle\" (%d bytes)\n" matches matched_bytes;

  (* A custom fused pipeline on the public API: histogram of token
     lengths.  token_spans materialises only the (start,len) descriptors;
     the map and iteration fuse. *)
  let spans = K.Tokens.Delay_version.token_spans text in
  let hist = Array.init 32 (fun _ -> Atomic.make 0) in
  S.iter
    (fun (_, len) -> Atomic.incr hist.(min 31 len))
    (S.of_array spans);
  Printf.printf "\ntoken length histogram (1..12):\n";
  for len = 1 to 12 do
    let c = Atomic.get hist.(len) in
    Printf.printf "  %2d %-50s %d\n" len (String.make (min 50 (c * 200 / (count + 1))) '#') c
  done;
  Bds_runtime.Runtime.shutdown ()
