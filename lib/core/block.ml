(* Block-size policy B(n) for BID sequences.

   The paper (§4) leaves the choice open: "it could be set as a constant at
   compile-time, or could be computed as n/P where P is the number of
   processors".  We default to a scaled policy — blocks sized so there are
   roughly [per_worker_blocks] blocks per worker (for load balancing),
   clamped so blocks are neither too small (scheduling overhead) nor too
   large (load imbalance).  The policy is process-global and mutable so the
   benchmark harness can ablate it (Figure 16-style sweeps). *)

type policy =
  | Fixed of int
      (** Every sequence uses this block size, regardless of length. *)
  | Scaled of { per_worker_blocks : int; min_size : int; max_size : int }
      (** B(n) = clamp(n / (per_worker_blocks * P), min_size, max_size). *)

let default_policy =
  Scaled { per_worker_blocks = 8; min_size = 2048; max_size = 65536 }

let current = ref default_policy

let set_policy p =
  (match p with
  | Fixed b when b < 1 -> invalid_arg "Block.set_policy: Fixed size must be >= 1"
  | Scaled { per_worker_blocks; min_size; max_size } ->
    if per_worker_blocks < 1 || min_size < 1 || max_size < min_size then
      invalid_arg "Block.set_policy: invalid Scaled parameters"
  | Fixed _ -> ());
  current := p

let get_policy () = !current

let reset_policy () = current := default_policy

let size n =
  if n <= 0 then 1
  else
    match !current with
    | Fixed b -> b
    | Scaled { per_worker_blocks; min_size; max_size } ->
      let p = Bds_runtime.Runtime.num_workers () in
      let b = n / (per_worker_blocks * p) in
      max min_size (min max_size (max 1 b))

let num_blocks ~block_size n =
  if n = 0 then 0 else (n + block_size - 1) / block_size
