(* Block-size policy B(n) for BID sequences — thin delegator.

   The policy itself lives in the unified granularity layer
   (Bds_runtime.Grain): one Atomic policy cell shared by every block-based
   layer (Parray, Rad, Seq), with BDS_BLOCK_SIZE / BDS_BLOCKS_PER_WORKER
   environment overrides.  This module keeps the Fixed/Scaled constructors
   as the public ablation API (Figure 16-style sweeps) and supplies the
   worker count. *)

module Grain = Bds_runtime.Grain

type policy = Grain.policy =
  | Fixed of int
  | Scaled of { per_worker_blocks : int; min_size : int; max_size : int }

let default_policy = Grain.default_policy
let set_policy = Grain.set_policy
let get_policy = Grain.get_policy
let reset_policy = Grain.reset_policy

(* With adaptation on ([Grain.adaptive]) the controller's per-(op, size,
   workers) block size wins over the static policy; an explicit policy
   (env override or programmatic [set_policy]) still beats both —
   [Autotune.block_size] returns [None] then. *)
let size n =
  let workers = Bds_runtime.Runtime.num_workers () in
  match Bds_runtime.Autotune.block_size ~workers n with
  | Some b -> b
  | None -> Grain.block_size ~workers n

let num_blocks = Grain.num_blocks
