(** The block-size policy B(n) for block-iterable delayed sequences.

    The paper (§4) leaves the choice open; this library defaults to blocks
    scaled with the worker count, clamped to a sensible range, and lets
    the policy be changed process-wide for ablation studies (the harness's
    block-size sweeps). A BID records its block size at creation, so
    changing the policy never corrupts live sequences.

    This module is a thin facade over {!Bds_runtime.Grain}, the single
    granularity layer: the policy state (an [Atomic]), the
    [BDS_BLOCK_SIZE] / [BDS_BLOCKS_PER_WORKER] environment overrides, and
    the grid arithmetic all live there and are shared with [Parray],
    [Rad], and the [Runtime] loop grain. *)

type policy = Bds_runtime.Grain.policy =
  | Fixed of int
      (** Every sequence uses this block size, regardless of length. *)
  | Scaled of { per_worker_blocks : int; min_size : int; max_size : int }
      (** B(n) = clamp(n / (per_worker_blocks * P), min_size, max_size),
          with P the current worker count. *)

(** [Scaled { per_worker_blocks = 8; min_size = 2048; max_size = 65536 }]. *)
val default_policy : policy

(** Raises [Invalid_argument] on non-positive sizes. *)
val set_policy : policy -> unit

val get_policy : unit -> policy
val reset_policy : unit -> unit

(** Block size for a sequence of length [n] under the current policy
    (always >= 1).  With adaptive granularity on
    ([Bds_runtime.Grain.adaptive]) and no explicit policy, the
    self-tuning controller's per-op decision wins instead
    (docs/RUNTIME.md "Adaptive granularity"). *)
val size : int -> int

(** [num_blocks ~block_size n] = ⌈n / block_size⌉ (0 for empty). *)
val num_blocks : block_size:int -> int -> int
