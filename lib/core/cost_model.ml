(* Executable cost semantics (the paper's Figure 11).

   Costs are work / span / allocation counts.  A sequence value in the
   model carries, per the semantics, its length, its representation
   (RAD or BID), and its *delayed* per-index costs W*, S*, A*; each
   operation returns the resulting sequence together with the *eager* cost
   incurred now.  [bmax] is the paper's max-of-block-sums operator, which
   turns per-index delayed spans into the span of a blockwise-parallel
   traversal.

   The model is deliberately concrete (integers, explicit block size) so
   tests can check it against measured allocations of the real library,
   and the benchmark harness can regenerate Figure 5 from it. *)

type cost = { work : int; span : int; alloc : int }

let zero_cost = { work = 0; span = 0; alloc = 0 }

let add_cost a b =
  { work = a.work + b.work; span = a.span + b.span; alloc = a.alloc + b.alloc }

type seq = {
  len : int;
  repr : [ `Rad | `Bid ];
  dwork : int -> int;  (** delayed work W* at each index *)
  dspan : int -> int;  (** delayed span S* at each index *)
  dalloc : int -> int;  (** delayed allocation A* at each index *)
}

(* A per-index cost description for a user function argument (f, p, ...).
   "Simple" functions (§5) are [const_fn 1]. *)
type fn_cost = { fwork : int -> int; fspan : int -> int; falloc : int -> int }

let const_fn c = { fwork = (fun _ -> c); fspan = (fun _ -> c); falloc = (fun _ -> 0) }

let simple = const_fn 1

(* ------------------------------------------------------------------ *)
(* Cost aggregation helpers                                            *)

let sum_over n f =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + f i
  done;
  !acc

(* bmax over a length-n index space with block size b: max over blocks of
   the within-block sum. *)
let bmax ~block_size n f =
  if n = 0 then 0
  else begin
    let nb = (n + block_size - 1) / block_size in
    let best = ref 0 in
    for j = 0 to nb - 1 do
      let lo = j * block_size in
      let hi = min n (lo + block_size) in
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + f i
      done;
      if !s > !best then best := !s
    done;
    !best
  end

let log2_ceil n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 (max 1 n)

let delayed_unit = ((fun _ -> 1), (fun _ -> 1), fun _ -> 0)

let make_seq len repr (dwork, dspan, dalloc) = { len; repr; dwork; dspan; dalloc }

(* ------------------------------------------------------------------ *)
(* Figure 11, row by row                                               *)

(* tabulate n f: O(1) eager; delayed costs are f's costs. *)
let tabulate n (f : fn_cost) =
  ( make_seq n `Rad (f.fwork, f.fspan, f.falloc),
    { work = 1; span = 1; alloc = 0 } )

(* force X: all delayed work happens now; result is a materialised RAD. *)
let force ~block_size x =
  let cost =
    {
      work = sum_over x.len x.dwork;
      span = bmax ~block_size x.len x.dspan;
      alloc = x.len + sum_over x.len x.dalloc;
    }
  in
  (make_seq x.len `Rad delayed_unit, cost)

(* map f X: O(1) eager; delayed costs accumulate f's costs. *)
let map (f : fn_cost) x =
  ( make_seq x.len x.repr
      ( (fun i -> x.dwork i + f.fwork i),
        (fun i -> x.dspan i + f.fspan i),
        fun i -> x.dalloc i + f.falloc i ),
    { work = 1; span = 1; alloc = 0 } )

(* zip X Y: O(1) eager; delayed costs are the sum of both sides (each
   output element pulls one element from each input).  Output is RAD only
   when both inputs are. *)
let zip x y =
  assert (x.len = y.len);
  let repr = if x.repr = `Rad && y.repr = `Rad then `Rad else `Bid in
  ( make_seq x.len repr
      ( (fun i -> x.dwork i + y.dwork i + 1),
        (fun i -> x.dspan i + y.dspan i + 1),
        fun i -> x.dalloc i + y.dalloc i ),
    { work = 1; span = 1; alloc = 0 } )

(* filter p X: eagerly drives the input and packs within blocks; the
   output (a BID over the packed blocks) has unit delayed costs.
   [out_len] = |Y| is data-dependent, so the model takes it as input. *)
let filter ~block_size ~out_len (p : fn_cost) x =
  let cost =
    {
      work = sum_over x.len (fun i -> x.dwork i + p.fwork i);
      span =
        bmax ~block_size x.len (fun i -> x.dspan i + p.fspan i)
        + log2_ceil x.len;
      alloc =
        out_len
        + ((x.len + block_size - 1) / block_size)
        + sum_over x.len (fun i -> p.falloc i + x.dalloc i);
    }
  in
  (make_seq out_len `Bid delayed_unit, cost)

(* flatten X (inner sequences RAD): eager cost proportional to the outer
   length; delayed per-index costs carry through from the inners. *)
let flatten ~block_size (outer : seq) (inners : seq array) =
  assert (Array.length inners = outer.len);
  Array.iter (fun s -> assert (s.repr = `Rad)) inners;
  let total = Array.fold_left (fun acc s -> acc + s.len) 0 inners in
  (* Map a flat index to (inner, offset). *)
  let locate =
    let offsets = Array.make outer.len 0 in
    let acc = ref 0 in
    Array.iteri
      (fun j s ->
        offsets.(j) <- !acc;
        acc := !acc + s.len)
      inners;
    fun i ->
      let rec go j = if j + 1 < outer.len && offsets.(j + 1) <= i then go (j + 1) else j in
      let j = go 0 in
      (j, i - offsets.(j))
  in
  let cost =
    {
      work = sum_over outer.len outer.dwork;
      span = log2_ceil outer.len + bmax ~block_size outer.len outer.dspan;
      alloc = outer.len + sum_over outer.len outer.dalloc;
    }
  in
  ( make_seq total `Bid
      ( (fun i ->
          let j, k = locate i in
          inners.(j).dwork k),
        (fun i ->
          let j, k = locate i in
          inners.(j).dspan k),
        fun i ->
          let j, k = locate i in
          inners.(j).dalloc k ),
    cost )

(* scan f z X (f simple): phases 1-2 eager, phase 3 delayed (+1/index). *)
let scan ~block_size x =
  let cost =
    {
      work = sum_over x.len x.dwork;
      span = log2_ceil x.len + bmax ~block_size x.len x.dspan;
      alloc =
        ((x.len + block_size - 1) / block_size) + sum_over x.len x.dalloc;
    }
  in
  ( make_seq x.len `Bid
      ( (fun i -> 1 + x.dwork i),
        (fun i -> 1 + x.dspan i),
        fun i -> 1 + x.dalloc i ),
    cost )

(* reduce f z X (f simple): eager only; no output sequence. *)
let reduce ~block_size x =
  {
    work = sum_over x.len x.dwork;
    span = log2_ceil x.len + bmax ~block_size x.len x.dspan;
    alloc = ((x.len + block_size - 1) / block_size) + sum_over x.len x.dalloc;
  }

(* ------------------------------------------------------------------ *)
(* Figure 5: reads/writes of best-cut, normal vs fused                 *)

type rw_row = {
  phase : string;
  normal_reads : int;
  normal_writes : int;
  fused_reads : int option;  (** None = the phase is fused away *)
  fused_writes : int option;
}

(* The exact table of Figure 5 for n elements and b blocks. *)
let bestcut_rw ~n ~b =
  [
    { phase = "map"; normal_reads = n; normal_writes = n; fused_reads = None; fused_writes = None };
    { phase = "scan phase 1"; normal_reads = n; normal_writes = b; fused_reads = Some n; fused_writes = Some b };
    { phase = "scan phase 2"; normal_reads = b; normal_writes = b; fused_reads = Some b; fused_writes = Some b };
    { phase = "scan phase 3"; normal_reads = n + b; normal_writes = n; fused_reads = None; fused_writes = None };
    { phase = "map"; normal_reads = n; normal_writes = n; fused_reads = None; fused_writes = None };
    { phase = "reduce"; normal_reads = n; normal_writes = b + 1; fused_reads = Some (n + (2 * b)); fused_writes = Some (b + 1) };
  ]

let rw_totals rows =
  List.fold_left
    (fun (nr, nw, fr, fw) r ->
      ( nr + r.normal_reads,
        nw + r.normal_writes,
        fr + Option.value ~default:0 r.fused_reads,
        fw + Option.value ~default:0 r.fused_writes ))
    (0, 0, 0, 0) rows

(* ------------------------------------------------------------------ *)
(* §5.1: BFS cost analysis                                             *)

(* Allocation of one BFS round with frontier size [f], edge-expansion size
   [e] and next-frontier size [f'] (block size B):
   flatten allocates |F|; filterOp allocates |F'| + |E|/B. *)
let bfs_round_alloc ~block_size ~frontier ~edges ~next_frontier =
  frontier + next_frontier + ((edges + block_size - 1) / block_size)

(* Total allocation over a whole BFS given the per-round sizes; the §5.1
   claim is that this is O(N + M/B). *)
let bfs_total_alloc ~block_size rounds =
  List.fold_left
    (fun acc (frontier, edges, next_frontier) ->
      acc + bfs_round_alloc ~block_size ~frontier ~edges ~next_frontier)
    0 rounds
