(** Executable cost semantics — the paper's Figure 11 — plus the Figure 5
    read/write model and the §5.1 BFS allocation analysis.

    A model sequence carries its length, representation and per-index
    {e delayed} costs W*, S*, A*; each operation returns the output
    sequence together with the {e eager} cost incurred now.  Spans use the
    paper's [bmax] (max over blocks of within-block sums).  Tests compare
    the model against the real library's measured allocations. *)

type cost = { work : int; span : int; alloc : int }

val zero_cost : cost
val add_cost : cost -> cost -> cost

type seq = {
  len : int;
  repr : [ `Rad | `Bid ];
  dwork : int -> int;  (** delayed work W* at each index *)
  dspan : int -> int;  (** delayed span S* at each index *)
  dalloc : int -> int;  (** delayed allocation A* at each index *)
}

(** Per-index costs of a user function argument. *)
type fn_cost = { fwork : int -> int; fspan : int -> int; falloc : int -> int }

(** Constant cost [c] at every index, no allocation. *)
val const_fn : int -> fn_cost

(** The paper's "simple" functions (§5): constant time, no allocation. *)
val simple : fn_cost

(** Max over blocks of the within-block sum of [f] (the paper's bmax). *)
val bmax : block_size:int -> int -> (int -> int) -> int

val sum_over : int -> (int -> int) -> int
val log2_ceil : int -> int

(** {1 Figure 11, row by row} *)

val tabulate : int -> fn_cost -> seq * cost
val force : block_size:int -> seq -> seq * cost
val map : fn_cost -> seq -> seq * cost

(** O(1) eager; delayed costs sum both inputs. RAD iff both inputs are. *)
val zip : seq -> seq -> seq * cost

(** [filter ~block_size ~out_len p x]: [out_len] (= |Y|) is data-dependent
    and therefore an input to the model. *)
val filter : block_size:int -> out_len:int -> fn_cost -> seq -> seq * cost

(** [flatten outer inners] (inners must be RAD, as in the paper): the
    output's delayed costs are carried through from the inners. *)
val flatten : block_size:int -> seq -> seq array -> seq * cost

(** scan with a simple function: phases 1-2 eager, phase 3 delayed. *)
val scan : block_size:int -> seq -> seq * cost

(** reduce with a simple function: eager only. *)
val reduce : block_size:int -> seq -> cost

(** {1 Figure 5: best-cut reads and writes} *)

type rw_row = {
  phase : string;
  normal_reads : int;
  normal_writes : int;
  fused_reads : int option;  (** [None] = the phase is fused away *)
  fused_writes : int option;
}

(** The exact Figure 5 table for [n] elements in [b] blocks. *)
val bestcut_rw : n:int -> b:int -> rw_row list

(** (normal reads, normal writes, fused reads, fused writes) totals. *)
val rw_totals : rw_row list -> int * int * int * int

(** {1 §5.1: BFS allocation} *)

(** Allocation of one BFS round: |F| + |F'| + ⌈|E|/B⌉. *)
val bfs_round_alloc :
  block_size:int -> frontier:int -> edges:int -> next_frontier:int -> int

(** Total over a [(frontier, edges, next_frontier)] trace; the paper's
    claim is that this is O(N + M/B). *)
val bfs_total_alloc : block_size:int -> (int * int * int) list -> int
