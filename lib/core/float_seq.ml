(* The unboxed float lane (see float_seq.mli).

   A [Float_seq.t] is either a pure index function (delayed, composes
   with [map]/[map2] at construction time like the PR-4 push fusion) or
   a materialised [floatarray] block.  Every eager consumer drives
   [Runtime.apply_blocks] over the one [Grain] block grid, with a
   monomorphic inner loop per block: [floatarray] reads return unboxed
   floats, the accumulators are local [float ref]s (compiled to
   registers/stack slots in monomorphic code), and nothing allocates per
   element.  Sum/dot split their accumulator 4 ways so the adds form
   independent dependency chains (ILP / FMA-friendly; see
   docs/STREAMS.md "Unboxed float lane").

   Cancellation keeps the stream lane's cadence: every inner loop polls
   the ambient token once per 64 elements, so a cancel lands within one
   poll chunk even mid-block.

   Each per-block loop bumps [Telemetry.float_fast_path] — pipelines
   that stay on this lane are observable via [bds_probe stats], and a
   nonzero [float_boxed_fallback] (bumped by the generic paths in
   [Stream.sum_floats] / [Seq.float_sum]) flags a chain that fell off. *)

module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Profile = Bds_runtime.Profile
module Telemetry = Bds_runtime.Telemetry
module Grain = Bds_runtime.Grain

type t =
  | Fn of { len : int; get : int -> float }
  | Mat of floatarray

let poll_chunk = 64

(* In flat-float-array mode (the default runtime configuration) a
   [float array] is laid out exactly like a [floatarray]
   (Double_array_tag), so the conversion is a zero-copy cast.  The
   check is evaluated once against the live runtime rather than assumed
   from build flags. *)
let flat_float_arrays = Obj.tag (Obj.repr [| 0.0 |]) = Obj.double_array_tag

let floatarray_of_array (a : float array) : floatarray =
  if flat_float_arrays then (Obj.magic a : floatarray)
  else Float.Array.init (Array.length a) (Array.unsafe_get a)

let array_of_floatarray (a : floatarray) : float array =
  if flat_float_arrays then (Obj.magic a : float array)
  else Array.init (Float.Array.length a) (Float.Array.unsafe_get a)

(* ------------------------------------------------------------------ *)
(* Basics *)

let length = function Fn { len; _ } -> len | Mat a -> Float.Array.length a

let get t i =
  match t with Fn { get; _ } -> get i | Mat a -> Float.Array.get a i

let empty = Mat (Float.Array.create 0)

let tabulate n f =
  if n < 0 then invalid_arg "Float_seq.tabulate";
  Fn { len = n; get = f }

let of_floatarray a = Mat a

let of_array a = Mat (floatarray_of_array a)

let map g = function
  | Fn { len; get } -> Fn { len; get = (fun i -> g (get i)) }
  | Mat a -> Fn { len = Float.Array.length a; get = (fun i -> g (Float.Array.get a i)) }

let map2 g x y =
  let n = length x in
  if length y <> n then invalid_arg "Float_seq.map2: length mismatch";
  let gx = match x with Fn { get; _ } -> get | Mat a -> Float.Array.get a in
  let gy = match y with Fn { get; _ } -> get | Mat a -> Float.Array.get a in
  Fn { len = n; get = (fun i -> g (gx i) (gy i)) }

(* ------------------------------------------------------------------ *)
(* Monomorphic per-block inner loops.

   Each runs over [lo, hi), polls cancellation once per [poll_chunk]
   elements, and keeps its accumulators in local [float ref]s.  The
   [Mat] variants read with [Float.Array.unsafe_get] (the block grid
   guarantees the bounds); the [Fn] variants pay one closure call per
   element — the returned float is boxed at the call boundary, but the
   accumulator arithmetic stays unboxed, which is where the polymorphic
   path loses (boxed closure arguments, boxed intermediates, and a
   dispatch per element). *)

let sum_slice_mat (a : floatarray) lo hi =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    let j = ref !i in
    while !j + 3 < stop do
      s0 := !s0 +. Float.Array.unsafe_get a !j;
      s1 := !s1 +. Float.Array.unsafe_get a (!j + 1);
      s2 := !s2 +. Float.Array.unsafe_get a (!j + 2);
      s3 := !s3 +. Float.Array.unsafe_get a (!j + 3);
      j := !j + 4
    done;
    while !j < stop do
      s0 := !s0 +. Float.Array.unsafe_get a !j;
      incr j
    done;
    i := stop
  done;
  !s0 +. !s1 +. (!s2 +. !s3)

let sum_slice_fn (get : int -> float) lo hi =
  let s0 = ref 0.0 and s1 = ref 0.0 in
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    let j = ref !i in
    while !j + 1 < stop do
      s0 := !s0 +. get !j;
      s1 := !s1 +. get (!j + 1);
      j := !j + 2
    done;
    if !j < stop then s0 := !s0 +. get !j;
    i := stop
  done;
  !s0 +. !s1

let dot_slice_mat (a : floatarray) (b : floatarray) lo hi =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    let j = ref !i in
    while !j + 3 < stop do
      s0 := !s0 +. (Float.Array.unsafe_get a !j *. Float.Array.unsafe_get b !j);
      s1 :=
        !s1
        +. Float.Array.unsafe_get a (!j + 1) *. Float.Array.unsafe_get b (!j + 1);
      s2 :=
        !s2
        +. Float.Array.unsafe_get a (!j + 2) *. Float.Array.unsafe_get b (!j + 2);
      s3 :=
        !s3
        +. Float.Array.unsafe_get a (!j + 3) *. Float.Array.unsafe_get b (!j + 3);
      j := !j + 4
    done;
    while !j < stop do
      s0 := !s0 +. (Float.Array.unsafe_get a !j *. Float.Array.unsafe_get b !j);
      incr j
    done;
    i := stop
  done;
  !s0 +. !s1 +. (!s2 +. !s3)

let dot_slice_fn (ga : int -> float) (gb : int -> float) lo hi =
  let s0 = ref 0.0 and s1 = ref 0.0 in
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    let j = ref !i in
    while !j + 1 < stop do
      s0 := !s0 +. (ga !j *. gb !j);
      s1 := !s1 +. (ga (!j + 1) *. gb (!j + 1));
      j := !j + 2
    done;
    if !j < stop then s0 := !s0 +. (ga !j *. gb !j);
    i := stop
  done;
  !s0 +. !s1

(* Generic fold over a slice: [f] is an arbitrary closure, so its
   arguments and result box at the call boundary, but the loop is still
   monomorphic and allocation stays bounded by [f] itself. *)
let fold_slice_fn (f : float -> float -> float) z (get : int -> float) lo hi =
  let acc = ref z in
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    for j = !i to stop - 1 do
      acc := f !acc (get j)
    done;
    i := stop
  done;
  !acc

let write_slice (out : floatarray) (get : int -> float) lo hi =
  let i = ref lo in
  while !i < hi do
    Cancel.poll ();
    let stop = min hi (!i + poll_chunk) in
    for j = !i to stop - 1 do
      Float.Array.unsafe_set out j (get j)
    done;
    i := stop
  done

(* ------------------------------------------------------------------ *)
(* Eager block drivers *)

let getter = function
  | Fn { get; _ } -> get
  | Mat a -> Float.Array.get a

(* Per-block partial results live in a [floatarray] so the stores stay
   unboxed too; the cross-block combine is a short sequential unboxed
   loop (nb is O(n/B)). *)
let block_reduce ~op t ~slice_mat ~slice_fn =
  Profile.with_op op @@ fun () ->
  let n = length t in
  if n = 0 then 0.0
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let partial = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let s =
          match t with
          | Mat a -> slice_mat a lo hi
          | Fn { get; _ } -> slice_fn get lo hi
        in
        Float.Array.unsafe_set partial j s);
    let acc = ref 0.0 in
    for j = 0 to nb - 1 do
      acc := !acc +. Float.Array.unsafe_get partial j
    done;
    !acc
  end

let sum t = block_reduce ~op:"float_sum" t ~slice_mat:sum_slice_mat ~slice_fn:sum_slice_fn

let dot x y =
  let n = length x in
  if length y <> n then invalid_arg "Float_seq.dot: length mismatch";
  Profile.with_op "float_dot" @@ fun () ->
  if n = 0 then 0.0
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let partial = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let s =
          match (x, y) with
          | Mat a, Mat b -> dot_slice_mat a b lo hi
          | _ -> dot_slice_fn (getter x) (getter y) lo hi
        in
        Float.Array.unsafe_set partial j s);
    let acc = ref 0.0 in
    for j = 0 to nb - 1 do
      acc := !acc +. Float.Array.unsafe_get partial j
    done;
    !acc
  end

let reduce f z t =
  Profile.with_op "float_reduce" @@ fun () ->
  let n = length t in
  if n = 0 then z
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let get = getter t in
    (* Seed each block from its first element so [z] is combined exactly
       once, on the left of the whole fold. *)
    let partial = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        Float.Array.unsafe_set partial j (fold_slice_fn f (get lo) get (lo + 1) hi));
    let acc = ref (f z (Float.Array.unsafe_get partial 0)) in
    for j = 1 to nb - 1 do
      acc := f !acc (Float.Array.unsafe_get partial j)
    done;
    !acc
  end

(* One-pass dual reduction: both accumulators live in the same loop, so
   the input is read once where chaining two [sum]/[dot] calls would
   read it twice.  [f1]/[f2] are arbitrary closures — their results box
   at the call boundary (cf. [reduce]) — but the accumulator adds stay
   unboxed and the [Mat]x[Mat] case reads with [unsafe_get]. *)
let fold2 ~f1 ~f2 x y =
  let n = length x in
  if length y <> n then invalid_arg "Float_seq.fold2: length mismatch";
  Profile.with_op "float_dot" @@ fun () ->
  if n = 0 then (0.0, 0.0)
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let p1 = Float.Array.create nb and p2 = Float.Array.create nb in
    let gx = getter x and gy = getter y in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let s1 = ref 0.0 and s2 = ref 0.0 in
        let i = ref lo in
        (match (x, y) with
        | Mat a, Mat b ->
          while !i < hi do
            Cancel.poll ();
            let stop = min hi (!i + poll_chunk) in
            for k = !i to stop - 1 do
              let xv = Float.Array.unsafe_get a k in
              let yv = Float.Array.unsafe_get b k in
              s1 := !s1 +. f1 xv yv;
              s2 := !s2 +. f2 xv yv
            done;
            i := stop
          done
        | _ ->
          while !i < hi do
            Cancel.poll ();
            let stop = min hi (!i + poll_chunk) in
            for k = !i to stop - 1 do
              let xv = gx k and yv = gy k in
              s1 := !s1 +. f1 xv yv;
              s2 := !s2 +. f2 xv yv
            done;
            i := stop
          done);
        Float.Array.unsafe_set p1 j !s1;
        Float.Array.unsafe_set p2 j !s2);
    let a1 = ref 0.0 and a2 = ref 0.0 in
    for j = 0 to nb - 1 do
      a1 := !a1 +. Float.Array.unsafe_get p1 j;
      a2 := !a2 +. Float.Array.unsafe_get p2 j
    done;
    (!a1, !a2)
  end

(* Pack survivors into fresh unboxed storage: per block, a count+pack
   pass into a block-local floatarray (the predicate runs exactly once
   per element), then a sequential offsets scan over the per-block
   counts, then a parallel unboxed blit into the exact-size output —
   the same 3-phase shape as [Seq.filter]'s mask pass, but eager, since
   the float lane has no delayed region views to keep. *)
let filter p t =
  Profile.with_op "float_filter" @@ fun () ->
  let n = length t in
  if n = 0 then empty
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let get = getter t in
    let bufs = Array.make nb (Float.Array.create 0) in
    let counts = Array.make nb 0 in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let buf = Float.Array.create (hi - lo) in
        let c = ref 0 in
        let i = ref lo in
        (match t with
        | Mat a ->
          while !i < hi do
            Cancel.poll ();
            let stop = min hi (!i + poll_chunk) in
            for k = !i to stop - 1 do
              let v = Float.Array.unsafe_get a k in
              if p v then begin
                Float.Array.unsafe_set buf !c v;
                incr c
              end
            done;
            i := stop
          done
        | Fn _ ->
          while !i < hi do
            Cancel.poll ();
            let stop = min hi (!i + poll_chunk) in
            for k = !i to stop - 1 do
              let v = get k in
              if p v then begin
                Float.Array.unsafe_set buf !c v;
                incr c
              end
            done;
            i := stop
          done);
        bufs.(j) <- buf;
        counts.(j) <- !c);
    let offsets = Array.make nb 0 in
    let total = ref 0 in
    for j = 0 to nb - 1 do
      offsets.(j) <- !total;
      total := !total + counts.(j)
    done;
    if !total = 0 then empty
    else begin
      let out = Float.Array.create !total in
      Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
          Telemetry.incr_float_fast_path ();
          Float.Array.blit bufs.(j) 0 out offsets.(j) counts.(j));
      Mat out
    end
  end

let to_floatarray t =
  match t with
  | Mat a -> a
  | Fn { len; get } ->
    Profile.with_op "float_to_array" @@ fun () ->
    let out = Float.Array.create len in
    if len > 0 then begin
      let g = Runtime.block_grid len in
      Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
        (fun j ->
          Telemetry.incr_float_fast_path ();
          let lo, hi = Grain.bounds g j in
          write_slice out get lo hi)
    end;
    out

let force t = match t with Mat _ -> t | Fn _ -> Mat (to_floatarray t)

let to_array t = array_of_floatarray (to_floatarray t)

(* ------------------------------------------------------------------ *)
(* Prefix sums: the classic 3-phase block scan (paper Figure 10),
   specialised to [( +. )] so every phase stays unboxed.  Phases 1 and 3
   are parallel block loops; phase 2 is the short sequential scan of the
   per-block sums.  Unlike [Seq.scan] the output is materialised eagerly
   (a [Mat]) — the float lane trades the delayed phase 3 for unboxed
   stores, and a materialised output still composes with [map]/[sum]
   downstream without re-running the producer. *)

let scan t =
  Profile.with_op "float_scan" @@ fun () ->
  let n = length t in
  if n = 0 then (empty, 0.0)
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let get = getter t in
    let sums = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let s =
          match t with
          | Mat a -> sum_slice_mat a lo hi
          | Fn { get; _ } -> sum_slice_fn get lo hi
        in
        Float.Array.unsafe_set sums j s);
    (* Phase 2: exclusive scan of the block sums (sequential, unboxed). *)
    let acc = ref 0.0 in
    for j = 0 to nb - 1 do
      let s = Float.Array.unsafe_get sums j in
      Float.Array.unsafe_set sums j !acc;
      acc := !acc +. s
    done;
    let total = !acc in
    let out = Float.Array.create n in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let acc = ref (Float.Array.unsafe_get sums j) in
        let i = ref lo in
        while !i < hi do
          Cancel.poll ();
          let stop = min hi (!i + poll_chunk) in
          for k = !i to stop - 1 do
            Float.Array.unsafe_set out k !acc;
            acc := !acc +. get k
          done;
          i := stop
        done);
    (Mat out, total)
  end

let scan_incl t =
  Profile.with_op "float_scan" @@ fun () ->
  let n = length t in
  if n = 0 then empty
  else begin
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let get = getter t in
    let sums = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let s =
          match t with
          | Mat a -> sum_slice_mat a lo hi
          | Fn { get; _ } -> sum_slice_fn get lo hi
        in
        Float.Array.unsafe_set sums j s);
    let acc = ref 0.0 in
    for j = 0 to nb - 1 do
      let s = Float.Array.unsafe_get sums j in
      Float.Array.unsafe_set sums j !acc;
      acc := !acc +. s
    done;
    let out = Float.Array.create n in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        let acc = ref (Float.Array.unsafe_get sums j) in
        let i = ref lo in
        while !i < hi do
          Cancel.poll ();
          let stop = min hi (!i + poll_chunk) in
          for k = !i to stop - 1 do
            acc := !acc +. get k;
            Float.Array.unsafe_set out k !acc
          done;
          i := stop
        done);
    Mat out
  end
