(** The unboxed float lane: monomorphic block-delayed float sequences.

    The polymorphic ['a Seq.t] pipeline boxes every float it touches —
    polymorphic array reads, boxed closure arguments, an allocation per
    pushed element.  A {!t} keeps float data in [floatarray] blocks and
    drives every eager operation through [Runtime.apply_blocks] with a
    monomorphic inner loop: unboxed reads, local [float ref]
    accumulators (4-way split in sum/dot so the adds form independent
    FMA-friendly chains), unboxed [floatarray] stores for per-block
    partials, and a cancellation poll every 64 elements — the same
    cadence as the stream push path.

    Delayed values ([tabulate], [map], [map2]) are pure index functions
    that compose at construction time, exactly like the PR-4 stream
    fusion; eager consumers ([sum], [dot], [reduce], [scan],
    [to_floatarray]) get the block grid, grain policy, per-block trace
    spans, and work/span attribution from the shared runtime.

    Every per-block loop bumps the [float_fast_path] telemetry counter;
    chains that fall back to the generic boxed fold (see
    [Seq.float_sum] / [Stream.sum_floats]) bump [float_boxed_fallback]
    instead.  docs/STREAMS.md "Unboxed float lane" describes when a
    pipeline stays on this lane. *)

type t =
  | Fn of { len : int; get : int -> float }
      (** Delayed: a pure index function (composes with {!map}). *)
  | Mat of floatarray  (** Materialised: contiguous unboxed storage. *)

val length : t -> int

(** Bounds-checked element read ([Fn] applies the index function). *)
val get : t -> int -> float

val empty : t

(** Delayed; raises [Invalid_argument] on negative length. *)
val tabulate : int -> (int -> float) -> t

(** Zero-cost view of a [floatarray] (not copied — treat as shared). *)
val of_floatarray : floatarray -> t

(** In flat-float-array mode (the default runtime) this is a zero-copy
    cast — the result aliases [a]; otherwise it copies. *)
val of_array : float array -> t

(** Delayed composition: no intermediate is materialised. *)
val map : (float -> float) -> t -> t

(** Delayed elementwise combination; raises on length mismatch. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** Parallel unboxed sum.  Association order is: 4-way-split
    accumulators within a block, blocks combined left-to-right — so
    results differ from a sequential left fold by the usual
    summation-order rounding (compare with a tolerance). *)
val sum : t -> float

(** Parallel unboxed dot product; raises on length mismatch. *)
val dot : t -> t -> float

(** Generic parallel fold: [f] associative with left unit [z].  [f] is
    an arbitrary closure, so its arguments box at the call boundary —
    {!sum}/{!dot} are the fully unboxed reductions. *)
val reduce : (float -> float -> float) -> float -> t -> float

(** One-pass dual reduction over paired elements: returns
    [(sum_i f1 x_i y_i, sum_i f2 x_i y_i)].  Both accumulators live in
    the same per-block loop, so the inputs are read once where two
    chained {!sum}/{!dot} calls would read them twice (the kernels'
    second-moment passes).  [f1]/[f2] box at the call boundary like
    {!reduce}'s [f]; association order is per-block partials combined
    left-to-right.  Raises on length mismatch. *)
val fold2 :
  f1:(float -> float -> float) ->
  f2:(float -> float -> float) ->
  t ->
  t ->
  float * float

(** Eager parallel filter: packs the survivors into fresh unboxed
    storage (a [Mat]), preserving order.  The predicate runs exactly
    once per element (count+pack per block, offsets scan, parallel
    blit).  Unlike [Seq.filter] the result is materialised — the float
    lane keeps no delayed region views. *)
val filter : (float -> bool) -> t -> t

(** Exclusive parallel prefix sums, returning (prefixes, total).
    Specialised to [( +. )] so all three phases stay unboxed; the output
    is materialised eagerly (a [Mat]) rather than delayed like
    [Seq.scan]. *)
val scan : t -> t * float

(** Inclusive parallel prefix sums (element [i] includes input [i]). *)
val scan_incl : t -> t

(** Materialise.  For a [Mat] this returns the underlying storage
    without copying — treat it as read-only. *)
val to_floatarray : t -> floatarray

(** {!to_floatarray} re-wrapped as a [Mat]. *)
val force : t -> t

(** Boxed-type bridge ([float array] view; zero-copy in flat mode). *)
val to_array : t -> float array

(** Zero-copy cast in flat-float-array mode, copy otherwise.  Exposed
    for the kernels and [Seq.float_sum]'s memoised-BID path. *)
val floatarray_of_array : float array -> floatarray

val array_of_floatarray : floatarray -> float array
