(* Segmented operations over flat (lengths, values) representations — the
   NESL-lineage counterpart of flatten (Figure 3 works with exactly this
   encoding: a flat value sequence partitioned by segment lengths).

   [scan] uses the classic segmented-scan monoid lifted over the flat
   value sequence, so the whole thing is one Seq pipeline: the only eager
   work is the per-segment offset computation and the scan's block
   phases; everything per-element fuses. *)

let total_length lengths = Seq.reduce ( + ) 0 lengths

(* Start-of-segment flags for the flat value space. *)
let start_flags ~lengths ~n =
  let offsets, _ = Bds_parray.Parray.scan ( + ) 0 (Seq.to_array lengths) in
  let flags = Bytes.make n '\000' in
  Array.iteri
    (fun k off ->
      (* Empty segments occupy no value slots and set no flag. *)
      let len =
        (if k + 1 < Array.length offsets then offsets.(k + 1) else n) - off
      in
      if len > 0 then Bytes.unsafe_set flags off '\001')
    offsets;
  (flags, offsets)

(* Exclusive scan within each segment, each segment seeded with [z]. *)
let scan f z ~lengths ~values =
  let n = Seq.length values in
  if n <> total_length lengths then
    invalid_arg "Segmented.scan: lengths do not sum to the value count";
  if n = 0 then Seq.empty
  else begin
    let flags, _ = start_flags ~lengths ~n in
    let flag i = Bytes.unsafe_get flags i = '\001' in
    (* Lift each element: a segment-start element folds the seed in. *)
    let lifted =
      Seq.mapi
        (fun i x -> if flag i then (true, f z x) else (false, x))
        values
    in
    (* Segmented-monoid combine (associative for associative [f]). *)
    let combine (f1, a1) (f2, a2) = if f2 then (true, a2) else (f1, f a1 a2) in
    let prefixes, _ = Seq.scan combine (false, z) lifted in
    (* Element i of the result: [z] at a segment start, else the running
       value, which the monoid reset at the segment boundary. *)
    Seq.zip_with
      (fun (_, v) i -> if flag i then z else v)
      prefixes (Seq.iota n)
  end

(* Inclusive variant. *)
let scan_incl f z ~lengths ~values =
  let incl = scan f z ~lengths ~values in
  (* out_i = scan_i ⊕ x_i *)
  Seq.zip_with (fun acc x -> f acc x) incl values

(* Per-segment totals: one delayed tabulate over segments, sequential
   fold within each segment (random access over the forced values). *)
let reduce f z ~lengths ~values =
  let n = Seq.length values in
  if n <> total_length lengths then
    invalid_arg "Segmented.reduce: lengths do not sum to the value count";
  let lens = Seq.to_array lengths in
  let offsets, _ = Bds_parray.Parray.scan ( + ) 0 lens in
  let v = Seq.to_array values in
  Seq.tabulate (Array.length lens) (fun k ->
      let acc = ref z in
      for i = offsets.(k) to offsets.(k) + lens.(k) - 1 do
        acc := f !acc (Array.unsafe_get v i)
      done;
      !acc)

(* Convenience: from a nested sequence to the flat encoding. *)
let of_nested (s : 'a Seq.t Seq.t) =
  let inners = Bds_parray.Parray.map Seq.force (Seq.to_array s) in
  let lengths = Seq.of_array (Bds_parray.Parray.map Seq.length inners) in
  let values = Seq.flatten (Seq.of_array inners) in
  (lengths, values)
