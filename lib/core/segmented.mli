(** Segmented operations over the flat (lengths, values) encoding — the
    NESL-lineage counterpart of {!Seq.flatten}.

    A segmented sequence is a flat value sequence of length n partitioned
    into segments whose lengths sum to n.  {!scan} lifts the classic
    segmented-scan monoid over one fused {!Seq} pipeline, so per-element
    work fuses exactly like an ordinary scan. *)

(** Exclusive scan within each segment, each seeded with [z] ([f]
    associative).  Result has the values' length.
    Raises [Invalid_argument] if lengths do not sum to the value count. *)
val scan :
  ('a -> 'a -> 'a) -> 'a -> lengths:int Seq.t -> values:'a Seq.t -> 'a Seq.t

(** Inclusive variant: element [i] includes value [i]. *)
val scan_incl :
  ('a -> 'a -> 'a) -> 'a -> lengths:int Seq.t -> values:'a Seq.t -> 'a Seq.t

(** Per-segment totals (one per segment, including empty segments, which
    yield [z]). *)
val reduce :
  ('a -> 'a -> 'a) -> 'a -> lengths:int Seq.t -> values:'a Seq.t -> 'a Seq.t

(** Flatten a nested sequence into the (lengths, values) encoding
    (forces the inner sequences). *)
val of_nested : 'a Seq.t Seq.t -> int Seq.t * 'a Seq.t

(** Sum of the lengths. *)
val total_length : int Seq.t -> int
