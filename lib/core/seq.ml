(* Block-delayed sequences: the paper's primary contribution
   (Figures 9 and 10).

   A sequence is either
   - RAD: random-access delayed, a length plus an index function; or
   - BID: block-iterable delayed, a length plus a function producing the
     delayed stream for each uniform block.

   Parallelism is always across blocks; the stream within each block is
   sequential, which is what lets scan/filter/flatten outputs fuse with the
   next operation.  BIDs carry their block size (fixed at creation by the
   {!Block} policy) and memoise their forced form so that random access on
   a BID — which the paper handles by "implicitly forcing where
   necessary" — forces at most once. *)

module Stream = Bds_stream.Stream
module Buffer_ext = Bds_stream.Buffer_ext
module Parray = Bds_parray.Parray
module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Profile = Bds_runtime.Profile
module Telemetry = Bds_runtime.Telemetry

type 'a bid = {
  b_len : int;
  b_size : int;  (** block size B; blocks 0 .. ceil(len/B)-1 *)
  plan : unit -> int -> 'a Stream.t;
      (** per-drive block plan: called once per consumer drive (never
          per block), so the plan can route through a parent's memo
          published since construction and account the parent's
          consumption exactly once.  The returned function produces the
          delayed stream for each block. *)
  memo : 'a array option Atomic.t;
      (** cached result of forcing, published by CAS (first writer wins)
          so that a reader domain observing [Some a] is synchronized with
          the writes that filled [a] *)
  consumed : int Atomic.t;
      (** shared-consumer accounting: 0 = never driven, 1 = driven once
          (producer has run), 2 = a second consumer arrived before the
          memo existed and forced it ([shared_forces] bumped by the
          1->2 winner, so at most once per BID value).  Only meaningful
          while [memo] is [None]; memoised BIDs are free to re-read. *)
}

type 'a t =
  | Rad of { r_len : int; get : int -> 'a }
  | Bid of 'a bid

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)

let length = function Rad { r_len; _ } -> r_len | Bid { b_len; _ } -> b_len

let repr = function Rad _ -> `Rad | Bid _ -> `Bid

let empty = Rad { r_len = 0; get = (fun _ -> invalid_arg "Seq.empty") }

let tabulate n f =
  if n < 0 then invalid_arg "Seq.tabulate";
  Profile.with_op "tabulate" (fun () -> Rad { r_len = n; get = f })

let singleton v = Rad { r_len = 1; get = (fun _ -> v) }

let of_array a = Rad { r_len = Array.length a; get = Array.unsafe_get a }

let of_list l = of_array (Array.of_list l)

let iota n = tabulate n (fun i -> i)

let num_blocks_of b = Block.num_blocks ~block_size:b.b_size b.b_len

let block_bounds b j =
  let lo = j * b.b_size in
  let hi = min b.b_len (lo + b.b_size) in
  (lo, hi)

(* Run [body j] once per block of [b] through the runtime's heavy-block
   primitive: leaf grain pinned to 1 (the element-loop grain policy never
   re-chunks the block index space), cancellation checked at every split
   and block entry, and a per-block trace span carrying the block's
   element bounds. *)
let apply_bid_blocks b body =
  Runtime.apply_blocks ~bounds:(block_bounds b) ~nb:(num_blocks_of b) body

let unopt = function Some v -> v | None -> assert false

(* ------------------------------------------------------------------ *)
(* Shared-consumer memo plan

   A BID's producer must not run once per downstream consumer.  Every
   eager op acquires the block function through [drive], exactly once
   per drive and outside the parallel region:

   - memo already published     -> cheap [of_array_slice] views, free;
   - first consumer (CAS 0->1)  -> run the plan, stream the producer;
   - any later consumer         -> the producer has already run once,
     so force the BID into its memo (CAS-published, first writer wins)
     and reroute this and all future consumers through the cached
     array.  The 1->2 CAS winner bumps [shared_forces] — at most once
     per BID value — which is how the telemetry proves no producer ran
     more than necessary.

   [replan] is the consumption-blind variant for re-drives that are
   part of one conceptual consumption and already priced by the cost
   semantics (a scan's delayed phase 3, a filter's emission pass): it
   reroutes through the memo when one exists but neither counts as a
   new consumer nor triggers a force. *)

let memo_blocks b a j =
  let lo = j * b.b_size in
  Stream.of_array_slice a lo (min b.b_size (b.b_len - lo))

(* toArray over a block function (the paper's [applySeq (zip (I, S))]
   with the index fused in).  Block 0's first element doubles as the
   allocation witness; its partially-consumed trickle function is
   resumed inside the parallel apply, so every element is evaluated
   exactly once (as the cost semantics of [force] requires). *)
let array_of_bid b blocks =
  if b.b_len = 0 then [||]
  else begin
    let nb = num_blocks_of b in
    let next0 = Stream.start (blocks 0) in
    let first = next0 () in
    let out = Array.make b.b_len first in
    Runtime.apply_blocks ~bounds:(block_bounds b) ~nb (fun j ->
        if j = 0 then begin
          let len0 = min b.b_size b.b_len in
          for k = 1 to len0 - 1 do
            Array.unsafe_set out k (next0 ())
          done
        end
        else begin
          let lo, _ = block_bounds b j in
          Stream.iteri (fun k v -> Array.unsafe_set out (lo + k) v) (blocks j)
        end);
    out
  end

(* Force into the memo, first CAS-publisher wins (a plain store would be
   a real race under the OCaml memory model: a reader could observe
   [Some a] without the writes that filled [a], and concurrent forcers
   would each keep their own copy, so repeated [get]s on a shared BID
   could disagree on identity). *)
let force_memo b =
  match Atomic.get b.memo with
  | Some a -> a
  | None ->
    let a = array_of_bid b (b.plan ()) in
    if Atomic.compare_and_set b.memo None (Some a) then a
    else (match Atomic.get b.memo with Some a' -> a' | None -> a)

(* Record one consumption; returns [true] if this drive found the
   producer already consumed (so the caller must route through the
   memo).  The 1->2 winner bumps [shared_forces]. *)
let[@inline] note_consumed b =
  match Atomic.get b.memo with
  | Some _ -> false
  | None ->
    if Atomic.compare_and_set b.consumed 0 1 then false
    else begin
      if Atomic.compare_and_set b.consumed 1 2 then
        Telemetry.incr_shared_forces ();
      true
    end

let drive b =
  match Atomic.get b.memo with
  | Some a -> memo_blocks b a
  | None -> if note_consumed b then memo_blocks b (force_memo b) else b.plan ()

let replan b =
  match Atomic.get b.memo with Some a -> memo_blocks b a | None -> b.plan ()

let fresh_bid ~b_len ~b_size plan =
  { b_len; b_size; plan; memo = Atomic.make None; consumed = Atomic.make 0 }

(* Per-block stream reductions as heavy block bodies.  The option array
   avoids an allocation witness, so block 0 participates in the parallel
   phase like every other block; each per-block sum is seeded from the
   block's first pushed element ([Stream.reduce1]), so no witness is
   needed inside a block either.  Callers fold/scan the option array
   directly — no intermediate unwrapped copy. *)
let block_sums_bid f b =
  let blocks = drive b in
  let sums = Array.make (num_blocks_of b) None in
  apply_bid_blocks b (fun j -> sums.(j) <- Some (Stream.reduce1 f (blocks j)));
  sums

(* Sequential fold of an option array of per-block sums, [z] on the left. *)
let fold_sums f z sums =
  Array.fold_left (fun acc o -> f acc (unopt o)) z sums

(* Sequential exclusive scan of an option array of per-block sums:
   [offsets.(j)] combines [z] with sums 0..j-1 (so [offsets.(0) = z],
   which also serves as the output array's witness), plus the grand
   total.  The option-array counterpart of [Parray.scan_seq]. *)
let scan_sums f z sums =
  let nb = Array.length sums in
  let offsets = Array.make nb z in
  let acc = ref z in
  for j = 0 to nb - 1 do
    offsets.(j) <- !acc;
    acc := f !acc (unopt sums.(j))
  done;
  (offsets, !acc)

(* ------------------------------------------------------------------ *)
(* Conversions (Figure 9)                                              *)

(* BIDfromSeq, with a caller-specified block size for RAD inputs so [zip]
   can align blocks with an existing BID. *)
let bid_of_seq_with bsize = function
  | Bid b -> b
  | Rad { r_len; get } ->
    fresh_bid ~b_len:r_len ~b_size:bsize (fun () j ->
        let lo = j * bsize in
        let len = min bsize (r_len - lo) in
        Stream.tabulate len (fun k -> get (lo + k)))

let bid_of_seq s = bid_of_seq_with (Block.size (length s)) s

(* applySeq: parallel across blocks, sequential stream within each.
   [apply_blocks] checks the enclosing scope's cancellation token at every
   block entry, so a cancelled pipeline stops at the next block
   boundary.

   The [Profile.with_op] wrappers below follow the delayed-evaluation
   cost model: a delayed constructor (map, zip, take...) reports ~zero
   wall and work under its own name, and the deferred element functions
   are accounted to whichever eager op (reduce, scan, to_array...)
   finally drives them — the same attribution the paper's cost semantics
   (Figure 11) gives them.  Nested ops fold into the outermost one. *)
let iter f s =
  Profile.with_op "iter" (fun () ->
      let b = bid_of_seq s in
      let blocks = drive b in
      apply_bid_blocks b (fun j -> Stream.iter f (blocks j)))

(* toArray.  For a RAD this is a plain parallel tabulate; for a BID the
   result is the CAS-published memo ([force_memo], via [array_of_bid]),
   so repeated forces of a shared BID settle on one physical array.  The
   consumption accounting runs first: a to_array is a consumer like any
   other, so a BID that was already streamed once records the shared
   force here too. *)
let to_array s =
  Profile.with_op "to_array" (fun () ->
      match s with
      | Rad { r_len; get } -> Parray.tabulate r_len get
      | Bid b ->
        (match Atomic.get b.memo with
         | Some a -> a
         | None ->
           ignore (note_consumed b : bool);
           force_memo b))

(* RADfromSeq / force *)
let rad_of_seq = function
  | Rad _ as s -> s
  | Bid _ as s -> of_array (to_array s)

let force s = of_array (to_array s)

let get s i =
  if i < 0 || i >= length s then invalid_arg "Seq.get: index out of bounds";
  match s with
  | Rad { get; _ } -> get i
  | Bid _ -> (to_array s).(i)

(* ------------------------------------------------------------------ *)
(* Delayed operations (Figure 10)                                      *)

(* Derived BIDs capture their parent and build the block function at
   drive time ([plan] runs once per consumer drive): the parent is
   acquired through [drive], so a parent memo published since
   construction is picked up, and a parent whose producer already ran
   for another consumer is shared-forced instead of re-run.  (This
   replaces the old construction-time [refresh_bid], which could only
   see a memo that existed when the derived BID was built.) *)
let derived_bid b g =
  fresh_bid ~b_len:b.b_len ~b_size:b.b_size (fun () ->
      let p = drive b in
      fun j -> g (p j) j)

let map g s =
  Profile.with_op "map" (fun () ->
      match s with
      | Rad { r_len; get } -> Rad { r_len; get = (fun i -> g (get i)) }
      | Bid b -> Bid (derived_bid b (fun st _ -> Stream.map g st)))

let mapi g s =
  Profile.with_op "map" (fun () ->
      match s with
      | Rad { r_len; get } -> Rad { r_len; get = (fun i -> g i (get i)) }
      | Bid b ->
        Bid
          (derived_bid b (fun st j ->
               let lo = j * b.b_size in
               Stream.mapi (fun k v -> g (lo + k) v) st)))

let zip_with f s1 s2 =
  if length s1 <> length s2 then invalid_arg "Seq.zip: length mismatch";
  match (s1, s2) with
  | Rad r1, Rad r2 ->
    Rad { r_len = r1.r_len; get = (fun i -> f (r1.get i) (r2.get i)) }
  | _ ->
    (* At least one BID: align blocks.  If both are BIDs with different
       block sizes (possible across policy changes), force the second. *)
    let b1, s2 =
      match (s1, s2) with
      | Bid b1, Bid b2 when b1.b_size <> b2.b_size -> (b1, rad_of_seq s2)
      | Bid b1, _ -> (b1, s2)
      | Rad _, Bid b2 -> (bid_of_seq_with b2.b_size s1, s2)
      | Rad _, Rad _ -> assert false
    in
    let b2 = bid_of_seq_with b1.b_size s2 in
    Bid
      (fresh_bid ~b_len:b1.b_len ~b_size:b1.b_size (fun () ->
           let p1 = drive b1 in
           let p2 = drive b2 in
           fun j -> Stream.zip_with f (p1 j) (p2 j)))

let zip s1 s2 = zip_with (fun a b -> (a, b)) s1 s2

(* Two-phase block-based reduce. Per-block sums are seeded from the
   block's first element, so [z] is combined exactly once (no identity
   requirement). The RAD case reads straight through the index function
   (identical cost, less closure overhead). *)
let reduce f z s =
  Profile.with_op "reduce" (fun () ->
      match s with
      | Rad { r_len; get } ->
        if r_len = 0 then z
        else begin
          let bsize = Block.size r_len in
          let nb = Block.num_blocks ~block_size:bsize r_len in
          let bounds j = (j * bsize, min r_len ((j + 1) * bsize)) in
          let sums = Array.make nb None in
          Runtime.apply_blocks ~bounds ~nb (fun j ->
              let lo, hi = bounds j in
              let acc = ref (get lo) in
              for i = lo + 1 to hi - 1 do
                acc := f !acc (get i)
              done;
              sums.(j) <- Some !acc);
          fold_sums f z sums
        end
      | Bid b ->
        if b.b_len = 0 then z else fold_sums f z (block_sums_bid f b))

(* Three-phase scan (Figure 10 lines 33-40): phases 1 and 2 are eager,
   phase 3 is delayed in the output BID.  Note the delayed phase 3
   re-drives the input blocks; this is the "evaluated twice" cost that the
   cost semantics (Figure 11) exposes — the re-drive goes through
   [replan] (memo-aware, consumption-blind): it is part of the scan's
   own already-priced cost, not a second consumer of the input. *)
let scan f z s =
  Profile.with_op "scan" (fun () ->
      let n = length s in
      if n = 0 then (empty, z)
      else begin
        let b = bid_of_seq s in
        let sums = block_sums_bid f b in
        let offsets, total = scan_sums f z sums in
        let out =
          Bid
            (fresh_bid ~b_len:n ~b_size:b.b_size (fun () ->
                 let p = replan b in
                 fun j -> Stream.scan f offsets.(j) (p j)))
        in
        (out, total)
      end)

let scan_incl f z s =
  Profile.with_op "scan" (fun () ->
      let n = length s in
      if n = 0 then empty
      else begin
        let b = bid_of_seq s in
        let sums = block_sums_bid f b in
        let offsets, _ = scan_sums f z sums in
        Bid
          (fresh_bid ~b_len:n ~b_size:b.b_size (fun () ->
               let p = replan b in
               fun j -> Stream.scan_incl f offsets.(j) (p j)))
      end)

(* Largest j with offsets.(j) <= pos: locates the subsequence containing
   output position [pos] (getRegion's binary search, Figure 10 line 42). *)
let offset_search offsets pos =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi + 1) / 2 in
      if offsets.(mid) <= pos then search mid hi else search lo (mid - 1)
    end
  in
  search 0 (Array.length offsets - 1)

(* getRegion (Figure 10 lines 41-43) as a nested-push stream: the block
   of the output starting at position [pos] walks left-to-right across
   adjacent subsequences, with the boundary located by binary search on
   [offsets] only once per block (the parallel split point) — inside the
   block a native outer/inner loop pair does the walking, so consumers
   of region blocks are fused instead of trickle fallbacks. *)
let region_block ~offsets ~seg_len ~elem ~total ~bsize i =
  let pos = i * bsize in
  let len = min bsize (total - pos) in
  let j0 = offset_search offsets pos in
  Stream.of_segments ~length:len ~seg_len ~elem ~start_seg:j0
    ~start_ofs:(pos - offsets.(j0))

(* Two-level packed results ([filter_op], [partition]): expose [packed]
   — one compact array per input block — as a BID of nested-push region
   blocks without copying into one contiguous array. *)
let packed_bid (packed : 'a array array) =
  let lengths = Array.map Array.length packed in
  let offsets, total = Parray.scan_seq ( + ) 0 lengths in
  if total = 0 then empty
  else begin
    let bsize = Block.size total in
    Bid
      (fresh_bid ~b_len:total ~b_size:bsize (fun () ->
           region_block ~offsets
             ~seg_len:(fun j -> Array.length packed.(j))
             ~elem:(fun j k -> packed.(j).(k))
             ~total ~bsize))
  end

(* Skip-based delayed filter (replacing the eager per-block pack of
   Figure 10 lines 48-53): phase 1 runs the predicate exactly once per
   element, recording per input block a survivor *bitmask* and count
   (one fused pass, one bit per element — survivor values are never
   copied); the counts are prefix-summed into output offsets.  The
   output BID's blocks are [Stream.selected_region] views that re-drive
   the input through a pure bitmask lookup inside the input's own fold
   loop, skipping into position — emitting zero elements per
   non-survivor instead of packing.  Like scan's phase 3, emission
   re-drives the input's element functions (the "evaluated twice" cost
   the cost semantics already price) through [replan]: a memo published
   on the input reroutes emission automatically, and the output BID's
   own shared-consumer accounting bounds repeated emission.  The
   predicate itself is never re-run, so effectful predicates keep
   filter-once semantics. *)
let[@inline] mask_get mask k =
  Char.code (Bytes.unsafe_get mask (k lsr 3)) land (1 lsl (k land 7)) <> 0

let[@inline] mask_set mask k =
  Bytes.unsafe_set mask (k lsr 3)
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get mask (k lsr 3)) lor (1 lsl (k land 7))))

let filter p s =
  Profile.with_op "filter" (fun () ->
      let n = length s in
      if n = 0 then empty
      else begin
        let b = bid_of_seq s in
        let blocks = drive b in
        let nb = num_blocks_of b in
        let masks = Array.make nb Bytes.empty in
        let counts = Array.make nb 0 in
        apply_bid_blocks b (fun j ->
            let st = blocks j in
            let mask = Bytes.make ((Stream.length st + 7) / 8) '\000' in
            let cnt = ref 0 in
            Stream.iteri
              (fun k v ->
                if p v then begin
                  mask_set mask k;
                  incr cnt
                end)
              st;
            masks.(j) <- mask;
            counts.(j) <- !cnt);
        let offsets, total = Parray.scan_seq ( + ) 0 counts in
        if total = 0 then empty
        else begin
          let bsize = Block.size total in
          Bid
            (fresh_bid ~b_len:total ~b_size:bsize (fun () ->
                 let p_in = replan b in
                 let opt_block j =
                   let mask = masks.(j) in
                   Stream.mapi
                     (fun k v -> if mask_get mask k then Some v else None)
                     (p_in j)
                 in
                 fun i ->
                   let pos = i * bsize in
                   let len = min bsize (total - pos) in
                   let j0 = offset_search offsets pos in
                   Stream.selected_region ~length:len ~blocks:opt_block
                     ~start_block:j0 ~skip:(pos - offsets.(j0))))
        end
      end)

(* filterOp maps as it selects, so the survivor *images* must be stored
   somewhere — and [select] is the library's effectful-selection idiom
   (BFS claims vertices with a compare-and-set inside [try_visit]), so
   it must run exactly once per element and never again.  Each input
   block therefore still packs its images eagerly (select once, at
   construction); what changed is the output view: the packed blocks
   are exposed through nested-push region streams, so downstream
   consumers fuse instead of falling back to a trickle. *)
let filter_op select s =
  Profile.with_op "filter" (fun () ->
      if length s = 0 then empty
      else begin
        let b = bid_of_seq s in
        let blocks = drive b in
        let packed = Array.make (num_blocks_of b) [||] in
        apply_bid_blocks b (fun j ->
            packed.(j) <- Stream.pack_op_to_array select (blocks j));
        packed_bid packed
      end)

(* Flatten (Figure 10 lines 44-47): block the *output* index space; each
   output block walks across adjacent inner sequences (Figure 3).  Inner
   sequences must be random access, so BID inners are forced (line 45);
   the output blocks are nested-push region streams, so flatten /
   flat_map / concat chains fuse with their consumers end-to-end. *)
let flatten (s : 'a t t) =
  Profile.with_op "flatten" (fun () ->
      let n_out = length s in
      if n_out = 0 then empty
      else begin
        (* Lazy outer spine: ONE parallel pass drives the outer — which
           in the flat_map idiom is itself a delayed map — evaluating
           each outer element once, forcing it to random access and
           measuring it in place.  The previous spine materialised the
           outer three times over ([to_array] + a parallel [rad_of_seq]
           map + a parallel [length] map), and that eager outer work
           dominated the flatten-chain bench (BENCH_8 host_note). *)
        let inners = Array.make n_out empty in
        let lengths = Array.make n_out 0 in
        let ob = bid_of_seq s in
        let oblocks = drive ob in
        apply_bid_blocks ob (fun j ->
            let lo, _ = block_bounds ob j in
            Stream.iteri
              (fun k inner ->
                let r = rad_of_seq inner in
                Array.unsafe_set inners (lo + k) r;
                Array.unsafe_set lengths (lo + k) (length r))
              (oblocks j));
        let offsets, total = Parray.scan ( + ) 0 lengths in
        if total = 0 then empty
        else begin
          let bsize = Block.size total in
          let elem j k =
            match inners.(j) with
            | Rad { get; _ } -> get k
            | Bid _ -> assert false
          in
          Bid
            (fresh_bid ~b_len:total ~b_size:bsize (fun () ->
                 region_block ~offsets
                   ~seg_len:(fun j -> Array.unsafe_get lengths j)
                   ~elem ~total ~bsize))
        end
      end)

(* ------------------------------------------------------------------ *)
(* Derived operations                                                  *)

let slice s off len =
  if off < 0 || len < 0 || off + len > length s then invalid_arg "Seq.slice";
  match rad_of_seq s with
  | Rad { get; _ } -> Rad { r_len = len; get = (fun i -> get (off + i)) }
  | Bid _ -> assert false

(* take stays delayed on BIDs: it trims whole blocks and truncates the
   last one, so no forcing is needed (unlike [drop], whose offset would
   misalign the block grid). *)
let take s n =
  if n < 0 || n > length s then invalid_arg "Seq.take";
  match s with
  | Rad { get; _ } -> Rad { r_len = n; get }
  | Bid b when Atomic.get b.memo <> None ->
    let a = match Atomic.get b.memo with Some a -> a | None -> assert false in
    Rad { r_len = n; get = Array.unsafe_get a }
  | Bid b ->
    if n = b.b_len then s
    else if n = 0 then empty
    else
      Bid
        (fresh_bid ~b_len:n ~b_size:b.b_size (fun () ->
             let p = drive b in
             fun j ->
               let lo = j * b.b_size in
               Stream.take (min b.b_size (n - lo)) (p j)))

let drop s n = slice s n (length s - n)

(* Blockwise access for power users (the paper's applySeq exposed): runs
   [f j stream] in parallel over the block index space. *)
let iter_block_streams f s =
  let b = bid_of_seq s in
  let blocks = drive b in
  apply_bid_blocks b (fun j -> f j (blocks j))

let block_size_of s =
  match s with Rad _ -> Block.size (length s) | Bid b -> b.b_size

let rev s =
  match rad_of_seq s with
  | Rad { r_len; get } -> Rad { r_len; get = (fun i -> get (r_len - 1 - i)) }
  | Bid _ -> assert false

let append s1 s2 =
  match (rad_of_seq s1, rad_of_seq s2) with
  | Rad r1, Rad r2 ->
    Rad
      {
        r_len = r1.r_len + r2.r_len;
        get = (fun i -> if i < r1.r_len then r1.get i else r2.get (i - r1.r_len));
      }
  | _ -> assert false

let iteri f s =
  Profile.with_op "iter" (fun () ->
      let b = bid_of_seq s in
      let blocks = drive b in
      apply_bid_blocks b (fun j ->
          let lo, _ = block_bounds b j in
          Stream.iteri (fun k v -> f (lo + k) v) (blocks j)))

let to_list s = Array.to_list (to_array s)

let equal eq s1 s2 =
  length s1 = length s2
  &&
  let a1 = to_array s1 and a2 = to_array s2 in
  Parray.equal eq a1 a2

(* First rung of the int lane (ROADMAP "Extend the unboxed lane").
   OCaml ints are unboxed, so unlike [float_sum] there is no boxing to
   remove — the win is purely skipping the polymorphic combine-closure
   dispatch per element: each block is one monomorphic [int] loop.  The
   per-path split mirrors [float_sum]: RAD and memoised BIDs sum
   straight over the index function / array; an unforced BID drives
   [Stream.sum_ints] per block (monomorphic over a pure index function,
   generic fold otherwise) with plain-int partials. *)
let int_sum s =
  Profile.with_op "int_sum" @@ fun () ->
  match s with
  | Rad { r_len; get } ->
    if r_len = 0 then 0
    else begin
      let bsize = Block.size r_len in
      let nb = Block.num_blocks ~block_size:bsize r_len in
      let bounds j = (j * bsize, min r_len ((j + 1) * bsize)) in
      let partial = Array.make nb 0 in
      Runtime.apply_blocks ~bounds ~nb (fun j ->
          let lo, hi = bounds j in
          let acc = ref 0 in
          for i = lo to hi - 1 do
            acc := !acc + get i
          done;
          partial.(j) <- !acc);
      Array.fold_left ( + ) 0 partial
    end
  | Bid b -> (
    match Atomic.get b.memo with
    | Some a ->
      let n = Array.length a in
      if n = 0 then 0
      else begin
        let bsize = Block.size n in
        let nb = Block.num_blocks ~block_size:bsize n in
        let bounds j = (j * bsize, min n ((j + 1) * bsize)) in
        let partial = Array.make nb 0 in
        Runtime.apply_blocks ~bounds ~nb (fun j ->
            let lo, hi = bounds j in
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + Array.unsafe_get a i
            done;
            partial.(j) <- !acc);
        Array.fold_left ( + ) 0 partial
      end
    | None ->
      let nb = num_blocks_of b in
      if nb = 0 then 0
      else begin
        let blocks = drive b in
        let partial = Array.make nb 0 in
        apply_bid_blocks b (fun j -> partial.(j) <- Stream.sum_ints (blocks j));
        Array.fold_left ( + ) 0 partial
      end)

let sum s = int_sum s

(* The Seq entry of the unboxed float lane (bugfix: this was
   [reduce ( +. ) 0.0], which boxed every element through the
   polymorphic combine closure).  A RAD is already a pure index
   function — hand it straight to [Float_seq].  A memoised BID reuses
   its forced array as a (zero-copy, in flat-float-array mode)
   floatarray view.  An unforced BID keeps its per-block streams: each
   block drives [Stream.sum_floats] — monomorphic with an unboxed
   accumulator when the block stream carries a pure index function, the
   generic boxed fold otherwise (the only path that still boxes, and it
   announces itself via the [float_boxed_fallback] counter) — with the
   per-block partials in a [floatarray] and a sequential unboxed
   combine across blocks. *)
let float_sum s =
  Profile.with_op "float_sum" @@ fun () ->
  match s with
  | Rad { r_len; get } -> Float_seq.sum (Float_seq.tabulate r_len get)
  | Bid b -> (
    match Atomic.get b.memo with
    | Some a -> Float_seq.sum (Float_seq.of_array a)
    | None ->
      let nb = num_blocks_of b in
      if nb = 0 then 0.0
      else begin
        let blocks = drive b in
        let partial = Float.Array.create nb in
        apply_bid_blocks b (fun j ->
            Float.Array.unsafe_set partial j (Stream.sum_floats (blocks j)));
        let acc = ref 0.0 in
        for j = 0 to nb - 1 do
          acc := !acc +. Float.Array.unsafe_get partial j
        done;
        !acc
      end)

(* Own op label (bugfix: this carried [with_op "reduce"], so profiler
   reports attributed max_by/min_by work to [reduce]). *)
let max_by cmp s =
  if length s = 0 then invalid_arg "Seq.max_by: empty";
  Profile.with_op "max_by" (fun () ->
      let a = to_array s in
      Runtime.parallel_for_reduce 1 (Array.length a)
        ~combine:(fun x y -> if cmp x y >= 0 then x else y)
        ~init:a.(0)
        (fun i -> a.(i)))

(* [with_op] is outermost-wins, so the inner [max_by] label does not
   override this one. *)
let min_by cmp s =
  if length s = 0 then invalid_arg "Seq.min_by: empty";
  Profile.with_op "min_by" (fun () -> max_by (fun a b -> cmp b a) s)

let map2 f s1 s2 = zip_with f s1 s2

let map3 f s1 s2 s3 =
  if length s1 <> length s2 || length s2 <> length s3 then
    invalid_arg "Seq.map3: length mismatch";
  zip_with (fun (a, b) c -> f a b c) (zip s1 s2) s3

(* Both halves are delayed views; consuming both traverses the input
   twice (force first if that matters). *)
let unzip s = (map fst s, map snd s)

let enumerate s = mapi (fun i v -> (i, v)) s

let count p s = reduce ( + ) 0 (map (fun v -> if p v then 1 else 0) s)

(* ------------------------------------------------------------------ *)
(* Early-exit parallel search                                          *)

exception Found

(* Short-circuiting existential: the first block to hit a witness raises
   [Found], which the enclosing cancellation scope records and uses to
   cancel the token — un-started sibling blocks become no-ops, and
   in-flight blocks observe the cancellation at their periodic poll and
   stop mid-stream. *)
let exists p s =
  if length s = 0 then false
  else begin
    let b = bid_of_seq s in
    let blocks = drive b in
    try
      apply_bid_blocks b (fun j ->
          let lo, hi = block_bounds b j in
          let next = Stream.start (blocks j) in
          for k = 0 to hi - lo - 1 do
            if k land 63 = 0 then Cancel.poll ();
            if p (next ()) then raise Found
          done);
      false
    with Found -> true
  end

let for_all p s = not (exists (fun v -> not (p v)) s)

(* Leftmost-match search: blocks run in parallel, each recording its
   first local hit and CAS-min-ing the hit's position into [best].  A
   block is skipped (or abandoned mid-stream) once a strictly earlier
   position is known, so no later work can hide an earlier match; the
   winning block's recorded hit is read back after the join.  Worst case
   (no match) scans everything, like the parallel filter it replaces,
   but a hit near the front cancels almost all of the work. *)
let find_mapi_leftmost (f : int -> 'a -> 'b option) s =
  if length s = 0 then None
  else begin
    let b = bid_of_seq s in
    let best = Atomic.make max_int in
    let rec cas_min pos =
      let cur = Atomic.get best in
      if pos < cur && not (Atomic.compare_and_set best cur pos) then cas_min pos
    in
    let blocks = drive b in
    let results = Array.make (num_blocks_of b) None in
    apply_bid_blocks b (fun j ->
        let lo, hi = block_bounds b j in
        if Atomic.get best > lo then begin
          let next = Stream.start (blocks j) in
          try
            for k = 0 to hi - lo - 1 do
              if k land 63 = 0 then begin
                Cancel.poll ();
                if Atomic.get best <= lo then raise_notrace Exit
              end;
              let v = next () in
              match f (lo + k) v with
              | Some r ->
                results.(j) <- Some r;
                cas_min (lo + k);
                raise_notrace Exit
              | None -> ()
            done
          with Exit -> ()
        end);
    let pos = Atomic.get best in
    if pos = max_int then None else results.(pos / b.b_size)
  end

let find_opt p s =
  find_mapi_leftmost (fun _ v -> if p v then Some v else None) s

let find_index p s =
  find_mapi_leftmost (fun i v -> if p v then Some i else None) s

let concat seqs = flatten (of_list seqs)

let flat_map f s = flatten (map f s)

(* One parallel pass: each block pushes every element into exactly one
   of two per-block buffers, so the predicate (and the input's delayed
   work) runs once per element — not twice, as the old
   filter-plus-complement-filter did.  Both halves come back as BIDs of
   nested-push region views over the packed buffers (no contiguous
   copy). *)
let partition p s =
  Profile.with_op "partition" (fun () ->
      if length s = 0 then (empty, empty)
      else begin
        let b = bid_of_seq s in
        let blocks = drive b in
        let nb = num_blocks_of b in
        let yes = Array.make nb [||] in
        let no = Array.make nb [||] in
        apply_bid_blocks b (fun j ->
            let ybuf = Buffer_ext.create () in
            let nbuf = Buffer_ext.create () in
            Stream.iter
              (fun v ->
                if p v then Buffer_ext.push ybuf v else Buffer_ext.push nbuf v)
              (blocks j);
            yes.(j) <- Buffer_ext.to_array ybuf;
            no.(j) <- Buffer_ext.to_array nbuf);
        (packed_bid yes, packed_bid no)
      end)

(* Adjacent pairs (s_i, s_{i+1}); O(1) on RADs, forces BIDs (offset-by-one
   views cannot share the block grid). *)
let pairwise s =
  let n = length s in
  if n <= 1 then empty
  else begin
    match rad_of_seq s with
    | Rad { get; _ } -> Rad { r_len = n - 1; get = (fun i -> (get i, get (i + 1))) }
    | Bid _ -> assert false
  end

let to_std_seq s =
  let a = to_array s in
  Array.to_seq a

let of_std_seq std = of_array (Array.of_seq std)
