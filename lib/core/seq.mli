(** Parallel block-delayed sequences — the paper's primary contribution.

    A sequence is delayed in one of two representations:
    - {b RAD} (random-access delayed): index function; produced by
      {!tabulate}, {!of_array}, and by {!map}/{!zip} on RADs.  O(1) to
      build, supports random access.
    - {b BID} (block-iterable delayed): uniform blocks, each a sequential
      delayed {!Bds_stream.Stream.t}; produced by {!scan}, {!filter},
      {!flatten}, and by {!map}/{!zip} when an input is a BID.  Supports
      only blockwise iteration — which is exactly what the block-based
      implementations of reduce/scan/filter/flatten consume, so chains of
      these operations fuse without materialising intermediates.

    Parallelism is across blocks ({!Block} chooses the block size);
    traversal within a block is sequential.

    Cost discipline (details in {!Cost_model}): constructors and {!map} /
    {!zip} are O(1) eager work; {!reduce}, {!scan}, {!filter}, {!flatten},
    {!iter}, {!force} perform the delayed work of their input.  A BID's
    delayed computation re-runs each time the sequence is consumed; use
    {!force} to pay for materialisation once instead. *)

type 'a t

(** {1 Inspection} *)

val length : 'a t -> int

(** Current representation; exposed so tests and the cost model can verify
    the representation rules of Figure 11. *)
val repr : 'a t -> [ `Rad | `Bid ]

(** Random access. O(1) on a RAD. On a BID this implicitly forces the
    whole sequence (memoised: at most once per BID). *)
val get : 'a t -> int -> 'a

(** {1 Construction} *)

val empty : 'a t
val singleton : 'a -> 'a t

(** [tabulate n f] is the fully delayed sequence [f 0 .. f (n-1)]; O(1). *)
val tabulate : int -> (int -> 'a) -> 'a t

val iota : int -> int t
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t

(** {1 Delayed operations (O(1) eager cost)} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t

(** [zip s1 s2] requires equal lengths (so blocks align). *)
val zip : 'a t -> 'b t -> ('a * 'b) t

val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

(** {1 Block-based operations} *)

(** [reduce f z s]: [f] associative with unit [z]. Eager; fuses with a
    delayed input. *)
val reduce : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a

(** Exclusive scan returning (prefixes, total). Phases 1-2 run eagerly
    (block sums, O(n/B) allocation); phase 3 is delayed in the BID output
    and fuses with the next consumer. The delayed phase re-drives the
    input, so a delayed input is evaluated twice overall. *)
val scan : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t * 'a

(** Inclusive scan (element [i] includes input [i]). *)
val scan_incl : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t

(** [filter p s] runs [p] exactly once per element (an eager parallel
    pass recording survivors in per-block bitmasks); the output BID's
    blocks are skip-push regions ([Stream.selected_region]) that
    re-drive the input through the masks — no packed copy, and the
    blocks stay fused push views (docs/STREAMS.md "The skip-push
    protocol"). *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** filterOp / mapPartial (Figure 1): keep the [Some] images.  Unlike
    {!filter}, the images are packed eagerly per block — [f] is
    effectful in the paper's BFS idiom (CAS-visit) and must run exactly
    once — and the output blocks are fused views of the packed rows. *)
val filter_op : ('a -> 'b option) -> 'a t -> 'b t

(** [flatten s] concatenates the inner sequences, blocking the output index
    space (Figure 3). Eager cost proportional to the outer length (+ the
    cost of forcing any BID inner sequences); element copies are delayed.
    Output blocks are nested-push segment views ([Stream.of_segments]),
    so downstream stages — including a later {!filter} — fuse
    end-to-end (docs/STREAMS.md "Nested-push flatten"). *)
val flatten : 'a t t -> 'a t

(** {1 Forcing and consuming} *)

(** Evaluate into a fresh array. Memoised on BIDs. *)
val to_array : 'a t -> 'a array

(** Materialise all delayed work; result is an array-backed RAD. *)
val force : 'a t -> 'a t

(** Parallel iteration, blockwise (the paper's [applySeq]). Order across
    blocks is unspecified; within a block it is left-to-right. *)
val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list

(** {1 Derived operations (may force BID inputs)} *)

val slice : 'a t -> int -> int -> 'a t

(** [take s n]: the first [n] elements. Stays delayed on BIDs (blocks are
    trimmed, not forced). *)
val take : 'a t -> int -> 'a t

val drop : 'a t -> int -> 'a t

(** Blockwise access (the paper's applySeq exposed): [f j stream] runs in
    parallel across block indices; each block's stream is sequential. *)
val iter_block_streams : (int -> 'a Bds_stream.Stream.t -> unit) -> 'a t -> unit

(** The block size this sequence uses (or would use) as a BID. *)
val block_size_of : 'a t -> int
val rev : 'a t -> 'a t
val append : 'a t -> 'a t -> 'a t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val int_sum : int t -> int
(** Monomorphic per-block int sum — the int lane's first rung.  Ints
    are unboxed already; versus [reduce ( + ) 0] this skips the
    polymorphic combine-closure dispatch per element (each block is one
    native [int] loop).  {!sum} is an alias. *)

val sum : int t -> int
val float_sum : float t -> float

(** Maximum element under [cmp] (forces). Raises on empty input. *)
val max_by : ('a -> 'a -> int) -> 'a t -> 'a

(** Minimum element under [cmp] (forces). Raises on empty input. *)
val min_by : ('a -> 'a -> int) -> 'a t -> 'a

(** {1 Extended combinators} *)

(** Alias of {!zip_with}. *)
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

(** Three-way {!zip_with}; all lengths must agree. *)
val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t

(** Delayed projections of a sequence of pairs. Consuming both halves
    traverses the input twice; {!force} first to avoid that. *)
val unzip : ('a * 'b) t -> 'a t * 'b t

(** [(index, element)] pairs; O(1), delayed. *)
val enumerate : 'a t -> (int * 'a) t

(** Number of elements satisfying [p] (fused map + reduce). *)
val count : ('a -> bool) -> 'a t -> int

(** Short-circuiting: the first counterexample cancels the enclosing
    scope, so un-started blocks are skipped and in-flight blocks stop at
    their next poll (every 64 elements). *)
val for_all : ('a -> bool) -> 'a t -> bool

(** Short-circuiting, like {!for_all}: a witness anywhere stops the
    whole parallel search early. *)
val exists : ('a -> bool) -> 'a t -> bool

(** First element satisfying [p].  Parallel across blocks with ordered
    early exit: once a match is found, blocks at later positions are
    skipped or abandoned, and only earlier blocks keep searching. *)
val find_opt : ('a -> bool) -> 'a t -> 'a option

(** Index of the first element satisfying [p] (same early-exit strategy
    as {!find_opt}). *)
val find_index : ('a -> bool) -> 'a t -> int option

(** Concatenate a list of sequences ({!flatten} of the list). *)
val concat : 'a t list -> 'a t

(** [flat_map f s] = {!flatten} ({!map} [f s]). *)
val flat_map : ('a -> 'b t) -> 'a t -> 'b t

(** (elements satisfying [p], the rest). One pass: the input is driven
    once and [p] runs exactly once per element, packing both halves
    per block. *)
val partition : ('a -> bool) -> 'a t -> 'a t * 'a t

(** Adjacent pairs [(s_i, s_i+1)], length [n-1] (empty if [n <= 1]).
    O(1) on RADs; forces BIDs. *)
val pairwise : 'a t -> ('a * 'a) t

(** {1 Stdlib interop (both force)} *)

val to_std_seq : 'a t -> 'a Stdlib.Seq.t
val of_std_seq : 'a Stdlib.Seq.t -> 'a t
