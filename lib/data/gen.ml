(* Workload generators for the paper's benchmarks.  Each generator is a
   deterministic function of (seed, size), producing data with the
   statistics the paper describes (§6): uniform points in a circle for
   quickhull, average word length ~7 for tokens, ~3% matching lines for
   grep, random digit strings for bignum, etc. *)

module Parray = Bds_parray.Parray

(* Uniform floats in [lo, hi). *)
let floats ?(seed = 42) ?(lo = 0.0) ?(hi = 1.0) n =
  let w = hi -. lo in
  Parray.tabulate n (fun i -> lo +. (w *. Splitmix.float_at ~seed i))

(* Non-negative random ints below [bound]. *)
let ints ?(seed = 42) ~bound n =
  Parray.tabulate n (fun i -> Splitmix.int_range_at ~seed ~bound i)

(* 64-bit-style signed ints in [-bound, bound) — mcss needs sign changes. *)
let signed_ints ?(seed = 42) ~bound n =
  Parray.tabulate n (fun i -> Splitmix.int_range_at ~seed ~bound:(2 * bound) i - bound)

(* Uniform points in the unit circle (quickhull's input distribution). *)
let points_in_circle ?(seed = 42) n =
  Parray.tabulate n (fun i ->
      (* Rejection-free: radius via sqrt for uniform area density. *)
      let r = sqrt (Splitmix.float_at ~seed:(seed * 2 + 1) i) in
      let t = 2.0 *. Float.pi *. Splitmix.float_at ~seed:(seed * 2 + 2) i in
      (r *. cos t, r *. sin t))

(* 2D points along a noisy line (linefit's input). *)
let points_near_line ?(seed = 42) ~slope ~intercept ~noise n =
  Parray.tabulate n (fun i ->
      let x = Splitmix.float_at ~seed i *. 100.0 in
      let e = (Splitmix.float_at ~seed:(seed + 7) i -. 0.5) *. noise in
      (x, (slope *. x) +. intercept +. e))

(* Base-256 bignum digits, little-endian. *)
let bignum_digits ?(seed = 42) n =
  Bytes.init n (fun i -> Char.chr (Splitmix.int_range_at ~seed ~bound:256 i))

(* Text of [n] chars: words of geometric-ish length (average ~avg_word),
   separated by single spaces, '\n' every ~chars_per_line characters. *)
let text ?(seed = 42) ?(avg_word = 7) ?(chars_per_line = 60) n =
  Bytes.init n (fun i ->
      let r = Splitmix.int_range_at ~seed ~bound:(avg_word + 1) i in
      if Splitmix.int_range_at ~seed:(seed + 3) ~bound:chars_per_line i = 0 then '\n'
      else if r = 0 then ' '
      else Char.chr (Char.code 'a' + Splitmix.int_range_at ~seed:(seed + 5) ~bound:26 i))

(* Text where roughly [frac_matching] of lines contain [pattern]
   (grep's input: the paper has ~850K of 28M lines matching, ~3%). *)
let text_with_pattern ?(seed = 42) ?(pattern = "needle") ?(frac_matching = 0.03)
    ?(chars_per_line = 30) n =
  let b = text ~seed ~chars_per_line n in
  let plen = String.length pattern in
  (* Walk lines; plant the pattern at the start of a ~frac of them. *)
  let line = ref 0 in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && Bytes.get b !i <> '\n' do
      incr i
    done;
    let len = !i - start in
    if
      len > plen
      && Splitmix.float_at ~seed:(seed + 11) !line < frac_matching
    then Bytes.blit_string pattern 0 b start plen;
    incr line;
    incr i
  done;
  b

(* Sparse matrix in CSR form: [rows] rows, ~[nnz_per_row] nonzeros/row. *)
type csr_matrix = {
  row_offsets : int array; (* length rows+1 *)
  col_index : int array;
  values : float array;
  cols : int;
}

let sparse_matrix ?(seed = 42) ~rows ~cols ~nnz_per_row () =
  let counts =
    Parray.tabulate rows (fun r ->
        1 + Splitmix.int_range_at ~seed:(seed + 1) ~bound:(2 * nnz_per_row - 1) r)
  in
  let offsets, nnz = Parray.scan ( + ) 0 counts in
  let row_offsets = Array.append offsets [| nnz |] in
  let col_index =
    Parray.tabulate nnz (fun k -> Splitmix.int_range_at ~seed:(seed + 2) ~bound:cols k)
  in
  let values =
    Parray.tabulate nnz (fun k -> Splitmix.float_at ~seed:(seed + 3) k)
  in
  { row_offsets; col_index; values; cols }
