(** Deterministic workload generators for the paper's benchmarks
    (§6 input descriptions, scaled).  Each generator is a pure function
    of (seed, size). *)

val floats : ?seed:int -> ?lo:float -> ?hi:float -> int -> float array
val ints : ?seed:int -> bound:int -> int -> int array

(** Uniform in [-bound, bound). *)
val signed_ints : ?seed:int -> bound:int -> int -> int array

(** Uniform over the unit disc (quickhull's input distribution). *)
val points_in_circle : ?seed:int -> int -> (float * float) array

(** Points on [y = slope*x + intercept] with +-noise/2 jitter, x in
    [0, 100) (linefit's input). *)
val points_near_line :
  ?seed:int -> slope:float -> intercept:float -> noise:float -> int ->
  (float * float) array

(** Base-256 bignum digits, little-endian. *)
val bignum_digits : ?seed:int -> int -> Bytes.t

(** Random text: words averaging ~[avg_word] chars separated by spaces,
    newline roughly every [chars_per_line] chars. *)
val text : ?seed:int -> ?avg_word:int -> ?chars_per_line:int -> int -> Bytes.t

(** Like {!text}, with [pattern] planted at the start of roughly
    [frac_matching] of the lines (grep's input: the paper has ~3%
    matching). *)
val text_with_pattern :
  ?seed:int -> ?pattern:string -> ?frac_matching:float -> ?chars_per_line:int ->
  int -> Bytes.t

type csr_matrix = {
  row_offsets : int array;  (** length rows+1 *)
  col_index : int array;
  values : float array;
  cols : int;
}

(** ~[nnz_per_row] nonzeros per row (at least 1), uniform columns. *)
val sparse_matrix :
  ?seed:int -> rows:int -> cols:int -> nnz_per_row:int -> unit -> csr_matrix
