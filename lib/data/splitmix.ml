(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) used as a *stateless*
   hash-style generator: [at ~seed i] is the i-th variate of the stream
   with the given seed.  Statelessness makes parallel data generation
   deterministic regardless of worker interleaving — the substitute for
   the paper's pre-generated input files. *)

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Raw 64-bit variate for index [i] of stream [seed]. *)
let at ~seed i =
  let open Int64 in
  mix (add (mul (of_int (i + 1)) golden) (mul (of_int seed) 0x2545F4914F6CDD1DL))

(* Non-negative int (62 bits to stay within OCaml's native int). *)
let int_at ~seed i = Int64.to_int (Int64.shift_right_logical (at ~seed i) 2)

(* Uniform in [0, bound). *)
let int_range_at ~seed ~bound i =
  if bound <= 0 then invalid_arg "Splitmix.int_range_at";
  int_at ~seed i mod bound

(* Uniform float in [0, 1). *)
let float_at ~seed i =
  let bits = Int64.shift_right_logical (at ~seed i) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* A second independent stream derived from the same seed. *)
let split seed = (seed * 2 + 1, seed * 2 + 2)
