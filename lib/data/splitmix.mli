(** SplitMix64 used as a {e stateless} counter-based generator: each
    variate is a pure function of (seed, index), so parallel data
    generation is deterministic regardless of worker interleaving. *)

(** Raw 64-bit variate [i] of stream [seed]. *)
val at : seed:int -> int -> int64

(** Non-negative native int (62 random bits). *)
val int_at : seed:int -> int -> int

(** Uniform in [0, bound). Raises on [bound <= 0]. (Modulo bias is
    negligible for the bounds used here.) *)
val int_range_at : seed:int -> bound:int -> int -> int

(** Uniform float in [0, 1). *)
val float_at : seed:int -> int -> float

(** Two derived independent stream seeds. *)
val split : int -> int * int

(** The 64-bit finaliser itself (exposed for hashing uses). *)
val mix : int64 -> int64
