(* Forward BFS with sequences — the paper's Figure 6, written once as a
   functor and instantiated with each of the three libraries.

   Each round flattens the out-neighbours of the frontier into
   (parent, child) pairs and keeps, via filterOp + compare-and-swap, the
   pairs that claim an unvisited child.  With block-delayed sequences the
   flattened pair sequence is never materialised and the filter packs only
   within blocks. *)

module Make (S : Bds_seqs.Sig.S) = struct
  let bfs (g : Csr.t) (source : int) : int array =
    let n = Csr.num_vertices g in
    let parents = Array.init n (fun _ -> Atomic.make (-1)) in
    let out_pairs u =
      S.tabulate (Csr.degree g u) (fun k -> (u, Csr.neighbor g u k))
    in
    let try_visit (u, v) =
      if Atomic.compare_and_set parents.(v) (-1) u then Some v else None
    in
    let rec search frontier =
      if S.length frontier = 0 then ()
      else begin
        let edges = S.flatten (S.map out_pairs frontier) in
        let next = S.filter_op try_visit edges in
        search next
      end
    in
    (match try_visit (source, source) with
    | Some _ -> ()
    | None -> assert false);
    search (S.tabulate 1 (fun _ -> source));
    Array.map Atomic.get parents
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Validity check: a parents array is a correct BFS tree iff the set of
   reached vertices matches the reference and every tree edge goes from
   depth d to depth d+1 of the reference distances. *)
let valid_parents (g : Csr.t) (source : int) (parents : int array) =
  let dist = Csr.bfs_distances g source in
  let n = Csr.num_vertices g in
  let ok = ref (parents.(source) = source) in
  for v = 0 to n - 1 do
    if v <> source then begin
      match parents.(v) with
      | -1 -> if dist.(v) >= 0 then ok := false
      | u ->
        if dist.(v) < 0 then ok := false
        else if not (dist.(u) + 1 = dist.(v)) then ok := false
    end
  done;
  !ok
