(** Forward BFS with sequences — the paper's Figure 6.

    Each round maps [outPairs] over the frontier, flattens the resulting
    (parent, child) pairs, and keeps — via filterOp with a
    compare-and-swap per child — those that claim an unvisited vertex.
    Written once as a functor over the common sequence signature and
    instantiated with the three libraries; with block-delayed sequences
    the flattened pair sequence is never materialised. *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** [bfs g s]: parent of each vertex in some valid BFS tree rooted at
      [s] ([s] is its own parent; -1 = unreachable).  Ties between equal-
      depth parents are resolved by the CAS race, so results may differ
      across runs while remaining valid. *)
  val bfs : Csr.t -> int -> int array
end

module Array_version : sig
  val bfs : Csr.t -> int -> int array
end

module Rad_version : sig
  val bfs : Csr.t -> int -> int array
end

module Delay_version : sig
  val bfs : Csr.t -> int -> int array
end

(** [valid_parents g s parents]: the reached set matches the sequential
    reference and every tree edge descends one BFS level. *)
val valid_parents : Csr.t -> int -> int array -> bool
