(* Compressed-sparse-row directed graphs. *)

type t = {
  offsets : int array;  (** length [n+1]; row [u] is [offsets.(u) .. offsets.(u+1)-1] *)
  targets : int array;
}

let num_vertices g = Array.length g.offsets - 1
let num_edges g = Array.length g.targets

let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let neighbor g u k = g.targets.(g.offsets.(u) + k)

let out_neighbors g u =
  Array.sub g.targets g.offsets.(u) (degree g u)

(* Build from an edge list by counting sort on sources (stable: preserves
   edge order within a source). *)
let of_edges ~num_vertices:n (edges : (int * int) array) =
  let m = Array.length edges in
  let counts = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Csr.of_edges";
      counts.(u) <- counts.(u) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + counts.(u)
  done;
  let cursor = Array.copy offsets in
  let targets = Array.make m 0 in
  Array.iter
    (fun (u, v) ->
      targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    edges;
  { offsets; targets }

(* Sequential reference BFS distances (for validating parallel results). *)
let bfs_distances g s =
  let n = num_vertices g in
  let dist = Array.make n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for k = 0 to degree g u - 1 do
      let v = neighbor g u k in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.push v q
      end
    done
  done;
  dist
