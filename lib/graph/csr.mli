(** Compressed-sparse-row directed graphs. *)

type t = {
  offsets : int array;  (** length n+1; row [u] = [offsets.(u) .. offsets.(u+1)-1] *)
  targets : int array;  (** edge targets, grouped by source *)
}

val num_vertices : t -> int
val num_edges : t -> int
val degree : t -> int -> int

(** [neighbor g u k] is the k-th out-neighbour of [u] (O(1)). *)
val neighbor : t -> int -> int -> int

(** Fresh array of [u]'s out-neighbours. *)
val out_neighbors : t -> int -> int array

(** Build from an edge list by stable counting sort on sources.
    Raises [Invalid_argument] on out-of-range endpoints. *)
val of_edges : num_vertices:int -> (int * int) array -> t

(** Sequential reference BFS: distance from [s] per vertex, -1 if
    unreachable. Used to validate the parallel BFS implementations. *)
val bfs_distances : t -> int -> int array
