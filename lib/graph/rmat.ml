(* R-MAT power-law graph generator (Chakrabarti, Zhan & Faloutsos, SDM
   2004) — the paper's BFS input is "a random power-law graph [7]".
   Standard parameters (a,b,c,d) = (0.57, 0.19, 0.19, 0.05). *)

module Splitmix = Bds_data.Splitmix

let quadrant ~seed ~edge level =
  (* One float per (edge, level); deterministic. *)
  Splitmix.float_at ~seed:(seed + (1000003 * level)) edge

(* Generate edge [k] of a graph with 2^scale vertices. *)
let edge_of_index ~seed ~scale k =
  let a = 0.57 and b = 0.19 and c = 0.19 in
  let u = ref 0 and v = ref 0 in
  for level = 0 to scale - 1 do
    let r = quadrant ~seed ~edge:k level in
    let bit = 1 lsl level in
    if r < a then ()
    else if r < a +. b then v := !v lor bit
    else if r < a +. b +. c then u := !u lor bit
    else begin
      u := !u lor bit;
      v := !v lor bit
    end
  done;
  (!u, !v)

(* An R-MAT graph with [2^scale] vertices and [num_edges] directed edges
   (self-loops and parallel edges possible, as in the standard model). *)
let generate ?(seed = 42) ~scale ~num_edges () =
  let n = 1 lsl scale in
  let edges =
    Bds_parray.Parray.tabulate num_edges (edge_of_index ~seed ~scale)
  in
  Csr.of_edges ~num_vertices:n edges
