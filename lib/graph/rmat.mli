(** R-MAT power-law random graphs (Chakrabarti, Zhan & Faloutsos, SDM
    2004) — the paper's BFS input class, with the standard skew
    parameters (a,b,c,d) = (0.57, 0.19, 0.19, 0.05).

    Generation is a pure function of (seed, scale, edge index), so graphs
    are deterministic and can be generated in parallel. *)

(** Edge [k] of the graph with [2^scale] vertices. *)
val edge_of_index : seed:int -> scale:int -> int -> int * int

(** A graph with [2^scale] vertices and [num_edges] directed edges
    (self-loops and parallel edges possible, as in the standard model). *)
val generate : ?seed:int -> scale:int -> num_edges:int -> unit -> Csr.t
