(* Timing and allocation measurement for the benchmark harness.

   Times: wall clock over [repeat] runs after [warmup] runs; we report the
   minimum (least-noise estimator for single-machine runs).

   Space: the paper reports maximum residency; the closest portable OCaml
   analogue is words allocated, which is exactly what the cost semantics
   predicts.  OCaml 5 allocation counters are per-domain, so allocation is
   measured on a single-domain pool where all allocation happens on the
   calling domain ([Gc.allocated_bytes] is then exact).  Allocation is
   essentially independent of P, so the harness reports one allocation
   figure per benchmark version. *)

type sample = { time_s : float; alloc_bytes : float }

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let time ?(warmup = 1) ?(repeat = 3) f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let best = ref infinity in
  for _ = 1 to repeat do
    let t = time_once f in
    if t < !best then best := t
  done;
  !best

type timed = {
  best_s : float;
  counters : Bds_runtime.Telemetry.snapshot;
  clamped : bool;
}

(* Like [time], but also report the scheduler-telemetry delta of the
   *best* run (the run whose time we report), so counter rows line up
   with timing rows.  Counters are process-global, so the delta also
   includes whatever the benchmark body spawns internally — which is the
   point: it is the scheduler pressure of one run.  [clamped] records
   whether any counter in the reported delta hit the racy-snapshot clamp
   (a late-registered domain row can make [after] read lower than
   [before]); derived rates from a clamped delta are suspect. *)
let time_counters ?(warmup = 1) ?(repeat = 3) f =
  let module T = Bds_runtime.Telemetry in
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let best = ref infinity in
  let empty, _ = T.diff_checked ~before:(T.snapshot ()) ~after:(T.snapshot ()) in
  let best_counters = ref empty in
  let best_clamped = ref false in
  for _ = 1 to repeat do
    let before = T.snapshot () in
    let t = time_once f in
    let after = T.snapshot () in
    if t < !best then begin
      best := t;
      let d, clamped = T.diff_checked ~before ~after in
      best_counters := d;
      best_clamped := clamped
    end
  done;
  { best_s = !best; counters = !best_counters; clamped = !best_clamped }

(* Space of one run of [f], measured on a 1-worker pool. Restores the
   previous worker count.

   Returned value: bytes allocated in the *major* heap (direct large
   allocations — every intermediate array of interest — plus words
   promoted out of the minor heap).  This is the closest analogue of the
   paper's max-residency metric: short-lived boxing (pervasive in
   polymorphic OCaml) dies in the minor heap and never contributes to
   residency, so it is excluded, while the intermediate arrays whose
   elimination the paper measures are large enough to be allocated in the
   major heap directly. *)
let alloc_single_domain f =
  let prev = Bds_runtime.Runtime.num_workers () in
  Bds_runtime.Runtime.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Bds_runtime.Runtime.set_num_domains prev)
    (fun () ->
      ignore (Sys.opaque_identity (f ())) (* warm any lazy state *);
      Gc.full_major ();
      let before = (Gc.quick_stat ()).major_words in
      ignore (Sys.opaque_identity (f ()));
      let after = (Gc.quick_stat ()).major_words in
      8.0 *. (after -. before))

(* Total allocated bytes (minor + major) of one run, same discipline. *)
let total_alloc_single_domain f =
  let prev = Bds_runtime.Runtime.num_workers () in
  Bds_runtime.Runtime.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Bds_runtime.Runtime.set_num_domains prev)
    (fun () ->
      ignore (Sys.opaque_identity (f ()));
      let before = Gc.allocated_bytes () in
      ignore (Sys.opaque_identity (f ()));
      Gc.allocated_bytes () -. before)

let with_domains p f =
  let prev = Bds_runtime.Runtime.num_workers () in
  Bds_runtime.Runtime.set_num_domains p;
  Fun.protect ~finally:(fun () -> Bds_runtime.Runtime.set_num_domains prev) f

(* Human-readable quantities. *)
let pp_time t =
  if t < 1e-3 then Printf.sprintf "%.1fus" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.2fms" (t *. 1e3)
  else Printf.sprintf "%.3fs" t

let pp_bytes b =
  if b < 1024.0 then Printf.sprintf "%.0fB" b
  else if b < 1024.0 *. 1024.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else if b < 1024.0 *. 1024.0 *. 1024.0 then Printf.sprintf "%.1fMB" (b /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGB" (b /. (1024.0 *. 1024.0 *. 1024.0))
