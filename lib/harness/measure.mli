(** Timing and space measurement for the benchmark harness. *)

type sample = { time_s : float; alloc_bytes : float }

(** Wall-clock of a single run. *)
val time_once : (unit -> 'a) -> float

(** Minimum wall-clock over [repeat] runs after [warmup] runs. *)
val time : ?warmup:int -> ?repeat:int -> (unit -> 'a) -> float

type timed = {
  best_s : float;
  counters : Bds_runtime.Telemetry.snapshot;
  clamped : bool;  (** the reported delta hit the racy-snapshot clamp *)
}

(** Like {!time}, but additionally returns the scheduler-telemetry delta
    ({!Bds_runtime.Telemetry.diff_checked}) observed during the best
    (reported) run, so benchmark tables can show steals / tasks alongside
    times — plus whether that delta was clamped (and hence suspect). *)
val time_counters : ?warmup:int -> ?repeat:int -> (unit -> 'a) -> timed

(** Major-heap bytes allocated by one run of [f], measured on a
    single-domain pool (exact; see the implementation notes: this is the
    portable analogue of the paper's max-residency metric). Restores the
    previous worker count. *)
val alloc_single_domain : (unit -> 'a) -> float

(** Total allocated bytes (minor + major) of one run, same discipline. *)
val total_alloc_single_domain : (unit -> 'a) -> float

(** Run [f] with a global pool of [p] workers, restoring the previous
    pool afterwards. *)
val with_domains : int -> (unit -> 'a) -> 'a

val pp_time : float -> string
val pp_bytes : float -> string
