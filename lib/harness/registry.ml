(* The benchmark registry: every evaluation program of §6, each in its
   library versions (Figure 12), with input preparation separated from the
   measured kernel.  Sizes are scaled-down defaults for a laptop-class
   machine (the paper used 100M-500M on a 1TB server); all are multiplied
   by the harness's --scale factor. *)

module K = Bds_kernels

type version = { vname : string; run : unit -> unit }

type bench = {
  name : string;
  category : [ `Bid | `Rad | `Ext ];  (** paper figure, or extension *)
  default_size : int;
  describe : int -> string;
  prepare : int -> version list;  (** array, [rad], delay *)
}

(* How a version name reads in table rows: the paper's Figure 12 labels
   (A = eager array library, R = non-block delayed, Ours = block-delayed)
   for the three standard versions, the raw name for bench-specific ones
   (stdlib/psort, atomics/sort, ...). *)
let describe_version = function
  | "array" -> "A"
  | "rad" -> "R"
  | "delay" -> "Ours"
  | v -> v

let sink_int = ref 0
let sink_float = ref 0.0

let use_int i = sink_int := !sink_int lxor i
let use_float f = sink_float := !sink_float +. (f *. 1e-30)

let bestcut =
  {
    name = "bestcut";
    category = `Bid;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d bounding-box events" n);
    prepare =
      (fun n ->
        let a = K.Bestcut.generate n in
        [
          { vname = "array"; run = (fun () -> use_float (K.Bestcut.Array_version.best_cut a)) };
          { vname = "rad"; run = (fun () -> use_float (K.Bestcut.Rad_version.best_cut a)) };
          { vname = "delay"; run = (fun () -> use_float (K.Bestcut.Delay_version.best_cut a)) };
        ]);
  }

let bfs =
  {
    name = "bfs";
    category = `Bid;
    default_size = 1_000_000;
    describe =
      (fun n ->
        let scale = max 8 (int_of_float (Float.log2 (float_of_int (max 1024 (n / 8))))) in
        Printf.sprintf "R-MAT graph, 2^%d vertices, %d edges" scale n);
    prepare =
      (fun n ->
        let scale = max 8 (int_of_float (Float.log2 (float_of_int (max 1024 (n / 8))))) in
        let g = Bds_graph.Rmat.generate ~scale ~num_edges:n () in
        [
          { vname = "array"; run = (fun () -> use_int (Array.length (Bds_graph.Bfs.Array_version.bfs g 0))) };
          { vname = "rad"; run = (fun () -> use_int (Array.length (Bds_graph.Bfs.Rad_version.bfs g 0))) };
          { vname = "delay"; run = (fun () -> use_int (Array.length (Bds_graph.Bfs.Delay_version.bfs g 0))) };
        ]);
  }

let bignum_add =
  {
    name = "bignum-add";
    category = `Bid;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "two %d-byte bignums" n);
    prepare =
      (fun n ->
        let a, b = K.Bignum.generate_input n in
        let go add () =
          let digits, carry = add a b in
          use_int (Bytes.length digits + carry)
        in
        [
          { vname = "array"; run = go K.Bignum.Array_version.add };
          { vname = "rad"; run = go K.Bignum.Rad_version.add };
          { vname = "delay"; run = go K.Bignum.Delay_version.add };
        ]);
  }

let primes =
  {
    name = "primes";
    category = `Bid;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "primes below %d" n);
    prepare =
      (fun n ->
        [
          { vname = "array"; run = (fun () -> use_int (Array.length (K.Primes.Array_version.primes n))) };
          { vname = "rad"; run = (fun () -> use_int (Array.length (K.Primes.Rad_version.primes n))) };
          { vname = "delay"; run = (fun () -> use_int (Array.length (K.Primes.Delay_version.primes n))) };
        ]);
  }

let tokens =
  {
    name = "tokens";
    category = `Bid;
    default_size = 5_000_000;
    describe = (fun n -> Printf.sprintf "%d chars, avg word length ~7" n);
    prepare =
      (fun n ->
        let text = K.Tokens.generate n in
        let go f () =
          let c, t = f text in
          use_int (c + t)
        in
        [
          { vname = "array"; run = go K.Tokens.Array_version.tokens };
          { vname = "rad"; run = go K.Tokens.Rad_version.tokens };
          { vname = "delay"; run = go K.Tokens.Delay_version.tokens };
        ]);
  }

let grep =
  {
    name = "grep";
    category = `Rad;
    default_size = 5_000_000;
    describe = (fun n -> Printf.sprintf "%d chars, ~3%% of lines match" n);
    prepare =
      (fun n ->
        let text = K.Grep.generate n in
        let go f () =
          let c, t = f text "needle" in
          use_int (c + t)
        in
        [
          { vname = "array"; run = go K.Grep.Array_version.grep };
          { vname = "delay"; run = go K.Grep.Delay_version.grep };
        ]);
  }

let integrate =
  {
    name = "integrate";
    category = `Rad;
    default_size = 5_000_000;
    describe = (fun n -> Printf.sprintf "sqrt(1/x) on [1,1000], %d points" n);
    prepare =
      (fun n ->
        [
          { vname = "array"; run = (fun () -> use_float (K.Integrate.Array_version.integrate n)) };
          { vname = "delay"; run = (fun () -> use_float (K.Integrate.Delay_version.integrate n)) };
        ]);
  }

let linearrec =
  {
    name = "linearrec";
    category = `Rad;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d (x,y) pairs" n);
    prepare =
      (fun n ->
        let xy = K.Linearrec.generate n in
        let go f () = use_float (f xy).(n - 1) in
        [
          { vname = "array"; run = go K.Linearrec.Array_version.solve };
          { vname = "delay"; run = go K.Linearrec.Delay_version.solve };
        ]);
  }

let linefit =
  {
    name = "linefit";
    category = `Rad;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d 2D points" n);
    prepare =
      (fun n ->
        let pts = K.Linefit.generate n in
        let go f () =
          let s, i = f pts in
          use_float (s +. i)
        in
        [
          { vname = "array"; run = go K.Linefit.Array_version.fit };
          { vname = "delay"; run = go K.Linefit.Delay_version.fit };
        ]);
  }

let mcss =
  {
    name = "mcss";
    category = `Rad;
    default_size = 5_000_000;
    describe = (fun n -> Printf.sprintf "%d signed ints" n);
    prepare =
      (fun n ->
        let a = K.Mcss.generate n in
        [
          { vname = "array"; run = (fun () -> use_int (K.Mcss.Array_version.mcss a)) };
          { vname = "delay"; run = (fun () -> use_int (K.Mcss.Delay_version.mcss a)) };
        ]);
  }

let quickhull =
  {
    name = "quickhull";
    category = `Rad;
    default_size = 200_000;
    describe = (fun n -> Printf.sprintf "%d points in a disc" n);
    prepare =
      (fun n ->
        let pts = K.Quickhull.generate n in
        [
          { vname = "array"; run = (fun () -> use_int (List.length (K.Quickhull.Array_version.hull pts))) };
          { vname = "delay"; run = (fun () -> use_int (List.length (K.Quickhull.Delay_version.hull pts))) };
        ]);
  }

let sparse_mxv =
  {
    name = "sparse-mxv";
    category = `Rad;
    default_size = 1_000_000;
    describe = (fun n -> Printf.sprintf "%d rows x ~50 nnz (%d nnz total)" (n / 50) n);
    prepare =
      (fun n ->
        let rows = max 1 (n / 50) in
        let m, x = K.Sparse_mxv.generate ~rows ~nnz_per_row:50 () in
        let go f () = use_float (f m x).(0) in
        [
          { vname = "array"; run = go K.Sparse_mxv.Array_version.mxv };
          { vname = "delay"; run = go K.Sparse_mxv.Delay_version.mxv };
        ]);
  }

let wc =
  {
    name = "wc";
    category = `Rad;
    default_size = 5_000_000;
    describe = (fun n -> Printf.sprintf "%d chars" n);
    prepare =
      (fun n ->
        let text = K.Wc.generate n in
        let go f () =
          let l, w, b = f text in
          use_int (l + w + b)
        in
        [
          { vname = "array"; run = go K.Wc.Array_version.wc };
          { vname = "delay"; run = go K.Wc.Delay_version.wc };
        ]);
  }

(* Extension applications (§1 mentions both as PBBS benchmarks improved
   by the technique). *)

let inverted_index =
  {
    name = "inverted-index";
    category = `Ext;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d chars of documents" n);
    prepare =
      (fun n ->
        let text = K.Inverted_index.generate n in
        let go f () =
          let w, p = f text in
          use_int (w + p)
        in
        [
          { vname = "array"; run = go K.Inverted_index.Array_version.index };
          { vname = "rad"; run = go K.Inverted_index.Rad_version.index };
          { vname = "delay"; run = go K.Inverted_index.Delay_version.index };
        ]);
  }

let raycast =
  {
    name = "raycast";
    category = `Ext;
    default_size = 1_000_000;
    describe =
      (fun n -> Printf.sprintf "%d ray-triangle tests (%d triangles x %d rays)" n 1000 (n / 1000));
    prepare =
      (fun n ->
        let triangles = 1000 in
        let rays = max 1 (n / triangles) in
        let tris, rs = K.Raycast.generate ~triangles ~rays () in
        let go (module V : K.Raycast.VERSION) () =
          let hits, total = V.cast_summary tris rs in
          use_int hits;
          use_float total
        in
        [
          { vname = "array"; run = go (module K.Raycast.Array_version) };
          { vname = "rad"; run = go (module K.Raycast.Rad_version) };
          { vname = "delay"; run = go (module K.Raycast.Delay_version) };
        ]);
  }

let sort_bench =
  {
    name = "sort";
    category = `Ext;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d random ints, parallel stable merge sort" n);
    prepare =
      (fun n ->
        let a = Bds_data.Gen.ints ~bound:1_000_000 n in
        [
          {
            vname = "stdlib";
            run =
              (fun () ->
                let c = Array.copy a in
                Array.stable_sort compare c;
                use_int c.(0));
          };
          {
            vname = "psort";
            run = (fun () -> use_int (Bds_sort.Psort.sort compare a).(0));
          };
        ]);
  }

let histogram =
  {
    name = "histogram";
    category = `Ext;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d skewed keys into 256 buckets" n);
    prepare =
      (fun n ->
        let keys = K.Histogram.generate ~buckets:256 n in
        [
          {
            vname = "atomics";
            run = (fun () -> use_int (K.Histogram.Delay_version.by_atomics ~buckets:256 keys).(0));
          };
          {
            vname = "sort";
            run = (fun () -> use_int (K.Histogram.Delay_version.by_sort ~buckets:256 keys).(0));
          };
        ]);
  }

let dedup =
  {
    name = "dedup";
    category = `Ext;
    default_size = 2_000_000;
    describe = (fun n -> Printf.sprintf "%d keys, ~%d distinct" n (n / 20));
    prepare =
      (fun n ->
        let keys = K.Dedup.generate ~distinct:(max 1 (n / 20)) n in
        [
          { vname = "array"; run = (fun () -> use_int (Array.length (K.Dedup.Array_version.dedup keys))) };
          { vname = "delay"; run = (fun () -> use_int (Array.length (K.Dedup.Delay_version.dedup keys))) };
        ]);
  }

let bid_benches = [ bestcut; bfs; bignum_add; primes; tokens ]
let rad_benches = [ grep; integrate; linearrec; linefit; mcss; quickhull; sparse_mxv; wc ]
let ext_benches = [ inverted_index; raycast; sort_bench; histogram; dedup ]
let all = bid_benches @ rad_benches @ ext_benches

let find name = List.find_opt (fun b -> b.name = name) all
