(** The benchmark registry: every §6 evaluation program plus the
    extension applications, with input generation separated from the
    measured kernels. *)

type version = { vname : string; run : unit -> unit }

type bench = {
  name : string;
  category : [ `Bid | `Rad | `Ext ];  (** paper figure, or extension *)
  default_size : int;
  describe : int -> string;
  prepare : int -> version list;
      (** Generate the input once; the returned closures run the kernel
          in each library version (in order: array, [rad], delay). *)
}

(** Paper label (Figure 12) for a version name: ["array"] is "A",
    ["rad"] is "R", ["delay"] is "Ours"; bench-specific names pass
    through unchanged. *)
val describe_version : string -> string

(** Result sinks, defeating dead-code elimination of benchmark bodies. *)
val sink_int : int ref

val sink_float : float ref
val use_int : int -> unit
val use_float : float -> unit

(** Figure 13's benchmarks: bestcut, bfs, bignum-add, primes, tokens. *)
val bid_benches : bench list

(** Figure 14's benchmarks: grep, integrate, linearrec, linefit, mcss,
    quickhull, sparse-mxv, wc. *)
val rad_benches : bench list

(** Extensions: inverted-index, raycast, sort. *)
val ext_benches : bench list

val all : bench list
val find : string -> bench option
