(* Minimal dependency-free SVG line charts, used to regenerate the
   paper's plotted figures (Figure 15 speedup curves, Figure 16 sweep) as
   actual image files. *)

type series = { label : string; points : (float * float) list }

let palette = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let nice_ticks lo hi n =
  if hi <= lo then [ lo ]
  else begin
    let span = hi -. lo in
    let raw = span /. float_of_int (max 1 n) in
    let mag = 10.0 ** Float.round (Float.log10 raw) in
    let step =
      let r = raw /. mag in
      if r < 0.3 then 0.25 *. mag
      else if r < 0.75 then 0.5 *. mag
      else if r < 1.5 then mag
      else if r < 3.0 then 2.0 *. mag
      else 5.0 *. mag
    in
    let first = Float.round (lo /. step) *. step in
    let rec go t acc =
      if t > hi +. (0.001 *. step) then List.rev acc else go (t +. step) (t :: acc)
    in
    go (if first < lo -. (0.001 *. step) then first +. step else first) []
  end

let fmt_tick v =
  if Float.abs (v -. Float.round v) < 1e-9 && Float.abs v < 1e7 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

(* Render a line chart to an SVG string. *)
let render ~title ~xlabel ~ylabel (series : series list) =
  let w = 640.0 and h = 440.0 in
  let ml = 70.0 and mr = 150.0 and mt = 50.0 and mb = 60.0 in
  let pw = w -. ml -. mr and ph = h -. mt -. mb in
  let all_points = List.concat_map (fun s -> s.points) series in
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let fold f init l = List.fold_left f init l in
  let xmin = fold Float.min infinity xs and xmax = fold Float.max neg_infinity xs in
  let ymin = Float.min 0.0 (fold Float.min infinity ys) in
  let ymax = fold Float.max neg_infinity ys in
  let ymax = if ymax <= ymin then ymin +. 1.0 else ymax in
  let xmax = if xmax <= xmin then xmin +. 1.0 else xmax in
  let sx x = ml +. (pw *. (x -. xmin) /. (xmax -. xmin)) in
  let sy y = mt +. (ph *. (1.0 -. ((y -. ymin) /. (ymax -. ymin)))) in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\">\n"
    w h w h;
  out "<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n" w h;
  out
    "<text x=\"%.1f\" y=\"24\" text-anchor=\"middle\" font-size=\"15\" \
     font-weight=\"bold\">%s</text>\n"
    (ml +. (pw /. 2.0)) title;
  (* Axes. *)
  out
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n"
    ml (mt +. ph) (ml +. pw) (mt +. ph);
  out "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n"
    ml mt ml (mt +. ph);
  (* Ticks and grid. *)
  List.iter
    (fun t ->
      let x = sx t in
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"#dddddd\"/>\n"
        x mt x (mt +. ph);
      out
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
         font-size=\"11\">%s</text>\n"
        x
        (mt +. ph +. 18.0)
        (fmt_tick t))
    (nice_ticks xmin xmax 8);
  List.iter
    (fun t ->
      let y = sy t in
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"#dddddd\"/>\n"
        ml y (ml +. pw) y;
      out
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" font-size=\"11\">%s</text>\n"
        (ml -. 8.0) (y +. 4.0) (fmt_tick t))
    (nice_ticks ymin ymax 8);
  (* Axis labels. *)
  out
    "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"13\">%s</text>\n"
    (ml +. (pw /. 2.0))
    (h -. 14.0)
    xlabel;
  out
    "<text x=\"18\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"13\" \
     transform=\"rotate(-90 18 %.1f)\">%s</text>\n"
    (mt +. (ph /. 2.0))
    (mt +. (ph /. 2.0))
    ylabel;
  (* Series. *)
  List.iteri
    (fun i s ->
      let color = palette.(i mod Array.length palette) in
      let pts =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (sx x) (sy y)) s.points)
      in
      out
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
        pts color;
      List.iter
        (fun (x, y) ->
          out "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n" (sx x) (sy y)
            color)
        s.points;
      (* Legend entry. *)
      let ly = mt +. 10.0 +. (float_of_int i *. 20.0) in
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" \
         stroke-width=\"2\"/>\n"
        (ml +. pw +. 12.0) ly
        (ml +. pw +. 36.0)
        ly color;
      out "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\">%s</text>\n"
        (ml +. pw +. 42.0) (ly +. 4.0) s.label)
    series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ~path ~title ~xlabel ~ylabel series =
  let oc = open_out path in
  output_string oc (render ~title ~xlabel ~ylabel series);
  close_out oc
