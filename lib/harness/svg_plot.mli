(** Dependency-free SVG line charts, for regenerating the paper's plotted
    figures (speedup curves, sweeps) as image files. *)

type series = { label : string; points : (float * float) list }

(** Render a line chart (640x440, grid, ticks, legend) as an SVG
    document. *)
val render : title:string -> xlabel:string -> ylabel:string -> series list -> string

(** Render and write to [path]. *)
val write :
  path:string -> title:string -> xlabel:string -> ylabel:string -> series list -> unit
