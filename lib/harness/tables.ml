(* Plain-text table rendering in the style of the paper's figures. *)

let render ~headers ~rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let pad = widths.(i) - String.length cell in
           if i = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         row)
  in
  let sep = String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-' in
  String.concat "\n" (line headers :: sep :: List.map line rows)

let print ~title ~headers ~rows =
  Printf.printf "\n%s\n%s\n%s\n" title (String.make (String.length title) '=')
    (render ~headers ~rows)

let ratio a b =
  if b > 0.0 then Printf.sprintf "%.2f" (a /. b)
  else if a > 0.0 then "inf"
  else "-"
