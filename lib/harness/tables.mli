(** Plain-text tables in the style of the paper's figures. *)

(** First column left-aligned, the rest right-aligned. *)
val render : headers:string list -> rows:string list list -> string

val print : title:string -> headers:string list -> rows:string list list -> unit

(** [ratio a b] = a/b to two decimals; "inf" when b = 0 < a; "-" when
    both are 0. *)
val ratio : float -> float -> string
