(* bestcut: kd-tree best-cut via the surface area heuristic, simplified as
   in the paper's Figure 4: map, scan, map, reduce.

   The input models [n] bounding-box events along one axis: a float in
   [0,1) per event; an event "ends" a box when its value exceeds
   [end_threshold].  The cut cost at position i combines the count of
   boxes ending before the cut with the surface areas of the two
   subvolumes (proportional to cut position). *)

let end_threshold = 0.3

module Make (S : Bds_seqs.Sig.S) = struct
  (* Returns the minimum cut cost. *)
  let best_cut (a : float array) : float =
    let n = Array.length a in
    let fn = float_of_int n in
    let s = S.of_array a in
    let is_end = S.map (fun x -> if x > end_threshold then 1 else 0) s in
    let end_counts, _ = S.scan ( + ) 0 is_end in
    let costs =
      S.mapi
        (fun i c ->
          let pos = float_of_int i /. fn in
          (pos *. float_of_int c) +. ((1.0 -. pos) *. float_of_int (n - c)))
        end_counts
    in
    S.reduce Float.min infinity costs
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Stream-of-blocks version for the §6.5 comparison (Figure 16): the
   map/scan/map/reduce pipeline over a stream of eager blocks, parallel
   within blocks only. *)
let best_cut_sob ~block_size (a : float array) : float =
  let n = Array.length a in
  let fn = float_of_int n in
  let s = Bds_sob.Sob.of_array ~block_size a in
  let is_end = Bds_sob.Sob.map (fun x -> if x > end_threshold then 1 else 0) s in
  let end_counts = Bds_sob.Sob.scan ( + ) 0 is_end in
  let costs =
    Bds_sob.Sob.mapi
      (fun i c ->
        let pos = float_of_int i /. fn in
        (pos *. float_of_int c) +. ((1.0 -. pos) *. float_of_int (n - c)))
      end_counts
  in
  Bds_sob.Sob.reduce Float.min infinity costs

(* Sequential reference. *)
let reference (a : float array) : float =
  let n = Array.length a in
  let fn = float_of_int n in
  let best = ref infinity in
  let c = ref 0 in
  for i = 0 to n - 1 do
    let pos = float_of_int i /. fn in
    let cost = (pos *. float_of_int !c) +. ((1.0 -. pos) *. float_of_int (n - !c)) in
    if cost < !best then best := cost;
    if a.(i) > end_threshold then incr c
  done;
  !best

let generate ?(seed = 42) n = Bds_data.Gen.floats ~seed n
