(** bestcut: kd-tree best-cut via the surface-area heuristic, simplified
    as in the paper's Figure 4 — a map, scan, map, reduce pipeline.  With
    block-delayed sequences the pipeline makes two passes over the input
    and allocates O(blocks) (Figure 5). *)

(** An event "ends" a box when its sample exceeds this threshold. *)
val end_threshold : float

module Make (S : Bds_seqs.Sig.S) : sig
  (** Minimum cut cost over all candidate positions. *)
  val best_cut : float array -> float
end

module Array_version : sig val best_cut : float array -> float end
module Rad_version : sig val best_cut : float array -> float end
module Delay_version : sig val best_cut : float array -> float end

(** Stream-of-blocks version (§6.5 / Figure 16): parallel within blocks
    only. *)
val best_cut_sob : block_size:int -> float array -> float

(** Sequential reference. *)
val reference : float array -> float

(** [n] uniform samples in [0,1). *)
val generate : ?seed:int -> int -> float array
