(* bignum-add: addition of two arbitrary-precision naturals stored as
   base-256 digit strings (little-endian bytes).

   Carry propagation is a scan over the classic carry monoid
   {Stop, Generate, Propagate}: composing left-to-right, a later Generate
   or Stop overrides, a later Propagate preserves.  Propagate is the
   identity, so the exclusive scan seeded with Propagate yields, at each
   position, the carry state flowing in (Generate = carry 1, otherwise
   carry 0).  The pipeline is map, map, scan, zip, map — fully fused by
   block-delayed sequences. *)

let stop = 0
let generate = 1
let propagate = 2

(* Carry-monoid composition (associative; [propagate] is the identity). *)
let combine_carry earlier later = if later = propagate then earlier else later

module Make (S : Bds_seqs.Sig.S) = struct
  (* [add a b] returns the digit string of a+b (same length as the longer
     input) together with the final carry-out (0 or 1). *)
  let add (a : Bytes.t) (b : Bytes.t) : Bytes.t * int =
    let n = max (Bytes.length a) (Bytes.length b) in
    let digit x i = if i < Bytes.length x then Char.code (Bytes.unsafe_get x i) else 0 in
    let sums = S.tabulate n (fun i -> digit a i + digit b i) in
    let classes =
      S.map (fun s -> if s > 255 then generate else if s = 255 then propagate else stop) sums
    in
    let carry_in, final = S.scan combine_carry propagate classes in
    let digits =
      S.zip_with
        (fun s st -> (s + if st = generate then 1 else 0) land 255)
        sums carry_in
    in
    let out = Bytes.create n in
    S.iteri (fun i d -> Bytes.unsafe_set out i (Char.unsafe_chr d)) digits;
    (out, if final = generate then 1 else 0)
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Sequential schoolbook reference. *)
let reference (a : Bytes.t) (b : Bytes.t) : Bytes.t * int =
  let n = max (Bytes.length a) (Bytes.length b) in
  let digit x i = if i < Bytes.length x then Char.code (Bytes.get x i) else 0 in
  let out = Bytes.create n in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = digit a i + digit b i + !carry in
    Bytes.set out i (Char.chr (s land 255));
    carry := s lsr 8
  done;
  (out, !carry)

let generate_input ?(seed = 42) n =
  (Bds_data.Gen.bignum_digits ~seed n, Bds_data.Gen.bignum_digits ~seed:(seed + 1) n)
