(** bignum-add: addition of base-256 little-endian digit strings, with
    carry propagation as a scan over the {Stop, Generate, Propagate}
    carry monoid (Propagate is the identity). *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** [add a b] = (digits of a+b, carry-out ∈ {0,1}). Inputs may have
      different lengths. *)
  val add : Bytes.t -> Bytes.t -> Bytes.t * int
end

module Array_version : sig val add : Bytes.t -> Bytes.t -> Bytes.t * int end
module Rad_version : sig val add : Bytes.t -> Bytes.t -> Bytes.t * int end
module Delay_version : sig val add : Bytes.t -> Bytes.t -> Bytes.t * int end

(** Sequential schoolbook reference. *)
val reference : Bytes.t -> Bytes.t -> Bytes.t * int

(** Two random [n]-digit bignums. *)
val generate_input : ?seed:int -> int -> Bytes.t * Bytes.t
