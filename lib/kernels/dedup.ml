(* dedup / remove-duplicates (extension, PBBS-style): the distinct
   elements of a sequence, in ascending order — parallel sort plus a
   fused boundary filter (the filter output BID is materialised only
   once, at the end). *)

module Psort = Bds_sort.Psort

module Make (S : Bds_seqs.Sig.S) = struct
  let dedup (keys : 'a array) : 'a array =
    let n = Array.length keys in
    if n = 0 then [||]
    else begin
      let sorted = Psort.sort compare keys in
      S.to_array
        (S.filter_op
           (fun i ->
             if i = 0 || sorted.(i) <> sorted.(i - 1) then Some sorted.(i) else None)
           (S.iota n))
    end
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference (keys : 'a array) : 'a array =
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  let buf = ref [] in
  for i = Array.length sorted - 1 downto 0 do
    if i = 0 || sorted.(i) <> sorted.(i - 1) then buf := sorted.(i) :: !buf
  done;
  Array.of_list !buf

let generate ?(seed = 42) ~distinct n =
  Bds_data.Gen.ints ~seed ~bound:distinct n
