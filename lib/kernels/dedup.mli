(** dedup / remove-duplicates (extension, PBBS-style): distinct elements
    in ascending order via parallel sort + fused boundary filter. *)

module Make (S : Bds_seqs.Sig.S) : sig
  val dedup : 'a array -> 'a array
end

module Array_version : sig val dedup : 'a array -> 'a array end
module Rad_version : sig val dedup : 'a array -> 'a array end
module Delay_version : sig val dedup : 'a array -> 'a array end

val reference : 'a array -> 'a array

(** [n] keys drawn from [distinct] possible values. *)
val generate : ?seed:int -> distinct:int -> int -> int array
