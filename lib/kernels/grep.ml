(* grep: find the lines containing a fixed pattern (cf. Unix grep).

   Line starts are found by a filter over the index space; each candidate
   line is then scanned for the pattern (naive substring search, as the
   inner loop is short), and matching lines are counted/measured. *)

module Make (S : Bds_seqs.Sig.S) = struct
  let line_end (text : Bytes.t) start =
    let n = Bytes.length text in
    let rec go i = if i >= n || Bytes.unsafe_get text i = '\n' then i else go (i + 1) in
    go start

  let contains (text : Bytes.t) ~start ~stop (pattern : string) =
    let plen = String.length pattern in
    let rec outer i =
      if i + plen > stop then false
      else begin
        let rec inner k =
          k >= plen || (Bytes.unsafe_get text (i + k) = pattern.[k] && inner (k + 1))
        in
        inner 0 || outer (i + 1)
      end
    in
    plen = 0 || outer start

  (* Returns (number of matching lines, total bytes in matching lines). *)
  let grep (text : Bytes.t) (pattern : string) : int * int =
    let n = Bytes.length text in
    let line_starts =
      S.filter
        (fun i -> i = 0 || Bytes.unsafe_get text (i - 1) = '\n')
        (S.iota n)
    in
    let matching =
      S.filter_op
        (fun start ->
          let stop = line_end text start in
          if contains text ~start ~stop pattern then Some (stop - start) else None)
        line_starts
    in
    (S.length matching, S.reduce ( + ) 0 matching)
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Sequential reference. *)
let reference (text : Bytes.t) (pattern : string) : int * int =
  let n = Bytes.length text in
  let count = ref 0 and total = ref 0 in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && Bytes.get text !i <> '\n' do
      incr i
    done;
    let line = Bytes.sub_string text start (!i - start) in
    let plen = String.length pattern in
    let matches =
      plen = 0
      ||
      let rec go k =
        k + plen <= String.length line
        && (String.sub line k plen = pattern || go (k + 1))
      in
      go 0
    in
    if matches then begin
      incr count;
      total := !total + (!i - start)
    end;
    incr i
  done;
  (!count, !total)

let generate ?(seed = 42) ?(pattern = "needle") n =
  Bds_data.Gen.text_with_pattern ~seed ~pattern n
