(** grep: count and measure the lines containing a fixed pattern
    (cf. Unix grep). Line starts come from a filter over the index space;
    candidate lines are scanned by naive substring search. *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** (matching lines, total bytes in matching lines). *)
  val grep : Bytes.t -> string -> int * int
end

module Array_version : sig val grep : Bytes.t -> string -> int * int end
module Rad_version : sig val grep : Bytes.t -> string -> int * int end
module Delay_version : sig val grep : Bytes.t -> string -> int * int end

val reference : Bytes.t -> string -> int * int

(** Text of [n] chars with ~3% of lines containing [pattern]. *)
val generate : ?seed:int -> ?pattern:string -> int -> Bytes.t
