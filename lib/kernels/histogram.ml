(* histogram (extension, PBBS-style): counts of values in [0, buckets).

   Two classic parallel strategies, both over the sequence API:
   - [by_atomics]: one fused parallel pass incrementing per-bucket
     atomic counters (contends under high skew);
   - [by_sort]: sort the keys, find run boundaries with a fused
     boundary filter, and difference adjacent boundary positions —
     contention-free, all fusion. *)

module Psort = Bds_sort.Psort

module Make (S : Bds_seqs.Sig.S) = struct
  let by_atomics ~buckets (keys : int array) : int array =
    let counters = Array.init buckets (fun _ -> Atomic.make 0) in
    S.iter
      (fun k ->
        if k < 0 || k >= buckets then invalid_arg "Histogram: key out of range";
        Atomic.incr counters.(k))
      (S.of_array keys);
    Array.map Atomic.get counters

  let by_sort ~buckets (keys : int array) : int array =
    let n = Array.length keys in
    let out = Array.make buckets 0 in
    if n > 0 then begin
      let sorted = Psort.sort compare keys in
      (* Boundary positions: the start index of each run of equal keys. *)
      let starts =
        S.to_array
          (S.filter (fun i -> i = 0 || sorted.(i) <> sorted.(i - 1)) (S.iota n))
      in
      let m = Array.length starts in
      S.iter
        (fun j ->
          let lo = starts.(j) in
          let hi = if j + 1 < m then starts.(j + 1) else n in
          let k = sorted.(lo) in
          if k < 0 || k >= buckets then invalid_arg "Histogram: key out of range";
          out.(k) <- hi - lo)
        (S.iota m)
    end;
    out
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference ~buckets (keys : int array) : int array =
  let out = Array.make buckets 0 in
  Array.iter (fun k -> out.(k) <- out.(k) + 1) keys;
  out

(* Zipf-ish skewed keys: bucket b with weight ~ 1/(b+1). *)
let generate ?(seed = 42) ~buckets n =
  Bds_parray.Parray.tabulate n (fun i ->
      let u = Bds_data.Splitmix.float_at ~seed i in
      (* Inverse-CDF of the harmonic weights, approximated: exp scale. *)
      let b = int_of_float (float_of_int buckets ** u) - 1 in
      min (buckets - 1) (max 0 b))
