(** histogram (extension, PBBS-style): counts of integer keys in
    [0, buckets), by atomic counters or by sort + boundary filter. *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** One fused pass with per-bucket atomics.
      Raises [Invalid_argument] on out-of-range keys. *)
  val by_atomics : buckets:int -> int array -> int array

  (** Contention-free: parallel sort, fused boundary filter, run-length
      differencing. *)
  val by_sort : buckets:int -> int array -> int array
end

module Array_version : sig
  val by_atomics : buckets:int -> int array -> int array
  val by_sort : buckets:int -> int array -> int array
end

module Rad_version : sig
  val by_atomics : buckets:int -> int array -> int array
  val by_sort : buckets:int -> int array -> int array
end

module Delay_version : sig
  val by_atomics : buckets:int -> int array -> int array
  val by_sort : buckets:int -> int array -> int array
end

val reference : buckets:int -> int array -> int array

(** Skewed (Zipf-like) keys in [0, buckets). *)
val generate : ?seed:int -> buckets:int -> int -> int array
