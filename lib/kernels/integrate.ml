(* integrate: midpoint-rule integration of sqrt(1/x) over [1, 1000]
   (the paper's workload), i.e. a tabulate fused into a reduce.

   The array library materialises the n sample values — the intermediate
   whose elimination gives the paper's largest space reduction (~250x). *)

let f x = Float.sqrt (1.0 /. x)

module Make (S : Bds_seqs.Sig.S) = struct
  let integrate ?(lo = 1.0) ?(hi = 1000.0) (n : int) : float =
    let dx = (hi -. lo) /. float_of_int n in
    let samples =
      S.tabulate n (fun i -> f (lo +. ((float_of_int i +. 0.5) *. dx)))
    in
    S.reduce ( +. ) 0.0 samples *. dx
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Unboxed variant (ISSUE 7): the same tabulate-into-reduce shape, but
   as a dedicated monomorphic block loop over the [Grain] grid.  The
   integrand is inlined (not called through [f]) so [sqrt] and [/.]
   compile to unboxed intrinsics — a call through a float-returning
   closure would box one float per sample, which on this compute-light
   kernel is the whole margin.  Same cadence as the Float_seq loops:
   2-way split accumulators, one cancellation poll per 64 elements, one
   [float_fast_path] bump per block. *)

module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Grain = Bds_runtime.Grain
module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile

let integrate_unboxed ?(lo = 1.0) ?(hi = 1000.0) (n : int) : float =
  let dx = (hi -. lo) /. float_of_int n in
  (* n = 0 gives 0 * (an infinite dx) = nan, same as the boxed versions. *)
  if n <= 0 then 0.0 *. dx
  else
    Profile.with_op "float_sum" @@ fun () ->
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let partial = Float.Array.create nb in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let blo, bhi = Grain.bounds g j in
        let s0 = ref 0.0 and s1 = ref 0.0 in
        let i = ref blo in
        while !i < bhi do
          Cancel.poll ();
          let stop = min bhi (!i + 64) in
          let k = ref !i in
          while !k + 1 < stop do
            (* f (lo + (k + 0.5) dx), inlined *)
            let x0 = lo +. ((float_of_int !k +. 0.5) *. dx) in
            let x1 = lo +. ((float_of_int (!k + 1) +. 0.5) *. dx) in
            s0 := !s0 +. Float.sqrt (1.0 /. x0);
            s1 := !s1 +. Float.sqrt (1.0 /. x1);
            k := !k + 2
          done;
          if !k < stop then begin
            let x = lo +. ((float_of_int !k +. 0.5) *. dx) in
            s0 := !s0 +. Float.sqrt (1.0 /. x)
          end;
          i := stop
        done;
        Float.Array.unsafe_set partial j (!s0 +. !s1));
    let acc = ref 0.0 in
    for j = 0 to nb - 1 do
      acc := !acc +. Float.Array.unsafe_get partial j
    done;
    !acc *. dx

let reference ?(lo = 1.0) ?(hi = 1000.0) n =
  let dx = (hi -. lo) /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. f (lo +. ((float_of_int i +. 0.5) *. dx))
  done;
  !acc *. dx

(* Closed form of the integral, for accuracy checks. *)
let exact ?(lo = 1.0) ?(hi = 1000.0) () = 2.0 *. (Float.sqrt hi -. Float.sqrt lo)
