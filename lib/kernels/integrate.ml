(* integrate: midpoint-rule integration of sqrt(1/x) over [1, 1000]
   (the paper's workload), i.e. a tabulate fused into a reduce.

   The array library materialises the n sample values — the intermediate
   whose elimination gives the paper's largest space reduction (~250x). *)

let f x = Float.sqrt (1.0 /. x)

module Make (S : Bds_seqs.Sig.S) = struct
  let integrate ?(lo = 1.0) ?(hi = 1000.0) (n : int) : float =
    let dx = (hi -. lo) /. float_of_int n in
    let samples =
      S.tabulate n (fun i -> f (lo +. ((float_of_int i +. 0.5) *. dx)))
    in
    S.reduce ( +. ) 0.0 samples *. dx
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference ?(lo = 1.0) ?(hi = 1000.0) n =
  let dx = (hi -. lo) /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. f (lo +. ((float_of_int i +. 0.5) *. dx))
  done;
  !acc *. dx

(* Closed form of the integral, for accuracy checks. *)
let exact ?(lo = 1.0) ?(hi = 1000.0) () = 2.0 *. (Float.sqrt hi -. Float.sqrt lo)
