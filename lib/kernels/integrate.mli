(** integrate: midpoint-rule integration of sqrt(1/x) over [lo, hi] — a
    tabulate fused into a reduce.  The array library materialises all n
    sample values, the intermediate whose elimination gives the paper's
    largest space reduction (~250x). *)

(** The integrand, sqrt(1/x). *)
val f : float -> float

module Make (S : Bds_seqs.Sig.S) : sig
  val integrate : ?lo:float -> ?hi:float -> int -> float
end

module Array_version : sig val integrate : ?lo:float -> ?hi:float -> int -> float end
module Rad_version : sig val integrate : ?lo:float -> ?hi:float -> int -> float end
module Delay_version : sig val integrate : ?lo:float -> ?hi:float -> int -> float end

(** Unboxed-lane variant: the sample function goes straight into
    [Float_seq.sum]'s monomorphic loop (no per-element boxing, no
    materialised intermediate).  Differs from the boxed pipelines by
    summation-order rounding only. *)
val integrate_unboxed : ?lo:float -> ?hi:float -> int -> float

val reference : ?lo:float -> ?hi:float -> int -> float

(** Closed form 2(sqrt hi - sqrt lo), for accuracy checks. *)
val exact : ?lo:float -> ?hi:float -> unit -> float
