(* inverted index (extension): the paper reports that block-delayed
   sequences improved PBBS's inverted-index benchmark; this is that
   application shape.  Documents are newline-separated lines; the index
   maps each distinct word to the set of documents containing it.

   Pipeline: tokenise (filter/zip fusion), attach document ids (binary
   search over the filtered line starts), sort the (word, doc) pairs with
   the parallel sorting substrate, and count postings/words by filtering
   boundaries — the last step again pure BID fusion. *)

module Psort = Bds_sort.Psort

module Make (S : Bds_seqs.Sig.S) = struct
  module Tok = Tokens.Make (S)

  (* Returns (number of distinct words, number of postings, i.e. distinct
     (word, document) pairs). *)
  let index (text : Bytes.t) : int * int =
    let n = Bytes.length text in
    if n = 0 then (0, 0)
    else begin
      let spans = Tok.token_spans text in
      let line_starts =
        S.to_array
          (S.filter (fun i -> i = 0 || Bytes.unsafe_get text (i - 1) = '\n') (S.iota n))
      in
      (* Document of a position: the last line start <= pos. *)
      let doc_of pos =
        let rec go lo hi =
          if lo >= hi then lo
          else begin
            let mid = (lo + hi + 1) / 2 in
            if line_starts.(mid) <= pos then go mid hi else go lo (mid - 1)
          end
        in
        go 0 (Array.length line_starts - 1)
      in
      let pairs =
        S.to_array
          (S.map
             (fun (start, len) -> (Bytes.sub_string text start len, doc_of start))
             (S.of_array spans))
      in
      let sorted = Psort.sort compare pairs in
      let m = Array.length sorted in
      let postings =
        S.filter (fun i -> i = 0 || sorted.(i) <> sorted.(i - 1)) (S.iota m)
      in
      let words =
        S.filter (fun i -> i = 0 || fst sorted.(i) <> fst sorted.(i - 1)) (S.iota m)
      in
      (S.length words, S.length postings)
    end
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* The actual index: per-word posting lists (sorted document ids, duplicates
   removed), via the sorting substrate's group_by. *)
let postings (text : Bytes.t) : (string * int array) array =
  let module T = Tokens.Make (Bds_seqs.Impl_delay) in
  let n = Bytes.length text in
  if n = 0 then [||]
  else begin
    let module S = Bds_seqs.Impl_delay in
    let spans = T.token_spans text in
    let line_starts =
      S.to_array
        (S.filter (fun i -> i = 0 || Bytes.unsafe_get text (i - 1) = '\n') (S.iota n))
    in
    let doc_of pos =
      let rec go lo hi =
        if lo >= hi then lo
        else begin
          let mid = (lo + hi + 1) / 2 in
          if line_starts.(mid) <= pos then go mid hi else go lo (mid - 1)
        end
      in
      go 0 (Array.length line_starts - 1)
    in
    let pairs =
      S.to_array
        (S.map
           (fun (start, len) -> (Bytes.sub_string text start len, doc_of start))
           (S.of_array spans))
    in
    let groups = Psort.group_by compare pairs in
    (* Document ids arrive sorted within a group (stable sort + docs
       appearing in order); drop adjacent duplicates. *)
    Array.map
      (fun (word, docs) ->
        let module P = Bds_parray.Parray in
        ( word,
          P.filter_op
            (fun i -> if i = 0 || docs.(i) <> docs.(i - 1) then Some docs.(i) else None)
            (P.iota (Array.length docs)) ))
      groups
  end

(* Sequential reference with hash tables. *)
let reference (text : Bytes.t) : int * int =
  let n = Bytes.length text in
  let words = Hashtbl.create 64 in
  let postings = Hashtbl.create 64 in
  let doc = ref 0 in
  let i = ref 0 in
  while !i < n do
    (* Skip whitespace, tracking newlines as document boundaries. *)
    while !i < n && Tokens.is_space (Bytes.get text !i) do
      if Bytes.get text !i = '\n' then incr doc;
      incr i
    done;
    let start = !i in
    while !i < n && not (Tokens.is_space (Bytes.get text !i)) do
      incr i
    done;
    if !i > start then begin
      let w = Bytes.sub_string text start (!i - start) in
      Hashtbl.replace words w ();
      Hashtbl.replace postings (w, !doc) ()
    end
  done;
  (Hashtbl.length words, Hashtbl.length postings)

let generate ?(seed = 42) n = Bds_data.Gen.text ~seed n
