(** inverted index (extension; mentioned in the paper's §1 as a PBBS
    application improved by the technique).  Documents are newline-
    separated lines; the pipeline tokenises, attaches document ids, sorts
    (word, doc) pairs with the parallel sorting substrate, and counts
    words and postings by boundary filters. *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** (distinct words, postings = distinct (word, document) pairs). *)
  val index : Bytes.t -> int * int
end

module Array_version : sig val index : Bytes.t -> int * int end
module Rad_version : sig val index : Bytes.t -> int * int end
module Delay_version : sig val index : Bytes.t -> int * int end

(** The materialised index: (word, sorted document ids) per distinct
    word, words in ascending order — built with the block-delayed
    pipeline plus the sorting substrate's group_by. *)
val postings : Bytes.t -> (string * int array) array

(** Sequential hash-table reference. *)
val reference : Bytes.t -> int * int

val generate : ?seed:int -> int -> Bytes.t
