(* linearrec: solve the linear recurrence R_i = x_i * R_{i-1} + y_i by an
   inclusive scan over affine-function composition:
   (a1,b1) . (a2,b2) = (a1*a2, b1*a2 + b2), applied left-to-right, so the
   scan value at i is the composition of steps 0..i and
   R_i = a*R_init + b. *)

let compose (a1, b1) (a2, b2) = (a1 *. a2, (b1 *. a2) +. b2)

module Make (S : Bds_seqs.Sig.S) = struct
  let solve ?(r0 = 0.0) (xy : (float * float) array) : float array =
    let s = S.of_array xy in
    let comps = S.scan_incl compose (1.0, 0.0) s in
    S.to_array (S.map (fun (a, b) -> (a *. r0) +. b) comps)
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference ?(r0 = 0.0) (xy : (float * float) array) : float array =
  let n = Array.length xy in
  let out = Array.make n 0.0 in
  let r = ref r0 in
  for i = 0 to n - 1 do
    let x, y = xy.(i) in
    r := (x *. !r) +. y;
    out.(i) <- !r
  done;
  out

(* Coefficients in (-1, 1) keep the recurrence numerically stable. *)
let generate ?(seed = 42) n =
  Bds_parray.Parray.tabulate n (fun i ->
      ( (Bds_data.Splitmix.float_at ~seed i *. 1.8) -. 0.9,
        Bds_data.Splitmix.float_at ~seed:(seed + 1) i ))
