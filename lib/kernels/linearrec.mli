(** linearrec: solve R_i = x_i * R_(i-1) + y_i by an inclusive scan over
    affine-function composition (a non-commutative monoid). *)

(** (a1,b1) . (a2,b2) = (a1*a2, b1*a2 + b2): apply step 1, then step 2. *)
val compose : float * float -> float * float -> float * float

module Make (S : Bds_seqs.Sig.S) : sig
  (** All R_i given R_(-1) = [r0] (default 0). *)
  val solve : ?r0:float -> (float * float) array -> float array
end

module Array_version : sig val solve : ?r0:float -> (float * float) array -> float array end
module Rad_version : sig val solve : ?r0:float -> (float * float) array -> float array end
module Delay_version : sig val solve : ?r0:float -> (float * float) array -> float array end

val reference : ?r0:float -> (float * float) array -> float array

(** Coefficients x in (-0.9, 0.9) keep the recurrence stable. *)
val generate : ?seed:int -> int -> (float * float) array
