(* linefit: least-squares line through n 2D points.  Two passes over the
   input (as the paper notes): one reduce for the means, one for the
   second moments.  The array library allocates a tuple array per pass;
   the delayed libraries fuse the maps into the reduces. *)

let add2 (a, b) (c, d) = (a +. c, b +. d)

module Make (S : Bds_seqs.Sig.S) = struct
  (* Returns (slope, intercept). *)
  let fit (pts : (float * float) array) : float * float =
    let n = Array.length pts in
    let fn = float_of_int n in
    let s = S.of_array pts in
    let sx, sy = S.reduce add2 (0.0, 0.0) s in
    let mx = sx /. fn and my = sy /. fn in
    let sxx, sxy =
      S.reduce add2 (0.0, 0.0)
        (S.map
           (fun (x, y) ->
             let dx = x -. mx in
             (dx *. dx, dx *. (y -. my)))
           s)
    in
    let slope = sxy /. sxx in
    (slope, my -. (slope *. mx))
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference (pts : (float * float) array) : float * float =
  let n = Array.length pts in
  let fn = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    pts;
  let mx = !sx /. fn and my = !sy /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. (y -. my)))
    pts;
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let generate ?(seed = 42) n =
  Bds_data.Gen.points_near_line ~seed ~slope:2.5 ~intercept:(-1.0) ~noise:0.5 n
