(* linefit: least-squares line through n 2D points.  Two passes over the
   input (as the paper notes): one reduce for the means, one for the
   second moments.  The array library allocates a tuple array per pass;
   the delayed libraries fuse the maps into the reduces. *)

let add2 (a, b) (c, d) = (a +. c, b +. d)

module Make (S : Bds_seqs.Sig.S) = struct
  (* Returns (slope, intercept). *)
  let fit (pts : (float * float) array) : float * float =
    let n = Array.length pts in
    let fn = float_of_int n in
    let s = S.of_array pts in
    let sx, sy = S.reduce add2 (0.0, 0.0) s in
    let mx = sx /. fn and my = sy /. fn in
    let sxx, sxy =
      S.reduce add2 (0.0, 0.0)
        (S.map
           (fun (x, y) ->
             let dx = x -. mx in
             (dx *. dx, dx *. (y -. my)))
           s)
    in
    let slope = sxy /. sxx in
    (slope, my -. (slope *. mx))
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* ------------------------------------------------------------------ *)
(* Unboxed variant (ISSUE 7): the boxed pipeline allocates a (float *
   float) tuple per element per pass.  Here the coordinates are split
   once into two [floatarray]s (one boxed tuple read per element, paid a
   single time), the means come from [Float_seq.sum] (Mat fast path),
   and the second moments run as one dedicated monomorphic block loop —
   per element, two [floatarray] reads and the centred products, with
   2x2 split accumulators (sxx and sxy each keep two independent add
   chains).  Routing the centred coordinates through [Float_seq.dot] of
   delayed [Fn]s instead would pay four float-returning closure calls
   per element, which costs more than the tuples it saves. *)

module Float_seq = Bds.Float_seq
module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Grain = Bds_runtime.Grain
module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile

(* The second moments are one [Float_seq.fold2] over the coordinate
   pair: (sum dx*dx, sum dx*dy) in a single read of both inputs, with
   the Mat x Mat unsafe-read loop and per-block partial combine living
   in the library instead of a bespoke kernel loop.  The two closure
   calls per element cost a little over the old hand-unrolled loop;
   [fit_unboxed] below keeps the dedicated tuple-array loop for the
   perf-gated path. *)
let fit_xy (xs : floatarray) (ys : floatarray) : float * float =
  let n = Float.Array.length xs in
  if Float.Array.length ys <> n then invalid_arg "Linefit.fit_xy";
  if n = 0 then invalid_arg "Linefit.fit_xy: empty";
  let fn = float_of_int n in
  let sx = Float_seq.sum (Float_seq.of_floatarray xs) in
  let sy = Float_seq.sum (Float_seq.of_floatarray ys) in
  let mx = sx /. fn and my = sy /. fn in
  let sxx, sxy =
    Float_seq.fold2
      ~f1:(fun x _ ->
        let dx = x -. mx in
        dx *. dx)
      ~f2:(fun x y -> (x -. mx) *. (y -. my))
      (Float_seq.of_floatarray xs) (Float_seq.of_floatarray ys)
  in
  let slope = sxy /. sxx in
  (slope, my -. (slope *. mx))

(* The tuple-array entry point works directly on [pts]: a tuple read is
   a pointer load plus two unboxed field loads — no per-element
   allocation — so folding in place beats splitting the coordinates into
   two fresh 16n-byte [floatarray]s first (the split's allocations and
   cold stores cost more than every tuple dereference it saves, and the
   repeated large allocations thrash the major GC under benchmarking). *)

let sums_pts (pts : (float * float) array) =
  let n = Array.length pts in
  Profile.with_op "float_sum" @@ fun () ->
  let g = Runtime.block_grid n in
  let nb = g.Grain.num_blocks in
  let px = Float.Array.create nb and py = Float.Array.create nb in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
      Telemetry.incr_float_fast_path ();
      let lo, hi = Grain.bounds g j in
      let sx = ref 0.0 and sy = ref 0.0 in
      let i = ref lo in
      while !i < hi do
        Cancel.poll ();
        let stop = min hi (!i + 64) in
        for k = !i to stop - 1 do
          let x, y = Array.unsafe_get pts k in
          sx := !sx +. x;
          sy := !sy +. y
        done;
        i := stop
      done;
      Float.Array.unsafe_set px j !sx;
      Float.Array.unsafe_set py j !sy);
  let sx = ref 0.0 and sy = ref 0.0 in
  for j = 0 to nb - 1 do
    sx := !sx +. Float.Array.unsafe_get px j;
    sy := !sy +. Float.Array.unsafe_get py j
  done;
  (!sx, !sy)

let second_moments_pts (pts : (float * float) array) ~mx ~my =
  let n = Array.length pts in
  Profile.with_op "float_dot" @@ fun () ->
  let g = Runtime.block_grid n in
  let nb = g.Grain.num_blocks in
  let pxx = Float.Array.create nb and pxy = Float.Array.create nb in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
      Telemetry.incr_float_fast_path ();
      let lo, hi = Grain.bounds g j in
      let sxx = ref 0.0 and sxy = ref 0.0 in
      let i = ref lo in
      while !i < hi do
        Cancel.poll ();
        let stop = min hi (!i + 64) in
        for k = !i to stop - 1 do
          let x, y = Array.unsafe_get pts k in
          let dx = x -. mx in
          sxx := !sxx +. (dx *. dx);
          sxy := !sxy +. (dx *. (y -. my))
        done;
        i := stop
      done;
      Float.Array.unsafe_set pxx j !sxx;
      Float.Array.unsafe_set pxy j !sxy);
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for j = 0 to nb - 1 do
    sxx := !sxx +. Float.Array.unsafe_get pxx j;
    sxy := !sxy +. Float.Array.unsafe_get pxy j
  done;
  (!sxx, !sxy)

let fit_unboxed (pts : (float * float) array) : float * float =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Linefit.fit_unboxed: empty";
  let fn = float_of_int n in
  let sx, sy = sums_pts pts in
  let mx = sx /. fn and my = sy /. fn in
  let sxx, sxy = second_moments_pts pts ~mx ~my in
  let slope = sxy /. sxx in
  (slope, my -. (slope *. mx))

let reference (pts : (float * float) array) : float * float =
  let n = Array.length pts in
  let fn = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    pts;
  let mx = !sx /. fn and my = !sy /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. (y -. my)))
    pts;
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let generate ?(seed = 42) n =
  Bds_data.Gen.points_near_line ~seed ~slope:2.5 ~intercept:(-1.0) ~noise:0.5 n
