(** linefit: least-squares line through n points, in two fused
    map+reduce passes (means, then second moments). *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** (slope, intercept). *)
  val fit : (float * float) array -> float * float
end

module Array_version : sig val fit : (float * float) array -> float * float end
module Rad_version : sig val fit : (float * float) array -> float * float end
module Delay_version : sig val fit : (float * float) array -> float * float end

(** Unboxed-lane variant: the same two passes as [fit], but each is a
    dedicated monomorphic block loop over the tuple array — per element
    one tuple dereference and two unboxed field loads, split unboxed
    accumulators, nothing allocated (where the boxed pipeline allocates
    one result tuple per element per pass).  Results differ from the
    boxed pipeline only by summation-order rounding.  Raises
    [Invalid_argument] on an empty input. *)
val fit_unboxed : (float * float) array -> float * float

(** The column variant, for callers that already hold the coordinates
    as two [floatarray]s: means via {!Bds.Float_seq.sum}, second
    moments as one fused monomorphic pass. *)
val fit_xy : floatarray -> floatarray -> float * float

val reference : (float * float) array -> float * float

(** Points near y = 2.5x - 1 with small noise. *)
val generate : ?seed:int -> int -> (float * float) array
