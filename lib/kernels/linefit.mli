(** linefit: least-squares line through n points, in two fused
    map+reduce passes (means, then second moments). *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** (slope, intercept). *)
  val fit : (float * float) array -> float * float
end

module Array_version : sig val fit : (float * float) array -> float * float end
module Rad_version : sig val fit : (float * float) array -> float * float end
module Delay_version : sig val fit : (float * float) array -> float * float end

val reference : (float * float) array -> float * float

(** Points near y = 2.5x - 1 with small noise. *)
val generate : ?seed:int -> int -> (float * float) array
