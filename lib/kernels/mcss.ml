(* mcss: maximum contiguous subsequence sum, as one reduce over the
   classic 4-tuple monoid (total, best prefix, best suffix, best overall);
   the empty subsequence (sum 0) is allowed.  The array library
   materialises the n 4-tuples; the delayed libraries fuse the map into
   the reduce. *)

type summary = { total : int; prefix : int; suffix : int; best : int }

let unit_summary = { total = 0; prefix = 0; suffix = 0; best = 0 }

let of_element x =
  let m = max 0 x in
  { total = x; prefix = m; suffix = m; best = m }

let combine l r =
  {
    total = l.total + r.total;
    prefix = max l.prefix (l.total + r.prefix);
    suffix = max r.suffix (l.suffix + r.total);
    best = max (max l.best r.best) (l.suffix + r.prefix);
  }

module Make (S : Bds_seqs.Sig.S) = struct
  let mcss (a : int array) : int =
    let s = S.map of_element (S.of_array a) in
    (S.reduce combine unit_summary s).best
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* ------------------------------------------------------------------ *)
(* Float mcss: the float lane's flagship reduction (ISSUE 7).

   The monoid is the same 4-tuple, over floats.  The boxed baseline runs
   it through the generic delayed pipeline — one [fsummary] record
   allocation plus four boxed closure crossings per element.  The
   unboxed variant folds the monoid inside each block with four local
   [float ref] accumulators over a [floatarray] view (zero-copy in
   flat-float-array mode), allocating one [fsummary] per *block*; blocks
   run through [Runtime.apply_blocks] (grain policy, cancellation at the
   64-element cadence, per-block spans) and combine sequentially. *)

module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Grain = Bds_runtime.Grain
module Telemetry = Bds_runtime.Telemetry
module Float_seq = Bds.Float_seq

type fsummary = {
  ftotal : float;
  fprefix : float;
  fsuffix : float;
  fbest : float;
}

let unit_fsummary = { ftotal = 0.0; fprefix = 0.0; fsuffix = 0.0; fbest = 0.0 }

let of_element_f x =
  let m = Float.max 0.0 x in
  { ftotal = x; fprefix = m; fsuffix = m; fbest = m }

let combine_f l r =
  {
    ftotal = l.ftotal +. r.ftotal;
    fprefix = Float.max l.fprefix (l.ftotal +. r.fprefix);
    fsuffix = Float.max r.fsuffix (l.fsuffix +. r.ftotal);
    fbest = Float.max (Float.max l.fbest r.fbest) (l.fsuffix +. r.fprefix);
  }

(* Boxed baseline: the generic block-delayed pipeline ("delay" library),
   kept callable so the bench can measure the boxing cost directly. *)
let mcss_floats_boxed (a : float array) : float =
  let s = Bds.Seq.map of_element_f (Bds.Seq.of_array a) in
  (Bds.Seq.reduce combine_f unit_fsummary s).fbest

let mcss_floats (a : float array) : float =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let fa = Float_seq.floatarray_of_array a in
    let g = Runtime.block_grid n in
    let nb = g.Grain.num_blocks in
    let partial = Array.make nb unit_fsummary in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb (fun j ->
        Telemetry.incr_float_fast_path ();
        let lo, hi = Grain.bounds g j in
        (* [combine_f acc (of_element_f x)] unrolled over four unboxed
           accumulators; the record materialises once per block. *)
        let total = ref 0.0
        and prefix = ref 0.0
        and suffix = ref 0.0
        and best = ref 0.0 in
        let i = ref lo in
        while !i < hi do
          Cancel.poll ();
          let stop = min hi (!i + 64) in
          for k = !i to stop - 1 do
            let x = Float.Array.unsafe_get fa k in
            let m = Float.max 0.0 x in
            let prefix' = Float.max !prefix (!total +. m) in
            let best' = Float.max (Float.max !best m) (!suffix +. m) in
            let suffix' = Float.max m (!suffix +. x) in
            total := !total +. x;
            prefix := prefix';
            suffix := suffix';
            best := best'
          done;
          i := stop
        done;
        partial.(j) <-
          { ftotal = !total; fprefix = !prefix; fsuffix = !suffix; fbest = !best });
    let acc = ref unit_fsummary in
    for j = 0 to nb - 1 do
      acc := combine_f !acc partial.(j)
    done;
    !acc.fbest
  end

(* Kadane over floats (empty subsequence allowed), for checks. *)
let reference_floats (a : float array) : float =
  let best = ref 0.0 and cur = ref 0.0 in
  Array.iter
    (fun x ->
      cur := Float.max 0.0 (!cur +. x);
      if !cur > !best then best := !cur)
    a;
  !best

let generate_floats ?(seed = 42) n =
  Bds_data.Gen.floats ~seed ~lo:(-1000.0) ~hi:1000.0 n

(* Kadane's algorithm (empty subsequence allowed). *)
let reference (a : int array) : int =
  let best = ref 0 and cur = ref 0 in
  Array.iter
    (fun x ->
      cur := max 0 (!cur + x);
      if !cur > !best then best := !cur)
    a;
  !best

let generate ?(seed = 42) n = Bds_data.Gen.signed_ints ~seed ~bound:1000 n
