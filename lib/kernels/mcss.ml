(* mcss: maximum contiguous subsequence sum, as one reduce over the
   classic 4-tuple monoid (total, best prefix, best suffix, best overall);
   the empty subsequence (sum 0) is allowed.  The array library
   materialises the n 4-tuples; the delayed libraries fuse the map into
   the reduce. *)

type summary = { total : int; prefix : int; suffix : int; best : int }

let unit_summary = { total = 0; prefix = 0; suffix = 0; best = 0 }

let of_element x =
  let m = max 0 x in
  { total = x; prefix = m; suffix = m; best = m }

let combine l r =
  {
    total = l.total + r.total;
    prefix = max l.prefix (l.total + r.prefix);
    suffix = max r.suffix (l.suffix + r.total);
    best = max (max l.best r.best) (l.suffix + r.prefix);
  }

module Make (S : Bds_seqs.Sig.S) = struct
  let mcss (a : int array) : int =
    let s = S.map of_element (S.of_array a) in
    (S.reduce combine unit_summary s).best
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Kadane's algorithm (empty subsequence allowed). *)
let reference (a : int array) : int =
  let best = ref 0 and cur = ref 0 in
  Array.iter
    (fun x ->
      cur := max 0 (!cur + x);
      if !cur > !best then best := !cur)
    a;
  !best

let generate ?(seed = 42) n = Bds_data.Gen.signed_ints ~seed ~bound:1000 n
