(** mcss: maximum contiguous subsequence sum as a single reduce over the
    classic (total, prefix, suffix, best) monoid; the empty subsequence
    (sum 0) is allowed. *)

type summary = { total : int; prefix : int; suffix : int; best : int }

val unit_summary : summary
val of_element : int -> summary

(** Associative combine (with {!unit_summary} as identity). *)
val combine : summary -> summary -> summary

module Make (S : Bds_seqs.Sig.S) : sig
  val mcss : int array -> int
end

module Array_version : sig val mcss : int array -> int end
module Rad_version : sig val mcss : int array -> int end
module Delay_version : sig val mcss : int array -> int end

(** Kadane's algorithm. *)
val reference : int array -> int

val generate : ?seed:int -> int -> int array

(** {1 Float variant (unboxed lane)} *)

(** The same monoid over floats. *)
type fsummary = {
  ftotal : float;
  fprefix : float;
  fsuffix : float;
  fbest : float;
}

val unit_fsummary : fsummary
val of_element_f : float -> fsummary
val combine_f : fsummary -> fsummary -> fsummary

(** Per-block Kadane-monoid fold with four unboxed accumulators over a
    [floatarray] view of the input (one [fsummary] allocation per block,
    none per element).  Summation order differs from a sequential fold
    by block structure only — the monoid itself is order-sensitive to
    rounding, so compare against {!reference_floats} with a tolerance. *)
val mcss_floats : float array -> float

(** The generic boxed pipeline (one record + boxed closure crossings per
    element); kept callable so the bench measures the boxing cost. *)
val mcss_floats_boxed : float array -> float

(** Sequential Kadane over floats. *)
val reference_floats : float array -> float

val generate_floats : ?seed:int -> int -> float array
