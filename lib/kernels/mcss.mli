(** mcss: maximum contiguous subsequence sum as a single reduce over the
    classic (total, prefix, suffix, best) monoid; the empty subsequence
    (sum 0) is allowed. *)

type summary = { total : int; prefix : int; suffix : int; best : int }

val unit_summary : summary
val of_element : int -> summary

(** Associative combine (with {!unit_summary} as identity). *)
val combine : summary -> summary -> summary

module Make (S : Bds_seqs.Sig.S) : sig
  val mcss : int array -> int
end

module Array_version : sig val mcss : int array -> int end
module Rad_version : sig val mcss : int array -> int end
module Delay_version : sig val mcss : int array -> int end

(** Kadane's algorithm. *)
val reference : int array -> int

val generate : ?seed:int -> int -> int array
