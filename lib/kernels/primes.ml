(* primes: all primes below n, by a recursive blocked sieve (as in the
   paper's evaluation, following the PBBS style): recursively find the base
   primes below sqrt(n); generate all composite multiples as a flatten of
   per-prime arithmetic sequences; mark them in a flag table; and filter
   the survivors.

   With block-delayed sequences the flattened multiple sequence is never
   materialised (it is consumed by a blockwise iter), and the final filter
   packs within blocks only. *)

module Make (S : Bds_seqs.Sig.S) = struct
  let rec primes (n : int) : int array =
    if n <= 2 then [||]
    else if n <= 32 then begin
      (* Sequential base case by trial division. *)
      let is_prime k =
        let rec go d = d * d > k || (k mod d <> 0 && go (d + 1)) in
        k >= 2 && go 2
      in
      Array.of_list (List.filter is_prime (List.init n Fun.id))
    end
    else begin
      let sqrt_n = int_of_float (Float.sqrt (float_of_int (n - 1))) in
      let base = primes (sqrt_n + 1) in
      let flags = Bytes.make n '\001' in
      Bytes.set flags 0 '\000';
      Bytes.set flags 1 '\000';
      (* Multiples of each base prime p: 2p, 3p, ..., < n. *)
      let multiples =
        S.flatten
          (S.map
             (fun p ->
               let count = ((n - 1) / p) - 1 in
               S.tabulate count (fun j -> (j + 2) * p))
             (S.of_array base))
      in
      (* Benign write-write races: every writer stores the same byte. *)
      S.iter (fun m -> Bytes.unsafe_set flags m '\000') multiples;
      S.to_array
        (S.filter_op
           (fun i -> if Bytes.unsafe_get flags i = '\001' then Some i else None)
           (S.iota n))
    end
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Sequential Eratosthenes reference. *)
let reference n =
  if n <= 2 then [||]
  else begin
    let flags = Array.make n true in
    flags.(0) <- false;
    flags.(1) <- false;
    let i = ref 2 in
    while !i * !i < n do
      if flags.(!i) then begin
        let j = ref (!i * !i) in
        while !j < n do
          flags.(!j) <- false;
          j := !j + !i
        done
      end;
      incr i
    done;
    let buf = ref [] in
    for k = n - 1 downto 0 do
      if flags.(k) then buf := k :: !buf
    done;
    Array.of_list !buf
  end
