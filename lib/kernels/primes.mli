(** primes: all primes below n by a recursive blocked sieve — base primes
    below sqrt(n) by recursion, composite marking via a flattened
    sequence of multiples, survivors via filter.  flatten and filter fuse
    under block-delayed sequences. *)

module Make (S : Bds_seqs.Sig.S) : sig
  (** Ascending array of all primes < n. *)
  val primes : int -> int array
end

module Array_version : sig val primes : int -> int array end
module Rad_version : sig val primes : int -> int array end
module Delay_version : sig val primes : int -> int array end

(** Sequential Eratosthenes reference. *)
val reference : int -> int array
