(* quickhull: 2D convex hull of points uniform in a disc.

   Classic recursive structure: find the x-extremes, split into the upper
   and lower half-planes by filter, then recurse — each step finds the
   farthest point from the chord (a fused map+reduce) and filters the
   candidates into two subproblems.  Recursive calls run in parallel via
   the runtime's fork-join.  Filter results feed several consumers, so we
   [force] them (the cost-semantics-guided choice discussed in §3/§5). *)

type point = float * float

(* Twice the signed area of (p, q, r): positive iff r is left of p->q. *)
let cross ((px, py) : point) ((qx, qy) : point) ((rx, ry) : point) =
  ((qx -. px) *. (ry -. py)) -. ((qy -. py) *. (rx -. px))

module Make (S : Bds_seqs.Sig.S) = struct
  (* Hull points strictly left of p->q, from candidates [s], in
     counter-clockwise order between p (inclusive) and q (exclusive). *)
  let rec hull_side (p : point) (q : point) (s : point S.t) : point list =
    if S.length s = 0 then [ p ]
    else begin
      let far =
        S.reduce
          (fun (d1, r1) (d2, r2) -> if d1 >= d2 then (d1, r1) else (d2, r2))
          (neg_infinity, p)
          (S.map (fun r -> (cross p q r, r)) s)
      in
      let m = snd far in
      let left = S.force (S.filter (fun r -> cross p m r > 0.0) s) in
      let right = S.force (S.filter (fun r -> cross m q r > 0.0) s) in
      let a, b =
        Bds_runtime.Runtime.par
          (fun () -> hull_side p m left)
          (fun () -> hull_side m q right)
      in
      a @ b
    end

  (* Full hull in counter-clockwise order. *)
  let hull (pts : point array) : point list =
    if Array.length pts <= 2 then Array.to_list pts
    else begin
      let s = S.of_array pts in
      let minmax (p1 : point) (p2 : point) =
        if fst p1 < fst p2 || (fst p1 = fst p2 && snd p1 < snd p2) then (p1, p2)
        else (p2, p1)
      in
      let pmin =
        S.reduce (fun a b -> fst (minmax a b)) (infinity, infinity) s
      in
      let pmax =
        S.reduce
          (fun a b -> snd (minmax a b))
          (neg_infinity, neg_infinity)
          s
      in
      let upper = S.force (S.filter (fun r -> cross pmin pmax r > 0.0) s) in
      let lower = S.force (S.filter (fun r -> cross pmax pmin r > 0.0) s) in
      let a, b =
        Bds_runtime.Runtime.par
          (fun () -> hull_side pmin pmax upper)
          (fun () -> hull_side pmax pmin lower)
      in
      a @ b
    end
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Sequential Andrew's monotone chain, for validation. *)
let reference (pts : point array) : point list =
  let sorted = Array.copy pts in
  Array.sort compare sorted;
  let build fold =
    let chain = ref [] in
    fold (fun p ->
        let rec pop () =
          match !chain with
          | a :: b :: _ when cross b a p <= 0.0 ->
            chain := List.tl !chain;
            pop ()
          | _ -> ()
        in
        pop ();
        chain := p :: !chain);
    !chain
  in
  if Array.length sorted <= 2 then Array.to_list sorted
  else begin
    let lower = build (fun f -> Array.iter f sorted) in
    let upper =
      build (fun f ->
          for i = Array.length sorted - 1 downto 0 do
            f sorted.(i)
          done)
    in
    (* Each chain includes both endpoints; drop one endpoint from each. *)
    List.tl (List.rev lower) @ List.tl (List.rev upper)
  end

let generate ?(seed = 42) n = Bds_data.Gen.points_in_circle ~seed n
