(** quickhull: 2D convex hull by the classic recursive algorithm —
    farthest-point selection (fused map+reduce) and two filters per
    level, with the recursive calls forked in parallel. *)

type point = float * float

(** Twice the signed area of (p,q,r): positive iff r is strictly left of
    the directed line p->q. *)
val cross : point -> point -> point -> float

module Make (S : Bds_seqs.Sig.S) : sig
  (** Hull vertices in counter-clockwise order. *)
  val hull : point array -> point list
end

module Array_version : sig val hull : point array -> point list end
module Rad_version : sig val hull : point array -> point list end
module Delay_version : sig val hull : point array -> point list end

(** Andrew's monotone chain (sequential), for validation. *)
val reference : point array -> point list

(** Uniform points over the unit disc. *)
val generate : ?seed:int -> int -> point array
