(* ray casting (extension): the paper notes block-delayed sequences
   improved PBBS's ray-triangle intersection benchmark.  This kernel
   shoots R rays at T triangles and, for each ray, finds the nearest hit
   by Möller-Trumbore intersection — an outer tabulate over rays with an
   inner map+reduce over triangles.  The array library materialises a
   T-element distance array per ray; index fusion eliminates it (the
   sparse-mxv access pattern, but compute-dense). *)

type vec = { x : float; y : float; z : float }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

type triangle = { v0 : vec; v1 : vec; v2 : vec }
type ray = { origin : vec; dir : vec }

let epsilon = 1e-9

(* Möller-Trumbore: distance along [r] to the triangle, or infinity. *)
let intersect (r : ray) (t : triangle) : float =
  let e1 = sub t.v1 t.v0 in
  let e2 = sub t.v2 t.v0 in
  let h = cross r.dir e2 in
  let a = dot e1 h in
  if Float.abs a < epsilon then infinity
  else begin
    let f = 1.0 /. a in
    let s = sub r.origin t.v0 in
    let u = f *. dot s h in
    if u < 0.0 || u > 1.0 then infinity
    else begin
      let q = cross s e1 in
      let v = f *. dot r.dir q in
      if v < 0.0 || u +. v > 1.0 then infinity
      else begin
        let d = f *. dot e2 q in
        if d > epsilon then d else infinity
      end
    end
  end

module Make (S : Bds_seqs.Sig.S) = struct
  (* For each ray, the distance to its nearest triangle (infinity if it
     misses everything). *)
  let cast (triangles : triangle array) (rays : ray array) : float array =
    let nt = Array.length triangles in
    S.to_array
      (S.tabulate (Array.length rays) (fun i ->
           let r = rays.(i) in
           S.reduce Float.min infinity
             (S.tabulate nt (fun j -> intersect r triangles.(j)))))

  (* Summary used by the benchmark: (number of hits, sum of distances). *)
  let cast_summary triangles rays =
    let ds = cast triangles rays in
    Array.fold_left
      (fun (hits, total) d ->
        if d < infinity then (hits + 1, total +. d) else (hits, total))
      (0, 0.0) ds
end

(* First-class-module view of a version, for the harness. *)
module type VERSION = sig
  val cast : triangle array -> ray array -> float array
  val cast_summary : triangle array -> ray array -> int * float
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference (triangles : triangle array) (rays : ray array) : float array =
  Array.map
    (fun r ->
      Array.fold_left (fun acc t -> Float.min acc (intersect r t)) infinity triangles)
    rays

let generate ?(seed = 42) ~triangles ~rays () =
  let f s i = Bds_data.Splitmix.float_at ~seed:s i in
  let tri i =
    (* A small triangle around a random centre in the unit cube. *)
    let c = { x = f (seed + 1) i; y = f (seed + 2) i; z = f (seed + 3) i } in
    let jitter s k = 0.2 *. (f s (i + k) -. 0.5) in
    {
      v0 = c;
      v1 = { x = c.x +. jitter (seed + 4) 0; y = c.y +. jitter (seed + 5) 0; z = c.z +. jitter (seed + 6) 0 };
      v2 = { x = c.x +. jitter (seed + 7) 0; y = c.y +. jitter (seed + 8) 0; z = c.z +. jitter (seed + 9) 0 };
    }
  in
  let ray i =
    let o = { x = 0.5 +. (0.1 *. (f (seed + 10) i -. 0.5)); y = 0.5; z = -1.0 } in
    let target = { x = f (seed + 11) i; y = f (seed + 12) i; z = f (seed + 13) i } in
    { origin = o; dir = sub target o }
  in
  (Array.init triangles tri, Array.init rays ray)
