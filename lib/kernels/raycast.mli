(** ray casting (extension; mentioned in the paper's §1 as the PBBS
    ray-triangle intersection application).  Each ray's nearest hit over
    all triangles is a tabulate fused into a min-reduce (Möller-Trumbore
    intersection). *)

type vec = { x : float; y : float; z : float }

val sub : vec -> vec -> vec
val cross : vec -> vec -> vec
val dot : vec -> vec -> float

type triangle = { v0 : vec; v1 : vec; v2 : vec }
type ray = { origin : vec; dir : vec }

(** Distance along the ray to the triangle, or [infinity] on a miss. *)
val intersect : ray -> triangle -> float

module type VERSION = sig
  (** Per-ray nearest-hit distance ([infinity] = miss). *)
  val cast : triangle array -> ray array -> float array

  (** (number of hitting rays, sum of hit distances). *)
  val cast_summary : triangle array -> ray array -> int * float
end

module Make (S : Bds_seqs.Sig.S) : VERSION
module Array_version : VERSION
module Rad_version : VERSION
module Delay_version : VERSION

val reference : triangle array -> ray array -> float array

(** Random small triangles in the unit cube and rays shot at it from
    z = -1. *)
val generate :
  ?seed:int -> triangles:int -> rays:int -> unit -> triangle array * ray array
