(* sparse-mxv: sparse matrix-vector product over CSR.  The outer tabulate
   is parallel over rows; each row's dot product is a tabulate fused into
   a reduce.  The array library materialises a (tiny) temporary per row —
   the "around 100 items big" arrays the paper mentions: little space
   impact, but extra writes and allocation that delaying removes. *)

module Gen = Bds_data.Gen

module Make (S : Bds_seqs.Sig.S) = struct
  let mxv (m : Gen.csr_matrix) (x : float array) : float array =
    let rows = Array.length m.row_offsets - 1 in
    S.to_array
      (S.tabulate rows (fun r ->
           let lo = m.row_offsets.(r) in
           let len = m.row_offsets.(r + 1) - lo in
           S.reduce ( +. ) 0.0
             (S.tabulate len (fun k ->
                  m.values.(lo + k) *. x.(m.col_index.(lo + k))))))
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference (m : Gen.csr_matrix) (x : float array) : float array =
  let rows = Array.length m.row_offsets - 1 in
  Array.init rows (fun r ->
      let acc = ref 0.0 in
      for k = m.row_offsets.(r) to m.row_offsets.(r + 1) - 1 do
        acc := !acc +. (m.values.(k) *. x.(m.col_index.(k)))
      done;
      !acc)

let generate ?(seed = 42) ~rows ~nnz_per_row () =
  let m = Gen.sparse_matrix ~seed ~rows ~cols:rows ~nnz_per_row () in
  let x = Gen.floats ~seed:(seed + 9) rows in
  (m, x)
