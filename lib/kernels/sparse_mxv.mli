(** sparse-mxv: CSR sparse matrix-vector product.  The inner dot product
    is a tabulate fused into a reduce; the array library materialises a
    tiny temporary per row (the paper's "around 100 items big" arrays). *)

module Make (S : Bds_seqs.Sig.S) : sig
  val mxv : Bds_data.Gen.csr_matrix -> float array -> float array
end

module Array_version : sig
  val mxv : Bds_data.Gen.csr_matrix -> float array -> float array
end

module Rad_version : sig
  val mxv : Bds_data.Gen.csr_matrix -> float array -> float array
end

module Delay_version : sig
  val mxv : Bds_data.Gen.csr_matrix -> float array -> float array
end

val reference : Bds_data.Gen.csr_matrix -> float array -> float array

(** Square matrix with ~[nnz_per_row] nonzeros per row, plus a matching
    dense vector. *)
val generate :
  ?seed:int -> rows:int -> nnz_per_row:int -> unit ->
  Bds_data.Gen.csr_matrix * float array
