(* tokens: split a character buffer into maximal runs of non-whitespace.

   Token starts and token ends are found with filters over the index
   space; zipping them yields (start, length) descriptors.  With
   block-delayed sequences the two filtered index sequences stay as BIDs
   and fuse with the zip and the final consumer. *)

let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

module Make (S : Bds_seqs.Sig.S) = struct
  (* Returns (number of tokens, sum of token lengths). *)
  let tokens (text : Bytes.t) : int * int =
    let n = Bytes.length text in
    let tok i = not (is_space (Bytes.unsafe_get text i)) in
    let starts =
      S.filter (fun i -> tok i && (i = 0 || not (tok (i - 1)))) (S.iota n)
    in
    let ends =
      S.filter
        (fun i -> i > 0 && tok (i - 1) && (i = n || not (tok i)))
        (S.tabulate (n + 1) Fun.id)
    in
    let lengths = S.zip_with (fun s e -> e - s) starts ends in
    let count = S.length lengths in
    let total = S.reduce ( + ) 0 lengths in
    (count, total)

  (* Materialised variant for applications that need the tokens. *)
  let token_spans (text : Bytes.t) : (int * int) array =
    let n = Bytes.length text in
    let tok i = not (is_space (Bytes.unsafe_get text i)) in
    let starts =
      S.filter (fun i -> tok i && (i = 0 || not (tok (i - 1)))) (S.iota n)
    in
    let ends =
      S.filter
        (fun i -> i > 0 && tok (i - 1) && (i = n || not (tok i)))
        (S.tabulate (n + 1) Fun.id)
    in
    S.to_array (S.zip_with (fun s e -> (s, e - s)) starts ends)
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

(* Sequential reference. *)
let reference (text : Bytes.t) : int * int =
  let n = Bytes.length text in
  let count = ref 0 and total = ref 0 and in_tok = ref false in
  for i = 0 to n - 1 do
    let t = not (is_space (Bytes.get text i)) in
    if t then begin
      if not !in_tok then incr count;
      incr total
    end;
    in_tok := t
  done;
  (!count, !total)

let generate ?(seed = 42) n = Bds_data.Gen.text ~seed n
