(** tokens: split a character buffer into maximal non-whitespace runs,
    via two filters over the index space zipped together — pure BID
    fusion under block-delayed sequences. *)

val is_space : char -> bool

module Make (S : Bds_seqs.Sig.S) : sig
  (** (number of tokens, sum of token lengths). *)
  val tokens : Bytes.t -> int * int

  (** (start, length) of each token, in order. *)
  val token_spans : Bytes.t -> (int * int) array
end

module Array_version : sig
  val tokens : Bytes.t -> int * int
  val token_spans : Bytes.t -> (int * int) array
end

module Rad_version : sig
  val tokens : Bytes.t -> int * int
  val token_spans : Bytes.t -> (int * int) array
end

module Delay_version : sig
  val tokens : Bytes.t -> int * int
  val token_spans : Bytes.t -> (int * int) array
end

val reference : Bytes.t -> int * int
val generate : ?seed:int -> int -> Bytes.t
