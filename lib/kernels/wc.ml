(* wc: count lines, words and bytes of a character buffer (cf. Unix wc).
   One fused map+reduce: each index contributes (is-newline, is-word-start)
   and the reduce sums componentwise.  The array library materialises the
   n pair tuples. *)

let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

module Make (S : Bds_seqs.Sig.S) = struct
  (* Returns (lines, words, bytes). *)
  let wc (text : Bytes.t) : int * int * int =
    let n = Bytes.length text in
    let contrib i =
      let c = Bytes.unsafe_get text i in
      let nl = if c = '\n' then 1 else 0 in
      let ws =
        if (not (is_space c)) && (i = 0 || is_space (Bytes.unsafe_get text (i - 1)))
        then 1
        else 0
      in
      (nl, ws)
    in
    let lines, words =
      S.reduce
        (fun (a, b) (c, d) -> (a + c, b + d))
        (0, 0)
        (S.tabulate n contrib)
    in
    (lines, words, n)
end

module Array_version = Make (Bds_seqs.Impl_array)
module Rad_version = Make (Bds_seqs.Impl_rad)
module Delay_version = Make (Bds_seqs.Impl_delay)

let reference (text : Bytes.t) : int * int * int =
  let n = Bytes.length text in
  let lines = ref 0 and words = ref 0 and in_word = ref false in
  for i = 0 to n - 1 do
    let c = Bytes.get text i in
    if c = '\n' then incr lines;
    let w = not (is_space c) in
    if w && not !in_word then incr words;
    in_word := w
  done;
  (!lines, !words, n)

let generate ?(seed = 42) n = Bds_data.Gen.text ~seed n
