(** wc: count lines, words and bytes (cf. Unix wc) in one fused
    map+reduce over per-character contributions. *)

val is_space : char -> bool

module Make (S : Bds_seqs.Sig.S) : sig
  (** (lines, words, bytes). *)
  val wc : Bytes.t -> int * int * int
end

module Array_version : sig val wc : Bytes.t -> int * int * int end
module Rad_version : sig val wc : Bytes.t -> int * int * int end
module Delay_version : sig val wc : Bytes.t -> int * int * int end

val reference : Bytes.t -> int * int * int
val generate : ?seed:int -> int -> Bytes.t
