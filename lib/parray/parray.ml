(* Eager parallel arrays: the paper's baseline library "A" (no fusion) and
   the internal array substrate of Figure 7.  Every operation materialises
   its result.  reduce/scan/filter/flatten use the standard block-based
   parallel implementations described in §2.2. *)

module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain

(* The block grid for every block-based operation below comes from the
   unified granularity layer: one policy (Bds_runtime.Grain, surfaced as
   Bds.Block) decides the grid for Parray, Rad and Seq alike. *)
let grid n = Runtime.block_grid n

let unopt = function Some v -> v | None -> assert false

let length = Array.length

let tabulate n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    Runtime.parallel_for 1 n (fun i -> Array.unsafe_set a i (f i));
    a
  end

let iota n = tabulate n (fun i -> i)

let map f a = tabulate (Array.length a) (fun i -> f (Array.unsafe_get a i))

let mapi f a = tabulate (Array.length a) (fun i -> f i (Array.unsafe_get a i))

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Parray.map2";
  tabulate (Array.length a) (fun i ->
      f (Array.unsafe_get a i) (Array.unsafe_get b i))

let zip a b = map2 (fun x y -> (x, y)) a b

let reduce f z a =
  Runtime.parallel_for_reduce 0 (Array.length a) ~combine:f ~init:z (fun i ->
      Array.unsafe_get a i)

(* Sequential exclusive scan, used on the (small) per-block sums. *)
let scan_seq f z a =
  let n = Array.length a in
  let out = Array.make n z in
  let acc = ref z in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := f !acc a.(i)
  done;
  (out, !acc)

(* Phase 1 of scan/reduce-style operations: per-block sums, seeded from
   each block's first element (blocks are never empty), so the caller's
   seed is combined exactly once in phase 2 and needs no identity
   property.  Runs as one heavy block body per grid block — no witness
   pre-evaluation, so block 0 participates in the parallel phase too. *)
let block_sums f a (g : Grain.grid) =
  let sums = Array.make g.Grain.num_blocks None in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
    (fun b ->
      let lo, hi = Grain.bounds g b in
      let acc = ref (Array.unsafe_get a lo) in
      for i = lo + 1 to hi - 1 do
        acc := f !acc (Array.unsafe_get a i)
      done;
      sums.(b) <- Some !acc);
  Array.map unopt sums

(* Three-phase block-based exclusive scan (Figure 2). *)
let scan f z a =
  let n = Array.length a in
  if n = 0 then ([||], z)
  else begin
    let g = grid n in
    (* Phase 1: per-block sums. *)
    let sums = block_sums f a g in
    (* Phase 2: scan the block sums (sequential; nb is small). *)
    let offsets, total = scan_seq f z sums in
    (* Phase 3: re-scan each block from its offset. *)
    let out = Array.make n z in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
      (fun b ->
        let lo, hi = Grain.bounds g b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          Array.unsafe_set out i !acc;
          acc := f !acc (Array.unsafe_get a i)
        done);
    (out, total)
  end

(* Inclusive variant (same structure). *)
let scan_incl f z a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let g = grid n in
    let sums = block_sums f a g in
    let offsets, _ = scan_seq f z sums in
    let out = Array.make n z in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
      (fun b ->
        let lo, hi = Grain.bounds g b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          acc := f !acc (Array.unsafe_get a i);
          Array.unsafe_set out i !acc
        done);
    out
  end

(* Copy [packed.(b)] blocks into one contiguous array. *)
let concat_packed (packed : 'a array array) =
  let nb = Array.length packed in
  let counts = Array.map Array.length packed in
  let offsets, total = scan_seq ( + ) 0 counts in
  if total = 0 then [||]
  else begin
    (* Witness element for allocation. *)
    let rec first b = if Array.length packed.(b) > 0 then packed.(b).(0) else first (b + 1) in
    let out = Array.make total (first 0) in
    Runtime.apply_blocks
      ~bounds:(fun b -> (offsets.(b), offsets.(b) + Array.length packed.(b)))
      ~nb
      (fun b -> Array.blit packed.(b) 0 out offsets.(b) (Array.length packed.(b)));
    out
  end

(* Block-wise pack shared by filter / filter_op. *)
let pack_blocks (g : Grain.grid) (pack : int -> int -> 'b array) =
  let packed = Array.make g.Grain.num_blocks [||] in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
    (fun b ->
      let lo, hi = Grain.bounds g b in
      packed.(b) <- pack lo hi);
  packed

(* Two-phase block-based filter (§2.2): pack within blocks, then flatten. *)
let filter p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let packed =
      pack_blocks (grid n) (fun lo hi ->
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            let v = Array.unsafe_get a i in
            if p v then Bds_stream.Buffer_ext.push buf v
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    concat_packed packed
  end

let filter_op p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let packed =
      pack_blocks (grid n) (fun lo hi ->
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            match p (Array.unsafe_get a i) with
            | Some w -> Bds_stream.Buffer_ext.push buf w
            | None -> ()
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    concat_packed packed
  end

(* Eager flatten: scan of lengths for offsets, then parallel copy. *)
let flatten (aa : 'a array array) =
  let m = Array.length aa in
  if m = 0 then [||]
  else begin
    let lengths = map Array.length aa in
    let offsets, total = scan ( + ) 0 lengths in
    if total = 0 then [||]
    else begin
      let rec first j = if Array.length aa.(j) > 0 then aa.(j).(0) else first (j + 1) in
      let out = Array.make total (first 0) in
      Runtime.apply_blocks
        ~bounds:(fun j -> (offsets.(j), offsets.(j) + Array.length aa.(j)))
        ~nb:m
        (fun j -> Array.blit aa.(j) 0 out offsets.(j) (Array.length aa.(j)));
      out
    end
  end

let rev a =
  let n = Array.length a in
  tabulate n (fun i -> Array.unsafe_get a (n - 1 - i))

let append a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) a.(0) in
    Runtime.run (fun () ->
        let _ =
          Runtime.par
            (fun () -> Array.blit a 0 out 0 na)
            (fun () -> Array.blit b 0 out na nb)
        in
        ());
    out
  end

let equal eq a b =
  Array.length a = Array.length b
  && Runtime.parallel_for_reduce 0 (Array.length a) ~combine:( && ) ~init:true
       (fun i -> eq a.(i) b.(i))
