(* Eager parallel arrays: the paper's baseline library "A" (no fusion) and
   the internal array substrate of Figure 7.  Every operation materialises
   its result.  reduce/scan/filter/flatten use the standard block-based
   parallel implementations described in §2.2. *)

module Runtime = Bds_runtime.Runtime

let num_blocks n =
  if n = 0 then 0
  else begin
    let w = Runtime.num_workers () in
    let target = 8 * w in
    (* Blocks of at least 1024 elements, except for tiny inputs. *)
    let nb = min target (max 1 (n / 1024)) in
    min n (max 1 nb)
  end

let block_bounds n nb b =
  let bs = (n + nb - 1) / nb in
  let lo = b * bs in
  let hi = min n (lo + bs) in
  (lo, hi)

let length = Array.length

let tabulate n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    Runtime.parallel_for 1 n (fun i -> Array.unsafe_set a i (f i));
    a
  end

let iota n = tabulate n (fun i -> i)

let map f a = tabulate (Array.length a) (fun i -> f (Array.unsafe_get a i))

let mapi f a = tabulate (Array.length a) (fun i -> f i (Array.unsafe_get a i))

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Parray.map2";
  tabulate (Array.length a) (fun i ->
      f (Array.unsafe_get a i) (Array.unsafe_get b i))

let zip a b = map2 (fun x y -> (x, y)) a b

let reduce f z a =
  Runtime.parallel_for_reduce 0 (Array.length a) ~combine:f ~init:z (fun i ->
      Array.unsafe_get a i)

(* Sequential exclusive scan, used on the (small) per-block sums. *)
let scan_seq f z a =
  let n = Array.length a in
  let out = Array.make n z in
  let acc = ref z in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := f !acc a.(i)
  done;
  (out, !acc)

(* Per-block sum seeded from the block's first element (blocks are never
   empty), so the caller's seed is combined exactly once in phase 2 and
   needs no identity property. *)
let block_sum f a n nb b =
  let lo, hi = block_bounds n nb b in
  let acc = ref (Array.unsafe_get a lo) in
  for i = lo + 1 to hi - 1 do
    acc := f !acc (Array.unsafe_get a i)
  done;
  !acc

(* Three-phase block-based exclusive scan (Figure 2). *)
let scan f z a =
  let n = Array.length a in
  if n = 0 then ([||], z)
  else begin
    let nb = num_blocks n in
    (* Phase 1: per-block sums. *)
    let sums = tabulate nb (block_sum f a n nb) in
    (* Phase 2: scan the block sums (sequential; nb is small). *)
    let offsets, total = scan_seq f z sums in
    (* Phase 3: re-scan each block from its offset. *)
    let out = Array.make n z in
    Runtime.apply nb (fun b ->
        let lo, hi = block_bounds n nb b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          Array.unsafe_set out i !acc;
          acc := f !acc (Array.unsafe_get a i)
        done);
    (out, total)
  end

(* Inclusive variant (same structure). *)
let scan_incl f z a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let nb = num_blocks n in
    let sums = tabulate nb (block_sum f a n nb) in
    let offsets, _ = scan_seq f z sums in
    let out = Array.make n z in
    Runtime.apply nb (fun b ->
        let lo, hi = block_bounds n nb b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          acc := f !acc (Array.unsafe_get a i);
          Array.unsafe_set out i !acc
        done);
    out
  end

(* Copy [packed.(b)] blocks into one contiguous array. *)
let concat_packed (packed : 'a array array) =
  let nb = Array.length packed in
  let counts = Array.map Array.length packed in
  let offsets, total = scan_seq ( + ) 0 counts in
  if total = 0 then [||]
  else begin
    (* Witness element for allocation. *)
    let rec first b = if Array.length packed.(b) > 0 then packed.(b).(0) else first (b + 1) in
    let out = Array.make total (first 0) in
    Runtime.apply nb (fun b ->
        Array.blit packed.(b) 0 out offsets.(b) (Array.length packed.(b)));
    out
  end

(* Two-phase block-based filter (§2.2): pack within blocks, then flatten. *)
let filter p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let nb = num_blocks n in
    let packed =
      tabulate nb (fun b ->
          let lo, hi = block_bounds n nb b in
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            let v = Array.unsafe_get a i in
            if p v then Bds_stream.Buffer_ext.push buf v
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    concat_packed packed
  end

let filter_op p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let nb = num_blocks n in
    let packed =
      tabulate nb (fun b ->
          let lo, hi = block_bounds n nb b in
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            match p (Array.unsafe_get a i) with
            | Some w -> Bds_stream.Buffer_ext.push buf w
            | None -> ()
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    concat_packed packed
  end

(* Eager flatten: scan of lengths for offsets, then parallel copy. *)
let flatten (aa : 'a array array) =
  let m = Array.length aa in
  if m = 0 then [||]
  else begin
    let lengths = map Array.length aa in
    let offsets, total = scan ( + ) 0 lengths in
    if total = 0 then [||]
    else begin
      let rec first j = if Array.length aa.(j) > 0 then aa.(j).(0) else first (j + 1) in
      let out = Array.make total (first 0) in
      Runtime.apply m (fun j -> Array.blit aa.(j) 0 out offsets.(j) (Array.length aa.(j)));
      out
    end
  end

let rev a =
  let n = Array.length a in
  tabulate n (fun i -> Array.unsafe_get a (n - 1 - i))

let append a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) a.(0) in
    Runtime.run (fun () ->
        let _ =
          Runtime.par
            (fun () -> Array.blit a 0 out 0 na)
            (fun () -> Array.blit b 0 out na nb)
        in
        ());
    out
  end

let equal eq a b =
  Array.length a = Array.length b
  && Runtime.parallel_for_reduce 0 (Array.length a) ~combine:( && ) ~init:true
       (fun i -> eq a.(i) b.(i))
