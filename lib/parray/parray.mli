(** Eager parallel arrays — the paper's baseline library {b A} (no fusion)
    and the internal array substrate of Figure 7.

    Every operation materialises its result array.  [reduce], [scan],
    [filter] and [flatten] use the standard block-based parallel
    implementations of §2.2.  The block grid comes from the unified
    granularity layer ({!Bds_runtime.Grain}, surfaced as [Bds.Block]):
    this module has no block-size heuristic of its own, and each block
    phase runs through [Runtime.apply_blocks]. *)

val length : 'a array -> int

(** [tabulate n f] evaluates [f i] for each index, in parallel.  [f 0] is
    evaluated exactly once (it doubles as the allocation witness). *)
val tabulate : int -> (int -> 'a) -> 'a array

(** [iota n] = [[|0; 1; ...; n-1|]]. *)
val iota : int -> int array

val map : ('a -> 'b) -> 'a array -> 'b array
val mapi : (int -> 'a -> 'b) -> 'a array -> 'b array
val map2 : ('a -> 'b -> 'c) -> 'a array -> 'b array -> 'c array
val zip : 'a array -> 'b array -> ('a * 'b) array

(** [reduce f z a]: [f] must be associative with unit [z]. *)
val reduce : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a

(** Three-phase block-based exclusive scan (Figure 2): returns the array of
    prefix combinations (element [i] combines [z] with inputs [0..i-1]) and
    the total. *)
val scan : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array * 'a

(** Inclusive scan: element [i] combines [z] with inputs [0..i]. *)
val scan_incl : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array

(** Sequential exclusive scan (used on small per-block arrays). *)
val scan_seq : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array * 'a

(** Two-phase block-based filter (§2.2). *)
val filter : ('a -> bool) -> 'a array -> 'a array

(** filterOp / mapPartial: keep the [Some] images, preserving order. *)
val filter_op : ('a -> 'b option) -> 'a array -> 'b array

(** Eager flatten: offsets by scan over lengths, then parallel copy. *)
val flatten : 'a array array -> 'a array

val rev : 'a array -> 'a array
val append : 'a array -> 'a array -> 'a array
val equal : ('a -> 'a -> bool) -> 'a array -> 'a array -> bool
