(* The paper's baseline library "R": random-access-delayed sequences only.
   tabulate/map/zip are delayed (index fusion, as in Repa); every operation
   whose output cannot be random-access-delayed (scan, filter, flatten)
   materialises an eager array, which is then wrapped back up as a RAD.

   A RAD is a length plus an index function over logical indices
   [0 .. len-1]; the paper's explicit offset field is folded into the
   closure. *)

module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain

type 'a t = { len : int; get : int -> 'a }

(* Block grid from the unified granularity layer (shared with Parray and
   Seq); per-block phases run as heavy block bodies via
   [Runtime.apply_blocks]. *)
let grid n = Runtime.block_grid n

let unopt = function Some v -> v | None -> assert false

(* Per-block sums of [s.get] over the grid, seeded from each block's
   first element (no identity requirement on the caller's seed). *)
let block_sums f (s : 'a t) (g : Grain.grid) =
  let sums = Array.make g.Grain.num_blocks None in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
    (fun b ->
      let lo, hi = Grain.bounds g b in
      let acc = ref (s.get lo) in
      for i = lo + 1 to hi - 1 do
        acc := f !acc (s.get i)
      done;
      sums.(b) <- Some !acc);
  Array.map unopt sums

let length s = s.len

let get s i =
  if i < 0 || i >= s.len then invalid_arg "Rad.get: index out of bounds";
  s.get i

let empty = { len = 0; get = (fun _ -> invalid_arg "Rad.empty") }

let tabulate n f =
  if n < 0 then invalid_arg "Rad.tabulate";
  { len = n; get = f }

let of_array a = { len = Array.length a; get = Array.unsafe_get a }

let to_array s = Bds_parray.Parray.tabulate s.len s.get

let force s = of_array (to_array s)

let map g s = { len = s.len; get = (fun i -> g (s.get i)) }

let mapi g s = { len = s.len; get = (fun i -> g i (s.get i)) }

let zip s1 s2 =
  if s1.len <> s2.len then invalid_arg "Rad.zip: length mismatch";
  { len = s1.len; get = (fun i -> (s1.get i, s2.get i)) }

let zip_with f s1 s2 =
  if s1.len <> s2.len then invalid_arg "Rad.zip_with: length mismatch";
  { len = s1.len; get = (fun i -> f (s1.get i) (s2.get i)) }

let slice s off len =
  if off < 0 || len < 0 || off + len > s.len then invalid_arg "Rad.slice";
  { len; get = (fun i -> s.get (off + i)) }

let take s n = slice s 0 n
let drop s n = slice s n (s.len - n)

let rev s = { len = s.len; get = (fun i -> s.get (s.len - 1 - i)) }

let append s1 s2 =
  {
    len = s1.len + s2.len;
    get = (fun i -> if i < s1.len then s1.get i else s2.get (i - s1.len));
  }

let iota n = tabulate n (fun i -> i)

(* Fused reduce: reads the input through the index function; no
   intermediate array. *)
let reduce f z s =
  Runtime.parallel_for_reduce 0 s.len ~combine:f ~init:z s.get

let iter f s = Runtime.parallel_for 0 s.len (fun i -> f (s.get i))

let iteri f s = Runtime.parallel_for 0 s.len (fun i -> f i (s.get i))

(* scan fuses with its (delayed) input but materialises its output. *)
let scan f z s =
  let n = s.len in
  if n = 0 then (empty, z)
  else begin
    let g = grid n in
    let sums = block_sums f s g in
    let offsets, total = Bds_parray.Parray.scan_seq f z sums in
    let out = Array.make n z in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
      (fun b ->
        let lo, hi = Grain.bounds g b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          Array.unsafe_set out i !acc;
          acc := f !acc (s.get i)
        done);
    (of_array out, total)
  end

let scan_incl f z s =
  let n = s.len in
  if n = 0 then empty
  else begin
    let g = grid n in
    let sums = block_sums f s g in
    let offsets, _ = Bds_parray.Parray.scan_seq f z sums in
    let out = Array.make n z in
    Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
      (fun b ->
        let lo, hi = Grain.bounds g b in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          acc := f !acc (s.get i);
          Array.unsafe_set out i !acc
        done);
    of_array out
  end

(* Block-wise pack shared by filter / filter_op. *)
let pack_grid (g : Grain.grid) (pack : int -> int -> 'b array) =
  let packed = Array.make g.Grain.num_blocks [||] in
  Runtime.apply_blocks ~bounds:(Grain.bounds g) ~nb:g.Grain.num_blocks
    (fun b ->
      let lo, hi = Grain.bounds g b in
      packed.(b) <- pack lo hi);
  packed

(* filter fuses with its input but packs into an eager array. *)
let filter p s =
  let n = s.len in
  if n = 0 then empty
  else begin
    let packed =
      pack_grid (grid n) (fun lo hi ->
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            let v = s.get i in
            if p v then Bds_stream.Buffer_ext.push buf v
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    of_array (Bds_parray.Parray.flatten packed)
  end

let filter_op p s =
  let n = s.len in
  if n = 0 then empty
  else begin
    let packed =
      pack_grid (grid n) (fun lo hi ->
          let buf = Bds_stream.Buffer_ext.create () in
          for i = lo to hi - 1 do
            match p (s.get i) with
            | Some w -> Bds_stream.Buffer_ext.push buf w
            | None -> ()
          done;
          Bds_stream.Buffer_ext.to_array buf)
    in
    of_array (Bds_parray.Parray.flatten packed)
  end

(* Eager flatten: compute offsets, copy everything. *)
let flatten (ss : 'a t t) =
  let m = ss.len in
  if m = 0 then empty
  else begin
    let inners = Bds_parray.Parray.tabulate m ss.get in
    let lengths = Array.map (fun s -> s.len) inners in
    let offsets, total = Bds_parray.Parray.scan ( + ) 0 lengths in
    if total = 0 then empty
    else begin
      let rec first j = if inners.(j).len > 0 then inners.(j).get 0 else first (j + 1) in
      let out = Array.make total (first 0) in
      Runtime.apply m (fun j ->
          let s = inners.(j) in
          let off = offsets.(j) in
          for k = 0 to s.len - 1 do
            Array.unsafe_set out (off + k) (s.get k)
          done);
      of_array out
    end
  end

let to_list s = List.init s.len s.get

let equal eq s1 s2 =
  s1.len = s2.len
  && Runtime.parallel_for_reduce 0 s1.len ~combine:( && ) ~init:true (fun i ->
         eq (s1.get i) (s2.get i))
