(** Random-access delayed (RAD) sequences — the paper's baseline {b R}.

    Index fusion only (as in Repa): {!tabulate}, {!map}, {!zip}, {!slice}
    are O(1) and delayed; {!scan}, {!filter} and {!flatten} fuse with their
    inputs but must materialise eager output arrays (they cannot produce a
    random-access view).  Compare with {!Bds.Seq}, which delays those
    outputs as BIDs. *)

type 'a t

val length : 'a t -> int

(** Random access (bounds-checked). *)
val get : 'a t -> int -> 'a

val empty : 'a t
val tabulate : int -> (int -> 'a) -> 'a t
val of_array : 'a array -> 'a t
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list

(** Evaluate all elements into a fresh array and return it as a RAD. *)
val force : 'a t -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
val zip : 'a t -> 'b t -> ('a * 'b) t
val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val slice : 'a t -> int -> int -> 'a t
val take : 'a t -> int -> 'a t
val drop : 'a t -> int -> 'a t
val rev : 'a t -> 'a t
val append : 'a t -> 'a t -> 'a t
val iota : int -> int t

(** Fused parallel reduce ([f] associative with unit [z]). *)
val reduce : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a

(** Parallel iteration over all elements (unordered across blocks). *)
val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** Exclusive scan; input fused, output eager. Returns (prefixes, total). *)
val scan : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t * 'a

val scan_incl : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_op : ('a -> 'b option) -> 'a t -> 'b t
val flatten : 'a t t -> 'a t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
