(* Online self-tuning granularity controller (see autotune.mli).

   Closes the profiler->Grain loop: with [Grain.adaptive] on, every
   auto-grained parallel region reports its leaf statistics
   ([Profile.region_stats]) and steal/task telemetry here at region end,
   and the next region of the same (op label, log2 size bucket, worker
   count) key runs at whatever grain the controller has converged to.

   Control law (per key, all state in one [entry]):

   - The tuned quantity is a single number: elements per sequential
     leaf.  Element loops ([Runtime.parallel_for]/[parallel_for_reduce])
     apply it as the leaf grain; block-based ops apply it as the block
     size ([Block.size] -> {!block_size}), whose block bodies are the
     leaves of [Runtime.apply_blocks] regions.  One quantity, one table.

   - Multiplicative increase/decrease with hysteresis: an observation
     whose mean leaf latency falls below [lo_leaf_ns] votes "too fine",
     one above [hi_leaf_ns] with genuinely starved parallelism (fewer
     than [balance_floor] leaves per worker, more than one worker, and
     thieves that came up empty) votes "too coarse"; only after
     [hysteresis_k] consecutive votes in the same direction does the
     grain double / halve, clamped to [[min_grain],
     min([max_grain], 2^(bucket+1))].  Anything in the window resets
     both streaks, so noise cannot walk the grain.

   - Probing: every [probe_period] in-window observations the controller
     schedules one region at a neighbouring grain (x2 / /2, alternating)
     and compares its wall-clock ns/element against the incumbent's EWMA;
     only a >10% win is adopted.  This is what tracks drift — a domain
     count change reshapes the key, but chaos-induced slowdown or data
     shape changes show up as a probe suddenly winning.

   - The table is a fixed-capacity, open-addressed array of atomics:
     lookups are lock-free CAS inserts, a full table simply stops
     adapting new keys, and every per-entry cell is an [Atomic.t] whose
     updates are intentionally racy — concurrent regions of the same key
     may each apply an observation, and the hysteresis clamp keeps the
     result sane regardless of interleaving.

   Explicit settings always win: a [BDS_GRAIN]/[set_leaf_grain] override
   disables leaf decisions, a non-default block policy disables block
   decisions ({!Grain.policy_is_default}), and an explicit [?grain]
   argument never reaches this module at all. *)

let min_n = 512
let min_grain = 16
let max_grain = 1 lsl 22
let balance_floor = 8

let lo_leaf_ns = Atomic.make 20_000
let hi_leaf_ns = Atomic.make 1_000_000
let hysteresis_k = Atomic.make 3
let probe_period_state = Atomic.make 16

let set_leaf_window ~lo_ns ~hi_ns =
  if lo_ns < 1 || hi_ns <= lo_ns then
    invalid_arg "Autotune.set_leaf_window: need 1 <= lo_ns < hi_ns";
  Atomic.set lo_leaf_ns lo_ns;
  Atomic.set hi_leaf_ns hi_ns

let set_hysteresis k =
  if k < 1 then invalid_arg "Autotune.set_hysteresis: K must be >= 1";
  Atomic.set hysteresis_k k

let hysteresis () = Atomic.get hysteresis_k

let set_probe_period p =
  if p < 2 then invalid_arg "Autotune.set_probe_period: period must be >= 2";
  Atomic.set probe_period_state p

let probe_period () = Atomic.get probe_period_state

let[@inline] enabled () = Grain.adaptive ()

(* Size bucket: floor(log2 n), shared with the latency histograms so one
   bucketing function covers both axes. *)
let size_bucket = Histogram.bucket_of_ns

(* ------------------------------------------------------------------ *)
(* The decision table *)

type entry = {
  e_op : string;
  e_bucket : int;
  e_workers : int;
  grain : int Atomic.t;  (* incumbent elements-per-leaf *)
  fine : int Atomic.t;  (* consecutive "too fine" votes *)
  coarse : int Atomic.t;  (* consecutive "too coarse" votes *)
  obs_count : int Atomic.t;  (* in-window observations at the incumbent *)
  ewma_npe : int Atomic.t;  (* EWMA wall ns/element x1024; 0 = unset *)
  probe_pending : int Atomic.t;  (* grain to try on the next decision; 0 = none *)
  probe_dir : int Atomic.t;  (* last probe direction, alternated *)
  adjustments : int Atomic.t;
  probes : int Atomic.t;
  last_leaf_ns : int Atomic.t;  (* mean leaf ns of the latest observation *)
  last_leaves : int Atomic.t;
}

(* Per-entry clamp: never tune outside [min_grain, max_grain], and never
   past the key's own size bucket (a grain above 2^(bucket+1) is just
   "one leaf", which the coarse rule can no longer distinguish). *)
let clamp_grain ~bucket g =
  let hi = min max_grain (1 lsl (min 61 (bucket + 1))) in
  let hi = max hi min_grain in
  max min_grain (min hi g)

let capacity = 512  (* power of two; open addressing masks into it *)

let slots : entry option Atomic.t array =
  Array.init capacity (fun _ -> Atomic.make None)

let slot_of ~op ~bucket ~workers =
  Hashtbl.hash (op, bucket, workers) land (capacity - 1)

let fresh_entry ~op ~bucket ~workers ~init =
  {
    e_op = op;
    e_bucket = bucket;
    e_workers = workers;
    grain = Atomic.make (clamp_grain ~bucket init);
    fine = Atomic.make 0;
    coarse = Atomic.make 0;
    obs_count = Atomic.make 0;
    ewma_npe = Atomic.make 0;
    probe_pending = Atomic.make 0;
    probe_dir = Atomic.make (-1);
    adjustments = Atomic.make 0;
    probes = Atomic.make 0;
    last_leaf_ns = Atomic.make 0;
    last_leaves = Atomic.make 0;
  }

(* Lock-free find-or-create: linear probing from the key's hash slot;
   CAS claims an empty slot, a lost CAS re-reads the same slot (the
   winner may have inserted exactly our key).  A full table returns
   [None] — the caller falls back to the static heuristic. *)
let lookup ~op ~n ~workers ~init =
  let bucket = size_bucket n in
  let rec go i tries =
    if tries >= capacity then None
    else
      match Atomic.get slots.(i) with
      | Some e ->
        if e.e_op = op && e.e_bucket = bucket && e.e_workers = workers then
          Some e
        else go ((i + 1) land (capacity - 1)) (tries + 1)
      | None ->
        let e = fresh_entry ~op ~bucket ~workers ~init in
        if Atomic.compare_and_set slots.(i) None (Some e) then Some e
        else go i tries
  in
  go (slot_of ~op ~bucket ~workers) 0

let entry_grain e = Atomic.get e.grain

(* The grain the next region of this key should run at: the pending
   probe if one is scheduled (claimed by CAS so concurrent regions run
   at most one probe per schedule), the incumbent otherwise. *)
let pick e =
  let p = Atomic.get e.probe_pending in
  if p <> 0 && Atomic.compare_and_set e.probe_pending p 0 then p
  else Atomic.get e.grain

(* ------------------------------------------------------------------ *)
(* The control law *)

let[@inline] near a b =
  (* Within 25% of b: block sizes are re-derived as ceil(n/nb), so an
     incumbent-grain region does not reproduce the incumbent exactly. *)
  abs (a - b) * 4 <= b

let commit_adjustment e g =
  Atomic.set e.grain g;
  Atomic.set e.fine 0;
  Atomic.set e.coarse 0;
  (* The EWMA measured the old grain; re-learn at the new one. *)
  Atomic.set e.ewma_npe 0;
  Atomic.incr e.adjustments;
  Telemetry.incr_adapt_adjustments ()

let record e ~n ~used ~wall_ns ~leaves ~leaf_ns ~steal_attempts ~steals =
  if leaves > 0 && n > 0 then begin
    let mean_leaf = leaf_ns / leaves in
    Atomic.set e.last_leaf_ns mean_leaf;
    Atomic.set e.last_leaves leaves;
    let cur = Atomic.get e.grain in
    let npe = wall_ns * 1024 / n in
    if not (near used cur) then begin
      (* A probe (or a region decided before the last adjustment):
         evidence about a neighbouring grain.  Adopt only a clear win
         over the incumbent's EWMA — >10% lower wall ns/element. *)
      Atomic.incr e.probes;
      Telemetry.incr_adapt_probes ();
      let ew = Atomic.get e.ewma_npe in
      if ew > 0 && npe > 0 && npe * 10 < ew * 9 then
        commit_adjustment e (clamp_grain ~bucket:e.e_bucket used)
    end
    else begin
      let ew = Atomic.get e.ewma_npe in
      Atomic.set e.ewma_npe (if ew = 0 then npe else ((3 * ew) + npe) / 4);
      let k = Atomic.get hysteresis_k in
      let lo = Atomic.get lo_leaf_ns and hi = Atomic.get hi_leaf_ns in
      let bucket = e.e_bucket in
      if mean_leaf < lo && clamp_grain ~bucket (cur * 2) > cur then begin
        (* Leaves too small to amortize scheduling: vote to coarsen. *)
        Atomic.set e.coarse 0;
        let f = Atomic.get e.fine + 1 in
        if f >= k then commit_adjustment e (clamp_grain ~bucket (cur * 2))
        else Atomic.set e.fine f
      end
      else if
        mean_leaf > hi && e.e_workers > 1
        && leaves < balance_floor * e.e_workers
        && steal_attempts > steals
        && clamp_grain ~bucket (cur / 2) < cur
      then begin
        (* Leaves long AND too few to balance AND thieves came up empty:
           vote to refine.  On one worker (or with plenty of leaves)
           long leaves are pure win, so no vote. *)
        Atomic.set e.fine 0;
        let c = Atomic.get e.coarse + 1 in
        if c >= k then commit_adjustment e (clamp_grain ~bucket (cur / 2))
        else Atomic.set e.coarse c
      end
      else begin
        (* In the window: reset both streaks (hysteresis), and
           periodically schedule a probe at a neighbouring grain. *)
        Atomic.set e.fine 0;
        Atomic.set e.coarse 0;
        let o = Atomic.get e.obs_count + 1 in
        Atomic.set e.obs_count o;
        if o mod Atomic.get probe_period_state = 0 && Atomic.get e.ewma_npe > 0
        then begin
          let dir = -Atomic.get e.probe_dir in
          Atomic.set e.probe_dir dir;
          let cand =
            clamp_grain ~bucket (if dir > 0 then cur * 2 else cur / 2)
          in
          if cand <> cur then Atomic.set e.probe_pending cand
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Region hooks (called by Runtime and Block.size) *)

type obs = {
  o_entry : entry;
  o_n : int;
  o_used : int;
  o_t0 : float;
  o_before : Telemetry.snapshot;
}

let[@inline] now () = Unix.gettimeofday ()

let leaf_init ~n ~workers =
  max 1 (n / (Grain.chunks_per_worker * max 1 workers))

let make_obs e ~n ~used =
  { o_entry = e; o_n = n; o_used = used; o_t0 = now ();
    o_before = Telemetry.snapshot () }

(* Leaf-grain decision for an auto-grained element loop: [None] defers
   to the static heuristic (adaptation off, BDS_GRAIN pinned, the loop
   too small to matter, no op label to key on, or a full table). *)
let leaf_decision ~n ~workers =
  if (not (enabled ())) || n < min_n || Grain.leaf_grain_override () <> None
  then None
  else
    match Profile.current_op_name () with
    | None -> None
    | Some op -> (
      match lookup ~op ~n ~workers ~init:(leaf_init ~n ~workers) with
      | None -> None
      | Some e ->
        let g = min n (pick e) in
        Some (g, make_obs e ~n ~used:g))

(* Block-size decision for BID construction / blocked reductions: the
   observation arrives later, from the [apply_blocks] region that runs
   the blocks ({!region_enter}).  [None] defers to [Grain.block_size]. *)
let block_size ~workers n =
  if (not (enabled ())) || n < min_n || not (Grain.policy_is_default ()) then
    None
  else
    match Profile.current_op_name () with
    | None -> None
    | Some op -> (
      match lookup ~op ~n ~workers ~init:(Grain.block_size ~workers n) with
      | None -> None
      | Some e -> Some (min n (pick e)))

(* Observation-only entry for regions whose granularity was fixed before
   the region started (block grids): attribute the region to the key it
   would have been decided under. *)
let region_enter ~n ~used ~workers =
  if (not (enabled ())) || n < min_n then None
  else
    match Profile.current_op_name () with
    | None -> None
    | Some op -> (
      match lookup ~op ~n ~workers ~init:(leaf_init ~n ~workers) with
      | None -> None
      | Some e -> Some (make_obs e ~n ~used))

let obs_end o (stats : Profile.region_stats option) =
  match stats with
  | None -> ()
  | Some { Profile.leaves; leaf_ns; max_leaf_ns = _ } ->
    let wall_ns = int_of_float ((now () -. o.o_t0) *. 1e9) in
    let d = Telemetry.diff ~before:o.o_before ~after:(Telemetry.snapshot ()) in
    record o.o_entry ~n:o.o_n ~used:o.o_used ~wall_ns ~leaves ~leaf_ns
      ~steal_attempts:d.Telemetry.s_steal_attempts ~steals:d.Telemetry.s_steals

(* ------------------------------------------------------------------ *)
(* Observability *)

type info = {
  i_op : string;
  i_bucket : int;
  i_workers : int;
  i_grain : int;
  i_obs : int;
  i_adjustments : int;
  i_probes : int;
  i_last_leaf_ns : int;
  i_last_leaves : int;
}

let dump () =
  let acc = ref [] in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | None -> ()
      | Some e ->
        acc :=
          {
            i_op = e.e_op;
            i_bucket = e.e_bucket;
            i_workers = e.e_workers;
            i_grain = Atomic.get e.grain;
            i_obs = Atomic.get e.obs_count;
            i_adjustments = Atomic.get e.adjustments;
            i_probes = Atomic.get e.probes;
            i_last_leaf_ns = Atomic.get e.last_leaf_ns;
            i_last_leaves = Atomic.get e.last_leaves;
          }
          :: !acc)
    slots;
  List.sort
    (fun a b ->
      match String.compare a.i_op b.i_op with
      | 0 -> (
        match compare a.i_bucket b.i_bucket with
        | 0 -> compare a.i_workers b.i_workers
        | c -> c)
      | c -> c)
    !acc

(* Test isolation only: racy against concurrent inserts by design. *)
let reset () = Array.iter (fun slot -> Atomic.set slot None) slots

let table_stats () =
  List.fold_left
    (fun (n, obs, adj) i -> (n + 1, obs + i.i_obs, adj + i.i_adjustments))
    (0, 0, 0) (dump ())

(* ------------------------------------------------------------------ *)
(* Persistence (BDS_ADAPT_TABLE)

   A service restart should not relearn every grain from the defaults:
   with [BDS_ADAPT_TABLE=<path>] set, the decision table is loaded at
   module initialisation and atomically rewritten (tmp + rename) at pool
   teardown and process exit.  The format is one versioned header plus
   one line per entry; a file that does not parse fails fast naming the
   variable — a half-loaded table would silently pin wrong grains. *)

let env_var = "BDS_ADAPT_TABLE"

let magic = "bds-adapt-table v1"

(* Find-or-create keyed on an explicit bucket (load-time twin of
   [lookup], which buckets from [n]); restores the bookkeeping counts so
   `bds_probe grain` and the flight recorder show the inherited state. *)
let insert ~op ~bucket ~workers ~grain ~obs ~adjustments ~probes =
  let restore e =
    Atomic.set e.grain (clamp_grain ~bucket grain);
    Atomic.set e.obs_count obs;
    Atomic.set e.adjustments adjustments;
    Atomic.set e.probes probes
  in
  let rec go i tries =
    if tries >= capacity then ()
    else
      match Atomic.get slots.(i) with
      | Some e ->
        if e.e_op = op && e.e_bucket = bucket && e.e_workers = workers then
          restore e
        else go ((i + 1) land (capacity - 1)) (tries + 1)
      | None ->
        let e = fresh_entry ~op ~bucket ~workers ~init:grain in
        restore e;
        if Atomic.compare_and_set slots.(i) None (Some e) then ()
        else go i tries
  in
  go (slot_of ~op ~bucket ~workers) 0

let save_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (magic ^ "\n");
  List.iter
    (fun i ->
      Printf.fprintf oc "%S %d %d %d %d %d %d\n" i.i_op i.i_bucket i.i_workers
        i.i_grain i.i_obs i.i_adjustments i.i_probes)
    (dump ());
  close_out oc;
  Sys.rename tmp path

let load_file path =
  let fail_at lineno msg =
    failwith
      (Printf.sprintf "%s: %s: malformed decision table (%s at line %d)"
         env_var path msg lineno)
  in
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match input_line ic with
  | exception End_of_file -> fail_at 1 "empty file"
  | l when l = magic -> ()
  | _ -> fail_at 1 "bad header");
  let n = ref 0 in
  let lineno = ref 1 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line <> "" then
         match
           Scanf.sscanf line "%S %d %d %d %d %d %d%!"
             (fun op bucket workers grain obs adj probes ->
               (op, bucket, workers, grain, obs, adj, probes))
         with
         | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
           fail_at !lineno "unparsable entry"
         | op, bucket, workers, grain, obs, adj, probes ->
           if bucket < 0 || workers < 1 || grain < 1 || obs < 0 || adj < 0
              || probes < 0
           then fail_at !lineno "out-of-range field";
           insert ~op ~bucket ~workers ~grain ~obs ~adjustments:adj ~probes;
           incr n
     done
   with End_of_file -> ());
  !n

let persist () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some path -> (
    try save_file path
    with Sys_error e ->
      Printf.eprintf "warning: %s: could not persist decision table: %s\n%!"
        env_var e)

(* Load eagerly at startup (fail fast on a malformed file — before any
   region consults the table) and rewrite at exit; [Pool.teardown] also
   calls [persist] so servers that recycle pools checkpoint each time. *)
let () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some path ->
    if Sys.file_exists path then ignore (load_file path : int);
    at_exit persist
