(** Online self-tuning granularity: the controller that closes the
    profiler->Grain loop.

    Opt in with [BDS_ADAPT=1] or [Grain.set_adaptive true].  Every
    auto-grained parallel region then reports its leaf statistics
    ([Profile.region_stats]) and steal/task telemetry here at region
    end, and the next region with the same key — (op label, log2 size
    bucket, worker count), memoized in a lock-free open-addressed table
    — runs at the grain the controller has converged to.  The tuned
    quantity is elements-per-leaf: element loops apply it as the leaf
    grain, block-based ops as the block size (via [Block.size]).

    Control law: multiplicative increase/decrease with hysteresis
    (double/halve only after {!hysteresis} consecutive out-of-window
    observations, clamped to [[min_grain], min({!max_grain},
    2^(bucket+1))]), plus a probe step every {!probe_period} in-window
    observations that runs one region at a neighbouring grain and adopts
    it only on a >10% wall-ns/element win over the incumbent's EWMA.

    Explicit settings always win: [BDS_GRAIN] / [Grain.set_leaf_grain]
    disables leaf decisions, a non-default block policy disables block
    decisions, and an explicit [?grain] argument bypasses the controller
    entirely.  Knob table and rationale: docs/RUNTIME.md "Adaptive
    granularity". *)

val enabled : unit -> bool
(** [Grain.adaptive ()]. *)

(** {2 Region hooks} — called by [Runtime]'s primitives and
    [Block.size]; all return [None] (decide nothing, observe nothing)
    when adaptation is off, overridden, unlabeled, or the input is
    below {!min_n}. *)

type obs
(** An in-flight observation: which entry the enclosing region reports
    to, the grain it ran at, and its start-of-region clock/telemetry. *)

val leaf_decision : n:int -> workers:int -> (int * obs) option
(** Grain for an auto-grained element loop over [n] iterations, plus
    the observation token to close out with {!obs_end}. *)

val block_size : workers:int -> int -> int option
(** Block size for an [n]-element blocked op.  Decision only — the
    observation arrives later from the [apply_blocks] region that runs
    the blocks ({!region_enter}). *)

val region_enter : n:int -> used:int -> workers:int -> obs option
(** Observation-only hook for a region whose granularity ([used]
    elements per leaf) was fixed before the region started (block
    grids). *)

val obs_end : obs -> Profile.region_stats option -> unit
(** Feed one completed region to the controller.  Skipped (by the
    caller) when the region failed or was cancelled. *)

(** {2 Controller internals} — exposed so unit tests can drive the
    control law with synthetic observations, no pool involved. *)

type entry
(** One key's adaptive state (all cells atomic; updates are tolerant of
    the racy interleavings concurrent regions produce). *)

val lookup : op:string -> n:int -> workers:int -> init:int -> entry option
(** Find-or-create the entry for a key; [init] seeds the grain of a
    fresh entry (clamped).  [None] on a full table. *)

val pick : entry -> int
(** The grain the next region of this key should run at: a scheduled
    probe (claimed at most once) or the incumbent. *)

val entry_grain : entry -> int
(** The incumbent grain. *)

val record :
  entry ->
  n:int ->
  used:int ->
  wall_ns:int ->
  leaves:int ->
  leaf_ns:int ->
  steal_attempts:int ->
  steals:int ->
  unit
(** Apply one observation: a region over [n] elements that ran [leaves]
    leaves of [used] elements each in [wall_ns] of wall clock, with
    [leaf_ns] summed leaf time and the given steal-telemetry deltas.
    [used] within 25% of the incumbent is an incumbent observation
    (EWMA + hysteresis votes); anything else is probe evidence. *)

val size_bucket : int -> int
(** floor(log2 n) — the size axis of the memo key (shared with
    [Histogram]'s latency bucketing). *)

(** {2 Knobs} *)

val min_n : int
(** Inputs below this (512) are never adapted. *)

val min_grain : int

val max_grain : int

val set_hysteresis : int -> unit
(** Consecutive out-of-window observations required before a
    multiplicative move (default 3). *)

val hysteresis : unit -> int

val set_probe_period : int -> unit
(** In-window observations between probe steps (default 16). *)

val probe_period : unit -> int

val set_leaf_window : lo_ns:int -> hi_ns:int -> unit
(** Target mean-leaf-latency window (default 20us .. 1ms). *)

(** {2 Observability} — [bds_probe grain] *)

type info = {
  i_op : string;
  i_bucket : int;
  i_workers : int;
  i_grain : int;
  i_obs : int;
  i_adjustments : int;
  i_probes : int;
  i_last_leaf_ns : int;
  i_last_leaves : int;
}

val dump : unit -> info list
(** Every live entry, sorted by (op, bucket, workers). *)

val reset : unit -> unit
(** Drop all entries (test / bench-point isolation). *)

val table_stats : unit -> int * int * int
(** [(entries, total observations, total adjustments)] — the summary
    the flight recorder snapshots. *)

(** {2 Persistence} — [BDS_ADAPT_TABLE=<path>]

    When the variable is set (non-empty), the decision table is loaded
    from [path] at module initialisation — failing fast, with the
    variable named, if the file exists but does not parse — and
    atomically rewritten (tmp + rename) at pool teardown and process
    exit, so a restarted service resumes from its learned grains
    instead of the static defaults. *)

val save_file : string -> unit
(** Atomically write the current table to a file. *)

val load_file : string -> int
(** Merge a saved table into the live one (existing keys are
    overwritten); returns the number of entries read.  Raises [Failure]
    naming [BDS_ADAPT_TABLE] on a malformed file. *)

val persist : unit -> unit
(** {!save_file} to [$BDS_ADAPT_TABLE] if set; a no-op otherwise
    (write failures warn on stderr rather than raise — called from
    teardown/exit paths). *)
