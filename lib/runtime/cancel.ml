(* Structured cancellation tokens (see cancel.mli for the model).

   A token is a cancelled flag plus the first recorded failure; tokens
   link to a parent so that cancelling an outer scope implicitly cancels
   every nested scope created under it.  All state is in [Atomic]s: any
   domain may cancel, and grain loops on every worker poll concurrently. *)

type t = {
  cancelled : bool Atomic.t;
  reason : (exn * Printexc.raw_backtrace) option Atomic.t;
  parent : t option;
}

exception Cancelled

let create ?parent () =
  { cancelled = Atomic.make false; reason = Atomic.make None; parent }

let cancel t = Atomic.set t.cancelled true

let cancel_with t exn bt =
  (* Keep only the first failure: it is the one the sequential program
     would have raised, and the one that triggered the cancellation of
     everything else in the scope. *)
  ignore (Atomic.compare_and_set t.reason None (Some (exn, bt)));
  Atomic.set t.cancelled true

let rec is_cancelled t =
  Atomic.get t.cancelled
  || (match t.parent with Some p -> is_cancelled p | None -> false)

(* Out of line: the cancelled case is the cold path (taken at most once
   per chunk), keeping [check] itself small for the grain-loop call
   sites. *)
let[@inline never] trip () =
  Telemetry.incr_cancel_trips ();
  raise Cancelled

let check t =
  Telemetry.incr_cancel_polls ();
  if is_cancelled t then trip ()

let reason t = Atomic.get t.reason

(* ------------------------------------------------------------------ *)
(* Ambient token *)

let ambient_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ambient () = !(Domain.DLS.get ambient_key)

let set_ambient v = Domain.DLS.get ambient_key := v

(* The ambient value is *fiber-local*, not merely domain-local: [f] may
   suspend (Pool's [Suspend] effect) and resume on a different domain, so
   both the prologue's save and the epilogue's restore must go through
   [ambient]/[set_ambient], which re-read the *current* domain's DLS cell
   at each point.  Pool's scheduler context-switches the value across
   suspensions (snapshot at suspend, reinstall at resume), which is what
   makes [saved] meaningful on whichever domain the epilogue runs. *)
let with_ambient t f =
  let saved = ambient () in
  set_ambient (Some t);
  match f () with
  | v ->
    set_ambient saved;
    v
  | exception e ->
    set_ambient saved;
    raise e

let poll () = match ambient () with Some t -> check t | None -> ()
