(** Structured cancellation tokens for fork-join scopes.

    Each parallel scope ([Runtime.par] / [parallel_for] /
    [parallel_for_reduce] / [parallel_for_lazy]) owns a token.  The first
    exception raised in any branch of the scope is recorded in the token
    and flips it to cancelled; sibling branches observe the token at grain
    boundaries and stop doing work, and subtasks that have not started yet
    become no-ops.  The scope root re-raises the recorded first exception,
    so the observable behaviour matches the sequential program: the fault
    that fired first is the fault the caller sees.

    Tokens form a tree: a child created with [~parent] is cancelled
    whenever any ancestor is, which lets a nested [parallel_for] inside an
    outer cancelled scope wind down without its own branch having to
    raise. *)

type t

(** Raised by {!check} / {!poll} when the token (or an ancestor) is
    cancelled.  Internal to scope unwinding: scope roots translate it back
    into the recorded first exception and it never escapes to user code. *)
exception Cancelled

(** Fresh, un-cancelled token.  [parent] links it under an enclosing
    scope's token. *)
val create : ?parent:t -> unit -> t

(** Flip the token to cancelled without recording a reason. *)
val cancel : t -> unit

(** Record [exn] (with its backtrace) as the scope's first failure and
    cancel the token.  Only the first call's exception is kept; later
    calls just cancel. *)
val cancel_with : t -> exn -> Printexc.raw_backtrace -> unit

(** True when this token or any ancestor has been cancelled. *)
val is_cancelled : t -> bool

(** Raise {!Cancelled} if {!is_cancelled}. *)
val check : t -> unit

(** The first exception recorded by {!cancel_with}, if any. *)
val reason : t -> (exn * Printexc.raw_backtrace) option

(** {2 Ambient token}

    The token of the innermost scope whose chunk is currently executing on
    this domain.  [Runtime] sets it around every sequential grain chunk;
    consumers that run long per-iteration bodies (e.g. [Seq]'s per-block
    stream loops) call {!poll} at their own natural boundaries to observe
    cancellation sooner than the enclosing chunk loop would.

    The value is logically {e fiber}-local: a fiber that suspends inside a
    {!with_ambient} region and resumes on another domain carries its token
    with it — [Pool]'s scheduler snapshots the ambient value when a fiber
    suspends and reinstalls it with {!set_ambient} before resuming the
    remainder. *)

(** The current domain's ambient token, if a scope chunk is running. *)
val ambient : unit -> t option

(** [set_ambient v] installs [v] as the current domain's ambient value.
    Scheduler hook (see the fiber-locality note above): [Pool] uses it to
    context-switch the token across suspension and around task execution.
    User code should use {!with_ambient} instead. *)
val set_ambient : t option -> unit

(** [with_ambient t f] runs [f] with [t] as the ambient token, restoring
    the previous ambient token on exit (normal or exceptional) — on
    whichever domain [f] finishes, if it suspended and migrated. *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** {!check} on the ambient token; no-op when there is none. *)
val poll : unit -> unit
