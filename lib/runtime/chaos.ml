(* Chaos injection (see chaos.mli for the BDS_CHAOS format).

   The RNG is splitmix64, one independent stream per domain: stream i is
   seeded from [seed] and the domain's id, so a fixed seed gives each
   domain a reproducible fault plan.  A generation counter lets
   [set_config] invalidate the lazily-seeded per-domain states. *)

type kind = Raise | Delay | Starve | Jobs

type config = { seed : int; p : float; kinds : kind list }

exception Injected_fault of int

let log_src = Logs.Src.create "bds.chaos" ~doc:"Chaos injection"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let kind_of_string = function
  | "raise" -> Ok Raise
  | "delay" -> Ok Delay
  | "starve" -> Ok Starve
  | "jobs" -> Ok Jobs
  | s -> Error (Printf.sprintf "unknown fault kind %S" s)

let string_of_kind = function
  | Raise -> "raise"
  | Delay -> "delay"
  | Starve -> "starve"
  | Jobs -> "jobs"

let default_kinds = [ Delay; Starve ]

let parse s =
  let fields =
    String.split_on_char ',' (String.trim s)
    |> List.filter (fun f -> String.trim f <> "")
  in
  let rec go cfg = function
    | [] -> Ok (Some cfg)
    | field :: rest -> (
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" field)
      | Some i ->
        let key = String.trim (String.sub field 0 i) in
        let value =
          String.trim (String.sub field (i + 1) (String.length field - i - 1))
        in
        (match key with
        | "seed" -> (
          match int_of_string_opt value with
          | Some seed -> go { cfg with seed } rest
          | None -> Error (Printf.sprintf "seed: not an integer: %S" value))
        | "p" -> (
          match float_of_string_opt value with
          | Some p when p >= 0.0 && p <= 1.0 -> go { cfg with p } rest
          | Some _ -> Error (Printf.sprintf "p: out of range [0,1]: %S" value)
          | None -> Error (Printf.sprintf "p: not a float: %S" value))
        | "kinds" ->
          let parts =
            String.split_on_char '+' value |> List.map String.trim
            |> List.filter (fun k -> k <> "")
          in
          if parts = [] then Error "kinds: empty"
          else
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | k :: tl -> (
                match kind_of_string k with
                | Ok k -> collect (k :: acc) tl
                | Error _ as e -> e)
            in
            (match collect [] parts with
            | Ok kinds -> go { cfg with kinds } rest
            | Error e -> Error e)
        | _ -> Error (Printf.sprintf "unknown key %S" key)))
  in
  (* The empty (or all-blank) string is the explicit opt-out — so a
     sub-command inside a chaos sweep can pin [BDS_CHAOS=''] to run
     without faults — NOT a request for the default configuration. *)
  if fields = [] then Ok None
  else go { seed = 1; p = 0.01; kinds = default_kinds } fields

(* ------------------------------------------------------------------ *)
(* State *)

(* (config, generation): bumping the generation forces every domain to
   re-seed its local stream on next use. *)
let state : (config option * int) Atomic.t =
  let init =
    match Sys.getenv_opt "BDS_CHAOS" with
    | None -> (None, None)
    | Some s -> (
      match parse s with
      | Ok cfg -> (cfg, None)
      | Error e -> (None, Some e))
  in
  Atomic.make (fst init, 0)

let parse_error : string option ref =
  ref
    (match Sys.getenv_opt "BDS_CHAOS" with
    | None -> None
    | Some s -> ( match parse s with Ok _ -> None | Error e -> Some e))

let config () = fst (Atomic.get state)

let set_config cfg =
  parse_error := None;
  let rec bump () =
    let (_, gen) as old = Atomic.get state in
    if not (Atomic.compare_and_set state old (cfg, gen + 1)) then bump ()
  in
  bump ()

let describe () =
  match (config (), !parse_error) with
  | Some cfg, _ ->
    Printf.sprintf "chaos: seed=%d p=%.3f kinds=%s" cfg.seed cfg.p
      (String.concat "+" (List.map string_of_kind cfg.kinds))
  | None, Some e -> Printf.sprintf "chaos: off (BDS_CHAOS parse error: %s)" e
  | None, None -> "chaos: off"

let faults = Atomic.make 0

let faults_injected () = Atomic.get faults

(* ------------------------------------------------------------------ *)
(* Per-domain splitmix64 streams *)

type rng = { mutable gen : int; mutable s : int64 }

let rng_key : rng Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { gen = -1; s = 0L })

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 r =
  r.s <- Int64.add r.s golden;
  mix r.s

(* Non-negative draw for [Int64.rem]-based bounded picks.  Masking the
   sign bit, not [Int64.abs]: [abs Int64.min_int] is still negative, and
   a negative remainder would turn into an out-of-range [List.nth]. *)
let next_nonneg r = Int64.logand (next_int64 r) 0x7FFFFFFFFFFFFFFFL

(* Uniform in [0, 1): take the top 53 bits. *)
let next_float r =
  let bits = Int64.shift_right_logical (next_int64 r) 11 in
  Int64.to_float bits /. 9007199254740992.0

let local_rng seed gen =
  let r = Domain.DLS.get rng_key in
  if r.gen <> gen then begin
    r.gen <- gen;
    let id = (Domain.self () :> int) in
    r.s <- mix (Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (id + 1)) golden))
  end;
  r

(* ------------------------------------------------------------------ *)
(* Fault points *)

(* Short busy-wait: long enough to reorder races, short enough that a
   p=0.05 sweep over thousands of tasks stays fast. *)
let delay r =
  let rounds = 1 + Int64.to_int (Int64.rem (next_nonneg r) 400L) in
  for _ = 1 to rounds do
    Domain.cpu_relax ()
  done

let point_task () =
  match Atomic.get state with
  | None, _ -> ()
  | Some cfg, gen ->
    let r = local_rng cfg.seed gen in
    if next_float r < cfg.p then begin
      (* Steal starvation and job faults have their own fault points
         ([starve_steal], [point_job]); only task-level kinds fire here. *)
      let task_kinds =
        List.filter (fun k -> k <> Starve && k <> Jobs) cfg.kinds
      in
      match task_kinds with
      | [] -> ()
      | kinds ->
        Telemetry.incr_chaos_injections ();
        let n = Atomic.fetch_and_add faults 1 in
        let k =
          List.nth kinds
            (Int64.to_int
               (Int64.rem (next_nonneg r) (Int64.of_int (List.length kinds))))
        in
        (match k with
        | Delay -> delay r
        | Raise ->
          Log.debug (fun m -> m "injecting task fault #%d (raise)" n);
          raise (Injected_fault n)
        | Starve | Jobs -> ())
    end

(* Job-level fault point (lib/service): called by the service scheduler
   as it is about to start a job attempt.  With the [jobs] kind active,
   a p-probability draw injects either a spurious attempt cancellation
   (exercising the retry-with-backoff path — chaos cancels are
   retryable) or a pre-start delay of 1..20ms (pushing jobs toward
   their deadline, exercising the deadline path).  The draws come from
   the same per-domain splitmix streams as the task faults, so a fixed
   seed gives a reproducible fault plan per domain (service runner
   threads share their domain's stream; the plan is deterministic up to
   their interleaving). *)
let point_job () =
  match Atomic.get state with
  | None, _ -> `None
  | Some cfg, gen ->
    if not (List.mem Jobs cfg.kinds) then `None
    else begin
      let r = local_rng cfg.seed gen in
      if next_float r < cfg.p then begin
        Telemetry.incr_chaos_injections ();
        let n = Atomic.fetch_and_add faults 1 in
        if Int64.rem (next_nonneg r) 2L = 0L then begin
          Log.debug (fun m -> m "injecting job fault #%d (cancel)" n);
          `Cancel n
        end
        else begin
          let ms = 1 + Int64.to_int (Int64.rem (next_nonneg r) 20L) in
          Log.debug (fun m -> m "injecting job fault #%d (delay %dms)" n ms);
          `Delay (float_of_int ms /. 1000.)
        end
      end
      else `None
    end

let starve_steal () =
  match Atomic.get state with
  | None, _ -> false
  | Some cfg, gen ->
    List.mem Starve cfg.kinds
    &&
    let r = local_rng cfg.seed gen in
    if next_float r < cfg.p then begin
      Telemetry.incr_chaos_injections ();
      ignore (Atomic.fetch_and_add faults 1);
      true
    end
    else false
