(** Deterministic chaos injection for the task pool.

    Controlled by the [BDS_CHAOS] environment variable:

    {v
    BDS_CHAOS="seed=<int>,p=<float>,kinds=<kind>[+<kind>...]"
    v}

    where [<kind>] is one of:

    - [raise]  — a scheduled task raises {!Injected_fault} instead of
                 running its body (exercises exception containment and
                 cancellation paths);
    - [delay]  — a task body is preceded by a short busy-wait (shakes
                 schedule interleavings and steal/suspend races);
    - [starve] — a steal attempt spuriously fails (exercises the idle /
                 retry protocol and overflow draining);
    - [jobs]   — an admitted service job is spuriously cancelled or
                 delayed just before an attempt starts (exercises the
                 retry-with-backoff and deadline paths of
                 [lib/service]; see {!point_job}).

    Fields may appear in any order; [seed] defaults to [1], [p] (the
    per-site fault probability, in [0..1]) defaults to [0.01], and [kinds]
    defaults to [delay+starve] — the semantics-preserving kinds, so the
    full test suite can run under chaos and still check exact results.
    The empty string is the explicit opt-out: [BDS_CHAOS=''] disables
    chaos (handy for pinning chaos off in one command of a sweep whose
    environment sets it globally).  A malformed value disables chaos and
    is reported by {!describe}.

    Fault decisions come from a per-domain splitmix64 stream derived from
    the seed, so a given seed yields a reproducible fault plan per domain
    (modulo which domain executes which task). *)

type kind = Raise | Delay | Starve | Jobs

type config = { seed : int; p : float; kinds : kind list }

(** Raised inside a task when a [raise]-kind fault fires; the payload is
    the global fault counter at injection time. *)
exception Injected_fault of int

(** The active configuration ([None] when chaos is off). *)
val config : unit -> config option

(** Override the configuration programmatically (tests); [None] turns
    chaos off.  Resets per-domain fault streams. *)
val set_config : config option -> unit

(** Parse a [BDS_CHAOS]-formatted string.  [Ok None] for the empty (or
    all-blank) string — the explicit chaos-off opt-out. *)
val parse : string -> (config option, string) result

(** One line describing the active configuration, e.g.
    ["chaos: seed=7 p=0.500 kinds=raise+delay+starve"] or ["chaos: off"];
    a parse failure of [BDS_CHAOS] is mentioned here. *)
val describe : unit -> string

(** Fault point at the start of a task body: may busy-wait ([delay]) or
    raise {!Injected_fault} ([raise]).  No-op when chaos is off. *)
val point_task : unit -> unit

(** Fault point in the steal path: true when this steal attempt should
    spuriously fail ([starve]).  Always false when chaos is off. *)
val starve_steal : unit -> bool

(** Fault point at the start of a service job attempt ([jobs] kind):
    [`Cancel n] asks the caller to cancel the attempt (payload: the
    global fault counter, for {!Injected_fault}), [`Delay s] asks it to
    sleep [s] seconds before starting.  [`None] when chaos is off or
    the [jobs] kind is not active. *)
val point_job : unit -> [ `None | `Cancel of int | `Delay of float ]

(** Total faults injected since start (all kinds, all domains). *)
val faults_injected : unit -> int
