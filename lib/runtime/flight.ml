(* Flight recorder (see flight.mli for the contract).

   A mutex-guarded ring of immutable snapshot records.  Recording is a
   telemetry snapshot plus a table walk — service-interval cadence, so
   the mutex discipline of [Metrics] applies: simple beats clever. *)

type snap = {
  f_seq : int;
  f_ts : float;
  f_uptime_ns : int;
  f_reason : string;
  f_counters : (string * int) list;
  f_adapt_entries : int;
  f_adapt_obs : int;
  f_adapt_adjustments : int;
  f_extra : (string * float) list;
}

type t = {
  cap : int;
  ring : snap option array;
  mutable count : int; (* total ever recorded *)
  mutex : Mutex.t;
}

let create ?(capacity = 120) () =
  if capacity < 2 then invalid_arg "Flight.create: capacity must be >= 2";
  { cap = capacity; ring = Array.make capacity None; count = 0;
    mutex = Mutex.create () }

let capacity t = t.cap

let recorded t = t.count

let record ?(extra = []) t ~reason =
  let counters = Telemetry.to_assoc (Telemetry.snapshot ()) in
  let entries, obs, adjustments = Autotune.table_stats () in
  Mutex.lock t.mutex;
  let s =
    {
      f_seq = t.count + 1;
      f_ts = Unix.gettimeofday ();
      f_uptime_ns = Telemetry.uptime_ns ();
      f_reason = reason;
      f_counters = counters;
      f_adapt_entries = entries;
      f_adapt_obs = obs;
      f_adapt_adjustments = adjustments;
      f_extra = extra;
    }
  in
  t.ring.(t.count mod t.cap) <- Some s;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let snapshots t =
  Mutex.lock t.mutex;
  let stored = min t.count t.cap in
  let first = t.count - stored in
  let out =
    List.init stored (fun i ->
        match t.ring.((first + i) mod t.cap) with
        | Some s -> s
        | None -> assert false)
  in
  Mutex.unlock t.mutex;
  out

let render_snap b s =
  Buffer.add_string b
    (Printf.sprintf
       {|{"seq":%d,"ts":%.6f,"uptime_ns":%d,"reason":"%s","adapt":{"entries":%d,"observations":%d,"adjustments":%d},"counters":{|}
       s.f_seq s.f_ts s.f_uptime_ns (Trace.escape_json s.f_reason)
       s.f_adapt_entries s.f_adapt_obs s.f_adapt_adjustments);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|"%s":%d|} k v))
    s.f_counters;
  Buffer.add_string b "},\"extra\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|"%s":%g|} (Trace.escape_json k) v))
    s.f_extra;
  Buffer.add_string b "}}"

let dump_json t =
  let snaps = snapshots t in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"schema_version":1,"capacity":%d,"recorded":%d,"snapshots":[|}
       t.cap t.count);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      render_snap b s)
    snaps;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let dump_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (dump_json t);
  close_out oc;
  Sys.rename tmp path

(* Dump validator: structure plus the cross-snapshot invariants that
   make a dump trustworthy — strictly increasing seq, non-decreasing
   uptime, and monotone cumulative counters (Telemetry's contract).
   Used by `bds_probe flight-check` and the smoke scripts. *)
let validate body =
  let module J = Tiny_json in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match J.parse_result body with
  | Error e -> Error ("not JSON: " ^ e)
  | Ok root -> (
    let int_field name v =
      match Option.bind (J.member name v) J.to_float with
      | Some f -> Ok (int_of_float f)
      | None -> fail "missing numeric field %S" name
    in
    let ( let* ) = Result.bind in
    let* version = int_field "schema_version" root in
    if version <> 1 then fail "unsupported schema_version %d" version
    else
      let* cap = int_field "capacity" root in
      let* recorded = int_field "recorded" root in
      match Option.bind (J.member "snapshots" root) J.to_list with
      | None -> Error "missing snapshots array"
      | Some snaps ->
        let stored = List.length snaps in
        if stored > cap then
          fail "%d snapshots exceed capacity %d" stored cap
        else if stored > recorded then
          fail "%d snapshots exceed recorded count %d" stored recorded
        else begin
          (* prev: seq, uptime, counters of the previous snapshot *)
          let check prev s =
            let* prev_seq, prev_up, prev_counters = prev in
            let* seq = int_field "seq" s in
            let* up = int_field "uptime_ns" s in
            if seq <> prev_seq + 1 && prev_seq >= 0 then
              fail "seq %d does not follow %d" seq prev_seq
            else if up < prev_up then
              fail "uptime_ns went backwards at seq %d" seq
            else if J.member "reason" s = None then
              fail "snapshot %d missing reason" seq
            else
              match J.member "counters" s with
              | Some (J.Obj counters) ->
                let* () =
                  List.fold_left
                    (fun acc (k, v) ->
                      let* () = acc in
                      match (v, List.assoc_opt k prev_counters) with
                      | J.Num n, Some p when n < p ->
                        fail "counter %s went backwards at seq %d" k seq
                      | J.Num _, _ -> Ok ()
                      | _ -> fail "counter %s not a number at seq %d" k seq)
                    (Ok ()) counters
                in
                let nums =
                  List.filter_map
                    (fun (k, v) ->
                      match v with J.Num n -> Some (k, n) | _ -> None)
                    counters
                in
                Ok (seq, up, nums)
              | _ -> fail "snapshot %d missing counters object" seq
          in
          let* _ = List.fold_left check (Ok (-1, 0, [])) snaps in
          Ok stored
        end)

let validate_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | body -> validate body
  | exception Sys_error msg -> Error msg
