(** Always-on flight recorder: a fixed-size ring of periodic runtime
    snapshots, dumped as JSON when something goes wrong.

    Each {!record} captures the cumulative {!Telemetry} counters, the
    {!Autotune} decision-table summary, a reason tag and any extra
    caller-supplied gauges, into a ring that overwrites its oldest
    snapshot when full — so memory is bounded no matter how long the
    process runs, and a dump always holds the {e most recent} window.

    The module is passive: it owns no thread and installs no handlers.
    The server samples it on an interval and dumps on SIGQUIT, on pool
    degradation and at shutdown (see docs/SERVICE.md "Flight
    recorder"); being passive keeps it unit-testable and reusable by
    any other embedder.

    Snapshot counters are cumulative (Telemetry's contract), so deltas
    between consecutive snapshots are rates and the last snapshot is
    comparable against a final [STATS] scrape. *)

type t

val create : ?capacity:int -> unit -> t
(** A new recorder holding the last [capacity] (default 120) snapshots.
    Raises [Invalid_argument] when [capacity < 2] — a flight recorder
    that cannot show a delta records nothing worth dumping. *)

val capacity : t -> int

val recorded : t -> int
(** Total snapshots ever recorded (>= the number retained). *)

val record : ?extra:(string * float) list -> t -> reason:string -> unit
(** Capture one snapshot.  [reason] tags why ("interval", "sigquit",
    "degraded: ...", "shutdown"); [extra] carries embedder gauges
    (queue depth, outstanding jobs).  Thread-safe. *)

type snap = {
  f_seq : int;  (** 1-based sequence number, strictly increasing *)
  f_ts : float;  (** [Unix.gettimeofday] at capture *)
  f_uptime_ns : int;
  f_reason : string;
  f_counters : (string * int) list;  (** [Telemetry.to_assoc] order *)
  f_adapt_entries : int;
  f_adapt_obs : int;
  f_adapt_adjustments : int;
  f_extra : (string * float) list;
}

val snapshots : t -> snap list
(** Retained snapshots, oldest first. *)

val dump_json : t -> string
(** The whole recorder as one JSON object: [schema_version], capacity,
    total recorded count, and the retained snapshots (oldest first). *)

val dump_file : t -> string -> unit
(** {!dump_json} to a file, atomically (tmp + rename): a dump raced by
    a crash never leaves a truncated file behind. *)

val validate : string -> (int, string) result
(** Check a dump: JSON shape, [schema_version] 1, snapshot count within
    capacity/recorded bounds, strictly consecutive [seq], non-decreasing
    [uptime_ns], and monotone cumulative counters.  [Ok n] is the number
    of retained snapshots. *)

val validate_file : string -> (int, string) result
(** {!validate} on a file's contents ([Error] on read failure too). *)
