(* The single granularity layer (see grain.mli).

   Everything here is either pure arithmetic over (n, workers) or a read
   of one of the Atomic policy cells below.  No other module computes a
   grain or a block grid from n and the worker count — Runtime, Parray,
   Rad, Seq and Psort all consume this one. *)

type policy =
  | Fixed of int
  | Scaled of { per_worker_blocks : int; min_size : int; max_size : int }

let default_policy =
  Scaled { per_worker_blocks = 8; min_size = 2048; max_size = 65536 }

let chunks_per_worker = 32
let default_lazy_chunk = 64
let default_sort_cutoff = 4096
let default_merge_tile = 4096

(* All mutable policy state is Atomic: the bench harness (and tests)
   mutate it between sweep points while worker domains read it.  A plain
   ref here would be a data race under the OCaml memory model. *)
let policy_state : policy Atomic.t = Atomic.make default_policy
let leaf_override : int option Atomic.t = Atomic.make None
let lazy_chunk_state : int Atomic.t = Atomic.make default_lazy_chunk
let sort_cutoff_state : int Atomic.t = Atomic.make default_sort_cutoff
let merge_tile_state : int Atomic.t = Atomic.make default_merge_tile

(* Adaptive-granularity opt-in (the controller itself lives in
   [Autotune]; this flag lives here so both Profile and the controller
   can read it without a dependency cycle).  Parsed eagerly like
   [BDS_PROFILE]/[BDS_TRACE] — it is boolean-ish, so there is no
   malformed-value failure mode to defer. *)
let adaptive_state : bool Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "BDS_ADAPT" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let[@inline] adaptive () = Atomic.get adaptive_state

let set_adaptive b = Atomic.set adaptive_state b

(* ------------------------------------------------------------------ *)
(* Environment overrides, validated at first use *)

let parse_pos_int ~key s =
  match String.trim s with
  | "" -> Ok None
  | t -> (
    match int_of_string_opt t with
    | Some v when v >= 1 -> Ok (Some v)
    | _ ->
      Error
        (Printf.sprintf "%s: invalid value %S (expected an integer >= 1)" key
           s))

let read_env key =
  match Sys.getenv_opt key with
  | None -> None
  | Some s -> (
    match parse_pos_int ~key s with
    | Ok v -> v
    | Error msg -> failwith msg)

(* The policy the environment requests (before any programmatic
   set_policy), remembered so reset_policy restores it. *)
let env_policy : policy option Atomic.t = Atomic.make None
let env_grain : int option Atomic.t = Atomic.make None

let env_done = Atomic.make false
let env_lock = Mutex.create ()

(* Validation is retried until it succeeds: a malformed variable raises
   on the first call that consults the environment and on every call
   after that, instead of being silently dropped. *)
let ensure_env () =
  if not (Atomic.get env_done) then begin
    Mutex.lock env_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock env_lock)
      (fun () ->
        if not (Atomic.get env_done) then begin
          let g = read_env "BDS_GRAIN" in
          let p =
            match read_env "BDS_BLOCK_SIZE" with
            | Some b -> Some (Fixed b)
            | None -> (
              match read_env "BDS_BLOCKS_PER_WORKER" with
              | Some k ->
                Some
                  (Scaled
                     { per_worker_blocks = k; min_size = 1; max_size = max_int })
              | None -> None)
          in
          Atomic.set env_grain g;
          Atomic.set env_policy p;
          (match g with Some _ -> Atomic.set leaf_override g | None -> ());
          (match p with Some p -> Atomic.set policy_state p | None -> ());
          Atomic.set env_done true
        end)
  end

(* ------------------------------------------------------------------ *)
(* Policy *)

let validate_policy = function
  | Fixed b when b < 1 ->
    invalid_arg "Grain.set_policy: Fixed size must be >= 1"
  | Scaled { per_worker_blocks; min_size; max_size }
    when per_worker_blocks < 1 || min_size < 1 || max_size < min_size ->
    invalid_arg "Grain.set_policy: invalid Scaled parameters"
  | Fixed _ | Scaled _ -> ()

let set_policy p =
  ensure_env ();
  validate_policy p;
  Atomic.set policy_state p

let get_policy () =
  ensure_env ();
  Atomic.get policy_state

let reset_policy () =
  ensure_env ();
  Atomic.set policy_state
    (match Atomic.get env_policy with Some p -> p | None -> default_policy)

(* True when nothing pinned the block policy: no BDS_BLOCK_SIZE /
   BDS_BLOCKS_PER_WORKER in the environment and no programmatic
   [set_policy] away from the default.  The adaptive controller only
   sizes blocks itself in this state — an explicit policy (a bench sweep
   point, a user's Fixed pin) always wins, mirroring the BDS_GRAIN rule
   for leaf grains. *)
let policy_is_default () =
  ensure_env ();
  Atomic.get env_policy = None && Atomic.get policy_state = default_policy

(* ------------------------------------------------------------------ *)
(* Block grids *)

let block_size ~workers n =
  if n <= 0 then 1
  else
    match get_policy () with
    | Fixed b -> b
    | Scaled { per_worker_blocks; min_size; max_size } ->
      let p = max 1 workers in
      let b = n / (per_worker_blocks * p) in
      max min_size (min max_size (max 1 b))

let num_blocks ~block_size n =
  if n = 0 then 0 else (n + block_size - 1) / block_size

let block_bounds ~block_size ~n j =
  let lo = j * block_size in
  (lo, min n (lo + block_size))

type grid = { n : int; block_size : int; num_blocks : int }

let grid ~workers n =
  let bs = block_size ~workers n in
  { n; block_size = bs; num_blocks = num_blocks ~block_size:bs n }

let bounds g j = block_bounds ~block_size:g.block_size ~n:g.n j

(* ------------------------------------------------------------------ *)
(* Leaf grain *)

let leaf_grain ~workers n =
  ensure_env ();
  match Atomic.get leaf_override with
  | Some g -> g
  | None -> max 1 (n / (chunks_per_worker * max 1 workers))

let set_leaf_grain o =
  ensure_env ();
  (match o with
  | Some g when g < 1 -> invalid_arg "Grain.set_leaf_grain: grain must be >= 1"
  | _ -> ());
  Atomic.set leaf_override
    (match o with Some _ -> o | None -> Atomic.get env_grain)

let leaf_grain_override () =
  ensure_env ();
  Atomic.get leaf_override

(* ------------------------------------------------------------------ *)
(* Other knobs *)

let lazy_chunk () = Atomic.get lazy_chunk_state

let set_lazy_chunk c =
  if c < 1 then invalid_arg "Grain.set_lazy_chunk: chunk must be >= 1";
  Atomic.set lazy_chunk_state c

let sort_cutoff () = Atomic.get sort_cutoff_state

let set_sort_cutoff c =
  if c < 1 then invalid_arg "Grain.set_sort_cutoff: cutoff must be >= 1";
  Atomic.set sort_cutoff_state c

let merge_tile () = Atomic.get merge_tile_state

let set_merge_tile c =
  if c < 1 then invalid_arg "Grain.set_merge_tile: tile must be >= 1";
  Atomic.set merge_tile_state c
