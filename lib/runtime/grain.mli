(** The single granularity layer: every mapping from [(n, workers)] to a
    leaf grain, a block grid, or a sequential cutoff lives here.

    The paper (§4) leaves the block-size policy B(n) open and ablates it
    (Figure 16).  Historically this reproduction grew three independent
    policies with conflicting constants (Runtime's grain, Parray's private
    block heuristic, Block's B(n)); this module is now the only place that
    computes granularity, and every layer (Runtime loops, Parray, Rad,
    Seq, Psort) consumes it.  [Block] in [lib/core] remains the public
    ablation API and delegates here.

    {2 Environment overrides}

    Read and validated at first use (a malformed value raises [Failure]
    naming the variable, on the first call that needs it — and on every
    call after that, since validation is retried until it succeeds):

    - [BDS_GRAIN=<int>=1..] — fixed leaf grain for parallel loops
      (overrides the [chunks_per_worker] heuristic);
    - [BDS_BLOCK_SIZE=<int>=1..] — fixed block size: initial policy
      becomes [Fixed];
    - [BDS_BLOCKS_PER_WORKER=<int>=1..] — initial policy becomes [Scaled]
      with that many blocks per worker (ignored when [BDS_BLOCK_SIZE] is
      also set, which takes precedence).

    An empty (or unset) variable means "use the default".  Programmatic
    setters ({!set_policy}, {!set_leaf_grain}) override the environment.

    All policy state is {!Atomic}: the bench harness mutates it between
    sweep points while worker domains read it. *)

(** The block-size policy B(n) (re-exported by [Bds.Block]). *)
type policy =
  | Fixed of int
      (** Every sequence uses this block size, regardless of length. *)
  | Scaled of { per_worker_blocks : int; min_size : int; max_size : int }
      (** B(n) = clamp(n / (per_worker_blocks * P), min_size, max_size),
          with P the worker count. *)

(** [Scaled { per_worker_blocks = 8; min_size = 2048; max_size = 65536 }]. *)
val default_policy : policy

(** Raises [Invalid_argument] on non-positive sizes. *)
val set_policy : policy -> unit

val get_policy : unit -> policy

(** Restore {!default_policy} (and the [BDS_BLOCK_SIZE] /
    [BDS_BLOCKS_PER_WORKER] override, if one is set). *)
val reset_policy : unit -> unit

(** No environment override and no programmatic {!set_policy} away from
    {!default_policy}.  The adaptive controller ([Autotune]) only sizes
    blocks itself while this holds — explicit policies always win. *)
val policy_is_default : unit -> bool

(** {2 Adaptive granularity}

    The opt-in flag for the online self-tuning controller ([Autotune];
    knobs and behaviour in docs/RUNTIME.md "Adaptive granularity").  Set
    from [BDS_ADAPT] at startup (empty or ["0"] is the explicit
    opt-out, like [BDS_PROFILE]) or from {!set_adaptive}.  The flag
    lives here — not in [Autotune] — so [Profile] can turn its op-label
    tracking on for the controller without a dependency cycle. *)

val adaptive : unit -> bool

val set_adaptive : bool -> unit

(** {2 Block grids} *)

(** Block size for a sequence of length [n] under the current policy
    (always >= 1). *)
val block_size : workers:int -> int -> int

(** [num_blocks ~block_size n] = ⌈n / block_size⌉ (0 for empty). *)
val num_blocks : block_size:int -> int -> int

(** [block_bounds ~block_size ~n j] = the element range [\[lo, hi)] of
    block [j] in an [n]-element grid. *)
val block_bounds : block_size:int -> n:int -> int -> int * int

(** A concrete grid: [n] elements cut into [num_blocks] blocks of
    [block_size] (the last one possibly short). *)
type grid = { n : int; block_size : int; num_blocks : int }

val grid : workers:int -> int -> grid

(** [bounds g j]: element range [\[lo, hi)] of block [j] of [g]. *)
val bounds : grid -> int -> int * int

(** {2 Leaf grain for parallel loops} *)

(** Target leaf chunks per worker for auto-grained loops (32): the
    rationale is in docs/RUNTIME.md "Granularity policy". *)
val chunks_per_worker : int

(** The sequential-chunk size for an [n]-iteration loop:
    the [BDS_GRAIN] / {!set_leaf_grain} override if set, else
    [max 1 (n / (chunks_per_worker * workers))]. *)
val leaf_grain : workers:int -> int -> int

(** Programmatic equivalent of [BDS_GRAIN]; [None] restores the
    heuristic (and the environment override, if any). *)
val set_leaf_grain : int option -> unit

val leaf_grain_override : unit -> int option

(** {2 Other granularity knobs} *)

(** Chunk size processed between split checks by
    [Runtime.parallel_for_lazy] (default 64). *)
val lazy_chunk : unit -> int

val set_lazy_chunk : int -> unit

(** Sequential cutoff for the sorting substrate [Psort] (default 4096). *)
val sort_cutoff : unit -> int

val set_sort_cutoff : int -> unit

(** Output-tile size for [Psort]'s cache-blocked parallel merge
    ([Psort.sort_floats]): each tile of the merged output is located by
    a merge-path binary search and then written by one sequential pass,
    so the tile should fit comfortably in L1/L2 (default 4096). *)
val merge_tile : unit -> int

val set_merge_tile : int -> unit

(** {2 Environment parsing} *)

(** [parse_pos_int ~key s]: [Ok None] for a blank string (use the
    default), [Ok (Some v)] for an integer [v >= 1], [Error msg]
    otherwise.  Exposed so tests can pin the grammar the [BDS_GRAIN] /
    [BDS_BLOCK_SIZE] / [BDS_BLOCKS_PER_WORKER] validation uses. *)
val parse_pos_int : key:string -> string -> (int option, string) result
