(* Per-domain log2-bucket latency histograms (see histogram.mli).

   Same discipline as [Telemetry]: each recording domain owns a private
   row of plain mutable ints reached through DLS, so [record] is a DLS
   read plus three unsynchronized stores — no atomics, no shared cache
   lines on the hot path.  [snapshot] reads every row racily from the
   aggregating domain; counts are single-word ints (no tearing) and only
   ever grow, so a snapshot is a monotone lower bound, exactly the
   contract [Telemetry.snapshot] already established. *)

let buckets = 64

type row = {
  counts : int array;  (* samples per bucket *)
  ns : int array;  (* summed duration per bucket *)
  mutable max_ns : int;
  (* Pad the record out past a cache line so two domains' rows never
     share one even when allocated back to back.  The arrays are
     separate blocks and padded by their own headers/lengths; only the
     row record itself needs explicit pads. *)
  mutable pad0 : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
  mutable pad4 : int;
  mutable pad5 : int;
  mutable pad6 : int;
  mutable pad7 : int;
  mutable pad8 : int;
  mutable pad9 : int;
  mutable pad10 : int;
  mutable pad11 : int;
  mutable pad12 : int;
}

type t = {
  key : row Domain.DLS.key;
  registry_mutex : Mutex.t;
  registry : row list ref;
}

let fresh_row () =
  {
    counts = Array.make buckets 0;
    ns = Array.make buckets 0;
    max_ns = 0;
    pad0 = 0;
    pad1 = 0;
    pad2 = 0;
    pad3 = 0;
    pad4 = 0;
    pad5 = 0;
    pad6 = 0;
    pad7 = 0;
    pad8 = 0;
    pad9 = 0;
    pad10 = 0;
    pad11 = 0;
    pad12 = 0;
  }

let create () =
  (* The key's init closure captures this histogram's registry, so a
     domain touching several histograms gets one private row in each. *)
  let registry_mutex = Mutex.create () in
  let registry = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let r = fresh_row () in
        Mutex.lock registry_mutex;
        registry := r :: !registry;
        Mutex.unlock registry_mutex;
        r)
  in
  { key; registry_mutex; registry }

(* Bucket [k] holds durations in [2^k, 2^(k+1)) ns, except bucket 0
   which also absorbs 0.  OCaml ints are 63-bit, so max_int lands in
   bucket 61 and the top slots are unreachable headroom; the [min] is
   belt-and-braces. *)
let[@inline] bucket_of_ns n =
  if n <= 1 then 0
  else
    let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
    min (buckets - 1) (log2 0 n)

(* Inclusive upper bound of bucket [k]; the top bucket has none. *)
let bucket_upper_ns k = if k >= buckets - 1 then max_int else (1 lsl (k + 1)) - 1

let record t ~ns:n =
  let n = if n < 0 then 0 else n in
  let r = Domain.DLS.get t.key in
  let b = bucket_of_ns n in
  r.counts.(b) <- r.counts.(b) + 1;
  r.ns.(b) <- r.ns.(b) + n;
  if n > r.max_ns then r.max_ns <- n

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = { s_counts : int array; s_ns : int array; s_max_ns : int }

let empty =
  { s_counts = Array.make buckets 0; s_ns = Array.make buckets 0; s_max_ns = 0 }

let merge a b =
  {
    s_counts = Array.init buckets (fun i -> a.s_counts.(i) + b.s_counts.(i));
    s_ns = Array.init buckets (fun i -> a.s_ns.(i) + b.s_ns.(i));
    s_max_ns = max a.s_max_ns b.s_max_ns;
  }

let snapshot t =
  Mutex.lock t.registry_mutex;
  let rows = !(t.registry) in
  Mutex.unlock t.registry_mutex;
  List.fold_left
    (fun acc r ->
      merge acc
        {
          s_counts = Array.copy r.counts;
          s_ns = Array.copy r.ns;
          s_max_ns = r.max_ns;
        })
    empty rows

let total_count s = Array.fold_left ( + ) 0 s.s_counts

let total_ns s = Array.fold_left ( + ) 0 s.s_ns

(* The p-th percentile is over-approximated by the inclusive upper
   bound of the bucket holding the p-th sample, clamped to the largest
   duration actually seen — so the estimate never exceeds the true
   maximum and is exact when all samples share a value recorded as
   [max_ns]. *)
let percentile s p =
  let n = total_count s in
  if n = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = if rank < 1 then 1 else rank in
    let rec find k seen =
      if k >= buckets then s.s_max_ns
      else
        let seen = seen + s.s_counts.(k) in
        if seen >= rank then min (bucket_upper_ns k) s.s_max_ns
        else find (k + 1) seen
    in
    find 0 0
  end

let p50 s = percentile s 50.
let p90 s = percentile s 90.
let p99 s = percentile s 99.
let max_ns s = s.s_max_ns

(* Fraction of recorded time spent in buckets entirely below
   [threshold_ns] — the grain diagnostic's "time in tiny chunks".
   Bucket granularity makes this an under-approximation by at most one
   bucket's worth, fine for a 25% warning threshold. *)
let time_below s ~threshold_ns =
  let acc = ref 0 in
  for k = 0 to buckets - 1 do
    if bucket_upper_ns k < threshold_ns then acc := !acc + s.s_ns.(k)
  done;
  !acc
