(** Per-domain, cache-line-padded log2-bucket latency histograms.

    The recording side follows {!Telemetry}'s always-cheap discipline:
    {!record} is one DLS read plus plain stores into a row private to
    the calling domain — lock-free and contention-free.  Aggregation
    ({!snapshot}) reads the rows racily; snapshots are monotone lower
    bounds, the same contract as {!Telemetry.snapshot}.

    Durations are nanoseconds in 64 buckets: bucket [k] spans
    [2^k, 2^(k+1)) ns (bucket 0 also absorbs 0; 63-bit ints mean the
    top slots are unreachable headroom), so percentiles are exact to a
    factor of 2 and additionally clamped to the true maximum seen. *)

type t

val create : unit -> t

val record : t -> ns:int -> unit
(** Record one duration (negative values are clamped to 0).  Safe to
    call concurrently from any domain. *)

(** {2 Aggregation} *)

type snapshot = {
  s_counts : int array;  (** samples per bucket (length {!buckets}) *)
  s_ns : int array;  (** summed duration per bucket *)
  s_max_ns : int;  (** largest single duration recorded *)
}

val buckets : int
(** Number of buckets (64). *)

val empty : snapshot

val snapshot : t -> snapshot
(** Racy-monotone sum over every domain's row. *)

val merge : snapshot -> snapshot -> snapshot
(** Element-wise sum, max of maxima.  Associative and commutative with
    {!empty} as identity. *)

val total_count : snapshot -> int

val total_ns : snapshot -> int

val percentile : snapshot -> float -> int
(** [percentile s p] for [p] in [0, 100] (clamped): the inclusive upper
    bound of the bucket holding the ceil(p%·n)-th sample, clamped to
    [s.s_max_ns].  0 when the snapshot is empty. *)

val p50 : snapshot -> int
val p90 : snapshot -> int
val p99 : snapshot -> int
val max_ns : snapshot -> int

val time_below : snapshot -> threshold_ns:int -> int
(** Summed duration of buckets entirely below [threshold_ns] — the
    profiler's "time spent in tiny chunks" diagnostic.  Bucket
    granularity makes it an under-approximation by at most one
    bucket. *)

val bucket_of_ns : int -> int
(** Bucket index a duration lands in (exposed for tests). *)

val bucket_upper_ns : int -> int
(** Inclusive upper bound of a bucket; [max_int] for the last
    (exposed for tests). *)
