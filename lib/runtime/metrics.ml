(* Labeled metrics registry + OpenMetrics exposition (see metrics.mli).

   One global mutex guards the registry and every update.  That is a
   deliberate non-optimisation: these families are touched at job
   lifecycle cadence (admit / complete / scrape), orders of magnitude
   below the per-element paths [Telemetry]'s padded per-domain counters
   serve, so a mutex keeps the semantics (exact counts, consistent
   render) trivially right where the racy-monotone counter discipline
   would buy nothing. *)

type kind = Counter | Gauge | Histogram

type series = {
  s_labels : (string * string) list; (* canonically sorted by name *)
  mutable s_int : int; (* Counter *)
  mutable s_float : float; (* Gauge *)
  mutable s_counts : int array; (* Histogram buckets; [||] until first obs *)
  mutable s_sum_ns : int;
  mutable s_count : int;
}

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_series : (string, series) Hashtbl.t; (* key: canonical label string *)
  mutable f_dropped : int; (* label sets refused by the cardinality cap *)
}

let max_series = 1024

let mutex = Mutex.create ()

let families : (string, family) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* ------------------------------------------------------------------ *)
(* Names and labels *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

(* Canonicalise a label set: validate names, sort by name, reject
   duplicates and the reserved [le]. *)
let canon_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: %s: invalid label name %S" name k);
      if k = "le" then
        invalid_arg (Printf.sprintf "Metrics: %s: label name \"le\" is reserved" name))
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as tl) ->
      if a = b then
        invalid_arg (Printf.sprintf "Metrics: %s: duplicate label %S" name a);
      check tl
    | _ -> ()
  in
  check sorted;
  sorted

let series_key labels =
  String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let family ?(help = "") ~kind name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid family name %S" name);
  if kind = Counter && has_suffix name "_total" then
    invalid_arg
      (Printf.sprintf
         "Metrics: %s: counter names must not end in _total (added at render)"
         name);
  with_lock (fun () ->
      match Hashtbl.find_opt families name with
      | Some f ->
        if f.f_kind <> kind then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered with another kind" name);
        f
      | None ->
        let f =
          { f_name = name; f_help = help; f_kind = kind;
            f_series = Hashtbl.create 8; f_dropped = 0 }
        in
        Hashtbl.add families name f;
        f)

(* Fetch-or-create a series under the lock; [None] once the family is at
   its cardinality cap (the caller's update is dropped and counted). *)
let series f labels =
  let labels = canon_labels f.f_name labels in
  let key = series_key labels in
  match Hashtbl.find_opt f.f_series key with
  | Some s -> Some s
  | None ->
    if Hashtbl.length f.f_series >= max_series then begin
      f.f_dropped <- f.f_dropped + 1;
      None
    end
    else begin
      let s =
        { s_labels = labels; s_int = 0; s_float = 0.0; s_counts = [||];
          s_sum_ns = 0; s_count = 0 }
      in
      Hashtbl.add f.f_series key s;
      Some s
    end

let incr ?(by = 1) f ~labels =
  if f.f_kind <> Counter then
    invalid_arg (Printf.sprintf "Metrics: %s is not a counter" f.f_name);
  if by < 0 then
    invalid_arg (Printf.sprintf "Metrics: %s: counters only go up" f.f_name);
  with_lock (fun () ->
      match series f labels with
      | None -> ()
      | Some s -> s.s_int <- s.s_int + by)

let set f ~labels v =
  if f.f_kind <> Gauge then
    invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" f.f_name);
  with_lock (fun () ->
      match series f labels with None -> () | Some s -> s.s_float <- v)

let observe_ns f ~labels ns =
  if f.f_kind <> Histogram then
    invalid_arg (Printf.sprintf "Metrics: %s is not a histogram" f.f_name);
  let ns = max 0 ns in
  with_lock (fun () ->
      match series f labels with
      | None -> ()
      | Some s ->
        if s.s_counts = [||] then s.s_counts <- Array.make Histogram.buckets 0;
        let b = Histogram.bucket_of_ns ns in
        s.s_counts.(b) <- s.s_counts.(b) + 1;
        s.s_sum_ns <- s.s_sum_ns + ns;
        s.s_count <- s.s_count + 1)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ f ->
          Hashtbl.reset f.f_series;
          f.f_dropped <- 0)
        families)

(* ------------------------------------------------------------------ *)
(* Exposition *)

let escape_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels b labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'

let seconds_of_ns ns = float_of_int ns /. 1e9

(* le bounds are [Histogram]'s inclusive bucket upper bounds, in
   seconds; %.9g keeps adjacent (2x apart) bounds distinct. *)
let le_string ns = Printf.sprintf "%.9g" (seconds_of_ns ns)

let render_sample b name labels value =
  Buffer.add_string b name;
  render_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b value;
  Buffer.add_char b '\n'

let render_family b f =
  if f.f_help <> "" then (
    Buffer.add_string b "# HELP ";
    Buffer.add_string b f.f_name;
    Buffer.add_char b ' ';
    Buffer.add_string b f.f_help;
    Buffer.add_char b '\n');
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b f.f_name;
  Buffer.add_string b
    (match f.f_kind with
    | Counter -> " counter\n"
    | Gauge -> " gauge\n"
    | Histogram -> " histogram\n");
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) f.f_series [] in
  List.iter
    (fun key ->
      let s = Hashtbl.find f.f_series key in
      match f.f_kind with
      | Counter ->
        render_sample b (f.f_name ^ "_total") s.s_labels (string_of_int s.s_int)
      | Gauge ->
        render_sample b f.f_name s.s_labels (Printf.sprintf "%g" s.s_float)
      | Histogram ->
        (* Cumulative buckets up to the highest non-empty one, then
           +Inf.  The le label sorts into position with the rest so the
           canonical sorted-label invariant holds for buckets too. *)
        let hi = ref (-1) in
        Array.iteri (fun i c -> if c > 0 then hi := i) s.s_counts;
        let cum = ref 0 in
        let with_le le =
          List.sort (fun (a, _) (b, _) -> compare a b) (("le", le) :: s.s_labels)
        in
        for k = 0 to min !hi (Histogram.buckets - 2) do
          cum := !cum + s.s_counts.(k);
          render_sample b (f.f_name ^ "_bucket")
            (with_le (le_string (Histogram.bucket_upper_ns k)))
            (string_of_int !cum)
        done;
        render_sample b (f.f_name ^ "_bucket") (with_le "+Inf")
          (string_of_int s.s_count);
        render_sample b (f.f_name ^ "_count") s.s_labels
          (string_of_int s.s_count);
        render_sample b (f.f_name ^ "_sum") s.s_labels
          (Printf.sprintf "%.9g" (seconds_of_ns s.s_sum_ns)))
    (List.sort compare keys)

let render () =
  let b = Buffer.create 4096 in
  with_lock (fun () ->
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) families [] in
      List.iter
        (fun name -> render_family b (Hashtbl.find families name))
        (List.sort compare names);
      (* Cardinality-cap drops, always present so scrapers can alert on
         it going non-zero. *)
      let dropped =
        Hashtbl.fold (fun _ f acc -> acc + f.f_dropped) families 0
      in
      Buffer.add_string b "# TYPE bds_metrics_dropped_series counter\n";
      render_sample b "bds_metrics_dropped_series_total" []
        (string_of_int dropped));
  (* Telemetry bridge: the always-on padded counters, re-exposed as
     unlabeled series so one scrape carries both layers. *)
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "# TYPE bds_runtime_";
      Buffer.add_string b k;
      Buffer.add_string b " counter\n";
      render_sample b ("bds_runtime_" ^ k ^ "_total") [] (string_of_int v))
    (Telemetry.to_assoc (Telemetry.snapshot ()));
  Buffer.add_string b "# TYPE bds_uptime_seconds gauge\n";
  render_sample b "bds_uptime_seconds" []
    (Printf.sprintf "%.9g" (float_of_int (Telemetry.uptime_ns ()) /. 1e9));
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Validation *)

exception Bad of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Bad (Printf.sprintf "line %d: %s" line s))) fmt

let bump (r : int ref) = r := !r + 1

(* Parse [name{l="v",...} value] into (name, labels, value). *)
let parse_sample lineno line =
  let n = String.length line in
  let i = ref 0 in
  while
    !i < n
    && (match line.[!i] with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
       | _ -> false)
  do
    bump i
  done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then fail lineno "invalid metric name in %S" line;
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    bump i;
    let expect c =
      if !i >= n || line.[!i] <> c then
        fail lineno "expected %C at column %d" c (!i + 1);
      bump i
    in
    let parse_one () =
      let j = ref !i in
      while
        !j < n
        && (match line.[!j] with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
           | _ -> false)
      do
        bump j
      done;
      let lname = String.sub line !i (!j - !i) in
      if not (valid_name lname) then fail lineno "invalid label name";
      i := !j;
      expect '=';
      expect '"';
      let b = Buffer.create 16 in
      let rec scan () =
        if !i >= n then fail lineno "unterminated label value"
        else
          match line.[!i] with
          | '"' -> bump i
          | '\\' ->
            if !i + 1 >= n then fail lineno "dangling backslash";
            (match line.[!i + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c -> fail lineno "invalid escape \\%c in label value" c);
            i := !i + 2;
            scan ()
          | c ->
            Buffer.add_char b c;
            bump i;
            scan ()
      in
      scan ();
      labels := (lname, Buffer.contents b) :: !labels
    in
    if !i < n && line.[!i] = '}' then bump i
    else begin
      let rec loop () =
        parse_one ();
        if !i < n && line.[!i] = ',' then begin
          bump i;
          loop ()
        end
        else expect '}'
      in
      loop ()
    end
  end;
  if !i >= n || line.[!i] <> ' ' then fail lineno "expected space before value";
  let value = String.sub line (!i + 1) (n - !i - 1) in
  if value = "" then fail lineno "missing value";
  (name, List.rev !labels, value)

let float_of_value lineno v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail lineno "value %S is not a number" v

type hist_acc = {
  mutable h_buckets : (float * float) list; (* (le, cumulative) reversed *)
  mutable h_saw_inf : bool;
  mutable h_count : float option;
  mutable h_sum : bool;
  h_line : int; (* first line of the group, for error messages *)
}

let validate_string text =
  let lines = String.split_on_char '\n' text in
  (* A trailing newline yields one final empty element; drop it. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let declared : (string, kind) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, hist_acc) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let saw_eof = ref false in
  let check_sorted lineno labels =
    let rec go = function
      | (a, _) :: ((b, _) :: _ as tl) ->
        if a >= b then fail lineno "labels not sorted (or duplicated): %s, %s" a b;
        go tl
      | _ -> ()
    in
    go labels
  in
  let hist_key base labels =
    base ^ "\x00" ^ series_key (List.filter (fun (k, _) -> k <> "le") labels)
  in
  try
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        if !saw_eof then fail lineno "content after # EOF"
        else if line = "# EOF" then saw_eof := true
        else if line = "" then fail lineno "blank line"
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "HELP" :: name :: _ :: _ ->
            if not (valid_name name) then fail lineno "HELP for invalid name"
          | "#" :: "TYPE" :: name :: [ k ] ->
            if not (valid_name name) then fail lineno "TYPE for invalid name";
            if Hashtbl.mem declared name then fail lineno "duplicate TYPE for %s" name;
            let kind =
              match k with
              | "counter" -> Counter
              | "gauge" -> Gauge
              | "histogram" -> Histogram
              | _ -> fail lineno "unknown metric type %S" k
            in
            Hashtbl.add declared name kind
          | _ -> fail lineno "malformed comment line %S" line
        end
        else begin
          let name, labels, value = parse_sample lineno line in
          check_sorted lineno labels;
          let v = float_of_value lineno value in
          bump samples;
          let chop suf =
            String.sub name 0 (String.length name - String.length suf)
          in
          let declared_as base = Hashtbl.find_opt declared base in
          if declared_as name = Some Gauge then ()
          else if has_suffix name "_total" && declared_as (chop "_total") = Some Counter
          then begin
            if List.mem_assoc "le" labels then fail lineno "counter with le label"
          end
          else if has_suffix name "_bucket" && declared_as (chop "_bucket") = Some Histogram
          then begin
            let base = chop "_bucket" in
            let le =
              match List.assoc_opt "le" labels with
              | None -> fail lineno "_bucket without le label"
              | Some "+Inf" -> infinity
              | Some s -> (
                match float_of_string_opt s with
                | Some f -> f
                | None -> fail lineno "le value %S is not a number" s)
            in
            let key = hist_key base labels in
            let acc =
              match Hashtbl.find_opt hists key with
              | Some a -> a
              | None ->
                let a =
                  { h_buckets = []; h_saw_inf = false; h_count = None;
                    h_sum = false; h_line = lineno }
                in
                Hashtbl.add hists key a;
                a
            in
            if acc.h_saw_inf then fail lineno "bucket after +Inf";
            (match acc.h_buckets with
            | (prev_le, prev_c) :: _ ->
              if not (le > prev_le) then fail lineno "le bounds not increasing";
              if v < prev_c then fail lineno "histogram buckets not cumulative"
            | [] -> ());
            acc.h_buckets <- (le, v) :: acc.h_buckets;
            if le = infinity then acc.h_saw_inf <- true
          end
          else if has_suffix name "_count" && declared_as (chop "_count") = Some Histogram
          then begin
            let key = hist_key (chop "_count") labels in
            match Hashtbl.find_opt hists key with
            | None -> fail lineno "_count before its buckets"
            | Some acc -> acc.h_count <- Some v
          end
          else if has_suffix name "_sum" && declared_as (chop "_sum") = Some Histogram
          then begin
            let key = hist_key (chop "_sum") labels in
            match Hashtbl.find_opt hists key with
            | None -> fail lineno "_sum before its buckets"
            | Some acc -> acc.h_sum <- true
          end
          else fail lineno "sample %s has no matching TYPE declaration" name
        end)
      lines;
    if not !saw_eof then raise (Bad "missing terminating # EOF");
    Hashtbl.iter
      (fun _ acc ->
        if not acc.h_saw_inf then
          fail acc.h_line "histogram series missing +Inf bucket";
        (match (acc.h_count, acc.h_buckets) with
        | Some c, (_, inf_c) :: _ ->
          if c <> inf_c then fail acc.h_line "_count disagrees with +Inf bucket"
        | None, _ -> fail acc.h_line "histogram series missing _count"
        | _, [] -> assert false);
        if not acc.h_sum then fail acc.h_line "histogram series missing _sum")
      hists;
    Ok !samples
  with Bad e -> Error e

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> validate_string s
