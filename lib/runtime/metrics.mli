(** Labeled service metrics with OpenMetrics text exposition.

    A process-global registry of metric families — {!kind} [Counter],
    [Gauge] or [Histogram] — each holding one series per distinct label
    set (e.g. [tenant], job [kind], [outcome]).  The registry layers
    *over* {!Telemetry}: the padded per-domain counters stay the hot-path
    mechanism, and {!render} bridges them into the exposition as
    unlabeled [bds_runtime_*_total] series, while the families here
    carry the labeled, service-cadence measurements (per-tenant queue
    depth, per-outcome latency) that aggregate counters cannot.

    Updates take one global mutex — deliberately: families are bumped at
    job-lifecycle cadence (admission, completion), never inside kernel
    loops, so contention is irrelevant and the implementation stays
    obviously correct.  Do not put a [Metrics] update on a per-element
    path; that is what {!Telemetry} is for.

    Histograms reuse {!Histogram}'s log2-nanosecond bucketing and render
    as cumulative OpenMetrics [_bucket{le="<seconds>"}] series plus
    [_sum]/[_count].

    Cardinality is bounded: a family holds at most {!max_series} label
    sets; further label sets are dropped (counted by the always-present
    [bds_metrics_dropped_series_total] series) rather than growing
    without bound under adversarial tenant names.

    The exposition produced by {!render} is OpenMetrics-flavoured
    Prometheus text format, terminated by the required [# EOF] line —
    which doubles as the end-of-response marker for the [METRICS]
    protocol verb.  {!validate_string} is a dependency-free structural
    checker for that format (grammar, label ordering and escaping,
    histogram bucket monotonicity) backing [bds_probe metrics-check]
    and the unit tests. *)

type kind = Counter | Gauge | Histogram

type family

val max_series : int
(** Per-family label-set cap (1024). *)

val family : ?help:string -> kind:kind -> string -> family
(** [family ~kind name] registers (or retrieves) the family [name].
    Idempotent per name; raises [Invalid_argument] if [name] is not a
    valid metric name ([\[a-zA-Z_\]\[a-zA-Z0-9_\]*]) or if [name] is
    already registered with a different [kind].  Counter family names
    must not already end in [_total] (the suffix is appended when
    rendering). *)

val incr : ?by:int -> family -> labels:(string * string) list -> unit
(** Add [by] (default 1, must be >= 0) to a counter series.  [labels]
    is a [(name, value)] list in any order; label names must be valid
    and distinct, and [le] is reserved.  Raises [Invalid_argument] on a
    non-counter family or malformed labels. *)

val set : family -> labels:(string * string) list -> float -> unit
(** Set a gauge series to a value.  Raises on a non-gauge family. *)

val observe_ns : family -> labels:(string * string) list -> int -> unit
(** Record one duration (nanoseconds, clamped at 0) into a histogram
    series.  Rendered with [le] bounds in {e seconds}.  Raises on a
    non-histogram family. *)

val render : unit -> string
(** The full exposition: every registered family (sorted by name, series
    sorted by label set), the {!Telemetry} counter bridge
    ([bds_runtime_<counter>_total]), [bds_uptime_seconds], the
    cardinality-drop counter, and the terminating [# EOF] line. *)

val validate_string : string -> (int, string) result
(** Structural check of an exposition: line grammar, every sample
    declared by a preceding [# TYPE] with the suffix its kind demands,
    label names valid / sorted / unrepeated, label values correctly
    escaped, histogram buckets cumulative and [le]-increasing ending at
    [+Inf] with [_count] consistent, and a final [# EOF].  Returns the
    number of sample lines. *)

val validate_file : string -> (int, string) result
(** {!validate_string} on a file's contents. *)

val reset : unit -> unit
(** Drop every series' values (families stay registered) — test
    isolation, mirroring [Trace.reset]. *)
