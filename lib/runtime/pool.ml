(* Fork-join task pool over OCaml 5 domains.

   Architecture (mirrors the schedulers underlying the paper's MPL and
   ParlayLib substrates):
   - one Chase-Lev deque per worker; the domain that calls [run] occupies
     worker slot 0, and [num_additional_domains] spawned domains occupy
     slots 1..n;
   - [async] pushes a task on the current worker's deque (or a mutex-
     protected overflow queue when called from outside the pool);
   - idle workers steal from victims in round-robin order, then block on a
     condition variable after a bounded spin;
   - [await] suspends the current fiber with an effect when the promise is
     unresolved; the continuation is re-scheduled by whoever fulfills the
     promise.  Work-first [par] means suspension is rare: the local pop
     usually retrieves the task we just pushed.

   Failure semantics (docs/RUNTIME.md "Failure semantics"):
   - [async]/[run] on a torn-down pool raise [Shutdown] instead of
     queueing work that nobody will run;
   - [teardown] switches workers into drain mode: every already-queued
     task is executed (so its promise resolves) before domains exit, and
     the tearing-down caller drains any stragglers itself — no promise is
     left forever pending;
   - an exception escaping the scheduler on a worker domain (tasks proper
     are exception-contained by their promise wrappers) poisons the pool:
     the crash is recorded with a diagnostic, remaining workers wind
     down, and [run]/[async]/[await] raise [Worker_crashed] instead of
     deadlocking on a promise whose fulfiller died;
   - if [Domain.spawn] fails during [create], the pool degrades to the
     workers that did spawn (down to just the runner slot) with a logged
     warning instead of aborting. *)

type 'a state =
  | Pending of (unit -> unit) list
  | Returned of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

type task = unit -> unit

type t = {
  deques : task Ws_deque.t array;
  overflow : task Queue.t;
  overflow_mutex : Mutex.t;
  (* Queue.length mirror maintained under [overflow_mutex]; reading the
     Queue itself without the mutex is a data race under OCaml 5's memory
     model, so lock-free emptiness pre-checks read this instead. *)
  overflow_size : int Atomic.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  idlers : int Atomic.t;
  shutdown : bool Atomic.t;
  (* [teardown] completed: domains joined and queues drained. *)
  terminated : bool Atomic.t;
  (* [teardown] claimed (separately from [shutdown], which a worker crash
     also sets): guarantees join/drain runs exactly once. *)
  tearing_down : bool Atomic.t;
  (* First scheduler-level crash on a worker domain, with its backtrace. *)
  poisoned : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable domains : unit Domain.t array;
  (* Worker slots actually live (spawn failures degrade this below
     [Array.length deques]). *)
  mutable live : int;
  runner_mutex : Mutex.t;
  steals : int Atomic.t; (* statistics: successful steals *)
  executed : int Atomic.t; (* statistics: tasks executed *)
}

type _ Effect.t += Suspend : ((unit -> unit) -> bool) -> unit Effect.t

exception Shutdown

exception Worker_crashed of string

let log_src = Logs.Src.create "bds.runtime" ~doc:"Block-delayed sequences task pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Worker context: which pool and which deque slot the current domain is
   operating, if any. *)
type context = { ctx_pool : t; ctx_id : int }

let context_key : context option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get context_key)

let set_context c = Domain.DLS.get context_key := c

let size pool = pool.live

(* ------------------------------------------------------------------ *)
(* Poisoning and liveness                                              *)

let crash_diagnostic exn =
  Printf.sprintf
    "Pool: worker domain crashed with %s; pool is poisoned (see logs for \
     backtrace)"
    (Printexc.to_string exn)

let wake_idlers pool =
  if Atomic.get pool.idlers > 0 then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end

(* Record a scheduler-level crash: keep the first one, stop accepting
   work, and wake everyone so blocked workers / the runner observe it. *)
let poison pool exn bt =
  ignore (Atomic.compare_and_set pool.poisoned None (Some (exn, bt)));
  Atomic.set pool.shutdown true;
  Log.err (fun m ->
      m "%s@.%s" (crash_diagnostic exn) (Printexc.raw_backtrace_to_string bt));
  wake_idlers pool

let health pool =
  match Atomic.get pool.poisoned with
  | Some (exn, _) -> `Poisoned (crash_diagnostic exn)
  | None -> if Atomic.get pool.shutdown then `Shutdown else `Ok

(* Fail fast on pools that can no longer make progress. *)
let check_alive pool =
  match Atomic.get pool.poisoned with
  | Some (exn, _) -> raise (Worker_crashed (crash_diagnostic exn))
  | None -> if Atomic.get pool.shutdown then raise Shutdown

let has_visible_work pool =
  let rec scan i =
    if i >= Array.length pool.deques then false
    else if not (Ws_deque.is_empty pool.deques.(i)) then true
    else scan (i + 1)
  in
  Atomic.get pool.overflow_size > 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Task acquisition                                                    *)

let pop_overflow pool =
  (* Lock-free pre-check on the atomic mirror only — inspecting the
     [Queue.t] itself requires [overflow_mutex]. *)
  if Atomic.get pool.overflow_size = 0 then None
  else begin
    Mutex.lock pool.overflow_mutex;
    let v =
      if Queue.is_empty pool.overflow then None
      else begin
        Atomic.decr pool.overflow_size;
        Some (Queue.pop pool.overflow)
      end
    in
    Mutex.unlock pool.overflow_mutex;
    v
  end

(* Chaos steal starvation is suppressed once the pool is shutting down so
   drain mode always terminates. *)
let steal_from pool victim =
  if (not (Atomic.get pool.shutdown)) && Chaos.starve_steal () then None
  else
    match Ws_deque.steal pool.deques.(victim) with
    | Some _ as r ->
      Atomic.incr pool.steals;
      r
    | None -> None

let try_steal pool me =
  let n = Array.length pool.deques in
  let rec loop k =
    if k >= n then None
    else begin
      let victim = (me + k) mod n in
      if victim = me then loop (k + 1)
      else
        match steal_from pool victim with
        | Some _ as r -> r
        | None -> loop (k + 1)
    end
  in
  loop 1

let get_task pool me =
  match Ws_deque.pop pool.deques.(me) with
  | Some _ as r -> r
  | None -> (
      match pop_overflow pool with
      | Some _ as r -> r
      | None -> try_steal pool me)

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

let push_task pool task =
  Telemetry.incr_tasks_spawned ();
  (match current_context () with
  | Some { ctx_pool; ctx_id } when ctx_pool == pool ->
    Ws_deque.push pool.deques.(ctx_id) task
  | _ ->
    Telemetry.incr_overflow_pushes ();
    Mutex.lock pool.overflow_mutex;
    Queue.push task pool.overflow;
    Atomic.incr pool.overflow_size;
    Mutex.unlock pool.overflow_mutex);
  wake_idlers pool

(* Run one task under the suspend handler.  The handler closes over the
   pool so that resumed continuations are rescheduled on it.

   The ambient cancellation token (Cancel.ambient) is fiber-local state:
   when a fiber suspends here, its token is snapshotted off this domain's
   DLS and reinstalled on whichever domain resumes the remainder, so the
   resumed code polls *its own* scope's token rather than whatever the
   hosting domain happens to be running.  The domain's own ambient value
   is restored around both the suspension and the whole task, so a fiber
   can never leak its scope's token into the worker loop (where a stale
   cancelled token would make an unrelated healthy scope raise).

   The profiler's ambient op context (Profile.ambient) follows the exact
   same discipline: snapshotted at suspension, reinstalled at resumption,
   restored around the whole task — so a migrated fiber keeps attributing
   time to its own op, and a worker domain never inherits a stale one. *)
let execute pool (task : task) =
  Atomic.incr pool.executed;
  let saved = Cancel.ambient () in
  let saved_prof = Profile.ambient () in
  match
    Effect.Deep.try_with task ()
      {
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let amb = Cancel.ambient () in
                  let amb_prof = Profile.ambient () in
                  Cancel.set_ambient None;
                  Profile.set_ambient Profile.no_ambient;
                  let resume () =
                    push_task pool (fun () ->
                        Cancel.set_ambient amb;
                        Profile.set_ambient amb_prof;
                        Effect.Deep.continue k ())
                  in
                  if not (register resume) then begin
                    (* Already resolved: resume immediately, same domain. *)
                    Cancel.set_ambient amb;
                    Profile.set_ambient amb_prof;
                    Effect.Deep.continue k ()
                  end)
            | _ -> None);
      }
  with
  | () ->
    Cancel.set_ambient saved;
    Profile.set_ambient saved_prof
  | exception e ->
    Cancel.set_ambient saved;
    Profile.set_ambient saved_prof;
    raise e

(* [execute] with scheduler-crash containment, for task loops that must
   not die on a raw task raising (nothing escapes a well-formed task: the
   promise wrappers catch; anything that does escape is a scheduler bug
   or an injected crash, and poisons the pool instead of killing us). *)
let execute_contained pool task =
  try execute pool task
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    poison pool exn bt

(* ------------------------------------------------------------------ *)
(* Promises                                                            *)

let promise () : 'a promise = Atomic.make (Pending [])

let rec fulfill (p : 'a promise) (result : 'a state) =
  match Atomic.get p with
  | Pending waiters as old ->
    if Atomic.compare_and_set p old result then List.iter (fun w -> w ()) waiters
    else fulfill p result
  | Returned _ | Raised _ ->
    (* Double fulfill is a scheduler-level bug, but raising here would
       kill the worker domain that tripped it.  Contain it instead: keep
       the first result and log loudly.  Deliberately no ambient-scope
       cancel here: by the time a second fulfill runs, this domain's
       ambient token (if any) belongs to whatever unrelated scope is
       currently executing, not to the promise's owner. *)
    Log.err (fun m ->
        m "Pool: promise fulfilled twice; second result dropped%s"
          (match result with
          | Raised (e, _) -> Printf.sprintf " (dropped exception: %s)" (Printexc.to_string e)
          | _ -> ""))

(* Returns false if the promise was already resolved (caller must not
   suspend). *)
let rec add_waiter (p : 'a promise) (w : unit -> unit) =
  match Atomic.get p with
  | Pending waiters as old ->
    if Atomic.compare_and_set p old (Pending (w :: waiters)) then true
    else add_waiter p w
  | Returned _ | Raised _ -> false

let promise_result (p : 'a promise) : 'a =
  match Atomic.get p with
  | Returned v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending _ -> assert false

let still_pending (p : 'a promise) =
  match Atomic.get p with Pending _ -> true | _ -> false

(* Non-blocking observers, for callers (the job service) that must wait
   for a promise from a sys-thread without spinning in [await]'s
   outside-pool help loop.  [on_resolve]'s thunk runs on the fulfilling
   domain, synchronously inside [fulfill]'s waiter sweep — it must be
   fast and must not raise (a raise there would escape the scheduler on
   a worker domain and poison the pool). *)

let peek (p : 'a promise) =
  match Atomic.get p with
  | Pending _ -> None
  | Returned v -> Some (Ok v)
  | Raised (e, bt) -> Some (Error (e, bt))

let on_resolve (p : 'a promise) (w : unit -> unit) =
  if not (add_waiter p w) then w ()

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)

let spin_rounds = 64

(* Workers keep executing while work is visible.  Once [shutdown] is set
   they switch to drain mode: keep taking tasks until none remain, then
   exit — so teardown resolves every queued promise deterministically. *)
let rec worker_loop pool me =
  match get_task pool me with
  | Some task ->
    execute pool task;
    worker_loop pool me
  | None ->
    if Atomic.get pool.shutdown then ()
    else begin
      idle pool me;
      worker_loop pool me
    end

and idle pool me =
  (* Bounded spin before sleeping. *)
  let rec spin k =
    if k = 0 then false
    else
      match get_task pool me with
      | Some task ->
        execute pool task;
        true
      | None ->
        Domain.cpu_relax ();
        spin (k - 1)
  in
  if not (spin spin_rounds) then begin
    Atomic.incr pool.idlers;
    Mutex.lock pool.idle_mutex;
    (* Re-check under the lock: wakers broadcast while holding it. *)
    if (not (has_visible_work pool)) && not (Atomic.get pool.shutdown) then
      Condition.wait pool.idle_cond pool.idle_mutex;
    Mutex.unlock pool.idle_mutex;
    Atomic.decr pool.idlers
  end

let worker_main pool me () =
  set_context (Some { ctx_pool = pool; ctx_id = me });
  (try worker_loop pool me
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     poison pool exn bt);
  set_context None

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let create ?(num_additional_domains = 0) () =
  if num_additional_domains < 0 then
    invalid_arg "Pool.create: negative domain count";
  let n = num_additional_domains + 1 in
  let pool =
    {
      deques = Array.init n (fun _ -> Ws_deque.create ());
      overflow = Queue.create ();
      overflow_mutex = Mutex.create ();
      overflow_size = Atomic.make 0;
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      idlers = Atomic.make 0;
      shutdown = Atomic.make false;
      terminated = Atomic.make false;
      tearing_down = Atomic.make false;
      poisoned = Atomic.make None;
      domains = [||];
      live = n;
      runner_mutex = Mutex.create ();
      steals = Atomic.make 0;
      executed = Atomic.make 0;
    }
  in
  (* Graceful degradation: a failed [Domain.spawn] (e.g. the OS refusing
     more threads) shrinks the pool to the workers that did start instead
     of aborting pool creation. *)
  let spawned = ref [] in
  (try
     for i = 1 to num_additional_domains do
       spawned := Domain.spawn (worker_main pool i) :: !spawned
     done
   with exn ->
     Log.warn (fun m ->
         m
           "Pool.create: Domain.spawn failed (%s); degrading to %d worker \
            slot(s) instead of %d"
           (Printexc.to_string exn)
           (List.length !spawned + 1)
           n));
  pool.domains <- Array.of_list (List.rev !spawned);
  pool.live <- Array.length pool.domains + 1;
  Log.debug (fun m ->
      m "pool created: %d worker slots (%d spawned domains); %s" pool.live
        (Array.length pool.domains) (Chaos.describe ()));
  pool

(* For non-members: take work without touching any deque's owner end. *)
let steal_or_overflow pool =
  match pop_overflow pool with
  | Some _ as r -> r
  | None ->
    let n = Array.length pool.deques in
    let rec loop i =
      if i >= n then None
      else
        match steal_from pool i with
        | Some _ as r -> r
        | None -> loop (i + 1)
    in
    loop 0

let teardown pool =
  if not (Atomic.exchange pool.tearing_down true) then begin
    Atomic.set pool.shutdown true;
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex;
    (* Workers drain their queues (see [worker_loop]) and exit. *)
    Array.iter Domain.join pool.domains;
    pool.domains <- [||];
    (* Stragglers: tasks pushed to the (now ownerless) deques or to the
       overflow queue after the workers stopped looking.  Execute them
       here so their promises resolve — crash-contained, since we must
       finish teardown regardless. *)
    let rec drain () =
      match steal_or_overflow pool with
      | Some task ->
        execute_contained pool task;
        drain ()
      | None -> ()
    in
    drain ();
    Atomic.set pool.terminated true;
    (* Torn-down pools are the natural trace boundary: workers have
       joined, so every ring buffer is quiescent.  Same for the adaptive
       decision table — checkpoint it while no region is mid-flight. *)
    Trace.flush ();
    Autotune.persist ();
    Log.debug (fun m ->
        m "pool torn down: %d tasks executed, %d steals"
          (Atomic.get pool.executed) (Atomic.get pool.steals))
  end

let in_context pool =
  match current_context () with
  | Some { ctx_pool; _ } -> ctx_pool == pool
  | None -> false

(* True when the calling worker's own deque has no pending tasks (racy
   snapshot). Used by lazy binary splitting: split only when thieves
   could actually take the other half. Returns true for non-members. *)
let local_deque_empty pool =
  match current_context () with
  | Some { ctx_pool; ctx_id } when ctx_pool == pool ->
    Ws_deque.is_empty pool.deques.(ctx_id)
  | _ -> true

let promise_task f p () =
  match
    Chaos.point_task ();
    f ()
  with
  | v -> fulfill p (Returned v)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    fulfill p (Raised (e, bt))

let async pool f =
  check_alive pool;
  let p = promise () in
  push_task pool (promise_task f p);
  p

(* Submission path for sys-threads that may share a domain with a pool
   member: the worker-context DLS is domain-local, so such a thread can
   observe the member's context and [push_task] would then touch the
   member's deque owner-side — a single-owner violation.  Routing
   unconditionally through the mutex-protected overflow queue is always
   safe, whatever thread calls it. *)
let async_external pool f =
  check_alive pool;
  let p = promise () in
  Telemetry.incr_tasks_spawned ();
  Telemetry.incr_overflow_pushes ();
  Mutex.lock pool.overflow_mutex;
  Queue.push (promise_task f p) pool.overflow;
  Atomic.incr pool.overflow_size;
  Mutex.unlock pool.overflow_mutex;
  wake_idlers pool;
  p

let await pool p =
  (match Atomic.get p with
  | Pending _ ->
    if in_context pool then
      Effect.perform (Suspend (fun resume -> add_waiter p resume))
    else
      (* Called from outside the pool (no handler installed): help by
         draining the overflow queue and stealing, so progress is
         guaranteed even on a pool with no spawned workers and no active
         [run].  Fail fast instead of spinning forever when the pool can
         no longer resolve the promise: poisoned, or fully terminated
         with no work left to run.  Each fail-fast raise re-checks the
         promise one final time first: teardown's drain (or a concurrent
         worker) may have resolved it after we observed it pending, and
         the documented guarantee is that a resolved promise's result is
         always returned. *)
      while
        match Atomic.get p with
        | Pending _ ->
          (match Atomic.get pool.poisoned with
          | Some (exn, _) when still_pending p ->
            raise (Worker_crashed (crash_diagnostic exn))
          | _ -> ());
          (match steal_or_overflow pool with
          | Some task -> execute_contained pool task
          | None ->
            if Atomic.get pool.terminated && still_pending p then raise Shutdown
            else Domain.cpu_relax ());
          true
        | _ -> false
      do
        ()
      done
  | Returned _ | Raised _ -> ());
  promise_result p

let run pool f =
  check_alive pool;
  if in_context pool then
    (* Already inside the pool: just run inline under the existing
       handler. *)
    f ()
  else begin
    Mutex.lock pool.runner_mutex;
    let saved = current_context () in
    set_context (Some { ctx_pool = pool; ctx_id = 0 });
    Fun.protect
      ~finally:(fun () ->
        set_context saved;
        Mutex.unlock pool.runner_mutex)
      (fun () ->
        let p = promise () in
        let task () =
          match
            Chaos.point_task ();
            f ()
          with
          | v -> fulfill p (Returned v)
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            fulfill p (Raised (e, bt))
        in
        execute pool task;
        (* Participate as worker 0 until the root promise resolves.  If a
           worker domain crashes while we wait, surface the poisoning as
           [Worker_crashed] instead of spinning on a promise that may
           never resolve — unless the promise resolved in the meantime
           (re-checked under the [when] guard), in which case its result
           wins. *)
        let rec help () =
          match Atomic.get p with
          | Pending _ ->
            (match Atomic.get pool.poisoned with
            | Some (exn, _) when still_pending p ->
              raise (Worker_crashed (crash_diagnostic exn))
            | _ -> ());
            (match get_task pool 0 with
            | Some task -> execute_contained pool task
            | None -> Domain.cpu_relax ());
            help ()
          | Returned _ | Raised _ -> ()
        in
        help ();
        promise_result p)
  end

let stats pool = (Atomic.get pool.executed, Atomic.get pool.steals)

(* ------------------------------------------------------------------ *)
(* Test backdoors                                                      *)

module For_testing = struct
  let inject_raw_task pool task = push_task pool task
end
