(* Fork-join task pool over OCaml 5 domains.

   Architecture (mirrors the schedulers underlying the paper's MPL and
   ParlayLib substrates):
   - one Chase-Lev deque per worker; the domain that calls [run] occupies
     worker slot 0, and [num_additional_domains] spawned domains occupy
     slots 1..n;
   - [async] pushes a task on the current worker's deque (or a mutex-
     protected overflow queue when called from outside the pool);
   - idle workers steal from victims in round-robin order, then block on a
     condition variable after a bounded spin;
   - [await] suspends the current fiber with an effect when the promise is
     unresolved; the continuation is re-scheduled by whoever fulfills the
     promise.  Work-first [par] means suspension is rare: the local pop
     usually retrieves the task we just pushed. *)

type 'a state =
  | Pending of (unit -> unit) list
  | Returned of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

type task = unit -> unit

type t = {
  deques : task Ws_deque.t array;
  overflow : task Queue.t;
  overflow_mutex : Mutex.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  idlers : int Atomic.t;
  shutdown : bool Atomic.t;
  mutable domains : unit Domain.t array;
  runner_mutex : Mutex.t;
  steals : int Atomic.t; (* statistics: successful steals *)
  executed : int Atomic.t; (* statistics: tasks executed *)
}

type _ Effect.t += Suspend : ((unit -> unit) -> bool) -> unit Effect.t

exception Shutdown

let log_src = Logs.Src.create "bds.runtime" ~doc:"Block-delayed sequences task pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Worker context: which pool and which deque slot the current domain is
   operating, if any. *)
type context = { ctx_pool : t; ctx_id : int }

let context_key : context option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get context_key)

let set_context c = Domain.DLS.get context_key := c

let size pool = Array.length pool.deques

(* ------------------------------------------------------------------ *)
(* Waking and sleeping                                                 *)

let wake_idlers pool =
  if Atomic.get pool.idlers > 0 then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end

let has_visible_work pool =
  let rec scan i =
    if i >= Array.length pool.deques then false
    else if not (Ws_deque.is_empty pool.deques.(i)) then true
    else scan (i + 1)
  in
  (not (Queue.is_empty pool.overflow)) || scan 0

(* ------------------------------------------------------------------ *)
(* Task acquisition                                                    *)

let pop_overflow pool =
  if Queue.is_empty pool.overflow then None
  else begin
    Mutex.lock pool.overflow_mutex;
    let v = if Queue.is_empty pool.overflow then None else Some (Queue.pop pool.overflow) in
    Mutex.unlock pool.overflow_mutex;
    v
  end

let try_steal pool me =
  let n = Array.length pool.deques in
  let rec loop k =
    if k >= n then None
    else begin
      let victim = (me + k) mod n in
      if victim = me then loop (k + 1)
      else
        match Ws_deque.steal pool.deques.(victim) with
        | Some _ as r ->
          Atomic.incr pool.steals;
          r
        | None -> loop (k + 1)
    end
  in
  loop 1

let get_task pool me =
  match Ws_deque.pop pool.deques.(me) with
  | Some _ as r -> r
  | None -> (
      match pop_overflow pool with
      | Some _ as r -> r
      | None -> try_steal pool me)

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

let push_task pool task =
  (match current_context () with
  | Some { ctx_pool; ctx_id } when ctx_pool == pool ->
    Ws_deque.push pool.deques.(ctx_id) task
  | _ ->
    Mutex.lock pool.overflow_mutex;
    Queue.push task pool.overflow;
    Mutex.unlock pool.overflow_mutex);
  wake_idlers pool

(* Run one task under the suspend handler.  The handler closes over the
   pool so that resumed continuations are rescheduled on it. *)
let execute pool (task : task) =
  Atomic.incr pool.executed;
  Effect.Deep.try_with task ()
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let resume () =
                  push_task pool (fun () -> Effect.Deep.continue k ())
                in
                if not (register resume) then Effect.Deep.continue k ())
          | _ -> None);
    }

(* ------------------------------------------------------------------ *)
(* Promises                                                            *)

let promise () : 'a promise = Atomic.make (Pending [])

let rec fulfill (p : 'a promise) (result : 'a state) =
  match Atomic.get p with
  | Pending waiters as old ->
    if Atomic.compare_and_set p old result then List.iter (fun w -> w ()) waiters
    else fulfill p result
  | Returned _ | Raised _ -> invalid_arg "Pool: promise fulfilled twice"

(* Returns false if the promise was already resolved (caller must not
   suspend). *)
let rec add_waiter (p : 'a promise) (w : unit -> unit) =
  match Atomic.get p with
  | Pending waiters as old ->
    if Atomic.compare_and_set p old (Pending (w :: waiters)) then true
    else add_waiter p w
  | Returned _ | Raised _ -> false

let promise_result (p : 'a promise) : 'a =
  match Atomic.get p with
  | Returned v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending _ -> assert false

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)

let spin_rounds = 64

let rec worker_loop pool me =
  if Atomic.get pool.shutdown then ()
  else begin
    (match get_task pool me with
    | Some task -> execute pool task
    | None -> idle pool me);
    worker_loop pool me
  end

and idle pool me =
  (* Bounded spin before sleeping. *)
  let rec spin k =
    if k = 0 then false
    else
      match get_task pool me with
      | Some task ->
        execute pool task;
        true
      | None ->
        Domain.cpu_relax ();
        spin (k - 1)
  in
  if not (spin spin_rounds) then begin
    Atomic.incr pool.idlers;
    Mutex.lock pool.idle_mutex;
    (* Re-check under the lock: wakers broadcast while holding it. *)
    if (not (has_visible_work pool)) && not (Atomic.get pool.shutdown) then
      Condition.wait pool.idle_cond pool.idle_mutex;
    Mutex.unlock pool.idle_mutex;
    Atomic.decr pool.idlers
  end

let worker_main pool me () =
  set_context (Some { ctx_pool = pool; ctx_id = me });
  worker_loop pool me;
  set_context None

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let create ?(num_additional_domains = 0) () =
  if num_additional_domains < 0 then
    invalid_arg "Pool.create: negative domain count";
  let n = num_additional_domains + 1 in
  let pool =
    {
      deques = Array.init n (fun _ -> Ws_deque.create ());
      overflow = Queue.create ();
      overflow_mutex = Mutex.create ();
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      idlers = Atomic.make 0;
      shutdown = Atomic.make false;
      domains = [||];
      runner_mutex = Mutex.create ();
      steals = Atomic.make 0;
      executed = Atomic.make 0;
    }
  in
  pool.domains <-
    Array.init num_additional_domains (fun i ->
        Domain.spawn (worker_main pool (i + 1)));
  Log.debug (fun m ->
      m "pool created: %d worker slots (%d spawned domains)" n
        num_additional_domains);
  pool

let teardown pool =
  if not (Atomic.get pool.shutdown) then begin
    Atomic.set pool.shutdown true;
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||];
    Log.debug (fun m ->
        m "pool torn down: %d tasks executed, %d steals"
          (Atomic.get pool.executed) (Atomic.get pool.steals))
  end

let in_context pool =
  match current_context () with
  | Some { ctx_pool; _ } -> ctx_pool == pool
  | None -> false

(* True when the calling worker's own deque has no pending tasks (racy
   snapshot). Used by lazy binary splitting: split only when thieves
   could actually take the other half. Returns true for non-members. *)
let local_deque_empty pool =
  match current_context () with
  | Some { ctx_pool; ctx_id } when ctx_pool == pool ->
    Ws_deque.is_empty pool.deques.(ctx_id)
  | _ -> true

let async pool f =
  let p = promise () in
  let task () =
    match f () with
    | v -> fulfill p (Returned v)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      fulfill p (Raised (e, bt))
  in
  push_task pool task;
  p

(* For non-members: take work without touching any deque's owner end. *)
let steal_or_overflow pool =
  match pop_overflow pool with
  | Some _ as r -> r
  | None ->
    let n = Array.length pool.deques in
    let rec loop i =
      if i >= n then None
      else
        match Ws_deque.steal pool.deques.(i) with
        | Some _ as r ->
          Atomic.incr pool.steals;
          r
        | None -> loop (i + 1)
    in
    loop 0

let await pool p =
  (match Atomic.get p with
  | Pending _ ->
    if in_context pool then
      Effect.perform (Suspend (fun resume -> add_waiter p resume))
    else
      (* Called from outside the pool (no handler installed): help by
         draining the overflow queue and stealing, so progress is
         guaranteed even on a pool with no spawned workers and no active
         [run]. *)
      while
        match Atomic.get p with
        | Pending _ ->
          (match steal_or_overflow pool with
          | Some task -> execute pool task
          | None -> Domain.cpu_relax ());
          true
        | _ -> false
      do
        ()
      done
  | Returned _ | Raised _ -> ());
  promise_result p

let run pool f =
  if Atomic.get pool.shutdown then raise Shutdown;
  if in_context pool then
    (* Already inside the pool: just run inline under the existing
       handler. *)
    f ()
  else begin
    Mutex.lock pool.runner_mutex;
    let saved = current_context () in
    set_context (Some { ctx_pool = pool; ctx_id = 0 });
    let p = promise () in
    let task () =
      match f () with
      | v -> fulfill p (Returned v)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        fulfill p (Raised (e, bt))
    in
    execute pool task;
    (* Participate as worker 0 until the root promise resolves. *)
    let rec help () =
      match Atomic.get p with
      | Pending _ ->
        (match get_task pool 0 with
        | Some task -> execute pool task
        | None -> Domain.cpu_relax ());
        help ()
      | Returned _ | Raised _ -> ()
    in
    help ();
    set_context saved;
    Mutex.unlock pool.runner_mutex;
    promise_result p
  end

let stats pool = (Atomic.get pool.executed, Atomic.get pool.steals)
