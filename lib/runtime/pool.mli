(** Fork-join task pool over OCaml 5 domains, with Chase-Lev work stealing
    and effects-based suspension.

    This is the parallel runtime substrate for the block-delayed sequence
    library — the role played by the MPL scheduler / ParlayLib in the
    paper's implementations. *)

type t

(** A handle to an asynchronous computation producing ['a]. *)
type 'a promise

exception Shutdown

(** [create ~num_additional_domains ()] spawns that many worker domains.
    The domain that later calls {!run} participates as an extra worker, so
    total parallelism is [num_additional_domains + 1]. *)
val create : ?num_additional_domains:int -> unit -> t

(** Total number of workers, including the runner slot. *)
val size : t -> int

(** Stop and join all worker domains. Idempotent. *)
val teardown : t -> unit

(** [async pool f] schedules [f] and immediately returns its promise. May
    be called from inside or outside pool tasks. *)
val async : t -> (unit -> 'a) -> 'a promise

(** [await pool p] returns the result of [p], re-raising any exception with
    its original backtrace. Inside the pool this suspends the fiber without
    blocking the worker; outside it spins. *)
val await : t -> 'a promise -> 'a

(** [run pool f] executes [f] with the calling domain acting as worker 0
    and returns its result. Only one concurrent [run] per pool; calls from
    within pool tasks execute [f] inline. *)
val run : t -> (unit -> 'a) -> 'a

(** [(executed, steals)] counters, for observability and tests. *)
val stats : t -> int * int

(** True when the calling domain is currently a worker of [pool]. *)
val in_context : t -> bool

(** True when the calling worker's own deque is empty (racy snapshot;
    true for non-members). Basis for lazy binary splitting. *)
val local_deque_empty : t -> bool
