(** Fork-join task pool over OCaml 5 domains, with Chase-Lev work stealing
    and effects-based suspension.

    This is the parallel runtime substrate for the block-delayed sequence
    library — the role played by the MPL scheduler / ParlayLib in the
    paper's implementations.

    Failure semantics (see docs/RUNTIME.md): submitting to or running on a
    torn-down pool raises {!Shutdown}; {!teardown} drains all queued tasks
    so no promise is left pending; a scheduler-level crash on a worker
    domain poisons the pool and surfaces as {!Worker_crashed} instead of
    deadlocking. *)

type t

(** A handle to an asynchronous computation producing ['a]. *)
type 'a promise

(** Raised by {!async} / {!run} / {!await} on a pool that has been torn
    down (fail fast instead of queueing work nobody will execute, or
    spinning on a promise nobody will fulfill). *)
exception Shutdown

(** Raised when the pool is poisoned: an exception escaped the scheduler
    on a worker domain (task-body exceptions are contained by promises and
    never poison the pool).  The payload is a human-readable diagnostic. *)
exception Worker_crashed of string

(** [create ~num_additional_domains ()] spawns that many worker domains.
    The domain that later calls {!run} participates as an extra worker, so
    total parallelism is [num_additional_domains + 1].  If [Domain.spawn]
    fails partway, the pool degrades to the domains that did spawn (down
    to just the runner slot) with a logged warning. *)
val create : ?num_additional_domains:int -> unit -> t

(** Total number of live workers, including the runner slot (may be less
    than requested if spawning degraded). *)
val size : t -> int

(** Stop the pool: workers finish every queued task (drain mode), domains
    are joined, and any straggler tasks are executed by the caller so all
    promises resolve deterministically. Idempotent. *)
val teardown : t -> unit

(** [async pool f] schedules [f] and immediately returns its promise. May
    be called from inside or outside pool tasks.
    @raise Shutdown on a torn-down pool.
    @raise Worker_crashed on a poisoned pool. *)
val async : t -> (unit -> 'a) -> 'a promise

(** [await pool p] returns the result of [p], re-raising any exception with
    its original backtrace. Inside the pool this suspends the fiber without
    blocking the worker; outside it helps execute tasks.
    @raise Shutdown if the pool terminated with [p] unresolvable.
    @raise Worker_crashed if the pool is poisoned while waiting. *)
val await : t -> 'a promise -> 'a

(** Like {!async}, but always routes the task through the external
    overflow queue, never the calling worker's deque.  Required for
    sys-threads that may {e share a domain} with a pool member (e.g. the
    job service's runner threads on the main domain): the worker context
    is domain-local, so such a thread could otherwise push to a deque it
    does not own concurrently with the owner.
    @raise Shutdown on a torn-down pool.
    @raise Worker_crashed on a poisoned pool. *)
val async_external : t -> (unit -> 'a) -> 'a promise

(** [peek p] is the promise's result if it has resolved ([Ok] /
    [Error (exn, backtrace)]), or [None] while pending.  Never blocks,
    never raises. *)
val peek : 'a promise -> ('a, exn * Printexc.raw_backtrace) result option

(** [on_resolve p w] runs [w] as soon as [p] resolves — immediately (in
    the calling thread) if it already has, otherwise on whichever domain
    fulfills it, synchronously inside the fulfill path.  [w] must be
    cheap and must not raise.  This is how the job service's runner
    threads get woken by a condition variable instead of spinning in
    {!await}'s outside-pool help loop. *)
val on_resolve : 'a promise -> (unit -> unit) -> unit

(** [run pool f] executes [f] with the calling domain acting as worker 0
    and returns its result. Only one concurrent [run] per pool; calls from
    within pool tasks execute [f] inline.
    @raise Shutdown on a torn-down pool.
    @raise Worker_crashed on a poisoned pool. *)
val run : t -> (unit -> 'a) -> 'a

(** Pool liveness: [`Ok], [`Shutdown] after {!teardown} began, or
    [`Poisoned diag] after a worker-domain crash. *)
val health : t -> [ `Ok | `Shutdown | `Poisoned of string ]

(** [(executed, steals)] counters, for observability and tests. *)
val stats : t -> int * int

(** True when the calling domain is currently a worker of [pool]. *)
val in_context : t -> bool

(** True when the calling worker's own deque is empty (racy snapshot;
    true for non-members). Basis for lazy binary splitting. *)
val local_deque_empty : t -> bool

(** Test backdoors — not part of the public contract. *)
module For_testing : sig
  (** Push a raw task that bypasses the promise wrapper: if it raises, the
      exception escapes the scheduler and poisons the pool.  Used to test
      worker-crash containment. *)
  val inject_raw_task : t -> (unit -> unit) -> unit
end
