(* Opt-in per-operation work/span profiler (see profile.mli).

   Activation mirrors [Trace]: one atomic bool, read once per
   instrumentation point, set from [BDS_PROFILE] at startup (empty or
   "0" is the explicit opt-out) or from [set_enabled] in tests — OR'd
   with [Grain.adaptive], since the adaptive controller consumes this
   module's labels and leaf timings.  With both off every hook is two
   atomic loads and nothing else, so the hooks stay compiled into the
   library unconditionally.

   Attribution model (a Cilkview-flavoured estimate, not an exact DAG
   measurement):

   - an *op* is an outermost user-facing operation (Seq.map, Seq.scan,
     Psort.sort, a Stream fold...).  [with_op] is outermost-wins: nested
     ops — flatten calling to_array, a sort's merge calling a Seq op —
     fold into the enclosing op so wall time is never double-counted.
   - *wall* is the op's elapsed time on the calling fiber.
   - *work* is the summed duration of the op's sequential leaves
     (scheduler chunks, block bodies, sort base cases), each recorded
     into the op's per-domain latency histogram.
   - *span* is estimated per parallel region (one [Runtime] primitive
     call) as the region's longest single leaf; the op's span is its
     serial time outside regions plus the sum of region maxima, clamped
     to [1, wall].  Purely sequential ops therefore get span = wall.
   - derived: parallelism = work / wall (achieved, "burdened"
     parallelism — on a 1-worker pool this is ~1.0 by construction);
     utilization = parallelism / workers; and a grain diagnostic from
     the fraction of leaf time spent in leaves shorter than
     [tiny_chunk_ns].

   Ambient state (the current op and an in-leaf flag) is fiber-local in
   the same sense as [Cancel.ambient]: it lives in DLS, and [Pool]'s
   suspend handler snapshots it via [ambient]/[set_ambient] so a fiber
   resumed on another domain keeps profiling into its own op rather than
   whatever the hosting domain was doing.  Epilogues re-read the
   *current* domain's slot (the fiber may have migrated since the
   prologue ran).

   The clock is [Unix.gettimeofday] rebased to a process-start epoch
   (the [Trace] trick: keeps the float mantissa dense so the ns
   conversion stays µs-accurate).  OCaml's stdlib exposes no monotonic
   clock; µs resolution is plenty for leaves that the grain policy
   already sizes in the tens of µs. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "BDS_PROFILE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

(* The adaptive controller ([Autotune]) needs op labels and leaf timings
   — exactly this module's instrumentation — so adaptive mode implies
   profiling: with both off a hook is two atomic loads, still cheap
   enough to stay compiled in unconditionally. *)
let[@inline] enabled () = Atomic.get enabled_flag || Grain.adaptive ()

let set_enabled b = Atomic.set enabled_flag b

let epoch = Unix.gettimeofday ()

let[@inline] now_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

(* ------------------------------------------------------------------ *)
(* Op registry *)

type op = {
  name : string;
  calls : int Atomic.t;
  wall_ns : int Atomic.t;
  span_ns : int Atomic.t;
  chunks : Histogram.t;  (* leaf durations; total_ns is the op's work *)
}

let registry_mutex = Mutex.create ()

let registry : (string, op) Hashtbl.t = Hashtbl.create 16

let find_op name =
  Mutex.lock registry_mutex;
  let op =
    match Hashtbl.find_opt registry name with
    | Some op -> op
    | None ->
      let op =
        {
          name;
          calls = Atomic.make 0;
          wall_ns = Atomic.make 0;
          span_ns = Atomic.make 0;
          chunks = Histogram.create ();
        }
      in
      Hashtbl.add registry name op;
      op
  in
  Mutex.unlock registry_mutex;
  op

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Ambient fiber state *)

type ctx = {
  op : op;
  t0 : int;
  (* Mutated only by the owning fiber (ordinary sequential code from its
     point of view; migration is ordered through the scheduler's
     atomics), read once at [with_op]'s epilogue. *)
  mutable prim_wall : int;  (* summed wall of the op's parallel regions *)
  mutable prim_span : int;  (* summed longest-leaf of those regions *)
}

type dls = { mutable cur : ctx option; mutable in_leaf : bool }

let dls_key : dls Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cur = None; in_leaf = false })

type ambient = { a_cur : ctx option; a_in_leaf : bool }

let no_ambient = { a_cur = None; a_in_leaf = false }

let ambient () =
  if not (enabled ()) then no_ambient
  else
    let d = Domain.DLS.get dls_key in
    match d.cur with
    | None when not d.in_leaf -> no_ambient
    | _ -> { a_cur = d.cur; a_in_leaf = d.in_leaf }

let set_ambient a =
  let d = Domain.DLS.get dls_key in
  d.cur <- a.a_cur;
  d.in_leaf <- a.a_in_leaf

(* ------------------------------------------------------------------ *)
(* Instrumentation *)

let with_op name f =
  if not (enabled ()) then f ()
  else begin
    let d = Domain.DLS.get dls_key in
    (* Outermost wins; leaves never open ops (a Stream fold inside a
       Seq block driver is already accounted as that block's leaf). *)
    if d.cur <> None || d.in_leaf then f ()
    else begin
      let op = find_op name in
      let ctx = { op; t0 = now_ns (); prim_wall = 0; prim_span = 0 } in
      d.cur <- Some ctx;
      let finish () =
        (Domain.DLS.get dls_key).cur <- None;
        let wall = max 1 (now_ns () - ctx.t0) in
        Atomic.incr op.calls;
        ignore (Atomic.fetch_and_add op.wall_ns wall);
        let span = wall - ctx.prim_wall + ctx.prim_span in
        let span = if span < 1 then 1 else if span > wall then wall else span in
        ignore (Atomic.fetch_and_add op.span_ns span)
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        (* Account cancelled/failed ops too: a run that dies half-way is
           exactly the one whose profile gets inspected. *)
        finish ();
        raise e
    end
  end

type region_data = {
  r_ctx : ctx;
  r_t0 : int;
  r_max_leaf : int Atomic.t;
  (* Per-region leaf accounting for the adaptive controller: how many
     leaves this region ran and their summed duration (the region's
     work).  Fetch-and-add from worker domains; read once at region end
     by [region_stats]. *)
  r_leaves : int Atomic.t;
  r_leaf_ns : int Atomic.t;
}

type region = region_data option

type region_stats = { leaves : int; leaf_ns : int; max_leaf_ns : int }

let region_begin () =
  if not (enabled ()) then None
  else
    let d = Domain.DLS.get dls_key in
    match d.cur with
    | None -> None
    | Some ctx ->
      Some
        {
          r_ctx = ctx;
          r_t0 = now_ns ();
          r_max_leaf = Atomic.make 0;
          r_leaves = Atomic.make 0;
          r_leaf_ns = Atomic.make 0;
        }

let region_stats : region -> region_stats option = function
  | None -> None
  | Some r ->
    Some
      {
        leaves = Atomic.get r.r_leaves;
        leaf_ns = Atomic.get r.r_leaf_ns;
        max_leaf_ns = Atomic.get r.r_max_leaf;
      }

(* The op open on this fiber, if any: how the adaptive controller keys
   its decision table without threading labels through every call
   site. *)
let current_op_name () =
  if not (enabled ()) then None
  else
    let d = Domain.DLS.get dls_key in
    match d.cur with Some ctx -> Some ctx.op.name | None -> None

let region_end = function
  | None -> ()
  | Some r ->
    let w = max 0 (now_ns () - r.r_t0) in
    let m = min (Atomic.get r.r_max_leaf) w in
    r.r_ctx.prim_wall <- r.r_ctx.prim_wall + w;
    r.r_ctx.prim_span <- r.r_ctx.prim_span + m

let with_region f =
  match region_begin () with
  | None -> f None
  | Some _ as r -> (
    match f r with
    | v ->
      region_end r;
      v
    | exception e ->
      region_end r;
      raise e)

let leaf (r : region) f =
  match r with
  | None -> f ()
  | Some r ->
    let d = Domain.DLS.get dls_key in
    let saved = d.in_leaf in
    d.in_leaf <- true;
    let t0 = now_ns () in
    let finish () =
      (Domain.DLS.get dls_key).in_leaf <- saved;
      let dt = max 0 (now_ns () - t0) in
      Histogram.record r.r_ctx.op.chunks ~ns:dt;
      Atomic.incr r.r_leaves;
      ignore (Atomic.fetch_and_add r.r_leaf_ns dt);
      let rec bump () =
        let cur = Atomic.get r.r_max_leaf in
        if dt > cur && not (Atomic.compare_and_set r.r_max_leaf cur dt) then
          bump ()
      in
      bump ()
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let seq_op name f =
  if not (enabled ()) then f ()
  else
    let d = Domain.DLS.get dls_key in
    if d.in_leaf then f ()
    else
      match d.cur with
      (* Inside an op body, outside any leaf (e.g. a Stream fold driven
         directly from an op's spine): account it as a leaf of the
         enclosing op. *)
      | Some _ -> with_region (fun r -> leaf r f)
      | None -> with_op name (fun () -> with_region (fun r -> leaf r f))

(* ------------------------------------------------------------------ *)
(* Reporting *)

let tiny_chunk_ns = 5_000

let tiny_warn_fraction = 0.25

type row = {
  r_name : string;
  r_calls : int;
  r_wall_ns : int;
  r_work_ns : int;
  r_span_ns : int;
  r_chunks : int;
  r_p50_ns : int;
  r_p99_ns : int;
  r_max_chunk_ns : int;
  r_parallelism : float;
  r_tiny_fraction : float;  (* share of leaf time in leaves < tiny_chunk_ns *)
}

let rows () =
  Mutex.lock registry_mutex;
  let ops = Hashtbl.fold (fun _ op acc -> op :: acc) registry [] in
  Mutex.unlock registry_mutex;
  ops
  |> List.filter_map (fun op ->
         let calls = Atomic.get op.calls in
         if calls = 0 then None
         else begin
           let h = Histogram.snapshot op.chunks in
           let work = Histogram.total_ns h in
           let wall = max 1 (Atomic.get op.wall_ns) in
           let tiny =
             if work = 0 then 0.
             else
               float_of_int (Histogram.time_below h ~threshold_ns:tiny_chunk_ns)
               /. float_of_int work
           in
           Some
             {
               r_name = op.name;
               r_calls = calls;
               r_wall_ns = wall;
               r_work_ns = work;
               r_span_ns = Atomic.get op.span_ns;
               r_chunks = Histogram.total_count h;
               r_p50_ns = Histogram.p50 h;
               r_p99_ns = Histogram.p99 h;
               r_max_chunk_ns = Histogram.max_ns h;
               r_parallelism = float_of_int work /. float_of_int wall;
               r_tiny_fraction = tiny;
             }
         end)
  |> List.sort (fun a b -> String.compare a.r_name b.r_name)

let grain_warning row =
  if row.r_chunks > 0 && row.r_tiny_fraction > tiny_warn_fraction then
    Some
      (Printf.sprintf
         "%s: chunks too small: %.0f%% of chunk time < %dus (raise \
          BDS_GRAIN / BDS_BLOCK_SIZE)"
         row.r_name
         (100. *. row.r_tiny_fraction)
         (tiny_chunk_ns / 1000))
  else None

let pp_ns n =
  let f = float_of_int n in
  if n < 1_000 then Printf.sprintf "%dns" n
  else if n < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if n < 1_000_000_000 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let render ~workers rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "profile report (%d worker%s)\n" workers
       (if workers = 1 then "" else "s"));
  Buffer.add_string b
    "op calls chunks p50 p99 work span parallelism utilization\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s %d %d %s %s %s %s %.1f %.2f\n" r.r_name r.r_calls
           r.r_chunks (pp_ns r.r_p50_ns) (pp_ns r.r_p99_ns) (pp_ns r.r_work_ns)
           (pp_ns r.r_span_ns) r.r_parallelism
           (r.r_parallelism /. float_of_int (max 1 workers))))
    rows;
  List.iter
    (fun r ->
      match grain_warning r with
      | Some w -> Buffer.add_string b ("warning: " ^ w ^ "\n")
      | None -> ())
    rows;
  if rows = [] then
    Buffer.add_string b "(no ops recorded; set BDS_PROFILE=1 and run a pipeline)\n";
  Buffer.contents b

let render_json ~workers rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"workers\":%d,\"ops\":[" workers);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"calls\":%d,\"chunks\":%d,\"wall_ns\":%d,\"work_ns\":%d,\"span_ns\":%d,\"p50_ns\":%d,\"p99_ns\":%d,\"max_chunk_ns\":%d,\"parallelism\":%.3f,\"utilization\":%.3f,\"tiny_fraction\":%.3f}"
           r.r_name r.r_calls r.r_chunks r.r_wall_ns r.r_work_ns r.r_span_ns
           r.r_p50_ns r.r_p99_ns r.r_max_chunk_ns r.r_parallelism
           (r.r_parallelism /. float_of_int (max 1 workers))
           r.r_tiny_fraction))
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b
