(** Opt-in per-operation work/span profiler.

    Set [BDS_PROFILE=1] (empty or ["0"] is the explicit opt-out, like
    [BDS_TRACE]/[BDS_CHAOS]) and every profiled operation — the [Seq]
    combinators, [Psort.sort], [Stream]'s linear folds — accumulates
    under its op name: call count, wall time, {e work} (summed duration
    of its sequential leaves, kept in a per-domain {!Histogram} so
    p50/p99/max leaf latency come for free), and a {e span} estimate
    (serial time plus each parallel region's longest leaf).  From these
    the report derives achieved parallelism (work/wall), per-worker
    utilization, and a Cilkview-style grain diagnostic ("chunks too
    small: 41% of chunk time < 5µs").

    Disabled, every instrumentation point costs two atomic loads.  The
    ambient op context is fiber-local exactly like [Cancel.ambient]:
    [Pool]'s suspend handler carries it across fiber migration via
    {!ambient}/{!set_ambient}. *)

val enabled : unit -> bool
(** [BDS_PROFILE] / {!set_enabled}, OR'd with [Grain.adaptive]: the
    adaptive controller ([Autotune]) consumes this module's op labels
    and leaf timings, so turning adaptation on turns instrumentation
    on. *)

val set_enabled : bool -> unit
(** Override [BDS_PROFILE] at runtime (tests, [bds_probe report]). *)

(** {2 Instrumentation points} *)

val with_op : string -> (unit -> 'a) -> 'a
(** [with_op name f] runs [f] as profiled operation [name].  Outermost
    wins: when an op is already open on this fiber (or [f] runs inside a
    profiled leaf), [f] just runs — its time folds into the enclosing
    op. *)

type region
(** One parallel region (a [Runtime] primitive call) inside an op.
    [None]-like when profiling is off or no op is open, making the hook
    free to thread through uninstrumented paths. *)

val region_begin : unit -> region

val region_end : region -> unit

val with_region : (region -> 'a) -> 'a
(** [with_region f] brackets [f] with {!region_begin}/{!region_end}
    (also on exception) and hands it the region for its leaves. *)

(** What one region's leaves amounted to; the adaptive controller's
    end-of-region observation ([Autotune.obs_end]). *)
type region_stats = { leaves : int; leaf_ns : int; max_leaf_ns : int }

val region_stats : region -> region_stats option
(** Leaf count / summed leaf duration / longest leaf of a live or
    finished region ([None] when the region is the free placeholder).
    Complete once the region's parallel phase has joined. *)

val current_op_name : unit -> string option
(** The op open on the calling fiber, if any — how [Autotune] keys its
    decision table without threading labels through call sites. *)

val leaf : region -> (unit -> 'a) -> 'a
(** [leaf r f] times [f] as one sequential leaf of [r]'s op: the
    duration is recorded in the op's latency histogram (work) and
    CAS-maxed into the region (span).  Callable from any domain — worker
    leaves capture [r] in their closures.  While [f] runs the domain is
    marked in-leaf, so nested {!with_op}/{!seq_op} calls stay free. *)

val seq_op : string -> (unit -> 'a) -> 'a
(** Profile a sequential operation (e.g. a [Stream] fold): outermost, it
    opens op [name] and records the whole run as a single leaf
    (work = wall, parallelism 1); under an open op it records a leaf of
    that op; inside a profiled leaf it is free. *)

(** {2 Fiber-local ambient state} — used by [Pool]'s suspend handler;
    same contract as [Cancel.ambient]/[Cancel.set_ambient]. *)

type ambient

val no_ambient : ambient

val ambient : unit -> ambient

val set_ambient : ambient -> unit

(** {2 Reporting} *)

val tiny_chunk_ns : int
(** Leaves shorter than this (5µs) count toward the grain diagnostic. *)

val tiny_warn_fraction : float
(** Warn when tiny leaves hold more than this share (0.25) of work. *)

type row = {
  r_name : string;
  r_calls : int;
  r_wall_ns : int;  (** summed wall time of outermost calls *)
  r_work_ns : int;  (** summed leaf durations *)
  r_span_ns : int;  (** summed critical-path estimates *)
  r_chunks : int;  (** leaves recorded *)
  r_p50_ns : int;  (** median leaf latency *)
  r_p99_ns : int;
  r_max_chunk_ns : int;
  r_parallelism : float;  (** work / wall *)
  r_tiny_fraction : float;  (** share of work in leaves < {!tiny_chunk_ns} *)
}

val rows : unit -> row list
(** One row per op with at least one completed call, sorted by name. *)

val grain_warning : row -> string option
(** The grain diagnostic for a row, when it trips. *)

val render : workers:int -> row list -> string
(** Human-readable table plus grain warnings ([bds_probe report]). *)

val render_json : workers:int -> row list -> string
(** Machine-readable form of {!render} ([bds_probe report --json]). *)

val reset : unit -> unit
(** Drop all recorded ops (test isolation). *)
