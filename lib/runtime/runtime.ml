(* High-level parallel primitives over Pool, plus a process-global default
   pool.  [apply] is the paper's sole parallel primitive (Figure 7):
   divide-and-conquer over the iteration space.

   Every combinator here is a *cancellation scope*: it owns a
   [Cancel.t] token; the first exception in any branch records itself in
   the token and cancels it, un-started subtasks observe the token and
   become no-ops, and sequential grain chunks poll it every
   [poll_mask + 1] iterations — so a poisoned 10M-iteration loop stops
   within a few thousand iterations instead of running to completion.
   The scope root re-raises the recorded first exception, preserving the
   sequential program's observable failure. *)

(* Poll the cancellation token every 64 iterations of a sequential chunk:
   cheap enough to be invisible on fine-grained bodies, frequent enough
   that a cancelled scope wastes at most ~64 iterations per in-flight
   chunk. *)
let poll_mask = 63

let global : Pool.t option Atomic.t = Atomic.make None

let requested_domains () =
  match Sys.getenv_opt "BDS_NUM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec get_pool () =
  match Atomic.get global with
  | Some p -> p
  | None ->
    let p = Pool.create ~num_additional_domains:(requested_domains () - 1) () in
    if Atomic.compare_and_set global None (Some p) then p
    else begin
      Pool.teardown p;
      get_pool ()
    end

let set_num_domains n =
  if n < 1 then invalid_arg "Runtime.set_num_domains";
  (* Publish the new pool with a single [exchange]: a concurrent
     [get_pool] either sees the old pool (about to be drained) or the new
     one — it can neither resurrect the old pool after its teardown nor
     race [get_pool]'s CAS into leaking the pool we just made. *)
  let fresh = Pool.create ~num_additional_domains:(n - 1) () in
  match Atomic.exchange global (Some fresh) with
  | Some old -> Pool.teardown old
  | None -> ()

let shutdown () =
  match Atomic.exchange global None with
  | Some p -> Pool.teardown p
  | None -> ()

let num_workers () = Pool.size (get_pool ())

(* [run f] enters the pool if we are not already inside it. *)
let run f = Pool.run (get_pool ()) f

(* ------------------------------------------------------------------ *)
(* Cancellation-scope plumbing *)

(* Fresh token for a new scope, nested under the innermost scope whose
   chunk is executing on this domain (if any), so cancelling an outer
   loop reaches into inner ones. *)
let scope_token () = Cancel.create ?parent:(Cancel.ambient ()) ()

(* Record [e] as the scope's first failure ([Cancelled] itself is only
   ever scope-unwinding noise, never a reason). *)
let record tok e bt =
  match e with Cancel.Cancelled -> () | _ -> Cancel.cancel_with tok e bt

(* Scope root: run the spine; on any exception re-raise the *first*
   failure recorded in the token — the exception the sequential program
   would have raised — rather than whichever [Cancelled] unwound the
   spine fastest. *)
let scoped tok thunk =
  match thunk () with
  | v -> v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    record tok e bt;
    (match Cancel.reason tok with
    | Some (e0, bt0) -> Printexc.raise_with_backtrace e0 bt0
    | None -> Printexc.raise_with_backtrace e bt)

(* Run one sequential chunk [lo, hi) of [body] under [tok]: ambient for
   nested scopes and [Seq]'s block-boundary polls, token polled every
   [poll_mask + 1] iterations, first failure recorded. *)
let seq_chunk_body tok body lo hi =
  Cancel.with_ambient tok (fun () ->
      try
        for i = lo to hi - 1 do
          if (i - lo) land poll_mask = 0 then Cancel.check tok;
          body i
        done
      with
      | Cancel.Cancelled as e -> raise e
      | e ->
        let bt = Printexc.get_raw_backtrace () in
        record tok e bt;
        Printexc.raise_with_backtrace e bt)

(* [prof] is the enclosing primitive's profile region (free when
   profiling is off or no op is open): each chunk is one profiled leaf,
   so leaf latency lands in the op's histogram and the region's
   longest-leaf span estimate. *)
let seq_chunk prof tok body lo hi =
  Telemetry.incr_chunks_executed ();
  Profile.leaf prof (fun () ->
      if Trace.enabled () then
        Trace.with_span ~cat:"chunk" ~lo ~hi "chunk" (fun () ->
            seq_chunk_body tok body lo hi)
      else seq_chunk_body tok body lo hi)

let par f g =
  let pool = get_pool () in
  let tok = scope_token () in
  let branch h () =
    (* Un-started branches of a cancelled scope become no-ops. *)
    Cancel.check tok;
    Cancel.with_ambient tok (fun () ->
        try h ()
        with
        | Cancel.Cancelled as e -> raise e
        | e ->
          let bt = Printexc.get_raw_backtrace () in
          record tok e bt;
          Printexc.raise_with_backtrace e bt)
  in
  Trace.with_span "par" (fun () ->
      Pool.run pool (fun () ->
          scoped tok (fun () ->
              let pg = Pool.async pool (branch g) in
              let a = branch f () in
              let b = Pool.await pool pg in
              (a, b))))

(* Sequential base-case threshold: delegated to the unified granularity
   layer (Grain.leaf_grain — about 32 leaf chunks per worker, or the
   BDS_GRAIN override).  The policy rationale lives in docs/RUNTIME.md
   "Granularity policy". *)
let auto_grain n = Grain.leaf_grain ~workers:(num_workers ()) n

(* The block grid the block-based layers (Parray, Rad, Seq) use for an
   [n]-element input: the worker count is supplied here so Grain stays a
   pure policy module.  With adaptation on, the controller's per-(op,
   size, workers) block size wins over the static policy (but never over
   an explicit policy — [Autotune.block_size] defers then). *)
let block_grid n =
  let workers = num_workers () in
  match Autotune.block_size ~workers n with
  | Some bs ->
    { Grain.n; block_size = bs; num_blocks = Grain.num_blocks ~block_size:bs n }
  | None -> Grain.grid ~workers n

(* Adaptive prologue/epilogue for an auto-grained element loop: consult
   the controller only when the caller left the grain to us (an explicit
   [?grain] — like an explicit BDS_GRAIN — always wins and is never even
   observed), and report the region's leaf stats back at the join.  The
   epilogue runs inside [with_region]'s success path only: failed or
   cancelled regions teach the controller nothing. *)
let tune_decision grain n =
  match grain with
  | Some _ -> None
  | None -> Autotune.leaf_decision ~n ~workers:(num_workers ())

let tune_observe tune prof =
  match tune with
  | Some (_, o) -> Autotune.obs_end o (Profile.region_stats prof)
  | None -> ()

let parallel_for ?grain lo hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let pool = get_pool () in
    let tok = scope_token () in
    let tune = tune_decision grain n in
    let grain =
      match (grain, tune) with
      | Some g, _ -> max 1 g
      | None, Some (g, _) -> max 1 g
      | None, None -> max 1 (auto_grain n)
    in
    Profile.with_region (fun prof ->
        let rec go lo hi =
          Cancel.check tok;
          if hi - lo <= grain then seq_chunk prof tok body lo hi
          else begin
            let mid = lo + ((hi - lo) / 2) in
            let p = Pool.async pool (fun () -> go mid hi) in
            go lo mid;
            Pool.await pool p
          end
        in
        Trace.with_span ~lo ~hi "parallel_for" (fun () ->
            Pool.run pool (fun () -> scoped tok (fun () -> go lo hi)));
        tune_observe tune prof)
  end

(* The paper's [apply : int -> (int -> unit) -> unit]. *)
let apply n f = parallel_for 0 n f

(* Heavy-body primitive for loops whose iterations are whole block
   bodies (Seq / Parray / Rad per-block phases).  Unlike [apply], the
   grain is pinned to 1 — a block body is already a coarse unit of work,
   and re-chunking block indices with the element-loop grain policy
   would batch heavy bodies and starve thieves.  Each block runs as its
   own cancellation-polled leaf, with a per-block "block" trace span
   (category "chunk") whose lo/hi arguments are the block's element
   range when [bounds] is given (block indices otherwise). *)
let apply_blocks ?bounds ~nb (body : int -> unit) =
  if nb <= 0 then ()
  else begin
    let pool = get_pool () in
    let tok = scope_token () in
    (* Block bodies are this region's leaves; their size was fixed when
       the block grid was built ([Block.size] / [block_grid], possibly
       by the controller), so this is observation only: the element
       count comes from the last block's upper bound. *)
    let obs =
      if not (Autotune.enabled ()) then None
      else begin
        let n = match bounds with Some f -> snd (f (nb - 1)) | None -> nb in
        Autotune.region_enter ~n ~used:((n + nb - 1) / nb)
          ~workers:(num_workers ())
      end
    in
    Profile.with_region (fun prof ->
        let leaf j =
          Telemetry.incr_chunks_executed ();
          let chunk () =
            Cancel.with_ambient tok (fun () ->
                try body j
                with
                | Cancel.Cancelled as e -> raise e
                | e ->
                  let bt = Printexc.get_raw_backtrace () in
                  record tok e bt;
                  Printexc.raise_with_backtrace e bt)
          in
          let traced () =
            if Trace.enabled () then begin
              let lo, hi =
                match bounds with Some f -> f j | None -> (j, j + 1)
              in
              Trace.with_span ~cat:"chunk" ~lo ~hi "block" chunk
            end
            else chunk ()
          in
          Profile.leaf prof traced
        in
        let rec go lo hi =
          Cancel.check tok;
          if hi - lo <= 1 then leaf lo
          else begin
            let mid = lo + ((hi - lo) / 2) in
            let p = Pool.async pool (fun () -> go mid hi) in
            go lo mid;
            Pool.await pool p
          end
        in
        Trace.with_span ~lo:0 ~hi:nb "apply_blocks" (fun () ->
            Pool.run pool (fun () -> scoped tok (fun () -> go 0 nb)));
        match obs with
        | Some o -> Autotune.obs_end o (Profile.region_stats prof)
        | None -> ())
  end

(* Lazy binary splitting (Tzannes, Caragea, Barua & Vishkin, PPoPP 2010):
   instead of eagerly splitting to a fixed grain, process a small chunk
   at a time and split off the remainder only when the local deque is
   empty — i.e. only when a thief could actually take it.  Adapts
   automatically to imbalanced iteration costs (see the harness's grain
   ablation). *)
let parallel_for_lazy ?chunk lo hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let chunk_size =
      match chunk with Some c -> max 1 c | None -> Grain.lazy_chunk ()
    in
    let pool = get_pool () in
    let tok = scope_token () in
    Profile.with_region (fun prof ->
        let rec go lo hi =
          Cancel.check tok;
          if hi - lo <= chunk_size then seq_chunk prof tok body lo hi
          else if Pool.local_deque_empty pool then begin
            let mid = lo + ((hi - lo) / 2) in
            let p = Pool.async pool (fun () -> go mid hi) in
            go lo mid;
            Pool.await pool p
          end
          else begin
            let stop = min hi (lo + chunk_size) in
            seq_chunk prof tok body lo stop;
            go stop hi
          end
        in
        Trace.with_span ~lo ~hi "parallel_for_lazy" (fun () ->
            Pool.run pool (fun () -> scoped tok (fun () -> go lo hi))))
  end

let parallel_for_reduce ?grain lo hi ~combine ~init (body : int -> 'a) =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let pool = get_pool () in
    let tok = scope_token () in
    let tune = tune_decision grain n in
    let grain =
      match (grain, tune) with
      | Some g, _ -> max 1 g
      | None, Some (g, _) -> max 1 g
      | None, None -> max 1 (auto_grain n)
    in
    (* [go lo hi] folds the non-empty range seeded from its first element,
       so [init] is combined exactly once at the top: correct for any
       associative [combine], with no identity requirement on [init]. *)
    Profile.with_region (fun prof ->
        let leaf lo hi =
          Telemetry.incr_chunks_executed ();
          let chunk () =
            Cancel.with_ambient tok (fun () ->
                try
                  let acc = ref (body lo) in
                  for i = lo + 1 to hi - 1 do
                    if (i - lo) land poll_mask = 0 then Cancel.check tok;
                    acc := combine !acc (body i)
                  done;
                  !acc
                with
                | Cancel.Cancelled as e -> raise e
                | e ->
                  let bt = Printexc.get_raw_backtrace () in
                  record tok e bt;
                  Printexc.raise_with_backtrace e bt)
          in
          let traced () =
            if Trace.enabled () then
              Trace.with_span ~cat:"chunk" ~lo ~hi "chunk" chunk
            else chunk ()
          in
          Profile.leaf prof traced
        in
        let rec go lo hi =
          Cancel.check tok;
          if hi - lo <= grain then leaf lo hi
          else begin
            let mid = lo + ((hi - lo) / 2) in
            let p = Pool.async pool (fun () -> go mid hi) in
            let a = go lo mid in
            let b = Pool.await pool p in
            combine a b
          end
        in
        let r =
          Trace.with_span ~lo ~hi "parallel_for_reduce" (fun () ->
              Pool.run pool (fun () ->
                  scoped tok (fun () -> combine init (go lo hi))))
        in
        tune_observe tune prof;
        r)
  end
