(* High-level parallel primitives over Pool, plus a process-global default
   pool.  [apply] is the paper's sole parallel primitive (Figure 7):
   divide-and-conquer over the iteration space. *)

let default_grain = 1

let global : Pool.t option Atomic.t = Atomic.make None

let requested_domains () =
  match Sys.getenv_opt "BDS_NUM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec get_pool () =
  match Atomic.get global with
  | Some p -> p
  | None ->
    let p = Pool.create ~num_additional_domains:(requested_domains () - 1) () in
    if Atomic.compare_and_set global None (Some p) then p
    else begin
      Pool.teardown p;
      get_pool ()
    end

let set_num_domains n =
  if n < 1 then invalid_arg "Runtime.set_num_domains";
  (match Atomic.get global with
  | Some p -> Pool.teardown p
  | None -> ());
  Atomic.set global (Some (Pool.create ~num_additional_domains:(n - 1) ()))

let shutdown () =
  match Atomic.exchange global None with
  | Some p -> Pool.teardown p
  | None -> ()

let num_workers () = Pool.size (get_pool ())

(* [run f] enters the pool if we are not already inside it. *)
let run f = Pool.run (get_pool ()) f

let par f g =
  let pool = get_pool () in
  Pool.run pool (fun () ->
      let pg = Pool.async pool g in
      let a = f () in
      let b = Pool.await pool pg in
      (a, b))

(* Sequential base case threshold: split until [size / (8 * workers)] or
   [grain], whichever is larger. *)
let auto_grain n =
  let w = num_workers () in
  max default_grain (n / (8 * w * 4))

let parallel_for ?grain lo hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let pool = get_pool () in
    let grain = match grain with Some g -> max 1 g | None -> max 1 (auto_grain n) in
    let rec go lo hi =
      if hi - lo <= grain then
        for i = lo to hi - 1 do
          body i
        done
      else begin
        let mid = lo + ((hi - lo) / 2) in
        let p = Pool.async pool (fun () -> go mid hi) in
        go lo mid;
        Pool.await pool p
      end
    in
    Pool.run pool (fun () -> go lo hi)
  end

(* The paper's [apply : int -> (int -> unit) -> unit]. *)
let apply n f = parallel_for 0 n f

(* Lazy binary splitting (Tzannes, Caragea, Barua & Vishkin, PPoPP 2010):
   instead of eagerly splitting to a fixed grain, process a small chunk
   at a time and split off the remainder only when the local deque is
   empty — i.e. only when a thief could actually take it.  Adapts
   automatically to imbalanced iteration costs (see the harness's grain
   ablation). *)
let parallel_for_lazy ?(chunk = 64) lo hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let chunk = max 1 chunk in
    let pool = get_pool () in
    let rec go lo hi =
      if hi - lo <= chunk then
        for i = lo to hi - 1 do
          body i
        done
      else if Pool.local_deque_empty pool then begin
        let mid = lo + ((hi - lo) / 2) in
        let p = Pool.async pool (fun () -> go mid hi) in
        go lo mid;
        Pool.await pool p
      end
      else begin
        let stop = min hi (lo + chunk) in
        for i = lo to stop - 1 do
          body i
        done;
        go stop hi
      end
    in
    Pool.run pool (fun () -> go lo hi)
  end

let parallel_for_reduce ?grain lo hi ~combine ~init (body : int -> 'a) =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let pool = get_pool () in
    let grain = match grain with Some g -> max 1 g | None -> max 1 (auto_grain n) in
    (* [go lo hi] folds the non-empty range seeded from its first element,
       so [init] is combined exactly once at the top: correct for any
       associative [combine], with no identity requirement on [init]. *)
    let rec go lo hi =
      if hi - lo <= grain then begin
        let acc = ref (body lo) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (body i)
        done;
        !acc
      end
      else begin
        let mid = lo + ((hi - lo) / 2) in
        let p = Pool.async pool (fun () -> go mid hi) in
        let a = go lo mid in
        let b = Pool.await pool p in
        combine a b
      end
    in
    Pool.run pool (fun () -> combine init (go lo hi))
  end
