(** High-level parallel primitives and the process-global worker pool.

    [apply] is the paper's single parallel primitive (Figure 7): everything
    else in the block-delayed sequence library is built on it.

    Every combinator below is a {e cancellation scope} (see {!Cancel}):
    the first exception raised in any branch cancels the scope's token,
    remaining un-started subtasks become no-ops, in-flight sequential
    chunks poll the token at grain boundaries (every 64 iterations) and
    stop early, and the scope re-raises that first exception with its
    original backtrace.  Nested scopes link to the enclosing scope's
    token, so cancelling an outer loop also winds down loops nested in
    its body. *)

(** The global pool, created on first use with
    [BDS_NUM_DOMAINS] (or [Domain.recommended_domain_count ()]) workers. *)
val get_pool : unit -> Pool.t

(** Replace the global pool with one of [n] total workers (tears down the
    previous pool). The swap is a single atomic exchange: a concurrent
    {!get_pool} can neither resurrect the old pool nor leak the new one.
    Used by the benchmark harness to sweep processor counts. *)
val set_num_domains : int -> unit

(** Tear down the global pool (it is re-created lazily on next use). *)
val shutdown : unit -> unit

(** Total workers in the global pool. *)
val num_workers : unit -> int

(** [run f] executes [f] inside the global pool (inline if already inside). *)
val run : (unit -> 'a) -> 'a

(** The default sequential-chunk size for an [n]-iteration loop:
    [max 1 (n / (32 * num_workers ()))], i.e. ~32 leaf chunks per worker
    so thieves keep finding work on imbalanced bodies (policy rationale
    in docs/RUNTIME.md "Grain policy").  Exposed so harnesses and tests
    can reason about the chunking a loop will get. *)
val auto_grain : int -> int

(** Binary fork-join: evaluate both closures, potentially in parallel. *)
val par : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** [parallel_for ?grain lo hi body] runs [body i] for [lo <= i < hi] by
    parallel divide-and-conquer; chunks of at most [grain] iterations run
    sequentially. *)
val parallel_for : ?grain:int -> int -> int -> (int -> unit) -> unit

(** The paper's [apply n f]: run [f i] in parallel for [0 <= i < n]. *)
val apply : int -> (int -> unit) -> unit

(** Lazy-binary-splitting parallel for: processes [chunk] iterations at a
    time (default 64) and splits off the remaining range only when the
    local deque is empty. Adapts to imbalanced per-iteration costs
    without tuning a grain. *)
val parallel_for_lazy : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** Parallel for with a sequential accumulator per chunk and an associative
    [combine] across chunks. [init] is combined exactly once (on the left
    of the whole fold), so it need not be an identity of [combine]. *)
val parallel_for_reduce :
  ?grain:int -> int -> int -> combine:('a -> 'a -> 'a) -> init:'a -> (int -> 'a) -> 'a
