(** High-level parallel primitives and the process-global worker pool.

    [apply] is the paper's single parallel primitive (Figure 7): everything
    else in the block-delayed sequence library is built on it.

    Every combinator below is a {e cancellation scope} (see {!Cancel}):
    the first exception raised in any branch cancels the scope's token,
    remaining un-started subtasks become no-ops, in-flight sequential
    chunks poll the token at grain boundaries (every 64 iterations) and
    stop early, and the scope re-raises that first exception with its
    original backtrace.  Nested scopes link to the enclosing scope's
    token, so cancelling an outer loop also winds down loops nested in
    its body. *)

(** The global pool, created on first use with
    [BDS_NUM_DOMAINS] (or [Domain.recommended_domain_count ()]) workers. *)
val get_pool : unit -> Pool.t

(** Replace the global pool with one of [n] total workers (tears down the
    previous pool). The swap is a single atomic exchange: a concurrent
    {!get_pool} can neither resurrect the old pool nor leak the new one.
    Used by the benchmark harness to sweep processor counts. *)
val set_num_domains : int -> unit

(** Tear down the global pool (it is re-created lazily on next use). *)
val shutdown : unit -> unit

(** Total workers in the global pool. *)
val num_workers : unit -> int

(** [run f] executes [f] inside the global pool (inline if already inside). *)
val run : (unit -> 'a) -> 'a

(** The default sequential-chunk size for an [n]-iteration loop:
    {!Grain.leaf_grain} with the current worker count — ~32 leaf chunks
    per worker, or the [BDS_GRAIN] override (policy rationale in
    docs/RUNTIME.md "Granularity policy").  Exposed so harnesses and
    tests can reason about the chunking a loop will get. *)
val auto_grain : int -> int

(** The {!Grain} block grid for an [n]-element input under the current
    policy and worker count — the single grid every block-based layer
    (Parray, Rad, Seq) uses. *)
val block_grid : int -> Grain.grid

(** Binary fork-join: evaluate both closures, potentially in parallel. *)
val par : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** [parallel_for ?grain lo hi body] runs [body i] for [lo <= i < hi] by
    parallel divide-and-conquer; chunks of at most [grain] iterations run
    sequentially. *)
val parallel_for : ?grain:int -> int -> int -> (int -> unit) -> unit

(** The paper's [apply n f]: run [f i] in parallel for [0 <= i < n]. *)
val apply : int -> (int -> unit) -> unit

(** [apply_blocks ?bounds ~nb body] runs [body j] for [0 <= j < nb],
    where each iteration is a whole {e block body} (a per-block phase of
    scan/filter/reduce/to_array).  The grain is pinned to 1 — block
    bodies are already coarse, so they are never re-chunked by the
    element-loop grain policy — and every block is a cancellation-polled
    leaf recording one ["block"] trace span (category ["chunk"]).
    [bounds j] supplies the block's element range for the span's [lo]/
    [hi] arguments (defaults to the block index range [(j, j+1)]). *)
val apply_blocks : ?bounds:(int -> int * int) -> nb:int -> (int -> unit) -> unit

(** Lazy-binary-splitting parallel for: processes [chunk] iterations at a
    time (default {!Grain.lazy_chunk}, 64) and splits off the remaining
    range only when the local deque is empty. Adapts to imbalanced
    per-iteration costs without tuning a grain. *)
val parallel_for_lazy : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** Parallel for with a sequential accumulator per chunk and an associative
    [combine] across chunks. [init] is combined exactly once (on the left
    of the whole fold), so it need not be an identity of [combine]. *)
val parallel_for_reduce :
  ?grain:int -> int -> int -> combine:('a -> 'a -> 'a) -> init:'a -> (int -> 'a) -> 'a
