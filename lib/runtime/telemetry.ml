(* Always-on scheduler telemetry (see telemetry.mli for the contract).

   Each domain owns a private record of plain mutable ints, created
   lazily through DLS on first use and registered in a process-global
   list.  Increments are therefore one DLS read plus one unsynchronized
   store — no atomics, no contention, no shared cache lines — which is
   what keeps the counters cheap enough to leave compiled into every
   hot path of the scheduler.

   [snapshot] reads every registered record from the aggregating domain.
   Those reads race with the owners' stores; under the OCaml 5 memory
   model they may observe slightly stale values, but ints are single
   words (no tearing) and each counter only ever grows, so a snapshot is
   a consistent-enough lower bound for the statistics use-case.  Records
   of exited domains stay registered, so counters are cumulative over
   the whole process lifetime and snapshots are monotone. *)

type counters = {
  mutable tasks_spawned : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable overflow_pushes : int;
  mutable chunks_executed : int;
  mutable cancel_polls : int;
  mutable cancel_trips : int;
  mutable chaos_injections : int;
  mutable fused_folds : int;
  mutable trickle_fallbacks : int;
  (* Float-lane execution-path counters (lib/core/float_seq.ml and the
     Stream/Seq float reductions): which representation a float
     reduction loop actually ran over — a monomorphic unboxed loop, or
     the generic boxed fold it falls back to. *)
  mutable float_fast_path : int;
  mutable float_boxed_fallback : int;
  (* Shared-consumer memo plan (lib/core/seq.ml): a BID whose producer
     had already been consumed once was forced into its memo so further
     consumers reroute through the cached array instead of re-running
     the producer.  At most one bump per BID value over its lifetime. *)
  mutable shared_forces : int;
  (* Job-service outcome counters (lib/service): every admitted job
     resolves to exactly one terminal outcome, and the service bumps the
     matching counter at that single completion point. *)
  mutable jobs_admitted : int;
  mutable jobs_completed : int;
  mutable jobs_cancelled : int;
  mutable jobs_deadline_exceeded : int;
  mutable jobs_failed : int;
  mutable jobs_retried : int;
  mutable jobs_shed : int;
  mutable jobs_retries_shed : int;
  (* Adaptive-granularity controller ([Autotune]): grain adjustments
     committed (hysteresis moves and adopted probes) and probe regions
     run at a non-incumbent grain. *)
  mutable adapt_adjustments : int;
  mutable adapt_probes : int;
  (* Padding out to three cache lines (the 23 counters above plus this
     pad are 192 bytes of payload): adjacent domains' records can never
     share a line even when the allocator places them back to back. *)
  mutable pad0 : int;
}

type snapshot = {
  s_tasks_spawned : int;
  s_steal_attempts : int;
  s_steals : int;
  s_overflow_pushes : int;
  s_chunks_executed : int;
  s_cancel_polls : int;
  s_cancel_trips : int;
  s_chaos_injections : int;
  s_fused_folds : int;
  s_trickle_fallbacks : int;
  s_float_fast_path : int;
  s_float_boxed_fallback : int;
  s_shared_forces : int;
  s_jobs_admitted : int;
  s_jobs_completed : int;
  s_jobs_cancelled : int;
  s_jobs_deadline_exceeded : int;
  s_jobs_failed : int;
  s_jobs_retried : int;
  s_jobs_shed : int;
  s_jobs_retries_shed : int;
  s_adapt_adjustments : int;
  s_adapt_probes : int;
}

let registry_mutex = Mutex.create ()

let registry : counters list ref = ref []

(* Process start time, captured at module initialisation (the runtime
   library links into every entry point, so this is as early as any
   observer can ask).  [uptime_ns] is monotone as long as the wall clock
   is — OCaml's stdlib exposes no monotonic clock without extra
   libraries, and for rate computation over scrape intervals the
   distinction is noise. *)
let start_time = Unix.gettimeofday ()

let uptime_ns () =
  int_of_float ((Unix.gettimeofday () -. start_time) *. 1e9)

let fresh_counters () =
  {
    tasks_spawned = 0;
    steal_attempts = 0;
    steals = 0;
    overflow_pushes = 0;
    chunks_executed = 0;
    cancel_polls = 0;
    cancel_trips = 0;
    chaos_injections = 0;
    fused_folds = 0;
    trickle_fallbacks = 0;
    float_fast_path = 0;
    float_boxed_fallback = 0;
    shared_forces = 0;
    jobs_admitted = 0;
    jobs_completed = 0;
    jobs_cancelled = 0;
    jobs_deadline_exceeded = 0;
    jobs_failed = 0;
    jobs_retried = 0;
    jobs_shed = 0;
    jobs_retries_shed = 0;
    adapt_adjustments = 0;
    adapt_probes = 0;
    pad0 = 0;
  }

let key : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = fresh_counters () in
      Mutex.lock registry_mutex;
      registry := c :: !registry;
      Mutex.unlock registry_mutex;
      c)

let[@inline] local () = Domain.DLS.get key

let[@inline] incr_tasks_spawned () =
  let c = local () in
  c.tasks_spawned <- c.tasks_spawned + 1

let[@inline] incr_steal_attempts () =
  let c = local () in
  c.steal_attempts <- c.steal_attempts + 1

let[@inline] incr_steals () =
  let c = local () in
  c.steals <- c.steals + 1

let[@inline] incr_overflow_pushes () =
  let c = local () in
  c.overflow_pushes <- c.overflow_pushes + 1

let[@inline] incr_chunks_executed () =
  let c = local () in
  c.chunks_executed <- c.chunks_executed + 1

let[@inline] incr_cancel_polls () =
  let c = local () in
  c.cancel_polls <- c.cancel_polls + 1

let[@inline] incr_cancel_trips () =
  let c = local () in
  c.cancel_trips <- c.cancel_trips + 1

let[@inline] incr_chaos_injections () =
  let c = local () in
  c.chaos_injections <- c.chaos_injections + 1

let[@inline] incr_fused_folds () =
  let c = local () in
  c.fused_folds <- c.fused_folds + 1

let[@inline] incr_trickle_fallbacks () =
  let c = local () in
  c.trickle_fallbacks <- c.trickle_fallbacks + 1

let[@inline] incr_float_fast_path () =
  let c = local () in
  c.float_fast_path <- c.float_fast_path + 1

let[@inline] incr_float_boxed_fallback () =
  let c = local () in
  c.float_boxed_fallback <- c.float_boxed_fallback + 1

let[@inline] incr_shared_forces () =
  let c = local () in
  c.shared_forces <- c.shared_forces + 1

let[@inline] incr_jobs_admitted () =
  let c = local () in
  c.jobs_admitted <- c.jobs_admitted + 1

let[@inline] incr_jobs_completed () =
  let c = local () in
  c.jobs_completed <- c.jobs_completed + 1

let[@inline] incr_jobs_cancelled () =
  let c = local () in
  c.jobs_cancelled <- c.jobs_cancelled + 1

let[@inline] incr_jobs_deadline_exceeded () =
  let c = local () in
  c.jobs_deadline_exceeded <- c.jobs_deadline_exceeded + 1

let[@inline] incr_jobs_failed () =
  let c = local () in
  c.jobs_failed <- c.jobs_failed + 1

let[@inline] incr_jobs_retried () =
  let c = local () in
  c.jobs_retried <- c.jobs_retried + 1

let[@inline] incr_jobs_shed () =
  let c = local () in
  c.jobs_shed <- c.jobs_shed + 1

let[@inline] incr_jobs_retries_shed () =
  let c = local () in
  c.jobs_retries_shed <- c.jobs_retries_shed + 1

let[@inline] incr_adapt_adjustments () =
  let c = local () in
  c.adapt_adjustments <- c.adapt_adjustments + 1

let[@inline] incr_adapt_probes () =
  let c = local () in
  c.adapt_probes <- c.adapt_probes + 1

let zero =
  {
    s_tasks_spawned = 0;
    s_steal_attempts = 0;
    s_steals = 0;
    s_overflow_pushes = 0;
    s_chunks_executed = 0;
    s_cancel_polls = 0;
    s_cancel_trips = 0;
    s_chaos_injections = 0;
    s_fused_folds = 0;
    s_trickle_fallbacks = 0;
    s_float_fast_path = 0;
    s_float_boxed_fallback = 0;
    s_shared_forces = 0;
    s_jobs_admitted = 0;
    s_jobs_completed = 0;
    s_jobs_cancelled = 0;
    s_jobs_deadline_exceeded = 0;
    s_jobs_failed = 0;
    s_jobs_retried = 0;
    s_jobs_shed = 0;
    s_jobs_retries_shed = 0;
    s_adapt_adjustments = 0;
    s_adapt_probes = 0;
  }

let snapshot () =
  Mutex.lock registry_mutex;
  let records = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left
    (fun acc c ->
      {
        s_tasks_spawned = acc.s_tasks_spawned + c.tasks_spawned;
        s_steal_attempts = acc.s_steal_attempts + c.steal_attempts;
        s_steals = acc.s_steals + c.steals;
        s_overflow_pushes = acc.s_overflow_pushes + c.overflow_pushes;
        s_chunks_executed = acc.s_chunks_executed + c.chunks_executed;
        s_cancel_polls = acc.s_cancel_polls + c.cancel_polls;
        s_cancel_trips = acc.s_cancel_trips + c.cancel_trips;
        s_chaos_injections = acc.s_chaos_injections + c.chaos_injections;
        s_fused_folds = acc.s_fused_folds + c.fused_folds;
        s_trickle_fallbacks = acc.s_trickle_fallbacks + c.trickle_fallbacks;
        s_float_fast_path = acc.s_float_fast_path + c.float_fast_path;
        s_float_boxed_fallback =
          acc.s_float_boxed_fallback + c.float_boxed_fallback;
        s_shared_forces = acc.s_shared_forces + c.shared_forces;
        s_jobs_admitted = acc.s_jobs_admitted + c.jobs_admitted;
        s_jobs_completed = acc.s_jobs_completed + c.jobs_completed;
        s_jobs_cancelled = acc.s_jobs_cancelled + c.jobs_cancelled;
        s_jobs_deadline_exceeded =
          acc.s_jobs_deadline_exceeded + c.jobs_deadline_exceeded;
        s_jobs_failed = acc.s_jobs_failed + c.jobs_failed;
        s_jobs_retried = acc.s_jobs_retried + c.jobs_retried;
        s_jobs_shed = acc.s_jobs_shed + c.jobs_shed;
        s_jobs_retries_shed = acc.s_jobs_retries_shed + c.jobs_retries_shed;
        s_adapt_adjustments = acc.s_adapt_adjustments + c.adapt_adjustments;
        s_adapt_probes = acc.s_adapt_probes + c.adapt_probes;
      })
    zero records

(* Clamped at 0 per field: the racy reads in [snapshot] can lag a domain
   that was mid-burst at [before] time, so tiny negative deltas are
   measurement noise, not meaningful.  [diff_checked] additionally says
   whether any field was clamped, so measurement harnesses can flag a
   snapshot pair as incoherent instead of silently reporting a zero. *)
let diff_checked ~before ~after =
  let clamped = ref false in
  let d a b =
    if a < b then begin
      clamped := true;
      0
    end
    else a - b
  in
  let s =
    {
      s_tasks_spawned = d after.s_tasks_spawned before.s_tasks_spawned;
      s_steal_attempts = d after.s_steal_attempts before.s_steal_attempts;
      s_steals = d after.s_steals before.s_steals;
      s_overflow_pushes = d after.s_overflow_pushes before.s_overflow_pushes;
      s_chunks_executed = d after.s_chunks_executed before.s_chunks_executed;
      s_cancel_polls = d after.s_cancel_polls before.s_cancel_polls;
      s_cancel_trips = d after.s_cancel_trips before.s_cancel_trips;
      s_chaos_injections = d after.s_chaos_injections before.s_chaos_injections;
      s_fused_folds = d after.s_fused_folds before.s_fused_folds;
      s_trickle_fallbacks = d after.s_trickle_fallbacks before.s_trickle_fallbacks;
      s_float_fast_path = d after.s_float_fast_path before.s_float_fast_path;
      s_float_boxed_fallback =
        d after.s_float_boxed_fallback before.s_float_boxed_fallback;
      s_shared_forces = d after.s_shared_forces before.s_shared_forces;
      s_jobs_admitted = d after.s_jobs_admitted before.s_jobs_admitted;
      s_jobs_completed = d after.s_jobs_completed before.s_jobs_completed;
      s_jobs_cancelled = d after.s_jobs_cancelled before.s_jobs_cancelled;
      s_jobs_deadline_exceeded =
        d after.s_jobs_deadline_exceeded before.s_jobs_deadline_exceeded;
      s_jobs_failed = d after.s_jobs_failed before.s_jobs_failed;
      s_jobs_retried = d after.s_jobs_retried before.s_jobs_retried;
      s_jobs_shed = d after.s_jobs_shed before.s_jobs_shed;
      s_jobs_retries_shed = d after.s_jobs_retries_shed before.s_jobs_retries_shed;
      s_adapt_adjustments =
        d after.s_adapt_adjustments before.s_adapt_adjustments;
      s_adapt_probes = d after.s_adapt_probes before.s_adapt_probes;
    }
  in
  (s, !clamped)

let diff ~before ~after = fst (diff_checked ~before ~after)

let to_assoc s =
  [
    ("tasks_spawned", s.s_tasks_spawned);
    ("steal_attempts", s.s_steal_attempts);
    ("steals", s.s_steals);
    ("overflow_pushes", s.s_overflow_pushes);
    ("chunks_executed", s.s_chunks_executed);
    ("cancel_polls", s.s_cancel_polls);
    ("cancel_trips", s.s_cancel_trips);
    ("chaos_injections", s.s_chaos_injections);
    ("fused_folds", s.s_fused_folds);
    ("trickle_fallbacks", s.s_trickle_fallbacks);
    ("float_fast_path", s.s_float_fast_path);
    ("float_boxed_fallback", s.s_float_boxed_fallback);
    ("shared_forces", s.s_shared_forces);
    ("jobs_admitted", s.s_jobs_admitted);
    ("jobs_completed", s.s_jobs_completed);
    ("jobs_cancelled", s.s_jobs_cancelled);
    ("jobs_deadline_exceeded", s.s_jobs_deadline_exceeded);
    ("jobs_failed", s.s_jobs_failed);
    ("jobs_retried", s.s_jobs_retried);
    ("jobs_shed", s.s_jobs_shed);
    ("jobs_retries_shed", s.s_jobs_retries_shed);
    ("adapt_adjustments", s.s_adapt_adjustments);
    ("adapt_probes", s.s_adapt_probes);
  ]

let pp s =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (to_assoc s))
