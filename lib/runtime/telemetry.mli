(** Always-on, low-overhead scheduler telemetry.

    Every hot path of the runtime (task pushes, steal attempts, grain
    chunks, cancellation polls, chaos injections) bumps a per-domain,
    cache-line-padded plain [int] — one domain-local store, no atomics —
    so the counters stay compiled in unconditionally: with tracing off
    their cost is unmeasurable.

    Counters are process-global and cumulative (they survive pool
    churn); use {!snapshot} before and after a region and {!diff} to
    attribute activity to it.  Snapshots read other domains' counters
    without synchronization: values may lag by in-flight increments but
    never tear (single-word ints) and never decrease. *)

(** Aggregated counter values at one point in time. *)
type snapshot = {
  s_tasks_spawned : int;  (** tasks pushed to a deque or overflow queue *)
  s_steal_attempts : int;  (** {!Ws_deque.steal} calls *)
  s_steals : int;  (** steal attempts that returned a task *)
  s_overflow_pushes : int;  (** pushes routed to the overflow queue *)
  s_chunks_executed : int;  (** sequential grain chunks run by [Runtime] *)
  s_cancel_polls : int;  (** cancellation-token checks *)
  s_cancel_trips : int;  (** checks that observed a cancelled token *)
  s_chaos_injections : int;  (** faults injected by {!Chaos} *)
  s_fused_folds : int;
      (** stream consumers that drove a native push fold (Stream) *)
  s_trickle_fallbacks : int;
      (** stream consumers that drove a trickle-derived fold (Stream) *)
  s_float_fast_path : int;
      (** float-reduction loops that ran monomorphic and unboxed
          ([Float_seq] block bodies, [Stream.sum_floats] over a pure
          index function); one bump per block/loop *)
  s_float_boxed_fallback : int;
      (** float-reduction loops that fell back to the generic boxed
          fold (non-materialisable producers); one bump per block *)
  s_shared_forces : int;
      (** BIDs forced into their memo because a second consumer arrived
          after the producer had already run once (shared-consumer plan,
          [Seq]); at most one bump per BID value *)
  s_jobs_admitted : int;  (** jobs accepted by the service admission queue *)
  s_jobs_completed : int;  (** jobs that produced a result *)
  s_jobs_cancelled : int;  (** jobs terminated by an explicit cancel *)
  s_jobs_deadline_exceeded : int;  (** jobs terminated by their deadline *)
  s_jobs_failed : int;  (** jobs that exhausted retries or raised *)
  s_jobs_retried : int;  (** retry attempts scheduled (one per re-run) *)
  s_jobs_shed : int;  (** submissions rejected at admission (overload) *)
  s_jobs_retries_shed : int;
      (** retries suppressed by an open circuit breaker *)
  s_adapt_adjustments : int;
      (** grain adjustments committed by the adaptive controller
          ([Autotune]): hysteresis moves plus adopted probes *)
  s_adapt_probes : int;
      (** regions the controller ran at a non-incumbent grain to
          re-explore the neighbourhood (probe steps) *)
}

(** Sum of every domain's counters (racy lower bound; monotone). *)
val snapshot : unit -> snapshot

(** Per-field [after - before], clamped at 0 (racy reads can lag). *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** Like {!diff}, also reporting whether any field had to be clamped —
    i.e. the snapshot pair was incoherent (taken around a region that
    raced other measurement, or in the wrong order).  Measurement
    harnesses use this to flag suspect [steals_per_s]-style rates
    instead of silently reporting 0. *)
val diff_checked : before:snapshot -> after:snapshot -> snapshot * bool

(** Fixed-order [(name, value)] list, the format surfaced by
    [bds_probe stats]. *)
val to_assoc : snapshot -> (string * int) list

(** One-line rendering of {!to_assoc}. *)
val pp : snapshot -> string

(** Nanoseconds since the process's runtime was initialised.  Monotone
    non-decreasing across calls (modulo wall-clock steps; see the
    implementation note), never reset: scrapers use it to compute rates
    between two [STATS]/[METRICS] scrapes without wall-clock skew. *)
val uptime_ns : unit -> int

(** {2 Hook points} — called by the scheduler; also usable by tests. *)

val incr_tasks_spawned : unit -> unit
val incr_steal_attempts : unit -> unit
val incr_steals : unit -> unit
val incr_overflow_pushes : unit -> unit
val incr_chunks_executed : unit -> unit
val incr_cancel_polls : unit -> unit
val incr_cancel_trips : unit -> unit
val incr_chaos_injections : unit -> unit

(** Bumped by [Stream]'s linear consumers: which execution path
    (fused push fold vs trickle-derived fallback) a block actually
    took.  See docs/STREAMS.md. *)

val incr_fused_folds : unit -> unit
val incr_trickle_fallbacks : unit -> unit

(** Bumped by the unboxed float lane ([Float_seq], [Stream.sum_floats],
    [Seq.float_sum]): one increment per block (or per whole loop for
    unblocked drives) recording whether the reduction ran monomorphic
    and unboxed or fell back to the generic boxed fold.  See
    docs/STREAMS.md "Unboxed float lane". *)

val incr_float_fast_path : unit -> unit
val incr_float_boxed_fallback : unit -> unit

(** Bumped by [Seq]'s shared-consumer memo plan: exactly once per BID
    whose producer would otherwise have run twice (the force that
    publishes the memo for all further consumers).  See
    docs/STREAMS.md "Shared consumers". *)

val incr_shared_forces : unit -> unit

(** Bumped by the job service ([lib/service]): exactly one terminal-
    outcome increment per admitted job, plus the admission / retry /
    shedding events around it.  See docs/SERVICE.md. *)

val incr_jobs_admitted : unit -> unit
val incr_jobs_completed : unit -> unit
val incr_jobs_cancelled : unit -> unit
val incr_jobs_deadline_exceeded : unit -> unit
val incr_jobs_failed : unit -> unit
val incr_jobs_retried : unit -> unit
val incr_jobs_shed : unit -> unit
val incr_jobs_retries_shed : unit -> unit

(** Bumped by the adaptive-granularity controller ([Autotune]): one
    [adapt_adjustments] per committed grain change (hysteresis move or
    adopted probe), one [adapt_probes] per region observed at a
    non-incumbent grain.  See docs/RUNTIME.md "Adaptive granularity". *)

val incr_adapt_adjustments : unit -> unit
val incr_adapt_probes : unit -> unit
