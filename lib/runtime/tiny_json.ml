(* Minimal recursive-descent JSON parser (see tiny_json.mli).

   Grew inside [Trace] for `bds_probe trace-check`; now a module of its
   own because the profiler surfaces ([bds_probe report --json],
   [bench_compare]'s baseline diffing) need the same dependency-free
   parsing.  Scope is deliberately small: parse into a tree, a few
   accessors — no serialisation (writers hand-format their JSON, as
   [Trace.flush] always has). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos >= String.length st.src then '\255' else st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | ' ' | '\t' | '\n' | '\r' ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  if peek st = c then advance st
  else raise (Bad (Printf.sprintf "expected %c at offset %d" c st.pos))

let literal st word v =
  String.iter (fun c -> expect st c) word;
  v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | '\255' -> raise (Bad "unterminated string")
    | '"' -> advance st
    | '\\' ->
      advance st;
      (match peek st with
      | '"' | '\\' | '/' ->
        Buffer.add_char b (peek st);
        advance st
      | 'n' -> Buffer.add_char b '\n'; advance st
      | 't' -> Buffer.add_char b '\t'; advance st
      | 'r' -> Buffer.add_char b '\r'; advance st
      | 'b' -> Buffer.add_char b '\b'; advance st
      | 'f' -> Buffer.add_char b '\012'; advance st
      | 'u' ->
        advance st;
        for _ = 1 to 4 do
          (match peek st with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance st
          | _ -> raise (Bad "bad unicode escape"))
        done;
        Buffer.add_char b '?'
      | _ -> raise (Bad "bad escape"));
      go ()
    | c ->
      Buffer.add_char b c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let consume () = advance st in
  if peek st = '-' then consume ();
  while (match peek st with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
    consume ()
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | '{' -> parse_obj st
  | '[' -> parse_arr st
  | '"' -> Str (parse_string st)
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | 'n' -> literal st "null" Null
  | '-' | '0' .. '9' -> Num (parse_number st)
  | c -> raise (Bad (Printf.sprintf "unexpected %C at offset %d" c st.pos))

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec fields acc =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | ',' ->
        advance st;
        fields ((k, v) :: acc)
      | '}' ->
        advance st;
        Obj (List.rev ((k, v) :: acc))
      | _ -> raise (Bad "expected , or } in object")
    in
    fields []
  end

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = ']' then begin
    advance st;
    Arr []
  end
  else begin
    let rec elems acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | ',' ->
        advance st;
        elems (v :: acc)
      | ']' ->
        advance st;
        Arr (List.rev (v :: acc))
      | _ -> raise (Bad "expected , or ] in array")
    in
    elems []
  end

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then raise (Bad "trailing garbage");
  v

let parse_result s = match parse s with v -> Ok v | exception Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let rec path ks v =
  match ks with
  | [] -> Some v
  | k :: tl -> ( match member k v with Some v' -> path tl v' | None -> None)

let to_float = function Num f -> Some f | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None
