(** Minimal dependency-free JSON parser shared by the observability
    tooling: [Trace]'s flush validator, [bds_probe]'s trace/report
    subcommands, and [bench_compare]'s baseline diffing.

    Parsing only — writers hand-format their output. Unicode escapes
    are accepted but decoded as ['?'] (the tooling never inspects
    escaped text). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} with a short description and byte offset. *)

val parse : string -> t
(** Parse a complete JSON document. Raises {!Bad} on malformed input,
    including trailing garbage. *)

val parse_result : string -> (t, string) result
(** Like {!parse} but capturing the error message. *)

val member : string -> t -> t option
(** [member k v] is the field [k] of object [v], if any. *)

val path : string list -> t -> t option
(** [path ["a"; "b"] v] follows nested object fields. *)

val to_float : t -> float option

val to_string : t -> string option

val to_list : t -> t list option
