(* Chrome-trace scope/chunk recorder (see trace.mli for the contract).

   When enabled ([BDS_TRACE=<file>], or [set_output] from tests), every
   Runtime scope and sequential chunk records one complete ("ph":"X")
   event — name, category, start timestamp, duration, optional [lo,hi)
   iteration range — into a per-domain ring buffer.  Recording is a few
   domain-local stores; nothing is shared, nothing is flushed on the hot
   path.  When disabled, the only cost at an instrumentation point is
   one atomic bool load.

   [flush] serialises every ring into Chrome's trace-event JSON format
   (the "traceEvents" array of chrome://tracing / Perfetto), one track
   ("tid") per domain.  Pool teardown calls it, so any program that ends
   with [Runtime.shutdown] — the bench harness, bds_probe, the tests —
   writes its trace without further plumbing; an [at_exit] hook covers
   programs that never tear the pool down explicitly.

   Rings are fixed-capacity (events per domain) and overwrite their
   oldest events when full; the flushed JSON reports how many were
   dropped per domain so a truncated trace is never mistaken for a
   complete one. *)

let capacity = 16384 (* events per domain; must be a power of two *)

type ring = {
  dom : int;
  names : string array;
  cats : string array;
  ts : float array; (* start, µs since [epoch] *)
  dur : float array; (* µs *)
  lo : int array; (* iteration range args; min_int = absent *)
  hi : int array;
  mutable count : int; (* total events ever recorded on this ring *)
}

(* ------------------------------------------------------------------ *)
(* State *)

(* The empty string is the explicit opt-out (mirroring BDS_CHAOS=''), so
   a tracing sweep can pin tracing off for one command. *)
let output : string option Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "BDS_TRACE" with Some "" -> None | v -> v)

let enabled_flag = Atomic.make (Atomic.get output <> None)

let[@inline] enabled () = Atomic.get enabled_flag

let epoch = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let registry_mutex = Mutex.create ()

let registry : ring list ref = ref []

let make_ring dom =
  {
    dom;
    names = Array.make capacity "";
    cats = Array.make capacity "";
    ts = Array.make capacity 0.0;
    dur = Array.make capacity 0.0;
    lo = Array.make capacity min_int;
    hi = Array.make capacity min_int;
    count = 0;
  }

(* Rings are big (6 arrays x capacity), so they are allocated on a
   domain's first *recorded* event, not eagerly for every domain of a
   tracing-off process. *)
let key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let local_ring () =
  let cell = Domain.DLS.get key in
  match !cell with
  | Some r -> r
  | None ->
    let r = make_ring (Domain.self () :> int) in
    Mutex.lock registry_mutex;
    registry := r :: !registry;
    Mutex.unlock registry_mutex;
    cell := Some r;
    r

let record name cat t0 t1 lo hi =
  let r = local_ring () in
  let i = r.count land (capacity - 1) in
  r.names.(i) <- name;
  r.cats.(i) <- cat;
  r.ts.(i) <- t0;
  r.dur.(i) <- t1 -. t0;
  r.lo.(i) <- lo;
  r.hi.(i) <- hi;
  r.count <- r.count + 1

let with_span ?(cat = "scope") ?(lo = min_int) ?(hi = min_int) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      record name cat t0 (now_us ()) lo hi;
      v
    | exception e ->
      (* Record the span even when it unwinds: cancelled scopes are
         exactly the ones worth seeing in a trace. *)
      record name cat t0 (now_us ()) lo hi;
      raise e
  end

let set_output path =
  Atomic.set output path;
  Atomic.set enabled_flag (path <> None)

let reset () =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.count <- 0) rings

(* ------------------------------------------------------------------ *)
(* Flushing *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_events oc =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  let pid = Unix.getpid () in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else output_string oc ",\n";
        output_string oc s)
      fmt
  in
  let total = ref 0 in
  List.iter
    (fun r ->
      let dropped = max 0 (r.count - capacity) in
      let label =
        if dropped = 0 then Printf.sprintf "domain %d" r.dom
        else Printf.sprintf "domain %d (%d events dropped)" r.dom dropped
      in
      emit
        {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
        pid r.dom (escape label);
      let stored = min r.count capacity in
      for i = 0 to stored - 1 do
        incr total;
        let args =
          if r.lo.(i) = min_int then ""
          else Printf.sprintf {|,"args":{"lo":%d,"hi":%d}|} r.lo.(i) r.hi.(i)
        in
        emit {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d%s}|}
          (escape r.names.(i)) (escape r.cats.(i)) r.ts.(i) r.dur.(i) pid r.dom args
      done)
    rings;
  !total

let flush () =
  match Atomic.get output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "{\"traceEvents\":[\n";
    let n = write_events oc in
    output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
    close_out oc;
    ignore n

(* Programs that exit without tearing the pool down still get their
   trace.  Registered only when BDS_TRACE was set at startup; tests that
   enable tracing via [set_output] flush explicitly. *)
let () = if enabled () then at_exit flush

(* ------------------------------------------------------------------ *)
(* Trace-JSON validation (used by `bds_probe trace-check` and the unit
   tests; no external JSON library is assumed by this repo) *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  type state = { src : string; mutable pos : int }

  let peek st = if st.pos >= String.length st.src then '\255' else st.src.[st.pos]

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | ' ' | '\t' | '\n' | '\r' ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    if peek st = c then advance st
    else raise (Bad (Printf.sprintf "expected %c at offset %d" c st.pos))

  let literal st word v =
    String.iter (fun c -> expect st c) word;
    v

  let parse_string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | '\255' -> raise (Bad "unterminated string")
      | '"' -> advance st
      | '\\' ->
        advance st;
        (match peek st with
        | '"' | '\\' | '/' ->
          Buffer.add_char b (peek st);
          advance st
        | 'n' -> Buffer.add_char b '\n'; advance st
        | 't' -> Buffer.add_char b '\t'; advance st
        | 'r' -> Buffer.add_char b '\r'; advance st
        | 'b' -> Buffer.add_char b '\b'; advance st
        | 'f' -> Buffer.add_char b '\012'; advance st
        | 'u' ->
          advance st;
          for _ = 1 to 4 do
            (match peek st with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance st
            | _ -> raise (Bad "bad unicode escape"))
          done;
          Buffer.add_char b '?'
        | _ -> raise (Bad "bad escape"));
        go ()
      | c ->
        Buffer.add_char b c;
        advance st;
        go ()
    in
    go ();
    Buffer.contents b

  let parse_number st =
    let start = st.pos in
    let consume () = advance st in
    if peek st = '-' then consume ();
    while (match peek st with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      consume ()
    done;
    let s = String.sub st.src start (st.pos - start) in
    match float_of_string_opt s with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number %S" s))

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | '{' -> parse_obj st
    | '[' -> parse_arr st
    | '"' -> Str (parse_string st)
    | 't' -> literal st "true" (Bool true)
    | 'f' -> literal st "false" (Bool false)
    | 'n' -> literal st "null" Null
    | '-' | '0' .. '9' -> Num (parse_number st)
    | c -> raise (Bad (Printf.sprintf "unexpected %C at offset %d" c st.pos))

  and parse_obj st =
    expect st '{';
    skip_ws st;
    if peek st = '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | ',' ->
          advance st;
          fields ((k, v) :: acc)
        | '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
        | _ -> raise (Bad "expected , or } in object")
      in
      fields []
    end

  and parse_arr st =
    expect st '[';
    skip_ws st;
    if peek st = ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | ',' ->
          advance st;
          elems (v :: acc)
        | ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> raise (Bad "expected , or ] in array")
      in
      elems []
    end

  let parse s =
    let st = { src = s; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then raise (Bad "trailing garbage");
    v
end

let validate_string s =
  match Json.parse s with
  | exception Json.Bad e -> Error ("not valid JSON: " ^ e)
  | Json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | None -> Error "missing \"traceEvents\" key"
    | Some (Json.Arr events) ->
      let check_event = function
        | Json.Obj ev ->
          let has k = List.mem_assoc k ev in
          if has "name" && has "ph" && has "pid" && has "tid" then Ok ()
          else Error "event missing one of name/ph/pid/tid"
        | _ -> Error "event is not an object"
      in
      let rec go n = function
        | [] -> Ok n
        | ev :: tl -> (
          match check_event ev with
          | Ok () ->
            (* Complete events additionally carry a timestamp/duration. *)
            let ok_x =
              match ev with
              | Json.Obj fields when List.assoc_opt "ph" fields = Some (Json.Str "X") ->
                List.mem_assoc "ts" fields && List.mem_assoc "dur" fields
              | _ -> true
            in
            if ok_x then go (n + 1) tl else Error "X event missing ts/dur"
          | Error _ as e -> e)
      in
      go 0 events
    | Some _ -> Error "\"traceEvents\" is not an array")
  | _ -> Error "top level is not an object"

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> validate_string s

let count_events_string s ~name =
  match Json.parse s with
  | exception Json.Bad e -> Error ("not valid JSON: " ^ e)
  | Json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Json.Arr events) ->
      Ok
        (List.fold_left
           (fun n ev ->
             match ev with
             | Json.Obj fields
               when List.assoc_opt "name" fields = Some (Json.Str name) ->
               n + 1
             | _ -> n)
           0 events)
    | Some _ -> Error "\"traceEvents\" is not an array"
    | None -> Error "missing \"traceEvents\" key")
  | _ -> Error "top level is not an object"

let count_events_file path ~name =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> count_events_string s ~name

(* ------------------------------------------------------------------ *)
(* Test backdoors *)

module For_testing = struct
  let events () =
    Mutex.lock registry_mutex;
    let rings = !registry in
    Mutex.unlock registry_mutex;
    List.concat_map
      (fun r ->
        let stored = min r.count capacity in
        List.init stored (fun i -> (r.names.(i), r.cats.(i))))
      rings
end
