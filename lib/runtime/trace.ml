(* Chrome-trace scope/chunk recorder (see trace.mli for the contract).

   When enabled ([BDS_TRACE=<file>], or [set_output] from tests), every
   Runtime scope and sequential chunk records one complete ("ph":"X")
   event — name, category, start timestamp, duration, optional [lo,hi)
   iteration range — into a per-domain ring buffer.  Recording is a few
   domain-local stores; nothing is shared, nothing is flushed on the hot
   path.  When disabled, the only cost at an instrumentation point is
   one atomic bool load.

   [flush] serialises every ring into Chrome's trace-event JSON format
   (the "traceEvents" array of chrome://tracing / Perfetto), one track
   ("tid") per domain.  Pool teardown calls it, so any program that ends
   with [Runtime.shutdown] — the bench harness, bds_probe, the tests —
   writes its trace without further plumbing; an [at_exit] hook covers
   programs that never tear the pool down explicitly.

   Rings are fixed-capacity (events per domain) and overwrite their
   oldest events when full; the flushed JSON reports how many were
   dropped per domain so a truncated trace is never mistaken for a
   complete one. *)

let capacity = 16384 (* events per domain; must be a power of two *)

type ring = {
  dom : int;
  names : string array;
  cats : string array;
  ts : float array; (* start, µs since [epoch] *)
  dur : float array; (* µs *)
  lo : int array; (* iteration range args; min_int = absent *)
  hi : int array;
  ph : Bytes.t; (* event phase: 'X' complete, 's'/'t'/'f' flow *)
  fid : int array; (* flow id; min_int = absent *)
  extra : string array; (* pre-rendered JSON args fragment; "" = absent *)
  mutable count : int; (* total events ever recorded on this ring *)
}

(* ------------------------------------------------------------------ *)
(* State *)

(* The empty string is the explicit opt-out (mirroring BDS_CHAOS=''), so
   a tracing sweep can pin tracing off for one command. *)
let output : string option Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "BDS_TRACE" with Some "" -> None | v -> v)

let enabled_flag = Atomic.make (Atomic.get output <> None)

let[@inline] enabled () = Atomic.get enabled_flag

let epoch = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let registry_mutex = Mutex.create ()

let registry : ring list ref = ref []

let make_ring dom =
  {
    dom;
    names = Array.make capacity "";
    cats = Array.make capacity "";
    ts = Array.make capacity 0.0;
    dur = Array.make capacity 0.0;
    lo = Array.make capacity min_int;
    hi = Array.make capacity min_int;
    ph = Bytes.make capacity 'X';
    fid = Array.make capacity min_int;
    extra = Array.make capacity "";
    count = 0;
  }

(* Rings are big (6 arrays x capacity), so they are allocated on a
   domain's first *recorded* event, not eagerly for every domain of a
   tracing-off process. *)
let key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let local_ring () =
  let cell = Domain.DLS.get key in
  match !cell with
  | Some r -> r
  | None ->
    let r = make_ring (Domain.self () :> int) in
    Mutex.lock registry_mutex;
    registry := r :: !registry;
    Mutex.unlock registry_mutex;
    cell := Some r;
    r

let record_full name cat ph fid extra t0 t1 lo hi =
  let r = local_ring () in
  let i = r.count land (capacity - 1) in
  r.names.(i) <- name;
  r.cats.(i) <- cat;
  r.ts.(i) <- t0;
  r.dur.(i) <- t1 -. t0;
  r.lo.(i) <- lo;
  r.hi.(i) <- hi;
  Bytes.set r.ph i ph;
  r.fid.(i) <- fid;
  r.extra.(i) <- extra;
  r.count <- r.count + 1

let record name cat t0 t1 lo hi = record_full name cat 'X' min_int "" t0 t1 lo hi

let emit_span ?(cat = "scope") ?(lo = min_int) ?(hi = min_int)
    ?(args_json = "") name ~t0_us ~t1_us =
  if enabled () then record_full name cat 'X' min_int args_json t0_us t1_us lo hi

let emit_flow step ~id ?(cat = "job") ?(args_json = "") name =
  if enabled () then begin
    let ph = match step with `Start -> 's' | `Step -> 't' | `End -> 'f' in
    let t = now_us () in
    record_full name cat ph id args_json t t min_int min_int
  end

let with_span ?(cat = "scope") ?(lo = min_int) ?(hi = min_int) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      record name cat t0 (now_us ()) lo hi;
      v
    | exception e ->
      (* Record the span even when it unwinds: cancelled scopes are
         exactly the ones worth seeing in a trace. *)
      record name cat t0 (now_us ()) lo hi;
      raise e
  end

let set_output path =
  Atomic.set output path;
  Atomic.set enabled_flag (path <> None)

let reset () =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.count <- 0) rings

(* ------------------------------------------------------------------ *)
(* Flushing *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_json = escape

let write_events oc =
  Mutex.lock registry_mutex;
  let rings = !registry in
  Mutex.unlock registry_mutex;
  let pid = Unix.getpid () in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else output_string oc ",\n";
        output_string oc s)
      fmt
  in
  let total = ref 0 in
  let total_dropped = ref 0 in
  List.iter
    (fun r ->
      let dropped = max 0 (r.count - capacity) in
      total_dropped := !total_dropped + dropped;
      let label =
        if dropped = 0 then Printf.sprintf "domain %d" r.dom
        else Printf.sprintf "domain %d (%d events dropped)" r.dom dropped
      in
      emit
        {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
        pid r.dom (escape label);
      (* Machine-readable per-domain drop count: the thread_name label
         above is for humans in the trace viewer, this metadata event is
         what [dropped_of_file] and `bds_probe trace-check` read. *)
      emit
        {|{"name":"bds_dropped_events","ph":"M","pid":%d,"tid":%d,"args":{"dropped_events":%d}}|}
        pid r.dom dropped;
      let stored = min r.count capacity in
      for i = 0 to stored - 1 do
        incr total;
        let args =
          (* [lo,hi) range and any pre-rendered fragment merge into one
             "args" object; both are optional. *)
          let range =
            if r.lo.(i) = min_int then ""
            else Printf.sprintf {|"lo":%d,"hi":%d|} r.lo.(i) r.hi.(i)
          in
          let fields =
            match (range, r.extra.(i)) with
            | "", "" -> ""
            | f, "" | "", f -> f
            | a, b -> a ^ "," ^ b
          in
          if fields = "" then "" else Printf.sprintf {|,"args":{%s}|} fields
        in
        match Bytes.get r.ph i with
        | 'X' ->
          emit {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d%s}|}
            (escape r.names.(i)) (escape r.cats.(i)) r.ts.(i) r.dur.(i) pid r.dom args
        | ph ->
          (* Flow events: 's' start / 't' step / 'f' end, correlated by
             "id".  The end event binds to the enclosing slice ("bp":"e")
             so Perfetto draws the arrow into the terminal span. *)
          let bp = if ph = 'f' then {|,"bp":"e"|} else "" in
          emit {|{"name":"%s","cat":"%s","ph":"%c","id":%d,"ts":%.3f,"pid":%d,"tid":%d%s%s}|}
            (escape r.names.(i)) (escape r.cats.(i)) ph r.fid.(i) r.ts.(i) pid r.dom bp args
      done)
    rings;
  (!total, !total_dropped)

let flush () =
  match Atomic.get output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "{\"traceEvents\":[\n";
    let _n, dropped = write_events oc in
    Printf.fprintf oc "\n],\"bdsDroppedEvents\":%d,\"displayTimeUnit\":\"ms\"}\n"
      dropped;
    close_out oc

(* Programs that exit without tearing the pool down still get their
   trace.  Registered only when BDS_TRACE was set at startup; tests that
   enable tracing via [set_output] flush explicitly. *)
let () = if enabled () then at_exit flush

(* ------------------------------------------------------------------ *)
(* Trace-JSON validation (used by `bds_probe trace-check` and the unit
   tests), on the shared dependency-free parser [Tiny_json]. *)

let validate_string s =
  match Tiny_json.parse s with
  | exception Tiny_json.Bad e -> Error ("not valid JSON: " ^ e)
  | Tiny_json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | None -> Error "missing \"traceEvents\" key"
    | Some (Tiny_json.Arr events) ->
      let check_event = function
        | Tiny_json.Obj ev ->
          let has k = List.mem_assoc k ev in
          if has "name" && has "ph" && has "pid" && has "tid" then Ok ()
          else Error "event missing one of name/ph/pid/tid"
        | _ -> Error "event is not an object"
      in
      let rec go n = function
        | [] -> Ok n
        | ev :: tl -> (
          match check_event ev with
          | Ok () ->
            (* Complete events additionally carry a timestamp/duration. *)
            let ok_x =
              match ev with
              | Tiny_json.Obj fields
                when List.assoc_opt "ph" fields = Some (Tiny_json.Str "X") ->
                List.mem_assoc "ts" fields && List.mem_assoc "dur" fields
              | _ -> true
            in
            if ok_x then go (n + 1) tl else Error "X event missing ts/dur"
          | Error _ as e -> e)
      in
      go 0 events
    | Some _ -> Error "\"traceEvents\" is not an array")
  | _ -> Error "top level is not an object"

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> validate_string s

let count_events_string s ~name =
  match Tiny_json.parse s with
  | exception Tiny_json.Bad e -> Error ("not valid JSON: " ^ e)
  | Tiny_json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Tiny_json.Arr events) ->
      Ok
        (List.fold_left
           (fun n ev ->
             match ev with
             | Tiny_json.Obj fields
               when List.assoc_opt "name" fields = Some (Tiny_json.Str name) ->
               n + 1
             | _ -> n)
           0 events)
    | Some _ -> Error "\"traceEvents\" is not an array"
    | None -> Error "missing \"traceEvents\" key")
  | _ -> Error "top level is not an object"

let count_events_file path ~name =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> count_events_string s ~name

(* Total events dropped to ring wrap-around, from the top-level
   "bdsDroppedEvents" key the flusher writes.  Traces from before that
   key existed read as 0 dropped rather than erroring: absence of
   evidence of drops is how those files were always interpreted. *)
let dropped_of_string s =
  match Tiny_json.parse_result s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok v -> (
    match Tiny_json.member "bdsDroppedEvents" v with
    | Some (Tiny_json.Num f) -> Ok (int_of_float f)
    | Some _ -> Error "\"bdsDroppedEvents\" is not a number"
    | None -> ( match v with Tiny_json.Obj _ -> Ok 0 | _ -> Error "top level is not an object"))

let dropped_of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> dropped_of_string s

(* Flow connectivity: group the 's'/'t'/'f' events by "id" and report
   which flows are missing their start or end anchor.  A connected flow
   is one with at least one 's' and at least one 'f'; 't' steps are
   optional.  Backs `bds_probe trace-check`'s job-flow check and the
   service round-trip test. *)
let flows_of_string s =
  match Tiny_json.parse s with
  | exception Tiny_json.Bad e -> Error ("not valid JSON: " ^ e)
  | Tiny_json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Tiny_json.Arr events) ->
      let tbl : (int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun ev ->
          match ev with
          | Tiny_json.Obj fields -> (
            match
              (List.assoc_opt "ph" fields, List.assoc_opt "id" fields)
            with
            | Some (Tiny_json.Str ph), Some (Tiny_json.Num id)
              when ph = "s" || ph = "t" || ph = "f" ->
              let id = int_of_float id in
              let s0, f0 =
                Option.value (Hashtbl.find_opt tbl id) ~default:(false, false)
              in
              Hashtbl.replace tbl id (s0 || ph = "s", f0 || ph = "f")
            | _ -> ())
          | _ -> ())
        events;
      let disconnected =
        Hashtbl.fold (fun id (s, f) acc -> if s && f then acc else id :: acc) tbl []
        |> List.sort compare
      in
      Ok (Hashtbl.length tbl, disconnected)
    | Some _ -> Error "\"traceEvents\" is not an array"
    | None -> Error "missing \"traceEvents\" key")
  | _ -> Error "top level is not an object"

let flows_of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> flows_of_string s

(* ------------------------------------------------------------------ *)
(* Test backdoors *)

module For_testing = struct
  let events () =
    Mutex.lock registry_mutex;
    let rings = !registry in
    Mutex.unlock registry_mutex;
    List.concat_map
      (fun r ->
        let stored = min r.count capacity in
        List.init stored (fun i -> (r.names.(i), r.cats.(i))))
      rings
end
