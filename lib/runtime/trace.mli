(** Chrome-trace observability for the runtime.

    When [BDS_TRACE=<file>] is set in the environment (or {!set_output}
    is called), every [Runtime] cancellation scope and every sequential
    grain chunk records a complete span — name, category, timestamp,
    duration, and the chunk's [\[lo, hi)] range — into a per-domain ring
    buffer.  {!flush} (called automatically at pool teardown, and at
    process exit when [BDS_TRACE] was set at startup) writes all buffers
    as Chrome trace-event JSON, loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}, one track per domain.

    With tracing disabled an instrumentation point costs a single atomic
    boolean load.  Ring buffers hold a fixed number of events per domain
    and overwrite their oldest entries when full; the flushed JSON names
    each track with the number of events dropped, if any. *)

(** True when spans are being recorded. *)
val enabled : unit -> bool

(** [with_span ?cat ?lo ?hi name f] runs [f] and, if tracing is enabled,
    records its duration as a span.  [cat] defaults to ["scope"]; pass
    [~cat:"chunk"] with [lo]/[hi] for iteration chunks. *)
val with_span : ?cat:string -> ?lo:int -> ?hi:int -> string -> (unit -> 'a) -> 'a

(** Microseconds since the recorder's epoch — the timestamp base every
    recorded event uses.  For measuring a span whose start is only known
    after the fact (e.g. queue wait measured at dequeue), capture
    [now_us] bounds and record with {!emit_span}. *)
val now_us : unit -> float

(** [emit_span ?cat ?lo ?hi ?args_json name ~t0_us ~t1_us] records a
    complete span with explicit timestamps (from {!now_us}).
    [args_json], when non-empty, is a pre-rendered JSON fragment (e.g.
    [{|"tenant":"a"|}]) spliced into the event's ["args"] object — use
    {!escape_json} for the values.  No-op when tracing is disabled. *)
val emit_span :
  ?cat:string -> ?lo:int -> ?hi:int -> ?args_json:string -> string ->
  t0_us:float -> t1_us:float -> unit

(** [emit_flow step ~id name] records a Chrome-trace flow event —
    [`Start]/[`Step]/[`End] map to phases ["s"]/["t"]/["f"] — linking
    the spans of one logical operation (e.g. a job's admit → attempts →
    outcome) across threads under the correlation [id].  [cat] defaults
    to ["job"].  No-op when tracing is disabled. *)
val emit_flow :
  [ `Start | `Step | `End ] -> id:int -> ?cat:string -> ?args_json:string ->
  string -> unit

(** JSON string-escape (for building [args_json] fragments safely). *)
val escape_json : string -> string

(** Redirect (or, with [None], disable) trace output at runtime.
    Overrides the [BDS_TRACE] environment variable. *)
val set_output : string option -> unit

(** Discard all buffered events (test isolation). *)
val reset : unit -> unit

(** Write every buffered event to the configured output file as Chrome
    trace JSON.  A no-op when no output is configured.  Called by
    [Pool.teardown]. *)
val flush : unit -> unit

(** [validate_file path] checks that [path] parses as JSON and is shaped
    like a Chrome trace (a top-level object whose ["traceEvents"] array
    holds well-formed events); returns the event count.  Backs
    [bds_probe trace-check] and the unit tests — no external JSON
    library required. *)
val validate_file : string -> (int, string) result

(** Like {!validate_file}, on an in-memory string. *)
val validate_string : string -> (int, string) result

(** [count_events_file path ~name] counts the events in a trace file
    whose ["name"] field equals [name] (e.g. ["block"] for the per-block
    spans of [Runtime.apply_blocks]).  Backs [bds_probe trace-count] and
    the granularity cram test. *)
val count_events_file : string -> name:string -> (int, string) result

(** Like {!count_events_file}, on an in-memory string. *)
val count_events_string : string -> name:string -> (int, string) result

(** [dropped_of_file path] reads the total number of events lost to ring
    wrap-around from the trace's top-level ["bdsDroppedEvents"] key
    (per-domain counts are also flushed as ["bds_dropped_events"]
    metadata events).  Traces written before that key existed read as 0.
    Backs the drop warning of [bds_probe trace-check]. *)
val dropped_of_file : string -> (int, string) result

(** Like {!dropped_of_file}, on an in-memory string. *)
val dropped_of_string : string -> (int, string) result

(** [flows_of_file path] inspects the flow events of a trace and returns
    [(flows, disconnected)]: the number of distinct flow ids, and the
    (sorted) ids lacking a start or an end anchor.  A job flow emitted
    by the service is connected iff its admit ([`Start]) and outcome
    ([`End]) events both survived the ring.  Backs the job-flow check of
    [bds_probe trace-check] and the service trace round-trip test. *)
val flows_of_file : string -> (int * int list, string) result

(** Like {!flows_of_file}, on an in-memory string. *)
val flows_of_string : string -> (int * int list, string) result

(** Test backdoors — not part of the public contract. *)
module For_testing : sig
  (** [(name, cat)] of every buffered event, across all domains. *)
  val events : unit -> (string * string) list
end
