(* Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005).

   Single-owner discipline: [push] and [pop] may only be called by the
   worker domain that owns the deque; [steal] may be called by any other
   domain.  The implementation relies on OCaml 5's sequentially-consistent
   [Atomic] operations, which makes the published algorithm directly
   applicable without explicit fences.

   The circular buffer grows when full (owner-side only).  A thief that
   raced with a growth may read from the old buffer; this is safe because
   the owner never writes to the old buffer again and logical slots below
   [bottom] are immutable until reclaimed by a successful CAS on [top]. *)

type 'a buffer = { mask : int; slots : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer capacity =
  { mask = capacity - 1; slots = Array.make capacity None }

let create ?(capacity = 256) () =
  if capacity land (capacity - 1) <> 0 || capacity <= 0 then
    invalid_arg "Ws_deque.create: capacity must be a positive power of two";
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer capacity) }

let buffer_get buf i = buf.slots.(i land buf.mask)
let buffer_set buf i v = buf.slots.(i land buf.mask) <- v

(* Owner-only: copy live entries [t, b) into a buffer twice as large. *)
let grow q t b =
  let old = Atomic.get q.buf in
  let nbuf = make_buffer (2 * (old.mask + 1)) in
  for i = t to b - 1 do
    buffer_set nbuf i (buffer_get old i)
  done;
  Atomic.set q.buf nbuf;
  nbuf

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow q t b else buf in
  buffer_set buf b (Some v);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Deque was empty: undo. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let v = buffer_get buf b in
    if b > t then begin
      (* More than one element left: no race with thieves possible. *)
      buffer_set buf b None;
      v
    end
    else begin
      (* Last element: race against thieves via CAS on [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buffer_set buf b None;
        v
      end
      else None
    end
  end

let steal q =
  Telemetry.incr_steal_attempts ();
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let v = buffer_get buf t in
    if Atomic.compare_and_set q.top t (t + 1) then begin
      Telemetry.incr_steals ();
      v
    end
    else None
  end

let size q =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  max 0 (b - t)

let is_empty q = size q = 0
