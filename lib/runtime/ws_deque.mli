(** Chase-Lev work-stealing deque.

    Single-owner discipline: {!push} and {!pop} must only be called by the
    owning worker domain; {!steal} may be called concurrently by any number
    of other domains. *)

type 'a t

(** [create ?capacity ()] makes an empty deque. [capacity] must be a
    positive power of two (default 256); the buffer grows on demand. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner-only: push a value on the bottom (LIFO end). *)
val push : 'a t -> 'a -> unit

(** Owner-only: pop from the bottom. [None] if empty (or lost the race for
    the last element). *)
val pop : 'a t -> 'a option

(** Thief: take from the top (FIFO end). [None] if empty or the CAS was
    lost to a concurrent thief/owner. *)
val steal : 'a t -> 'a option

(** Approximate number of elements (racy snapshot). *)
val size : 'a t -> int

(** Racy emptiness snapshot. *)
val is_empty : 'a t -> bool
