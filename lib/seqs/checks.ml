(* Static conformance of the three implementations to the shared
   signature. *)

module _ : Sig.S = Impl_array
module _ : Sig.S = Impl_rad
module _ : Sig.S = Impl_delay
