(* Library "A": eager parallel arrays, no fusion.  Every operation
   materialises its result. *)

module Parray = Bds_parray.Parray

type 'a t = 'a array

let name = "array"
let length = Array.length
let get a i = a.(i)
let empty = [||]
let tabulate = Parray.tabulate
let iota = Parray.iota
(* Arrays are the representation: conversions are identities (benchmarks
   must not mutate through them). *)
let of_array a = a
let to_array a = a
let force a = a
let map = Parray.map
let mapi = Parray.mapi
let zip_with = Parray.map2
let reduce = Parray.reduce
let scan = Parray.scan
let scan_incl = Parray.scan_incl
let filter = Parray.filter
let filter_op = Parray.filter_op
let flatten = Parray.flatten

let iter f a =
  Bds_runtime.Runtime.parallel_for 0 (Array.length a) (fun i ->
      f (Array.unsafe_get a i))

let iteri f a =
  Bds_runtime.Runtime.parallel_for 0 (Array.length a) (fun i ->
      f i (Array.unsafe_get a i))
