(* Library "Ours": full block-delayed sequences (RAD + BID fusion). *)

include Bds.Seq

let name = "delay"
