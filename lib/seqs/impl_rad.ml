(* Library "R": RAD-only fusion (index fusion for tabulate/map/zip/reduce;
   scan/filter/flatten materialise). *)

include Bds_rad.Rad

let name = "rad"
