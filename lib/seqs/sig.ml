(* The common sequence interface (the paper's Figure 1, plus conversions).

   Benchmarks are written once as functors over this signature and
   instantiated with the three library implementations of Figure 12:
   array (A, no fusion), rad (R, RAD-only fusion) and delay (Ours,
   RAD + BID fusion) — exactly how the paper's artifact builds each
   benchmark in three versions. *)

module type S = sig
  type 'a t

  (** "array", "rad" or "delay" — used in benchmark reports. *)
  val name : string

  val length : 'a t -> int
  val get : 'a t -> int -> 'a
  val empty : 'a t
  val tabulate : int -> (int -> 'a) -> 'a t
  val iota : int -> int t
  val of_array : 'a array -> 'a t
  val to_array : 'a t -> 'a array

  (** Materialise any delayed work (identity for the eager array library). *)
  val force : 'a t -> 'a t

  val map : ('a -> 'b) -> 'a t -> 'b t
  val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
  val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
  val reduce : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a
  val scan : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t * 'a
  val scan_incl : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t
  val filter : ('a -> bool) -> 'a t -> 'a t
  val filter_op : ('a -> 'b option) -> 'a t -> 'b t
  val flatten : 'a t t -> 'a t
  val iter : ('a -> unit) -> 'a t -> unit
  val iteri : (int -> 'a -> unit) -> 'a t -> unit
end
