(* Exponential backoff with splitmix jitter (see backoff.mli). *)

type t = { base_s : float; factor : float; max_s : float; jitter : float }

let default = { base_s = 0.005; factor = 2.0; max_s = 0.25; jitter = 0.5 }

let delay t ~seed ~attempt =
  let attempt = max 1 attempt in
  let raw = t.base_s *. (t.factor ** float_of_int (attempt - 1)) in
  let capped = Float.min raw t.max_s in
  (* Uniform in [1 - jitter, 1 + jitter]: variate [attempt] of stream
     [seed], so the schedule is deterministic per (seed, attempt). *)
  let u = Bds_data.Splitmix.float_at ~seed attempt in
  let factor = 1.0 -. t.jitter +. (2.0 *. t.jitter *. u) in
  Float.max 1e-6 (capped *. factor)
