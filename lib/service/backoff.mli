(** Exponential retry backoff with deterministic jitter.

    The delay before retry attempt [k] (the first retry is [k = 1]) is

    {v base * factor^(k-1), capped at max, then jittered v}

    where the jitter multiplies by a factor drawn uniformly from
    [1 - jitter, 1 + jitter].  The draw is {!Bds_data.Splitmix} at
    [(seed, k)], so a job's retry schedule is a pure function of its
    seed — reproducible across runs, yet decorrelated between jobs
    (no thundering-herd retry waves). *)

type t = {
  base_s : float;  (** first-retry delay, seconds *)
  factor : float;  (** exponential growth per further retry, >= 1 *)
  max_s : float;  (** cap applied before jitter *)
  jitter : float;  (** relative jitter amplitude in [0, 1] *)
}

val default : t
(** 5ms base, factor 2, 250ms cap, 0.5 jitter — tuned for a service
    whose jobs run in the millisecond-to-second range. *)

val delay : t -> seed:int -> attempt:int -> float
(** Delay in seconds before retry [attempt] (>= 1).  Always positive
    and at most [max_s * (1 + jitter)]. *)
