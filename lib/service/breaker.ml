(* Sliding-window circuit breaker (see breaker.mli).

   The window is a ring of booleans (true = failure).  State:
   - Closed: recording; trips Open when the window's failure fraction
     reaches the threshold (with at least [min_samples] samples).
   - Open since t0: retries denied until [now - t0 >= cooldown_s].
   - Half_open: one probe retry allowed; its outcome decides
     (success -> Closed with a cleared window, failure -> Open again).

   Everything is guarded by one mutex; the hot call (allow_retry on a
   closed breaker) is a lock + two loads. *)

type config = {
  window : int;
  min_samples : int;
  failure_threshold : float;
  cooldown_s : float;
}

let default_config =
  { window = 32; min_samples = 8; failure_threshold = 0.5; cooldown_s = 0.25 }

type phase =
  | Closed
  | Open of float  (* opened_at *)
  | Half_open of bool  (* probe already handed out *)

type t = {
  cfg : config;
  m : Mutex.t;
  ring : bool array;  (* true = failure *)
  mutable next : int;  (* ring write cursor *)
  mutable samples : int;  (* min samples, window *)
  mutable failures : int;  (* failures currently in the window *)
  mutable phase : phase;
}

let create cfg =
  if cfg.window <= 0 then invalid_arg "Breaker.create: window <= 0";
  {
    cfg;
    m = Mutex.create ();
    ring = Array.make cfg.window false;
    next = 0;
    samples = 0;
    failures = 0;
    phase = Closed;
  }

let clear_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.next <- 0;
  t.samples <- 0;
  t.failures <- 0

let push t fail =
  if t.samples = t.cfg.window then begin
    (* Evict the slot we are about to overwrite. *)
    if t.ring.(t.next) then t.failures <- t.failures - 1
  end
  else t.samples <- t.samples + 1;
  t.ring.(t.next) <- fail;
  if fail then t.failures <- t.failures + 1;
  t.next <- (t.next + 1) mod t.cfg.window

let tripping t =
  t.samples >= t.cfg.min_samples
  && float_of_int t.failures /. float_of_int t.samples
     >= t.cfg.failure_threshold

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Advance Open -> Half_open when the cooldown has elapsed (call with
   the mutex held). *)
let advance t ~now =
  match t.phase with
  | Open t0 when now -. t0 >= t.cfg.cooldown_s -> t.phase <- Half_open false
  | _ -> ()

let record t ~now ~ok =
  locked t (fun () ->
      advance t ~now;
      match t.phase with
      | Half_open _ ->
        if ok then begin
          (* Probe succeeded: close and forget the bad window. *)
          t.phase <- Closed;
          clear_window t
        end
        else t.phase <- Open now
      | Closed ->
        push t (not ok);
        if (not ok) && tripping t then t.phase <- Open now
      | Open _ ->
        (* Attempts still in flight when the breaker opened: their
           outcomes keep the window current but cannot re-trip. *)
        push t (not ok))

let allow_retry t ~now =
  locked t (fun () ->
      advance t ~now;
      match t.phase with
      | Closed -> true
      | Open _ -> false
      | Half_open taken ->
        if taken then false
        else begin
          t.phase <- Half_open true;
          true
        end)

let state t ~now =
  locked t (fun () ->
      advance t ~now;
      match t.phase with
      | Closed -> `Closed
      | Open _ -> `Open
      | Half_open _ -> `Half_open)

let state_label = function
  | `Closed -> "closed"
  | `Open -> "open"
  | `Half_open -> "half_open"
