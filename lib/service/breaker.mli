(** Circuit breaker over a sliding window of attempt outcomes.

    Protects the pool from retry storms: when the recent failure rate
    spikes, the breaker {e opens} and the scheduler sheds retries (the
    failing job resolves [Failed] immediately instead of burning pool
    time on attempts that will very likely fail again).  After a
    cooldown the breaker goes {e half-open} and admits one probe retry:
    success closes it, failure re-opens it for another cooldown.

    All methods take [now] explicitly (seconds, any monotonic-enough
    clock) so the state machine is deterministic under test.  The
    implementation is mutex-protected and callable from any thread. *)

type config = {
  window : int;  (** attempts remembered (sliding window size) *)
  min_samples : int;  (** no tripping before this many samples *)
  failure_threshold : float;
      (** open when [failures / samples >= threshold], in (0, 1] *)
  cooldown_s : float;  (** open -> half-open delay *)
}

val default_config : config
(** window 32, min_samples 8, threshold 0.5, cooldown 250ms. *)

type t

val create : config -> t

val record : t -> now:float -> ok:bool -> unit
(** Record one attempt outcome.  A failure may trip the breaker open; a
    success while half-open closes it (and clears the window). *)

val allow_retry : t -> now:float -> bool
(** Closed: always true.  Open: false until [cooldown_s] has elapsed,
    then the breaker turns half-open and this returns true exactly once
    per probe (concurrent callers race for the single probe slot). *)

val state : t -> now:float -> [ `Closed | `Open | `Half_open ]
(** Current state (advancing open -> half-open if the cooldown has
    elapsed at [now]). *)

val state_label : [ `Closed | `Open | `Half_open ] -> string
(** [closed] / [open] / [half_open]. *)
