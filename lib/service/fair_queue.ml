(* Round-robin multi-tenant queue (see fair_queue.mli).

   Tenants are kept in an arrival-ordered ring ([order]); [cursor]
   points at the tenant to serve next.  An empty sub-queue stays in the
   ring (tenant sets are small — removing and re-adding would just churn
   the ring), it is simply skipped.

   Every element is stamped with its enqueue time so queue wait is
   measured where it happens — [take] hands the wait back with the
   element — and each tenant tracks its high-water depth for the
   per-tenant max-queue-depth gauge. *)

type 'a sub = {
  q : ('a * float) Queue.t; (* element, enqueue timestamp *)
  mutable max_depth : int; (* high-water mark, never reset *)
}

type 'a t = {
  m : Mutex.t;
  cv : Condition.t;
  tenants : (string, 'a sub) Hashtbl.t;
  mutable order : string array;  (* ring of known tenants *)
  mutable cursor : int;
  mutable size : int;
  mutable closed : bool;
}

let create () =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    tenants = Hashtbl.create 8;
    order = [||];
    cursor = 0;
    size = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let subqueue t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
    let s = { q = Queue.create (); max_depth = 0 } in
    Hashtbl.add t.tenants tenant s;
    t.order <- Array.append t.order [| tenant |];
    s

let push t ~tenant v =
  locked t (fun () ->
      if t.closed then false
      else begin
        let s = subqueue t tenant in
        Queue.push (v, Unix.gettimeofday ()) s.q;
        let depth = Queue.length s.q in
        if depth > s.max_depth then s.max_depth <- depth;
        t.size <- t.size + 1;
        Condition.signal t.cv;
        true
      end)

(* Next item in round-robin order, advancing the cursor past the tenant
   served (call with the mutex held; returns None when empty).  The
   returned float is the element's queue wait in seconds. *)
let pick t =
  let n = Array.length t.order in
  if n = 0 || t.size = 0 then None
  else begin
    let rec go k =
      if k >= n then None
      else
        let i = (t.cursor + k) mod n in
        let s = Hashtbl.find t.tenants t.order.(i) in
        if Queue.is_empty s.q then go (k + 1)
        else begin
          t.cursor <- (i + 1) mod n;
          t.size <- t.size - 1;
          let v, enq = Queue.pop s.q in
          Some (v, Unix.gettimeofday () -. enq)
        end
    in
    go 0
  end

let take t =
  locked t (fun () ->
      let rec wait () =
        match pick t with
        | Some _ as r -> r
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.cv t.m;
            wait ()
          end
      in
      wait ())

let length t = locked t (fun () -> t.size)

let depths t =
  locked t (fun () ->
      Array.to_list t.order
      |> List.map (fun tenant ->
             let s = Hashtbl.find t.tenants tenant in
             (tenant, Queue.length s.q, s.max_depth)))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cv)

let drain t =
  locked t (fun () ->
      let acc = ref [] in
      let rec go () =
        match pick t with
        | Some (v, _) ->
          acc := v :: !acc;
          go ()
        | None -> ()
      in
      go ();
      List.rev !acc)
