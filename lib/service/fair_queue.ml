(* Round-robin multi-tenant queue (see fair_queue.mli).

   Tenants are kept in an arrival-ordered ring ([order]); [cursor]
   points at the tenant to serve next.  An empty sub-queue stays in the
   ring (tenant sets are small — removing and re-adding would just churn
   the ring), it is simply skipped. *)

type 'a t = {
  m : Mutex.t;
  cv : Condition.t;
  tenants : (string, 'a Queue.t) Hashtbl.t;
  mutable order : string array;  (* ring of known tenants *)
  mutable cursor : int;
  mutable size : int;
  mutable closed : bool;
}

let create () =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    tenants = Hashtbl.create 8;
    order = [||];
    cursor = 0;
    size = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let subqueue t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.tenants tenant q;
    t.order <- Array.append t.order [| tenant |];
    q

let push t ~tenant v =
  locked t (fun () ->
      if t.closed then false
      else begin
        Queue.push v (subqueue t tenant);
        t.size <- t.size + 1;
        Condition.signal t.cv;
        true
      end)

(* Next item in round-robin order, advancing the cursor past the tenant
   served (call with the mutex held; returns None when empty). *)
let pick t =
  let n = Array.length t.order in
  if n = 0 || t.size = 0 then None
  else begin
    let rec go k =
      if k >= n then None
      else
        let i = (t.cursor + k) mod n in
        let q = Hashtbl.find t.tenants t.order.(i) in
        if Queue.is_empty q then go (k + 1)
        else begin
          t.cursor <- (i + 1) mod n;
          t.size <- t.size - 1;
          Some (Queue.pop q)
        end
    in
    go 0
  end

let take t =
  locked t (fun () ->
      let rec wait () =
        match pick t with
        | Some _ as r -> r
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.cv t.m;
            wait ()
          end
      in
      wait ())

let length t = locked t (fun () -> t.size)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cv)

let drain t =
  locked t (fun () ->
      let acc = ref [] in
      let rec go () =
        match pick t with
        | Some v ->
          acc := v :: !acc;
          go ()
        | None -> ()
      in
      go ();
      List.rev !acc)
