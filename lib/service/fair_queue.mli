(** Multi-tenant FIFO queue with round-robin fairness.

    Each tenant gets its own FIFO sub-queue; {!take} serves tenants in
    round-robin order, so a tenant flooding the service cannot starve
    the others — within a tenant, order stays FIFO.  The queue itself
    is unbounded: admission control (the outstanding-job bound) lives
    in {!Service}, which checks before pushing.

    Thread-safe; {!take} blocks on a condition variable until an item
    or {!close} arrives. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> tenant:string -> 'a -> bool
(** Enqueue for [tenant].  False (and no enqueue) after {!close}. *)

val take : 'a t -> ('a * float) option
(** Blocking round-robin dequeue; [None] once the queue is closed {e
    and} drained.  The float is the element's queue wait in seconds,
    measured from its {!push} — wait accounting lives here, where the
    enqueue timestamp is stamped, not inferred by the caller. *)

val length : 'a t -> int
(** Total queued items across tenants (racy snapshot). *)

val depths : 'a t -> (string * int * int) list
(** Per-tenant [(tenant, current depth, max depth ever)] in tenant
    arrival order.  The high-water mark is never reset — it is the
    per-tenant backlog gauge surfaced via [METRICS]. *)

val close : 'a t -> unit
(** Reject further pushes and wake all blocked takers; queued items
    are still handed out until drained. *)

val drain : 'a t -> 'a list
(** Atomically remove and return everything queued (round-robin
    order).  Used by non-draining shutdown to fail queued jobs fast. *)
