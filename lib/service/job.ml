(* Job descriptors and typed terminal outcomes (see job.mli). *)

type request = {
  kind : string;
  params : (string * string) list;
  tenant : string;
  deadline_ms : int option;
  retries : int option;
}

let request ?(params = []) ?(tenant = "default") ?deadline_ms ?retries kind =
  { kind; params; tenant; deadline_ms; retries }

exception Transient of string

type outcome =
  | Completed of string
  | Failed of string
  | Cancelled
  | Deadline_exceeded

type reject = Overloaded | Shutting_down

let outcome_label = function
  | Completed _ -> "completed"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"
  | Deadline_exceeded -> "deadline_exceeded"

let reject_label = function
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"

let pp_outcome = function
  | Completed s -> Printf.sprintf "completed(%s)" s
  | Failed s -> Printf.sprintf "failed(%s)" s
  | Cancelled -> "cancelled"
  | Deadline_exceeded -> "deadline_exceeded"
