(** Job descriptors and typed terminal outcomes for the pipeline
    service.

    A {e job} is one client-submitted pipeline run: a workload kind
    (see {!Workload}) with parameters, owned by a tenant, optionally
    carrying a wall-clock deadline and a retry budget.  Every admitted
    job resolves to {e exactly one} terminal {!outcome}; submissions the
    admission controller refuses get a typed {!reject} instead of an
    outcome (they were never admitted).  The full failure matrix lives
    in docs/SERVICE.md. *)

(** What the client asked for.  [params] are the raw [key=value] pairs
    of the request; {!Workload.build} validates them. *)
type request = {
  kind : string;  (** workload name, e.g. ["sum"], ["busy"], ["fail"] *)
  params : (string * string) list;
  tenant : string;  (** fair-scheduling key; defaults to ["default"] *)
  deadline_ms : int option;  (** wall-clock budget from admission *)
  retries : int option;  (** per-job override of the retry budget *)
}

val request :
  ?params:(string * string) list ->
  ?tenant:string ->
  ?deadline_ms:int ->
  ?retries:int ->
  string ->
  request

(** Raised by workload bodies to signal a {e retryable} fault (the
    job-level analogue of [Chaos.Injected_fault]).  The scheduler
    retries it under the backoff policy; any other exception is
    terminal. *)
exception Transient of string

(** The single terminal outcome of an admitted job. *)
type outcome =
  | Completed of string  (** result payload, rendered by the workload *)
  | Failed of string  (** terminal fault: retries exhausted / shed by the
                          circuit breaker / non-retryable exception /
                          worker crash *)
  | Cancelled  (** explicit [cancel], or service shutdown without drain *)
  | Deadline_exceeded

(** Typed admission refusal (the job was never admitted). *)
type reject =
  | Overloaded  (** outstanding-job bound reached: load was shed *)
  | Shutting_down

val outcome_label : outcome -> string
(** Stable one-token label: [completed] / [failed] / [cancelled] /
    [deadline_exceeded] (the telemetry-counter and protocol names). *)

val reject_label : reject -> string
(** [overloaded] / [shutting_down]. *)

val pp_outcome : outcome -> string
(** Label plus payload, for logs and test failure messages. *)
