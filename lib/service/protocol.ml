(* Line protocol parsing/rendering (see protocol.mli).  Pure string
   functions — the socket plumbing lives in Server. *)

type command =
  | Submit of Job.request
  | Post of Job.request
  | Wait of int
  | Stats
  | Metrics
  | Quit

type response =
  | R_outcome of Job.outcome
  | R_accepted of int
  | R_rejected of Job.reject
  | R_bad of string
  | R_stats of string
  | R_metrics
  | R_bye

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* Fold [key=value] tokens into a Job.request, routing the reserved keys
   into their typed fields. *)
let parse_request kind args =
  let ( let* ) = Result.bind in
  let int_field key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: not a non-negative integer: %S" key v)
  in
  let rec go req = function
    | [] -> Ok { req with Job.params = List.rev req.Job.params }
    | tok :: rest -> (
      match String.index_opt tok '=' with
      | None -> Error (Printf.sprintf "malformed argument %S (want key=value)" tok)
      | Some i ->
        let key = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        if key = "" then
          Error (Printf.sprintf "malformed argument %S (empty key)" tok)
        else
          let* req =
            match key with
            | "tenant" -> Ok { req with Job.tenant = v }
            | "deadline_ms" ->
              let* n = int_field key v in
              Ok { req with Job.deadline_ms = Some n }
            | "retries" ->
              let* n = int_field key v in
              Ok { req with Job.retries = Some n }
            | _ -> Ok { req with Job.params = (key, v) :: req.Job.params }
          in
          go req rest)
  in
  go (Job.request kind) args

let parse_command line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: rest -> (
    match (String.uppercase_ascii verb, rest) with
    | "SUBMIT", kind :: args ->
      Result.map (fun r -> Submit r) (parse_request kind args)
    | "SUBMIT", [] -> Error "SUBMIT: missing kind"
    | "POST", kind :: args ->
      Result.map (fun r -> Post r) (parse_request kind args)
    | "POST", [] -> Error "POST: missing kind"
    | "WAIT", [ id ] -> (
      match int_of_string_opt id with
      | Some n when n > 0 -> Ok (Wait n)
      | _ -> Error (Printf.sprintf "WAIT: not a job id: %S" id))
    | "WAIT", _ -> Error "WAIT: want exactly one job id"
    | "STATS", [] -> Ok Stats
    | "METRICS", [] -> Ok Metrics
    | "QUIT", [] -> Ok Quit
    | _ -> Error (Printf.sprintf "unknown request %S" verb))

let render_request verb (r : Job.request) =
  let field k = function Some v -> [ k ^ "=" ^ string_of_int v ] | None -> [] in
  String.concat " "
    ((verb :: r.Job.kind
      :: (if r.Job.tenant = "default" then [] else [ "tenant=" ^ r.Job.tenant ]))
    @ field "deadline_ms" r.Job.deadline_ms
    @ field "retries" r.Job.retries
    @ List.map (fun (k, v) -> k ^ "=" ^ v) r.Job.params)

let render_command = function
  | Submit r -> render_request "SUBMIT" r
  | Post r -> render_request "POST" r
  | Wait id -> Printf.sprintf "WAIT %d" id
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Quit -> "QUIT"

let render_outcome o =
  match o with
  | Job.Completed payload -> "OK completed " ^ one_line payload
  | Job.Failed msg -> "OK failed " ^ one_line msg
  | Job.Cancelled -> "OK cancelled"
  | Job.Deadline_exceeded -> "OK deadline_exceeded"

let render_reject r = "REJECTED " ^ Job.reject_label r

let render_bad msg = "BAD " ^ one_line msg

let render_accepted id = Printf.sprintf "ACCEPTED %d" id

let parse_response line =
  let split_verb line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )
  in
  let verb, rest = split_verb (String.trim line) in
  match verb with
  | "OK" -> (
    let label, payload = split_verb rest in
    match label with
    | "completed" -> Ok (R_outcome (Job.Completed payload))
    | "failed" -> Ok (R_outcome (Job.Failed payload))
    | "cancelled" -> Ok (R_outcome Job.Cancelled)
    | "deadline_exceeded" -> Ok (R_outcome Job.Deadline_exceeded)
    | _ -> Error (Printf.sprintf "unknown outcome label %S" label))
  | "ACCEPTED" -> (
    match int_of_string_opt rest with
    | Some id -> Ok (R_accepted id)
    | None -> Error (Printf.sprintf "ACCEPTED: bad id %S" rest))
  | "REJECTED" -> (
    match rest with
    | "overloaded" -> Ok (R_rejected Job.Overloaded)
    | "shutting_down" -> Ok (R_rejected Job.Shutting_down)
    | _ -> Error (Printf.sprintf "unknown reject label %S" rest))
  | "BAD" -> Ok (R_bad rest)
  | "STATS" -> Ok (R_stats rest)
  | "METRICS" -> Ok R_metrics
  | "BYE" -> Ok R_bye
  | _ -> Error (Printf.sprintf "unknown response %S" line)
