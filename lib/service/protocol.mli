(** Wire protocol of [bds_serve]: newline-delimited requests, typed
    newline-delimited responses, over a Unix-domain socket.

    Requests (one per line, space-separated tokens):

    {v
    SUBMIT <kind> [key=value ...]   run a job, block for its outcome
    POST   <kind> [key=value ...]   admit a job, reply immediately
    WAIT   <id>                     block for a POSTed job's outcome
    STATS                           one-line JSON service summary
    METRICS                         OpenMetrics exposition
    QUIT                            close the connection
    v}

    The reserved keys [tenant], [deadline_ms] and [retries] populate the
    corresponding {!Job.request} fields; every other [key=value] pair is
    passed to the workload as a parameter.

    Responses (exactly one line per request; first token is the type):

    {v
    OK <outcome_label> [payload]    terminal outcome (SUBMIT / WAIT)
    ACCEPTED <id>                   POST admitted
    REJECTED <reject_label>         admission refused (overloaded /
                                    shutting_down)
    BAD <message>                   malformed request; never admitted
    STATS <json>                    service summary
    METRICS                         exposition follows on subsequent
                                    lines, ending with [# EOF]
    BYE                             reply to QUIT
    v}

    [METRICS] is the one multi-line response: after the [METRICS]
    header line the server streams the OpenMetrics text exposition
    verbatim; the exposition's mandatory [# EOF] terminator doubles as
    the wire terminator, so clients read until that line.

    [OK completed <payload>] carries the workload result; [OK failed
    <message>] the terminal error; [OK cancelled] and
    [OK deadline_exceeded] are bare.  Parsing and rendering are pure so
    the protocol is unit-testable without a socket. *)

type command =
  | Submit of Job.request  (** blocking: respond with the outcome *)
  | Post of Job.request  (** fire-and-forget: respond [ACCEPTED id] *)
  | Wait of int
  | Stats
  | Metrics
  | Quit

val parse_command : string -> (command, string) result
(** Parse one request line.  [Error msg] renders as [BAD msg]. *)

val render_command : command -> string
(** Inverse of {!parse_command} (params in listed order). *)

val render_outcome : Job.outcome -> string
(** The [OK ...] response line. *)

val render_reject : Job.reject -> string
(** The [REJECTED ...] response line. *)

val render_bad : string -> string
(** The [BAD ...] response line (message flattened to one line). *)

val render_accepted : int -> string

(** A parsed response, for clients and tests. *)
type response =
  | R_outcome of Job.outcome
  | R_accepted of int
  | R_rejected of Job.reject
  | R_bad of string
  | R_stats of string  (** raw JSON payload *)
  | R_metrics
      (** header only — the exposition body follows on the wire,
          terminated by its [# EOF] line *)
  | R_bye

val parse_response : string -> (response, string) result
