(* Unix-socket front end (see server.mli). *)

module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile

let log_src = Logs.Src.create "bds.server" ~doc:"bds_serve socket front end"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  service : Service.t;
  path : string;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  (* POSTed jobs waiting for a WAIT, shared across connections. *)
  tickets : (int, Service.ticket) Hashtbl.t;
  tickets_m : Mutex.t;
}

let create ?config ~path () =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  {
    service = Service.create ?config ();
    path;
    listen_fd;
    stopping = Atomic.make false;
    tickets = Hashtbl.create 64;
    tickets_m = Mutex.create ();
  }

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* Closing the listener makes the blocked [accept] fail, which is
       the wake-up; shutdown proper happens in [serve]'s exit path so a
       signal handler stays minimal. *)
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let stats_json t =
  let s = Service.summary t.service in
  let jobs =
    Telemetry.to_assoc (Telemetry.snapshot ())
    |> List.filter (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "jobs_")
    |> List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"workers\":%d,\"queue_depth\":%d,\"outstanding\":%d,\"breaker\":%S,\"jobs\":{%s}}"
    s.Service.sm_workers s.Service.sm_queue_depth s.Service.sm_outstanding
    s.Service.sm_breaker jobs

let remember t ticket =
  Mutex.lock t.tickets_m;
  Hashtbl.replace t.tickets (Service.id ticket) ticket;
  Mutex.unlock t.tickets_m

let recall t id =
  Mutex.lock t.tickets_m;
  let r = Hashtbl.find_opt t.tickets id in
  Mutex.unlock t.tickets_m;
  r

let respond_submit t req =
  match Service.submit t.service req with
  | Error (`Rejected r) -> Protocol.render_reject r
  | Error (`Bad_request msg) -> Protocol.render_bad msg
  | Ok ticket -> Protocol.render_outcome (Service.wait ticket)

let respond_post t req =
  match Service.submit t.service req with
  | Error (`Rejected r) -> Protocol.render_reject r
  | Error (`Bad_request msg) -> Protocol.render_bad msg
  | Ok ticket ->
    remember t ticket;
    Protocol.render_accepted (Service.id ticket)

let respond_wait t id =
  match recall t id with
  | None -> Protocol.render_bad (Printf.sprintf "unknown job id %d" id)
  | Some ticket -> Protocol.render_outcome (Service.wait ticket)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      match Protocol.parse_command line with
      | Error msg ->
        send (Protocol.render_bad msg);
        loop ()
      | Ok (Protocol.Submit req) ->
        send (respond_submit t req);
        loop ()
      | Ok (Protocol.Post req) ->
        send (respond_post t req);
        loop ()
      | Ok (Protocol.Wait id) ->
        send (respond_wait t id);
        loop ()
      | Ok Protocol.Stats ->
        send ("STATS " ^ stats_json t);
        loop ()
      | Ok Protocol.Quit -> send "BYE")
  in
  (try loop ()
   with e ->
     (* A dropped connection (EPIPE on send, etc.) must not kill the
        server; it only ends this conversation. *)
     Log.debug (fun m -> m "connection error: %s" (Printexc.to_string e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t =
  Log.app (fun m ->
      m "bds_serve listening on %s (capacity=%d runners=%d)" t.path
        (Service.config t.service).Service.capacity
        (Service.config t.service).Service.runners);
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      ignore (Thread.create (fun () -> handle_connection t fd) ());
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when Atomic.get t.stopping ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Atomic.get t.stopping then () else accept_loop ()
  in
  accept_loop ();
  Log.app (fun m -> m "bds_serve stopping");
  (* Cancel outstanding jobs rather than draining: a signalled server
     should exit promptly, and every admitted job still resolves
     (Cancelled) before we return.  Service.shutdown flushes the trace
     recorder. *)
  Service.shutdown ~drain:false t.service;
  if Profile.enabled () then
    prerr_string
      (Profile.render ~workers:(Bds_runtime.Runtime.num_workers ())
         (Profile.rows ()));
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  Log.app (fun m -> m "bds_serve stopped")
