(* Unix-socket front end (see server.mli). *)

module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile
module Metrics = Bds_runtime.Metrics
module Flight = Bds_runtime.Flight

let log_src = Logs.Src.create "bds.server" ~doc:"bds_serve socket front end"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  service : Service.t;
  path : string;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  (* POSTed jobs waiting for a WAIT, shared across connections. *)
  tickets : (int, Service.ticket) Hashtbl.t;
  tickets_m : Mutex.t;
  (* Flight recorder: the server owns the sampling cadence and the dump
     triggers; the ring itself is passive (lib/runtime/flight.ml). *)
  flight : Flight.t;
  flight_path : string option;
  flight_interval_s : float;
  metrics_path : string option;
  dump_requested : bool Atomic.t; (* set from the SIGQUIT handler *)
  sampler_stop : bool Atomic.t;
  mutable sampler : Thread.t option;
}

(* One snapshot of the service into the flight ring, with the gauges
   that are not in Telemetry (queue backlog, outstanding, breaker). *)
let flight_record t ~reason =
  let s = Service.summary t.service in
  let extra =
    [
      ("queue_depth", float_of_int s.Service.sm_queue_depth);
      ("outstanding", float_of_int s.Service.sm_outstanding);
    ]
  in
  Flight.record ~extra t.flight ~reason

let flight_dump t =
  match t.flight_path with
  | None -> ()
  | Some path -> (
    try Flight.dump_file t.flight path
    with Sys_error msg ->
      Log.err (fun m -> m "flight dump to %s failed: %s" path msg))

let metrics_exposition t =
  Service.collect_metrics t.service;
  Metrics.render ()

let metrics_dump t =
  match t.metrics_path with
  | None -> ()
  | Some path -> (
    let body = metrics_exposition t in
    let tmp = path ^ ".tmp" in
    try
      let oc = open_out tmp in
      output_string oc body;
      close_out oc;
      Sys.rename tmp path
    with Sys_error msg ->
      Log.err (fun m -> m "metrics dump to %s failed: %s" path msg))

let create ?config ?flight_path ?(flight_interval_s = 1.0) ?metrics_path
    ~path () =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let t =
    {
      service = Service.create ?config ();
      path;
      listen_fd;
      stopping = Atomic.make false;
      tickets = Hashtbl.create 64;
      tickets_m = Mutex.create ();
      flight = Flight.create ();
      flight_path;
      flight_interval_s = (if flight_interval_s < 0.05 then 0.05 else flight_interval_s);
      metrics_path;
      dump_requested = Atomic.make false;
      sampler_stop = Atomic.make false;
      sampler = None;
    }
  in
  (* A pool crash/heal is exactly the moment the recent window matters:
     snapshot and dump right away, from the healing thread. *)
  Service.on_degrade t.service (fun diag ->
      flight_record t ~reason:("degraded: " ^ diag);
      flight_dump t);
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* Closing the listener makes the blocked [accept] fail, which is
       the wake-up; shutdown proper happens in [serve]'s exit path so a
       signal handler stays minimal. *)
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let request_flight_dump t = Atomic.set t.dump_requested true

let stats_json t =
  let s = Service.summary t.service in
  let jobs =
    Telemetry.to_assoc (Telemetry.snapshot ())
    |> List.filter (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "jobs_")
    |> List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"schema_version\":2,\"uptime_ns\":%d,\"workers\":%d,\"queue_depth\":%d,\"outstanding\":%d,\"breaker\":%S,\"jobs\":{%s}}"
    (Telemetry.uptime_ns ()) s.Service.sm_workers s.Service.sm_queue_depth
    s.Service.sm_outstanding s.Service.sm_breaker jobs

let remember t ticket =
  Mutex.lock t.tickets_m;
  Hashtbl.replace t.tickets (Service.id ticket) ticket;
  Mutex.unlock t.tickets_m

let recall t id =
  Mutex.lock t.tickets_m;
  let r = Hashtbl.find_opt t.tickets id in
  Mutex.unlock t.tickets_m;
  r

let respond_submit t req =
  match Service.submit t.service req with
  | Error (`Rejected r) -> Protocol.render_reject r
  | Error (`Bad_request msg) -> Protocol.render_bad msg
  | Ok ticket -> Protocol.render_outcome (Service.wait ticket)

let respond_post t req =
  match Service.submit t.service req with
  | Error (`Rejected r) -> Protocol.render_reject r
  | Error (`Bad_request msg) -> Protocol.render_bad msg
  | Ok ticket ->
    remember t ticket;
    Protocol.render_accepted (Service.id ticket)

let respond_wait t id =
  match recall t id with
  | None -> Protocol.render_bad (Printf.sprintf "unknown job id %d" id)
  | Some ticket -> Protocol.render_outcome (Service.wait ticket)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      match Protocol.parse_command line with
      | Error msg ->
        send (Protocol.render_bad msg);
        loop ()
      | Ok (Protocol.Submit req) ->
        send (respond_submit t req);
        loop ()
      | Ok (Protocol.Post req) ->
        send (respond_post t req);
        loop ()
      | Ok (Protocol.Wait id) ->
        send (respond_wait t id);
        loop ()
      | Ok Protocol.Stats ->
        send ("STATS " ^ stats_json t);
        loop ()
      | Ok Protocol.Metrics ->
        (* Header line, then the exposition; its "# EOF" line is the
           wire terminator (Protocol docs). *)
        output_string oc "METRICS\n";
        output_string oc (metrics_exposition t);
        flush oc;
        loop ()
      | Ok Protocol.Quit -> send "BYE")
  in
  (try loop ()
   with e ->
     (* A dropped connection (EPIPE on send, etc.) must not kill the
        server; it only ends this conversation. *)
     Log.debug (fun m -> m "connection error: %s" (Printexc.to_string e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Sampler: interval snapshots into the flight ring, periodic metrics
   file refresh, and servicing of SIGQUIT dump requests.  Sleeps in
   50ms slices so a dump request or shutdown is honoured promptly. *)
let sampler_loop t =
  let slice = 0.05 in
  let until = ref (Unix.gettimeofday () +. t.flight_interval_s) in
  while not (Atomic.get t.sampler_stop) do
    Thread.delay slice;
    if Atomic.exchange t.dump_requested false then begin
      flight_record t ~reason:"sigquit";
      flight_dump t;
      Log.app (fun m ->
          m "flight recorder dumped%s (%d snapshots recorded)"
            (match t.flight_path with
            | Some p -> " to " ^ p
            | None -> "")
            (Flight.recorded t.flight))
    end;
    if Unix.gettimeofday () >= !until then begin
      flight_record t ~reason:"interval";
      metrics_dump t;
      until := Unix.gettimeofday () +. t.flight_interval_s
    end
  done

let serve t =
  Log.app (fun m ->
      m "bds_serve listening on %s (capacity=%d runners=%d)" t.path
        (Service.config t.service).Service.capacity
        (Service.config t.service).Service.runners);
  flight_record t ~reason:"start";
  t.sampler <- Some (Thread.create sampler_loop t);
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      ignore (Thread.create (fun () -> handle_connection t fd) ());
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when Atomic.get t.stopping ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Atomic.get t.stopping then () else accept_loop ()
  in
  accept_loop ();
  Log.app (fun m -> m "bds_serve stopping");
  (* Cancel outstanding jobs rather than draining: a signalled server
     should exit promptly, and every admitted job still resolves
     (Cancelled) before we return.  Service.shutdown flushes the trace
     recorder. *)
  Service.shutdown ~drain:false t.service;
  Atomic.set t.sampler_stop true;
  (match t.sampler with Some th -> Thread.join th | None -> ());
  (* Final snapshot after shutdown so the dump's last entry matches a
     final STATS scrape, then dump unconditionally. *)
  flight_record t ~reason:"shutdown";
  flight_dump t;
  metrics_dump t;
  if Profile.enabled () then
    prerr_string
      (Profile.render ~workers:(Bds_runtime.Runtime.num_workers ())
         (Profile.rows ()));
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  Log.app (fun m -> m "bds_serve stopped")
