(** Unix-domain-socket front end for {!Service}, speaking {!Protocol}.

    One accept loop, one sys-thread per connection.  {!stop} is safe to
    call from a signal handler: it atomically flips the stopping flag
    and closes the listening socket, which unblocks the accept loop; the
    loop then shuts the service down (cancelling outstanding jobs),
    which flushes the trace recorder, and emits the profiler report if
    profiling is enabled — so a [bds_serve] killed by SIGINT/SIGTERM
    never silently truncates its observability output.

    The server also owns the service's {!Bds_runtime.Flight} recorder:
    a sampler thread snapshots telemetry + queue gauges every
    [flight_interval_s] (default 1s), and the ring is dumped to
    [flight_path] on {!request_flight_dump} (wired to SIGQUIT in
    [bds_serve]), on pool degradation, and at shutdown.  When
    [metrics_path] is set, the sampler also rewrites that file with a
    fresh OpenMetrics exposition each interval (atomic tmp + rename). *)

type t

val create :
  ?config:Service.config ->
  ?flight_path:string ->
  ?flight_interval_s:float ->
  ?metrics_path:string ->
  path:string ->
  unit ->
  t
(** Bind and listen on the Unix socket at [path] (unlinking any stale
    socket file first) and start the backing {!Service}.  Without
    [flight_path] the flight ring still records (it is cheap) but is
    never written to disk.  [flight_interval_s] is clamped to >= 50ms.
    @raise Unix.Unix_error if the bind fails. *)

val serve : t -> unit
(** Run the accept loop until {!stop}.  Returns after the service has
    fully shut down (every admitted job resolved, trace flushed), the
    final flight snapshot is dumped, and the socket file is removed. *)

val stop : t -> unit
(** Request shutdown.  Async-signal-safe in the OCaml sense (runs from
    [Sys.signal] handlers); idempotent. *)

val request_flight_dump : t -> unit
(** Ask the sampler to snapshot ("sigquit") and dump the flight ring at
    its next 50ms slice.  Async-signal-safe (one atomic store) — this is
    the SIGQUIT handler's body in [bds_serve]. *)

val stats_json : t -> string
(** The [STATS] payload: one-line JSON with [schema_version] (2),
    monotonic [uptime_ns], the {!Service.summary} fields and the
    [jobs_*] telemetry counters. *)

val metrics_exposition : t -> string
(** Refresh the service gauges ({!Service.collect_metrics}) and render
    the full OpenMetrics exposition — the [METRICS] response body. *)
