(** Unix-domain-socket front end for {!Service}, speaking {!Protocol}.

    One accept loop, one sys-thread per connection.  {!stop} is safe to
    call from a signal handler: it atomically flips the stopping flag
    and closes the listening socket, which unblocks the accept loop; the
    loop then shuts the service down (cancelling outstanding jobs),
    which flushes the trace recorder, and emits the profiler report if
    profiling is enabled — so a [bds_serve] killed by SIGINT/SIGTERM
    never silently truncates its observability output. *)

type t

val create : ?config:Service.config -> path:string -> unit -> t
(** Bind and listen on the Unix socket at [path] (unlinking any stale
    socket file first) and start the backing {!Service}.
    @raise Unix.Unix_error if the bind fails. *)

val serve : t -> unit
(** Run the accept loop until {!stop}.  Returns after the service has
    fully shut down (every admitted job resolved, trace flushed) and the
    socket file is removed. *)

val stop : t -> unit
(** Request shutdown.  Async-signal-safe in the OCaml sense (runs from
    [Sys.signal] handlers); idempotent. *)

val stats_json : t -> string
(** The [STATS] payload: one-line JSON with the {!Service.summary}
    fields and the [jobs_*] telemetry counters. *)
