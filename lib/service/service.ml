(* The multi-tenant job scheduler (see service.mli and docs/SERVICE.md).

   Threading model.  The service runs entirely on sys-threads of the
   submitting domain plus the shared worker pool:

   - [runners] runner threads loop on the fair queue and drive one job
     each at a time: per-attempt chaos hook, submission of the attempt
     body to the pool via [Pool.async_external] (never the deque of a
     worker whose domain we might share), a condition-variable wait for
     the promise (woken by [Pool.on_resolve] from the fulfilling
     domain), then outcome classification and the retry loop;
   - one monitor thread ticks every [poll_cadence_s]: it resolves
     queued jobs whose deadline passed, cancels the scope of running
     jobs past deadline, and broadcasts every running job's condition
     variable so runner waits re-check liveness (a poisoned pool whose
     promise will never resolve) at the cadence.

   Exactly-once outcomes.  All terminal transitions funnel through
   [complete], which assigns the outcome under the job's mutex at most
   once; every later call is a benign no-op (the monitor, an explicit
   cancel, and the runner legitimately race).  The telemetry counter
   for the outcome is bumped iff the assignment won, so the counters
   are an exact per-outcome partition of admitted jobs. *)

module Pool = Bds_runtime.Pool
module Runtime = Bds_runtime.Runtime
module Cancel = Bds_runtime.Cancel
module Chaos = Bds_runtime.Chaos
module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile
module Trace = Bds_runtime.Trace
module Metrics = Bds_runtime.Metrics

let log_src = Logs.Src.create "bds.service" ~doc:"Pipeline job service"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Labeled metric families (docs/OBSERVABILITY.md "Service
   observability").  Registered once per process; every service
   instance feeds the same families, mirroring the Telemetry counters'
   process-global contract. *)

let m_jobs =
  Metrics.family ~kind:Metrics.Counter
    ~help:"Terminal job outcomes by tenant, kind and outcome." "bds_jobs"

let m_rejected =
  Metrics.family ~kind:Metrics.Counter
    ~help:"Submissions refused at admission, by reason." "bds_jobs_rejected"

let m_retries =
  Metrics.family ~kind:Metrics.Counter
    ~help:"Retry attempts scheduled, by tenant and kind." "bds_job_retries"

let m_latency =
  Metrics.family ~kind:Metrics.Histogram
    ~help:"Submit-to-outcome wall latency, by outcome."
    "bds_job_latency_seconds"

let m_queue_wait =
  Metrics.family ~kind:Metrics.Histogram
    ~help:"Fair-queue wait before the first attempt, by tenant."
    "bds_job_queue_wait_seconds"

let m_run =
  Metrics.family ~kind:Metrics.Histogram
    ~help:"Summed attempt execution time per job." "bds_job_run_seconds"

let m_backoff =
  Metrics.family ~kind:Metrics.Histogram
    ~help:"Summed retry-backoff (and injected pre-attempt delay) per job."
    "bds_job_backoff_wait_seconds"

let m_queue_depth =
  Metrics.family ~kind:Metrics.Gauge
    ~help:"Jobs currently queued, by tenant." "bds_queue_depth"

let m_queue_depth_max =
  Metrics.family ~kind:Metrics.Gauge
    ~help:"High-water queue depth since start, by tenant."
    "bds_queue_depth_max"

let m_outstanding =
  Metrics.family ~kind:Metrics.Gauge
    ~help:"Jobs admitted but not yet resolved." "bds_outstanding_jobs"

let m_breaker =
  Metrics.family ~kind:Metrics.Gauge
    ~help:"Circuit breaker: 0 closed, 1 half-open, 2 open."
    "bds_breaker_state"

type config = {
  capacity : int;
  runners : int;
  poll_cadence_s : float;
  max_retries : int;
  backoff : Backoff.t;
  breaker : Breaker.config;
}

let default_config =
  {
    capacity = 64;
    runners = 4;
    poll_cadence_s = 0.002;
    max_retries = 2;
    backoff = Backoff.default;
    breaker = Breaker.default_config;
  }

type job_state = Queued | Running | Done

type job = {
  jid : int;
  request : Job.request;
  work : attempt:int -> string;
  deadline_at : float option;  (* absolute, Unix.gettimeofday clock *)
  max_retries : int;
  token : Cancel.t;  (* job scope: deadline / explicit cancel *)
  jm : Mutex.t;
  jcv : Condition.t;  (* completion + attempt-resolution broadcasts *)
  mutable state : job_state;
  mutable outcome : Job.outcome option;
  mutable completions : int;  (* times an outcome was assigned (<= 1) *)
  mutable deadline_hit : bool;  (* set (under [jm]) before cancelling *)
  mutable on_complete : (Job.outcome -> unit) list;
  mutable retries_used : int;
  (* Latency-breakdown accounting, written by the single runner that
     owns the job (reads at completion may race a mid-attempt write;
     single-word ints never tear, so a stat is at worst one attempt
     stale — same discipline as Telemetry). *)
  submitted_at : float;
  mutable dequeued : bool;
  mutable queue_wait_ns : int;
  mutable run_ns : int;
  mutable backoff_ns : int;
}

type ticket = job

type t = {
  cfg : config;
  queue : job Fair_queue.t;
  registry : (int, job) Hashtbl.t;  (* outstanding jobs, keyed by id *)
  reg_m : Mutex.t;
  outstanding : int Atomic.t;
  next_id : int Atomic.t;
  breaker : Breaker.t;
  stopping : bool Atomic.t;  (* admission closed *)
  monitor_stop : bool Atomic.t;
  mutable pool : Pool.t;  (* current shared pool (healed on poisoning) *)
  pool_m : Mutex.t;
  mutable runner_threads : Thread.t list;
  mutable monitor_thread : Thread.t option;
  (* Latency breakdown aggregates over resolved jobs (ns). *)
  bd_jobs : int Atomic.t;
  bd_wall_ns : int Atomic.t;
  bd_queue_ns : int Atomic.t;
  bd_run_ns : int Atomic.t;
  bd_backoff_ns : int Atomic.t;
  (* Degradation observers (flight-recorder dump hook). *)
  on_degrade : (string -> unit) list Atomic.t;
}

let config t = t.cfg

let id (j : ticket) = j.jid

let now () = Unix.gettimeofday ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let registry_snapshot t =
  locked t.reg_m (fun () -> Hashtbl.fold (fun _ j acc -> j :: acc) t.registry [])

(* ------------------------------------------------------------------ *)
(* Exactly-once completion                                             *)

let count_outcome = function
  | Job.Completed _ -> Telemetry.incr_jobs_completed ()
  | Job.Failed _ -> Telemetry.incr_jobs_failed ()
  | Job.Cancelled -> Telemetry.incr_jobs_cancelled ()
  | Job.Deadline_exceeded -> Telemetry.incr_jobs_deadline_exceeded ()

(* Assign [outcome] if the job is still unresolved; true iff this call
   won the assignment.  The loser of a (monitor | cancel | runner) race
   is a silent no-op — the first terminal outcome sticks. *)
let complete t job outcome =
  let won =
    locked job.jm (fun () ->
        match job.outcome with
        | Some _ -> None
        | None ->
          job.outcome <- Some outcome;
          job.completions <- job.completions + 1;
          job.state <- Done;
          Condition.broadcast job.jcv;
          let cbs = job.on_complete in
          job.on_complete <- [];
          Some cbs)
  in
  match won with
  | None -> false
  | Some cbs ->
    count_outcome outcome;
    locked t.reg_m (fun () -> Hashtbl.remove t.registry job.jid);
    Atomic.decr t.outstanding;
    (* Winner-only observability: the flow end closes the job's causal
       chain, and the latency breakdown partitions its wall time.  A job
       resolved without ever being dequeued (monitor deadline, cancel,
       shutdown) spent its whole life queued — attribute it so. *)
    let wall_ns =
      max 0 (int_of_float ((now () -. job.submitted_at) *. 1e9))
    in
    if not job.dequeued then job.queue_wait_ns <- wall_ns;
    let label = Job.outcome_label outcome in
    let tenant = job.request.Job.tenant and kind = job.request.Job.kind in
    Metrics.incr m_jobs
      ~labels:[ ("tenant", tenant); ("kind", kind); ("outcome", label) ];
    Metrics.observe_ns m_latency ~labels:[ ("outcome", label) ] wall_ns;
    Metrics.observe_ns m_queue_wait ~labels:[ ("tenant", tenant) ]
      job.queue_wait_ns;
    if job.run_ns > 0 then Metrics.observe_ns m_run ~labels:[] job.run_ns;
    if job.backoff_ns > 0 then
      Metrics.observe_ns m_backoff ~labels:[] job.backoff_ns;
    Atomic.incr t.bd_jobs;
    ignore (Atomic.fetch_and_add t.bd_wall_ns wall_ns : int);
    ignore (Atomic.fetch_and_add t.bd_queue_ns job.queue_wait_ns : int);
    ignore (Atomic.fetch_and_add t.bd_run_ns job.run_ns : int);
    ignore (Atomic.fetch_and_add t.bd_backoff_ns job.backoff_ns : int);
    Trace.emit_flow `End ~id:job.jid
      ~args_json:(Printf.sprintf {|"outcome":"%s"|} (Trace.escape_json label))
      "job";
    Log.debug (fun m ->
        m "job #%d (%s/%s) -> %s" job.jid job.request.Job.tenant
          job.request.Job.kind (Job.pp_outcome outcome));
    List.iter
      (fun f -> try f outcome with _ -> ())
      (List.rev cbs);
    true

(* ------------------------------------------------------------------ *)
(* Pool liveness and healing                                           *)

let current_pool t = locked t.pool_m (fun () -> t.pool)

(* Replace a poisoned/torn-down pool so the service keeps serving: the
   global pool is swapped exactly once per dead pool (double-checked
   under [pool_m]); later callers see the fresh one. *)
let heal_pool t dead =
  let healed =
    locked t.pool_m (fun () ->
        if t.pool == dead then begin
          let diag =
            match Pool.health dead with
            | `Poisoned d -> d
            | `Shutdown -> "shut down"
            | `Ok -> "ok?"
          in
          Log.warn (fun m ->
              m "backing pool is dead (%s); swapping in a fresh pool" diag);
          (try Runtime.shutdown () with _ -> ());
          t.pool <- Runtime.get_pool ();
          Some diag
        end
        else None)
  in
  (* Degradation observers run outside [pool_m]: a flight-recorder dump
     must not hold the pool lock. *)
  match healed with
  | None -> ()
  | Some diag ->
    List.iter
      (fun f -> try f diag with _ -> ())
      (Atomic.get t.on_degrade)

(* ------------------------------------------------------------------ *)
(* Waiting                                                             *)

let peek (j : ticket) = locked j.jm (fun () -> j.outcome)

let wait (j : ticket) =
  locked j.jm (fun () ->
      while j.outcome = None do
        Condition.wait j.jcv j.jm
      done;
      Option.get j.outcome)

let wait_timeout (j : ticket) timeout_s =
  let stop_at = now () +. timeout_s in
  let rec go () =
    match peek j with
    | Some _ as r -> r
    | None ->
      if now () >= stop_at then None
      else begin
        Thread.delay 0.001;
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Attempt execution                                                   *)

(* Sleep up to [d] seconds in cadence slices, returning early when the
   job resolves or its scope is cancelled (shutdown, deadline, explicit
   cancel) — a backoff pause must never outlive the job. *)
let interruptible_delay t job d =
  let stop_at = now () +. d in
  let rec go () =
    let remaining = stop_at -. now () in
    if
      remaining > 0.0
      && peek job = None
      && not (Cancel.is_cancelled job.token)
    then begin
      Thread.delay (Float.min t.cfg.poll_cadence_s remaining);
      go ()
    end
  in
  go ()

(* One attempt of [job] on the pool.  Returns the classification the
   retry loop acts on. *)
let run_attempt t job ~attempt attempt_tok =
  let pool = current_pool t in
  let body () =
    (* Per-job-kind profile attribution: all attempt work (leaves of
       nested Seq/Runtime scopes included) lands under "job:<kind>". *)
    Profile.with_op ("job:" ^ job.request.Job.kind) (fun () ->
        Cancel.with_ambient attempt_tok (fun () ->
            Cancel.check attempt_tok;
            job.work ~attempt))
  in
  match Pool.async_external pool body with
  | exception (Pool.Shutdown | Pool.Worker_crashed _) -> `Pool_dead pool
  | p ->
    if Pool.size pool <= 1 then
      (* Degenerate pool: no spawned worker domains (single-core host,
         or a heal under BDS_NUM_DOMAINS=1), so nothing will ever pop
         the overflow queue on its own.  [Pool.await] from outside the
         pool *helps* — it drains the overflow and executes the attempt
         on this runner thread — and fails fast with a typed exception
         once the pool can no longer resolve the promise. *)
      (match Pool.await pool p with
      | result -> `Ok result
      | exception (Pool.Shutdown | Pool.Worker_crashed _) -> `Pool_dead pool
      | exception e -> `Exn e)
    else begin
      (* Worker domains exist: block cheaply on the job's condvar.
         Wake our wait from the fulfilling domain; the monitor also
         broadcasts [jcv] every cadence so the liveness re-check below
         runs even if the promise never resolves. *)
      Pool.on_resolve p (fun () ->
          Mutex.lock job.jm;
          Condition.broadcast job.jcv;
          Mutex.unlock job.jm);
      let pool_stuck () =
        match Pool.health pool with
        | `Ok -> false
        | `Shutdown | `Poisoned _ -> true
      in
      locked job.jm (fun () ->
          while
            Pool.peek p = None
            && (not (pool_stuck ()))
            && not (Cancel.is_cancelled job.token)
          do
            Condition.wait job.jcv job.jm
          done);
      match Pool.peek p with
      | Some (Ok result) -> `Ok result
      | Some (Error (e, _)) -> `Exn e
      | None ->
        if pool_stuck () then
          (* Pool died with the attempt stranded (its fulfiller crashed
             or the fiber was leaked by poisoning): fail fast rather
             than wait on a promise that may never resolve. *)
          `Pool_dead pool
        else
          (* Job scope cancelled while the attempt sat unexecuted in the
             pool's overflow queue (all worker domains busy): abandon
             the attempt rather than wait for a slot — if it does run
             later, its leading [Cancel.check] makes it a cheap no-op
             fulfilling a promise nobody reads. *)
          `Exn Cancel.Cancelled
    end

(* Did the *job* scope get cancelled (deadline / explicit / shutdown),
   as opposed to just the attempt scope (chaos)? *)
let job_scope_cancelled job = Cancel.is_cancelled job.token

let terminal_for_cancelled job =
  if locked job.jm (fun () -> job.deadline_hit) then Job.Deadline_exceeded
  else Job.Cancelled

(* Classify an attempt exception: [`Terminal outcome] or
   [`Retry reason].  The failure matrix is docs/SERVICE.md. *)
let classify job attempt_tok = function
  | Cancel.Cancelled -> (
    if job_scope_cancelled job then `Terminal (terminal_for_cancelled job)
    else
      (* Attempt-scope-only cancellation: a chaos job fault.  The
         injected exception is recorded in the attempt token. *)
      match Cancel.reason attempt_tok with
      | Some (Chaos.Injected_fault n, _) ->
        `Retry (Printf.sprintf "chaos job-cancel #%d" n)
      | Some (e, _) -> `Retry (Printexc.to_string e)
      | None -> `Retry "attempt cancelled")
  | Chaos.Injected_fault n -> `Retry (Printf.sprintf "chaos fault #%d" n)
  | Job.Transient msg -> `Retry msg
  | e -> `Terminal (Job.Failed (Printexc.to_string e))

let handle_job t job =
  let rec attempt_loop attempt =
    (* Pre-attempt gate: the monitor or a cancel may have resolved the
       job while it sat queued or between attempts. *)
    let gate =
      locked job.jm (fun () ->
          if job.outcome <> None then `Already_done
          else if Cancel.is_cancelled job.token then `Job_cancelled
          else begin
            job.state <- Running;
            `Go
          end)
    in
    match gate with
    | `Already_done -> ()
    | `Job_cancelled -> ignore (complete t job (terminal_for_cancelled job))
    | `Go -> (
      let attempt_tok = Cancel.create ~parent:job.token () in
      (* Chaos job fault point: spurious attempt cancellation (feeds the
         retry path below) or a pre-start delay (pushes the job toward
         its deadline). *)
      (match Chaos.point_job () with
      | `None -> ()
      | `Cancel n ->
        Cancel.cancel_with attempt_tok (Chaos.Injected_fault n)
          (Printexc.get_callstack 0)
      | `Delay d ->
        (* Injected pre-attempt latency: neither queue nor run time, so
           it lands in the backoff-wait bucket of the breakdown. *)
        let t0 = Trace.now_us () in
        interruptible_delay t job d;
        let t1 = Trace.now_us () in
        job.backoff_ns <- job.backoff_ns + int_of_float ((t1 -. t0) *. 1e3);
        Trace.emit_span "chaos_delay" ~cat:"job"
          ~args_json:(Printf.sprintf {|"jid":%d|} job.jid) ~t0_us:t0 ~t1_us:t1);
      Trace.emit_flow `Step ~id:job.jid
        ~args_json:(Printf.sprintf {|"attempt":%d|} attempt)
        "job";
      let att_t0 = Trace.now_us () in
      let att_result = run_attempt t job ~attempt attempt_tok in
      let att_t1 = Trace.now_us () in
      job.run_ns <- job.run_ns + int_of_float ((att_t1 -. att_t0) *. 1e3);
      Trace.emit_span "attempt" ~cat:"job"
        ~args_json:(Printf.sprintf {|"jid":%d,"attempt":%d|} job.jid attempt)
        ~t0_us:att_t0 ~t1_us:att_t1;
      match att_result with
      | `Ok result ->
        Breaker.record t.breaker ~now:(now ()) ~ok:true;
        ignore (complete t job (Job.Completed result))
      | `Pool_dead pool ->
        (* Worker crash / teardown under us: fail fast with a typed
           error, then heal so the service keeps serving. *)
        let diag =
          match Pool.health pool with
          | `Poisoned d -> d
          | `Shutdown -> "pool shut down"
          | `Ok -> "pool unavailable"
        in
        ignore (complete t job (Job.Failed ("worker_crashed: " ^ diag)));
        heal_pool t pool
      | `Exn e -> (
        match classify job attempt_tok e with
        | `Terminal outcome -> ignore (complete t job outcome)
        | `Retry reason ->
          let tnow = now () in
          Breaker.record t.breaker ~now:tnow ~ok:false;
          if attempt > job.max_retries then
            ignore
              (complete t job
                 (Job.Failed
                    (Printf.sprintf "retries exhausted after %d attempts: %s"
                       attempt reason)))
          else if not (Breaker.allow_retry t.breaker ~now:tnow) then begin
            Telemetry.incr_jobs_retries_shed ();
            ignore
              (complete t job
                 (Job.Failed
                    (Printf.sprintf "retry shed: circuit breaker open (%s)"
                       reason)))
          end
          else begin
            let d = Backoff.delay t.cfg.backoff ~seed:job.jid ~attempt in
            (* Never sleep past the deadline: the retry would be dead on
               arrival anyway, and the monitor resolves the job at the
               deadline regardless. *)
            let d =
              match job.deadline_at with
              | Some at -> Float.min d (Float.max 0.0 (at -. now ()))
              | None -> d
            in
            let bo_t0 = Trace.now_us () in
            interruptible_delay t job d;
            let bo_t1 = Trace.now_us () in
            job.backoff_ns <-
              job.backoff_ns + int_of_float ((bo_t1 -. bo_t0) *. 1e3);
            Trace.emit_span "backoff_wait" ~cat:"job"
              ~args_json:
                (Printf.sprintf {|"jid":%d,"attempt":%d|} job.jid attempt)
              ~t0_us:bo_t0 ~t1_us:bo_t1;
            Telemetry.incr_jobs_retried ();
            Metrics.incr m_retries
              ~labels:
                [
                  ("tenant", job.request.Job.tenant);
                  ("kind", job.request.Job.kind);
                ];
            locked job.jm (fun () ->
                job.retries_used <- job.retries_used + 1;
                (* Back to the queue conceptually: the monitor treats
                   between-attempt jobs like queued ones. *)
                if job.state = Running then job.state <- Queued);
            attempt_loop (attempt + 1)
          end))
  in
  attempt_loop 1

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)

let rec runner_loop t =
  match Fair_queue.take t.queue with
  | None -> ()
  | Some (job, wait_s) ->
    (* Queue wait is measured where it happens — the fair queue stamped
       the enqueue; reconstruct the span from the wait it reports. *)
    job.dequeued <- true;
    job.queue_wait_ns <- int_of_float (wait_s *. 1e9);
    if Trace.enabled () then begin
      let t1 = Trace.now_us () in
      Trace.emit_span "queue_wait" ~cat:"job"
        ~args_json:
          (Printf.sprintf {|"jid":%d,"tenant":"%s"|} job.jid
             (Trace.escape_json job.request.Job.tenant))
        ~t0_us:(t1 -. (wait_s *. 1e6))
        ~t1_us:t1
    end;
    (try handle_job t job
     with e ->
       (* A scheduler-level bug must not kill the runner thread: resolve
          the job with a typed failure and keep serving. *)
       Log.err (fun m ->
           m "runner: unexpected exception handling job #%d: %s" job.jid
             (Printexc.to_string e));
       ignore (complete t job (Job.Failed ("internal: " ^ Printexc.to_string e))));
    runner_loop t

let monitor_tick t =
  let tnow = now () in
  List.iter
    (fun job ->
      let expired =
        match job.deadline_at with Some at -> tnow >= at | None -> false
      in
      let action =
        locked job.jm (fun () ->
            match job.outcome with
            | Some _ -> `Nothing
            | None ->
              (* Liveness: wake any runner blocked on this job's attempt
                 promise so it re-checks pool health and job-scope
                 cancellation at the cadence — in particular a runner
                 whose attempt sits unexecuted in the pool overflow must
                 observe a cancel even though no fulfiller will ever
                 broadcast for it. *)
              Condition.broadcast job.jcv;
              if expired then begin
                job.deadline_hit <- true;
                match job.state with
                | Queued -> `Complete_deadline
                | Running | Done -> `Cancel_scope
              end
              else `Nothing)
      in
      match action with
      | `Nothing -> ()
      | `Complete_deadline ->
        (* Queued past deadline: resolve directly — the job returns at
           deadline + one cadence even behind a long backlog. *)
        ignore (complete t job Job.Deadline_exceeded)
      | `Cancel_scope -> Cancel.cancel job.token)
    (registry_snapshot t)

let monitor_loop t =
  while not (Atomic.get t.monitor_stop) do
    monitor_tick t;
    Thread.delay t.cfg.poll_cadence_s
  done

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let create ?(config = default_config) () =
  if config.capacity < 1 then invalid_arg "Service.create: capacity < 1";
  if config.runners < 1 then invalid_arg "Service.create: runners < 1";
  if config.poll_cadence_s <= 0.0 then
    invalid_arg "Service.create: poll_cadence_s <= 0";
  let t =
    {
      cfg = config;
      queue = Fair_queue.create ();
      registry = Hashtbl.create 64;
      reg_m = Mutex.create ();
      outstanding = Atomic.make 0;
      next_id = Atomic.make 1;
      breaker = Breaker.create config.breaker;
      stopping = Atomic.make false;
      monitor_stop = Atomic.make false;
      pool = Runtime.get_pool ();
      pool_m = Mutex.create ();
      runner_threads = [];
      monitor_thread = None;
      bd_jobs = Atomic.make 0;
      bd_wall_ns = Atomic.make 0;
      bd_queue_ns = Atomic.make 0;
      bd_run_ns = Atomic.make 0;
      bd_backoff_ns = Atomic.make 0;
      on_degrade = Atomic.make [];
    }
  in
  t.runner_threads <-
    List.init config.runners (fun _ -> Thread.create runner_loop t);
  t.monitor_thread <- Some (Thread.create monitor_loop t);
  Log.debug (fun m ->
      m "service up: capacity=%d runners=%d cadence=%.1fms" config.capacity
        config.runners (config.poll_cadence_s *. 1000.));
  t

let reject_metric t req reason =
  ignore t;
  Metrics.incr m_rejected
    ~labels:
      [
        ("tenant", req.Job.tenant);
        ("kind", req.Job.kind);
        ("reason", reason);
      ]

let submit ?on_complete t req =
  if Atomic.get t.stopping then begin
    reject_metric t req (Job.reject_label Job.Shutting_down);
    Error (`Rejected Job.Shutting_down)
  end
  else
    match Workload.build req with
    | Error msg ->
      reject_metric t req "bad_request";
      Error (`Bad_request msg)
    | Ok work ->
      (* Admission control: CAS-claim an outstanding slot, or shed. *)
      let rec claim () =
        let cur = Atomic.get t.outstanding in
        if cur >= t.cfg.capacity then false
        else if Atomic.compare_and_set t.outstanding cur (cur + 1) then true
        else claim ()
      in
      if not (claim ()) then begin
        Telemetry.incr_jobs_shed ();
        reject_metric t req (Job.reject_label Job.Overloaded);
        Error (`Rejected Job.Overloaded)
      end
      else begin
        let jid = Atomic.fetch_and_add t.next_id 1 in
        let job =
          {
            jid;
            request = req;
            work;
            deadline_at =
              Option.map
                (fun ms -> now () +. (float_of_int ms /. 1000.))
                req.Job.deadline_ms;
            max_retries =
              (match req.Job.retries with
              | Some r -> max 0 r
              | None -> t.cfg.max_retries);
            token = Cancel.create ();
            jm = Mutex.create ();
            jcv = Condition.create ();
            state = Queued;
            outcome = None;
            completions = 0;
            deadline_hit = false;
            on_complete = (match on_complete with Some f -> [ f ] | None -> []);
            retries_used = 0;
            submitted_at = now ();
            dequeued = false;
            queue_wait_ns = 0;
            run_ns = 0;
            backoff_ns = 0;
          }
        in
        locked t.reg_m (fun () -> Hashtbl.replace t.registry jid job);
        Telemetry.incr_jobs_admitted ();
        (* Admission starts the job's causal flow; every later span of
           its life (queue_wait, attempts, backoff, outcome) links to
           this id. *)
        Trace.emit_flow `Start ~id:jid
          ~args_json:
            (Printf.sprintf {|"tenant":"%s","kind":"%s"|}
               (Trace.escape_json req.Job.tenant)
               (Trace.escape_json req.Job.kind))
          "job";
        if Fair_queue.push t.queue ~tenant:req.Job.tenant job then Ok job
        else begin
          (* Shutdown closed the queue between the stopping check and
             the push: the job was admitted, so it still gets its one
             terminal outcome. *)
          ignore (complete t job Job.Cancelled);
          Error (`Rejected Job.Shutting_down)
        end
      end

let cancel t (j : ticket) =
  let queued =
    locked j.jm (fun () -> j.outcome = None && j.state = Queued)
  in
  if queued then
    (* Resolve immediately; if a runner dequeued it in the meantime its
       pre-attempt gate sees the outcome and skips. *)
    ignore (complete t j Job.Cancelled);
  Cancel.cancel j.token

type summary = {
  sm_workers : int;
  sm_queue_depth : int;
  sm_outstanding : int;
  sm_breaker : string;
}

let summary t =
  {
    sm_workers = Pool.size (current_pool t);
    sm_queue_depth = Fair_queue.length t.queue;
    sm_outstanding = Atomic.get t.outstanding;
    sm_breaker = Breaker.state_label (Breaker.state t.breaker ~now:(now ()));
  }

type breakdown = {
  bk_jobs : int;
  bk_wall_ns : int;
  bk_queue_ns : int;
  bk_run_ns : int;
  bk_backoff_ns : int;
}

let latency_breakdown t =
  {
    bk_jobs = Atomic.get t.bd_jobs;
    bk_wall_ns = Atomic.get t.bd_wall_ns;
    bk_queue_ns = Atomic.get t.bd_queue_ns;
    bk_run_ns = Atomic.get t.bd_run_ns;
    bk_backoff_ns = Atomic.get t.bd_backoff_ns;
  }

(* Pull-style gauges: refreshed on demand (before a METRICS render)
   rather than by a collector thread, so a torn-down service never
   leaves a stale collector behind. *)
let collect_metrics t =
  List.iter
    (fun (tenant, depth, max_depth) ->
      Metrics.set m_queue_depth ~labels:[ ("tenant", tenant) ]
        (float_of_int depth);
      Metrics.set m_queue_depth_max ~labels:[ ("tenant", tenant) ]
        (float_of_int max_depth))
    (Fair_queue.depths t.queue);
  Metrics.set m_outstanding ~labels:[] (float_of_int (Atomic.get t.outstanding));
  let breaker_level =
    match Breaker.state_label (Breaker.state t.breaker ~now:(now ())) with
    | "closed" -> 0.0
    | "half_open" -> 1.0
    | _ -> 2.0
  in
  Metrics.set m_breaker ~labels:[] breaker_level

let on_degrade t f =
  let rec add () =
    let cur = Atomic.get t.on_degrade in
    if not (Atomic.compare_and_set t.on_degrade cur (f :: cur)) then add ()
  in
  add ()

let shutdown ?(drain = true) t =
  if not (Atomic.exchange t.stopping true) then begin
    Fair_queue.close t.queue;
    if not drain then
      List.iter (fun j -> Cancel.cancel j.token) (registry_snapshot t);
    (* Every admitted job reaches its terminal outcome before the
       threads are joined: runners chew the (possibly cancelled)
       backlog, the monitor keeps deadlines and liveness honest. *)
    while Atomic.get t.outstanding > 0 do
      Thread.delay t.cfg.poll_cadence_s
    done;
    List.iter Thread.join t.runner_threads;
    t.runner_threads <- [];
    Atomic.set t.monitor_stop true;
    Option.iter Thread.join t.monitor_thread;
    t.monitor_thread <- None;
    (* A traced service must never lose buffered spans to a shutdown
       that does not tear the pool down (satellite: flush on service
       shutdown, not just pool teardown / at_exit). *)
    Trace.flush ();
    Log.debug (fun m -> m "service stopped (drain=%b)" drain)
  end

module For_testing = struct
  let completions (j : ticket) = locked j.jm (fun () -> j.completions)

  let retries_used (j : ticket) = locked j.jm (fun () -> j.retries_used)
end
