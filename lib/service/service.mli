(** The multi-tenant pipeline-job service.

    Composes the runtime substrate into a long-running job layer:

    - {e admission control}: at most [capacity] jobs outstanding
      (queued + running); beyond that, {!submit} sheds load with a
      typed [Overloaded] rejection instead of queuing unboundedly;
    - {e fair scheduling}: admitted jobs wait in a per-tenant
      round-robin queue ({!Fair_queue}) and run on the shared global
      pool, at most [runners] concurrently;
    - {e deadlines}: each job owns a {!Bds_runtime.Cancel} scope; a
      monitor thread cancels it when the wall-clock deadline passes, so
      a deadline-exceeded job returns within deadline + one poll
      cadence (queued jobs are failed directly, running ones unwind at
      the next cancellation poll);
    - {e retry with backoff}: attempts killed by retryable faults
      ([Job.Transient], [Chaos.Injected_fault], chaos job-cancels) are
      re-run after an exponential-backoff-with-jitter delay
      ({!Backoff}), up to the retry budget;
    - {e circuit breaking}: when the recent attempt failure rate spikes,
      {!Breaker} opens and further retries are shed (the job fails fast
      with a typed error) until a cooldown probe succeeds;
    - {e graceful degradation}: a worker-domain crash fails in-flight
      jobs fast with a typed [Failed] outcome, and the service swaps in
      a fresh pool and keeps serving;
    - {e observability}: every admitted job resolves to exactly one
      terminal outcome, counted in {!Bds_runtime.Telemetry}
      ([jobs_completed] / [jobs_cancelled] / [jobs_deadline_exceeded] /
      [jobs_failed], plus [jobs_admitted], [jobs_retried], [jobs_shed],
      [jobs_retries_shed]) and attributed per job kind in
      {!Bds_runtime.Profile} under op ["job:<kind>"].

    The full semantics, including the failure matrix, are documented in
    docs/SERVICE.md. *)

type config = {
  capacity : int;
      (** admission bound: max jobs outstanding (queued + running) *)
  runners : int;  (** concurrent jobs (runner threads) *)
  poll_cadence_s : float;
      (** deadline/liveness monitor cadence, seconds *)
  max_retries : int;  (** default retry budget per job *)
  backoff : Backoff.t;
  breaker : Breaker.config;
}

val default_config : config
(** capacity 64, runners 4, 2ms cadence, 2 retries, {!Backoff.default},
    {!Breaker.default_config}. *)

type t

type ticket
(** Handle to one admitted job. *)

val create : ?config:config -> unit -> t
(** Start the service on the global runtime pool: spawns the runner
    threads and the deadline monitor. *)

val config : t -> config

val submit :
  ?on_complete:(Job.outcome -> unit) ->
  t ->
  Job.request ->
  (ticket, [ `Rejected of Job.reject | `Bad_request of string ]) result
(** Admit a job.  [`Rejected Overloaded] when the outstanding bound is
    reached (counted as [jobs_shed]), [`Rejected Shutting_down] after
    {!shutdown} began, [`Bad_request] on an unknown kind or malformed
    parameter (never admitted, no counter).  [on_complete] runs exactly
    once, on the thread that resolves the job. *)

val id : ticket -> int

val peek : ticket -> Job.outcome option
(** The terminal outcome, if already resolved.  Never blocks. *)

val wait : ticket -> Job.outcome
(** Block until the job resolves. *)

val wait_timeout : ticket -> float -> Job.outcome option
(** [wait_timeout tk s]: like {!wait} but gives up after [s] seconds
    (polling at millisecond granularity).  Bounded-time test harness
    primitive — production callers use {!wait} or [on_complete]. *)

val cancel : t -> ticket -> unit
(** Cancel the job: resolved [Cancelled] immediately if still queued,
    else its scope token is cancelled and the running attempt unwinds
    at its next cancellation poll.  No-op on a resolved job. *)

(** {2 Introspection} *)

type summary = {
  sm_workers : int;  (** pool workers backing the service *)
  sm_queue_depth : int;  (** admitted jobs waiting to start *)
  sm_outstanding : int;  (** queued + running jobs *)
  sm_breaker : string;  (** [closed] / [open] / [half_open] *)
}

val summary : t -> summary

(** Cumulative latency breakdown over resolved jobs (nanoseconds):
    wall time (submit to outcome) alongside its three accounted
    components — fair-queue wait, summed attempt run time, and
    retry-backoff / injected-delay waits.  A job resolved without ever
    being dequeued counts its whole wall time as queue wait.  The
    residue (wall minus components) is scheduling overhead: condvar
    wakeups, monitor cadence. *)
type breakdown = {
  bk_jobs : int;  (** jobs aggregated *)
  bk_wall_ns : int;
  bk_queue_ns : int;
  bk_run_ns : int;
  bk_backoff_ns : int;
}

val latency_breakdown : t -> breakdown

val collect_metrics : t -> unit
(** Refresh this service's pull-style gauges ([bds_queue_depth],
    [bds_queue_depth_max], [bds_outstanding_jobs], [bds_breaker_state])
    in {!Bds_runtime.Metrics}.  Call before rendering an exposition;
    counters and histograms need no collection (they are pushed at the
    lifecycle points). *)

val on_degrade : t -> (string -> unit) -> unit
(** Register an observer called (with the pool's diagnosis) each time
    the service swaps in a fresh pool after a crash/teardown — the
    server's flight recorder dumps on this signal.  Observers run on
    the runner thread that healed the pool; keep them quick. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop the service: admission closes ([Shutting_down]), then either
    every queued job runs to its outcome ([drain], the default) or all
    outstanding jobs are cancelled ([~drain:false], resolving
    [Cancelled]).  Blocks until every admitted job has its terminal
    outcome, joins the runner and monitor threads, and flushes the
    trace recorder so a traced service never loses buffered spans.
    Idempotent; does not tear down the shared pool. *)

(** Test backdoors — not part of the public contract. *)
module For_testing : sig
  val completions : ticket -> int
  (** Times a terminal outcome was actually assigned (the exactly-once
      invariant says this is 1 for every resolved job). *)

  val retries_used : ticket -> int
end
