(* Workload catalogue (see workload.mli). *)

module Seq = Bds.Seq
module Cancel = Bds_runtime.Cancel

let kinds = [ "sum"; "scan"; "filter"; "busy"; "fail"; "boom"; "echo" ]

let int_param params key ~default =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some s -> (
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | _ -> Error (Printf.sprintf "%s: not a non-negative integer: %S" key s))

(* Busy-wait for [ms] milliseconds, polling the ambient cancellation
   token (the job's attempt scope) often enough that a deadline or an
   explicit cancel lands within a poll cadence, not after the loop. *)
let busy_loop ms =
  let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
  while Unix.gettimeofday () < deadline do
    Cancel.poll ();
    for _ = 1 to 500 do
      Domain.cpu_relax ()
    done
  done;
  Printf.sprintf "busy %dms" ms

let sum_pipeline n =
  let input = Seq.iota n in
  let mapped = Seq.map (fun x -> (x * 7) land 1023) input in
  string_of_int (Seq.reduce ( + ) 0 mapped)

let scan_pipeline n =
  let scanned = Seq.scan_incl ( + ) 0 (Seq.iota n) in
  string_of_int (Seq.reduce ( + ) 0 scanned)

let filter_pipeline n =
  let kept = Seq.filter (fun x -> x land 1 = 0) (Seq.iota n) in
  string_of_int (Seq.reduce ( + ) 0 kept)

let build (r : Job.request) =
  let ( let* ) = Result.bind in
  match r.Job.kind with
  | "sum" ->
    let* n = int_param r.Job.params "n" ~default:100_000 in
    Ok (fun ~attempt:_ -> sum_pipeline n)
  | "scan" ->
    let* n = int_param r.Job.params "n" ~default:100_000 in
    Ok (fun ~attempt:_ -> scan_pipeline n)
  | "filter" ->
    let* n = int_param r.Job.params "n" ~default:100_000 in
    Ok (fun ~attempt:_ -> filter_pipeline n)
  | "busy" ->
    let* ms = int_param r.Job.params "ms" ~default:50 in
    Ok (fun ~attempt:_ -> busy_loop ms)
  | "fail" ->
    let* k = int_param r.Job.params "k" ~default:1 in
    let* n = int_param r.Job.params "n" ~default:1_000 in
    Ok
      (fun ~attempt ->
        if attempt <= k then
          raise (Job.Transient (Printf.sprintf "injected failure %d/%d" attempt k))
        else sum_pipeline n)
  | "boom" -> Ok (fun ~attempt:_ -> failwith "boom")
  | "echo" ->
    let msg =
      match List.assoc_opt "msg" r.Job.params with Some m -> m | None -> "pong"
    in
    Ok (fun ~attempt:_ -> msg)
  | k ->
    Error
      (Printf.sprintf "unknown kind %S (known: %s)" k (String.concat ", " kinds))
