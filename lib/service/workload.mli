(** The service's workload catalogue: mapping a {!Job.request} to an
    executable pipeline body.

    A body is [attempt:int -> string]: it runs on a pool worker under
    the job's cancellation scope (so [Seq] pipelines inherit per-job
    cancellation through the ambient token) and returns the rendered
    result.  [attempt] is 1-based and lets deterministic fault
    workloads ([fail]) misbehave on early attempts only.

    Kinds (parameters in brackets, with defaults):
    - [sum  [n=100000]] — [reduce (+) (map ( *7 mod) (iota n))]
    - [scan [n=100000]] — [scan_incl] then [reduce]
    - [filter [n=100000]] — [filter even] then [reduce] (trickle path)
    - [busy [ms=50]] — cancellation-polled busy loop of [ms]
      milliseconds (deadline / cancel fodder)
    - [fail [k=1] [n=1000]] — raises {!Job.Transient} on the first [k]
      attempts, then behaves like [sum n] (deterministic retry fodder)
    - [boom] — always raises (non-retryable terminal failure)
    - [echo [msg=pong]] — returns [msg] immediately *)

val build : Job.request -> (attempt:int -> string, string) result
(** [Error msg] on an unknown kind or malformed parameter — callers
    surface it as a typed [bad_request] before admission. *)

val kinds : string list
(** Known workload names, for usage messages. *)
