(* Stream-of-blocks sequences — the *prior* fusion technique of §2.1,
   implemented for the comparison in §6.5 (Figure 16).

   A sequence is a stream whose elements are eager blocks: requesting the
   next "element" instantiates a whole block.  Parallelism is exploited
   *within* each block only; blocks are visited sequentially, so every
   block boundary is a synchronisation point.  This is the "inside-out"
   counterpart of block-delayed sequences (blocks of streams), and
   performs poorly for coarse-grained multicore parallelism.

   filter is supported (blocks become variable-length, so the total
   length is unknown until the stream is driven); flatten is not — as the
   paper notes, there is no way to block the output index space without
   first driving the whole stream.

   Granularity audit: Sob deliberately does NOT consult the unified
   granularity layer (Bds_runtime.Grain).  Its [~block_size] argument is
   the independent variable of the Figure 16 comparison, so callers pin
   it explicitly; within-block parallel loops still inherit their leaf
   grain from the runtime as usual. *)

module Parray = Bds_parray.Parray
module Runtime = Bds_runtime.Runtime

type 'a t = {
  nblocks : int;
  length : int option;  (** [None] after a filter, until driven *)
  (* [start ()] returns the trickle function producing the [nblocks]
     successive eager blocks. *)
  start : unit -> unit -> 'a array;
}

let num_blocks s = s.nblocks

let length s = s.length

(* Build from an index function; each block materialised by a parallel
   tabulate when requested. *)
let tabulate ~block_size n f =
  if block_size < 1 then invalid_arg "Sob.tabulate";
  {
    nblocks = (if n = 0 then 0 else (n + block_size - 1) / block_size);
    length = Some n;
    start =
      (fun () ->
        let next_lo = ref 0 in
        fun () ->
          let lo = !next_lo in
          let len = min block_size (n - lo) in
          next_lo := lo + len;
          Parray.tabulate len (fun k -> f (lo + k)));
  }

let of_array ~block_size a = tabulate ~block_size (Array.length a) (Array.get a)

(* Parallel map within each block. *)
let map g s =
  {
    s with
    start =
      (fun () ->
        let next = s.start () in
        fun () -> Parray.map g (next ()));
  }

(* Indexed map: the absolute base offset of each block advances
   sequentially with the block cursor; indexing within a block is safe to
   parallelise. *)
let mapi g s =
  {
    s with
    start =
      (fun () ->
        let next = s.start () in
        let base = ref 0 in
        fun () ->
          let b = next () in
          let lo = !base in
          base := lo + Array.length b;
          Parray.mapi (fun k v -> g (lo + k) v) b);
  }

(* Exclusive scan: parallel scan within each block, sequential carry
   across blocks. *)
let scan f z s =
  {
    s with
    start =
      (fun () ->
        let next = s.start () in
        let carry = ref z in
        fun () ->
          let b = next () in
          (* [total] already folds the incoming carry in. *)
          let prefixes, total = Parray.scan f !carry b in
          carry := total;
          prefixes);
  }

(* Parallel filter within each block: blocks become variable-length. *)
let filter p s =
  {
    s with
    length = None;
    start =
      (fun () ->
        let next = s.start () in
        fun () -> Parray.filter p (next ()));
  }

(* Reduce: parallel reduce within each block, sequential across blocks.
   Drives the whole stream. *)
let reduce f z s =
  let next = s.start () in
  let acc = ref z in
  for _ = 1 to s.nblocks do
    (* The running accumulator is the seed, combined exactly once. *)
    acc := Parray.reduce f !acc (next ())
  done;
  !acc

(* Drive the stream and concatenate the blocks. *)
let to_array s =
  match s.length with
  | Some n when n = 0 -> [||]
  | Some n ->
    let next = s.start () in
    let first = next () in
    (* Size-preserving operations keep block shapes, so with [n > 0] the
       first block is never empty. *)
    assert (Array.length first > 0);
    begin
      let out = Array.make n first.(0) in
      Array.blit first 0 out 0 (Array.length first);
      let pos = ref (Array.length first) in
      for _ = 2 to s.nblocks do
        let b = next () in
        Array.blit b 0 out !pos (Array.length b);
        pos := !pos + Array.length b
      done;
      out
    end
  | None ->
    (* Unknown length (post-filter): collect then concatenate. *)
    let next = s.start () in
    let blocks = Array.init s.nblocks (fun _ -> next ()) in
    Array.concat (Array.to_list blocks)
