(** Stream-of-blocks sequences — the {e prior} fusion technique of §2.1,
    implemented for the §6.5 comparison (Figure 16).

    A sequence is a stream of eager fixed-size blocks: requesting the next
    "element" materialises a whole block.  Parallelism is exploited only
    {e within} a block; blocks are visited sequentially, so every block
    boundary is a synchronisation point.  Block-delayed sequences
    ({!Bds.Seq}) are the "inside-out" counterpart (blocks of streams) and
    avoid that synchronisation. *)

type 'a t

(** [None] after a {!filter} (the surviving count is unknown until the
    stream is driven). *)
val length : 'a t -> int option

val num_blocks : 'a t -> int

(** [tabulate ~block_size n f]: blocks are built on demand by a parallel
    tabulate. Raises on non-positive [block_size]. *)
val tabulate : block_size:int -> int -> (int -> 'a) -> 'a t

val of_array : block_size:int -> 'a array -> 'a t

(** Parallel map within each block; O(1) now. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** Indexed map (absolute indices); O(1) now. *)
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t

(** Exclusive scan: parallel scan within each block, carry threaded
    sequentially across blocks. [z] is combined exactly once. *)
val scan : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a t

(** Parallel filter within each block (blocks become variable-length).
    flatten, by contrast, is impossible for stream-of-blocks (§2.1). *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** Drives the whole stream: parallel reduce within blocks, sequential
    accumulation across them. *)
val reduce : ('a -> 'a -> 'a) -> 'a -> 'a t -> 'a

(** Drives the whole stream into one array. *)
val to_array : 'a t -> 'a array
