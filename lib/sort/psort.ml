(* Parallel stable merge sort with parallel merging.

   The recursion alternates between the input array and a scratch buffer
   (ping-pong) so each level copies once.  Merging splits on the median of
   the larger run and binary-searches its counterpart in the smaller run;
   tie-breaking in the binary searches keeps the sort stable (equal
   elements from the left run always precede those from the right run).

   This is the ParlayLib-style sorting substrate used by the extension
   applications (inverted index); the paper's own kernels do not sort. *)

module Runtime = Bds_runtime.Runtime
module Grain = Bds_runtime.Grain
module Profile = Bds_runtime.Profile

(* Sequential cutoff for both the sort recursion and the merge, from the
   unified granularity layer (ablatable via [Grain.set_sort_cutoff]); an
   explicit [?grain] argument still overrides it per call. *)
let default_grain () = Grain.sort_cutoff ()

(* First index in [lo, hi) of [a] whose element is >= pivot (lower bound)
   or > pivot (upper bound), under [cmp]. *)
let search ~upper cmp a lo hi pivot =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      let c = cmp a.(mid) pivot in
      if c < 0 || (upper && c = 0) then go (mid + 1) hi else go lo mid
    end
  in
  go lo hi

let seq_merge cmp src alo ahi blo bhi dst dlo =
  let i = ref alo and j = ref blo and k = ref dlo in
  while !i < ahi && !j < bhi do
    (* Stability: ties taken from the left run. *)
    if cmp src.(!i) src.(!j) <= 0 then begin
      dst.(!k) <- src.(!i);
      incr i
    end
    else begin
      dst.(!k) <- src.(!j);
      incr j
    end;
    incr k
  done;
  if !i < ahi then Array.blit src !i dst !k (ahi - !i)
  else Array.blit src !j dst !k (bhi - !j)

(* Merge the sorted runs src[alo,ahi) and src[blo,bhi) into dst at dlo,
   in parallel by divide-and-conquer on the larger run.  [prof] is the
   sort op's profile region, threaded through the recursion so sequential
   base cases on any worker domain record as leaves of that op. *)
let rec par_merge cmp grain prof src alo ahi blo bhi dst dlo =
  let la = ahi - alo and lb = bhi - blo in
  if la + lb <= grain then
    Profile.leaf prof (fun () -> seq_merge cmp src alo ahi blo bhi dst dlo)
  else if la >= lb then begin
    let amid = (alo + ahi) / 2 in
    let pivot = src.(amid) in
    (* Right-run ties of the pivot go right, after the pivot. *)
    let bmid = search ~upper:false cmp src blo bhi pivot in
    let dmid = dlo + (amid - alo) + (bmid - blo) in
    let (), () =
      Runtime.par
        (fun () -> par_merge cmp grain prof src alo amid blo bmid dst dlo)
        (fun () -> par_merge cmp grain prof src amid ahi bmid bhi dst dmid)
    in
    ()
  end
  else begin
    let bmid = (blo + bhi) / 2 in
    let pivot = src.(bmid) in
    (* Left-run ties of the pivot go left, before the pivot. *)
    let amid = search ~upper:true cmp src alo ahi pivot in
    let dmid = dlo + (amid - alo) + (bmid - blo) in
    let (), () =
      Runtime.par
        (fun () -> par_merge cmp grain prof src alo amid blo bmid dst dlo)
        (fun () -> par_merge cmp grain prof src amid ahi bmid bhi dst dmid)
    in
    ()
  end

(* Sort src[lo, hi); the sorted run ends up in dst[lo, hi) when [into_dst],
   else back in src[lo, hi). *)
let rec sort_range cmp grain prof src dst lo hi into_dst =
  let n = hi - lo in
  if n <= grain then
    Profile.leaf prof (fun () ->
        let tmp = Array.sub src lo n in
        Array.stable_sort cmp tmp;
        Array.blit tmp 0 (if into_dst then dst else src) lo n)
  else begin
    let mid = (lo + hi) / 2 in
    let (), () =
      Runtime.par
        (fun () -> sort_range cmp grain prof src dst lo mid (not into_dst))
        (fun () -> sort_range cmp grain prof src dst mid hi (not into_dst))
    in
    (* Halves are sorted in the *other* buffer; merge them into ours. *)
    let from, into = if into_dst then (src, dst) else (dst, src) in
    par_merge cmp grain prof from lo mid mid hi into lo
  end

let sort_in_place ?grain cmp a =
  let n = Array.length a in
  if n > 1 then
    Profile.with_op "sort" (fun () ->
        let grain =
          max 16 (match grain with Some g -> g | None -> default_grain ())
        in
        let scratch = Array.copy a in
        (* One region for the whole fork-join recursion: the span
           estimate degrades to "serial glue + longest base case" (the
           merge chain along the critical path is not modelled), which
           still separates a starved sort from a balanced one. *)
        Profile.with_region (fun prof ->
            Runtime.run (fun () -> sort_range cmp grain prof a scratch 0 n false)))

let sort ?grain cmp a =
  let out = Array.copy a in
  sort_in_place ?grain cmp out;
  out

(* Merge two independently sorted arrays. *)
let merge cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then Array.copy b
  else if lb = 0 then Array.copy a
  else
    Profile.with_op "sort" (fun () ->
        let src = Array.append a b in
        let dst = Array.make (la + lb) a.(0) in
        let grain = max 16 (default_grain ()) in
        Profile.with_region (fun prof ->
            Runtime.run (fun () ->
                par_merge cmp grain prof src 0 la la (la + lb) dst 0));
        dst)

(* ------------------------------------------------------------------ *)
(* Unboxed float sort (the float lane's sorting substrate).

   The generic sort above compares through a polymorphic [cmp] closure,
   which boxes both floats on every comparison and reads elements
   through polymorphic accessors.  The float variant below is fully
   monomorphic over [float array] (flat unboxed storage), compares with
   the primitive [<=], and replaces the divide-and-conquer merge with a
   {e cache-blocked merge-path} merge: the output is cut into
   fixed-size tiles ([Grain.merge_tile], default 4096 — sized to stay
   cache-resident), each tile locates its input split with one binary
   search along the merge path, and then writes its slice of the output
   in a single sequential pass.  Tiles are independent, so they run as
   a flat [parallel_for] — span O(log n) per merge level instead of the
   generic merge's recursive splitting, and every memory access within
   a tile is sequential (streaming loads from two runs, streaming
   stores to one output range).

   Ordering uses the primitive [<=] on floats: inputs containing NaN
   have no total order under [<=], and the result is unspecified for
   them (memory-safe, but not sorted).  [-0.] and [0.] compare equal
   and keep their relative order (the merges and the insertion-sort
   base are stable, though stability is unobservable for floats). *)

let insertion_sort_floats (a : float array) lo hi =
  for i = lo + 1 to hi - 1 do
    let v = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > v do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) v
  done

let seq_merge_floats (src : float array) alo ahi blo bhi (dst : float array)
    dlo =
  let i = ref alo and j = ref blo and k = ref dlo in
  while !i < ahi && !j < bhi do
    let x = Array.unsafe_get src !i and y = Array.unsafe_get src !j in
    (* Stability: ties taken from the left run. *)
    if x <= y then begin
      Array.unsafe_set dst !k x;
      incr i
    end
    else begin
      Array.unsafe_set dst !k y;
      incr j
    end;
    incr k
  done;
  while !i < ahi do
    Array.unsafe_set dst !k (Array.unsafe_get src !i);
    incr i;
    incr k
  done;
  while !j < bhi do
    Array.unsafe_set dst !k (Array.unsafe_get src !j);
    incr j;
    incr k
  done

(* Merge-path split: for sorted runs A = src[alo, alo+la) and
   B = src[blo, blo+lb), return the unique [i] such that the first [k]
   elements of the stable merge are A[..i) and B[..k-i).  The stable
   split satisfies (i = 0 or j = lb or A[i-1] <= B[j]) and (j = 0 or
   i = la or B[j-1] < A[i]) with j = k - i; the second predicate is
   monotone in [i], so a binary search for its smallest witness finds
   the split in O(log min(la, lb, k)). *)
let merge_path (src : float array) alo la blo lb k =
  let lo = ref (max 0 (k - lb)) and hi = ref (min k la) in
  while !lo < !hi do
    let i = (!lo + !hi) / 2 in
    let j = k - i in
    (* Inside the open interval, i < la and j > 0 always hold. *)
    if Array.unsafe_get src (alo + i) <= Array.unsafe_get src (blo + j - 1)
    then lo := i + 1
    else hi := i
  done;
  !lo

(* Cache-blocked parallel merge of src[alo,ahi) and src[blo,bhi) into
   dst[dlo, ...): one output tile per parallel iteration. *)
let par_merge_floats grain prof (src : float array) alo ahi blo bhi
    (dst : float array) dlo =
  let la = ahi - alo and lb = bhi - blo in
  let total = la + lb in
  if total <= grain then
    Profile.leaf prof (fun () -> seq_merge_floats src alo ahi blo bhi dst dlo)
  else begin
    let tile = Grain.merge_tile () in
    let nt = (total + tile - 1) / tile in
    (* Grain 1: a tile is already a coarse unit of work. *)
    Runtime.parallel_for ~grain:1 0 nt (fun t ->
        Profile.leaf prof (fun () ->
            let k1 = t * tile in
            let k2 = min total (k1 + tile) in
            let i1 = merge_path src alo la blo lb k1 in
            let i2 = merge_path src alo la blo lb k2 in
            seq_merge_floats src (alo + i1) (alo + i2)
              (blo + (k1 - i1))
              (blo + (k2 - i2))
              dst (dlo + k1)))
  end

(* Sequential ping-pong merge sort for grain-sized ranges: monomorphic
   all the way down (no [Array.stable_sort], whose polymorphic compare
   would box every comparison). *)
let rec seq_sort_floats (src : float array) (dst : float array) lo hi into_dst
    =
  let n = hi - lo in
  if n <= 32 then begin
    let a = if into_dst then dst else src in
    if into_dst then Array.blit src lo dst lo n;
    insertion_sort_floats a lo hi
  end
  else begin
    let mid = (lo + hi) / 2 in
    seq_sort_floats src dst lo mid (not into_dst);
    seq_sort_floats src dst mid hi (not into_dst);
    let from, into = if into_dst then (src, dst) else (dst, src) in
    seq_merge_floats from lo mid mid hi into lo
  end

let rec sort_range_floats grain prof (src : float array) (dst : float array)
    lo hi into_dst =
  let n = hi - lo in
  if n <= grain then
    Profile.leaf prof (fun () -> seq_sort_floats src dst lo hi into_dst)
  else begin
    let mid = (lo + hi) / 2 in
    let (), () =
      Runtime.par
        (fun () -> sort_range_floats grain prof src dst lo mid (not into_dst))
        (fun () -> sort_range_floats grain prof src dst mid hi (not into_dst))
    in
    let from, into = if into_dst then (src, dst) else (dst, src) in
    par_merge_floats grain prof from lo mid mid hi into lo
  end

let sort_floats_in_place ?grain (a : float array) =
  let n = Array.length a in
  if n > 1 then
    Profile.with_op "sort_floats" (fun () ->
        let grain =
          max 16 (match grain with Some g -> g | None -> default_grain ())
        in
        let scratch = Array.copy a in
        Profile.with_region (fun prof ->
            Runtime.run (fun () ->
                sort_range_floats grain prof a scratch 0 n false)))

let sort_floats ?grain a =
  let out = Array.copy a in
  sort_floats_in_place ?grain out;
  out

(* The cache-blocked merge exposed on its own (mirrors {!merge}). *)
let merge_floats (a : float array) (b : float array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then Array.copy b
  else if lb = 0 then Array.copy a
  else
    Profile.with_op "sort_floats" (fun () ->
        let src = Array.append a b in
        let dst = Array.make (la + lb) 0.0 in
        let grain = max 16 (default_grain ()) in
        Profile.with_region (fun prof ->
            Runtime.run (fun () ->
                par_merge_floats grain prof src 0 la la (la + lb) dst 0));
        dst)

let is_sorted cmp a =
  let n = Array.length a in
  let rec go i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && go (i + 1)) in
  go 1

(* Group (key, value) pairs by key: stable sort on keys, then cut at run
   boundaries.  Values within a group keep their input order (stability).
   This is ParlayLib's collect/group_by shape, used e.g. to build
   inverted indices. *)
let group_by (cmp : 'k -> 'k -> int) (pairs : ('k * 'v) array) :
    ('k * 'v array) array =
  let n = Array.length pairs in
  if n = 0 then [||]
  else
    Profile.with_op "sort" @@ fun () ->
    begin
    let sorted = sort (fun (k1, _) (k2, _) -> cmp k1 k2) pairs in
    let key i = fst sorted.(i) in
    (* Group start indices. *)
    let starts =
      let buf = ref [] in
      for i = n - 1 downto 0 do
        if i = 0 || cmp (key (i - 1)) (key i) <> 0 then buf := i :: !buf
      done;
      Array.of_list !buf
    in
    let m = Array.length starts in
    let out = Array.make m (key 0, [||]) in
    Runtime.parallel_for 0 m (fun g ->
        let lo = starts.(g) in
        let hi = if g + 1 < m then starts.(g + 1) else n in
        out.(g) <- (key lo, Array.init (hi - lo) (fun k -> snd sorted.(lo + k))));
    out
  end
