(** Parallel stable merge sort with parallel merging (ParlayLib-style
    sorting substrate).

    Work O(n log n); span O(log^3 n) via divide-and-conquer merges that
    split the larger run at its median and binary-search the smaller. *)

(** [sort cmp a] returns a new, stably sorted array. [grain] is the
    sequential base-case size (defaults to the unified granularity
    layer's sort cutoff, {!Bds_runtime.Grain.sort_cutoff}, itself 4096
    unless ablated via [set_sort_cutoff]). *)
val sort : ?grain:int -> ('a -> 'a -> int) -> 'a array -> 'a array

(** In-place variant (uses an internal scratch buffer of equal size). *)
val sort_in_place : ?grain:int -> ('a -> 'a -> int) -> 'a array -> unit

(** [merge cmp a b] merges two sorted arrays (stable: ties from [a]
    first). *)
val merge : ('a -> 'a -> int) -> 'a array -> 'a array -> 'a array

val is_sorted : ('a -> 'a -> int) -> 'a array -> bool

(** {1 Unboxed float sort}

    Monomorphic merge sort over [float array] (flat unboxed storage):
    comparisons use the primitive [<=] instead of a polymorphic closure
    (which boxes both operands per comparison), the sequential base is
    an in-place insertion/merge sort rather than [Array.stable_sort],
    and the parallel merge is {e cache-blocked}: the merged output is
    cut into tiles of {!Bds_runtime.Grain.merge_tile} elements (default
    4096), each tile locates its input split with one merge-path binary
    search and then streams its slice sequentially — span O(log n) per
    merge level, and all inner-loop memory traffic is sequential.

    Inputs containing NaN have no [<=] total order; the result is then
    unspecified (memory-safe, but not sorted). *)

(** Returns a new sorted array. [grain] as for {!sort}. *)
val sort_floats : ?grain:int -> float array -> float array

(** In-place variant (internal scratch buffer of equal size). *)
val sort_floats_in_place : ?grain:int -> float array -> unit

(** Cache-blocked merge of two sorted arrays (ties from the first). *)
val merge_floats : float array -> float array -> float array

(** [group_by cmp pairs] groups (key, value) pairs by key (keys in
    ascending [cmp] order; values of each group in input order —
    ParlayLib's collect shape). *)
val group_by : ('k -> 'k -> int) -> ('k * 'v) array -> ('k * 'v array) array
