(** Parallel stable merge sort with parallel merging (ParlayLib-style
    sorting substrate).

    Work O(n log n); span O(log^3 n) via divide-and-conquer merges that
    split the larger run at its median and binary-search the smaller. *)

(** [sort cmp a] returns a new, stably sorted array. [grain] is the
    sequential base-case size (defaults to the unified granularity
    layer's sort cutoff, {!Bds_runtime.Grain.sort_cutoff}, itself 4096
    unless ablated via [set_sort_cutoff]). *)
val sort : ?grain:int -> ('a -> 'a -> int) -> 'a array -> 'a array

(** In-place variant (uses an internal scratch buffer of equal size). *)
val sort_in_place : ?grain:int -> ('a -> 'a -> int) -> 'a array -> unit

(** [merge cmp a b] merges two sorted arrays (stable: ties from [a]
    first). *)
val merge : ('a -> 'a -> int) -> 'a array -> 'a array -> 'a array

val is_sorted : ('a -> 'a -> int) -> 'a array -> bool

(** [group_by cmp pairs] groups (key, value) pairs by key (keys in
    ascending [cmp] order; values of each group in input order —
    ParlayLib's collect shape). *)
val group_by : ('k -> 'k -> int) -> ('k * 'v) array -> ('k * 'v array) array
