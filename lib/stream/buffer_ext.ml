(* Growable array buffer (OCaml 5.1 predates stdlib Dynarray).  Used by
   [Stream.pack_to_array] so a block-local filter allocates only as much
   memory as it keeps (plus geometric slack). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length b = b.len

let ensure b v =
  let cap = Array.length b.data in
  if b.len >= cap then begin
    let ncap = max 8 (2 * cap) in
    let ndata = Array.make ncap v in
    Array.blit b.data 0 ndata 0 b.len;
    b.data <- ndata
  end

let push b v =
  ensure b v;
  b.data.(b.len) <- v;
  b.len <- b.len + 1

let to_array b = Array.sub b.data 0 b.len

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Buffer_ext.get";
  b.data.(i)

let clear b =
  b.data <- [||];
  b.len <- 0
