(** Growable array buffer with geometric resizing. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

(** Fresh array of exactly [length] elements. *)
val to_array : 'a t -> 'a array

val clear : 'a t -> unit
