(* Sequential delayed streams — the paper's ML encoding (§4.4), with a
   dual execution representation:

   - [start] is the resumable "trickle" function of the paper
     (`unit -> unit -> 'a`): applying the first [unit] allocates the
     mutable cursor state and returns a stateful function producing one
     element per call.  It supports partial consumption and resumption,
     which [Seq.to_array]'s block-0 allocation witness, [get_region]'s
     mid-subsequence starts and the early-exit searches all need.
   - [fold] is a fused *push* driver: the stream owns the element loop
     and pushes each element into a consumer-supplied step function.
     Sources ([tabulate], [of_array_slice]) run a direct [for] loop
     (with [unsafe_get] on arrays); stateless stages compose into the
     source's index function at construction time (see [ixfn]), scans
     over such sources run their own native loop, and the remaining
     combinators wrap the upstream fold once at drive time — so a whole
     [map |> scan |> reduce] pipeline runs as a single loop per block
     instead of re-entering a chain of trickle closures (one indirect
     call + cursor bump per stage) for every element.

   Constructors ([tabulate], [map], [zip], [scan], ...) still cost O(1):
   they compose closures without touching elements.  Only the linear
   consumers ([reduce], [iter], [pack_to_array], [to_array], ...) do
   linear work, and all of them drive the push path.  [fused] records
   whether the fold bottoms out in a native push loop ([true] for every
   stream built from the constructors here) or was derived from a
   trickle function handed to [make] ([false]; e.g. [Seq.get_region]'s
   multi-subsequence blocks) — consumers report the distinction through
   the [fused_folds] / [trickle_fallbacks] telemetry counters.

   Cancellation: the push loops poll the ambient cancellation token once
   per 64-element chunk (sources and the [make] fallback own the loop,
   so the cadence holds for any pipeline over them), matching the
   per-block poll cadence of the Seq layer's drivers — a poisoned scope
   stops a long fold mid-block, within one chunk of the cancel. *)

module Cancel = Bds_runtime.Cancel
module Telemetry = Bds_runtime.Telemetry
module Profile = Bds_runtime.Profile

type 'a t = {
  length : int;
  start : unit -> unit -> 'a;
  fold : 'acc. stop:int -> ('acc -> 'a -> 'acc) -> 'acc -> 'acc;
      (** Push [min stop length] elements, left to right, through the
          step function.  Consumers always pass [~stop:length]; [take]
          relies on every fold honouring a smaller [stop]. *)
  fused : bool;
  ixfn : (int -> 'a) option;
      (** [Some f] when the stream is semantically [tabulate length f]
          with [f] pure per position (sources, and stateless combinator
          chains over them).  Lets [map]/[mapi]/[zip_with] fuse by
          *composing element functions at construction time* instead of
          stacking a fold wrapper per stage: without cross-module
          inlining (no flambda), each wrapper level costs one extra
          2-argument closure call per element, which is exactly the
          dispatch this representation exists to avoid.  Stateful stages
          ([scan], [scan_incl]) and [make] break the chain ([None]). *)
}

(* Elements between cancellation polls in a push loop.  Matches the
   [k land 63] cadence of the Seq layer's trickle-driven searches. *)
let poll_chunk = 64

let length s = s.length

let start s = s.start ()

let fold s ~stop f z = s.fold ~stop f z

let is_fused s = s.fused

(* Derive a push fold from a trickle-function factory: the fallback for
   streams built by [make] (no native push loop).  Chunked so the
   cancellation cadence is preserved even though elements arrive one
   trickle call at a time. *)
let fold_of_start (start : unit -> unit -> 'a) =
  fun ~stop g z ->
  let next = start () in
  let acc = ref z in
  let i = ref 0 in
  while !i < stop do
    Cancel.poll ();
    let hi = min stop (!i + poll_chunk) in
    for _ = !i to hi - 1 do
      acc := g !acc (next ())
    done;
    i := hi
  done;
  !acc

let make ~length ~start =
  if length < 0 then invalid_arg "Stream.make";
  {
    length;
    start;
    fold = (fun ~stop g z -> fold_of_start start ~stop g z);
    fused = false;
    ixfn = None;
  }

(* ------------------------------------------------------------------ *)
(* O(1) constructors                                                   *)

let tabulate n f =
  {
    length = n;
    ixfn = Some f;
    start =
      (fun () ->
        let i = ref 0 in
        fun () ->
          let v = f !i in
          incr i;
          v);
    fold =
      (fun ~stop g z ->
        let acc = ref z in
        let i = ref 0 in
        while !i < stop do
          Cancel.poll ();
          let hi = min stop (!i + poll_chunk) in
          for k = !i to hi - 1 do
            acc := g !acc (f k)
          done;
          i := hi
        done;
        !acc);
    fused = true;
  }

let of_array_slice a off len =
  if off < 0 || len < 0 || off + len > Array.length a then
    invalid_arg "Stream.of_array_slice";
  {
    length = len;
    ixfn = Some (fun k -> Array.unsafe_get a (off + k));
    start =
      (fun () ->
        let i = ref off in
        fun () ->
          let v = Array.unsafe_get a !i in
          incr i;
          v);
    fold =
      (fun ~stop g z ->
        let acc = ref z in
        let i = ref 0 in
        while !i < stop do
          Cancel.poll ();
          let hi = min stop (!i + poll_chunk) in
          for k = !i to hi - 1 do
            acc := g !acc (Array.unsafe_get a (off + k))
          done;
          i := hi
        done;
        !acc);
    fused = true;
  }

let of_array a = of_array_slice a 0 (Array.length a)

(* Stateless stages over a pure index function fuse at construction
   time: [map g (tabulate f)] *is* [tabulate (g . f)], so the whole
   stage chain collapses into the source's native loop (and into a
   single-stage trickle) instead of adding a dispatch level. *)
let map g s =
  match s.ixfn with
  | Some f -> tabulate s.length (fun i -> g (f i))
  | None ->
    {
      length = s.length;
      start =
        (fun () ->
          let next = s.start () in
          fun () -> g (next ()));
      fold = (fun ~stop h z -> s.fold ~stop (fun acc v -> h acc (g v)) z);
      fused = s.fused;
      ixfn = None;
    }

let mapi g s =
  match s.ixfn with
  | Some f -> tabulate s.length (fun i -> g i (f i))
  | None ->
  {
    length = s.length;
    start =
      (fun () ->
        let next = s.start () in
        let i = ref 0 in
        fun () ->
          let v = g !i (next ()) in
          incr i;
          v);
    fold =
      (fun ~stop h z ->
        let i = ref 0 in
        s.fold ~stop
          (fun acc v ->
            let k = !i in
            i := k + 1;
            h acc (g k v))
          z);
    fused = s.fused;
    ixfn = None;
  }

(* Zipping in push mode drives the left stream's fold and pulls the
   right stream's trickle inside the same loop: a push driver owns its
   element loop, so only one side can push.  Still one loop per block;
   [fused] therefore reports the driving (left) side. *)
let zip_with f s1 s2 =
  if s1.length <> s2.length then invalid_arg "Stream.zip_with: length mismatch";
  match (s1.ixfn, s2.ixfn) with
  | Some f1, Some f2 -> tabulate s1.length (fun i -> f (f1 i) (f2 i))
  | _ ->
  {
    length = s1.length;
    start =
      (fun () ->
        let n1 = s1.start () in
        let n2 = s2.start () in
        fun () ->
          let a = n1 () in
          let b = n2 () in
          f a b);
    fold =
      (fun ~stop h z ->
        let n2 = s2.start () in
        s1.fold ~stop (fun acc a -> h acc (f a (n2 ()))) z);
    fused = s1.fused;
    ixfn = None;
  }

let zip s1 s2 =
  if s1.length <> s2.length then invalid_arg "Stream.zip: length mismatch";
  zip_with (fun a b -> (a, b)) s1 s2

(* Exclusive running fold: element [i] of the output is
   [f (... (f z x0) ...) x(i-1)]; the input is consumed one element per
   output element, so block lengths are preserved. *)
let scan f z s =
  let start () =
    let next = s.start () in
    let acc = ref z in
    fun () ->
      let v = !acc in
      acc := f !acc (next ());
      v
  in
  match s.ixfn with
  | Some fi ->
    (* Native loop over the pure index function: the running state and
       the consumer accumulator advance in the same chunked [for] body,
       with no per-element wrapper call in between. *)
    {
      length = s.length;
      start;
      fold =
        (fun ~stop h z0 ->
          let st = ref z in
          let acc = ref z0 in
          let i = ref 0 in
          while !i < stop do
            Cancel.poll ();
            let hi = min stop (!i + poll_chunk) in
            for k = !i to hi - 1 do
              let cur = !st in
              st := f cur (fi k);
              acc := h !acc cur
            done;
            i := hi
          done;
          !acc);
      fused = true;
      ixfn = None;
    }
  | None ->
    {
      length = s.length;
      start;
      fold =
        (fun ~stop h z0 ->
          let st = ref z in
          s.fold ~stop
            (fun acc v ->
              let cur = !st in
              st := f cur v;
              h acc cur)
            z0);
      fused = s.fused;
      ixfn = None;
    }

(* Inclusive variant: element [i] is [f (... (f z x0) ...) xi]. *)
let scan_incl f z s =
  let start () =
    let next = s.start () in
    let acc = ref z in
    fun () ->
      acc := f !acc (next ());
      !acc
  in
  match s.ixfn with
  | Some fi ->
    {
      length = s.length;
      start;
      fold =
        (fun ~stop h z0 ->
          let st = ref z in
          let acc = ref z0 in
          let i = ref 0 in
          while !i < stop do
            Cancel.poll ();
            let hi = min stop (!i + poll_chunk) in
            for k = !i to hi - 1 do
              let nxt = f !st (fi k) in
              st := nxt;
              acc := h !acc nxt
            done;
            i := hi
          done;
          !acc);
      fused = true;
      ixfn = None;
    }
  | None ->
    {
      length = s.length;
      start;
      fold =
        (fun ~stop h z0 ->
          let st = ref z in
          s.fold ~stop
            (fun acc v ->
              let nxt = f !st v in
              st := nxt;
              h acc nxt)
            z0);
      fused = s.fused;
      ixfn = None;
    }

(* [take n s]: the first [min n (length s)] elements; O(1).  The copied
   fold is driven with the smaller [stop], which every fold honours. *)
let take n s =
  if n < 0 then invalid_arg "Stream.take";
  { s with length = min n s.length }

(* Nested-push concatenation of indexed segments, starting
   mid-subsequence: the region view behind [Seq.flatten] and the packed
   two-level results ([Seq.partition]).  The fold runs an outer loop
   over segments and a native chunked inner loop per segment — the
   nested-push shape of "Fast Collection Operations from Indexed Stream
   Fusion" — so consumers of region blocks count as fused instead of
   falling back to a trickle-derived fold.  [seg_len]/[elem] must be
   pure per position; the caller guarantees at least [length] elements
   exist from ([start_seg], [start_ofs]) onward. *)
let of_segments ~length ~seg_len ~elem ~start_seg ~start_ofs =
  if length < 0 || start_seg < 0 || start_ofs < 0 then
    invalid_arg "Stream.of_segments";
  {
    length;
    ixfn = None;
    start =
      (fun () ->
        let seg = ref start_seg in
        let ofs = ref start_ofs in
        fun () ->
          while !ofs >= seg_len !seg do
            incr seg;
            ofs := 0
          done;
          let v = elem !seg !ofs in
          incr ofs;
          v);
    fold =
      (fun ~stop g z ->
        let acc = ref z in
        let emitted = ref 0 in
        let seg = ref start_seg in
        let ofs = ref start_ofs in
        while !emitted < stop do
          let sl = seg_len !seg in
          if !ofs >= sl then begin
            (* Empty (or exhausted) segment: skipping costs one loop
               iteration, so keep polling even across a run of empties. *)
            Cancel.poll ();
            incr seg;
            ofs := 0
          end
          else begin
            let cur = !seg in
            let base = !ofs in
            let avail = min (sl - base) (stop - !emitted) in
            let i = ref 0 in
            while !i < avail do
              Cancel.poll ();
              let hi = min avail (!i + poll_chunk) in
              for k = !i to hi - 1 do
                acc := g !acc (elem cur (base + k))
              done;
              i := hi
            done;
            ofs := base + avail;
            emitted := !emitted + avail
          end
        done;
        !acc);
    fused = true;
  }

(* [selected_region]'s step function stops the inner block fold early
   (once the region has emitted [stop] survivors) by raising.  The
   exception constructor is created per fold invocation ([let
   exception] below): regions nest — a filter-of-filter block drives an
   inner region inside the outer one's step function — and a shared
   constructor would let the innermost region's handler swallow an
   outer region's stop signal, leaving the outer loop undercounted and
   walking past its last input block. *)

(* Skip-push filtered region: the block view behind the skip-based
   [Seq.filter].  Walks the input option-stream blocks from
   [start_block] inside each input's own (native) fold loop; a [None]
   element emits nothing — the "skip" arm of the push protocol — a
   [Some] emits its payload, with the first [skip] survivors dropped so
   a region can start mid-block.  [fused] mirrors the first input
   block: when the producer blocks are fused (the common case — memo
   slices, or tabulate chains the selecting [mapi] composed into),
   consumers of the region count as fused too, and the cancellation
   cadence is the input loop's own 64-element poll.  The caller
   guarantees [skip + length] survivors exist from [start_block]
   onward. *)
let selected_region ~length ~(blocks : int -> 'b option t) ~start_block ~skip =
  if length < 0 || start_block < 0 || skip < 0 then
    invalid_arg "Stream.selected_region";
  {
    length;
    ixfn = None;
    start =
      (fun () ->
        let blk = ref start_block in
        let remaining = ref 0 in
        let next = ref (fun () -> assert false) in
        let to_skip = ref skip in
        fun () ->
          let rec go () =
            if !remaining = 0 then begin
              let s = blocks !blk in
              incr blk;
              remaining := s.length;
              next := s.start ();
              go ()
            end
            else begin
              let v = !next () in
              decr remaining;
              match v with
              | None -> go ()
              | Some w ->
                if !to_skip > 0 then begin
                  decr to_skip;
                  go ()
                end
                else w
            end
          in
          go ());
    fold =
      (fun ~stop g z ->
        if stop <= 0 then z
        else begin
          let exception Region_filled in
          let acc = ref z in
          let emitted = ref 0 in
          let to_skip = ref skip in
          let blk = ref start_block in
          (try
             while !emitted < stop do
               let s = blocks !blk in
               incr blk;
               s.fold ~stop:s.length
                 (fun () v ->
                   match v with
                   | None -> ()
                   | Some w ->
                     if !to_skip > 0 then decr to_skip
                     else begin
                       acc := g !acc w;
                       incr emitted;
                       if !emitted >= stop then raise_notrace Region_filled
                     end)
                 ()
             done
           with Region_filled -> ());
          !acc
        end);
    fused = (if length = 0 then true else (blocks start_block).fused);
  }

(* ------------------------------------------------------------------ *)
(* Linear consumers — all push-driven                                  *)

let[@inline] count_path s =
  if s.fused then Telemetry.incr_fused_folds ()
  else Telemetry.incr_trickle_fallbacks ()

(* Profiled push fold: a consumer driven inside a Seq block leaf is
   already accounted there ([Profile.seq_op] is free in a leaf); a
   consumer driven directly by user code records as op "fold" (work =
   wall, parallelism 1 — streams are sequential by construction). *)
let[@inline] profiled f = Profile.seq_op "fold" f

let reduce f z s =
  count_path s;
  profiled (fun () -> s.fold ~stop:s.length f z)

(* Monomorphic float sum: the stream-lane entry of the unboxed float
   lane (docs/STREAMS.md "Unboxed float lane").  When the stream carries
   a pure index function (sources and stateless combinator chains over
   them), the whole sum runs as one monomorphic loop with unboxed
   accumulators — each element boxes at most once, at the index-function
   call boundary, instead of once per pipeline stage plus once per
   combine — keeping the 64-element poll cadence, and bumps
   [float_fast_path].  Streams with no index function (stateful stages
   like [scan], or [make]-built trickles) fall back to the generic
   polymorphic fold, which boxes every element through the step closure;
   those bump [float_boxed_fallback] so fallen-off chains show up in
   [bds_probe stats]. *)
let sum_floats (s : float t) =
  count_path s;
  match s.ixfn with
  | Some f ->
    Telemetry.incr_float_fast_path ();
    profiled (fun () ->
        let stop = s.length in
        let s0 = ref 0.0 and s1 = ref 0.0 in
        let i = ref 0 in
        while !i < stop do
          Cancel.poll ();
          let hi = min stop (!i + poll_chunk) in
          let j = ref !i in
          while !j + 1 < hi do
            s0 := !s0 +. f !j;
            s1 := !s1 +. f (!j + 1);
            j := !j + 2
          done;
          if !j < hi then s0 := !s0 +. f !j;
          i := hi
        done;
        !s0 +. !s1)
  | None ->
    Telemetry.incr_float_boxed_fallback ();
    profiled (fun () -> s.fold ~stop:s.length ( +. ) 0.0)

(* Monomorphic int sum — the int lane's first rung.  Ints are unboxed
   already; the win over the generic [reduce ( + ) 0] is skipping the
   polymorphic step-closure call per element (the PR 7 design rule: a
   fast path must be a monomorphic loop).  Same shape as [sum_floats]
   minus the split accumulators (int adds carry no rounding and the
   dependency chain is a single-cycle add). *)
let sum_ints (s : int t) =
  count_path s;
  match s.ixfn with
  | Some f ->
    profiled (fun () ->
        let stop = s.length in
        let acc = ref 0 in
        let i = ref 0 in
        while !i < stop do
          Cancel.poll ();
          let hi = min stop (!i + poll_chunk) in
          let j = ref !i in
          while !j < hi do
            acc := !acc + f !j;
            incr j
          done;
          i := hi
        done;
        !acc)
  | None -> profiled (fun () -> s.fold ~stop:s.length ( + ) 0)

(* Fold of a non-empty stream seeded from its first element; lets parallel
   callers combine a seed exactly once across blocks.  The accumulator
   cell is allocated when the first element arrives (no ['a option]
   witness per element: later steps mutate the one cell in place). *)
let reduce1 f s =
  if s.length = 0 then invalid_arg "Stream.reduce1: empty stream";
  count_path s;
  let cell =
    profiled (fun () ->
        s.fold ~stop:s.length
          (fun acc v ->
            match acc with
            | None -> Some (ref v)
            | Some r ->
              r := f !r v;
              acc)
          None)
  in
  match cell with Some r -> !r | None -> assert false

let iter f s =
  count_path s;
  profiled (fun () -> s.fold ~stop:s.length (fun () v -> f v) ())

let iteri f s =
  count_path s;
  let _ : int =
    profiled (fun () -> s.fold ~stop:s.length (fun i v -> f i v; i + 1) 0)
  in
  ()

let pack_to_array p s =
  count_path s;
  profiled (fun () ->
      let buf = Buffer_ext.create () in
      s.fold ~stop:s.length (fun () v -> if p v then Buffer_ext.push buf v) ();
      Buffer_ext.to_array buf)

(* filterOp / mapPartial: keep [Some] images. *)
let pack_op_to_array p s =
  count_path s;
  profiled (fun () ->
      let buf = Buffer_ext.create () in
      s.fold ~stop:s.length
        (fun () v -> match p v with Some w -> Buffer_ext.push buf w | None -> ())
        ();
      Buffer_ext.to_array buf)

let to_array s =
  if s.length = 0 then [||]
  else begin
    count_path s;
    profiled (fun () ->
        let out = ref [||] in
        let n = s.length in
        let _ : int =
          s.fold ~stop:n
            (fun i v ->
              if i = 0 then out := Array.make n v;
              Array.unsafe_set !out i v;
              i + 1)
            0
        in
        !out)
  end

let to_list s =
  (* The push driver delivers elements strictly left-to-right (streams
     are stateful, so no other order is sound); accumulate reversed and
     flip once. *)
  count_path s;
  profiled (fun () ->
      List.rev (s.fold ~stop:s.length (fun acc v -> v :: acc) []))

let equal eq s1 s2 =
  s1.length = s2.length
  &&
  (* Trickle path on purpose: equality wants lockstep consumption of two
     streams with the possibility of stopping at the first mismatch. *)
  let n1 = s1.start () in
  let n2 = s2.start () in
  let rec go i = i >= s1.length || (eq (n1 ()) (n2 ()) && go (i + 1)) in
  go 0
