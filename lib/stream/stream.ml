(* Sequential delayed streams — the paper's ML encoding (§4.4):
   a stream is a function [unit -> unit -> 'a].  Applying the first [unit]
   allocates the mutable cursor state and returns a stateful "trickle"
   function; each call to the trickle function produces the next element.

   Constructors ([tabulate], [map], [zip], [scan], ...) cost O(1): they
   compose closures without touching elements.  Only [reduce], [iter] and
   [pack_to_array] (and friends) do linear work.  Fusion happens because a
   pipeline of constructors collapses into one trickle function that is
   driven once per element by the final consumer. *)

type 'a t = { length : int; start : unit -> unit -> 'a }

let length s = s.length

let start s = s.start ()

let make ~length ~start =
  if length < 0 then invalid_arg "Stream.make";
  { length; start }

(* ------------------------------------------------------------------ *)
(* O(1) constructors                                                   *)

let tabulate n f =
  {
    length = n;
    start =
      (fun () ->
        let i = ref 0 in
        fun () ->
          let v = f !i in
          incr i;
          v);
  }

let of_array_slice a off len =
  if off < 0 || len < 0 || off + len > Array.length a then
    invalid_arg "Stream.of_array_slice";
  tabulate len (fun i -> Array.unsafe_get a (off + i))

let of_array a = of_array_slice a 0 (Array.length a)

let map g s =
  {
    length = s.length;
    start =
      (fun () ->
        let next = s.start () in
        fun () -> g (next ()));
  }

let mapi g s =
  {
    length = s.length;
    start =
      (fun () ->
        let next = s.start () in
        let i = ref 0 in
        fun () ->
          let v = g !i (next ()) in
          incr i;
          v);
  }

let zip s1 s2 =
  if s1.length <> s2.length then invalid_arg "Stream.zip: length mismatch";
  {
    length = s1.length;
    start =
      (fun () ->
        let n1 = s1.start () in
        let n2 = s2.start () in
        fun () ->
          let a = n1 () in
          let b = n2 () in
          (a, b));
  }

let zip_with f s1 s2 =
  if s1.length <> s2.length then invalid_arg "Stream.zip_with: length mismatch";
  {
    length = s1.length;
    start =
      (fun () ->
        let n1 = s1.start () in
        let n2 = s2.start () in
        fun () ->
          let a = n1 () in
          let b = n2 () in
          f a b);
  }

(* Exclusive running fold: element [i] of the output is
   [f (... (f z x0) ...) x(i-1)]; the input is consumed one element per
   output element, so block lengths are preserved. *)
let scan f z s =
  {
    length = s.length;
    start =
      (fun () ->
        let next = s.start () in
        let acc = ref z in
        fun () ->
          let v = !acc in
          acc := f !acc (next ());
          v);
  }

(* Inclusive variant: element [i] is [f (... (f z x0) ...) xi]. *)
let scan_incl f z s =
  {
    length = s.length;
    start =
      (fun () ->
        let next = s.start () in
        let acc = ref z in
        fun () ->
          acc := f !acc (next ());
          !acc);
  }

(* [take n s]: the first [min n (length s)] elements; O(1). *)
let take n s =
  if n < 0 then invalid_arg "Stream.take";
  { s with length = min n s.length }

(* ------------------------------------------------------------------ *)
(* Linear consumers                                                    *)

let reduce f z s =
  let next = s.start () in
  let acc = ref z in
  for _ = 1 to s.length do
    acc := f !acc (next ())
  done;
  !acc

(* Fold of a non-empty stream seeded from its first element; lets parallel
   callers combine a seed exactly once across blocks. *)
let reduce1 f s =
  if s.length = 0 then invalid_arg "Stream.reduce1: empty stream";
  let next = s.start () in
  let acc = ref (next ()) in
  for _ = 2 to s.length do
    acc := f !acc (next ())
  done;
  !acc

let iter f s =
  let next = s.start () in
  for _ = 1 to s.length do
    f (next ())
  done

let iteri f s =
  let next = s.start () in
  for i = 0 to s.length - 1 do
    f i (next ())
  done

let pack_to_array p s =
  let buf = Buffer_ext.create () in
  let next = s.start () in
  for _ = 1 to s.length do
    let v = next () in
    if p v then Buffer_ext.push buf v
  done;
  Buffer_ext.to_array buf

(* filterOp / mapPartial: keep [Some] images. *)
let pack_op_to_array p s =
  let buf = Buffer_ext.create () in
  let next = s.start () in
  for _ = 1 to s.length do
    match next () with
    | v -> ( match p v with Some w -> Buffer_ext.push buf w | None -> ())
  done;
  Buffer_ext.to_array buf

let to_array s =
  if s.length = 0 then [||]
  else begin
    let next = s.start () in
    let first = next () in
    let a = Array.make s.length first in
    for i = 1 to s.length - 1 do
      a.(i) <- next ()
    done;
    a
  end

let to_list s =
  (* Pull elements with an explicit left-to-right loop: trickle streams
     are stateful, and [List.init]'s evaluation order is unspecified, so
     handing it an effectful [next] could permute (or, for scans,
     corrupt) the result. *)
  let next = s.start () in
  let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (next () :: acc) in
  go s.length []

let equal eq s1 s2 =
  s1.length = s2.length
  &&
  let n1 = s1.start () in
  let n2 = s2.start () in
  let rec go i = i >= s1.length || (eq (n1 ()) (n2 ()) && go (i + 1)) in
  go 0
