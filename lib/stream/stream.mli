(** Sequential delayed streams (the paper's Figure 8 interface).

    A stream of length [n] is a delayed computation: constructing one with
    {!tabulate}, {!map}, {!zip}, {!scan} etc. costs O(1); elements are only
    produced when a linear consumer ({!reduce}, {!iter},
    {!pack_to_array}, ...) drives the stream.  Streams are the per-block
    representation inside BID sequences.

    Every stream carries two execution representations (see
    docs/STREAMS.md):

    - the resumable {e trickle} function returned by {!start}, which
      supports partial consumption and resumption (needed by
      [Seq.to_array]'s block-0 allocation witness, [get_region]'s
      mid-subsequence starts and the early-exit searches); and
    - the fused {e push} driver {!fold}, where the stream owns the
      element loop and a whole combinator pipeline runs as one loop per
      block.  All linear consumers below drive this path. *)

type 'a t

val length : 'a t -> int

(** Start iteration: returns the stateful "trickle" function producing
    successive elements. Calling it more than [length] times is undefined. *)
val start : 'a t -> unit -> 'a

(** [fold s ~stop f z] pushes the first [min stop (length s)] elements
    through [f], left to right.  This is the fused execution path:
    sources run a direct [for] loop ([unsafe_get] on arrays), stateless
    stages ({!map}/{!mapi}/{!zip_with}) are composed into the source's
    element function at construction time, scans over such sources run
    a native loop, and remaining combinators wrap the upstream fold once
    per drive — no per-element closure chain is re-entered.  The loop
    polls the ambient cancellation token ({!Bds_runtime.Cancel.poll})
    once per 64-element chunk.  See docs/STREAMS.md. *)
val fold : 'a t -> stop:int -> ('acc -> 'a -> 'acc) -> 'acc -> 'acc

(** Whether {!fold} bottoms out in a native push loop ([true] for all
    streams built from the constructors below) rather than in the
    trickle-derived fallback that {!make} installs ([false]).  Combinators
    propagate the flag of the stream whose loop does the driving. *)
val is_fused : 'a t -> bool

(** Low-level constructor from a trickle-function factory: [start ()] must
    return a function that yields the [length] elements in order.  The
    stream's {!fold} is derived from the trickle function (it still
    honours [stop] and the cancellation-poll cadence), so consumers of
    such streams count as [trickle_fallbacks] in the runtime telemetry. *)
val make : length:int -> start:(unit -> unit -> 'a) -> 'a t

(** {1 O(1) constructors} *)

val tabulate : int -> (int -> 'a) -> 'a t
val of_array : 'a array -> 'a t

(** [of_array_slice a off len] streams [a.(off) .. a.(off+len-1)]. *)
val of_array_slice : 'a array -> int -> int -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
val zip : 'a t -> 'b t -> ('a * 'b) t
val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

(** Exclusive running fold: output element [i] combines [z] with inputs
    [0..i-1]. Same length as the input. *)
val scan : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t

(** Inclusive running fold: output element [i] combines [z] with inputs
    [0..i]. *)
val scan_incl : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t

(** [take n s]: the first [min n (length s)] elements; O(1). *)
val take : int -> 'a t -> 'a t

(** Nested-push concatenation of indexed segments, starting
    mid-subsequence — the region view behind [Seq.flatten] and the
    packed two-level results.  [of_segments ~length ~seg_len ~elem
    ~start_seg ~start_ofs] yields [length] elements by walking segments
    [start_seg, start_seg+1, ...] in order, beginning at offset
    [start_ofs] inside the first; element [i] of segment [s] is
    [elem s i] and segment [s] holds [seg_len s] elements (both must be
    pure per position).  The fold is a native outer-loop/inner-loop pair
    keeping the 64-element cancellation cadence, so consumers count as
    fused.  The caller guarantees enough elements exist; O(1). *)
val of_segments :
  length:int ->
  seg_len:(int -> int) ->
  elem:(int -> int -> 'a) ->
  start_seg:int ->
  start_ofs:int ->
  'a t

(** Skip-push filtered region — the block view behind the skip-based
    [Seq.filter].  [selected_region ~length ~blocks ~start_block ~skip]
    yields the [Some] payloads of the concatenated input option-stream
    blocks [blocks start_block, blocks (start_block+1), ...], dropping
    the first [skip] survivors and stopping after [length].  The fold
    consumes every raw input element inside the input block's own fold
    loop (emitting zero elements for a [None] is the "skip" arm of the
    push protocol), so when the inputs are fused the region is too —
    {!is_fused} mirrors [blocks start_block] — and the cancellation
    cadence is the input loop's.  The caller guarantees [skip + length]
    survivors exist from [start_block] onward; O(1). *)
val selected_region :
  length:int ->
  blocks:(int -> 'b option t) ->
  start_block:int ->
  skip:int ->
  'b t

(** {1 Linear consumers}

    All of these drive the push path ({!fold}) and bump the
    [fused_folds] / [trickle_fallbacks] telemetry counter matching
    {!is_fused}. *)

val reduce : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a

(** Unboxed float sum.  A stream that is semantically [tabulate n f]
    (sources and stateless stages over them) is summed by one
    monomorphic loop with unboxed accumulators, split two ways for ILP
    — summation order therefore differs from a left fold by rounding —
    and bumps the [float_fast_path] telemetry counter; anything else
    falls back to the generic boxed {!reduce} and bumps
    [float_boxed_fallback].  See docs/STREAMS.md "Unboxed float
    lane". *)
val sum_floats : float t -> float

(** Monomorphic int sum — the first rung of the int lane.  OCaml ints
    are already unboxed, so unlike {!sum_floats} there is nothing to
    unbox; what the fast path removes is the polymorphic closure
    dispatch per element of the generic {!reduce}.  A stream carrying a
    pure index function is summed by one native [int] loop (keeping the
    64-element poll cadence); anything else falls back to the generic
    fold.  See docs/STREAMS.md "Unboxed float lane" for the shared
    design rule. *)
val sum_ints : int t -> int

(** Fold of a non-empty stream seeded from its first element (no option
    witness: the accumulator cell is allocated when the first element is
    pushed).  Raises [Invalid_argument] on an empty stream. *)
val reduce1 : ('a -> 'a -> 'a) -> 'a t -> 'a

(** The paper's [s.applyStream]. *)
val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** Sequential filter into a fresh array (the paper's [s.packToArray]);
    allocates only as much as survives (plus geometric slack). *)
val pack_to_array : ('a -> bool) -> 'a t -> 'a array

(** filterOp / mapPartial: keep the [Some] images. *)
val pack_op_to_array : ('a -> 'b option) -> 'a t -> 'b array

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list

(** Element-wise equality (drives both streams). *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
