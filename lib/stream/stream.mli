(** Sequential delayed streams (the paper's Figure 8 interface).

    A stream of length [n] is a delayed computation: constructing one with
    {!tabulate}, {!map}, {!zip}, {!scan} etc. costs O(1); elements are only
    produced when a linear consumer ({!reduce}, {!iter},
    {!pack_to_array}, ...) drives the stream.  Streams are the per-block
    representation inside BID sequences. *)

type 'a t

val length : 'a t -> int

(** Start iteration: returns the stateful "trickle" function producing
    successive elements. Calling it more than [length] times is undefined. *)
val start : 'a t -> unit -> 'a

(** Low-level constructor from a trickle-function factory: [start ()] must
    return a function that yields the [length] elements in order. *)
val make : length:int -> start:(unit -> unit -> 'a) -> 'a t

(** {1 O(1) constructors} *)

val tabulate : int -> (int -> 'a) -> 'a t
val of_array : 'a array -> 'a t

(** [of_array_slice a off len] streams [a.(off) .. a.(off+len-1)]. *)
val of_array_slice : 'a array -> int -> int -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
val zip : 'a t -> 'b t -> ('a * 'b) t
val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

(** Exclusive running fold: output element [i] combines [z] with inputs
    [0..i-1]. Same length as the input. *)
val scan : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t

(** Inclusive running fold: output element [i] combines [z] with inputs
    [0..i]. *)
val scan_incl : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t

(** [take n s]: the first [min n (length s)] elements; O(1). *)
val take : int -> 'a t -> 'a t

(** {1 Linear consumers} *)

val reduce : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a

(** Fold of a non-empty stream seeded from its first element.
    Raises [Invalid_argument] on an empty stream. *)
val reduce1 : ('a -> 'a -> 'a) -> 'a t -> 'a

(** The paper's [s.applyStream]. *)
val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** Sequential filter into a fresh array (the paper's [s.packToArray]);
    allocates only as much as survives (plus geometric slack). *)
val pack_to_array : ('a -> bool) -> 'a t -> 'a array

(** filterOp / mapPartial: keep the [Some] images. *)
val pack_op_to_array : ('a -> 'b option) -> 'a t -> 'b array

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list

(** Element-wise equality (drives both streams). *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
