(* Alternative stream encoding: purely functional state-passing
   ("unfold" style), the moral counterpart of the paper's remark (§4.4)
   that the stream representation is an implementation detail that
   differs between their ML (stateful trickle closures — our [Stream])
   and C++ (forward iterators) libraries.

   A stream is an existentially-packaged seed plus a step function
   returning (element, next seed).  Compared with [Stream], every [next]
   allocates a result pair (and composed steps allocate nested seeds), so
   this encoding trades allocation for purity — measured head-to-head in
   the benchmark harness's [ablation] section.  The interface mirrors
   [Stream] so either can back a block. *)

type 'a t = Pack : { length : int; seed : 's; step : 's -> 'a * 's } -> 'a t

let length (Pack s) = s.length

let tabulate n f =
  Pack { length = n; seed = 0; step = (fun i -> (f i, i + 1)) }

let of_array_slice a off len =
  if off < 0 || len < 0 || off + len > Array.length a then
    invalid_arg "Stream_pure.of_array_slice";
  tabulate len (fun k -> Array.unsafe_get a (off + k))

let of_array a = of_array_slice a 0 (Array.length a)

let map g (Pack s) =
  Pack
    {
      length = s.length;
      seed = s.seed;
      step =
        (fun st ->
          let v, st' = s.step st in
          (g v, st'));
    }

let mapi g (Pack s) =
  Pack
    {
      length = s.length;
      seed = (0, s.seed);
      step =
        (fun (i, st) ->
          let v, st' = s.step st in
          (g i v, (i + 1, st')));
    }

let zip_with f (Pack s1) (Pack s2) =
  if s1.length <> s2.length then invalid_arg "Stream_pure.zip_with";
  Pack
    {
      length = s1.length;
      seed = (s1.seed, s2.seed);
      step =
        (fun (a, b) ->
          let x, a' = s1.step a in
          let y, b' = s2.step b in
          (f x y, (a', b')));
    }

let zip s1 s2 = zip_with (fun a b -> (a, b)) s1 s2

(* Exclusive running fold (same convention as [Stream.scan]). *)
let scan f z (Pack s) =
  Pack
    {
      length = s.length;
      seed = (z, s.seed);
      step =
        (fun (acc, st) ->
          let v, st' = s.step st in
          (acc, (f acc v, st')));
    }

let scan_incl f z (Pack s) =
  Pack
    {
      length = s.length;
      seed = (z, s.seed);
      step =
        (fun (acc, st) ->
          let v, st' = s.step st in
          let acc' = f acc v in
          (acc', (acc', st')));
    }

let reduce f z (Pack s) =
  let acc = ref z in
  let st = ref s.seed in
  for _ = 1 to s.length do
    let v, st' = s.step !st in
    acc := f !acc v;
    st := st'
  done;
  !acc

let iter f (Pack s) =
  let st = ref s.seed in
  for _ = 1 to s.length do
    let v, st' = s.step !st in
    f v;
    st := st'
  done

let to_list (Pack s) =
  let st = ref s.seed in
  List.init s.length (fun _ ->
      let v, st' = s.step !st in
      st := st';
      v)

let to_array (Pack s) =
  if s.length = 0 then [||]
  else begin
    let v0, st1 = s.step s.seed in
    let out = Array.make s.length v0 in
    let st = ref st1 in
    for i = 1 to s.length - 1 do
      let v, st' = s.step !st in
      out.(i) <- v;
      st := st'
    done;
    out
  end
