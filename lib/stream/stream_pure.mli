(** Alternative stream encoding: purely functional state-passing
    ("unfold" style), mirroring the paper's §4.4 observation that the
    per-block stream representation is a swappable implementation
    detail.  Same delayed semantics as {!Stream}; different constant
    factors (each step allocates its result pair).  Compared against
    {!Stream} in the harness's ablation section. *)

type 'a t

val length : 'a t -> int
val tabulate : int -> (int -> 'a) -> 'a t
val of_array : 'a array -> 'a t
val of_array_slice : 'a array -> int -> int -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
val zip : 'a t -> 'b t -> ('a * 'b) t
val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

(** Exclusive running fold (same convention as {!Stream.scan}). *)
val scan : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t

val scan_incl : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a t
val reduce : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
