#!/bin/sh
# Full evaluation (cf. the paper artifact's ./run): default scale, three
# repetitions. Pass --procs N and --proc-list 1,...,N to match your
# machine's core count; add --scale K to grow the inputs.
set -e
cd "$(dirname "$0")/.."
mkdir -p results
dune build bench/main.exe
dune exec bench/main.exe -- --csv results/full.csv "$@" | tee results/full-output.txt
echo
echo "tables: results/full-output.txt    raw data: results/full.csv"
