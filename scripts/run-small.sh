#!/bin/sh
# Small evaluation (cf. the paper artifact's ./run-small): scaled-down
# inputs, one repetition. Takes a few minutes.
set -e
cd "$(dirname "$0")/.."
mkdir -p results
dune build bench/main.exe
dune exec bench/main.exe -- --quick --csv results/small.csv "$@" | tee results/small-output.txt
echo
echo "tables: results/small-output.txt    raw data: results/small.csv"
