Adaptive granularity: the online self-tuning controller that closes
the profiler->Grain loop (docs/RUNTIME.md "Adaptive granularity").

`bds_probe grain` force-enables adaptation, drives one labeled element
loop ("probe-loop") and one blocked reduce ("reduce") repeatedly, and
dumps the controller's decision table.  Decisions are memoized per
(op label, log2 size bucket, worker count); both workloads run 60000
elements (bucket 15) on 2 workers, so the key set is exact while the
converged grains and observation counts depend on timing and are
normalised to N:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe grain | sed -E 's/=[0-9]+/=N/g'
  adaptive=on leaf_override=none
  op=probe-loop bucket=N workers=N grain=N obs=N adj=N probes=N
  op=reduce bucket=N workers=N grain=N obs=N adj=N probes=N

An explicit BDS_GRAIN always wins over the controller: the element
loop runs at the override and never reaches the controller, so its row
disappears from the table (the blocked reduce keeps its row — block
sizing is governed by the block policy, not BDS_GRAIN):

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_GRAIN=4096 bds_probe grain | sed -E 's/=[0-9]+/=N/g'
  adaptive=on leaf_override=N
  op=reduce bucket=N workers=N grain=N obs=N adj=N probes=N

An explicit block policy likewise disables block-size decisions, and
without a labeled op in scope the controller never engages at all — the
plain liveness probe (unlabeled parallel_for_reduce) leaves the table
empty even with BDS_ADAPT=1, while the adapt_* telemetry counters are
present (and zero here) in the stats output:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_ADAPT=1 bds_probe stats | grep adapt_
    adapt_adjustments=0
    adapt_probes=0
