The text CLI runs the delay-library kernels on real files; all outputs
below are deterministic.

  $ printf 'hello world\nneedle in a haystack\nthird line here\n' > sample.txt

  $ bds_text wc sample.txt
         3        9       49 sample.txt

  $ bds_text tokens sample.txt
  9 tokens, 40 token bytes (avg length 4.44) in sample.txt

  $ bds_text grep needle sample.txt
  1 matching lines (20 bytes) in sample.txt

  $ bds_text grep line sample.txt
  1 matching lines (15 bytes) in sample.txt

  $ bds_text index sample.txt
  9 distinct words, 9 postings in sample.txt

Repeated words across documents collapse into single postings:

  $ printf 'a b a\nb c\na a\n' > dup.txt
  $ bds_text index dup.txt
  3 distinct words, 5 postings in dup.txt

Empty input is handled:

  $ : > empty.txt
  $ bds_text wc empty.txt
         0        0        0 empty.txt
