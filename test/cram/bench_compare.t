The perf-regression gate (scripts/bench_compare, CI job
bench-regression) diffs a fresh bench CSV against a committed baseline
snapshot.  This test is hermetic: baseline and CSV are written inline,
so it exercises the gate logic — not the benchmark — and is exact.

  $ cat > baseline.json <<'EOF'
  > {
  >   "snapshot": 4,
  >   "results": {
  >     "stream-overhead/chain3": {
  >       "pull_trickle": { "time_s": 0.0240 },
  >       "push_fused": { "time_s": 0.0140 },
  >       "speedup_push_vs_pull": 1.72
  >     }
  >   }
  > }
  > EOF

A run whose push-vs-pull speedup matches the baseline passes:

  $ cat > good.csv <<'EOF'
  > section,bench,version,procs,metric,value
  > stream-overhead,chain3,pull,2,time_s,0.0250
  > stream-overhead,chain3,push,2,time_s,0.0145
  > EOF
  $ bench_compare --baseline baseline.json --csv good.csv
  bench_compare: baseline snapshot 4 (baseline.json), tolerance 15%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   1.7241    +0.2%  ok
  result: PASS

Injecting a 2x slowdown into the push path halves the speedup, which
the gate rejects with a non-zero exit:

  $ sed 's/push,2,time_s,0.0145/push,2,time_s,0.0290/' good.csv > slow.csv
  $ bench_compare --baseline baseline.json --csv slow.csv
  bench_compare: baseline snapshot 4 (baseline.json), tolerance 15%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   0.8621   -49.9%  REGRESSION
  result: FAIL
  [1]

The tolerance is a flag; a loose enough gate lets the same run through:

  $ bench_compare --baseline baseline.json --csv slow.csv --max-regress 60
  bench_compare: baseline snapshot 4 (baseline.json), tolerance 60%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   0.8621   -49.9%  ok
  result: PASS

--absolute additionally gates raw times (for quiet hosts; within-run
ratios are the default because shared runners drift):

  $ bench_compare --baseline baseline.json --csv good.csv --absolute
  bench_compare: baseline snapshot 4 (baseline.json), tolerance 15%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   1.7241    +0.2%  ok
    stream-overhead pull time_s (absolute)     baseline   0.0240  current   0.0250    +4.2%  ok
    stream-overhead push time_s (absolute)     baseline   0.0140  current   0.0145    +3.6%  ok
  result: PASS

A BENCH_7-shaped baseline additionally carries the float-kernels
section (ISSUE 7); every bench it records gets its unboxed-vs-boxed
speedup gated, alongside the stream check — sections are detected by
presence, so the BENCH_4-shaped baseline above keeps working unchanged:

  $ cat > baseline7.json <<'EOF'
  > {
  >   "snapshot": 7,
  >   "results": {
  >     "stream-overhead/chain3": {
  >       "pull_trickle": { "time_s": 0.0240 },
  >       "push_fused": { "time_s": 0.0140 },
  >       "speedup_push_vs_pull": 1.72
  >     },
  >     "float-kernels": {
  >       "sum": { "speedup_unboxed_vs_boxed": 2.50 },
  >       "dot": { "speedup_unboxed_vs_boxed": 3.00 }
  >     }
  >   }
  > }
  > EOF
  $ cat > good7.csv <<'EOF'
  > section,bench,version,procs,metric,value
  > stream-overhead,chain3,pull,2,time_s,0.0250
  > stream-overhead,chain3,push,2,time_s,0.0145
  > float-kernels,sum,boxed,2,time_s,0.0500
  > float-kernels,sum,unboxed,2,time_s,0.0200
  > float-kernels,dot,boxed,2,time_s,0.0600
  > float-kernels,dot,unboxed,2,time_s,0.0199
  > EOF
  $ bench_compare --baseline baseline7.json --csv good7.csv
  bench_compare: baseline snapshot 7 (baseline7.json), tolerance 15%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   1.7241    +0.2%  ok
    float-kernels sum unboxed-vs-boxed speedup baseline   2.5000  current   2.5000    +0.0%  ok
    float-kernels dot unboxed-vs-boxed speedup baseline   3.0000  current   3.0151    +0.5%  ok
  result: PASS

Doubling one kernel's unboxed time (a boxing regression slipping back
in) halves that kernel's speedup and fails the gate, while the other
checks still report their margins:

  $ sed 's/sum,unboxed,2,time_s,0.0200/sum,unboxed,2,time_s,0.0400/' good7.csv > slow7.csv
  $ bench_compare --baseline baseline7.json --csv slow7.csv
  bench_compare: baseline snapshot 7 (baseline7.json), tolerance 15%
    stream-overhead push-vs-pull speedup       baseline   1.7200  current   1.7241    +0.2%  ok
    float-kernels sum unboxed-vs-boxed speedup baseline   2.5000  current   1.2500   -50.0%  REGRESSION
    float-kernels dot unboxed-vs-boxed speedup baseline   3.0000  current   3.0151    +0.5%  ok
  result: FAIL
  [1]

A BENCH_8-shaped baseline additionally carries the Seq chain benches
(ISSUE 8): each chain it records gets its fused-vs-materialized
speedup gated.  As with float-kernels, detection is by presence, so
this baseline carries only the chains — no chain3, no kernels:

  $ cat > baseline8.json <<'EOF'
  > {
  >   "snapshot": 8,
  >   "results": {
  >     "stream-overhead/filter-chain": {
  >       "materialized": { "time_s": 0.1400 },
  >       "fused": { "time_s": 0.1000 },
  >       "speedup_fused_vs_materialized": 1.30
  >     },
  >     "stream-overhead/flatten-chain": {
  >       "materialized": { "time_s": 0.2400 },
  >       "fused": { "time_s": 0.2400 },
  >       "speedup_fused_vs_materialized": 0.95
  >     }
  >   }
  > }
  > EOF
  $ cat > good8.csv <<'EOF'
  > section,bench,version,procs,metric,value
  > stream-overhead,filter-chain,materialized,2,time_s,0.1430
  > stream-overhead,filter-chain,fused,2,time_s,0.1100
  > stream-overhead,flatten-chain,materialized,2,time_s,0.2350
  > stream-overhead,flatten-chain,fused,2,time_s,0.2400
  > EOF
  $ bench_compare --baseline baseline8.json --csv good8.csv
  bench_compare: baseline snapshot 8 (baseline8.json), tolerance 15%
    stream-overhead filter-chain fused-vs-materialized speedup baseline   1.3000  current   1.3000    -0.0%  ok
    stream-overhead flatten-chain fused-vs-materialized speedup baseline   0.9500  current   0.9792    +3.1%  ok
  result: PASS

A chain whose fused path quietly falls back to materialized-like cost
(say the filter stops push-composing) loses its speedup and fails:

  $ sed 's/filter-chain,fused,2,time_s,0.1100/filter-chain,fused,2,time_s,0.1430/' good8.csv > slow8.csv
  $ bench_compare --baseline baseline8.json --csv slow8.csv
  bench_compare: baseline snapshot 8 (baseline8.json), tolerance 15%
    stream-overhead filter-chain fused-vs-materialized speedup baseline   1.3000  current   1.0000   -23.1%  REGRESSION
    stream-overhead flatten-chain fused-vs-materialized speedup baseline   0.9500  current   0.9792    +3.1%  ok
  result: FAIL
  [1]

--absolute gates the chains' raw times too:

  $ bench_compare --baseline baseline8.json --csv good8.csv --absolute
  bench_compare: baseline snapshot 8 (baseline8.json), tolerance 15%
    stream-overhead filter-chain fused-vs-materialized speedup baseline   1.3000  current   1.3000    -0.0%  ok
    stream-overhead filter-chain materialized time_s (absolute) baseline   0.1400  current   0.1430    +2.1%  ok
    stream-overhead filter-chain fused time_s (absolute) baseline   0.1000  current   0.1100   +10.0%  ok
    stream-overhead flatten-chain fused-vs-materialized speedup baseline   0.9500  current   0.9792    +3.1%  ok
    stream-overhead flatten-chain materialized time_s (absolute) baseline   0.2400  current   0.2350    -2.1%  ok
    stream-overhead flatten-chain fused time_s (absolute) baseline   0.2400  current   0.2400    +0.0%  ok
  result: PASS

A BENCH_9-shaped baseline additionally carries the grain-sweep section
(ISSUE 9): the self-tuning controller's adaptive-vs-best-fixed ratio —
computed by the harness within one run — is gated like any other
within-run ratio.  Presence-based as before:

  $ cat > baseline9.json <<'EOF'
  > {
  >   "snapshot": 9,
  >   "results": {
  >     "sweep-grain/bestcut-delay": {
  >       "adaptive_vs_best_fixed": 0.95
  >     }
  >   }
  > }
  > EOF
  $ cat > good9.csv <<'EOF'
  > section,bench,version,procs,metric,value
  > sweep-grain,bestcut-delay,adaptive,2,time_s,0.0105
  > sweep-grain,bestcut-delay,adaptive,2,adaptive_vs_best_fixed,0.97
  > EOF
  $ bench_compare --baseline baseline9.json --csv good9.csv
  bench_compare: baseline snapshot 9 (baseline9.json), tolerance 15%
    sweep-grain adaptive-vs-best-fixed ratio   baseline   0.9500  current   0.9700    +2.1%  ok
  result: PASS

A controller that stops tracking the sweep optimum (stale decisions,
probe livelock) drops the ratio and fails the gate:

  $ sed 's/adaptive_vs_best_fixed,0.97/adaptive_vs_best_fixed,0.70/' good9.csv > slow9.csv
  $ bench_compare --baseline baseline9.json --csv slow9.csv
  bench_compare: baseline snapshot 9 (baseline9.json), tolerance 15%
    sweep-grain adaptive-vs-best-fixed ratio   baseline   0.9500  current   0.7000   -26.3%  REGRESSION
  result: FAIL
  [1]

A sweep-grain baseline without the adaptive CSV row is a usage error
(the bench was run without --adaptive):

  $ bench_compare --baseline baseline9.json --csv good7.csv
  bench_compare: csv: no sweep-grain adaptive_vs_best_fixed row (run bench with --sweep-grain ... --adaptive)
  [2]

A baseline with no known gated section is a usage error, never a
silent pass:

  $ cat > nosection.json <<'EOF'
  > { "snapshot": 7, "results": { "misc": {} } }
  > EOF
  $ bench_compare --baseline nosection.json --csv good7.csv
  bench_compare: baseline: results contains no known gated section (stream-overhead/chain3, stream-overhead/filter-chain, stream-overhead/flatten-chain, float-kernels or sweep-grain/bestcut-delay)
  [2]

Malformed inputs are usage errors (exit 2), distinct from regressions:

  $ echo 'not json' > bad.json
  $ bench_compare --baseline bad.json --csv good.csv
  bench_compare: bad.json: expected u at offset 1
  [2]
  $ echo 'wrong,header' > bad.csv
  $ bench_compare --baseline baseline.json --csv bad.csv
  bench_compare: bad.csv: unexpected CSV header: wrong,header
  [2]
