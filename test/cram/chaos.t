The runtime probe reports the worker count and the chaos-injection
configuration parsed from BDS_CHAOS (docs/RUNTIME.md "Failure semantics,
cancellation, and chaos testing").

Chaos is off by default, and the empty string is the explicit opt-out —
pinned here so this block holds even when the surrounding environment
(e.g. `make stress`) exports a BDS_CHAOS of its own:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' bds_probe
  workers=2
  chaos: off
  sum(0..99999)=4999950000

A full specification is parsed and reported (p=0 so the raise kind cannot
perturb the liveness check):

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='seed=7,p=0,kinds=raise+delay+starve' bds_probe
  workers=2
  chaos: seed=7 p=0.000 kinds=raise+delay+starve
  sum(0..99999)=4999950000

Fields may be omitted; seed defaults to 1, p to 0.01, and kinds to the
semantics-preserving delay+starve:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='seed=3' bds_probe
  workers=2
  chaos: seed=3 p=0.010 kinds=delay+starve
  sum(0..99999)=4999950000

Semantics-preserving chaos actually firing still yields the exact result:

  $ BDS_NUM_DOMAINS=4 BDS_CHAOS='seed=1,p=0.05,kinds=delay+starve' bds_probe
  workers=4
  chaos: seed=1 p=0.050 kinds=delay+starve
  sum(0..99999)=4999950000

Malformed specifications disable chaos and say why:

  $ BDS_NUM_DOMAINS=1 BDS_CHAOS='p=2.0' bds_probe
  workers=1
  chaos: off (BDS_CHAOS parse error: p: out of range [0,1]: "2.0")
  sum(0..99999)=4999950000

  $ BDS_NUM_DOMAINS=1 BDS_CHAOS='kinds=explode' bds_probe
  workers=1
  chaos: off (BDS_CHAOS parse error: unknown fault kind "explode")
  sum(0..99999)=4999950000

  $ BDS_NUM_DOMAINS=1 BDS_CHAOS='frobnicate' bds_probe
  workers=1
  chaos: off (BDS_CHAOS parse error: malformed field "frobnicate" (expected key=value))
  sum(0..99999)=4999950000
