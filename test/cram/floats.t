Float-lane execution-path counters (docs/STREAMS.md "Unboxed float
lane").

`bds_probe floats` drives three fixed float pipelines and reports, per
pipeline, how many per-block loops ran on the monomorphic unboxed fast
path vs the generic boxed fallback.  With the block grid pinned
(n=8000, block size 1000 -> 8 blocks) the counts are exact.

A RAD map|float_sum chain hands its pure index function straight to
Float_seq: one fast-path loop per block, ZERO boxed fallbacks (the
ISSUE 7 acceptance criterion for fused float chains).

Summing a scan_incl output is the honest counter-case: the scan's
block streams are stateful (no pure index function), so each of the 8
blocks falls back to the generic boxed fold — visible here and in
`bds_probe stats` as float_boxed_fallback.

A materialised Float_seq dot stays unboxed end to end: force runs one
fast-path loop per block, then dot one more (16 total, zero
fallbacks):

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=1000 bds_probe floats
  map-sum: value=15998000.0 float_fast_path=8 float_boxed_fallback=0
  scan-sum: value=85333332000.0 float_fast_path=0 float_boxed_fallback=8
  floatarray-dot: value=140000.0 float_fast_path=16 float_boxed_fallback=0
