The unified granularity layer (docs/RUNTIME.md "Granularity policy").

`bds_probe blocks` asks the granularity layer for the block grid of an
8000-element sequence and then drives one per-block phase (a Seq.iter)
over it.  BDS_BLOCK_SIZE pins the grid, making the output exact:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=1000 bds_probe blocks
  n=8000 block_size=1000 blocks=8
  sum=31996000

BDS_BLOCKS_PER_WORKER scales the grid with the worker count instead
(2 workers x 4 blocks each -> 1000-element blocks):

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCKS_PER_WORKER=4 bds_probe blocks
  n=8000 block_size=1000 blocks=8
  sum=31996000

Every per-block phase runs through Runtime.apply_blocks, which records
one "block" span per grid block when tracing is on — so a trace of the
run above holds exactly 8 of them:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE=grain-trace.json BDS_BLOCK_SIZE=1000 bds_probe blocks
  n=8000 block_size=1000 blocks=8
  sum=31996000
  $ bds_probe trace-count grain-trace.json block
  block: 8

Malformed overrides are rejected at first use, naming the variable:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_GRAIN=banana bds_probe blocks
  Fatal error: exception Failure("BDS_GRAIN: invalid value \"banana\" (expected an integer >= 1)")
  [2]

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=0 bds_probe blocks
  Fatal error: exception Failure("BDS_BLOCK_SIZE: invalid value \"0\" (expected an integer >= 1)")
  [2]

An empty override means "use the default" rather than an error:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_GRAIN= BDS_BLOCK_SIZE=1000 bds_probe blocks
  n=8000 block_size=1000 blocks=8
  sum=31996000
