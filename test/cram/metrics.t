The metrics probe drives a fixed multi-tenant scenario through the job
service (two tenants; a sum and an echo complete, a tight-deadline busy
job expires) and prints the OpenMetrics exposition — validated by the
probe itself before printing.  Histogram bucket values are timing-
dependent, so the test pins the deterministic slices: the family
declarations, the per-tenant/per-kind/per-outcome job counters, and the
per-tenant queue gauges.

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe metrics > exposition.txt
  $ grep '^# TYPE bds_jobs\|^# TYPE bds_job_\|^# TYPE bds_queue\|^# TYPE bds_breaker\|^# TYPE bds_outstanding' exposition.txt
  # TYPE bds_breaker_state gauge
  # TYPE bds_job_backoff_wait_seconds histogram
  # TYPE bds_job_latency_seconds histogram
  # TYPE bds_job_queue_wait_seconds histogram
  # TYPE bds_job_retries counter
  # TYPE bds_job_run_seconds histogram
  # TYPE bds_jobs counter
  # TYPE bds_jobs_rejected counter
  # TYPE bds_outstanding_jobs gauge
  # TYPE bds_queue_depth gauge
  # TYPE bds_queue_depth_max gauge

Every terminal outcome is a labeled counter sample, labels sorted as
OpenMetrics requires:

  $ grep '^bds_jobs_total' exposition.txt
  bds_jobs_total{kind="busy",outcome="deadline_exceeded",tenant="alpha"} 1
  bds_jobs_total{kind="echo",outcome="completed",tenant="beta"} 1
  bds_jobs_total{kind="sum",outcome="completed",tenant="alpha"} 1

The per-tenant backlog gauges cover both tenants (drained to zero after
shutdown; the high-water mark survives):

  $ grep '^bds_queue_depth{' exposition.txt
  bds_queue_depth{tenant="alpha"} 0
  bds_queue_depth{tenant="beta"} 0

The Telemetry counters are bridged into the same exposition as unlabeled
totals, so one scrape carries both layers:

  $ grep -c '^# TYPE bds_runtime_' exposition.txt
  23

The exposition ends with the mandatory terminator (which doubles as the
METRICS wire terminator, see docs/SERVICE.md):

  $ tail -1 exposition.txt
  # EOF

The standalone validator accepts the file (the sample count varies with
how many histogram buckets were touched):

  $ bds_probe metrics-check exposition.txt | sed -E 's/[0-9]+ samples/N samples/'
  metrics ok: N samples

and rejects structural damage with the offending line:

  $ sed 's/bds_jobs_total{kind="busy",outcome="deadline_exceeded",tenant="alpha"} 1/bds_jobs_total{tenant="alpha",kind="busy"} 1/' exposition.txt > broken.txt
  $ bds_probe metrics-check broken.txt 2>&1 | sed -E 's/line [0-9]+/line N/'
  metrics invalid: line N: labels not sorted (or duplicated): tenant, kind

The flight-recorder dump validator speaks the same one-line contract:

  $ echo 'not json' > bad.json
  $ bds_probe flight-check bad.json
  flight invalid: not JSON: expected u at offset 1
  [1]
