The work/span profiler through bds_probe (docs/OBSERVABILITY.md
"Profiling").  `bds_probe report` force-enables profiling, runs a
map|scan|reduce pipeline (plus a filter|to_array tail, a float_sum over
the unboxed float lane, and a max_by/min_by pair) and prints the per-op
report.  Times and counts depend on the host, so they are normalised:
durations to T, other numbers to N/F.  The op set, the column layout
and the name-sorted row order are the interface — in particular,
float_sum, max_by and min_by appear under their own labels (max_by was
once misattributed to reduce; ISSUE 7).

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe report \
  >   | sed -E 's/[0-9]+\.?[0-9]*(ns|us|ms|s)\b/T/g; s/[0-9]+\.[0-9]+/F/g; s/[0-9]+/N/g'
  profile report (N workers)
  op calls chunks pN pN work span parallelism utilization
  filter N N T T T T F F
  float_sum N N T T T T F F
  map N N T T T T F F
  max_by N N T T T T F F
  min_by N N T T T T F F
  reduce N N T T T T F F
  scan N N T T T T F F
  tabulate N N T T T T F F
  to_array N N T T T T F F

Delayed constructors (map, tabulate) report ~no work of their own: their
cost lands in the eager consumer that drives them (the paper's cost
semantics), which the zero chunks above make visible.

The JSON form has one object per op with the same fields CI artifacts
consume:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe report --json \
  >   | sed -E 's/:-?[0-9]+\.?[0-9]*/:N/g'
  {"workers":N,"ops":[{"name":"filter","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"float_sum","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"map","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"max_by","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"min_by","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"reduce","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"scan","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"tabulate","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N},{"name":"to_array","calls":N,"chunks":N,"wall_ns":N,"work_ns":N,"span_ns":N,"p50_ns":N,"p99_ns":N,"max_chunk_ns":N,"parallelism":N,"utilization":N,"tiny_fraction":N}]}

Forcing tiny blocks trips the Cilkview-style grain diagnostic (the
warning names the knobs to raise).  Which ops cross the 25% threshold
depends on per-op constant factors, so only the reduce warning — whose
64-element integer-fold leaves are tiny beyond doubt — is pinned.  One
domain, because the fraction is time-weighted: with two domains on a
loaded one-core host, a single multi-ms preempted chunk can outweigh
thousands of sub-microsecond ones and suppress the warning:

  $ BDS_NUM_DOMAINS=1 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=64 bds_probe report \
  >   | sed -E 's/[0-9]+\.?[0-9]*(ns|us|ms|s)\b/T/g; s/[0-9]+\.[0-9]+/F/g; s/[0-9]+/N/g' \
  >   | grep 'warning: reduce'
  warning: reduce: chunks too small: N% of chunk time < T (raise BDS_GRAIN / BDS_BLOCK_SIZE)
