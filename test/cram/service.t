The job-service probe drives one fixed scenario through a single-runner
service with capacity 2 and prints the per-outcome jobs_* telemetry
counters.  Every line is forced by construction (see bds_probe.ml): the
busy job's 50ms deadline expires long before its 2s spin would finish,
the queued sum runs to completion, the third submission exceeds capacity
and is shed with a typed rejection, and the fail-twice job succeeds on
its third attempt — so the output is pinned exactly, with no
normalisation.

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe jobs
  jobs probe:
    busy -> deadline_exceeded
    sum -> completed
    overflow -> rejected overloaded
    fail -> completed (retries=2)
  telemetry:
    jobs_admitted=3
    jobs_completed=2
    jobs_cancelled=0
    jobs_deadline_exceeded=1
    jobs_failed=0
    jobs_retried=2
    jobs_shed=1
    jobs_retries_shed=0

The counters partition admitted jobs by outcome: completed +
deadline_exceeded + failed + cancelled = admitted, and the shed
submission is counted in jobs_shed without ever being admitted.  The
fail job's k=2 transient faults surface as jobs_retried=2, and with a
healthy (closed) breaker none of those retries are shed.
