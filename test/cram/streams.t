Stream execution-path counters (docs/STREAMS.md).

`bds_probe streams` drives fixed Seq pipelines and reports, per
pipeline, how many Stream consumers took the fused push path vs the
trickle fallback.  With the block grid pinned (n=8000, block size 1000
-> 8 blocks) the counts are exact: counter diffs are taken after the
parallel scope joins, so every per-block increment is published.

A plain map-reduce pipeline (iota |> scan_incl |> map |> reduce) must
report ZERO trickle fallbacks: scan_incl's phase 1 folds the 8 input
blocks and the final reduce folds the 8 mapped blocks, all bottoming
out in the native push loops of tabulate/of_array_slice.

Since the skip-push filter and nested-push flatten landed, the
filter/flatten pipelines are fused end to end as well.  filter-reduce:
8 survivor-mask folds + 4 selected_region output blocks = 12 fused, 0
trickle.  flatten-filter-reduce (iota |> flat_map |> filter |> reduce,
16000 flattened elements): 8 outer-spine block iterations collecting
the inner sequences + 16 mask folds over the of_segments region
blocks + 8 selected_region output blocks = 32 fused, 0 trickle.  The
shared-consumer scenario reduces one scan output twice: the second
consumer forces the memo exactly once (shared_forces=1) instead of
re-running the producer, and both reduces stay on the push path:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=1000 bds_probe streams
  map-reduce: sum=170666664000 fused_folds=16 trickle_fallbacks=0
  filter-reduce: sum=15996000 fused_folds=12 trickle_fallbacks=0
  flatten-filter-reduce: sum=32000000 fused_folds=32 trickle_fallbacks=0
  shared-consumer: sum=85333332000 max=31996000 shared_forces=1 trickle_fallbacks=0
