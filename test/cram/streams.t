Stream execution-path counters (docs/STREAMS.md).

`bds_probe streams` drives two fixed Seq pipelines and reports, per
pipeline, how many Stream consumers took the fused push path vs the
trickle fallback.  With the block grid pinned (n=8000, block size 1000
-> 8 blocks) the counts are exact: counter diffs are taken after the
parallel scope joins, so every per-block increment is published.

A plain map-reduce pipeline (iota |> scan_incl |> map |> reduce) must
report ZERO trickle fallbacks: scan_incl's phase 1 folds the 8 input
blocks and the final reduce folds the 8 mapped blocks, all bottoming
out in the native push loops of tabulate/of_array_slice.

A filtered reduce is the honest counter-case: packing the 8 input
blocks is push-fused, but the filtered sequence's 4000 survivors are
exposed through get_region streams (blocks straddle the packed
subsequences), so reducing its 4 blocks falls back to the trickle:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= BDS_BLOCK_SIZE=1000 bds_probe streams
  map-reduce: sum=170666664000 fused_folds=16 trickle_fallbacks=0
  filter-reduce: sum=15996000 fused_folds=8 trickle_fallbacks=4
