Scheduler telemetry and trace observability through bds_probe
(docs/OBSERVABILITY.md).

`bds_probe stats` appends the telemetry counters for its own liveness
reduction to the classic probe output.  The key set and order are part
of the interface (consumers parse `key=value` lines); the values depend
on scheduling, so they are normalised to N here.  Chaos is pinned off so
the chaos_injections counter stays meaningful:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe stats | sed -E 's/=[0-9]+$/=N/'
  workers=N
  chaos: off
  sum(0..99999)=N
  telemetry:
    tasks_spawned=N
    steal_attempts=N
    steals=N
    overflow_pushes=N
    chunks_executed=N
    cancel_polls=N
    cancel_trips=N
    chaos_injections=N
    fused_folds=N
    trickle_fallbacks=N
    float_fast_path=N
    float_boxed_fallback=N
    shared_forces=N
    jobs_admitted=N
    jobs_completed=N
    jobs_cancelled=N
    jobs_deadline_exceeded=N
    jobs_failed=N
    jobs_retried=N
    jobs_shed=N
    jobs_retries_shed=N
    adapt_adjustments=N
    adapt_probes=N

With BDS_TRACE set, the probe writes a Chrome-trace JSON at pool
teardown; `bds_probe trace-check` validates it (the same shape Perfetto
loads) and reports the event count:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE=probe-trace.json bds_probe > /dev/null
  $ bds_probe trace-check probe-trace.json | sed -E 's/[0-9]+/N/'
  trace ok: N events

A trace whose rings wrapped reports its drop count both per-track and
as a top-level `bdsDroppedEvents` field; `trace-check` surfaces it as a
warning, which `--strict` (what `make trace-smoke` uses) escalates to a
failing exit:

  $ cat > dropped.json <<'EOF'
  > {"traceEvents":[{"name":"x","ph":"M","pid":1,"tid":0}
  > ],"bdsDroppedEvents":7,"displayTimeUnit":"ms"}
  > EOF
  $ bds_probe trace-check dropped.json
  trace ok: 1 events
  warning: 7 events dropped (ring wrap-around); trace is incomplete
  $ bds_probe trace-check --strict dropped.json
  trace ok: 1 events
  warning: 7 events dropped (ring wrap-around); trace is incomplete
  [1]

The validator rejects files that are not Chrome traces:

  $ echo '{"events":[]}' > bad.json
  $ bds_probe trace-check bad.json
  trace invalid: missing "traceEvents" key
  [1]

Unknown sub-commands fail with usage:

  $ bds_probe frobnicate
  usage: bds_probe [stats [--json] | blocks | streams | floats | report [--json] [--large] | trace-check [--strict] FILE | trace-count FILE NAME | jobs | grain | metrics | metrics-check FILE | flight-check FILE [MIN]]
  [2]

`bds_probe stats --json` emits the same counters as one machine-readable
object (the format CI artifacts and bench_compare share), versioned and
stamped with the process uptime like the STATS wire payload:

  $ BDS_NUM_DOMAINS=2 BDS_CHAOS='' BDS_TRACE= bds_probe stats --json | sed -E 's/:[0-9]+/:N/g'
  {"schema_version":N,"uptime_ns":N,"workers":N,"counters":{"tasks_spawned":N,"steal_attempts":N,"steals":N,"overflow_pushes":N,"chunks_executed":N,"cancel_polls":N,"cancel_trips":N,"chaos_injections":N,"fused_folds":N,"trickle_fallbacks":N,"float_fast_path":N,"float_boxed_fallback":N,"shared_forces":N,"jobs_admitted":N,"jobs_completed":N,"jobs_cancelled":N,"jobs_deadline_exceeded":N,"jobs_failed":N,"jobs_retried":N,"jobs_shed":N,"jobs_retries_shed":N,"adapt_adjustments":N,"adapt_probes":N}}
