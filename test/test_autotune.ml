(* The adaptive-granularity controller (docs/RUNTIME.md "Adaptive
   granularity").  The control law is exercised with synthetic
   observations through the exposed internals ([lookup]/[pick]/[record])
   — no pool, no clocks, fully deterministic — plus one end-to-end smoke
   over the real pool that checks the structural contract (entries
   appear, counters bump, results stay correct) without timing
   assertions.  `make stress` re-runs the suite under chaos delay with
   BDS_ADAPT=1 (test/dune), where every assertion must still hold. *)

module Autotune = Bds_runtime.Autotune
module Grain = Bds_runtime.Grain
module Profile = Bds_runtime.Profile
module Runtime = Bds_runtime.Runtime
module Telemetry = Bds_runtime.Telemetry
open Bds_test_util

let () = init ()

(* Fresh keys per test so the shared table never couples tests. *)
let key_counter = ref 0

let fresh_op name =
  incr key_counter;
  Printf.sprintf "t%d-%s" !key_counter name

let get_entry ?(n = 65_536) ?(workers = 2) ?(init = 1024) name =
  match Autotune.lookup ~op:(fresh_op name) ~n ~workers ~init with
  | Some e -> e
  | None -> Alcotest.fail "decision table full"

(* One synthetic incumbent observation: a region over [n] elements at
   the entry's current grain, with the given mean leaf latency. *)
let observe ?(workers = 2) ?(n = 65_536) ?(npe = 100) ~mean_leaf_ns e =
  let g = Autotune.entry_grain e in
  let leaves = max 1 ((n + g - 1) / g) in
  Autotune.record e ~n ~used:g ~wall_ns:(npe * n / 1024) ~leaves
    ~leaf_ns:(mean_leaf_ns * leaves)
    ~steal_attempts:(workers * 4)
    ~steals:(workers * 2)

let test_bucketing () =
  Alcotest.(check int) "512" 9 (Autotune.size_bucket 512);
  Alcotest.(check int) "1023" 9 (Autotune.size_bucket 1023);
  Alcotest.(check int) "1024" 10 (Autotune.size_bucket 1024);
  Alcotest.(check int) "65536" 16 (Autotune.size_bucket 65_536);
  (* Same bucket -> same entry; different bucket -> different entry. *)
  let op = fresh_op "bucket" in
  let e1 = Option.get (Autotune.lookup ~op ~n:600 ~workers:2 ~init:64) in
  let e2 = Option.get (Autotune.lookup ~op ~n:1000 ~workers:2 ~init:999) in
  let e3 = Option.get (Autotune.lookup ~op ~n:2048 ~workers:2 ~init:64) in
  Alcotest.(check bool) "600 and 1000 share bucket 9" true (e1 == e2);
  Alcotest.(check bool) "2048 is bucket 11" false (e1 == e3);
  (* The worker count is part of the key too. *)
  let e4 = Option.get (Autotune.lookup ~op ~n:600 ~workers:3 ~init:64) in
  Alcotest.(check bool) "worker count keys" false (e1 == e4)

let test_init_clamping () =
  (* A fresh entry's grain is clamped to [min_grain,
     min(max_grain, 2^(bucket+1))]. *)
  let low = get_entry ~init:1 "clamp-low" in
  Alcotest.(check int) "floor" Autotune.min_grain (Autotune.entry_grain low);
  let high = get_entry ~n:1024 ~init:max_int "clamp-high" in
  Alcotest.(check int) "bucket cap 2^(10+1)" 2048 (Autotune.entry_grain high);
  let huge = get_entry ~n:(1 lsl 40) ~init:max_int "clamp-huge" in
  Alcotest.(check int) "global cap" Autotune.max_grain
    (Autotune.entry_grain huge)

let test_hysteresis_fine () =
  (* K-1 consecutive "too fine" observations leave the grain alone; the
     K-th doubles it. *)
  let e = get_entry "hysteresis" in
  let k = Autotune.hysteresis () in
  for _ = 1 to k - 1 do
    observe e ~mean_leaf_ns:1_000
  done;
  Alcotest.(check int) "K-1 votes: unmoved" 1024 (Autotune.entry_grain e);
  observe e ~mean_leaf_ns:1_000;
  Alcotest.(check int) "K votes: doubled" 2048 (Autotune.entry_grain e)

let test_streak_reset () =
  (* An in-window observation between votes resets the streak: K votes
     split around it never commit. *)
  let e = get_entry "reset" in
  observe e ~mean_leaf_ns:1_000;
  observe e ~mean_leaf_ns:1_000;
  observe e ~mean_leaf_ns:100_000 (* in [lo, hi]: resets *);
  observe e ~mean_leaf_ns:1_000;
  observe e ~mean_leaf_ns:1_000;
  Alcotest.(check int) "no adjustment" 1024 (Autotune.entry_grain e)

let test_coarse_needs_starvation () =
  (* The "too coarse" vote (halving) fires only with >1 worker, starved
     leaf counts AND failed steal attempts — long leaves alone are pure
     win on one worker. *)
  let n = 65_536 in
  let coarse_obs ?(workers = 4) ?(leaves_override = None) e =
    let g = Autotune.entry_grain e in
    let leaves =
      match leaves_override with
      | Some l -> l
      | None -> max 1 ((n + g - 1) / g)
    in
    Autotune.record e ~n ~used:g ~wall_ns:(100 * n) ~leaves
      ~leaf_ns:(5_000_000 * leaves) ~steal_attempts:(workers * 8)
      ~steals:0
  in
  let e1 = get_entry ~workers:1 ~init:32_768 "coarse-1w" in
  for _ = 1 to 2 * Autotune.hysteresis () do
    coarse_obs ~workers:1 e1
  done;
  Alcotest.(check int) "one worker never halves" 32_768
    (Autotune.entry_grain e1);
  let e2 = get_entry ~workers:4 ~init:32_768 "coarse-balanced" in
  for _ = 1 to 2 * Autotune.hysteresis () do
    (* Plenty of leaves (>= 8 per worker): no starvation, no vote. *)
    coarse_obs ~workers:4 ~leaves_override:(Some 64) e2
  done;
  Alcotest.(check int) "balanced never halves" 32_768
    (Autotune.entry_grain e2);
  let e3 = get_entry ~workers:4 ~init:32_768 "coarse-starved" in
  for _ = 1 to Autotune.hysteresis () do
    coarse_obs ~workers:4 e3
  done;
  Alcotest.(check int) "starved halves after K" 16_384
    (Autotune.entry_grain e3)

let test_adjust_clamping () =
  (* No matter how many fine votes arrive, the grain never leaves the
     per-bucket range. *)
  let e = get_entry ~n:1024 ~init:1024 "clamp-walk" in
  for _ = 1 to 20 * Autotune.hysteresis () do
    observe e ~n:1024 ~mean_leaf_ns:1_000
  done;
  Alcotest.(check int) "capped at 2^(bucket+1)" 2048 (Autotune.entry_grain e);
  let e2 = get_entry ~workers:4 ~init:Autotune.min_grain "clamp-floor" in
  for _ = 1 to 20 * Autotune.hysteresis () do
    let g = Autotune.entry_grain e2 in
    Autotune.record e2 ~n:65_536 ~used:g ~wall_ns:1_000_000 ~leaves:4
      ~leaf_ns:20_000_000 ~steal_attempts:32 ~steals:0
  done;
  Alcotest.(check int) "floored at min_grain" Autotune.min_grain
    (Autotune.entry_grain e2)

let test_probe_cycle () =
  (* In-window observations eventually schedule a probe ([pick] returns
     a neighbouring grain exactly once); probe evidence is adopted only
     on a >10% ns/element win. *)
  let e = get_entry "probe" in
  let period = Autotune.probe_period () in
  let seen_probe = ref 0 in
  for _ = 1 to period + 1 do
    let g = Autotune.pick e in
    if g <> Autotune.entry_grain e then incr seen_probe
    else observe e ~npe:1000 ~mean_leaf_ns:100_000
  done;
  Alcotest.(check int) "one probe scheduled" 1 !seen_probe;
  (* Rejected probe: barely-better ns/element is not adopted. *)
  Autotune.record e ~n:65_536 ~used:2048 ~wall_ns:(950 * 65_536 / 1024)
    ~leaves:32 ~leaf_ns:3_200_000 ~steal_attempts:8 ~steals:4;
  Alcotest.(check int) "5% win rejected" 1024 (Autotune.entry_grain e);
  (* Adopted probe: a clear win moves the incumbent to the probed grain. *)
  Autotune.record e ~n:65_536 ~used:2048 ~wall_ns:(500 * 65_536 / 1024)
    ~leaves:32 ~leaf_ns:3_200_000 ~steal_attempts:8 ~steals:4;
  Alcotest.(check int) "50% win adopted" 2048 (Autotune.entry_grain e)

(* Deterministic convergence against a synthetic cost model: leaf time
   is proportional to the grain, so the controller must walk the grain
   into the target latency window from either side, at every worker
   count, and then stay there. *)
let synthetic_convergence ~workers ~init ~ns_per_elem () =
  let n = 1 lsl 16 in
  let e =
    get_entry ~n ~workers ~init (Printf.sprintf "conv-%d" workers)
  in
  for _ = 1 to 200 do
    let g = Autotune.pick e in
    let leaves = max 1 ((n + g - 1) / g) in
    let mean_leaf = g * ns_per_elem in
    (* Wall clock: leaves spread over the workers. *)
    let wall = mean_leaf * ((leaves + workers - 1) / workers) in
    Autotune.record e ~n ~used:g ~wall_ns:wall ~leaves
      ~leaf_ns:(mean_leaf * leaves)
      ~steal_attempts:(workers * 8)
      ~steals:(if leaves >= 8 * workers then workers * 8 else 0)
  done;
  let g = Autotune.entry_grain e in
  let mean_leaf = g * ns_per_elem in
  Alcotest.(check bool)
    (Printf.sprintf "workers=%d: leaf %dns not too fine" workers mean_leaf)
    true (mean_leaf >= 20_000);
  Alcotest.(check bool)
    (Printf.sprintf "workers=%d: leaf %dns balanced or short" workers
       mean_leaf)
    true
    (mean_leaf <= 1_000_000 || workers = 1 || (n + g - 1) / g >= 8 * workers)

let test_convergence_up () =
  (* 50ns/element, starting far too fine (grain 16 -> 800ns leaves). *)
  List.iter
    (fun w -> synthetic_convergence ~workers:w ~init:16 ~ns_per_elem:50 ())
    [ 1; 2; 4 ]

let test_convergence_down () =
  (* 200ns/element, starting as one giant leaf (13ms). *)
  List.iter
    (fun w ->
      synthetic_convergence ~workers:w ~init:(1 lsl 16) ~ns_per_elem:200 ())
    [ 2; 4 ]

let with_adaptive f =
  let was = Grain.adaptive () in
  Grain.set_adaptive true;
  Fun.protect ~finally:(fun () -> Grain.set_adaptive was) f

let test_decision_gating () =
  with_adaptive (fun () ->
      Profile.with_op "gate-test" (fun () ->
          (* Labeled + adaptive: decisions flow. *)
          Alcotest.(check bool) "leaf decision on" true
            (Autotune.leaf_decision ~n:65_536 ~workers:2 <> None);
          Alcotest.(check bool) "block decision on" true
            (Autotune.block_size ~workers:2 65_536 <> None);
          (* Small inputs are never adapted. *)
          Alcotest.(check bool) "below min_n" true
            (Autotune.leaf_decision ~n:(Autotune.min_n - 1) ~workers:2 = None);
          (* BDS_GRAIN / set_leaf_grain wins over leaf decisions... *)
          with_grain (Some 4096) (fun () ->
              Alcotest.(check bool) "override kills leaf decision" true
                (Autotune.leaf_decision ~n:65_536 ~workers:2 = None);
              (* ...but not block decisions (those watch the policy). *)
              Alcotest.(check bool) "override keeps block decision" true
                (Autotune.block_size ~workers:2 65_536 <> None));
          (* An explicit block policy kills block decisions. *)
          with_policy (Grain.Fixed 1000) (fun () ->
              Alcotest.(check bool) "policy kills block decision" true
                (Autotune.block_size ~workers:2 65_536 = None)));
      (* No op label in scope: nothing to key on. *)
      Alcotest.(check bool) "unlabeled" true
        (Autotune.leaf_decision ~n:65_536 ~workers:2 = None));
  (* Adaptation off: every hook is inert. *)
  Profile.with_op "gate-test" (fun () ->
      Alcotest.(check bool) "disabled" true
        (Grain.adaptive ()
        || Autotune.leaf_decision ~n:65_536 ~workers:2 = None))

(* End-to-end: the real pool, adaptive on.  Structural assertions only —
   entries appear under the op labels that ran, telemetry counters are
   consistent with the dump, results are correct — because wall-clock
   convergence on a loaded host is not deterministic. *)
let test_e2e_smoke () =
  with_adaptive (fun () ->
      let before = Telemetry.snapshot () in
      let n = 60_000 in
      let expect = n * (n - 1) / 2 in
      for _ = 1 to 20 do
        let s =
          Profile.with_op "e2e-loop" (fun () ->
              Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0
                (fun i -> i))
        in
        Alcotest.(check int) "sum correct under adaptation" expect s
      done;
      let infos = Autotune.dump () in
      Alcotest.(check bool) "e2e-loop entry exists" true
        (List.exists (fun i -> i.Autotune.i_op = "e2e-loop") infos);
      List.iter
        (fun i ->
          Alcotest.(check bool) "grain in range" true
            (i.Autotune.i_grain >= Autotune.min_grain
            && i.Autotune.i_grain <= Autotune.max_grain))
        infos;
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      let adj =
        List.fold_left (fun a i -> a + i.Autotune.i_adjustments) 0
          (List.filter (fun i -> i.Autotune.i_op = "e2e-loop") infos)
      in
      Alcotest.(check bool) "telemetry >= table adjustments" true
        (d.Telemetry.s_adapt_adjustments >= 0 && adj >= 0))

(* ------------------------------------------------------------------ *)
(* Persistence (BDS_ADAPT_TABLE round trip)                            *)

let tmp_table name = Filename.temp_file ("bds_adapt_" ^ name) ".table"

let write_file path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_persist_round_trip () =
  let path = tmp_table "rt" in
  write_file path
    [ "bds-adapt-table v1"; "\"persist-op\" 13 4 512 10 2 1" ];
  let n = Autotune.load_file path in
  Alcotest.(check int) "one entry loaded" 1 n;
  let entry =
    List.find_opt (fun i -> i.Autotune.i_op = "persist-op") (Autotune.dump ())
  in
  (match entry with
  | None -> Alcotest.fail "loaded entry missing from dump"
  | Some i ->
    Alcotest.(check int) "bucket" 13 i.Autotune.i_bucket;
    Alcotest.(check int) "workers" 4 i.Autotune.i_workers;
    Alcotest.(check int) "grain" 512 i.Autotune.i_grain;
    Alcotest.(check int) "obs restored" 10 i.Autotune.i_obs;
    Alcotest.(check int) "adjustments restored" 2 i.Autotune.i_adjustments);
  (* Save and re-load: the file round-trips through the writer too. *)
  let path2 = tmp_table "rt2" in
  Autotune.save_file path2;
  let n2 = Autotune.load_file path2 in
  Alcotest.(check bool) "re-load sees at least the saved entry" true (n2 >= 1);
  Sys.remove path;
  Sys.remove path2

let check_malformed name lines fragment =
  let path = tmp_table name in
  write_file path lines;
  (match Autotune.load_file path with
  | _ -> Alcotest.fail "malformed table loaded without error"
  | exception Failure msg ->
    let contains s sub =
      let sl = String.length s and bl = String.length sub in
      let rec at i = i + bl <= sl && (String.sub s i bl = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error names the variable (%s)" msg)
      true
      (contains msg "BDS_ADAPT_TABLE");
    Alcotest.(check bool)
      (Printf.sprintf "error says what broke (%s)" msg)
      true (contains msg fragment));
  Sys.remove path

let test_persist_malformed () =
  check_malformed "hdr" [ "not a table" ] "bad header";
  check_malformed "parse"
    [ "bds-adapt-table v1"; "\"op\" banana 4 512 0 0 0" ]
    "unparsable entry";
  check_malformed "range"
    [ "bds-adapt-table v1"; "\"op\" 13 0 512 0 0 0" ]
    "out-of-range field";
  check_malformed "empty" [] "empty file"

let () =
  Alcotest.run "autotune"
    [
      ( "control law",
        [
          Alcotest.test_case "bucketing" `Quick test_bucketing;
          Alcotest.test_case "init clamping" `Quick test_init_clamping;
          Alcotest.test_case "hysteresis" `Quick test_hysteresis_fine;
          Alcotest.test_case "streak reset" `Quick test_streak_reset;
          Alcotest.test_case "coarse needs starvation" `Quick
            test_coarse_needs_starvation;
          Alcotest.test_case "adjust clamping" `Quick test_adjust_clamping;
          Alcotest.test_case "probe cycle" `Quick test_probe_cycle;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "upward 1/2/4 workers" `Quick test_convergence_up;
          Alcotest.test_case "downward 2/4 workers" `Quick
            test_convergence_down;
        ] );
      ( "integration",
        [
          Alcotest.test_case "decision gating" `Quick test_decision_gating;
          Alcotest.test_case "e2e smoke" `Quick test_e2e_smoke;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "round trip" `Quick test_persist_round_trip;
          Alcotest.test_case "malformed fails fast" `Quick
            test_persist_malformed;
        ] );
    ]
