(* Block-size policy B(n). *)

module Block = Bds.Block
open Bds_test_util

let () = init ()

let test_fixed () =
  with_policy (Block.Fixed 37) (fun () ->
      Alcotest.(check int) "fixed" 37 (Block.size 1_000_000);
      Alcotest.(check int) "fixed small n" 37 (Block.size 3);
      Alcotest.(check int) "empty" 1 (Block.size 0))

let test_scaled_clamps () =
  with_policy
    (Block.Scaled { per_worker_blocks = 8; min_size = 100; max_size = 1000 })
    (fun () ->
      let p = Bds_runtime.Runtime.num_workers () in
      Alcotest.(check int) "clamped below" 100 (Block.size 10);
      Alcotest.(check int) "clamped above" 1000 (Block.size 100_000_000);
      let mid = 8 * p * 500 in
      Alcotest.(check int) "in range" 500 (Block.size mid))

let test_invalid_policies () =
  (* The policy now lives in the unified granularity layer, so the
     messages name Grain. *)
  Alcotest.check_raises "fixed 0"
    (Invalid_argument "Grain.set_policy: Fixed size must be >= 1") (fun () ->
      Block.set_policy (Block.Fixed 0));
  Alcotest.check_raises "bad scaled"
    (Invalid_argument "Grain.set_policy: invalid Scaled parameters") (fun () ->
      Block.set_policy
        (Block.Scaled { per_worker_blocks = 1; min_size = 10; max_size = 5 }))

let test_num_blocks () =
  Alcotest.(check int) "exact" 4 (Block.num_blocks ~block_size:25 100);
  Alcotest.(check int) "round up" 5 (Block.num_blocks ~block_size:24 100);
  Alcotest.(check int) "one" 1 (Block.num_blocks ~block_size:1000 100);
  Alcotest.(check int) "zero" 0 (Block.num_blocks ~block_size:10 0)

let test_reset_and_get () =
  Block.set_policy (Block.Fixed 5);
  Alcotest.(check bool) "get reflects set" true (Block.get_policy () = Block.Fixed 5);
  Block.reset_policy ();
  Alcotest.(check bool) "reset" true (Block.get_policy () = Block.default_policy)

let () =
  Alcotest.run "block"
    [
      ( "policy",
        [
          Alcotest.test_case "fixed" `Quick test_fixed;
          Alcotest.test_case "scaled clamps" `Quick test_scaled_clamps;
          Alcotest.test_case "invalid" `Quick test_invalid_policies;
          Alcotest.test_case "num_blocks" `Quick test_num_blocks;
          Alcotest.test_case "reset/get" `Quick test_reset_and_get;
        ] );
    ]
