(* Cost semantics (Figure 11): model self-consistency, the Figure 5
   read/write table, the §5.1 BFS bounds, and model-vs-reality checks
   against measured allocations of the actual library. *)

module CM = Bds.Cost_model
module S = Bds.Seq
open Bds_test_util

let () = init ()

let b = 64 (* model block size *)

(* ------------------------------------------------------------------ *)
(* Figure 11 rows                                                      *)

let test_tabulate_map_delay_costs () =
  let x, c = CM.tabulate 1000 CM.simple in
  Alcotest.(check int) "tabulate eager work" 1 c.work;
  Alcotest.(check int) "tabulate eager alloc" 0 c.alloc;
  Alcotest.(check bool) "tabulate RAD" true (x.repr = `Rad);
  let y, c2 = CM.map CM.simple x in
  Alcotest.(check int) "map eager work" 1 c2.work;
  Alcotest.(check int) "map accumulates delayed work" 2 (y.dwork 17);
  let z, _ = CM.map (CM.const_fn 3) y in
  Alcotest.(check int) "second map accumulates" 5 (z.dwork 17)

let test_force_costs () =
  let x, _ = CM.tabulate 1000 (CM.const_fn 2) in
  let y, c = CM.force ~block_size:b x in
  Alcotest.(check int) "force work = sum delayed" 2000 c.work;
  (* bmax: blocks of 64 indices, 2 span units each. *)
  Alcotest.(check int) "force span = bmax" 128 c.span;
  Alcotest.(check int) "force alloc = |X|" 1000 c.alloc;
  Alcotest.(check int) "forced is cheap" 1 (y.dwork 0);
  Alcotest.(check bool) "forced is RAD" true (y.repr = `Rad)

let test_scan_reduce_costs () =
  let x, _ = CM.tabulate 1000 CM.simple in
  let y, c = CM.scan ~block_size:b x in
  Alcotest.(check int) "scan eager work" 1000 c.work;
  Alcotest.(check int) "scan eager alloc = n/B" ((1000 + b - 1) / b) c.alloc;
  Alcotest.(check bool) "scan output BID" true (y.repr = `Bid);
  Alcotest.(check int) "scan delayed work" 2 (y.dwork 5);
  let c2 = CM.reduce ~block_size:b x in
  Alcotest.(check int) "reduce eager work" 1000 c2.work;
  Alcotest.(check int) "reduce alloc = n/B" ((1000 + b - 1) / b) c2.alloc

let test_filter_costs () =
  let x, _ = CM.tabulate 1000 CM.simple in
  let y, c = CM.filter ~block_size:b ~out_len:250 CM.simple x in
  Alcotest.(check int) "filter eager work" 2000 c.work;
  Alcotest.(check int) "filter alloc = |Y| + n/B" (250 + ((1000 + b - 1) / b)) c.alloc;
  Alcotest.(check bool) "filter output BID" true (y.repr = `Bid);
  Alcotest.(check int) "filter out length" 250 y.len

let test_zip_costs () =
  let x, _ = CM.tabulate 100 (CM.const_fn 2) in
  let y, _ = CM.tabulate 100 (CM.const_fn 3) in
  let z, c = CM.zip x y in
  Alcotest.(check int) "zip eager O(1)" 1 c.work;
  Alcotest.(check int) "zip delayed sums" 6 (z.dwork 0);
  Alcotest.(check bool) "RAD when both RAD" true (z.repr = `Rad);
  let b, _ = CM.scan ~block_size:16 x in
  let z2, _ = CM.zip x b in
  Alcotest.(check bool) "BID when one BID" true (z2.repr = `Bid)

let test_flatten_costs () =
  let outer, _ = CM.tabulate 10 CM.simple in
  let inners =
    Array.init 10 (fun i -> fst (CM.tabulate (i * 3) (CM.const_fn (i + 1))))
  in
  let y, c = CM.flatten ~block_size:b outer inners in
  Alcotest.(check int) "flatten total length" 135 y.len;
  Alcotest.(check int) "flatten eager work = outer" 10 c.work;
  Alcotest.(check int) "flatten eager alloc = |X|" 10 c.alloc;
  (* Element 0 lives in inner 1 (inner 0 empty): delayed work = 2. *)
  Alcotest.(check int) "delayed carried from inner" 2 (y.dwork 0);
  (* Last element lives in inner 9: delayed work = 10. *)
  Alcotest.(check int) "delayed carried (last)" 10 (y.dwork 134)

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)

let test_figure5 () =
  let n = 1_000_000 and bb = 100 in
  let rows = CM.bestcut_rw ~n ~b:bb in
  let nr, nw, fr, fw = CM.rw_totals rows in
  (* Totals from the paper: 8n + O(b) vs 2n + O(b). *)
  Alcotest.(check int) "normal total" ((8 * n) + (5 * bb) + 1) (nr + nw);
  Alcotest.(check int) "fused total" ((2 * n) + (6 * bb) + 1) (fr + fw);
  let ratio = float_of_int (nr + nw) /. float_of_int (fr + fw) in
  Alcotest.(check bool) "~4x fewer memory ops" true (ratio > 3.9 && ratio < 4.1);
  (* Phase structure: 6 rows, three fused away. *)
  Alcotest.(check int) "rows" 6 (List.length rows);
  Alcotest.(check int) "fused-away phases" 3
    (List.length (List.filter (fun r -> r.CM.fused_reads = None) rows))

(* The same pipeline expressed with Figure 11 operations: the fused
   best-cut allocates O(b) while the force-everything version allocates
   O(n). *)
let test_bestcut_alloc_model () =
  let n = 100_000 in
  let total = ref CM.zero_cost in
  let track (s, c) =
    total := CM.add_cost !total c;
    s
  in
  (* Fused: tabulate -> map -> scan -> map -> reduce, all delayed. *)
  let x = track (CM.tabulate n CM.simple) in
  let x = track (CM.map CM.simple x) in
  let x = track (CM.scan ~block_size:b x) in
  let x = track (CM.map CM.simple x) in
  total := CM.add_cost !total (CM.reduce ~block_size:b x);
  let fused_alloc = !total.alloc in
  (* Unfused: force after every operation (the array library). *)
  total := CM.zero_cost;
  let x = track (CM.tabulate n CM.simple) in
  let x = track (CM.force ~block_size:b x) in
  let x = track (CM.map CM.simple x) in
  let x = track (CM.force ~block_size:b x) in
  let x = track (CM.scan ~block_size:b x) in
  let x = track (CM.force ~block_size:b x) in
  let x = track (CM.map CM.simple x) in
  let x = track (CM.force ~block_size:b x) in
  total := CM.add_cost !total (CM.reduce ~block_size:b x);
  let unfused_alloc = !total.alloc in
  (* Per Figure 11: fused = n + 2⌈n/B⌉ (the scan's phase-3 stream charges
     one delayed word per element); unfused = 5n + 2⌈n/B⌉. *)
  Alcotest.(check int) "fused alloc" (n + (2 * ((n + b - 1) / b))) fused_alloc;
  Alcotest.(check int) "unfused alloc" ((5 * n) + (2 * ((n + b - 1) / b))) unfused_alloc;
  let ratio = float_of_int unfused_alloc /. float_of_int fused_alloc in
  Alcotest.(check bool) "~5x less allocation when fused" true
    (ratio > 4.0 && ratio < 6.0)

(* ------------------------------------------------------------------ *)
(* §5.1 BFS bounds                                                     *)

let test_bfs_alloc_bound () =
  (* Synthetic BFS trace: frontiers partition N vertices; edge
     expansions partition M edge endpoints. *)
  let block_size = 1000 in
  let rounds =
    [ (1, 50, 10); (10, 500, 100); (100, 5000, 889); (889, 44450, 0) ]
  in
  let total_n = List.fold_left (fun a (f, _, _) -> a + f) 0 rounds in
  let total_m = List.fold_left (fun a (_, e, _) -> a + e) 0 rounds in
  let alloc = CM.bfs_total_alloc ~block_size rounds in
  (* O(N + M/B): allow constant 2 on N (frontier + next-frontier) plus
     rounding slack per round. *)
  let bound = (2 * total_n) + (total_m / block_size) + (4 * List.length rounds) in
  Alcotest.(check bool)
    (Printf.sprintf "alloc %d within O(N + M/B) bound %d" alloc bound)
    true (alloc <= bound);
  (* And far below the naive O(N + M). *)
  Alcotest.(check bool) "well below O(N+M)" true (alloc * 10 < total_n + total_m)

(* ------------------------------------------------------------------ *)
(* Model vs measured allocations of the real library                   *)

(* Measure allocated words on a single-domain pool (so all allocation is
   on the calling domain and [Gc.allocated_bytes] is exact). *)
let measure_alloc f =
  Bds_runtime.Runtime.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Bds_runtime.Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      ignore (f ());
      (* warm-up evaluated; measure second run *)
      let before = Gc.allocated_bytes () in
      ignore (Sys.opaque_identity (f ()));
      Gc.allocated_bytes () -. before)

let test_measured_alloc_reduce () =
  let n = 300_000 in
  let delayed () = S.reduce ( + ) 0 (S.map (fun x -> x * 2) (S.iota n)) in
  let arr () =
    Bds_parray.Parray.reduce ( + ) 0
      (Bds_parray.Parray.map (fun x -> x * 2) (Bds_parray.Parray.iota n))
  in
  let da = measure_alloc delayed in
  let aa = measure_alloc arr in
  (* The array version materialises two n-word arrays; the delayed version
     allocates O(n/B) block sums. The model predicts a large gap. *)
  Alcotest.(check bool)
    (Printf.sprintf "delayed alloc %.0fB << array alloc %.0fB" da aa)
    true
    (da *. 4.0 < aa)

let test_measured_alloc_scan_pipeline () =
  let n = 300_000 in
  let delayed () =
    let sc, _ = S.scan ( + ) 0 (S.map (fun x -> x land 7) (S.iota n)) in
    S.reduce ( + ) 0 (S.map (fun x -> x + 1) sc)
  in
  let arr () =
    let open Bds_parray.Parray in
    let sc, _ = scan ( + ) 0 (map (fun x -> x land 7) (iota n)) in
    reduce ( + ) 0 (map (fun x -> x + 1) sc)
  in
  (* Same results... *)
  Bds_runtime.Runtime.set_num_domains 1;
  let r1 = delayed () and r2 = arr () in
  Bds_runtime.Runtime.set_num_domains Bds_test_util.domains;
  Alcotest.(check int) "same result" r2 r1;
  (* ...wildly different allocation. *)
  let da = measure_alloc delayed in
  let aa = measure_alloc arr in
  Alcotest.(check bool)
    (Printf.sprintf "fused scan alloc %.0fB << array %.0fB" da aa)
    true
    (da *. 4.0 < aa)

let () =
  Alcotest.run "cost_model"
    [
      ( "figure 11",
        [
          Alcotest.test_case "tabulate/map" `Quick test_tabulate_map_delay_costs;
          Alcotest.test_case "force" `Quick test_force_costs;
          Alcotest.test_case "scan/reduce" `Quick test_scan_reduce_costs;
          Alcotest.test_case "zip" `Quick test_zip_costs;
          Alcotest.test_case "filter" `Quick test_filter_costs;
          Alcotest.test_case "flatten" `Quick test_flatten_costs;
        ] );
      ( "figure 5",
        [
          Alcotest.test_case "read/write table" `Quick test_figure5;
          Alcotest.test_case "bestcut alloc model" `Quick test_bestcut_alloc_model;
        ] );
      ("bfs (§5.1)", [ Alcotest.test_case "alloc bound" `Quick test_bfs_alloc_bound ]);
      ( "model vs reality",
        [
          Alcotest.test_case "map+reduce alloc" `Quick test_measured_alloc_reduce;
          Alcotest.test_case "scan pipeline alloc" `Quick test_measured_alloc_scan_pipeline;
        ] );
    ]
