(* Data substrate: RNG determinism and generator statistics. *)

module Splitmix = Bds_data.Splitmix
module Gen = Bds_data.Gen
open Bds_test_util

let () = init ()

let test_splitmix_deterministic () =
  Alcotest.(check bool) "same seed same stream" true
    (List.init 100 (Splitmix.at ~seed:5) = List.init 100 (Splitmix.at ~seed:5));
  Alcotest.(check bool) "different seeds differ" true
    (List.init 100 (Splitmix.at ~seed:5) <> List.init 100 (Splitmix.at ~seed:6));
  Alcotest.(check bool) "different indices differ" true
    (Splitmix.at ~seed:5 0 <> Splitmix.at ~seed:5 1)

let test_splitmix_ranges () =
  for i = 0 to 10_000 do
    let v = Splitmix.int_range_at ~seed:3 ~bound:17 i in
    if v < 0 || v >= 17 then Alcotest.failf "int_range out of range: %d" v;
    let f = Splitmix.float_at ~seed:3 i in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    if Splitmix.int_at ~seed:3 i < 0 then Alcotest.fail "negative int_at"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Splitmix.int_range_at")
    (fun () -> ignore (Splitmix.int_range_at ~seed:1 ~bound:0 3))

let test_splitmix_uniformity () =
  (* Coarse chi-square-ish sanity: 10 buckets over 100k draws. *)
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for i = 0 to n - 1 do
    let b = int_of_float (Splitmix.float_at ~seed:9 i *. 10.0) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d count %d too far from %d" i c (n / 10))
    buckets

let test_split_and_mix () =
  let s1, s2 = Splitmix.split 7 in
  Alcotest.(check bool) "split streams differ" true
    (List.init 50 (Splitmix.at ~seed:s1) <> List.init 50 (Splitmix.at ~seed:s2));
  Alcotest.(check bool) "split deterministic" true (Splitmix.split 7 = (s1, s2));
  Alcotest.(check bool) "mix is not identity" true (Splitmix.mix 1L <> 1L);
  Alcotest.(check bool) "mix deterministic" true (Splitmix.mix 99L = Splitmix.mix 99L)

let test_floats_points () =
  let a = Gen.floats ~seed:1 ~lo:2.0 ~hi:3.0 1000 in
  Array.iter (fun x -> if x < 2.0 || x >= 3.0 then Alcotest.fail "float range") a;
  let pts = Gen.points_in_circle ~seed:2 1000 in
  Array.iter
    (fun (x, y) ->
      if (x *. x) +. (y *. y) > 1.0 +. 1e-9 then Alcotest.fail "outside circle")
    pts;
  let s = Gen.signed_ints ~seed:3 ~bound:50 1000 in
  Array.iter (fun v -> if v < -50 || v >= 50 then Alcotest.fail "signed range") s;
  Alcotest.(check bool) "some negative" true (Array.exists (fun v -> v < 0) s);
  Alcotest.(check bool) "some positive" true (Array.exists (fun v -> v > 0) s)

let test_text_statistics () =
  let n = 200_000 in
  let text = Gen.text ~seed:4 n in
  let words = ref 0 and word_chars = ref 0 and in_word = ref false in
  Bytes.iter
    (fun c ->
      let sp = c = ' ' || c = '\n' in
      if not sp then begin
        incr word_chars;
        if not !in_word then incr words
      end;
      in_word := not sp)
    text;
  let avg = float_of_int !word_chars /. float_of_int !words in
  (* The paper's corpus averages ~7 chars/word; accept a broad band. *)
  Alcotest.(check bool)
    (Printf.sprintf "avg word length %.2f in [4, 10]" avg)
    true
    (avg >= 4.0 && avg <= 10.0)

let test_text_with_pattern () =
  let n = 200_000 in
  let text = Gen.text_with_pattern ~seed:5 ~pattern:"needle" ~frac_matching:0.05 n in
  let matched = ref 0 and lines = ref 0 in
  let i = ref 0 in
  let contains line =
    let rec go k =
      k + 6 <= String.length line && (String.sub line k 6 = "needle" || go (k + 1))
    in
    go 0
  in
  while !i < n do
    let start = !i in
    while !i < n && Bytes.get text !i <> '\n' do
      incr i
    done;
    incr lines;
    if contains (Bytes.sub_string text start (!i - start)) then incr matched;
    incr i
  done;
  let frac = float_of_int !matched /. float_of_int !lines in
  Alcotest.(check bool)
    (Printf.sprintf "matching fraction %.3f in [0.02, 0.10]" frac)
    true
    (frac >= 0.02 && frac <= 0.10)

let test_sparse_matrix () =
  let m = Gen.sparse_matrix ~seed:6 ~rows:100 ~cols:50 ~nnz_per_row:5 () in
  Alcotest.(check int) "offsets length" 101 (Array.length m.Gen.row_offsets);
  Alcotest.(check int) "offsets start" 0 m.Gen.row_offsets.(0);
  for r = 0 to 99 do
    if m.Gen.row_offsets.(r + 1) < m.Gen.row_offsets.(r) then
      Alcotest.fail "offsets not monotone"
  done;
  Alcotest.(check int) "nnz consistent" m.Gen.row_offsets.(100)
    (Array.length m.Gen.col_index);
  Array.iter
    (fun c -> if c < 0 || c >= 50 then Alcotest.fail "col out of range")
    m.Gen.col_index

let test_bignum_digits () =
  let b = Gen.bignum_digits ~seed:7 1000 in
  Alcotest.(check int) "length" 1000 (Bytes.length b);
  Alcotest.(check bool) "deterministic" true (Gen.bignum_digits ~seed:7 1000 = b);
  Alcotest.(check bool) "varies" true (Gen.bignum_digits ~seed:8 1000 <> b)

let () =
  Alcotest.run "data"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "ranges" `Quick test_splitmix_ranges;
          Alcotest.test_case "uniformity" `Quick test_splitmix_uniformity;
          Alcotest.test_case "split/mix" `Quick test_split_and_mix;
        ] );
      ( "generators",
        [
          Alcotest.test_case "floats/points" `Quick test_floats_points;
          Alcotest.test_case "text statistics" `Quick test_text_statistics;
          Alcotest.test_case "text with pattern" `Quick test_text_with_pattern;
          Alcotest.test_case "sparse matrix" `Quick test_sparse_matrix;
          Alcotest.test_case "bignum digits" `Quick test_bignum_digits;
        ] );
    ]
