(* Chase-Lev deque: sequential semantics and concurrent stress. *)

module D = Bds_runtime.Ws_deque

let test_lifo_pop () =
  let q = D.create () in
  for i = 0 to 9 do
    D.push q i
  done;
  for i = 9 downto 0 do
    Alcotest.(check (option int)) "pop order" (Some i) (D.pop q)
  done;
  Alcotest.(check (option int)) "empty" None (D.pop q)

let test_fifo_steal () =
  let q = D.create () in
  for i = 0 to 9 do
    D.push q i
  done;
  for i = 0 to 9 do
    Alcotest.(check (option int)) "steal order" (Some i) (D.steal q)
  done;
  Alcotest.(check (option int)) "empty" None (D.steal q)

let test_mixed () =
  let q = D.create () in
  D.push q 1;
  D.push q 2;
  D.push q 3;
  Alcotest.(check (option int)) "steal oldest" (Some 1) (D.steal q);
  Alcotest.(check (option int)) "pop newest" (Some 3) (D.pop q);
  Alcotest.(check (option int)) "last" (Some 2) (D.pop q);
  Alcotest.(check (option int)) "none" None (D.pop q)

let test_growth () =
  let q = D.create ~capacity:2 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    D.push q i
  done;
  Alcotest.(check int) "size" n (D.size q);
  (* Interleave: steal the front half, pop the back half. *)
  for i = 0 to (n / 2) - 1 do
    Alcotest.(check (option int)) "steal" (Some i) (D.steal q)
  done;
  for i = n - 1 downto n / 2 do
    Alcotest.(check (option int)) "pop" (Some i) (D.pop q)
  done;
  Alcotest.(check bool) "empty" true (D.is_empty q)

let test_invalid_capacity () =
  Alcotest.check_raises "non power of two" (Invalid_argument
    "Ws_deque.create: capacity must be a positive power of two")
    (fun () -> ignore (D.create ~capacity:3 ()))

(* Concurrent stress: one owner pushes then pops; several thieves steal.
   Every element must be consumed exactly once. *)
let test_concurrent_stress () =
  let q = D.create ~capacity:4 () in
  let n = 50_000 in
  let num_thieves = 3 in
  let seen = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    seen.(i) <- Atomic.make 0
  done;
  let consumed = Atomic.make 0 in
  let record v =
    Atomic.incr seen.(v);
    Atomic.incr consumed
  in
  let thief () =
    while Atomic.get consumed < n do
      match D.steal q with
      | Some v -> record v
      | None -> Domain.cpu_relax ()
    done
  in
  let thieves = Array.init num_thieves (fun _ -> Domain.spawn thief) in
  (* Owner: push everything, interleaving occasional pops. *)
  for i = 0 to n - 1 do
    D.push q i;
    if i land 7 = 0 then match D.pop q with Some v -> record v | None -> ()
  done;
  let rec drain () =
    match D.pop q with
    | Some v ->
      record v;
      drain ()
    | None -> ()
  in
  drain ();
  (* Thieves may still be racing for the last few elements. *)
  Array.iter Domain.join thieves;
  Alcotest.(check int) "all consumed" n (Atomic.get consumed);
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "element %d once" i) 1 (Atomic.get c))
    seen

(* Model-based fuzz (single-threaded): a deque is a list with push/pop at
   the back and steal at the front. *)
type op = Push of int | Pop | Steal

let op_gen =
  QCheck2.Gen.(
    oneof [ map (fun v -> Push v) (int_bound 1000); return Pop; return Steal ])

let model_apply (model, log) op =
  match op with
  | Push v -> (model @ [ v ], log)
  | Pop -> (
      match List.rev model with
      | [] -> (model, None :: log)
      | last :: rev_rest -> (List.rev rev_rest, Some last :: log))
  | Steal -> (
      match model with
      | [] -> (model, None :: log)
      | first :: rest -> (rest, Some first :: log))

let fuzz_test =
  QCheck2.Test.make ~name:"deque = double-ended list model" ~count:500
    QCheck2.Gen.(list_size (int_bound 200) op_gen)
    (fun ops ->
      let q = D.create ~capacity:2 () in
      let dlog =
        List.map
          (fun op ->
            match op with
            | Push v ->
              D.push q v;
              None
            | Pop -> Some (D.pop q)
            | Steal -> Some (D.steal q))
          ops
        |> List.filter_map Fun.id
      in
      let _, mlog = List.fold_left model_apply ([], []) ops in
      dlog = List.rev mlog)

let () =
  Alcotest.run "ws_deque"
    [
      ( "sequential",
        [
          Alcotest.test_case "lifo pop" `Quick test_lifo_pop;
          Alcotest.test_case "fifo steal" `Quick test_fifo_steal;
          Alcotest.test_case "mixed" `Quick test_mixed;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
        ] );
      ( "concurrent",
        [ Alcotest.test_case "stress" `Quick test_concurrent_stress ] );
      ("model", [ QCheck_alcotest.to_alcotest ~long:false fuzz_test ]);
    ]
