(* The unboxed float lane (Float_seq, Seq.float_sum, Stream.sum_floats):
   the fast path must compute the same answers as the generic boxed
   pipelines — exactly on integer-valued data (where float addition is
   exact, so block splits cannot change the result), and within a
   summation-order error bound on arbitrary data — across block
   policies, grain overrides and 1/2/4 domains. *)

module FS = Bds.Float_seq
module S = Bds.Seq
module Runtime = Bds_runtime.Runtime
open Bds_test_util

let () = init ()

(* ------------------------------------------------------------------ *)
(* References (sequential left folds over plain arrays) *)

let ref_sum a = Array.fold_left ( +. ) 0.0 a

let ref_dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let ref_scan_excl a =
  let n = Array.length a in
  let out = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := !acc +. a.(i)
  done;
  (out, !acc)

(* Integer-valued floats: every intermediate stays well under 2^53, so
   addition is exact and any block split / accumulator split yields the
   bit-identical result. *)
let int_valued n = Array.init n (fun i -> float_of_int ((i * 7 mod 201) - 100))

(* Summation-order bound for arbitrary data: both sides reassociate at
   most [n] additions of terms bounded by [sum |x|]. *)
let close ~n ~scale got want =
  let tol = 4.0 *. float_of_int (n + 1) *. epsilon_float *. (scale +. 1.0) in
  Float.abs (got -. want) <= tol

let sum_abs = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0

(* ------------------------------------------------------------------ *)
(* Basics *)

let test_basics () =
  Alcotest.(check int) "empty length" 0 (FS.length FS.empty);
  Alcotest.(check (float 0.0)) "empty sum" 0.0 (FS.sum FS.empty);
  Alcotest.(check (float 0.0)) "empty dot" 0.0 (FS.dot FS.empty FS.empty);
  Alcotest.(check (float 0.0)) "empty reduce is z" 3.5
    (FS.reduce ( +. ) 3.5 FS.empty);
  let t = FS.tabulate 10 float_of_int in
  Alcotest.(check (float 0.0)) "get" 7.0 (FS.get t 7);
  Alcotest.(check (float 0.0)) "map is delayed composition" 14.0
    (FS.get (FS.map (fun x -> 2.0 *. x) t) 7);
  Alcotest.(check (float 0.0)) "map2" 21.0
    (FS.get (FS.map2 ( +. ) t (FS.map (fun x -> 2.0 *. x) t)) 7);
  let a = int_valued 1000 in
  Alcotest.(check (array (float 0.0))) "of_array/to_array roundtrip" a
    (FS.to_array (FS.of_array a));
  Alcotest.(check (array (float 0.0))) "force fixes the values" a
    (FS.to_array (FS.force (FS.tabulate 1000 (fun i -> a.(i)))));
  Alcotest.check_raises "tabulate negative" (Invalid_argument "Float_seq.tabulate")
    (fun () -> ignore (FS.tabulate (-1) float_of_int));
  Alcotest.check_raises "map2 mismatch"
    (Invalid_argument "Float_seq.map2: length mismatch") (fun () ->
      ignore (FS.map2 ( +. ) t (FS.tabulate 3 float_of_int)));
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Float_seq.dot: length mismatch") (fun () ->
      ignore (FS.dot t (FS.tabulate 3 float_of_int)))

(* ------------------------------------------------------------------ *)
(* Exactness on integer-valued data, across block policies: Mat and Fn
   variants of every eager consumer, against sequential references. *)

let test_exact_across_policies () =
  let n = 10_000 in
  let a = int_valued n and b = Array.init n (fun i -> float_of_int (i mod 13 - 6)) in
  let want_sum = ref_sum a and want_dot = ref_dot a b in
  let want_scan, want_total = ref_scan_excl a in
  for_all_policies (fun name ->
      let mat = FS.of_array a in
      let fn = FS.tabulate n (fun i -> a.(i)) in
      Alcotest.(check (float 0.0)) (name ^ " sum mat") want_sum (FS.sum mat);
      Alcotest.(check (float 0.0)) (name ^ " sum fn") want_sum (FS.sum fn);
      Alcotest.(check (float 0.0)) (name ^ " dot mat-mat") want_dot
        (FS.dot mat (FS.of_array b));
      Alcotest.(check (float 0.0)) (name ^ " dot fn") want_dot
        (FS.dot fn (FS.tabulate n (fun i -> b.(i))));
      let got_scan, got_total = FS.scan fn in
      Alcotest.(check (float 0.0)) (name ^ " scan total") want_total got_total;
      Alcotest.(check (array (float 0.0))) (name ^ " scan") want_scan
        (FS.to_array got_scan);
      let incl = FS.to_array (FS.scan_incl mat) in
      Alcotest.(check (float 0.0)) (name ^ " scan_incl last") want_total
        incl.(n - 1);
      (* reduce with a non-commutative-sensitive op: max needs no
         tolerance at all. *)
      let want_max = Array.fold_left Float.max neg_infinity a in
      Alcotest.(check (float 0.0)) (name ^ " reduce max") want_max
        (FS.reduce Float.max neg_infinity mat))

(* The rerouted [Seq.float_sum] (both RAD and BID representations) and
   the delayed pipeline it fuses must match the boxed generic reduce. *)
let test_seq_float_sum_exact () =
  let n = 30_000 in
  for_all_policies (fun name ->
      let rad = S.map (fun i -> float_of_int (i mod 101 - 50)) (S.iota n) in
      let boxed = S.reduce ( +. ) 0.0 rad in
      Alcotest.(check (float 0.0)) (name ^ " rad") boxed (S.float_sum rad);
      (* BID: a filter forces real blocks; also exercises the
         Stream.sum_floats fallback when block streams are stateful. *)
      let bid =
        S.map float_of_int (S.filter (fun i -> i mod 3 <> 0) (S.iota n))
      in
      Alcotest.(check (float 0.0)) (name ^ " bid") (S.reduce ( +. ) 0.0 bid)
        (S.float_sum bid);
      (* Scan output: per-block stateful streams, boxed-fallback path. *)
      let sc = S.scan_incl ( +. ) 0.0 (S.map float_of_int (S.iota 1000)) in
      Alcotest.(check (float 0.0)) (name ^ " scan output")
        (S.reduce ( +. ) 0.0 sc) (S.float_sum sc))

(* ------------------------------------------------------------------ *)
(* Grain overrides x 1/2/4 domains (the ISSUE 7 sweep): still exact on
   integer-valued data, whatever the leaf decomposition. *)

let test_grain_domains_sweep () =
  let n = 50_000 in
  let a = int_valued n in
  let want_sum = ref_sum a in
  let _, want_total = ref_scan_excl a in
  Fun.protect
    ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      List.iter
        (fun d ->
          Runtime.set_num_domains d;
          List.iter
            (fun g ->
              with_grain g (fun () ->
                  let tag =
                    Printf.sprintf "d=%d grain=%s" d
                      (match g with Some v -> string_of_int v | None -> "auto")
                  in
                  let mat = FS.of_array a in
                  Alcotest.(check (float 0.0)) (tag ^ " sum") want_sum
                    (FS.sum mat);
                  let _, total = FS.scan mat in
                  Alcotest.(check (float 0.0)) (tag ^ " scan total") want_total
                    total;
                  Alcotest.(check (float 0.0)) (tag ^ " seq float_sum")
                    want_sum
                    (S.float_sum (S.tabulate n (fun i -> a.(i))))))
            [ Some 1; Some 97; None ])
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Arbitrary floats: unboxed vs boxed within the summation-order bound. *)

let float_array_gen =
  QCheck2.Gen.(array_size (int_bound 400) (float_range (-1000.0) 1000.0))

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"Float_seq.sum ~ sequential sum" ~count:300 float_array_gen
      (fun a ->
        let n = Array.length a in
        close ~n ~scale:(sum_abs a) (FS.sum (FS.of_array a)) (ref_sum a));
    Test.make ~name:"Seq.float_sum ~ boxed reduce" ~count:300 float_array_gen
      (fun a ->
        let n = Array.length a in
        let s = S.of_array a in
        close ~n ~scale:(sum_abs a) (S.float_sum s) (S.reduce ( +. ) 0.0 s));
    Test.make ~name:"Float_seq.dot ~ sequential dot" ~count:300
      Gen.(pair float_array_gen (float_range (-10.0) 10.0))
      (fun (a, k) ->
        let n = Array.length a in
        let b = Array.map (fun x -> k -. x) a in
        let scale =
          Array.fold_left (fun acc x -> acc +. Float.abs (x *. (k -. x))) 0.0 a
        in
        close ~n ~scale (FS.dot (FS.of_array a) (FS.of_array b)) (ref_dot a b));
    Test.make ~name:"Float_seq.scan ~ sequential scan" ~count:200
      float_array_gen (fun a ->
        let n = Array.length a in
        let want, want_total = ref_scan_excl a in
        let got, got_total = FS.scan (FS.of_array a) in
        let got = FS.to_array got in
        let scale = sum_abs a in
        close ~n ~scale got_total want_total
        && Array.for_all2 (fun g w -> close ~n ~scale g w) got want);
  ]

(* Sanity for the tolerance itself: a pipeline where boxed and unboxed
   must agree exactly (single element — no reassociation possible). *)
let test_filter () =
  for_all_policies (fun pname ->
      let n = 1_000 in
      let a = int_valued n in
      let p x = x >= 0.0 in
      let want =
        Array.of_list (List.filter p (Array.to_list a))
      in
      (* Mat input. *)
      let got = FS.to_array (FS.filter p (FS.of_array a)) in
      Alcotest.(check (array (float 0.0))) (pname ^ " filter mat") want got;
      (* Fn input: the predicate sees the delayed composition's output. *)
      let got_fn =
        FS.to_array (FS.filter p (FS.tabulate n (fun i -> a.(i))))
      in
      Alcotest.(check (array (float 0.0))) (pname ^ " filter fn") want got_fn;
      (* Empty result and empty input. *)
      Alcotest.(check int) (pname ^ " filter none") 0
        (FS.length (FS.filter (fun _ -> false) (FS.of_array a)));
      Alcotest.(check int) (pname ^ " filter empty") 0
        (FS.length (FS.filter p FS.empty)));
  (* Predicate runs exactly once per element. *)
  with_policy (Bds.Block.Fixed 64) (fun () ->
      let n = 500 in
      let evals = Atomic.make 0 in
      let p x =
        ignore (Atomic.fetch_and_add evals 1);
        x > 0.0
      in
      ignore (FS.filter p (FS.of_array (int_valued n)));
      Alcotest.(check int) "predicate once per element" n (Atomic.get evals))

let test_fold2 () =
  for_all_policies (fun pname ->
      let n = 2_000 in
      let xs = int_valued n in
      let ys = Array.init n (fun i -> float_of_int ((i * 13 mod 157) - 78)) in
      (* Integer-valued contributions stay exact under any block split. *)
      let want1 = ref 0.0 and want2 = ref 0.0 in
      Array.iteri
        (fun i x ->
          want1 := !want1 +. (x *. x);
          want2 := !want2 +. (x *. ys.(i)))
        xs;
      let got1, got2 =
        FS.fold2
          ~f1:(fun x _ -> x *. x)
          ~f2:(fun x y -> x *. y)
          (FS.of_array xs) (FS.of_array ys)
      in
      Alcotest.(check (float 0.0)) (pname ^ " fold2 fst") !want1 got1;
      Alcotest.(check (float 0.0)) (pname ^ " fold2 snd") !want2 got2;
      (* Fn x Mat mixed representations agree. *)
      let got1', got2' =
        FS.fold2
          ~f1:(fun x _ -> x *. x)
          ~f2:(fun x y -> x *. y)
          (FS.tabulate n (fun i -> xs.(i)))
          (FS.of_array ys)
      in
      Alcotest.(check (float 0.0)) (pname ^ " fold2 fn fst") !want1 got1';
      Alcotest.(check (float 0.0)) (pname ^ " fold2 fn snd") !want2 got2');
  Alcotest.(check (pair (float 0.0) (float 0.0))) "fold2 empty" (0.0, 0.0)
    (FS.fold2 ~f1:( +. ) ~f2:( -. ) FS.empty FS.empty);
  Alcotest.check_raises "fold2 length mismatch"
    (Invalid_argument "Float_seq.fold2: length mismatch") (fun () ->
      ignore (FS.fold2 ~f1:( +. ) ~f2:( -. ) FS.empty (FS.tabulate 3 float_of_int)))

(* fit_xy routes its second moments through fold2: slope/intercept must
   match the sequential reference on exactly representable data. *)
let test_linefit_fold2 () =
  let n = 4_000 in
  let pts = Array.init n (fun i ->
      let x = float_of_int (i mod 97) in
      (x, (2.0 *. x) +. 3.0))
  in
  let xs = Float.Array.init n (fun i -> fst pts.(i)) in
  let ys = Float.Array.init n (fun i -> snd pts.(i)) in
  let slope_ref, icept_ref = Bds_kernels.Linefit.reference pts in
  let slope, icept = Bds_kernels.Linefit.fit_xy xs ys in
  Alcotest.(check bool) "slope"
    true (Float.abs (slope -. slope_ref) <= 1e-9);
  Alcotest.(check bool) "intercept"
    true (Float.abs (icept -. icept_ref) <= 1e-9)

let test_single_element_exact () =
  let x = 0.1 in
  Alcotest.(check (float 0.0)) "singleton sum" x (FS.sum (FS.of_array [| x |]));
  Alcotest.(check (float 0.0)) "singleton float_sum" x
    (S.float_sum (S.of_array [| x |]))

let () =
  Alcotest.run "float_seq"
    [
      ( "float lane",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "exact across policies" `Quick
            test_exact_across_policies;
          Alcotest.test_case "Seq.float_sum exact" `Quick
            test_seq_float_sum_exact;
          Alcotest.test_case "grain x domains sweep" `Quick
            test_grain_domains_sweep;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "fold2" `Quick test_fold2;
          Alcotest.test_case "linefit via fold2" `Quick test_linefit_fold2;
          Alcotest.test_case "single element exact" `Quick
            test_single_element_exact;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
