(* The unified granularity layer: env-override parsing, the leaf-grain
   heuristic, and block-grid arithmetic (docs/RUNTIME.md "Granularity
   policy").  These tests use explicit [~workers] so they are independent
   of the pool. *)

module Grain = Bds_runtime.Grain
open Bds_test_util

let () = init ()

let parse = Grain.parse_pos_int ~key:"BDS_TEST"

let test_parse_ok () =
  Alcotest.(check bool) "empty is default" true (parse "" = Ok None);
  Alcotest.(check bool) "blank is default" true (parse "   " = Ok None);
  Alcotest.(check bool) "plain int" true (parse "42" = Ok (Some 42));
  Alcotest.(check bool) "trimmed" true (parse " 7 " = Ok (Some 7));
  Alcotest.(check bool) "one" true (parse "1" = Ok (Some 1))

let test_parse_bad () =
  let bad s =
    match parse s with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error for %S names the key" s)
        true
        (String.length msg >= 8 && String.sub msg 0 8 = "BDS_TEST")
    | Ok _ -> Alcotest.failf "expected an error for %S" s
  in
  bad "0";
  bad "-3";
  bad "banana";
  bad "1.5";
  bad "1e3"

let test_leaf_grain () =
  with_grain None (fun () ->
      (* ~32 chunks per worker. *)
      Alcotest.(check int) "formula" 32 (Grain.leaf_grain ~workers:4 4096);
      Alcotest.(check int) "small n floors at 1" 1 (Grain.leaf_grain ~workers:4 7);
      Alcotest.(check int) "zero n" 1 (Grain.leaf_grain ~workers:4 0));
  with_grain (Some 5) (fun () ->
      Alcotest.(check int) "override wins" 5 (Grain.leaf_grain ~workers:4 4096);
      Alcotest.(check bool) "override visible" true
        (Grain.leaf_grain_override () = Some 5));
  Alcotest.check_raises "override must be positive"
    (Invalid_argument "Grain.set_leaf_grain: grain must be >= 1") (fun () ->
      Grain.set_leaf_grain (Some 0))

let test_grid () =
  with_policy (Grain.Fixed 25) (fun () ->
      let g = Grain.grid ~workers:3 100 in
      Alcotest.(check int) "block_size" 25 g.Grain.block_size;
      Alcotest.(check int) "num_blocks" 4 g.Grain.num_blocks;
      (* Bounds partition [0, n): contiguous, nonempty, in order. *)
      let prev = ref 0 in
      for j = 0 to g.Grain.num_blocks - 1 do
        let lo, hi = Grain.bounds g j in
        Alcotest.(check int) "contiguous" !prev lo;
        Alcotest.(check bool) "nonempty" true (hi > lo);
        prev := hi
      done;
      Alcotest.(check int) "covers n" 100 !prev);
  with_policy (Grain.Fixed 30) (fun () ->
      let g = Grain.grid ~workers:3 100 in
      Alcotest.(check int) "ragged last block" 4 g.Grain.num_blocks;
      Alcotest.(check bool) "last block short" true
        (Grain.bounds g 3 = (90, 100)));
  let g0 = Grain.grid ~workers:3 0 in
  Alcotest.(check int) "empty grid" 0 g0.Grain.num_blocks

let test_scaled_grid () =
  with_policy
    (Grain.Scaled { per_worker_blocks = 4; min_size = 1; max_size = max_int })
    (fun () ->
      Alcotest.(check int) "scales with workers" 1000
        (Grain.block_size ~workers:2 8000);
      Alcotest.(check int) "more workers, smaller blocks" 500
        (Grain.block_size ~workers:4 8000))

let test_other_knobs () =
  let old = Grain.lazy_chunk () in
  Grain.set_lazy_chunk 128;
  Alcotest.(check int) "lazy chunk set" 128 (Grain.lazy_chunk ());
  Grain.set_lazy_chunk old;
  let old = Grain.sort_cutoff () in
  Grain.set_sort_cutoff 512;
  Alcotest.(check int) "sort cutoff set" 512 (Grain.sort_cutoff ());
  Grain.set_sort_cutoff old;
  Alcotest.check_raises "lazy chunk must be positive"
    (Invalid_argument "Grain.set_lazy_chunk: chunk must be >= 1") (fun () ->
      Grain.set_lazy_chunk 0);
  Alcotest.check_raises "sort cutoff must be positive"
    (Invalid_argument "Grain.set_sort_cutoff: cutoff must be >= 1") (fun () ->
      Grain.set_sort_cutoff (-1))

let () =
  Alcotest.run "grain"
    [
      ( "grain",
        [
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "parse bad" `Quick test_parse_bad;
          Alcotest.test_case "leaf grain" `Quick test_leaf_grain;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "scaled grid" `Quick test_scaled_grid;
          Alcotest.test_case "other knobs" `Quick test_other_knobs;
        ] );
    ]
