(* Graph substrate: CSR construction, R-MAT generation, and the three BFS
   versions (Figure 6). *)

module Csr = Bds_graph.Csr
module Rmat = Bds_graph.Rmat
module Bfs = Bds_graph.Bfs
open Bds_test_util

let () = init ()

let test_csr_build () =
  let g = Csr.of_edges ~num_vertices:4 [| (0, 1); (0, 2); (2, 3); (0, 3) |] in
  Alcotest.(check int) "n" 4 (Csr.num_vertices g);
  Alcotest.(check int) "m" 4 (Csr.num_edges g);
  Alcotest.(check int) "deg 0" 3 (Csr.degree g 0);
  Alcotest.(check int) "deg 1" 0 (Csr.degree g 1);
  Alcotest.(check int_array) "neighbors 0 (stable order)" [| 1; 2; 3 |]
    (Csr.out_neighbors g 0);
  Alcotest.(check int_array) "neighbors 2" [| 3 |] (Csr.out_neighbors g 2);
  Alcotest.check_raises "bad edge" (Invalid_argument "Csr.of_edges") (fun () ->
      ignore (Csr.of_edges ~num_vertices:2 [| (0, 5) |]))

let test_reference_distances () =
  (* 0 -> 1 -> 2, 0 -> 2, 3 isolated *)
  let g = Csr.of_edges ~num_vertices:4 [| (0, 1); (1, 2); (0, 2) |] in
  Alcotest.(check int_array) "distances" [| 0; 1; 1; -1 |] (Csr.bfs_distances g 0)

let test_rmat () =
  let g1 = Rmat.generate ~seed:7 ~scale:8 ~num_edges:2000 () in
  let g2 = Rmat.generate ~seed:7 ~scale:8 ~num_edges:2000 () in
  Alcotest.(check int) "deterministic n" (Csr.num_vertices g1) (Csr.num_vertices g2);
  Alcotest.(check bool) "deterministic edges" true
    (Csr.out_neighbors g1 3 = Csr.out_neighbors g2 3
    && Csr.out_neighbors g1 100 = Csr.out_neighbors g2 100);
  Alcotest.(check int) "vertex count" 256 (Csr.num_vertices g1);
  Alcotest.(check int) "edge count" 2000 (Csr.num_edges g1);
  (* Power-law-ish: max degree far above average. *)
  let max_deg = ref 0 in
  for v = 0 to Csr.num_vertices g1 - 1 do
    max_deg := max !max_deg (Csr.degree g1 v)
  done;
  Alcotest.(check bool) "skewed degrees" true (!max_deg > 3 * (2000 / 256))

let check_bfs name bfs g source =
  let parents = bfs g source in
  Alcotest.(check bool) (name ^ " valid") true (Bfs.valid_parents g source parents)

let graphs () =
  [
    ("path", Csr.of_edges ~num_vertices:10
       (Array.init 9 (fun i -> (i, i + 1))), 0);
    ("star", Csr.of_edges ~num_vertices:101
       (Array.init 100 (fun i -> (0, i + 1))), 0);
    ("two components",
     Csr.of_edges ~num_vertices:6 [| (0, 1); (1, 2); (3, 4); (4, 5) |], 0);
    ("cycle", Csr.of_edges ~num_vertices:8
       (Array.init 8 (fun i -> (i, (i + 1) mod 8))), 3);
    ("rmat", Rmat.generate ~seed:11 ~scale:9 ~num_edges:4000 (), 0);
    ("singleton", Csr.of_edges ~num_vertices:1 [||], 0);
  ]

let test_bfs_versions () =
  List.iter
    (fun (name, g, s) ->
      check_bfs (name ^ "/array") Bfs.Array_version.bfs g s;
      check_bfs (name ^ "/rad") Bfs.Rad_version.bfs g s;
      check_bfs (name ^ "/delay") Bfs.Delay_version.bfs g s)
    (graphs ())

let test_bfs_versions_agree_on_reachability () =
  let g = Rmat.generate ~seed:3 ~scale:10 ~num_edges:8000 () in
  let reach p = Array.map (fun x -> x >= 0) p in
  let a = reach (Bfs.Array_version.bfs g 0) in
  let r = reach (Bfs.Rad_version.bfs g 0) in
  let d = reach (Bfs.Delay_version.bfs g 0) in
  Alcotest.(check bool) "array=rad" true (a = r);
  Alcotest.(check bool) "array=delay" true (a = d)

(* Parent pointers must form a forest rooted at the source: following
   parents from any reached vertex terminates at the source in at most
   depth(v) steps. *)
let check_forest name g source parents =
  let dist = Csr.bfs_distances g source in
  Array.iteri
    (fun v p ->
      if p >= 0 && v <> source then begin
        let rec walk u steps =
          if u = source then ()
          else if steps < 0 then Alcotest.failf "%s: cycle reaching %d" name v
          else walk parents.(u) (steps - 1)
        in
        walk v dist.(v)
      end)
    parents

let test_bfs_forest_invariant () =
  let g = Rmat.generate ~seed:21 ~scale:10 ~num_edges:6000 () in
  check_forest "array" g 0 (Bfs.Array_version.bfs g 0);
  check_forest "rad" g 0 (Bfs.Rad_version.bfs g 0);
  check_forest "delay" g 0 (Bfs.Delay_version.bfs g 0)

let test_bfs_seed_matrix () =
  (* Several graph shapes × sources × all versions. *)
  List.iter
    (fun seed ->
      let g = Rmat.generate ~seed ~scale:8 ~num_edges:1500 () in
      List.iter
        (fun source ->
          let source = source mod Csr.num_vertices g in
          check_bfs
            (Printf.sprintf "seed %d src %d array" seed source)
            Bfs.Array_version.bfs g source;
          check_bfs
            (Printf.sprintf "seed %d src %d rad" seed source)
            Bfs.Rad_version.bfs g source;
          check_bfs
            (Printf.sprintf "seed %d src %d delay" seed source)
            Bfs.Delay_version.bfs g source)
        [ 0; 17; 255 ])
    [ 1; 2; 3; 4; 5 ]

let test_bfs_small_blocks () =
  (* Tiny blocks stress the BID paths inside BFS. *)
  with_policy (Bds.Block.Fixed 2) (fun () ->
      let g = Rmat.generate ~seed:5 ~scale:7 ~num_edges:600 () in
      check_bfs "delay small blocks" Bfs.Delay_version.bfs g 0)

let () =
  Alcotest.run "graph"
    [
      ( "csr",
        [
          Alcotest.test_case "build" `Quick test_csr_build;
          Alcotest.test_case "reference distances" `Quick test_reference_distances;
        ] );
      ("rmat", [ Alcotest.test_case "generation" `Quick test_rmat ]);
      ( "bfs",
        [
          Alcotest.test_case "all versions valid" `Quick test_bfs_versions;
          Alcotest.test_case "versions agree" `Quick test_bfs_versions_agree_on_reachability;
          Alcotest.test_case "seed matrix" `Quick test_bfs_seed_matrix;
          Alcotest.test_case "forest invariant" `Quick test_bfs_forest_invariant;
          Alcotest.test_case "small blocks" `Quick test_bfs_small_blocks;
        ] );
    ]
