(* The measurement/reporting harness itself: tables, ratios, SVG
   rendering, the registry, and measurement sanity. *)

module H = Bds_harness
open Bds_test_util

let () = init ()

let test_tables () =
  let s =
    H.Tables.render
      ~headers:[ "name"; "a"; "bb" ]
      ~rows:[ [ "x"; "1"; "2" ]; [ "longer"; "10"; "3" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* All lines equal width (fixed layout). *)
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths;
  Alcotest.(check bool) "contains header" true
    (String.length (List.hd lines) > 0)

let test_ratio () =
  Alcotest.(check string) "normal" "2.00" (H.Tables.ratio 4.0 2.0);
  Alcotest.(check string) "inf" "inf" (H.Tables.ratio 1.0 0.0);
  Alcotest.(check string) "both zero" "-" (H.Tables.ratio 0.0 0.0)

let test_svg () =
  let svg =
    H.Svg_plot.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        { H.Svg_plot.label = "s1"; points = [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] };
        { H.Svg_plot.label = "s2"; points = [ (1.0, 2.0); (2.0, 2.0); (3.0, 2.0) ] };
      ]
  in
  let contains needle =
    let n = String.length needle and m = String.length svg in
    let rec go i = i + n <= m && (String.sub svg i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "svg root" true (contains "<svg");
  Alcotest.(check bool) "closes" true (contains "</svg>");
  Alcotest.(check int) "one polyline per series" 2
    (let rec count i acc =
       if i + 9 > String.length svg then acc
       else if String.sub svg i 9 = "<polyline" then count (i + 9) (acc + 1)
       else count (i + 1) acc
     in
     count 0 0);
  Alcotest.(check bool) "legend labels" true (contains ">s1<" && contains ">s2<")

let test_svg_degenerate () =
  (* Single point, constant series: must not divide by zero. *)
  let svg =
    H.Svg_plot.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ { H.Svg_plot.label = "only"; points = [ (5.0, 3.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length svg > 100);
  Alcotest.(check bool) "no nan" true
    (not
       (let rec go i =
          i + 3 <= String.length svg && (String.sub svg i 3 = "nan" || go (i + 1))
        in
        go 0))

let test_registry () =
  Alcotest.(check int) "bid benches" 5 (List.length H.Registry.bid_benches);
  Alcotest.(check int) "rad benches" 8 (List.length H.Registry.rad_benches);
  Alcotest.(check bool) "ext benches" true (List.length H.Registry.ext_benches >= 5);
  List.iter
    (fun (b : H.Registry.bench) ->
      Alcotest.(check bool)
        (b.name ^ " findable")
        true
        (match H.Registry.find b.name with Some x -> x == b | None -> false);
      (* Tiny run of every registered version must complete. *)
      let versions = b.prepare (min 2000 b.default_size) in
      Alcotest.(check bool) (b.name ^ " has versions") true (List.length versions >= 2);
      List.iter (fun v -> v.H.Registry.run ()) versions)
    H.Registry.all;
  Alcotest.(check bool) "unknown" true (H.Registry.find "no-such-bench" = None)

let test_measure () =
  let t = H.Measure.time ~warmup:0 ~repeat:2 (fun () -> Unix.sleepf 0.01) in
  Alcotest.(check bool) "time >= sleep" true (t >= 0.009);
  Alcotest.(check bool) "time sane" true (t < 1.0);
  let a =
    H.Measure.alloc_single_domain (fun () ->
        Sys.opaque_identity (Array.make 200_000 0))
  in
  (* A 200k-word array is a major-heap allocation: ~1.6MB. *)
  Alcotest.(check bool)
    (Printf.sprintf "alloc %.0f covers array" a)
    true
    (a >= 1_500_000.0 && a < 10_000_000.0);
  Alcotest.(check string) "pp_time ms" "12.00ms" (H.Measure.pp_time 0.012);
  Alcotest.(check string) "pp_bytes" "1.5KB" (H.Measure.pp_bytes 1536.0)

let () =
  Alcotest.run "harness"
    [
      ( "tables",
        [
          Alcotest.test_case "render" `Quick test_tables;
          Alcotest.test_case "ratio" `Quick test_ratio;
        ] );
      ( "svg",
        [
          Alcotest.test_case "render" `Quick test_svg;
          Alcotest.test_case "degenerate" `Quick test_svg_degenerate;
        ] );
      ("registry", [ Alcotest.test_case "all benches" `Quick test_registry ]);
      ("measure", [ Alcotest.test_case "time and alloc" `Quick test_measure ]);
    ]
