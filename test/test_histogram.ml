(* The per-domain log2-bucket latency histogram behind the profiler.

   Everything here records from the main domain only, so snapshots are
   exact (the racy-monotone caveat applies only to cross-domain reads)
   and the tests can assert equalities, not just bounds. *)

module H = Bds_runtime.Histogram

let record_all h l = List.iter (fun ns -> H.record h ~ns) l

let snap_of l =
  let h = H.create () in
  record_all h l;
  H.snapshot h

let check_snap_eq msg a b =
  Alcotest.(check (array int)) (msg ^ " counts") a.H.s_counts b.H.s_counts;
  Alcotest.(check (array int)) (msg ^ " ns") a.H.s_ns b.H.s_ns;
  Alcotest.(check int) (msg ^ " max") a.H.s_max_ns b.H.s_max_ns

(* Bucket k covers [2^k, 2^(k+1)); 0 and 1 land in bucket 0; the top
   bucket absorbs the tail and has no upper bound. *)
let test_bucket_boundaries () =
  Alcotest.(check int) "0" 0 (H.bucket_of_ns 0);
  Alcotest.(check int) "1" 0 (H.bucket_of_ns 1);
  Alcotest.(check int) "2" 1 (H.bucket_of_ns 2);
  Alcotest.(check int) "3" 1 (H.bucket_of_ns 3);
  Alcotest.(check int) "4" 2 (H.bucket_of_ns 4);
  for k = 1 to 40 do
    Alcotest.(check int) (Printf.sprintf "2^%d" k) k (H.bucket_of_ns (1 lsl k));
    Alcotest.(check int)
      (Printf.sprintf "2^%d+1 - 1" k)
      k
      (H.bucket_of_ns ((1 lsl (k + 1)) - 1))
  done;
  (* OCaml ints are 63-bit: max_int = 2^62 - 1 lands in bucket 61, so
     the 64-bucket array has unreachable headroom at the top rather
     than a saturating tail. *)
  Alcotest.(check int) "max_int" 61 (H.bucket_of_ns max_int);
  (* Upper bounds are inclusive and consistent with bucket_of_ns (the
     top slots are skipped: their 2^(k+1) overflows the int width). *)
  for k = 0 to 60 do
    let u = H.bucket_upper_ns k in
    Alcotest.(check int) (Printf.sprintf "upper(%d) in bucket" k) k (H.bucket_of_ns u);
    Alcotest.(check int)
      (Printf.sprintf "upper(%d)+1 in next bucket" k)
      (k + 1)
      (H.bucket_of_ns (u + 1))
  done;
  Alcotest.(check int) "top bucket unbounded" max_int (H.bucket_upper_ns (H.buckets - 1))

let test_record_totals () =
  let l = [ 0; 1; 5; 5; 1000; 123_456; 7 ] in
  let s = snap_of l in
  Alcotest.(check int) "count" (List.length l) (H.total_count s);
  Alcotest.(check int) "ns" (List.fold_left ( + ) 0 l) (H.total_ns s);
  Alcotest.(check int) "max" 123_456 (H.max_ns s);
  (* Negative durations (clock went backwards) clamp to 0, not crash. *)
  let s' = snap_of [ -5 ] in
  Alcotest.(check int) "negative clamps: count" 1 (H.total_count s');
  Alcotest.(check int) "negative clamps: ns" 0 (H.total_ns s')

(* Percentile estimates are bracketed: at least the true value's bucket
   lower bound, at most the recorded maximum, and monotone in p. *)
let test_percentile_bounds () =
  let l = List.init 100 (fun i -> (i + 1) * 100) in
  (* 100..10000ns *)
  let s = snap_of l in
  let p50 = H.p50 s and p90 = H.p90 s and p99 = H.p99 s in
  Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
  Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= H.max_ns s);
  (* True p50 is 5000ns: the estimate must cover it from above within
     one log2 bucket (bucket of 5000 is [4096,8191]). *)
  Alcotest.(check bool) "p50 over-approximates" true (p50 >= 5000);
  Alcotest.(check bool) "p50 within its bucket" true (p50 <= 8191);
  (* Degenerate cases. *)
  Alcotest.(check int) "empty" 0 (H.percentile H.empty 50.);
  let one = snap_of [ 777 ] in
  Alcotest.(check int) "single sample is exact" 777 (H.percentile one 50.);
  Alcotest.(check int) "p0 behaves" 777 (H.percentile one 0.);
  Alcotest.(check int) "p100 = max" 777 (H.percentile one 100.)

let test_time_below () =
  let s = snap_of [ 10; 20; 10_000; 20_000 ] in
  (* Buckets entirely below 5000ns: the 10/20ns samples qualify; the
     10000/20000ns ones do not. *)
  let below = H.time_below s ~threshold_ns:5000 in
  Alcotest.(check int) "below" 30 below;
  Alcotest.(check int) "none below 1" 0 (H.time_below s ~threshold_ns:1);
  Alcotest.(check int) "all below huge" (H.total_ns s)
    (H.time_below s ~threshold_ns:max_int)

(* merge is associative and commutative with [empty] as identity —
   required for the registry fold to be order-insensitive (rows register
   in whatever order domains first touch the histogram). *)
let test_merge_algebra () =
  let gen = QCheck2.Gen.(list_size (int_bound 50) (int_bound 100_000)) in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:100 ~name:"merge algebra"
       QCheck2.Gen.(triple gen gen gen)
       (fun (la, lb, lc) ->
         let a = snap_of la and b = snap_of lb and c = snap_of lc in
         let eq x y =
           x.H.s_counts = y.H.s_counts && x.H.s_ns = y.H.s_ns
           && x.H.s_max_ns = y.H.s_max_ns
         in
         eq (H.merge a b) (H.merge b a)
         && eq (H.merge (H.merge a b) c) (H.merge a (H.merge b c))
         && eq (H.merge a H.empty) a
         && eq (H.merge H.empty a) a))

(* Recording the concatenation equals merging the parts: snapshots are
   a homomorphism from sample multisets. *)
let test_merge_is_concat () =
  let la = [ 1; 100; 9999 ] and lb = [ 5; 5; 1_000_000 ] in
  check_snap_eq "concat" (snap_of (la @ lb)) (H.merge (snap_of la) (snap_of lb))

let () =
  Alcotest.run "histogram"
    [
      ( "buckets",
        [
          Alcotest.test_case "boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "record totals" `Quick test_record_totals;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile bounds" `Quick test_percentile_bounds;
          Alcotest.test_case "time_below" `Quick test_time_below;
        ] );
      ( "merge",
        [
          Alcotest.test_case "algebra (qcheck)" `Quick test_merge_algebra;
          Alcotest.test_case "concat homomorphism" `Quick test_merge_is_concat;
        ] );
    ]
