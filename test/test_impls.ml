(* Cross-implementation equivalence: the three libraries of Figure 12
   (array / rad / delay) must be observationally identical on random
   operation pipelines — the property that makes the paper's benchmark
   comparison meaningful. *)

open Bds_test_util

let () = init ()

type step =
  | Map_add of int
  | Mapi_mix
  | Filter_mod of int * int
  | Filter_op_mod of int
  | Scan_ex of int
  | Scan_incl
  | Zip_self
  | Force
  | Flat_expand of int

module Pipeline (Impl : Bds_seqs.Sig.S) = struct
  let apply step s =
    match step with
    | Map_add k -> Impl.map (( + ) k) s
    | Mapi_mix -> Impl.mapi (fun i v -> (3 * i) - v) s
    | Filter_mod (k, r) -> Impl.filter (fun x -> (x mod k + k) mod k = r) s
    | Filter_op_mod k ->
      Impl.filter_op (fun x -> if (x mod k + k) mod k = 0 then Some (x + 1) else None) s
    | Scan_ex z -> fst (Impl.scan ( + ) z s)
    | Scan_incl -> Impl.scan_incl ( + ) 0 s
    | Zip_self -> Impl.zip_with ( - ) s s
    | Force -> Impl.force s
    | Flat_expand k ->
      Impl.flatten (Impl.map (fun x -> Impl.tabulate (abs x mod k) (fun j -> x + j)) s)

  let run (a : int array) steps =
    let s = List.fold_left (fun s st -> apply st s) (Impl.of_array a) steps in
    (Impl.to_array s, Impl.length s, Impl.reduce ( + ) 0 s)
end

module P_array = Pipeline (Bds_seqs.Impl_array)
module P_rad = Pipeline (Bds_seqs.Impl_rad)
module P_delay = Pipeline (Bds_seqs.Impl_delay)

let step_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun k -> Map_add k) (int_range (-20) 20);
      return Mapi_mix;
      map2 (fun k r -> Filter_mod (k + 2, r mod (k + 2))) (int_bound 5) (int_bound 9);
      map (fun k -> Filter_op_mod (k + 2)) (int_bound 5);
      map (fun z -> Scan_ex z) (int_range (-5) 5);
      return Scan_incl;
      return Zip_self;
      return Force;
      map (fun k -> Flat_expand (k + 1)) (int_bound 3);
    ]

let gen =
  QCheck2.Gen.(
    triple
      (array_size (int_bound 120) (int_range (-50) 50))
      (list_size (int_bound 5) step_gen)
      (int_range 1 32))

let prop_all_impls_agree (a, steps, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let ra = P_array.run a steps in
      let rr = P_rad.run a steps in
      let rd = P_delay.run a steps in
      ra = rr && rr = rd)

let show_step = function
  | Map_add k -> Printf.sprintf "Map_add %d" k
  | Mapi_mix -> "Mapi_mix"
  | Filter_mod (k, r) -> Printf.sprintf "Filter_mod (%d,%d)" k r
  | Filter_op_mod k -> Printf.sprintf "Filter_op_mod %d" k
  | Scan_ex z -> Printf.sprintf "Scan_ex %d" z
  | Scan_incl -> "Scan_incl"
  | Zip_self -> "Zip_self"
  | Force -> "Force"
  | Flat_expand k -> Printf.sprintf "Flat_expand %d" k

let show_instance (a, steps, bsize) =
  Printf.sprintf "a=[|%s|] steps=[%s] bsize=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int a)))
    (String.concat "; " (List.map show_step steps))
    bsize

let tests =
  [
    QCheck2.Test.make ~name:"array = rad = delay on random pipelines" ~count:400
      ~print:show_instance gen prop_all_impls_agree;
  ]

(* A few fixed heavyweight pipelines, deterministic. *)
let test_fixed_pipelines () =
  let a = Array.init 5_000 (fun i -> (i * 37 mod 101) - 50) in
  let pipelines =
    [
      [ Map_add 3; Scan_ex 0; Mapi_mix; Filter_mod (3, 1); Scan_incl ];
      [ Flat_expand 3; Scan_ex 2; Filter_op_mod 2 ];
      [ Zip_self; Force; Flat_expand 2; Scan_incl; Filter_mod (5, 0) ];
      [ Scan_ex 1; Scan_ex 1; Scan_ex 1 ];
    ]
  in
  List.iteri
    (fun i steps ->
      let ra = P_array.run a steps in
      let rr = P_rad.run a steps in
      let rd = P_delay.run a steps in
      Alcotest.(check bool) (Printf.sprintf "pipeline %d array=rad" i) true (ra = rr);
      Alcotest.(check bool) (Printf.sprintf "pipeline %d array=delay" i) true (ra = rd))
    pipelines

let () =
  Alcotest.run "impls"
    [
      ("fixed", [ Alcotest.test_case "heavyweight pipelines" `Quick test_fixed_pipelines ]);
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) tests);
    ]
