(* The twelve benchmark kernels: every library version against the
   sequential reference, on several sizes and seeds. *)

open Bds_test_util
module K = Bds_kernels

let () = init ()

let sizes = [ 0; 1; 2; 100; 10_000 ]

let float_eq = Alcotest.(check (float 1e-6))

(* ---------------- bestcut ---------------- *)

let test_bestcut () =
  List.iter
    (fun n ->
      if n > 0 then begin
        let a = K.Bestcut.generate ~seed:n n in
        let expect = K.Bestcut.reference a in
        float_eq "array" expect (K.Bestcut.Array_version.best_cut a);
        float_eq "rad" expect (K.Bestcut.Rad_version.best_cut a);
        float_eq "delay" expect (K.Bestcut.Delay_version.best_cut a)
      end)
    sizes

let test_bestcut_sob () =
  let a = K.Bestcut.generate ~seed:9 5000 in
  let expect = K.Bestcut.reference a in
  List.iter
    (fun bs -> float_eq (Printf.sprintf "sob bs=%d" bs) expect (K.Bestcut.best_cut_sob ~block_size:bs a))
    [ 1; 64; 1000; 5000; 100000 ]

(* ---------------- bignum ---------------- *)

let check_bignum name add a b =
  let expect_digits, expect_carry = K.Bignum.reference a b in
  let got_digits, got_carry = add a b in
  Alcotest.(check string) (name ^ " digits") (Bytes.to_string expect_digits)
    (Bytes.to_string got_digits);
  Alcotest.(check int) (name ^ " carry") expect_carry got_carry

let test_bignum () =
  List.iter
    (fun n ->
      let a, b = K.Bignum.generate_input ~seed:n n in
      check_bignum "array" K.Bignum.Array_version.add a b;
      check_bignum "rad" K.Bignum.Rad_version.add a b;
      check_bignum "delay" K.Bignum.Delay_version.add a b)
    sizes

let test_bignum_carry_chains () =
  (* All-0xFF + 1: the carry must propagate across every block. *)
  let n = 10_000 in
  let a = Bytes.make n '\xff' in
  let b = Bytes.make n '\x00' in
  Bytes.set b 0 '\x01';
  check_bignum "array chain" K.Bignum.Array_version.add a b;
  check_bignum "rad chain" K.Bignum.Rad_version.add a b;
  check_bignum "delay chain" K.Bignum.Delay_version.add a b;
  (* Unequal lengths. *)
  let short = Bytes.of_string "\xff\xff" in
  check_bignum "unequal" K.Bignum.Delay_version.add a short;
  (* Zero + zero. *)
  check_bignum "zeros" K.Bignum.Delay_version.add (Bytes.make 100 '\x00') (Bytes.make 100 '\x00')

(* ---------------- primes ---------------- *)

let test_primes () =
  List.iter
    (fun n ->
      let expect = K.Primes.reference n in
      Alcotest.(check int_array) "array" expect (K.Primes.Array_version.primes n);
      Alcotest.(check int_array) "rad" expect (K.Primes.Rad_version.primes n);
      Alcotest.(check int_array) "delay" expect (K.Primes.Delay_version.primes n))
    [ 0; 1; 2; 3; 4; 31; 32; 33; 100; 1000; 100_000 ]

(* ---------------- tokens ---------------- *)

let tok_t = Alcotest.(pair int int)

let test_tokens () =
  List.iter
    (fun n ->
      let text = K.Tokens.generate ~seed:(n + 1) n in
      let expect = K.Tokens.reference text in
      Alcotest.(check tok_t) "array" expect (K.Tokens.Array_version.tokens text);
      Alcotest.(check tok_t) "rad" expect (K.Tokens.Rad_version.tokens text);
      Alcotest.(check tok_t) "delay" expect (K.Tokens.Delay_version.tokens text))
    sizes;
  (* Edge shapes. *)
  List.iter
    (fun s ->
      let text = Bytes.of_string s in
      let expect = K.Tokens.reference text in
      Alcotest.(check tok_t) ("delay: " ^ String.escaped s) expect
        (K.Tokens.Delay_version.tokens text))
    [ ""; " "; "   "; "abc"; " abc"; "abc "; "a b c"; "ab\ncd  ef\t"; "\n\n" ]

let test_token_spans () =
  let text = Bytes.of_string "foo  bar\nbazz x" in
  let expect = [| (0, 3); (5, 3); (9, 4); (14, 1) |] in
  Alcotest.(check (array (pair int int))) "spans" expect
    (K.Tokens.Delay_version.token_spans text);
  Alcotest.(check (array (pair int int))) "spans array" expect
    (K.Tokens.Array_version.token_spans text)

(* ---------------- grep ---------------- *)

let test_grep () =
  List.iter
    (fun n ->
      let text = K.Grep.generate ~seed:(n + 3) n in
      let expect = K.Grep.reference text "needle" in
      Alcotest.(check tok_t) "array" expect (K.Grep.Array_version.grep text "needle");
      Alcotest.(check tok_t) "rad" expect (K.Grep.Rad_version.grep text "needle");
      Alcotest.(check tok_t) "delay" expect (K.Grep.Delay_version.grep text "needle"))
    sizes;
  let text = Bytes.of_string "hay\nneedle here\nnothing\nend needle\n" in
  let expect = K.Grep.reference text "needle" in
  Alcotest.(check tok_t) "fixed text" expect (K.Grep.Delay_version.grep text "needle")

(* ---------------- integrate ---------------- *)

let test_integrate () =
  let n = 100_000 in
  let expect = K.Integrate.reference n in
  float_eq "array" expect (K.Integrate.Array_version.integrate n);
  float_eq "rad" expect (K.Integrate.Rad_version.integrate n);
  float_eq "delay" expect (K.Integrate.Delay_version.integrate n);
  (* The unboxed block loop inlines the integrand; same sums, same
     block-split reassociation as the boxed lane. *)
  float_eq "unboxed" expect (K.Integrate.integrate_unboxed n);
  float_eq "unboxed n=1" (K.Integrate.reference 1) (K.Integrate.integrate_unboxed 1);
  (* Midpoint rule converges to the closed form. *)
  Alcotest.(check bool) "accuracy" true
    (Float.abs (K.Integrate.Delay_version.integrate 1_000_000 -. K.Integrate.exact ())
    < 1e-3);
  Alcotest.(check bool) "unboxed accuracy" true
    (Float.abs (K.Integrate.integrate_unboxed 1_000_000 -. K.Integrate.exact ())
    < 1e-3)

(* ---------------- linearrec ---------------- *)

let farray = Alcotest.(array (float 1e-6))

let test_linearrec () =
  List.iter
    (fun n ->
      let xy = K.Linearrec.generate ~seed:(n + 5) n in
      let expect = K.Linearrec.reference xy in
      Alcotest.check farray "array" expect (K.Linearrec.Array_version.solve xy);
      Alcotest.check farray "rad" expect (K.Linearrec.Rad_version.solve xy);
      Alcotest.check farray "delay" expect (K.Linearrec.Delay_version.solve xy))
    sizes

(* ---------------- linefit ---------------- *)

let test_linefit () =
  let pts = K.Linefit.generate ~seed:1 50_000 in
  let es, ei = K.Linefit.reference pts in
  List.iter
    (fun (name, (s, i)) ->
      float_eq (name ^ " slope") es s;
      float_eq (name ^ " intercept") ei i)
    [
      ("array", K.Linefit.Array_version.fit pts);
      ("rad", K.Linefit.Rad_version.fit pts);
      ("delay", K.Linefit.Delay_version.fit pts);
      ("unboxed", K.Linefit.fit_unboxed pts);
    ];
  (* The fit recovers the generating line. *)
  Alcotest.(check bool) "slope near 2.5" true (Float.abs (es -. 2.5) < 0.05);
  Alcotest.(check bool) "intercept near -1" true (Float.abs (ei +. 1.0) < 0.1)

(* ---------------- mcss ---------------- *)

let test_mcss () =
  List.iter
    (fun n ->
      let a = K.Mcss.generate ~seed:(n + 7) n in
      let expect = K.Mcss.reference a in
      Alcotest.(check int) "array" expect (K.Mcss.Array_version.mcss a);
      Alcotest.(check int) "rad" expect (K.Mcss.Rad_version.mcss a);
      Alcotest.(check int) "delay" expect (K.Mcss.Delay_version.mcss a))
    sizes;
  Alcotest.(check int) "all negative" 0
    (K.Mcss.Delay_version.mcss (Array.make 100 (-5)));
  Alcotest.(check int) "all positive" 500 (K.Mcss.Delay_version.mcss (Array.make 100 5));
  Alcotest.(check int) "known" 6 (K.Mcss.Delay_version.mcss [| -2; 1; -3; 4; -1; 2; 1; -5; 4 |])

let test_mcss_floats () =
  List.iter
    (fun n ->
      if n > 0 then begin
        let a = K.Mcss.generate_floats ~seed:(n + 7) n in
        let expect = K.Mcss.reference_floats a in
        float_eq "boxed" expect (K.Mcss.mcss_floats_boxed a);
        float_eq "unboxed" expect (K.Mcss.mcss_floats a)
      end)
    sizes;
  float_eq "known" 6.0
    (K.Mcss.mcss_floats [| -2.; 1.; -3.; 4.; -1.; 2.; 1.; -5.; 4. |]);
  (* All-negative input: the empty subsequence wins (0, as in the int
     kernel). *)
  float_eq "all negative" (K.Mcss.reference_floats (Array.make 100 (-5.0)))
    (K.Mcss.mcss_floats (Array.make 100 (-5.0)))

(* ---------------- quickhull ---------------- *)

let sort_points l = List.sort compare l

let test_quickhull () =
  List.iter
    (fun n ->
      let pts = K.Quickhull.generate ~seed:(n + 11) n in
      let expect = sort_points (K.Quickhull.reference pts) in
      let check name hull =
        Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
          (Printf.sprintf "%s n=%d" name n)
          expect
          (sort_points (hull pts))
      in
      check "array" K.Quickhull.Array_version.hull;
      check "rad" K.Quickhull.Rad_version.hull;
      check "delay" K.Quickhull.Delay_version.hull)
    [ 0; 1; 2; 3; 100; 20_000 ];
  (* Known square: hull is the four corners. *)
  let square =
    [| (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0); (0.5, 0.5); (0.3, 0.7) |]
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "square"
    (sort_points [ (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0) ])
    (sort_points (K.Quickhull.Delay_version.hull square))

(* ---------------- sparse_mxv ---------------- *)

let test_sparse_mxv () =
  List.iter
    (fun rows ->
      let m, x = K.Sparse_mxv.generate ~seed:(rows + 13) ~rows ~nnz_per_row:8 () in
      let expect = K.Sparse_mxv.reference m x in
      Alcotest.check farray "array" expect (K.Sparse_mxv.Array_version.mxv m x);
      Alcotest.check farray "rad" expect (K.Sparse_mxv.Rad_version.mxv m x);
      Alcotest.check farray "delay" expect (K.Sparse_mxv.Delay_version.mxv m x))
    [ 1; 10; 1000 ]

(* ---------------- wc ---------------- *)

let wc_t = Alcotest.(triple int int int)

let test_wc () =
  List.iter
    (fun n ->
      let text = K.Wc.generate ~seed:(n + 17) n in
      let expect = K.Wc.reference text in
      Alcotest.(check wc_t) "array" expect (K.Wc.Array_version.wc text);
      Alcotest.(check wc_t) "rad" expect (K.Wc.Rad_version.wc text);
      Alcotest.(check wc_t) "delay" expect (K.Wc.Delay_version.wc text))
    sizes

(* Every kernel's delay version under a matrix of block policies. *)
let test_policy_matrix () =
  let n = 487 in
  List.iter
    (fun (pname, policy) ->
      with_policy policy (fun () ->
          let ctx name = Printf.sprintf "%s under %s" name pname in
          let a = K.Bestcut.generate ~seed:3 n in
          float_eq (ctx "bestcut") (K.Bestcut.reference a)
            (K.Bestcut.Delay_version.best_cut a);
          let x, y = K.Bignum.generate_input ~seed:3 n in
          Alcotest.(check string) (ctx "bignum")
            (Bytes.to_string (fst (K.Bignum.reference x y)))
            (Bytes.to_string (fst (K.Bignum.Delay_version.add x y)));
          Alcotest.(check int_array) (ctx "primes") (K.Primes.reference n)
            (K.Primes.Delay_version.primes n);
          let text = K.Tokens.generate ~seed:3 n in
          Alcotest.(check tok_t) (ctx "tokens") (K.Tokens.reference text)
            (K.Tokens.Delay_version.tokens text);
          Alcotest.(check tok_t) (ctx "grep")
            (K.Grep.reference text "ab")
            (K.Grep.Delay_version.grep text "ab");
          Alcotest.(check tok_t) (ctx "inverted-index")
            (K.Inverted_index.reference text)
            (K.Inverted_index.Delay_version.index text);
          Alcotest.(check wc_t) (ctx "wc") (K.Wc.reference text)
            (K.Wc.Delay_version.wc text);
          let xy = K.Linearrec.generate ~seed:3 n in
          Alcotest.check farray (ctx "linearrec") (K.Linearrec.reference xy)
            (K.Linearrec.Delay_version.solve xy);
          let ints = K.Mcss.generate ~seed:3 n in
          Alcotest.(check int) (ctx "mcss") (K.Mcss.reference ints)
            (K.Mcss.Delay_version.mcss ints);
          let pts = K.Quickhull.generate ~seed:3 n in
          Alcotest.(check int)
            (ctx "quickhull")
            (List.length (K.Quickhull.reference pts))
            (List.length (K.Quickhull.Delay_version.hull pts));
          let keys = K.Dedup.generate ~seed:3 ~distinct:40 n in
          Alcotest.(check int_array) (ctx "dedup") (K.Dedup.reference keys)
            (K.Dedup.Delay_version.dedup keys)))
    [
      ("B=1", Bds.Block.Fixed 1);
      ("B=2", Bds.Block.Fixed 2);
      ("B=7", Bds.Block.Fixed 7);
      ("B=100", Bds.Block.Fixed 100);
      ("B=1000", Bds.Block.Fixed 1000);
    ]

(* Kernels must stay correct under degenerate block sizes. *)
let test_kernels_small_blocks () =
  with_policy (Bds.Block.Fixed 3) (fun () ->
      let a = K.Bestcut.generate ~seed:23 997 in
      float_eq "bestcut" (K.Bestcut.reference a) (K.Bestcut.Delay_version.best_cut a);
      let x, y = K.Bignum.generate_input ~seed:23 997 in
      check_bignum "bignum" K.Bignum.Delay_version.add x y;
      let text = K.Tokens.generate ~seed:23 997 in
      Alcotest.(check tok_t) "tokens" (K.Tokens.reference text)
        (K.Tokens.Delay_version.tokens text);
      Alcotest.(check int_array) "primes" (K.Primes.reference 997)
        (K.Primes.Delay_version.primes 997))

let () =
  Alcotest.run "kernels"
    [
      ( "bid kernels",
        [
          Alcotest.test_case "bestcut" `Quick test_bestcut;
          Alcotest.test_case "bestcut sob" `Quick test_bestcut_sob;
          Alcotest.test_case "bignum" `Quick test_bignum;
          Alcotest.test_case "bignum carry chains" `Quick test_bignum_carry_chains;
          Alcotest.test_case "primes" `Quick test_primes;
          Alcotest.test_case "tokens" `Quick test_tokens;
          Alcotest.test_case "token spans" `Quick test_token_spans;
        ] );
      ( "rad kernels",
        [
          Alcotest.test_case "grep" `Quick test_grep;
          Alcotest.test_case "integrate" `Quick test_integrate;
          Alcotest.test_case "linearrec" `Quick test_linearrec;
          Alcotest.test_case "linefit" `Quick test_linefit;
          Alcotest.test_case "mcss" `Quick test_mcss;
          Alcotest.test_case "mcss floats" `Quick test_mcss_floats;
          Alcotest.test_case "quickhull" `Quick test_quickhull;
          Alcotest.test_case "sparse-mxv" `Quick test_sparse_mxv;
          Alcotest.test_case "wc" `Quick test_wc;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "small blocks" `Quick test_kernels_small_blocks;
          Alcotest.test_case "policy matrix" `Quick test_policy_matrix;
        ] );
    ]
