(* Unit tests for the service-observability substrate: the labeled
   metrics registry and its OpenMetrics exposition/validator
   (lib/runtime/metrics.ml), and the flight recorder ring and its dump
   validator (lib/runtime/flight.ml).

   The registry is process-global, so tests use distinct family names
   and call [Metrics.reset] where a clean slate matters; the validator
   tests feed hand-written expositions, which keeps the negative cases
   (unsorted labels, non-monotone buckets) independent of the
   renderer. *)

module Metrics = Bds_runtime.Metrics
module Flight = Bds_runtime.Flight
module Telemetry = Bds_runtime.Telemetry

let contains s sub =
  let sl = String.length s and bl = String.length sub in
  let rec at i = i + bl <= sl && (String.sub s i bl = sub || at (i + 1)) in
  at 0

let check_contains what body sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %S in exposition" what sub)
    true (contains body sub)

let check_valid what body =
  match Metrics.validate_string body with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: exposition invalid: %s" what e)

(* ------------------------------------------------------------------ *)
(* Registry and renderer                                               *)

let test_counter_render () =
  let f = Metrics.family ~help:"test requests" ~kind:Metrics.Counter
      "bds_test_requests"
  in
  Metrics.incr f ~labels:[ ("tenant", "a") ];
  Metrics.incr ~by:2 f ~labels:[ ("tenant", "b") ];
  Metrics.incr f ~labels:[ ("tenant", "a") ];
  let body = Metrics.render () in
  check_contains "type line" body "# TYPE bds_test_requests counter\n";
  check_contains "help line" body "# HELP bds_test_requests test requests\n";
  check_contains "series a" body "bds_test_requests_total{tenant=\"a\"} 2\n";
  check_contains "series b" body "bds_test_requests_total{tenant=\"b\"} 2\n";
  check_contains "telemetry bridge" body "# TYPE bds_runtime_";
  check_contains "uptime gauge" body "# TYPE bds_uptime_seconds gauge\n";
  check_contains "terminator" body "# EOF\n";
  check_valid "counter exposition" body

let test_label_ordering_and_escaping () =
  let f = Metrics.family ~kind:Metrics.Gauge "bds_test_escape" in
  (* Labels given out of order; value needs all three escapes. *)
  Metrics.set f ~labels:[ ("zone", "z\\1\"x\ny"); ("app", "bds") ] 4.5;
  let body = Metrics.render () in
  check_contains "sorted labels, escaped value" body
    "bds_test_escape{app=\"bds\",zone=\"z\\\\1\\\"x\\ny\"} 4.5\n";
  check_valid "escaped exposition" body

let test_histogram_render () =
  let f = Metrics.family ~kind:Metrics.Histogram "bds_test_latency_seconds" in
  Metrics.observe_ns f ~labels:[ ("op", "map") ] 1_000;
  Metrics.observe_ns f ~labels:[ ("op", "map") ] 2_000_000;
  Metrics.observe_ns f ~labels:[ ("op", "map") ] 2_000_000_000;
  let body = Metrics.render () in
  check_contains "histogram type" body
    "# TYPE bds_test_latency_seconds histogram\n";
  check_contains "+Inf bucket counts all" body
    "bds_test_latency_seconds_bucket{le=\"+Inf\",op=\"map\"} 3\n";
  check_contains "count" body "bds_test_latency_seconds_count{op=\"map\"} 3\n";
  check_contains "sum" body "bds_test_latency_seconds_sum{op=\"map\"} ";
  check_valid "histogram exposition" body

let test_family_misuse () =
  let f = Metrics.family ~kind:Metrics.Counter "bds_test_misuse" in
  let raises what g =
    match g () with
    | () -> Alcotest.fail (what ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  raises "kind mismatch" (fun () ->
      ignore (Metrics.family ~kind:Metrics.Gauge "bds_test_misuse"));
  raises "set on counter" (fun () -> Metrics.set f ~labels:[] 1.0);
  raises "reserved le" (fun () -> Metrics.incr f ~labels:[ ("le", "x") ]);
  raises "bad label name" (fun () -> Metrics.incr f ~labels:[ ("9x", "v") ]);
  raises "duplicate label" (fun () ->
      Metrics.incr f ~labels:[ ("a", "1"); ("a", "2") ]);
  raises "bad family name" (fun () ->
      ignore (Metrics.family ~kind:Metrics.Counter "9bad"));
  raises "counter named _total" (fun () ->
      ignore (Metrics.family ~kind:Metrics.Counter "bds_test_x_total"))

let test_cardinality_cap () =
  let f = Metrics.family ~kind:Metrics.Counter "bds_test_cardinality" in
  for i = 0 to Metrics.max_series + 49 do
    Metrics.incr f ~labels:[ ("tenant", Printf.sprintf "t%05d" i) ]
  done;
  let body = Metrics.render () in
  check_contains "drops counted" body "bds_metrics_dropped_series_total 50\n";
  check_valid "capped exposition" body;
  (* Reset clears values and drop counts but keeps families. *)
  Metrics.reset ();
  let body = Metrics.render () in
  check_contains "drops cleared" body "bds_metrics_dropped_series_total 0\n"

(* ------------------------------------------------------------------ *)
(* Validator on hand-written expositions                               *)

let invalid what body fragment =
  match Metrics.validate_string body with
  | Ok _ -> Alcotest.fail (what ^ ": invalid exposition accepted")
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error %S mentions %S" what e fragment)
      true (contains e fragment)

let test_validator_rejects () =
  invalid "missing EOF" "# TYPE a counter\na_total 1\n" "# EOF";
  invalid "undeclared sample" "b_total 1\n# EOF\n" "no matching TYPE";
  invalid "unsorted labels"
    "# TYPE a counter\na_total{z=\"1\",a=\"2\"} 1\n# EOF\n" "sorted";
  invalid "counter without _total" "# TYPE a counter\na 1\n# EOF\n"
    "no matching TYPE";
  invalid "bad escape" "# TYPE a gauge\na{l=\"x\\t\"} 1\n# EOF\n" "escape";
  invalid "redeclared family" "# TYPE a gauge\n# TYPE a counter\n# EOF\n"
    "duplicate TYPE";
  invalid "non-monotone buckets"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"0.1\"} 3\n"
   ^ "h_bucket{le=\"0.2\"} 2\n" ^ "h_bucket{le=\"+Inf\"} 3\n" ^ "h_count 3\n"
   ^ "h_sum 0.4\n" ^ "# EOF\n")
    "cumulative";
  invalid "le not increasing"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"0.2\"} 1\n"
   ^ "h_bucket{le=\"0.1\"} 2\n" ^ "h_bucket{le=\"+Inf\"} 2\n" ^ "h_count 2\n"
   ^ "h_sum 0.3\n" ^ "# EOF\n")
    "increasing";
  invalid "count mismatch"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"+Inf\"} 2\n" ^ "h_count 3\n"
   ^ "h_sum 0.3\n" ^ "# EOF\n")
    "count";
  invalid "text after EOF" "# TYPE a gauge\n# EOF\na 1\n" "after # EOF"

let test_validator_accepts () =
  let body =
    "# HELP h a histogram\n# TYPE h histogram\n"
    ^ "h_bucket{le=\"0.1\",op=\"x\"} 1\n" ^ "h_bucket{le=\"+Inf\",op=\"x\"} 2\n"
    ^ "h_count{op=\"x\"} 2\n" ^ "h_sum{op=\"x\"} 0.25\n" ^ "# TYPE g gauge\n"
    ^ "g{a=\"1\"} -0.5\n" ^ "# EOF\n"
  in
  match Metrics.validate_string body with
  | Ok n -> Alcotest.(check int) "sample count" 5 n
  | Error e -> Alcotest.fail ("valid exposition rejected: " ^ e)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let test_flight_ring_wrap () =
  let t = Flight.create ~capacity:3 () in
  for i = 1 to 5 do
    Flight.record t ~reason:(Printf.sprintf "r%d" i)
  done;
  Alcotest.(check int) "recorded counts all" 5 (Flight.recorded t);
  Alcotest.(check int) "capacity" 3 (Flight.capacity t);
  let snaps = Flight.snapshots t in
  Alcotest.(check (list int))
    "oldest overwritten, seq preserved" [ 3; 4; 5 ]
    (List.map (fun s -> s.Flight.f_seq) snaps);
  Alcotest.(check (list string))
    "reasons follow" [ "r3"; "r4"; "r5" ]
    (List.map (fun s -> s.Flight.f_reason) snaps);
  match Flight.validate (Flight.dump_json t) with
  | Ok n -> Alcotest.(check int) "dump validates with 3 snapshots" 3 n
  | Error e -> Alcotest.fail ("wrapped dump invalid: " ^ e)

let test_flight_dump_file () =
  let t = Flight.create ~capacity:8 () in
  Flight.record t ~reason:"start" ~extra:[ ("queue_depth", 2.0) ];
  Flight.record t ~reason:"shutdown";
  let path = Filename.temp_file "bds_flight" ".json" in
  Flight.dump_file t path;
  (match Flight.validate_file path with
  | Ok n -> Alcotest.(check int) "file dump validates" 2 n
  | Error e -> Alcotest.fail ("file dump invalid: " ^ e));
  Sys.remove path

let test_flight_guards () =
  (match Flight.create ~capacity:1 () with
  | _ -> Alcotest.fail "capacity 1 accepted"
  | exception Invalid_argument _ -> ());
  (match Flight.validate "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (* A tampered dump — a gap in seq — must be rejected. *)
  let t = Flight.create ~capacity:4 () in
  Flight.record t ~reason:"a";
  Flight.record t ~reason:"b";
  let dump = Flight.dump_json t in
  let tampered =
    (* replace the second snapshot's "seq":2 with "seq":7 *)
    let b = Buffer.create (String.length dump) in
    let i = ref 0 in
    let n = String.length dump in
    let pat = "\"seq\":2" in
    while !i < n do
      if
        !i + String.length pat <= n
        && String.sub dump !i (String.length pat) = pat
      then begin
        Buffer.add_string b "\"seq\":7";
        i := !i + String.length pat
      end
      else begin
        Buffer.add_char b dump.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  match Flight.validate tampered with
  | Ok _ -> Alcotest.fail "seq gap accepted"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions seq (%s)" e)
      true (contains e "seq")

let test_uptime_monotone () =
  let u1 = Telemetry.uptime_ns () in
  let u2 = Telemetry.uptime_ns () in
  Alcotest.(check bool) "uptime does not go backwards" true (u2 >= u1);
  Alcotest.(check bool) "uptime positive" true (u1 >= 0)

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter render" `Quick test_counter_render;
          Alcotest.test_case "label ordering + escaping" `Quick
            test_label_ordering_and_escaping;
          Alcotest.test_case "histogram render" `Quick test_histogram_render;
          Alcotest.test_case "family misuse" `Quick test_family_misuse;
          Alcotest.test_case "cardinality cap" `Quick test_cardinality_cap;
        ] );
      ( "validator",
        [
          Alcotest.test_case "rejects malformed" `Quick test_validator_rejects;
          Alcotest.test_case "accepts well-formed" `Quick
            test_validator_accepts;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap" `Quick test_flight_ring_wrap;
          Alcotest.test_case "dump file" `Quick test_flight_dump_file;
          Alcotest.test_case "guards" `Quick test_flight_guards;
          Alcotest.test_case "uptime monotone" `Quick test_uptime_monotone;
        ] );
    ]
