(* Eager parallel arrays vs list/sequential models. *)

module P = Bds_parray.Parray
open Bds_test_util

let () = init ()

let alist a = Array.to_list a

let test_tabulate () =
  Alcotest.(check int_array) "tabulate" [| 0; 1; 4; 9 |] (P.tabulate 4 (fun i -> i * i));
  Alcotest.(check int_array) "empty" [||] (P.tabulate 0 (fun _ -> assert false));
  Alcotest.(check int_array) "iota" [| 0; 1; 2 |] (P.iota 3)

let test_witness_called_once () =
  (* tabulate must evaluate f 0 exactly once (important when f has
     side effects, e.g. BFS's compare-and-swap). *)
  let calls = Array.make 64 0 in
  ignore (P.tabulate 64 (fun i -> calls.(i) <- calls.(i) + 1));
  Alcotest.(check int_array) "each index once" (Array.make 64 1) calls

let test_map_zip () =
  let a = Array.init 100 Fun.id in
  Alcotest.(check int_array) "map" (Array.map (( + ) 1) a) (P.map (( + ) 1) a);
  Alcotest.(check int_array) "mapi" (Array.mapi ( + ) a) (P.mapi ( + ) a);
  Alcotest.(check int_array) "map2" (Array.map (fun x -> 2 * x) a) (P.map2 ( + ) a a);
  Alcotest.check_raises "map2 mismatch" (Invalid_argument "Parray.map2") (fun () ->
      ignore (P.map2 ( + ) a (Array.make 3 0)))

let test_reduce () =
  let a = Array.init 1000 (fun i -> i - 500) in
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 a) (P.reduce ( + ) 0 a);
  (* Non-commutative, non-identity seed. *)
  let s = Array.init 50 (fun i -> String.make 1 (Char.chr (65 + (i mod 26)))) in
  Alcotest.(check string) "ordered" (Array.fold_left ( ^ ) ">" s) (P.reduce ( ^ ) ">" s);
  Alcotest.(check int) "empty" 7 (P.reduce ( + ) 7 [||])

let check_scan name n z =
  let a = Array.init n (fun i -> (i mod 17) - 8) in
  let expect, etotal = list_scan ( + ) z (alist a) in
  let got, total = P.scan ( + ) z a in
  Alcotest.(check int_list) (name ^ " prefixes") expect (alist got);
  Alcotest.(check int) (name ^ " total") etotal total;
  let expect_incl = list_scan_incl ( + ) z (alist a) in
  Alcotest.(check int_list) (name ^ " inclusive") expect_incl (alist (P.scan_incl ( + ) z a))

let test_scan_sizes () =
  List.iter (fun n -> check_scan (Printf.sprintf "n=%d" n) n 0) [ 0; 1; 2; 7; 100; 4096; 10001 ];
  (* Seed applied exactly once even when non-identity. *)
  check_scan "seeded" 1000 100

let test_scan_noncommutative () =
  let a = Array.init 500 (fun i -> ((float_of_int (i mod 7) /. 7.0) -. 0.4, 1.0)) in
  let compose (a1, b1) (a2, b2) = (a1 *. a2, (b1 *. a2) +. b2) in
  let got, _ = P.scan compose (1.0, 0.0) a in
  let expect, _ = list_scan compose (1.0, 0.0) (alist a) in
  List.iter2
    (fun (ga, gb) (ea, eb) ->
      Alcotest.(check (float 1e-9)) "a" ea ga;
      Alcotest.(check (float 1e-9)) "b" eb gb)
    (alist got) expect

let test_filter () =
  let a = Array.init 1000 Fun.id in
  Alcotest.(check int_array) "filter"
    (Array.of_list (List.filter (fun x -> x mod 3 = 0) (alist a)))
    (P.filter (fun x -> x mod 3 = 0) a);
  Alcotest.(check int_array) "filter none" [||] (P.filter (fun _ -> false) a);
  Alcotest.(check int_array) "filter all" a (P.filter (fun _ -> true) a);
  Alcotest.(check int_array) "filter_op"
    (Array.of_list
       (List.filter_map (fun x -> if x mod 5 = 0 then Some (x / 5) else None) (alist a)))
    (P.filter_op (fun x -> if x mod 5 = 0 then Some (x / 5) else None) a)

let test_flatten () =
  let aa = Array.init 30 (fun i -> Array.init (i mod 5) (fun j -> (i * 10) + j)) in
  Alcotest.(check int_array) "flatten"
    (Array.concat (alist aa))
    (P.flatten aa);
  Alcotest.(check int_array) "flatten empty outer" [||] (P.flatten [||]);
  Alcotest.(check int_array) "flatten all empty" [||] (P.flatten (Array.make 5 [||]))

let test_misc () =
  let a = Array.init 10 Fun.id in
  Alcotest.(check int_array) "rev" [| 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 |] (P.rev a);
  Alcotest.(check int_array) "append" (Array.append a a) (P.append a a);
  Alcotest.(check int_array) "append empty" a (P.append [||] a);
  Alcotest.(check bool) "equal" true (P.equal ( = ) a (Array.copy a));
  Alcotest.(check bool) "not equal" false (P.equal ( = ) a (P.rev a));
  (* The block grid now comes from the unified granularity layer. *)
  let g = Bds_runtime.Runtime.block_grid 10 in
  Alcotest.(check bool) "grid small" true (g.Bds_runtime.Grain.num_blocks >= 1);
  Alcotest.(check int) "grid zero"
    0
    (Bds_runtime.Runtime.block_grid 0).Bds_runtime.Grain.num_blocks

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"scan = list scan" ~count:300 small_int_array (fun a ->
        let got, total = P.scan ( + ) 3 a in
        let expect, etotal = list_scan ( + ) 3 (alist a) in
        alist got = expect && total = etotal);
    Test.make ~name:"filter = list filter" ~count:300 small_int_array (fun a ->
        alist (P.filter (fun x -> x land 1 = 0) a)
        = List.filter (fun x -> x land 1 = 0) (alist a));
    Test.make ~name:"flatten . map = concat_map" ~count:100 small_int_array (fun a ->
        let nested = P.map (fun x -> Array.make (abs x mod 4) x) a in
        alist (P.flatten nested)
        = List.concat_map (fun x -> List.init (abs x mod 4) (fun _ -> x)) (alist a));
  ]

let () =
  Alcotest.run "parray"
    [
      ( "parray",
        [
          Alcotest.test_case "tabulate" `Quick test_tabulate;
          Alcotest.test_case "witness once" `Quick test_witness_called_once;
          Alcotest.test_case "map/zip" `Quick test_map_zip;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "scan sizes" `Quick test_scan_sizes;
          Alcotest.test_case "scan non-commutative" `Quick test_scan_noncommutative;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "misc" `Quick test_misc;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
