(* Scheduler: fork-join correctness, exception propagation, ordering. *)

module Pool = Bds_runtime.Pool
module Runtime = Bds_runtime.Runtime

let () = Bds_test_util.init ()

let test_fib () =
  let rec fib n =
    if n < 2 then n
    else if n < 10 then fib (n - 1) + fib (n - 2)
    else begin
      let a, b = Runtime.par (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
      a + b
    end
  in
  Alcotest.(check int) "fib 24" 46368 (fib 24)

let test_parallel_for_covers () =
  let n = 100_000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Runtime.parallel_for ~grain:13 0 n (fun i -> Atomic.incr hits.(i));
  let bad = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) hits;
  Alcotest.(check int) "each index exactly once" 0 !bad

let test_reduce_order () =
  (* Non-commutative combine: concatenation must preserve index order and
     apply the seed exactly once, on the left. *)
  let n = 500 in
  let s =
    Runtime.parallel_for_reduce ~grain:7 0 n ~combine:( ^ ) ~init:">"
      (fun i -> string_of_int (i mod 10))
  in
  let expect =
    ">" ^ String.concat "" (List.init n (fun i -> string_of_int (i mod 10)))
  in
  Alcotest.(check string) "ordered concat" expect s

let test_reduce_empty_and_one () =
  Alcotest.(check int) "empty" 42
    (Runtime.parallel_for_reduce 5 5 ~combine:( + ) ~init:42 (fun _ -> 1));
  Alcotest.(check int) "singleton" 49
    (Runtime.parallel_for_reduce 5 6 ~combine:( + ) ~init:42 (fun _ -> 7))

exception Boom of int

let test_exception_propagation () =
  let pool = Runtime.get_pool () in
  Alcotest.check_raises "await re-raises" (Boom 7) (fun () ->
      Pool.run pool (fun () ->
          let p = Pool.async pool (fun () -> raise (Boom 7)) in
          Pool.await pool p));
  (* The pool must still be usable afterwards. *)
  Alcotest.(check int) "pool alive" 10
    (Runtime.parallel_for_reduce 0 10 ~combine:( + ) ~init:0 (fun _ -> 1))

let test_exception_in_parallel_for () =
  Alcotest.check_raises "body exception" (Boom 1) (fun () ->
      Runtime.parallel_for ~grain:1 0 64 (fun i -> if i = 33 then raise (Boom 1)))

let test_nested_parallelism () =
  let r =
    Runtime.parallel_for_reduce ~grain:1 0 50 ~combine:( + ) ~init:0 (fun i ->
        Runtime.parallel_for_reduce ~grain:3 0 50 ~combine:( + ) ~init:0
          (fun j -> i * j))
  in
  Alcotest.(check int) "nested sum" (1225 * 1225) r

let test_async_from_outside () =
  (* async/await without entering [run]: await helps until completion. *)
  let pool = Runtime.get_pool () in
  let p = Pool.async pool (fun () -> List.init 100 Fun.id |> List.fold_left ( + ) 0) in
  Alcotest.(check int) "outside await" 4950 (Pool.await pool p);
  (* Even on a pool with zero spawned workers and no active [run], the
     outside awaiter must make progress by executing the work itself. *)
  let solo = Pool.create ~num_additional_domains:0 () in
  let q = Pool.async solo (fun () -> 123) in
  Alcotest.(check int) "solo pool await" 123 (Pool.await solo q);
  (* Including when the task itself forks. *)
  let q2 =
    Pool.async solo (fun () ->
        let a = Pool.async solo (fun () -> 40) in
        Pool.await solo a + 2)
  in
  Alcotest.(check int) "solo pool nested" 42 (Pool.await solo q2);
  Pool.teardown solo

let test_many_asyncs () =
  let pool = Runtime.get_pool () in
  let r =
    Pool.run pool (fun () ->
        let ps = List.init 1000 (fun i -> Pool.async pool (fun () -> i)) in
        List.fold_left (fun acc p -> acc + Pool.await pool p) 0 ps)
  in
  Alcotest.(check int) "sum of 1000 asyncs" 499500 r

let test_run_inline_when_nested () =
  let pool = Runtime.get_pool () in
  let r = Pool.run pool (fun () -> Pool.run pool (fun () -> 11)) in
  Alcotest.(check int) "nested run" 11 r

let test_stats_and_teardown () =
  (* Use a private pool so the global one keeps running. *)
  let pool = Pool.create ~num_additional_domains:2 () in
  let r =
    Pool.run pool (fun () ->
        let p = Pool.async pool (fun () -> 21) in
        Pool.await pool p * 2)
  in
  Alcotest.(check int) "private pool" 42 r;
  let executed, _steals = Pool.stats pool in
  Alcotest.(check bool) "executed > 0" true (executed > 0);
  Pool.teardown pool;
  Pool.teardown pool (* idempotent *);
  Alcotest.check_raises "run after teardown" Pool.Shutdown (fun () ->
      ignore (Pool.run pool (fun () -> 0)))

(* ------------------------------------------------------------------ *)
(* Cancellation scopes *)

let test_cancellation_bounds_wasted_work () =
  (* Acceptance criterion: a 10M-iteration parallel_for whose body raises
     at i=0 executes at most 1% of the remaining iterations after the
     fault fires — un-started subtasks no-op on the cancelled token,
     in-flight chunks observe it at grain boundaries.  (Iterations that
     run before the fault are legitimate work, and on an oversubscribed
     machine the OS can delay the faulting chunk arbitrarily, so the
     bound is on post-fault work.) *)
  let n = 10_000_000 in
  let fired = Atomic.make false in
  let late = Atomic.make 0 in
  let raised = ref false in
  (try
     Runtime.parallel_for 0 n (fun i ->
         if Atomic.get fired then ignore (Atomic.fetch_and_add late 1);
         if i = 0 then begin
           Atomic.set fired true;
           raise (Boom 0)
         end)
   with Boom 0 -> raised := true);
  Alcotest.(check bool) "original exception propagated" true !raised;
  let late = Atomic.get late in
  Alcotest.(check bool)
    (Printf.sprintf "post-fault iterations %d <= %d (1%% of %d)" late (n / 100) n)
    true
    (late <= n / 100)

let test_cancellation_single_domain_exact () =
  (* On one domain the schedule is deterministic: the raising chunk runs
     first, every other queued subtask observes the cancelled token at
     its entry, so exactly one body call happens. *)
  Runtime.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      let count = Atomic.make 0 in
      (try
         Runtime.parallel_for ~grain:100 0 100_000 (fun i ->
             ignore (Atomic.fetch_and_add count 1);
             if i = 0 then raise (Boom 0))
       with Boom 0 -> ());
      Alcotest.(check int) "exactly one body call" 1 (Atomic.get count))

let test_cancellation_sibling_par () =
  (* First raise in one branch of [par] stops the sibling: either it
     never starts (token checked at branch entry) or its own nested loop
     observes the inherited token at grain boundaries. *)
  let n = 10_000_000 in
  let fired = Atomic.make false in
  let late = Atomic.make 0 in
  let raised = ref false in
  (try
     ignore
       (Runtime.par
          (fun () ->
            Atomic.set fired true;
            raise (Boom 9))
          (fun () ->
            Runtime.parallel_for 0 n (fun _ ->
                if Atomic.get fired then ignore (Atomic.fetch_and_add late 1))))
   with Boom 9 -> raised := true);
  Alcotest.(check bool) "sibling's scope raised Boom" true !raised;
  let late = Atomic.get late in
  Alcotest.(check bool)
    (Printf.sprintf "sibling post-fault iterations %d <= %d" late (n / 100))
    true
    (late <= n / 100)

let test_cancellation_reduce () =
  let n = 10_000_000 in
  let fired = Atomic.make false in
  let late = Atomic.make 0 in
  Alcotest.check_raises "reduce propagates first raise" (Boom 3) (fun () ->
      ignore
        (Runtime.parallel_for_reduce 0 n ~combine:( + ) ~init:0 (fun i ->
             if Atomic.get fired then ignore (Atomic.fetch_and_add late 1);
             if i = 0 then begin
               Atomic.set fired true;
               raise (Boom 3)
             end
             else i)));
  Alcotest.(check bool) "reduce stopped early" true (Atomic.get late <= n / 100)

let test_ambient_fiber_local () =
  (* Regression: the ambient cancellation token is fiber-local.  Nested
     scopes suspend (Pool.await) inside [with_ambient] regions and their
     continuations can resume on other domains; a migrated fiber must
     carry its own token and must not clobber the resuming domain's
     ambient.  Before the fix, a cancelled scope's token could leak into
     the worker loop, and a later healthy scope — whose [scope_token]
     inherits the ambient as parent — was born cancelled and raised raw
     [Cancel.Cancelled].  Interleave raising and healthy nested scopes
     repeatedly and require the healthy ones to always complete. *)
  for _round = 1 to 50 do
    (try
       ignore
         (Runtime.par
            (fun () ->
              Runtime.parallel_for ~grain:1 0 64 (fun i ->
                  if i = 13 then raise (Boom 13)))
            (fun () ->
              Runtime.parallel_for_reduce ~grain:1 0 64 ~combine:( + ) ~init:0
                (fun i ->
                  Runtime.parallel_for_reduce ~grain:1 0 8 ~combine:( + )
                    ~init:0 (fun j -> i + j))))
     with Boom 13 -> ());
    Alcotest.(check int) "healthy scope after cancelled one" 4950
      (Runtime.parallel_for_reduce ~grain:1 0 100 ~combine:( + ) ~init:0
         Fun.id)
  done

let test_pool_alive_after_cancellation () =
  (try Runtime.parallel_for 0 1_000_000 (fun i -> if i = 17 then raise (Boom 2))
   with Boom 2 -> ());
  Alcotest.(check int) "pool computes after cancellation" 1000
    (Runtime.parallel_for_reduce 0 1000 ~combine:( + ) ~init:0 (fun _ -> 1))

(* ------------------------------------------------------------------ *)
(* Fail-fast lifecycle *)

let test_async_after_teardown () =
  let pool = Pool.create ~num_additional_domains:1 () in
  Pool.teardown pool;
  Alcotest.check_raises "async raises Shutdown" Pool.Shutdown (fun () ->
      ignore (Pool.async pool (fun () -> 1)));
  Alcotest.check_raises "run raises Shutdown" Pool.Shutdown (fun () ->
      ignore (Pool.run pool (fun () -> 1)))

let test_teardown_drains_queued () =
  (* Every task queued before teardown resolves: teardown drains
     deterministically instead of dropping work on the floor. *)
  let pool = Pool.create ~num_additional_domains:2 () in
  let ps = List.init 64 (fun i -> Pool.async pool (fun () -> i * i)) in
  Pool.teardown pool;
  List.iteri
    (fun i p -> Alcotest.(check int) "drained result" (i * i) (Pool.await pool p))
    ps

let test_teardown_while_busy () =
  let work i =
    let acc = ref 0 in
    for k = 0 to 50_000 do
      acc := !acc + ((k + i) mod 7)
    done;
    !acc
  in
  let pool = Pool.create ~num_additional_domains:2 () in
  let ps = List.init 32 (fun i -> Pool.async pool (fun () -> work i)) in
  (* Tear down while tasks are still queued / in flight. *)
  Pool.teardown pool;
  List.iteri
    (fun i p -> Alcotest.(check int) "busy task drained" (work i) (Pool.await pool p))
    ps;
  Alcotest.check_raises "pool rejects new work" Pool.Shutdown (fun () ->
      ignore (Pool.async pool (fun () -> 0)))

let test_worker_crash_poisons () =
  (* A raw task that raises escapes the scheduler (task-body exceptions
     are normally contained by promise wrappers) and must poison the pool
     rather than silently killing the worker domain. *)
  let pool = Pool.create ~num_additional_domains:1 () in
  Pool.For_testing.inject_raw_task pool (fun () ->
      failwith "injected scheduler crash");
  let rec wait n =
    if n = 0 then Alcotest.fail "pool never became poisoned"
    else
      match Pool.health pool with
      | `Poisoned diag ->
        Alcotest.(check bool) "diagnostic names the exception" true
          (String.length diag > 0)
      | _ ->
        Unix.sleepf 0.005;
        wait (n - 1)
  in
  wait 2000;
  (try
     ignore (Pool.async pool (fun () -> 1));
     Alcotest.fail "async on poisoned pool should raise"
   with Pool.Worker_crashed _ -> ());
  (try
     ignore (Pool.run pool (fun () -> 1));
     Alcotest.fail "run on poisoned pool should raise"
   with Pool.Worker_crashed _ -> ());
  Pool.teardown pool

let test_spawn_degradation () =
  (* Ask for more domains than the OCaml runtime allows (128 total):
     creation must degrade to the domains that did spawn — with the
     runner slot the pool stays usable — instead of aborting. *)
  let pool = Pool.create ~num_additional_domains:200 () in
  Alcotest.(check bool) "degraded below request" true (Pool.size pool < 201);
  Alcotest.(check bool) "at least the runner survives" true (Pool.size pool >= 1);
  let r =
    Pool.run pool (fun () ->
        let p = Pool.async pool (fun () -> 40) in
        Pool.await pool p + 2)
  in
  Alcotest.(check int) "degraded pool computes" 42 r;
  Pool.teardown pool

let test_parallel_for_lazy () =
  List.iter
    (fun (n, chunk) ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Runtime.parallel_for_lazy ~chunk 0 n (fun i -> Atomic.incr hits.(i));
      let bad = ref 0 in
      Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) hits;
      Alcotest.(check int)
        (Printf.sprintf "lbs n=%d chunk=%d" n chunk)
        0 !bad)
    [ (0, 64); (1, 64); (63, 64); (64, 64); (65, 64); (100_000, 1); (100_000, 64); (5000, 100_000) ];
  (* Imbalanced body still covers everything exactly once. *)
  let n = 10_000 in
  let sum = Atomic.make 0 in
  Runtime.parallel_for_lazy ~chunk:16 0 n (fun i ->
      let work = i mod 64 in
      let acc = ref 0 in
      for k = 1 to work * 10 do
        acc := !acc + k
      done;
      ignore (Sys.opaque_identity !acc);
      ignore (Atomic.fetch_and_add sum i));
  Alcotest.(check int) "imbalanced sum" (n * (n - 1) / 2) (Atomic.get sum)

let test_grain_extremes () =
  let n = 1000 in
  let a = Array.make n 0 in
  Runtime.parallel_for ~grain:1 0 n (fun i -> a.(i) <- i);
  Runtime.parallel_for ~grain:1_000_000 0 n (fun i -> a.(i) <- a.(i) + 1);
  let ok = ref true in
  Array.iteri (fun i v -> if v <> i + 1 then ok := false) a;
  Alcotest.(check bool) "grain extremes" true !ok

(* Scheduler fuzz: evaluate random fork-join expression trees and check
   against a sequential model. *)
type tree = Leaf of int | Node of tree * tree

let rec tree_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then map (fun v -> Leaf v) (int_range (-100) 100)
  else
    frequency
      [
        (1, map (fun v -> Leaf v) (int_range (-100) 100));
        (3, map2 (fun l r -> Node (l, r)) (tree_gen (depth - 1)) (tree_gen (depth - 1)));
      ]

let rec eval_seq = function
  | Leaf v -> v
  | Node (l, r) -> eval_seq l + (2 * eval_seq r)

let rec eval_par = function
  | Leaf v -> v
  | Node (l, r) ->
    let a, b = Runtime.par (fun () -> eval_par l) (fun () -> eval_par r) in
    a + (2 * b)

let fuzz_tests =
  [
    QCheck2.Test.make ~name:"random fork-join trees" ~count:150 (tree_gen 9)
      (fun t -> eval_par t = eval_seq t);
    QCheck2.Test.make ~name:"parallel_for_reduce = fold (random grain)" ~count:150
      QCheck2.Gen.(
        triple (int_bound 2000) (int_range 1 500) (int_range (-50) 50))
      (fun (n, grain, k) ->
        Runtime.parallel_for_reduce ~grain 0 n ~combine:( + ) ~init:k (fun i ->
            (i * i) mod 7)
        = List.fold_left ( + ) k (List.init n (fun i -> (i * i) mod 7)));
  ]

let () =
  Alcotest.run "pool"
    [
      ("fuzz", List.map (QCheck_alcotest.to_alcotest ~long:false) fuzz_tests);
      ( "fork-join",
        [
          Alcotest.test_case "fib" `Quick test_fib;
          Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
          Alcotest.test_case "reduce order (non-commutative)" `Quick test_reduce_order;
          Alcotest.test_case "reduce empty/one" `Quick test_reduce_empty_and_one;
          Alcotest.test_case "nested" `Quick test_nested_parallelism;
          Alcotest.test_case "many asyncs" `Quick test_many_asyncs;
          Alcotest.test_case "grain extremes" `Quick test_grain_extremes;
          Alcotest.test_case "parallel_for_lazy" `Quick test_parallel_for_lazy;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "await re-raises" `Quick test_exception_propagation;
          Alcotest.test_case "parallel_for body" `Quick test_exception_in_parallel_for;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "bounds wasted work (10M)" `Quick
            test_cancellation_bounds_wasted_work;
          Alcotest.test_case "single domain exact" `Quick
            test_cancellation_single_domain_exact;
          Alcotest.test_case "par sibling stops" `Quick test_cancellation_sibling_par;
          Alcotest.test_case "reduce stops early" `Quick test_cancellation_reduce;
          Alcotest.test_case "ambient token is fiber-local" `Quick
            test_ambient_fiber_local;
          Alcotest.test_case "pool alive after cancel" `Quick
            test_pool_alive_after_cancellation;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "async outside run" `Quick test_async_from_outside;
          Alcotest.test_case "run inline nested" `Quick test_run_inline_when_nested;
          Alcotest.test_case "stats and teardown" `Quick test_stats_and_teardown;
          Alcotest.test_case "async after teardown" `Quick test_async_after_teardown;
          Alcotest.test_case "teardown drains queued" `Quick test_teardown_drains_queued;
          Alcotest.test_case "teardown while busy" `Quick test_teardown_while_busy;
          Alcotest.test_case "worker crash poisons" `Quick test_worker_crash_poisons;
          Alcotest.test_case "spawn degradation" `Quick test_spawn_degradation;
        ] );
    ]
