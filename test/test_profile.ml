(* The work/span profiler, on a deterministic 1-domain pool.

   With one worker every leaf runs on the calling domain inside the
   op's wall interval, so work <= wall structurally and the derived
   parallelism must sit at ~1.0 (the acceptance criterion for the
   profiler's attribution model).  Timing itself is still wall-clock on
   a shared machine, so assertions use generous brackets, never exact
   durations. *)

module Runtime = Bds_runtime.Runtime
module Profile = Bds_runtime.Profile

let init =
  let done_ = ref false in
  fun () ->
    if not !done_ then begin
      (* 1 domain on purpose — do NOT use the shared 3-domain init. *)
      Runtime.set_num_domains 1;
      done_ := true
    end

let with_profiling f =
  init ();
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) f

let find name rows =
  match List.find_opt (fun r -> r.Profile.r_name = name) rows with
  | Some r -> r
  | None ->
    Alcotest.failf "no %S row (have: %s)" name
      (String.concat ", " (List.map (fun r -> r.Profile.r_name) rows))

(* Make the pipeline long enough that µs clock resolution is noise. *)
let n = 1_000_000

let test_single_domain_parallelism () =
  with_profiling (fun () ->
      let s = Bds.Seq.map (fun x -> (x * 7) land 1023) (Bds.Seq.iota n) in
      let total = Bds.Seq.reduce ( + ) 0 s in
      Alcotest.(check bool) "computed something" true (total > 0);
      let r = find "reduce" (Profile.rows ()) in
      Alcotest.(check int) "one call" 1 r.Profile.r_calls;
      Alcotest.(check bool) "recorded leaves" true (r.Profile.r_chunks > 0);
      Alcotest.(check bool) "work positive" true (r.Profile.r_work_ns > 0);
      Alcotest.(check bool) "work <= wall" true
        (r.Profile.r_work_ns <= r.Profile.r_wall_ns);
      Alcotest.(check bool) "span in [1, wall]" true
        (1 <= r.Profile.r_span_ns && r.Profile.r_span_ns <= r.Profile.r_wall_ns);
      (* The acceptance bracket: ~1.0 achieved parallelism on 1 domain.
         The lower bound tolerates scheduler overhead between leaves. *)
      Alcotest.(check bool)
        (Printf.sprintf "parallelism ~1.0 (got %.3f)" r.Profile.r_parallelism)
        true
        (r.Profile.r_parallelism > 0.6 && r.Profile.r_parallelism <= 1.05);
      (* Leaf latency stats are coherent. *)
      Alcotest.(check bool) "p50 <= p99" true
        (r.Profile.r_p50_ns <= r.Profile.r_p99_ns);
      Alcotest.(check bool) "p99 <= max" true
        (r.Profile.r_p99_ns <= r.Profile.r_max_chunk_ns);
      Alcotest.(check bool) "max <= work" true
        (r.Profile.r_max_chunk_ns <= r.Profile.r_work_ns))

(* Outermost wins: an op opened under an open op does not get its own
   row; its time folds into the outer one. *)
let test_outermost_wins () =
  with_profiling (fun () ->
      let v =
        Profile.with_op "outer" (fun () ->
            Profile.with_op "inner" (fun () -> 40 + 2))
      in
      Alcotest.(check int) "value" 42 v;
      let rows = Profile.rows () in
      Alcotest.(check bool) "outer recorded" true
        (List.exists (fun r -> r.Profile.r_name = "outer") rows);
      Alcotest.(check bool) "inner did not open" false
        (List.exists (fun r -> r.Profile.r_name = "inner") rows))

(* A standalone seq_op (a Stream fold outside any Seq op) opens its own
   op and records the whole run as one leaf: work = wall, so
   parallelism is exactly work/wall = ~1. *)
let test_seq_op_standalone () =
  with_profiling (fun () ->
      let acc = ref 0 in
      Profile.seq_op "fold" (fun () ->
          for i = 1 to 3_000_000 do
            acc := !acc + (i land 31)
          done);
      Alcotest.(check bool) "ran" true (!acc > 0);
      let r = find "fold" (Profile.rows ()) in
      Alcotest.(check int) "one call" 1 r.Profile.r_calls;
      Alcotest.(check int) "one leaf" 1 r.Profile.r_chunks;
      Alcotest.(check bool)
        (Printf.sprintf "work ~ wall (par %.3f)" r.Profile.r_parallelism)
        true
        (r.Profile.r_parallelism > 0.9 && r.Profile.r_parallelism <= 1.05))

(* Disabled profiling records nothing and passes values/exceptions
   through — the off path is the common path. *)
let test_disabled_passthrough () =
  init ();
  Profile.reset ();
  Profile.set_enabled false;
  Alcotest.(check int) "with_op value" 7 (Profile.with_op "x" (fun () -> 7));
  Alcotest.(check int) "seq_op value" 9 (Profile.seq_op "x" (fun () -> 9));
  Alcotest.check_raises "with_op exception" Exit (fun () ->
      Profile.with_op "x" (fun () -> raise Exit));
  let sum = Bds.Seq.reduce ( + ) 0 (Bds.Seq.iota 10_000) in
  Alcotest.(check int) "pipeline still runs" (10_000 * 9_999 / 2) sum;
  Alcotest.(check (list string)) "no rows" []
    (List.map (fun r -> r.Profile.r_name) (Profile.rows ()))

(* The grain diagnostic trips on the documented threshold. *)
let test_grain_warning () =
  let row ~tiny =
    {
      Profile.r_name = "map";
      r_calls = 1;
      r_wall_ns = 1_000_000;
      r_work_ns = 900_000;
      r_span_ns = 500_000;
      r_chunks = 100;
      r_p50_ns = 4_000;
      r_p99_ns = 9_000;
      r_max_chunk_ns = 9_500;
      r_parallelism = 0.9;
      r_tiny_fraction = tiny;
    }
  in
  (match Profile.grain_warning (row ~tiny:0.41) with
  | None -> Alcotest.fail "expected a warning at 41%"
  | Some w ->
    Alcotest.(check bool) "mentions the share" true
      (String.length w > 0
      && List.exists
           (fun sub ->
             let rec has i =
               i + String.length sub <= String.length w
               && (String.sub w i (String.length sub) = sub || has (i + 1))
             in
             has 0)
           [ "41%"; "chunks too small" ]));
  Alcotest.(check bool) "quiet below threshold" true
    (Profile.grain_warning (row ~tiny:0.10) = None)

(* Rendering: both forms mention every op and the worker count; JSON
   parses with the in-tree parser. *)
let test_render () =
  with_profiling (fun () ->
      let _ = Bds.Seq.reduce ( + ) 0 (Bds.Seq.iota 100_000) in
      let rows = Profile.rows () in
      let human = Profile.render ~workers:1 rows in
      let contains s sub =
        let rec has i =
          i + String.length sub <= String.length s
          && (String.sub s i (String.length sub) = sub || has (i + 1))
        in
        has 0
      in
      Alcotest.(check bool) "header" true (contains human "profile report (1 worker)");
      Alcotest.(check bool) "reduce row" true (contains human "reduce");
      let json = Profile.render_json ~workers:1 rows in
      match Bds_runtime.Tiny_json.parse_result json with
      | Error e -> Alcotest.failf "render_json unparseable: %s" e
      | Ok j ->
        let open Bds_runtime.Tiny_json in
        Alcotest.(check (option (float 0.0))) "workers" (Some 1.0)
          (Option.bind (member "workers" j) to_float);
        let ops =
          Option.bind (member "ops" j) to_list |> Option.value ~default:[]
        in
        Alcotest.(check bool) "ops listed" true (List.length ops > 0);
        Alcotest.(check bool) "op objects have parallelism" true
          (List.for_all
             (fun o -> Option.is_some (member "parallelism" o))
             ops))

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "1-domain parallelism ~1.0" `Quick
            test_single_domain_parallelism;
          Alcotest.test_case "outermost op wins" `Quick test_outermost_wins;
          Alcotest.test_case "standalone seq_op" `Quick test_seq_op_standalone;
          Alcotest.test_case "disabled is a passthrough" `Quick
            test_disabled_passthrough;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "grain warning threshold" `Quick test_grain_warning;
          Alcotest.test_case "render human and JSON" `Quick test_render;
        ] );
    ]
