(* RAD-only library (baseline R): delayed semantics + eager scan/filter/
   flatten vs list models. *)

module R = Bds_rad.Rad
open Bds_test_util

let () = init ()

let rlist = R.to_list

let test_basics () =
  Alcotest.(check int_list) "tabulate" [ 0; 1; 4 ] (rlist (R.tabulate 3 (fun i -> i * i)));
  Alcotest.(check int) "length" 3 (R.length (R.iota 3));
  Alcotest.(check int) "get" 2 (R.get (R.iota 5) 2);
  Alcotest.check_raises "get oob" (Invalid_argument "Rad.get: index out of bounds")
    (fun () -> ignore (R.get (R.iota 5) 5));
  Alcotest.(check int_list) "empty" [] (rlist R.empty);
  Alcotest.(check int_list) "of_array" [ 5; 6 ] (rlist (R.of_array [| 5; 6 |]))

let test_delayed_ops () =
  let s = R.iota 10 in
  Alcotest.(check int_list) "map" (List.init 10 (fun i -> i + 1)) (rlist (R.map (( + ) 1) s));
  Alcotest.(check int_list) "mapi" (List.init 10 (fun i -> 2 * i)) (rlist (R.mapi ( + ) s));
  Alcotest.(check int_list) "zip_with" (List.init 10 (fun i -> 2 * i))
    (rlist (R.zip_with ( + ) s s));
  Alcotest.check_raises "zip mismatch" (Invalid_argument "Rad.zip: length mismatch")
    (fun () -> ignore (R.zip (R.iota 2) (R.iota 3)))

let test_map_is_delayed () =
  (* Atomic: traversal happens on several worker domains. *)
  let calls = Atomic.make 0 in
  let s =
    R.map
      (fun x ->
        Atomic.incr calls;
        x)
      (R.iota 1000)
  in
  Alcotest.(check int) "map delayed" 0 (Atomic.get calls);
  ignore (R.reduce ( + ) 0 s);
  Alcotest.(check int) "one pass" 1000 (Atomic.get calls);
  (* Un-forced RADs recompute on every traversal (the cost-semantics
     tradeoff force resolves). *)
  ignore (R.reduce ( + ) 0 s);
  Alcotest.(check int) "second pass recomputes" 2000 (Atomic.get calls);
  let forced = R.force s in
  ignore (R.reduce ( + ) 0 forced);
  ignore (R.reduce ( + ) 0 forced);
  Alcotest.(check int) "force evaluates once" 3000 (Atomic.get calls)

let test_reduce_scan () =
  let a = Array.init 5000 (fun i -> (i mod 13) - 6) in
  let s = R.of_array a in
  Alcotest.(check int) "reduce" (Array.fold_left ( + ) 0 a) (R.reduce ( + ) 0 s);
  let got, total = R.scan ( + ) 0 s in
  let expect, etotal = list_scan ( + ) 0 (Array.to_list a) in
  Alcotest.(check int_list) "scan" expect (rlist got);
  Alcotest.(check int) "scan total" etotal total;
  Alcotest.(check int_list) "scan_incl"
    (list_scan_incl ( + ) 0 (Array.to_list a))
    (rlist (R.scan_incl ( + ) 0 s));
  let e, t = R.scan ( + ) 9 R.empty in
  Alcotest.(check int) "empty scan total" 9 t;
  Alcotest.(check int_list) "empty scan" [] (rlist e)

let test_filter_flatten () =
  let s = R.iota 1000 in
  Alcotest.(check int_list) "filter"
    (List.filter (fun x -> x mod 7 = 0) (List.init 1000 Fun.id))
    (rlist (R.filter (fun x -> x mod 7 = 0) s));
  Alcotest.(check int_list) "filter_op"
    (List.filter_map (fun x -> if x mod 9 = 0 then Some (-x) else None)
       (List.init 1000 Fun.id))
    (rlist (R.filter_op (fun x -> if x mod 9 = 0 then Some (-x) else None) s));
  let nested = R.tabulate 20 (fun i -> R.tabulate (i mod 4) (fun j -> (i * 10) + j)) in
  Alcotest.(check int_list) "flatten"
    (List.concat (List.init 20 (fun i -> List.init (i mod 4) (fun j -> (i * 10) + j))))
    (rlist (R.flatten nested));
  Alcotest.(check int_list) "flatten empty" [] (rlist (R.flatten R.empty))

let test_slicing () =
  let s = R.iota 10 in
  Alcotest.(check int_list) "slice" [ 3; 4; 5 ] (rlist (R.slice s 3 3));
  Alcotest.(check int_list) "take" [ 0; 1 ] (rlist (R.take s 2));
  Alcotest.(check int_list) "drop" [ 8; 9 ] (rlist (R.drop s 8));
  Alcotest.(check int_list) "rev" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] (rlist (R.rev s));
  Alcotest.(check int_list) "append" [ 0; 1; 0; 1; 2 ]
    (rlist (R.append (R.iota 2) (R.iota 3)));
  Alcotest.check_raises "slice oob" (Invalid_argument "Rad.slice") (fun () ->
      ignore (R.slice s 8 3))

let test_equal () =
  Alcotest.(check bool) "equal" true (R.equal ( = ) (R.iota 50) (R.iota 50));
  Alcotest.(check bool) "unequal value" false
    (R.equal ( = ) (R.iota 50) (R.map (fun x -> if x = 30 then 0 else x) (R.iota 50)));
  Alcotest.(check bool) "unequal length" false (R.equal ( = ) (R.iota 50) (R.iota 49));
  Alcotest.(check bool) "empty" true (R.equal ( = ) R.empty R.empty)

let test_iter () =
  let hits = Array.make 100 0 in
  R.iter (fun i -> hits.(i) <- hits.(i) + 1) (R.iota 100);
  Alcotest.(check int_array) "iter covers" (Array.make 100 1) hits;
  let hits2 = Array.make 100 0 in
  R.iteri (fun i v -> hits2.(i) <- v + 1) (R.iota 100);
  Alcotest.(check int_array) "iteri" (Array.init 100 (fun i -> i + 1)) hits2

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"rad pipeline = list pipeline" ~count:200 small_int_array
      (fun a ->
        let got =
          R.of_array a
          |> R.map (fun x -> (2 * x) + 1)
          |> R.filter (fun x -> x > 0)
          |> R.scan_incl ( + ) 0 |> R.to_list
        in
        let expect =
          Array.to_list a
          |> List.map (fun x -> (2 * x) + 1)
          |> List.filter (fun x -> x > 0)
          |> list_scan_incl ( + ) 0
        in
        got = expect);
  ]

let () =
  Alcotest.run "rad"
    [
      ( "rad",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "delayed ops" `Quick test_delayed_ops;
          Alcotest.test_case "map is delayed" `Quick test_map_is_delayed;
          Alcotest.test_case "reduce/scan" `Quick test_reduce_scan;
          Alcotest.test_case "filter/flatten" `Quick test_filter_flatten;
          Alcotest.test_case "slicing" `Quick test_slicing;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "iter" `Quick test_iter;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
