(* Robustness: exception propagation through fused parallel pipelines,
   concurrent consumption of shared delayed sequences, pool reuse after
   failures, and randomized kernel properties against references. *)

module S = Bds.Seq
module Pool = Bds_runtime.Pool
module Runtime = Bds_runtime.Runtime
module K = Bds_kernels
open Bds_test_util

let () = init ()

exception Kernel_bug of int

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_exception_in_map_body () =
  let s = S.map (fun x -> if x = 777 then raise (Kernel_bug x) else x) (S.iota 10_000) in
  Alcotest.check_raises "reduce propagates" (Kernel_bug 777) (fun () ->
      ignore (S.reduce ( + ) 0 s));
  (* The pool survives and computes correctly afterwards. *)
  Alcotest.(check int) "pool alive" 49995000 (S.sum (S.iota 10_000))

let test_exception_in_filter_predicate () =
  Alcotest.check_raises "filter propagates" (Kernel_bug 5) (fun () ->
      ignore
        (S.to_array
           (S.filter (fun x -> if x = 5000 then raise (Kernel_bug 5) else x > 0)
              (S.iota 10_000))));
  Alcotest.(check int) "pool alive" 100 (S.length (S.iota 100))

let test_exception_in_scan_phase3 () =
  (* Phase 1 traverses everything eagerly, so an injected fault fires at
     scan time; a fault injected via a later map fires at consumption. *)
  let sc, _ = S.scan ( + ) 0 (S.iota 1000) in
  let poisoned = S.map (fun x -> if x > 400000 then raise (Kernel_bug 1) else x) sc in
  Alcotest.check_raises "consumption propagates" (Kernel_bug 1) (fun () ->
      ignore (S.reduce ( + ) 0 poisoned));
  Alcotest.(check int) "pool alive" 10 (S.length (S.iota 10))

let test_exception_in_flatten_inner () =
  let nested =
    S.tabulate 100 (fun i ->
        if i = 50 then S.tabulate 5 (fun _ -> raise (Kernel_bug 50)) else S.iota i)
  in
  Alcotest.check_raises "flatten inner propagates" (Kernel_bug 50) (fun () ->
      ignore (S.to_array (S.flatten nested)))

(* ------------------------------------------------------------------ *)
(* Concurrent consumption                                              *)

let test_shared_bid_concurrent_force () =
  (* Many tasks force the same BID concurrently; memoisation races are
     benign and every consumer sees the same contents. *)
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let pool = Runtime.get_pool () in
      let b = S.filter (fun x -> x mod 3 <> 1) (S.iota 5_000) in
      let expect = List.filter (fun x -> x mod 3 <> 1) (List.init 5_000 Fun.id) in
      let results =
        Pool.run pool (fun () ->
            let ps = List.init 16 (fun _ -> Pool.async pool (fun () -> S.to_array b)) in
            List.map (Pool.await pool) ps)
      in
      List.iter
        (fun a -> Alcotest.(check int_list) "same contents" expect (Array.to_list a))
        results)

let test_shared_rad_concurrent_reduce () =
  let pool = Runtime.get_pool () in
  let s = S.map (fun x -> x * 2) (S.iota 20_000) in
  let expect = 20_000 * 19_999 in
  let sums =
    Pool.run pool (fun () ->
        let ps = List.init 8 (fun _ -> Pool.async pool (fun () -> S.reduce ( + ) 0 s)) in
        List.map (Pool.await pool) ps)
  in
  List.iter (fun v -> Alcotest.(check int) "same sum" expect v) sums

let test_pool_churn () =
  (* Repeated pool replacement under work. *)
  let n = 1_000_000 in
  let expect = ref 0 in
  for x = 0 to n - 1 do
    expect := !expect + (x mod 97)
  done;
  for p = 1 to 4 do
    Runtime.set_num_domains p;
    Alcotest.(check int)
      (Printf.sprintf "sum on %d domains" p)
      !expect
      (S.sum (S.map (fun x -> x mod 97) (S.iota n)))
  done;
  Runtime.set_num_domains Bds_test_util.domains

(* ------------------------------------------------------------------ *)
(* Randomized kernel properties                                        *)

let bytes_gen =
  QCheck2.Gen.(map Bytes.of_string (string_size ~gen:(oneof [char_range 'a' 'e'; return ' '; return '\n']) (int_bound 500)))

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"tokens = reference (random text)" ~count:200 bytes_gen
      (fun text -> K.Tokens.Delay_version.tokens text = K.Tokens.reference text);
    Test.make ~name:"wc = reference (random text)" ~count:200 bytes_gen (fun text ->
        K.Wc.Delay_version.wc text = K.Wc.reference text);
    Test.make ~name:"grep = reference (random text)" ~count:150 bytes_gen
      (fun text ->
        K.Grep.Delay_version.grep text "ab" = K.Grep.reference text "ab");
    Test.make ~name:"inverted index = reference (random text)" ~count:100 bytes_gen
      (fun text ->
        K.Inverted_index.Delay_version.index text = K.Inverted_index.reference text);
    Test.make ~name:"mcss = Kadane (random arrays)" ~count:200 small_int_array
      (fun a -> K.Mcss.Delay_version.mcss a = K.Mcss.reference a);
    Test.make ~name:"bignum add = schoolbook (random digits)" ~count:200
      Gen.(pair (bytes_size (int_bound 300)) (bytes_size (int_bound 300)))
      (fun (a, b) -> K.Bignum.Delay_version.add a b = K.Bignum.reference a b);
    Test.make ~name:"linearrec = reference (random coefficients)" ~count:100
      Gen.(int_bound 300)
      (fun n ->
        let xy = K.Linearrec.generate ~seed:n n in
        let got = K.Linearrec.Delay_version.solve xy in
        let expect = K.Linearrec.reference xy in
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) got expect);
  ]

let () =
  Alcotest.run "robustness"
    [
      ( "fault injection",
        [
          Alcotest.test_case "map body raises" `Quick test_exception_in_map_body;
          Alcotest.test_case "filter predicate raises" `Quick test_exception_in_filter_predicate;
          Alcotest.test_case "poisoned scan output" `Quick test_exception_in_scan_phase3;
          Alcotest.test_case "flatten inner raises" `Quick test_exception_in_flatten_inner;
        ] );
      ( "concurrent consumption",
        [
          Alcotest.test_case "shared BID force" `Quick test_shared_bid_concurrent_force;
          Alcotest.test_case "shared RAD reduce" `Quick test_shared_rad_concurrent_reduce;
          Alcotest.test_case "pool churn" `Quick test_pool_churn;
        ] );
      ( "kernel properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests );
    ]
