(* Robustness: exception propagation through fused parallel pipelines,
   concurrent consumption of shared delayed sequences, pool reuse after
   failures, and randomized kernel properties against references. *)

module S = Bds.Seq
module Pool = Bds_runtime.Pool
module Runtime = Bds_runtime.Runtime
module Chaos = Bds_runtime.Chaos
module K = Bds_kernels
open Bds_test_util

let () = init ()

exception Kernel_bug of int

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_exception_in_map_body () =
  let s = S.map (fun x -> if x = 777 then raise (Kernel_bug x) else x) (S.iota 10_000) in
  Alcotest.check_raises "reduce propagates" (Kernel_bug 777) (fun () ->
      ignore (S.reduce ( + ) 0 s));
  (* The pool survives and computes correctly afterwards. *)
  Alcotest.(check int) "pool alive" 49995000 (S.sum (S.iota 10_000))

let test_exception_in_filter_predicate () =
  Alcotest.check_raises "filter propagates" (Kernel_bug 5) (fun () ->
      ignore
        (S.to_array
           (S.filter (fun x -> if x = 5000 then raise (Kernel_bug 5) else x > 0)
              (S.iota 10_000))));
  Alcotest.(check int) "pool alive" 100 (S.length (S.iota 100))

let test_exception_in_scan_phase3 () =
  (* Phase 1 traverses everything eagerly, so an injected fault fires at
     scan time; a fault injected via a later map fires at consumption. *)
  let sc, _ = S.scan ( + ) 0 (S.iota 1000) in
  let poisoned = S.map (fun x -> if x > 400000 then raise (Kernel_bug 1) else x) sc in
  Alcotest.check_raises "consumption propagates" (Kernel_bug 1) (fun () ->
      ignore (S.reduce ( + ) 0 poisoned));
  Alcotest.(check int) "pool alive" 10 (S.length (S.iota 10))

let test_exception_in_flatten_inner () =
  let nested =
    S.tabulate 100 (fun i ->
        if i = 50 then S.tabulate 5 (fun _ -> raise (Kernel_bug 50)) else S.iota i)
  in
  Alcotest.check_raises "flatten inner propagates" (Kernel_bug 50) (fun () ->
      ignore (S.to_array (S.flatten nested)))

let test_cancellation_in_fused_pipeline () =
  (* A fault early in a fused pipeline cancels the whole scope: blocks
     that have not started observe the token (Seq polls it at block
     boundaries) and skip their streams, so only a small fraction of the
     input is ever touched. *)
  with_policy (Bds.Block.Fixed 1000) (fun () ->
      let n = 1_000_000 in
      let fired = Atomic.make false in
      let late = Atomic.make 0 in
      Alcotest.check_raises "first fault propagates" (Kernel_bug 0) (fun () ->
          ignore
            (S.reduce ( + ) 0
               (S.map
                  (fun x ->
                    if Atomic.get fired then ignore (Atomic.fetch_and_add late 1);
                    if x = 0 then begin
                      Atomic.set fired true;
                      raise (Kernel_bug 0)
                    end
                    else x)
                  (S.iota n))));
      let late = Atomic.get late in
      Alcotest.(check bool)
        (Printf.sprintf "post-fault touches %d <= %d (5%% of %d)" late (n / 20) n)
        true
        (late <= n / 20));
  Alcotest.(check int) "pool alive" 4950 (S.sum (S.iota 100))

let test_cancellation_in_scan_phase1 () =
  (* Scan's eager phase 1 (per-block reduce) must poll at block
     boundaries like reduce/iter do.  One worker makes the check
     deterministic: blocks run in order, in leaf chunks of
     [nb / 32] blocks; the element function cancels the ambient scope
     mid-block, and the chunk must stop at the *next block boundary* —
     not run its remaining blocks (which is what happened when phase 1
     had no poll: only the chunk-level checks fired, an entire leaf
     chunk of ~31 blocks late). *)
  Fun.protect
    ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      Runtime.set_num_domains 1;
      with_policy (Bds.Block.Fixed 100) (fun () ->
          let n = 100_000 in
          let touches = ref 0 in
          let poison x =
            incr touches;
            if x = 1234 then (
              match Bds_runtime.Cancel.ambient () with
              | Some tok ->
                Bds_runtime.Cancel.cancel_with tok (Kernel_bug 7)
                  (Printexc.get_callstack 0)
              | None -> Alcotest.fail "no ambient token in scan phase 1");
            x
          in
          Alcotest.check_raises "recorded failure propagates" (Kernel_bug 7)
            (fun () -> ignore (S.scan ( + ) 0 (S.map poison (S.iota n))));
          let touches = !touches in
          Alcotest.(check bool)
            (Printf.sprintf "reached the cancel point (%d touches)" touches)
            true (touches > 1234);
          (* Post-fix: the in-flight block finishes (<= 1300 touches).
             Pre-fix: the whole ~31-block leaf chunk ran (~3100). *)
          Alcotest.(check bool)
            (Printf.sprintf "stops at a block boundary (%d touches <= 2000)" touches)
            true
            (touches <= 2000)))

let test_cancellation_mid_block_push () =
  (* The push folds poll the ambient token once per 64-element chunk, so
     a fault stops a long fold *mid-block* — within one chunk of the
     poisoned element — even when the whole sequence is a single block
     (where block-boundary polling alone would run all 100k elements
     before noticing).  One worker + one fixed block keeps the element
     order deterministic. *)
  Fun.protect
    ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      Runtime.set_num_domains 1;
      with_policy (Bds.Block.Fixed 100_000) (fun () ->
          let n = 100_000 in
          let bid, _ = S.scan ( + ) 0 (S.iota n) in
          let touches = ref 0 in
          let poison i v =
            incr touches;
            if i = 1234 then (
              match Bds_runtime.Cancel.ambient () with
              | Some tok ->
                Bds_runtime.Cancel.cancel_with tok (Kernel_bug 9)
                  (Printexc.get_callstack 0)
              | None -> Alcotest.fail "no ambient token in push fold");
            v
          in
          Alcotest.check_raises "recorded failure propagates" (Kernel_bug 9)
            (fun () -> ignore (S.reduce ( + ) 0 (S.mapi poison bid)));
          let touches = !touches in
          Alcotest.(check bool)
            (Printf.sprintf "reached the cancel point (%d touches)" touches)
            true (touches > 1234);
          Alcotest.(check bool)
            (Printf.sprintf "stops within one poll chunk (%d touches <= 1300)"
               touches)
            true
            (touches <= 1300)))

let test_cancellation_mid_block_unboxed () =
  (* The float lane's monomorphic loops (Float_seq) share the push
     lane's cadence: one ambient poll per 64-element chunk, inside the
     unboxed accumulator loop.  Same setup as the push-fold test — one
     worker, one 100k-element block — so block-boundary polling alone
     could not fire before the end; stopping within ~one chunk of the
     poisoned element proves the inner loop itself polls. *)
  Fun.protect
    ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      Runtime.set_num_domains 1;
      with_policy (Bds.Block.Fixed 100_000) (fun () ->
          let n = 100_000 in
          let touches = ref 0 in
          let poison i =
            incr touches;
            if i = 1234 then (
              match Bds_runtime.Cancel.ambient () with
              | Some tok ->
                Bds_runtime.Cancel.cancel_with tok (Kernel_bug 11)
                  (Printexc.get_callstack 0)
              | None -> Alcotest.fail "no ambient token in unboxed loop");
            float_of_int i
          in
          Alcotest.check_raises "recorded failure propagates" (Kernel_bug 11)
            (fun () -> ignore (Bds.Float_seq.sum (Bds.Float_seq.tabulate n poison)));
          let touches = !touches in
          Alcotest.(check bool)
            (Printf.sprintf "reached the cancel point (%d touches)" touches)
            true (touches > 1234);
          Alcotest.(check bool)
            (Printf.sprintf "stops within one poll chunk (%d touches <= 1300)"
               touches)
            true
            (touches <= 1300)))

(* ------------------------------------------------------------------ *)
(* Chaos injection                                                     *)

let with_chaos cfg f =
  Chaos.set_config (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set_config None) f

let test_chaos_parse_empty_is_off () =
  (* The empty (or blank) BDS_CHAOS is the explicit opt-out, not the
     default configuration — a chaos sweep that exports BDS_CHAOS
     globally must be able to pin it off for one command. *)
  Alcotest.(check bool) "empty means off" true (Chaos.parse "" = Ok None);
  Alcotest.(check bool) "blank means off" true (Chaos.parse " \t " = Ok None);
  Alcotest.(check bool) "fields still enable chaos" true
    (match Chaos.parse "seed=5" with
    | Ok (Some { Chaos.seed = 5; _ }) -> true
    | _ -> false)

let test_chaos_raise_contained () =
  (* Every task raises at its fault point: the injected fault must
     surface like any task exception (captured, re-raised at the scope
     root) and the pool must stay healthy once chaos stops. *)
  with_chaos { Chaos.seed = 11; p = 1.0; kinds = [ Chaos.Raise ] } (fun () ->
      match Runtime.parallel_for 0 1000 (fun _ -> ()) with
      | () -> Alcotest.fail "expected an injected fault"
      | exception Chaos.Injected_fault _ -> ());
  Alcotest.(check int) "pool healthy after chaos" 499500 (S.sum (S.iota 1000))

let test_chaos_delay_starve_preserves_results () =
  (* delay+starve shake the schedule but preserve semantics: exact
     results must survive a high fault rate. *)
  with_chaos { Chaos.seed = 2; p = 0.2; kinds = [ Chaos.Delay; Chaos.Starve ] }
    (fun () ->
      let n = 200_000 in
      Alcotest.(check int) "sum under chaos" (n * (n - 1) / 2) (S.sum (S.iota n));
      Alcotest.(check int) "nested under chaos" (45 * 45)
        (Runtime.parallel_for_reduce ~grain:1 0 10 ~combine:( + ) ~init:0
           (fun i ->
             Runtime.parallel_for_reduce ~grain:2 0 10 ~combine:( + ) ~init:0
               (fun j -> i * j))))

let test_chaos_kernel_sweep () =
  (* Acceptance: a chaos-seeded sweep of three kernels across 1, 2 and 4
     domains, checked against their sequential references. *)
  let text =
    Bytes.of_string
      "the quick brown fox jumps over the lazy dog\n\
       pack my box with five dozen liquor jugs\n\
       how vexingly quick daft zebras jump"
  in
  let arr = Array.init 4096 (fun i -> ((i * 2654435761) mod 201) - 100) in
  with_chaos { Chaos.seed = 42; p = 0.05; kinds = [ Chaos.Delay; Chaos.Starve ] }
    (fun () ->
      Fun.protect
        ~finally:(fun () -> Runtime.set_num_domains Bds_test_util.domains)
        (fun () ->
          List.iter
            (fun d ->
              Runtime.set_num_domains d;
              Alcotest.(check bool)
                (Printf.sprintf "tokens = reference (d=%d)" d)
                true
                (K.Tokens.Delay_version.tokens text = K.Tokens.reference text);
              Alcotest.(check bool)
                (Printf.sprintf "mcss = reference (d=%d)" d)
                true
                (K.Mcss.Delay_version.mcss arr = K.Mcss.reference arr);
              Alcotest.(check bool)
                (Printf.sprintf "wc = reference (d=%d)" d)
                true
                (K.Wc.Delay_version.wc text = K.Wc.reference text))
            [ 1; 2; 4 ]))

(* ------------------------------------------------------------------ *)
(* Concurrent consumption                                              *)

let test_shared_bid_concurrent_force () =
  (* Many tasks force the same BID concurrently; memoisation races are
     benign and every consumer sees the same contents. *)
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let pool = Runtime.get_pool () in
      let b = S.filter (fun x -> x mod 3 <> 1) (S.iota 5_000) in
      let expect = List.filter (fun x -> x mod 3 <> 1) (List.init 5_000 Fun.id) in
      let results =
        Pool.run pool (fun () ->
            let ps = List.init 16 (fun _ -> Pool.async pool (fun () -> S.to_array b)) in
            List.map (Pool.await pool) ps)
      in
      List.iter
        (fun a -> Alcotest.(check int_list) "same contents" expect (Array.to_list a))
        results)

let test_shared_bid_memo_published_once () =
  (* Concurrent forcers of one BID must all end up with the *same
     physical array*: [to_array] publishes the memo by CAS, first writer
     wins.  (With the old plain-mutable-field publication each forcer
     kept its own copy — equal contents, different arrays — and the
     store itself was a data race under the OCaml memory model.) *)
  with_policy (Bds.Block.Fixed 1000) (fun () ->
      let pool = Runtime.get_pool () in
      (* Forcing must outlast an OS timeslice so that the two forcers
         overlap even when the pool's domains timeshare one core: a
         scan's delayed phase 3 re-drives this deliberately slow element
         function on every force (tens of ms). *)
      let slow x =
        let acc = ref x in
        for _ = 1 to 200 do
          acc := (!acc * 31) + 7
        done;
        !acc
      in
      let b, _ = S.scan ( + ) 0 (S.map slow (S.iota 100_000)) in
      (* Two forcers (strictly fewer than the pool's workers, so spinning
         cannot deadlock) rendezvous at a gate before calling [to_array]:
         both observe an unforced BID and race to publish. *)
      let gate = Atomic.make 0 in
      let forcer () =
        Atomic.incr gate;
        while Atomic.get gate < 2 do
          Domain.cpu_relax ()
        done;
        S.to_array b
      in
      let results =
        Pool.run pool (fun () ->
            let ps = List.init 2 (fun _ -> Pool.async pool forcer) in
            List.map (Pool.await pool) ps)
      in
      let first = List.hd results in
      List.iteri
        (fun i a ->
          Alcotest.(check bool)
            (Printf.sprintf "forcer %d sees the published array" i)
            true (a == first))
        results;
      Alcotest.(check bool) "later to_array hits the memo" true
        (S.to_array b == first))

let test_shared_rad_concurrent_reduce () =
  let pool = Runtime.get_pool () in
  let s = S.map (fun x -> x * 2) (S.iota 20_000) in
  let expect = 20_000 * 19_999 in
  let sums =
    Pool.run pool (fun () ->
        let ps = List.init 8 (fun _ -> Pool.async pool (fun () -> S.reduce ( + ) 0 s)) in
        List.map (Pool.await pool) ps)
  in
  List.iter (fun v -> Alcotest.(check int) "same sum" expect v) sums

let test_pool_churn () =
  (* Repeated pool replacement under work. *)
  let n = 1_000_000 in
  let expect = ref 0 in
  for x = 0 to n - 1 do
    expect := !expect + (x mod 97)
  done;
  for p = 1 to 4 do
    Runtime.set_num_domains p;
    Alcotest.(check int)
      (Printf.sprintf "sum on %d domains" p)
      !expect
      (S.sum (S.map (fun x -> x mod 97) (S.iota n)))
  done;
  Runtime.set_num_domains Bds_test_util.domains

(* ------------------------------------------------------------------ *)
(* Randomized kernel properties                                        *)

let bytes_gen =
  QCheck2.Gen.(map Bytes.of_string (string_size ~gen:(oneof [char_range 'a' 'e'; return ' '; return '\n']) (int_bound 500)))

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"tokens = reference (random text)" ~count:200 bytes_gen
      (fun text -> K.Tokens.Delay_version.tokens text = K.Tokens.reference text);
    Test.make ~name:"wc = reference (random text)" ~count:200 bytes_gen (fun text ->
        K.Wc.Delay_version.wc text = K.Wc.reference text);
    Test.make ~name:"grep = reference (random text)" ~count:150 bytes_gen
      (fun text ->
        K.Grep.Delay_version.grep text "ab" = K.Grep.reference text "ab");
    Test.make ~name:"inverted index = reference (random text)" ~count:100 bytes_gen
      (fun text ->
        K.Inverted_index.Delay_version.index text = K.Inverted_index.reference text);
    Test.make ~name:"mcss = Kadane (random arrays)" ~count:200 small_int_array
      (fun a -> K.Mcss.Delay_version.mcss a = K.Mcss.reference a);
    Test.make ~name:"bignum add = schoolbook (random digits)" ~count:200
      Gen.(pair (bytes_size (int_bound 300)) (bytes_size (int_bound 300)))
      (fun (a, b) -> K.Bignum.Delay_version.add a b = K.Bignum.reference a b);
    Test.make ~name:"linearrec = reference (random coefficients)" ~count:100
      Gen.(int_bound 300)
      (fun n ->
        let xy = K.Linearrec.generate ~seed:n n in
        let got = K.Linearrec.Delay_version.solve xy in
        let expect = K.Linearrec.reference xy in
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) got expect);
  ]

let () =
  Alcotest.run "robustness"
    [
      ( "fault injection",
        [
          Alcotest.test_case "map body raises" `Quick test_exception_in_map_body;
          Alcotest.test_case "filter predicate raises" `Quick test_exception_in_filter_predicate;
          Alcotest.test_case "poisoned scan output" `Quick test_exception_in_scan_phase3;
          Alcotest.test_case "flatten inner raises" `Quick test_exception_in_flatten_inner;
          Alcotest.test_case "cancellation in fused pipeline" `Quick
            test_cancellation_in_fused_pipeline;
          Alcotest.test_case "cancellation latency in scan phase 1" `Quick
            test_cancellation_in_scan_phase1;
          Alcotest.test_case "push fold stops mid-block" `Quick
            test_cancellation_mid_block_push;
          Alcotest.test_case "unboxed float loop stops mid-block" `Quick
            test_cancellation_mid_block_unboxed;
        ] );
      ( "chaos injection",
        [
          Alcotest.test_case "empty spec is the opt-out" `Quick
            test_chaos_parse_empty_is_off;
          Alcotest.test_case "raise kind contained" `Quick test_chaos_raise_contained;
          Alcotest.test_case "delay+starve preserve results" `Quick
            test_chaos_delay_starve_preserves_results;
          Alcotest.test_case "kernel sweep 1/2/4 domains" `Quick
            test_chaos_kernel_sweep;
        ] );
      ( "concurrent consumption",
        [
          Alcotest.test_case "shared BID force" `Quick test_shared_bid_concurrent_force;
          Alcotest.test_case "shared BID memo published once" `Quick
            test_shared_bid_memo_published_once;
          Alcotest.test_case "shared RAD reduce" `Quick test_shared_rad_concurrent_reduce;
          Alcotest.test_case "pool churn" `Quick test_pool_churn;
        ] );
      ( "kernel properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests );
    ]
