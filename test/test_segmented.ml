(* Segmented scan/reduce vs per-segment list models, under assorted
   block policies and segment shapes (empty segments included). *)

module S = Bds.Seq
module Seg = Bds.Segmented
open Bds_test_util

let () = init ()

(* Reference: apply a list scan per segment. *)
let ref_segmented per_segment lengths values =
  let rec split l = function
    | [] -> []
    | len :: tl ->
      let seg = List.filteri (fun i _ -> i < len) l in
      let rest = List.filteri (fun i _ -> i >= len) l in
      seg :: split rest tl
  in
  List.concat_map per_segment (split values lengths)

let check_case name lengths values =
  let ls = S.of_list lengths and vs = S.of_list values in
  let got = S.to_list (Seg.scan ( + ) 0 ~lengths:ls ~values:vs) in
  let expect = ref_segmented (fun seg -> fst (list_scan ( + ) 0 seg)) lengths values in
  Alcotest.(check int_list) (name ^ " scan") expect got;
  let got_incl = S.to_list (Seg.scan_incl ( + ) 0 ~lengths:ls ~values:vs) in
  let expect_incl = ref_segmented (list_scan_incl ( + ) 0) lengths values in
  Alcotest.(check int_list) (name ^ " scan_incl") expect_incl got_incl;
  let got_red = S.to_list (Seg.reduce ( + ) 0 ~lengths:ls ~values:vs) in
  let expect_red =
    List.map (List.fold_left ( + ) 0)
      (let rec split l = function
         | [] -> []
         | len :: tl ->
           List.filteri (fun i _ -> i < len) l
           :: split (List.filteri (fun i _ -> i >= len) l) tl
       in
       split values lengths)
  in
  Alcotest.(check int_list) (name ^ " reduce") expect_red got_red

let test_basic () =
  for_all_policies (fun pname ->
      check_case (pname ^ " basic") [ 3; 2; 4 ] [ 1; 2; 3; 10; 20; 5; 6; 7; 8 ];
      check_case (pname ^ " empties") [ 0; 3; 0; 0; 2; 0 ] [ 1; 2; 3; 4; 5 ];
      check_case (pname ^ " singletons") [ 1; 1; 1; 1 ] [ 9; 8; 7; 6 ];
      check_case (pname ^ " one segment") [ 5 ] [ 1; 2; 3; 4; 5 ];
      check_case (pname ^ " all empty") [ 0; 0; 0 ] [];
      check_case (pname ^ " no segments") [] [])

let test_large () =
  with_policy (Bds.Block.Fixed 13) (fun () ->
      let lengths = List.init 200 (fun i -> i mod 7) in
      let n = List.fold_left ( + ) 0 lengths in
      let values = List.init n (fun i -> (i mod 23) - 11) in
      check_case "large mixed" lengths values)

let test_delayed_inputs () =
  (* Values arriving as a BID (filter output) must work too. *)
  with_policy (Bds.Block.Fixed 5) (fun () ->
      let values = S.filter (fun x -> x mod 3 <> 0) (S.iota 40) in
      let n = S.length values in
      let lengths = S.of_list [ n / 2; n - (n / 2) ] in
      let got = S.to_list (Seg.scan ( + ) 0 ~lengths ~values) in
      let vlist = List.filter (fun x -> x mod 3 <> 0) (List.init 40 Fun.id) in
      let expect =
        ref_segmented
          (fun seg -> fst (list_scan ( + ) 0 seg))
          [ n / 2; n - (n / 2) ]
          vlist
      in
      Alcotest.(check int_list) "BID values" expect got)

let test_of_nested () =
  let nested = S.tabulate 10 (fun i -> S.tabulate (i mod 4) (fun j -> (10 * i) + j)) in
  let lengths, values = Seg.of_nested nested in
  Alcotest.(check int_list) "lengths" (List.init 10 (fun i -> i mod 4)) (S.to_list lengths);
  Alcotest.(check int_list) "values"
    (List.concat (List.init 10 (fun i -> List.init (i mod 4) (fun j -> (10 * i) + j))))
    (S.to_list values);
  Alcotest.(check int) "total" (S.length values) (Seg.total_length lengths)

let test_mismatch () =
  Alcotest.check_raises "lengths mismatch"
    (Invalid_argument "Segmented.scan: lengths do not sum to the value count")
    (fun () -> ignore (Seg.scan ( + ) 0 ~lengths:(S.of_list [ 1 ]) ~values:(S.iota 5)))

(* Non-commutative segmented scan. *)
let test_non_commutative () =
  with_policy (Bds.Block.Fixed 3) (fun () ->
      let lengths = [ 2; 5; 1; 4 ] in
      let values = List.init 12 (fun i -> String.make 1 (Char.chr (97 + i))) in
      let got =
        S.to_list
          (Seg.scan_incl ( ^ ) ""
             ~lengths:(S.of_list lengths)
             ~values:(S.of_list values))
      in
      let expect = ref_segmented (list_scan_incl ( ^ ) "") lengths values in
      Alcotest.(check (list string)) "string segmented scan" expect got)

let qcheck_tests =
  let open QCheck2 in
  let case_gen =
    (* Random segment lengths; values derived to match the total. *)
    Gen.(
      pair
        (list_size (int_bound 30) (int_bound 8))
        (int_range 1 24))
  in
  [
    Test.make ~name:"segmented scan = per-segment list scans" ~count:300 case_gen
      (fun (lengths, bsize) ->
        with_policy (Bds.Block.Fixed bsize) (fun () ->
            let n = List.fold_left ( + ) 0 lengths in
            let values = List.init n (fun i -> (i mod 13) - 6) in
            let got =
              S.to_list
                (Seg.scan ( + ) 0 ~lengths:(S.of_list lengths)
                   ~values:(S.of_list values))
            in
            got = ref_segmented (fun seg -> fst (list_scan ( + ) 0 seg)) lengths values));
    Test.make ~name:"segmented reduce = per-segment sums" ~count:300 case_gen
      (fun (lengths, bsize) ->
        with_policy (Bds.Block.Fixed bsize) (fun () ->
            let n = List.fold_left ( + ) 0 lengths in
            let values = List.init n (fun i -> (i mod 7) - 3) in
            let got =
              S.to_list
                (Seg.reduce ( + ) 0 ~lengths:(S.of_list lengths)
                   ~values:(S.of_list values))
            in
            let expect =
              let rec split l = function
                | [] -> []
                | len :: tl ->
                  List.filteri (fun i _ -> i < len) l
                  :: split (List.filteri (fun i _ -> i >= len) l) tl
              in
              List.map (List.fold_left ( + ) 0) (split values lengths)
            in
            got = expect));
  ]

let () =
  Alcotest.run "segmented"
    [
      ( "segmented",
        [
          Alcotest.test_case "basic shapes (all policies)" `Quick test_basic;
          Alcotest.test_case "large mixed" `Quick test_large;
          Alcotest.test_case "delayed inputs" `Quick test_delayed_inputs;
          Alcotest.test_case "of_nested" `Quick test_of_nested;
          Alcotest.test_case "length mismatch" `Quick test_mismatch;
          Alcotest.test_case "non-commutative" `Quick test_non_commutative;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
