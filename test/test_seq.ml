(* Block-delayed sequences: semantics vs list models under many block
   policies, representation rules of Figure 11, delaying/forcing
   behaviour, and edge cases. *)

module S = Bds.Seq
open Bds_test_util

let () = init ()

let slist = S.to_list

let repr_t = Alcotest.of_pp (fun fmt r ->
    Format.pp_print_string fmt (match r with `Rad -> "RAD" | `Bid -> "BID"))

let test_representation_rules () =
  with_policy (Bds.Block.Fixed 8) (fun () ->
      let t = S.tabulate 100 Fun.id in
      Alcotest.check repr_t "tabulate is RAD" `Rad (S.repr t);
      Alcotest.check repr_t "map RAD is RAD" `Rad (S.repr (S.map (( + ) 1) t));
      Alcotest.check repr_t "zip of RADs is RAD" `Rad (S.repr (S.zip t t));
      let sc, _ = S.scan ( + ) 0 t in
      Alcotest.check repr_t "scan is BID" `Bid (S.repr sc);
      Alcotest.check repr_t "map BID is BID" `Bid (S.repr (S.map (( + ) 1) sc));
      Alcotest.check repr_t "zip RAD*BID is BID" `Bid (S.repr (S.zip t sc));
      Alcotest.check repr_t "filter is BID" `Bid
        (S.repr (S.filter (fun x -> x > 50) t));
      Alcotest.check repr_t "flatten is BID" `Bid
        (S.repr (S.flatten (S.tabulate 5 (fun i -> S.iota i))));
      Alcotest.check repr_t "force is RAD" `Rad (S.repr (S.force sc)))

let pipeline_on_policy _name =
  let n = 1237 in
  let base = List.init n Fun.id in
  let s = S.iota n in
  (* map-scan-map-reduce (bestcut shape) *)
  let got =
    S.reduce ( + ) 0
      (S.mapi ( + ) (fst (S.scan ( + ) 0 (S.map (fun x -> x mod 5) s))))
  in
  let prefixes, _ = list_scan ( + ) 0 (List.map (fun x -> x mod 5) base) in
  let expect = List.fold_left ( + ) 0 (List.mapi ( + ) prefixes) in
  Alcotest.(check int) "map-scan-map-reduce" expect got;
  (* filter-scan-filter chain *)
  let f1 = S.filter (fun x -> x mod 3 <> 0) s in
  let sc = S.scan_incl ( + ) 0 f1 in
  let f2 = S.filter (fun x -> x mod 2 = 0) sc in
  let e1 = List.filter (fun x -> x mod 3 <> 0) base in
  let e2 = list_scan_incl ( + ) 0 e1 in
  let e3 = List.filter (fun x -> x mod 2 = 0) e2 in
  Alcotest.(check int_list) "filter-scan-filter" e3 (slist f2);
  (* flatten of maps of BIDs *)
  let nested = S.tabulate 40 (fun i -> S.filter (fun x -> x mod 2 = i mod 2) (S.iota i)) in
  let flat = S.flatten nested in
  let expect_flat =
    List.concat
      (List.init 40 (fun i ->
           List.filter (fun x -> x mod 2 = i mod 2) (List.init i Fun.id)))
  in
  Alcotest.(check int_list) "flatten of BIDs" expect_flat (slist flat)

let test_pipelines_all_policies () = for_all_policies pipeline_on_policy

let test_scan_variants () =
  with_policy (Bds.Block.Fixed 5) (fun () ->
      let a = Array.init 137 (fun i -> (i mod 11) - 5) in
      let s = S.of_array a in
      let got, total = S.scan ( + ) 7 s in
      let expect, etotal = list_scan ( + ) 7 (Array.to_list a) in
      Alcotest.(check int_list) "seeded exclusive scan" expect (slist got);
      Alcotest.(check int) "total" etotal total;
      Alcotest.(check int_list) "inclusive"
        (list_scan_incl ( + ) 7 (Array.to_list a))
        (slist (S.scan_incl ( + ) 7 s));
      (* Non-commutative monoid across many blocks. *)
      let compose (a1, b1) (a2, b2) = (a1 * a2, (b1 * a2) + b2) in
      let pairs = Array.init 100 (fun i -> ((i mod 3) - 1, i mod 7)) in
      let got2, gt = S.scan compose (1, 0) (S.of_array pairs) in
      let expect2, et = list_scan compose (1, 0) (Array.to_list pairs) in
      Alcotest.(check (list (pair int int))) "affine scan" expect2 (slist got2);
      Alcotest.(check (pair int int)) "affine total" et gt)

let test_delaying_and_memoisation () =
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let calls = Atomic.make 0 in
      let s =
        S.map
          (fun x ->
            Atomic.incr calls;
            x)
          (S.iota 1000)
      in
      Alcotest.(check int) "map is delayed" 0 (Atomic.get calls);
      ignore (S.reduce ( + ) 0 s);
      ignore (S.reduce ( + ) 0 s);
      Alcotest.(check int) "RAD recomputes per traversal" 2000 (Atomic.get calls);
      (* BIDs memoise their forced array: repeated random access and
         repeated to_array pay once. *)
      Atomic.set calls 0;
      let bid, _ = S.scan ( + ) 0 s in
      Alcotest.(check int) "scan phase 1 drove input once" 1000 (Atomic.get calls);
      let a1 = S.to_array bid in
      let a2 = S.to_array bid in
      Alcotest.(check bool) "memoised array is shared" true (a1 == a2);
      Alcotest.(check int) "phase 3 re-drove input once" 2000 (Atomic.get calls);
      ignore (S.get bid 123);
      Alcotest.(check int) "get uses memo" 2000 (Atomic.get calls))

let test_memoised_bid_reuse () =
  (* Delayed ops on an already-forced BID must read the memoised array
     instead of re-driving the original block streams: a scan's delayed
     phase 3 would otherwise re-run the input's element functions on
     every traversal of the derived sequence.  (Regression: map/mapi/
     zip_with used to close over the original [block] even when the memo
     was populated; only [take] routed through it.) *)
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let calls = Atomic.make 0 in
      let counted =
        S.map
          (fun x ->
            Atomic.incr calls;
            x)
          (S.iota 1000)
      in
      let bid, _ = S.scan ( + ) 0 counted in
      ignore (S.to_array bid) (* force: phases 1 and 3 each drive input *);
      let baseline = Atomic.get calls in
      let prefixes, _ = list_scan ( + ) 0 (List.init 1000 Fun.id) in
      let m = S.map (( + ) 1) bid in
      Alcotest.check repr_t "map of BID stays BID" `Bid (S.repr m);
      Alcotest.(check int_list) "map contents"
        (List.map (( + ) 1) prefixes) (slist m);
      let mi = S.mapi ( + ) bid in
      Alcotest.check repr_t "mapi of BID stays BID" `Bid (S.repr mi);
      Alcotest.(check int_list) "mapi contents"
        (List.mapi ( + ) prefixes) (slist mi);
      let z = S.zip_with ( + ) bid bid in
      Alcotest.check repr_t "zip_with of BIDs stays BID" `Bid (S.repr z);
      Alcotest.(check int_list) "zip_with contents"
        (List.map (fun x -> 2 * x) prefixes) (slist z);
      ignore (S.to_array (S.take bid 500));
      Alcotest.(check int) "derived ops read the memo, not the blocks"
        baseline (Atomic.get calls))

let test_force_semantics () =
  with_policy (Bds.Block.Fixed 8) (fun () ->
      (* RADs are not memoised: every to_array is a fresh array. *)
      let r = S.map (( + ) 1) (S.iota 100) in
      Alcotest.(check bool) "rad to_array fresh" false (S.to_array r == S.to_array r);
      (* force is idempotent and preserves contents. *)
      let f1 = S.force r in
      let f2 = S.force f1 in
      Alcotest.(check int_list) "force contents" (List.init 100 (( + ) 1)) (slist f2);
      Alcotest.check repr_t "force RAD" `Rad (S.repr f1);
      (* forcing a BID yields an array-backed RAD decoupled from the
         original blocks. *)
      let b = S.filter (fun x -> x > 50) r in
      let fb = S.force b in
      Alcotest.check repr_t "forced BID is RAD" `Rad (S.repr fb);
      Alcotest.(check int_list) "same contents" (slist b) (slist fb))

let test_random_access () =
  with_policy (Bds.Block.Fixed 10) (fun () ->
      let s = S.tabulate 100 (fun i -> i * 3) in
      Alcotest.(check int) "rad get" 30 (S.get s 10);
      let b = S.filter (fun x -> x mod 2 = 0) s in
      Alcotest.(check int) "bid get forces" (S.to_list b |> fun l -> List.nth l 7)
        (S.get b 7);
      Alcotest.check_raises "oob" (Invalid_argument "Seq.get: index out of bounds")
        (fun () -> ignore (S.get s 100)))

let test_policy_change_mid_life () =
  (* A BID records its block size at creation: changing the policy before
     consumption must not corrupt it. *)
  let b =
    with_policy (Bds.Block.Fixed 4) (fun () ->
        fst (S.scan ( + ) 0 (S.filter (fun x -> x mod 2 = 0) (S.iota 100))))
  in
  with_policy (Bds.Block.Fixed 17) (fun () ->
      let evens = List.filter (fun x -> x mod 2 = 0) (List.init 100 Fun.id) in
      Alcotest.(check int_list) "consumed under new policy"
        (fst (list_scan ( + ) 0 evens))
        (slist b))

let test_zip_mixed_block_sizes () =
  (* BIDs created under different policies must still zip correctly. *)
  let mk policy =
    with_policy policy (fun () -> S.filter (fun x -> x mod 2 = 0) (S.iota 100))
  in
  let b1 = mk (Bds.Block.Fixed 4) in
  let b2 = mk (Bds.Block.Fixed 9) in
  let got = slist (S.zip_with ( + ) b1 b2) in
  let evens = List.filter (fun x -> x mod 2 = 0) (List.init 100 Fun.id) in
  Alcotest.(check int_list) "zip across block sizes" (List.map (fun x -> 2 * x) evens) got;
  Alcotest.check_raises "zip length mismatch" (Invalid_argument "Seq.zip: length mismatch")
    (fun () -> ignore (S.zip (S.iota 3) (S.iota 4)))

let test_edge_cases () =
  for_all_policies (fun _ ->
      Alcotest.(check int_list) "empty map" [] (slist (S.map (( + ) 1) S.empty));
      Alcotest.(check int) "empty reduce" 5 (S.reduce ( + ) 5 S.empty);
      let e, t = S.scan ( + ) 5 S.empty in
      Alcotest.(check int) "empty scan total" 5 t;
      Alcotest.(check int_list) "empty scan" [] (slist e);
      Alcotest.(check int_list) "empty filter" [] (slist (S.filter (fun _ -> true) S.empty));
      Alcotest.(check int_list) "singleton" [ 9 ] (slist (S.singleton 9));
      let one, t1 = S.scan ( + ) 3 (S.singleton 4) in
      Alcotest.(check int_list) "scan singleton" [ 3 ] (slist one);
      Alcotest.(check int) "scan singleton total" 7 t1;
      Alcotest.(check int_list) "filter to empty" []
        (slist (S.filter (fun _ -> false) (S.iota 100)));
      Alcotest.(check int_list) "flatten empty outer" [] (slist (S.flatten S.empty));
      Alcotest.(check int_list) "flatten all-empty inners" []
        (slist (S.flatten (S.tabulate 10 (fun _ -> S.empty))));
      Alcotest.(check int_list) "flatten with empty gaps"
        [ 0; 0; 1 ]
        (slist
           (S.flatten
              (S.of_list [ S.empty; S.iota 1; S.empty; S.empty; S.iota 2; S.empty ]))))

let test_iteration () =
  with_policy (Bds.Block.Fixed 7) (fun () ->
      let hits = Array.init 500 (fun _ -> Atomic.make 0) in
      S.iter (fun i -> Atomic.incr hits.(i)) (S.iota 500);
      Array.iteri
        (fun i a -> if Atomic.get a <> 1 then Alcotest.failf "index %d hit %d times" i (Atomic.get a))
        hits;
      let out = Array.make 200 (-1) in
      let b = S.filter (fun x -> x < 200) (S.iota 1000) in
      S.iteri (fun i v -> out.(i) <- v) b;
      Alcotest.(check int_array) "iteri on BID" (Array.init 200 Fun.id) out)

let test_derived () =
  with_policy (Bds.Block.Fixed 6) (fun () ->
      let s = S.iota 10 in
      Alcotest.(check int_list) "slice" [ 3; 4; 5 ] (slist (S.slice s 3 3));
      Alcotest.(check int_list) "take" [ 0; 1; 2 ] (slist (S.take s 3));
      Alcotest.(check int_list) "drop" [ 7; 8; 9 ] (slist (S.drop s 7));
      Alcotest.(check int_list) "rev" (List.rev (List.init 10 Fun.id)) (slist (S.rev s));
      Alcotest.(check int_list) "append" [ 0; 1; 0; 1; 2 ]
        (slist (S.append (S.iota 2) (S.iota 3)));
      (* Derived ops on BIDs force first but stay correct. *)
      let b = S.filter (fun x -> x mod 2 = 1) (S.iota 20) in
      Alcotest.(check int_list) "take on BID" [ 1; 3; 5 ] (slist (S.take b 3));
      Alcotest.(check int_list) "rev on BID"
        (List.rev (List.filter (fun x -> x mod 2 = 1) (List.init 20 Fun.id)))
        (slist (S.rev b));
      Alcotest.(check int) "sum" 45 (S.sum s);
      Alcotest.(check (float 1e-9)) "float_sum" 4.5
        (S.float_sum (S.map (fun i -> float_of_int i /. 10.0) s));
      Alcotest.(check int) "max_by" 9 (S.max_by compare s);
      Alcotest.(check bool) "equal" true (S.equal ( = ) s (S.iota 10));
      Alcotest.(check bool) "not equal" false (S.equal ( = ) s (S.rev s)))

let test_blockwise_api () =
  with_policy (Bds.Block.Fixed 8) (fun () ->
      (* take on a BID must not force it. *)
      let calls = Atomic.make 0 in
      let counted =
        S.map
          (fun x ->
            Atomic.incr calls;
            x)
          (S.iota 100)
      in
      let b = S.filter (fun x -> x mod 2 = 0) counted in
      Atomic.set calls 0;
      let t = S.take b 11 in
      Alcotest.check repr_t "take keeps BID" `Bid (S.repr t);
      Alcotest.(check int) "take is O(1)" 0 (Atomic.get calls);
      Alcotest.(check int_list) "take contents" (List.init 11 (fun i -> 2 * i))
        (slist t);
      Alcotest.(check int_list) "take all" (List.init 50 (fun i -> 2 * i))
        (slist (S.take b 50));
      Alcotest.(check int) "take empty" 0 (S.length (S.take b 0));
      (* Memoised BIDs answer take from the cached array. *)
      ignore (S.to_array b);
      Alcotest.check repr_t "take after force is RAD" `Rad (S.repr (S.take b 5));
      (* iter_block_streams: parallel across blocks, ordered within. *)
      let s = S.filter (fun x -> x mod 3 <> 0) (S.iota 100) in
      let bs = S.block_size_of s in
      let out = Array.make (S.length s) (-1) in
      S.iter_block_streams
        (fun j st ->
          Bds_stream.Stream.iteri (fun k v -> out.((j * bs) + k) <- v) st)
        s;
      Alcotest.(check int_list) "iter_block_streams"
        (List.filter (fun x -> x mod 3 <> 0) (List.init 100 Fun.id))
        (Array.to_list out))

let test_extended_combinators () =
  with_policy (Bds.Block.Fixed 9) (fun () ->
      let s = S.iota 100 in
      Alcotest.(check int_list) "map3"
        (List.init 100 (fun i -> 3 * i))
        (slist (S.map3 (fun a b c -> a + b + c) s s s));
      let pairs = S.map (fun i -> (i, i * 2)) s in
      let l, r = S.unzip pairs in
      Alcotest.(check int_list) "unzip fst" (List.init 100 Fun.id) (slist l);
      Alcotest.(check int_list) "unzip snd" (List.init 100 (fun i -> 2 * i)) (slist r);
      Alcotest.(check (list (pair int int))) "enumerate"
        [ (0, 0); (1, 10); (2, 20) ]
        (S.to_list (S.enumerate (S.tabulate 3 (fun i -> 10 * i))));
      Alcotest.(check int) "count" 34 (S.count (fun x -> x mod 3 = 0) s);
      Alcotest.(check bool) "for_all true" true (S.for_all (fun x -> x < 100) s);
      Alcotest.(check bool) "for_all false" false (S.for_all (fun x -> x < 99) s);
      Alcotest.(check bool) "exists true" true (S.exists (fun x -> x = 42) s);
      Alcotest.(check bool) "exists false" false (S.exists (fun x -> x > 100) s);
      Alcotest.(check (option int)) "find_opt" (Some 51)
        (S.find_opt (fun x -> x > 50) s);
      Alcotest.(check (option int)) "find_opt none" None
        (S.find_opt (fun x -> x > 500) s);
      Alcotest.(check (option int)) "find_index" (Some 17)
        (S.find_index (fun x -> x * 3 = 51) s);
      (* find on a BID input: order must still be leftmost-first. *)
      let b = S.filter (fun x -> x mod 2 = 1) s in
      Alcotest.(check (option int)) "find on BID" (Some 21)
        (S.find_opt (fun x -> x > 19) b);
      Alcotest.(check int_list) "concat" [ 0; 0; 1; 0; 1; 2 ]
        (slist (S.concat [ S.iota 1; S.iota 2; S.empty; S.iota 3 ]));
      Alcotest.(check int_list) "flat_map"
        (List.concat_map (fun x -> List.init x (fun j -> (10 * x) + j)) (List.init 6 Fun.id))
        (slist (S.flat_map (fun x -> S.tabulate x (fun j -> (10 * x) + j)) (S.iota 6)));
      (let evens, odds = S.partition (fun x -> x mod 2 = 0) s in
       Alcotest.(check int_list) "partition evens"
         (List.filter (fun x -> x mod 2 = 0) (List.init 100 Fun.id))
         (slist evens);
       Alcotest.(check int_list) "partition odds"
         (List.filter (fun x -> x mod 2 = 1) (List.init 100 Fun.id))
         (slist odds));
      Alcotest.(check (list (pair int int))) "pairwise"
        [ (0, 1); (1, 2); (2, 3) ]
        (S.to_list (S.pairwise (S.iota 4)));
      Alcotest.(check int) "pairwise singleton" 0 (S.length (S.pairwise (S.iota 1)));
      Alcotest.(check (list (pair int int))) "pairwise on BID"
        [ (0, 2); (2, 4) ]
        (S.to_list (S.pairwise (S.filter (fun x -> x mod 2 = 0) (S.iota 6))));
      Alcotest.(check int_list) "std seq roundtrip" (List.init 10 Fun.id)
        (slist (S.of_std_seq (S.to_std_seq (S.iota 10))));
      Alcotest.(check int) "min_by" 0 (S.min_by compare s))

let test_filter_op () =
  for_all_policies (fun _ ->
      let got =
        slist
          (S.filter_op
             (fun x -> if x mod 3 = 0 then Some (x * x) else None)
             (S.iota 200))
      in
      let expect =
        List.filter_map
          (fun x -> if x mod 3 = 0 then Some (x * x) else None)
          (List.init 200 Fun.id)
      in
      Alcotest.(check int_list) "filter_op" expect got)

let test_partition_single_pass () =
  (* One pass producing both halves: the predicate runs exactly once per
     element, whichever side the element lands on. *)
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let n = 1000 in
      let evals = Atomic.make 0 in
      let p x =
        ignore (Atomic.fetch_and_add evals 1);
        x mod 3 = 0
      in
      let yes, no = S.partition p (S.iota n) in
      Alcotest.(check int) "predicate ran once per element" n
        (Atomic.get evals);
      let model = List.init n Fun.id in
      Alcotest.(check int_list) "yes side"
        (List.filter (fun x -> x mod 3 = 0) model)
        (slist yes);
      Alcotest.(check int_list) "no side"
        (List.filter (fun x -> x mod 3 <> 0) model)
        (slist no);
      (* Consuming the halves re-reads packed storage, not the input. *)
      ignore (S.reduce ( + ) 0 yes);
      ignore (S.reduce ( + ) 0 no);
      Alcotest.(check int) "halves never re-run the predicate" n
        (Atomic.get evals))

let test_shared_forces () =
  (* Shared-consumer plan: a BID consumed by two independent consumers
     forces its memo exactly once (one shared_forces bump for the whole
     BID lifetime); the producer runs at most twice (once for the first
     consumer's drive, once for the memo force), never per consumer. *)
  with_policy (Bds.Block.Fixed 16) (fun () ->
      let module T = Bds_runtime.Telemetry in
      let calls = Atomic.make 0 in
      let counted =
        S.map
          (fun x ->
            Atomic.incr calls;
            x)
          (S.iota 1000)
      in
      let bid, _ = S.scan ( + ) 0 counted in
      Atomic.set calls 0;
      let before = T.snapshot () in
      let r1 = S.reduce ( + ) 0 bid in
      let d1 = T.diff ~before ~after:(T.snapshot ()) in
      Alcotest.(check int) "first consumer: no shared force" 0
        d1.T.s_shared_forces;
      Alcotest.(check int) "first consumer drove phase 3 once" 1000
        (Atomic.get calls);
      let r2 = S.reduce ( + ) 0 bid in
      let r3 = S.reduce ( + ) 0 bid in
      let d = T.diff ~before ~after:(T.snapshot ()) in
      Alcotest.(check int) "one shared force per BID lifetime" 1
        d.T.s_shared_forces;
      Alcotest.(check int) "producer ran at most twice" 2000
        (Atomic.get calls);
      Alcotest.(check bool) "consumers agree" true (r1 = r2 && r2 = r3);
      (* A BID forced explicitly (to_array) before any second consumer
         never bumps the counter: the memo is already published. *)
      let bid2, _ = S.scan ( + ) 0 counted in
      let before2 = T.snapshot () in
      ignore (S.to_array bid2);
      ignore (S.reduce ( + ) 0 bid2);
      ignore (S.to_array bid2);
      let d2 = T.diff ~before:before2 ~after:(T.snapshot ()) in
      Alcotest.(check int) "explicit force then reuse: no shared force" 0
        d2.T.s_shared_forces)

(* Short-circuiting searches.  Eval-count assertions run on a 1-domain
   pool, where the scan order is deterministic (the runner executes the
   leftmost block inline first and cancellation kills every queued
   sibling): a front-of-sequence hit must touch at most one block, and a
   miss must touch every element exactly once.  On the shared
   oversubscribed pool the counts are timing-dependent (a descheduled
   runner lets thieves scan ahead before the hit lands), so there we
   check results only. *)
let test_early_exit_counts () =
  Bds_runtime.Runtime.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Bds_runtime.Runtime.set_num_domains domains)
    (fun () ->
      with_policy (Bds.Block.Fixed 100) (fun () ->
          let n = 100_000 in
          let s = S.iota n in
          let evals = Atomic.make 0 in
          let counted p x =
            ignore (Atomic.fetch_and_add evals 1);
            p x
          in
          Alcotest.(check bool) "exists hit" true
            (S.exists (counted (( = ) 0)) s);
          Alcotest.(check bool) "exists short-circuits" true
            (Atomic.get evals <= 100);
          Atomic.set evals 0;
          Alcotest.(check bool) "exists miss" false
            (S.exists (counted (fun x -> x < 0)) s);
          Alcotest.(check int) "miss scans everything once" n
            (Atomic.get evals);
          Atomic.set evals 0;
          Alcotest.(check (option int)) "find_opt early" (Some 5)
            (S.find_opt (counted (fun x -> x >= 5)) s);
          Alcotest.(check bool) "find short-circuits" true
            (Atomic.get evals <= 100);
          Atomic.set evals 0;
          Alcotest.(check bool) "for_all counterexample" false
            (S.for_all (counted (fun x -> x < 50)) s);
          Alcotest.(check bool) "for_all short-circuits" true
            (Atomic.get evals <= 100)))

let test_early_exit_parallel () =
  with_policy (Bds.Block.Fixed 100) (fun () ->
      let n = 100_000 in
      let s = S.iota n in
      Alcotest.(check bool) "exists hit" true (S.exists (( = ) 0) s);
      Alcotest.(check bool) "exists miss" false (S.exists (fun x -> x < 0) s);
      Alcotest.(check bool) "for_all holds" true (S.for_all (fun x -> x >= 0) s);
      Alcotest.(check bool) "for_all counterexample" false
        (S.for_all (fun x -> x < 50) s);
      Alcotest.(check (option int)) "find_opt" (Some 5)
        (S.find_opt (fun x -> x >= 5) s);
      Alcotest.(check (option int)) "find_opt none" None
        (S.find_opt (fun x -> x > n) s);
      Alcotest.(check (option int)) "find_index" (Some 77)
        (S.find_index (( = ) 77) s);
      (* Leftmost semantics on a BID input with later decoys: the match
         at 21 must win over any later candidate a parallel block finds
         first. *)
      let b = S.filter (fun x -> x mod 2 = 1) s in
      Alcotest.(check (option int)) "find on BID leftmost" (Some 21)
        (S.find_opt (fun x -> x > 19) b))

let () =
  Alcotest.run "seq"
    [
      ( "seq",
        [
          Alcotest.test_case "representation rules" `Quick test_representation_rules;
          Alcotest.test_case "pipelines (all policies)" `Quick test_pipelines_all_policies;
          Alcotest.test_case "scan variants" `Quick test_scan_variants;
          Alcotest.test_case "delaying and memoisation" `Quick test_delaying_and_memoisation;
          Alcotest.test_case "memoised BID reuse" `Quick test_memoised_bid_reuse;
          Alcotest.test_case "force semantics" `Quick test_force_semantics;
          Alcotest.test_case "random access" `Quick test_random_access;
          Alcotest.test_case "zip mixed block sizes" `Quick test_zip_mixed_block_sizes;
          Alcotest.test_case "policy change mid-life" `Quick test_policy_change_mid_life;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "iteration" `Quick test_iteration;
          Alcotest.test_case "derived ops" `Quick test_derived;
          Alcotest.test_case "extended combinators" `Quick test_extended_combinators;
          Alcotest.test_case "blockwise api" `Quick test_blockwise_api;
          Alcotest.test_case "filter_op" `Quick test_filter_op;
          Alcotest.test_case "partition single pass" `Quick test_partition_single_pass;
          Alcotest.test_case "shared forces" `Quick test_shared_forces;
          Alcotest.test_case "early-exit counts" `Quick test_early_exit_counts;
          Alcotest.test_case "early-exit parallel" `Quick test_early_exit_parallel;
        ] );
    ]
