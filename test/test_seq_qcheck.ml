(* Property-based testing of block-delayed sequences: random operation
   pipelines compared against a list model, under random block sizes. *)

module S = Bds.Seq
open Bds_test_util

let () = init ()

(* A pipeline step on int sequences, with its list-model counterpart. *)
type step =
  | Map_add of int
  | Map_mod of int
  | Filter_mod of int * int
  | Scan_ex
  | Scan_incl
  | Zip_self
  | Force
  | Mapi_add
  | Rev
  | Take_half
  | Drop_third
  | Append_self
  | Enumerate_sum

let apply_seq step s =
  match step with
  | Map_add k -> S.map (( + ) k) s
  | Map_mod k -> S.map (fun x -> x mod k) s
  | Filter_mod (k, r) -> S.filter (fun x -> (x mod k + k) mod k = r) s
  | Scan_ex -> fst (S.scan ( + ) 0 s)
  | Scan_incl -> S.scan_incl ( + ) 0 s
  | Zip_self -> S.zip_with ( + ) s s
  | Force -> S.force s
  | Mapi_add -> S.mapi ( + ) s
  | Rev -> S.rev s
  | Take_half -> S.take s ((S.length s + 1) / 2)
  | Drop_third -> S.drop s (S.length s / 3)
  | Append_self -> S.append s s
  | Enumerate_sum -> S.map (fun (i, v) -> i + v) (S.enumerate s)

let apply_list step l =
  match step with
  | Map_add k -> List.map (( + ) k) l
  | Map_mod k -> List.map (fun x -> x mod k) l
  | Filter_mod (k, r) -> List.filter (fun x -> (x mod k + k) mod k = r) l
  | Scan_ex -> fst (list_scan ( + ) 0 l)
  | Scan_incl -> list_scan_incl ( + ) 0 l
  | Zip_self -> List.map (fun x -> x + x) l
  | Force -> l
  | Mapi_add -> List.mapi ( + ) l
  | Rev -> List.rev l
  | Take_half -> List.filteri (fun i _ -> i < (List.length l + 1) / 2) l
  | Drop_third -> List.filteri (fun i _ -> i >= List.length l / 3) l
  | Append_self -> l @ l
  | Enumerate_sum -> List.mapi ( + ) l

let step_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun k -> Map_add k) (int_range (-10) 10);
      map (fun k -> Map_mod (k + 2)) (int_bound 10);
      map2 (fun k r -> Filter_mod (k + 2, r mod (k + 2))) (int_bound 6) (int_bound 10);
      return Scan_ex;
      return Scan_incl;
      return Zip_self;
      return Force;
      return Mapi_add;
      return Rev;
      return Take_half;
      return Drop_third;
      return Append_self;
      return Enumerate_sum;
    ]

let pipeline_gen =
  let open QCheck2.Gen in
  triple small_int_array (list_size (int_bound 6) step_gen) (int_range 1 40)

let prop_pipeline (a, steps, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
      let l = List.fold_left (fun l st -> apply_list st l) (Array.to_list a) steps in
      S.to_list s = l && S.length s = List.length l)

let prop_reduce_after_pipeline (a, steps, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
      let l = List.fold_left (fun l st -> apply_list st l) (Array.to_list a) steps in
      S.reduce ( + ) 0 s = List.fold_left ( + ) 0 l)

(* flatten . map ≡ concat_map *)
let prop_flatten (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let mk x = S.tabulate (abs x mod 5) (fun j -> x + j) in
      let got = S.to_list (S.flatten (S.map mk (S.of_array a))) in
      let expect =
        List.concat_map (fun x -> List.init (abs x mod 5) (fun j -> x + j)) (Array.to_list a)
      in
      got = expect)

(* Affine-composition scan (non-commutative monoid) against the list
   model, under random block sizes. *)
let prop_affine_scan (pairs, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let compose (a1, b1) (a2, b2) = (a1 * a2, (b1 * a2) + b2) in
      let arr = Array.map (fun (a, b) -> (a mod 3, b mod 5)) pairs in
      let got, gt = S.scan compose (1, 0) (S.of_array arr) in
      let expect, et = list_scan compose (1, 0) (Array.to_list arr) in
      S.to_list got = expect && gt = et)

(* filter distributes over map. *)
let prop_filter_map_commute (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let f x = (2 * x) + 1 in
      let p x = x > 0 in
      let lhs = S.to_list (S.filter p (S.map f (S.of_array a))) in
      let rhs = S.to_list (S.map f (S.filter (fun x -> p (f x)) (S.of_array a))) in
      lhs = rhs)

(* to_array . of_array = id; force is semantically the identity. *)
let prop_roundtrip (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      S.to_array (S.of_array a) = a
      && S.to_list (S.force (S.filter (fun x -> x <> 0) (S.of_array a)))
         = S.to_list (S.filter (fun x -> x <> 0) (S.of_array a)))

let with_bsize g = QCheck2.Gen.(pair g (int_range 1 40))

(* Policy invariance: the observable result of a pipeline must not
   depend on the granularity knobs — block-size policy or leaf-grain
   override.  This is the contract of the unified granularity layer:
   knobs move work between blocks and chunks, never change answers. *)
let grid_points =
  List.concat_map
    (fun p -> List.map (fun g -> (p, g)) [ None; Some 1; Some 7 ])
    [
      Bds.Block.Fixed 1;
      Bds.Block.Fixed 3;
      Bds.Block.Fixed 17;
      Bds.Block.default_policy;
    ]

let prop_policy_invariance (a, steps) =
  let eval () =
    let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
    (S.to_list s, S.reduce ( + ) 0 s)
  in
  let baseline = eval () in
  List.for_all
    (fun (p, g) -> with_policy p (fun () -> with_grain g eval) = baseline)
    grid_points

let prop_search_invariance (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let s = S.of_array a in
      let l = Array.to_list a in
      let p x = x land 3 = 0 in
      let model_index =
        let rec go i = function
          | [] -> None
          | x :: tl -> if p x then Some i else go (i + 1) tl
        in
        go 0 l
      in
      S.exists p s = List.exists p l
      && S.for_all p s = List.for_all p l
      && S.find_opt p s = List.find_opt p l
      && S.find_index p s = model_index)

let tests =
  let open QCheck2 in
  [
    Test.make ~name:"pipeline = list model" ~count:500 pipeline_gen prop_pipeline;
    Test.make ~name:"reduce after pipeline" ~count:300 pipeline_gen
      prop_reduce_after_pipeline;
    Test.make ~name:"flatten.map = concat_map" ~count:300 (with_bsize small_int_array)
      prop_flatten;
    Test.make ~name:"affine scan (non-commutative)" ~count:300
      (with_bsize (Gen.array_size (Gen.int_bound 150) (Gen.pair Gen.small_signed_int Gen.small_signed_int)))
      prop_affine_scan;
    Test.make ~name:"filter/map commute" ~count:300 (with_bsize small_int_array)
      prop_filter_map_commute;
    Test.make ~name:"roundtrips" ~count:300 (with_bsize small_int_array) prop_roundtrip;
    Test.make ~name:"policy invariance" ~count:60
      Gen.(pair small_int_array (list_size (int_bound 4) step_gen))
      prop_policy_invariance;
    Test.make ~name:"search = list model" ~count:300 (with_bsize small_int_array)
      prop_search_invariance;
  ]

let () =
  Alcotest.run "seq_qcheck"
    [ ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) tests) ]
